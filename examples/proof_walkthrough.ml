(* The paper's proofs, executed step by step on a concrete network.

   Proposition 1 (low stretch) and Lemmas 1-2 (k-connecting) are
   constructive; this example narrates their runs so you can watch a
   remote-spanner guarantee being assembled rather than just checked.

     dune exec examples/proof_walkthrough.exe *)

open Rs_graph
open Rs_core

let () =
  let rand = Rand.create 19 in
  let pts = Rs_geometry.Sampler.uniform rand ~n:45 ~dim:2 ~side:3.2 in
  let g = Rs_geometry.Unit_ball.udg pts in
  Printf.printf "network: n=%d m=%d diameter=%d\n\n" (Graph.n g) (Graph.m g)
    (Bfs.diameter g);

  (* -------- Proposition 1: the recursive route construction -------- *)
  let r = 3 in
  let eps = 1.0 /. float_of_int (r - 1) in
  let h = Remote_spanner.low_stretch g ~eps in
  Printf.printf
    "Proposition 1: H induces (%d,1)-dominating trees, so H_u routes have\n\
     length <= (1+%.1f) d + 1-%.1f. Construct the route for the farthest pair:\n"
    r eps (2.0 *. eps);
  let far =
    let best = ref (0, 0, -1) in
    Graph.iter_vertices
      (fun u ->
        let d = Bfs.dist g u in
        Graph.iter_vertices
          (fun v ->
            let _, _, bd = !best in
            if d.(v) > bd then best := (u, v, d.(v)))
          g)
      g;
    !best
  in
  let u, v, d = far in
  (match Prop1_route.construct g h ~r u v with
  | Some p ->
      Format.printf "  %d -> %d: d_G = %d, proof route (%d hops <= %.1f):@.  %a@.@."
        u v d (Path.length p) (Prop1_route.bound ~r d) Path.pp p
  | None -> assert false);

  (* -------- Lemma 2: surgery towards Theorem 2 -------- *)
  let k = 2 in
  let hk = Remote_spanner.k_connecting g ~k in
  Printf.printf
    "Lemma 2: take G's optimal disjoint path pair and rewrite wedges until\n\
     it lives in H_s (every rewrite keeps length and disjointness):\n";
  (* pick a pair whose optimal G-paths genuinely stray outside H, so
     the surgery has something to do *)
  let pair =
    let best = ref None and best_out = ref 0 in
    Graph.iter_vertices
      (fun s ->
        Graph.iter_vertices
          (fun t ->
            if s < t && (not (Graph.mem_edge g s t))
               && Disjoint_paths.max_disjoint g s t >= 2 then
              match Disjoint_paths.min_sum_paths g ~k:2 s t with
              | Some paths ->
                  let out =
                    List.fold_left (fun a p -> a + Surgery.outside_count hk p) 0 paths
                  in
                  if out > !best_out then begin
                    best_out := out;
                    best := Some (s, t)
                  end
              | None -> ())
          g)
      g;
    !best
  in
  (match pair with
  | None -> print_endline "  (no deep 2-connected pair in this sample)"
  | Some (s, t) -> (
      (match Disjoint_paths.min_sum_paths g ~k s t with
      | Some paths ->
          Printf.printf "  start (in G):\n";
          List.iter
            (fun p ->
              Format.printf "    %a  (outside H by %d)@." Path.pp p
                (Surgery.outside_count hk p))
            paths
      | None -> ());
      match Surgery.theorem2_paths g hk ~k s t with
      | Some paths ->
          Printf.printf "  after surgery (in H_%d):\n" s;
          List.iter
            (fun p ->
              Format.printf "    %a  (outside H by %d)@." Path.pp p
                (Surgery.outside_count hk p))
            paths;
          let total = List.fold_left (fun a p -> a + Path.length p) 0 paths in
          Printf.printf "  total length %d = d^%d_G(%d,%d) = %d\n\n" total k s t
            (Option.get (Disjoint_paths.dk g ~k s t))
      | None -> assert false));

  (* -------- Lemma 1: the 2-connecting (2,-1) case -------- *)
  let h2 = Remote_spanner.two_connecting g in
  Printf.printf
    "Lemma 1: same idea with (2,1)-trees; sum may grow, bounded by 2 d^2 - 2:\n";
  (match pair with
  | None -> ()
  | Some (s, t) -> (
      match Surgery.prop4_paths g h2 s t with
      | Some (p, q) ->
          Format.printf "  %a@.  %a@." Path.pp p Path.pp q;
          let d2 = Option.get (Disjoint_paths.dk g ~k:2 s t) in
          Printf.printf "  sum %d <= 2*%d-2 = %d\n"
            (Path.length p + Path.length q) d2 ((2 * d2) - 2)
      | None -> assert false));
  print_newline ();
  Printf.printf "All three constructions verified against the independent checkers: %b\n"
    (Verify.is_remote_spanner g h ~alpha:(1.0 +. eps) ~beta:(1.0 -. (2.0 *. eps))
    && Verify.is_k_connecting g hk ~alpha:1.0 ~beta:0.0 ~k
    && Verify.is_k_connecting g h2 ~alpha:2.0 ~beta:(-1.0) ~k:2)
