(* Quickstart: build a remote-spanner of an ad hoc network and check
   the guarantee it ships with.

     dune exec examples/quickstart.exe *)

open Rs_graph
open Rs_core

let () =
  (* 1. An input graph: 150 radio nodes in a square, unit disk model. *)
  let rand = Rand.create 42 in
  let pts = Rs_geometry.Sampler.uniform rand ~n:150 ~dim:2 ~side:6.0 in
  let g = Rs_geometry.Unit_ball.udg pts in
  Printf.printf "network: %d nodes, %d links\n" (Graph.n g) (Graph.m g);

  (* 2. A (1.5, 0)-remote-spanner: each node knows its own neighbors,
     so advertising H suffices for routes at most 1.5x optimal. *)
  let eps = 0.5 in
  let h = Remote_spanner.low_stretch g ~eps in
  Printf.printf "remote-spanner: %d links advertised (%.0f%% of the topology)\n"
    (Edge_set.cardinal h)
    (100.0 *. float_of_int (Edge_set.cardinal h) /. float_of_int (Graph.m g));

  (* 3. Verify the guarantee exhaustively — the library never asks you
     to trust it. *)
  let alpha = 1.0 +. eps and beta = 1.0 -. (2.0 *. eps) in
  assert (Verify.is_remote_spanner g h ~alpha ~beta);
  Printf.printf "verified: d_Hu(u,v) <= %.1f d_G(u,v) %+.1f for all pairs\n" alpha beta;

  (* 4. Inspect one pair: distance in G vs distance in H_u. *)
  let u = 0 in
  let h_adj = Edge_set.to_adjacency h in
  let d_g = Bfs.dist g u and d_hu = Bfs.augmented_dist g h_adj u in
  let v =
    (* farthest reachable node from u *)
    Graph.fold_vertices
      (fun best w -> if d_g.(w) > d_g.(best) then w else best)
      u g
  in
  Printf.printf "example pair %d->%d: d_G=%d, d_Hu=%d\n" u v d_g.(v) d_hu.(v)
