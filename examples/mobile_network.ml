(* A mobile ad hoc network: nodes move (random waypoint), the
   advertised remote-spanner refreshes periodically, packets route
   over stale knowledge plus fresh neighbor awareness.

     dune exec examples/mobile_network.exe [-- <speed> <refresh>] *)

open Rs_graph
module W = Rs_mobility.Waypoint
module C = Rs_mobility.Churn_eval

let () =
  let speed = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.1 in
  let refresh = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8 in
  let model =
    W.create (Rand.create 33) ~n:70 ~side:4.5 ~speed_min:(speed /. 2.0) ~speed_max:speed
      ~pause:3
  in
  Printf.printf
    "70 mobile nodes, side 4.5, speed <= %.2f/step, advertisements every %d steps\n\n"
    speed refresh;
  let strategies =
    [
      C.strategy "full link-state" Rs_core.Baseline.full;
      C.strategy "(1,0)-remote-spanner" Rs_core.Remote_spanner.exact_distance;
      C.strategy "2-connecting RS" Rs_core.Remote_spanner.two_connecting;
    ]
  in
  let reports =
    C.run (Rand.create 35) ~model ~strategies ~steps:60 ~refresh ~pairs_per_step:8
  in
  Printf.printf "%-22s %10s %10s %12s\n" "strategy" "delivery" "stretch" "advertised";
  print_endline (String.make 58 '-');
  List.iter
    (fun r ->
      Printf.printf "%-22s %9.1f%% %10.3f %12.0f\n" r.C.name
        (100.0 *. float_of_int r.C.delivered /. float_of_int (max 1 r.C.pairs_attempted))
        r.C.mean_stretch r.C.mean_advertised)
    reports;
  (match reports with
  | r :: _ ->
      Printf.printf "\ntopology churn over the run: %d link flips in %d steps\n"
        r.C.link_changes r.C.steps
  | [] -> ());
  print_endline
    "\nthe remote-spanners deliver within a few points of full link-state\n\
     at a fraction of the control volume; shrink the refresh period or\n\
     the speed and all strategies converge to 100%."
