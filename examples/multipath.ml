(* Multi-path routing with 2-connecting remote-spanners (Section 3).

   A 2-connecting (2,-1)-remote-spanner keeps TWO internally disjoint
   paths alive between every 2-connected pair, with bounded total
   length. This example builds one, extracts disjoint path pairs, and
   injects a node failure to show the second path survives.

     dune exec examples/multipath.exe *)

open Rs_graph
open Rs_core

let () =
  let rand = Rand.create 11 in
  let pts = Rs_geometry.Sampler.uniform rand ~n:60 ~dim:2 ~side:3.5 in
  let g = Rs_geometry.Unit_ball.udg pts in
  Printf.printf "network: %d nodes, %d links\n" (Graph.n g) (Graph.m g);

  let h = Remote_spanner.two_connecting g in
  Printf.printf "2-connecting (2,-1)-remote-spanner: %d links (%.0f%%)\n\n"
    (Edge_set.cardinal h)
    (100.0 *. float_of_int (Edge_set.cardinal h) /. float_of_int (Graph.m g));

  (* find a far 2-connected non-adjacent pair *)
  let pair =
    let best = ref None in
    Graph.iter_vertices
      (fun s ->
        let d = Bfs.dist g s in
        Graph.iter_vertices
          (fun t ->
            if s < t && d.(t) > 2 && not (Graph.mem_edge g s t) then
              match Disjoint_paths.dk g ~k:2 s t with
              | Some cost -> (
                  match !best with
                  | Some (_, _, c) when c >= cost -> ()
                  | _ -> best := Some (s, t, cost))
              | None -> ())
          g)
      g;
    !best
  in
  match pair with
  | None -> print_endline "no 2-connected pair in this sample (unlucky seed)"
  | Some (s, t, d2g) ->
      Printf.printf "pair %d <-> %d: d2 in G = %d\n" s t d2g;
      let hs = Verify.augmented g h s in
      (match Disjoint_paths.min_sum_paths hs ~k:2 s t with
      | None -> assert false
      | Some paths ->
          let total = List.fold_left (fun a p -> a + Path.length p) 0 paths in
          Printf.printf "two disjoint paths in H_s (total %d <= 2*%d-2 = %d):\n" total d2g
            ((2 * d2g) - 2);
          List.iter (fun p -> Format.printf "  %a@." Path.pp p) paths;
          assert (Path.pairwise_disjoint paths);

          (* fault injection: kill an internal node of the first path *)
          (match paths with
          | first :: _ -> (
              match Path.internal first with
              | [] -> ()
              | dead :: _ ->
                  Printf.printf "\nfailing node %d (on the first path)...\n" dead;
                  let g' = Graph.remove_vertex g dead in
                  let hs' = Graph.remove_vertex hs dead in
                  (match Disjoint_paths.min_sum_paths hs' ~k:1 s t with
                  | Some [ p ] ->
                      Format.printf "still connected in H_s: %a (%d hops; in G': %d)@."
                        Path.pp p (Path.length p) (Bfs.dist_pair g' s t)
                  | _ -> print_endline "second path lost (should not happen)"))
          | [] -> ());

          (* the guarantee holds for every pair, not just this one *)
          assert (Verify.is_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:2);
          print_endline "\nverified: 2-connecting (2,-1) stretch holds for all pairs")
