(* Terminal visualization of a unit disk network and its
   remote-spanner, plus the paper's Figure 1 instance.

     dune exec examples/visualize.exe            (random UDG)
     dune exec examples/visualize.exe -- figure1 *)

open Rs_graph
open Rs_core

let show_udg () =
  let rand = Rand.create 4 in
  let pts = Rs_geometry.Sampler.uniform rand ~n:40 ~dim:2 ~side:4.0 in
  let g = Rs_geometry.Unit_ball.udg pts in
  let h = Remote_spanner.exact_distance g in
  Printf.printf "unit disk graph: n=%d m=%d; (1,0)-remote-spanner: %d edges ('#')\n\n"
    (Graph.n g) (Graph.m g) (Edge_set.cardinal h);
  print_endline (Rs_geometry.Render.render ~width:76 ~height:30 ~spanner:h pts g)

let show_figure1 () =
  let f = Rs_geometry.Figure1.instance () in
  let g = f.Rs_geometry.Figure1.graph in
  let lbl i = (Rs_geometry.Figure1.label f i).[0] in
  let show title h =
    Printf.printf "%s\n\n%s\n\n" title
      (Rs_geometry.Render.render ~width:56 ~height:18 ?spanner:h ~labels:lbl
         f.Rs_geometry.Figure1.points g)
  in
  show "(a) the unit disk graph G (y' and x' render as y and x)" None;
  show "(b) a (1,0)-remote-spanner (edges '#')" (Some (Remote_spanner.exact_distance g));
  show "(c) a (2,-1)-remote-spanner" (Some (Remote_spanner.rem_span g ~r:2 ~beta:1));
  show "(d) a 2-connecting (2,-1)-remote-spanner" (Some (Remote_spanner.two_connecting g))

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "udg" with
  | "figure1" -> show_figure1 ()
  | _ -> show_udg ()
