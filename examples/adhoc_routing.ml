(* Ad hoc routing scenario (the paper's motivation, Section 1).

   An OLSR-style network floods link-state advertisements. Flooding
   the full topology is expensive; flooding a remote-spanner keeps
   routes near-optimal at a fraction of the control traffic. This
   example plays the whole protocol:

   1. nodes discover neighbors (hello messages);
   2. each advertised sub-graph choice is compared on (a) LSA volume,
      (b) MPR-flooding cost of distributing it, (c) route stretch of
      greedy forwarding over it.

     dune exec examples/adhoc_routing.exe *)

open Rs_graph
open Rs_core
open Rs_routing

let () =
  let rand = Rand.create 7 in
  let n = 120 in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side:5.0 in
  let g = Rs_geometry.Unit_ball.udg pts in
  Printf.printf "ad hoc network: %d nodes, %d radio links, diameter %d\n\n" (Graph.n g)
    (Graph.m g) (Bfs.diameter g);

  (* Control-plane cost of flooding one LSA per node, using MPR
     flooding (what OLSR actually does) vs blind flooding. *)
  let relays u = Mpr.select g u in
  let flood_cost () =
    let total = ref 0 in
    Graph.iter_vertices
      (fun src -> total := !total + (Mpr.flood g ~relays ~src).Mpr.retransmissions)
      g;
    !total
  in
  let blind_cost () =
    let total = ref 0 in
    Graph.iter_vertices
      (fun src -> total := !total + (Mpr.blind_flood g ~src).Mpr.retransmissions)
      g;
    !total
  in
  Printf.printf "flooding one message from every node: MPR %d retransmissions, blind %d\n\n"
    (flood_cost ()) (blind_cost ());

  let header = Printf.sprintf "%-22s %8s %8s %10s %10s" "advertised sub-graph" "links" "LSA" "worst" "mean" in
  print_endline header;
  print_endline (String.make (String.length header) '-');
  let scenario name h =
    let ls = Link_state.make g h in
    let r = Link_state.measure_stretch ls in
    assert (r.Link_state.delivered = r.Link_state.pairs);
    Printf.printf "%-22s %8d %8d %9.2fx %9.3fx\n" name (Edge_set.cardinal h)
      (Link_state.advertisement_size ls) r.Link_state.worst_mult r.Link_state.mean_mult
  in
  scenario "full topology (OSPF)" (Baseline.full g);
  scenario "(1,0)-RS (MPR links)" (Remote_spanner.exact_distance g);
  scenario "(1.5,0)-RS" (Remote_spanner.low_stretch g ~eps:0.5);
  scenario "(2,-1)-RS" (Remote_spanner.low_stretch g ~eps:1.0);
  scenario "BFS tree" (Baseline.bfs_tree g ~root:0);

  (* One concrete route, end to end. *)
  let h = Remote_spanner.low_stretch g ~eps:0.5 in
  let ls = Link_state.make g h in
  let far_pair () =
    let best = ref (0, 0, 0) in
    Graph.iter_vertices
      (fun s ->
        let d = Bfs.dist g s in
        Graph.iter_vertices
          (fun t ->
            let _, _, bd = !best in
            if d.(t) > bd then best := (s, t, d.(t)))
          g)
      g;
    !best
  in
  let s, t, d = far_pair () in
  match Link_state.route ls ~src:s ~dst:t with
  | Some p ->
      Format.printf "\nworst-case pair %d -> %d: shortest %d hops, greedy route %d hops:@ %a@."
        s t d (Path.length p) Path.pp p
  | None -> assert false
