(* Edge-count scaling (Table 1's sparsity claims, pocket edition).

   Usage: dune exec examples/scaling.exe [-- dense|sparse]

   dense  — fixed square, growing n: (1,0)-remote-spanner edges grow
            like n^(4/3) while the topology grows like n^2 (Section 3.2)
   sparse — constant density, growing n: (1+eps)-RS and 2-connecting
            RS edges grow linearly (Theorems 1 and 3) *)

open Rs_graph
open Rs_core

let fit xs ys =
  let lx = List.map (fun x -> log (float_of_int x)) xs
  and ly = List.map (fun y -> log (float_of_int (max 1 y))) ys in
  let n = float_of_int (List.length lx) in
  let sx = List.fold_left ( +. ) 0.0 lx and sy = List.fold_left ( +. ) 0.0 ly in
  let sxx = List.fold_left (fun a x -> a +. (x *. x)) 0.0 lx in
  let sxy = List.fold_left2 (fun a x y -> a +. (x *. y)) 0.0 lx ly in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let dense () =
  print_endline "fixed 5x5 square, growing n (paper: H ~ n^4/3, G ~ n^2)";
  Printf.printf "%6s %10s %10s\n" "n" "m(G)" "(1,0)-RS";
  let sizes = [ 100; 200; 400; 800 ] in
  let ms = ref [] and hs = ref [] in
  List.iter
    (fun n ->
      let rand = Rand.create (100 + n) in
      let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side:5.0 in
      let g = Rs_geometry.Unit_ball.udg pts in
      let h = Remote_spanner.exact_distance g in
      ms := Graph.m g :: !ms;
      hs := Edge_set.cardinal h :: !hs;
      Printf.printf "%6d %10d %10d\n%!" n (Graph.m g) (Edge_set.cardinal h))
    sizes;
  Printf.printf "fitted: m(G) ~ n^%.2f, H ~ n^%.2f (paper: 2 vs 4/3+log)\n"
    (fit sizes (List.rev !ms))
    (fit sizes (List.rev !hs))

let sparse () =
  print_endline "constant density 4, growing n (paper: both spanners linear)";
  Printf.printf "%6s %10s %12s %14s\n" "n" "m(G)" "(1.5,0)-RS/n" "2conn-RS/n";
  List.iter
    (fun n ->
      let rand = Rand.create (200 + n) in
      let side = sqrt (float_of_int n /. 4.0) in
      let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
      let g = Rs_geometry.Unit_ball.udg pts in
      let h1 = Remote_spanner.low_stretch g ~eps:0.5 in
      let h2 = Remote_spanner.two_connecting g in
      Printf.printf "%6d %10d %12.2f %14.2f\n%!" n (Graph.m g)
        (float_of_int (Edge_set.cardinal h1) /. float_of_int n)
        (float_of_int (Edge_set.cardinal h2) /. float_of_int n))
    [ 125; 250; 500; 1000 ]

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "both" with
  | "dense" -> dense ()
  | "sparse" -> sparse ()
  | _ ->
      dense ();
      print_newline ();
      sparse ()
