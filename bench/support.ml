(* Shared helpers for the experiment harness: input families, table
   printing, and log-log exponent fits. *)
open Rs_graph

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let subsection title = Printf.printf "\n--- %s ---\n%!" title

(* Poisson unit disk graph in a FIXED square (the paper's random UDG
   model of Section 3.2: density grows with n). *)
let udg_fixed_square ~seed ~n ~side =
  let rand = Rand.create seed in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  (pts, Rs_geometry.Unit_ball.udg pts)

(* Unit ball graph at constant density (growing area): the bounded
   doubling metric regime of Theorems 1 and 3. *)
let ubg_constant_density ~seed ~n ~density =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. density) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  (pts, Rs_geometry.Unit_ball.udg pts)

let er ~seed ~n ~p = Gen.erdos_renyi (Rand.create seed) n p

(* Least-squares slope of ln(y) against ln(x): the growth exponent. *)
let loglog_slope xs ys =
  let lx = List.map (fun x -> log (float_of_int x)) xs in
  let ly = List.map (fun y -> log (float_of_int (max 1 y))) ys in
  let n = float_of_int (List.length lx) in
  let sx = List.fold_left ( +. ) 0.0 lx and sy = List.fold_left ( +. ) 0.0 ly in
  let sxx = List.fold_left (fun a x -> a +. (x *. x)) 0.0 lx in
  let sxy = List.fold_left2 (fun a x y -> a +. (x *. y)) 0.0 lx ly in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

(* Fixed-width table printing. *)
let print_header cols =
  let line = String.concat " | " (List.map (fun (name, w) -> Printf.sprintf "%-*s" w name) cols) in
  print_endline line;
  print_endline (String.make (String.length line) '-')

let print_row cols cells =
  print_endline
    (String.concat " | "
       (List.map2 (fun (_, w) cell -> Printf.sprintf "%-*s" w cell) cols cells))

let pct a b = 100.0 *. float_of_int a /. float_of_int b

let mean_int xs =
  if xs = [] then 0.0
  else float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let max_int_list xs = List.fold_left max 0 xs

let ok_str b = if b then "PASS" else "FAIL"

(* Global failure tracker so the harness can exit non-zero if a
   theorem-level check regresses. *)
let failures = ref 0

let record_check name b =
  if not b then begin
    incr failures;
    Printf.printf "!! CHECK FAILED: %s\n%!" name
  end;
  ok_str b
