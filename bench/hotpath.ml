(* Hot-path microbenchmarks gating the CSR / scratch / lazy-greedy /
   work-stealing overhaul and the batched/sharded scaling layer.

   Usage:
     dune exec bench/hotpath.exe             n = 300..2000 full rows,
                                             n = 10^4, 10^5 reduced rows
     dune exec bench/hotpath.exe -- quick    n = 300 only (CI)
     dune exec bench/hotpath.exe -- scale    n = 10^3..10^5 reduced rows
                                             (CI scaling-exponent gate)
     dune exec bench/hotpath.exe -- huge     scale + n = 10^6 (manual)

   Writes BENCH_hotpath.json (benchmark name -> ns/op) to the working
   directory. scripts/check_bench.py compares a fresh run against the
   committed baseline, fails CI on a >25% regression, and (on the
   scale run) fits log-log scaling exponents per row family; see
   docs/PERFORMANCE.md for how to read the numbers. *)

open Rs_graph
open Rs_core

let now = Rs_obs.Obs.now

(* Same constant-density unit disk model as bench/support.ml (kept
   local: dune executables in one directory cannot share modules). *)
let udg ~seed ~n ~density =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. density) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

(* Wall-clock ns/op, minimum over timed batches: one warm-up call, a
   calibration pass sizing a batch at ~min_time/8, then batches until
   both bounds are met, reporting the fastest per-batch rate. Timing
   noise on a busy box is strictly additive (preemption, GC slices,
   frequency dips all make a batch slower, never faster), so the min
   is the stable estimator of the clean-machine rate — a mean or even
   a median over one run lets a load episode inflate a µs-scale row
   past the 25% regression gate. Coarser than Bechamel's OLS but
   robust for the multi-second union/verify runs at n = 2000. *)
let time_ns ?(min_time = 0.2) ?(min_reps = 3) f =
  (* Warm-up: at least two calls plus ~min_time/4 of wall time. A
     single cold call is not enough on the tree-construction rows —
     the first timed batch still paid for lazily-grown scratch arrays
     and a cold branch predictor, which once left the committed
     domtree/gdy-r3b1/udg300 baseline ~15% above its steady state. *)
  ignore (Sys.opaque_identity (f ()));
  let tw = now () in
  ignore (Sys.opaque_identity (f ()));
  while now () -. tw < min_time /. 4.0 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let slot = min_time /. 8.0 in
  let batch = ref 0 in
  let t0 = now () in
  while now () -. t0 < slot || !batch = 0 do
    ignore (Sys.opaque_identity (f ()));
    incr batch
  done;
  let batch = !batch in
  let rate () =
    let t0 = now () in
    for _ = 1 to batch do
      ignore (Sys.opaque_identity (f ()))
    done;
    (now () -. t0) *. 1e9 /. float_of_int batch
  in
  let best = ref (rate ()) and n = ref 1 in
  let t1 = now () in
  while now () -. t1 < min_time || !n < min_reps do
    best := Float.min !best (rate ());
    incr n
  done;
  !best

let human ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

(* The reduced tier runs at every size; the full tier (per-root
   unions, verify, repair, store, obs overhead) only at the classic
   n <= 2000 sizes — at 10^5 a per-root union or exhaustive verify
   would take minutes and show nothing the sharded rows don't. Rows
   at n > 2000 use a smaller timing budget (min_time 0.05, 2 reps):
   each op already runs tens of milliseconds to seconds, so the min
   estimator stabilizes with far fewer calls. *)
let bench_size rows ~seen ~tier ~n =
  let slow = n > 2000 in
  let g = udg ~seed:4242 ~n ~density:4.0 in
  let tag name = Printf.sprintf "%s/udg%d" name n in
  let add name f =
    let name = tag name in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      let min_time = if slow then 0.05 else 0.2 in
      let min_reps = if slow then 2 else 3 in
      rows := (name, time_ns ~min_time ~min_reps f) :: !rows
    end
  in
  (* ---- reduced tier: the rows the scaling-exponent gate fits ---- *)
  let scratch = Bfs.Scratch.create () in
  add "bfs/dist" (fun () -> Bfs.dist g 0);
  add "bfs/scratch_run" (fun () -> Bfs.Scratch.run scratch g 0);
  let ms = Msbfs.create () in
  let srcs = Array.init (min Msbfs.width n) (fun i -> i) in
  add "msbfs/batch62" (fun () -> Msbfs.run ms g srcs);
  add "domtree/gdy-r3b1" (fun () -> Dom_tree.gdy ~scratch g ~r:3 ~beta:1 0);
  add "domtree/gdy_k2" (fun () -> Dom_tree_k.gdy_k ~scratch g ~k:2 0);
  add "build/exact-sharded" (fun () -> Sharded.build g (Sharded.Gdy_k { k = 1 }));
  add "build/gdy-sharded" (fun () -> Sharded.build g (Sharded.Gdy { r = 3; beta = 1 }));
  let text = Graph_io.to_string g in
  let bin = Graph_io.to_binary_string g in
  add "io/to-text" (fun () -> Graph_io.to_string g);
  add "io/to-binary" (fun () -> Graph_io.to_binary_string g);
  add "io/load-text" (fun () -> Graph_io.of_string text);
  add "io/load-binary" (fun () -> Graph_io.of_binary_string bin);
  if tier = `Full then begin
  add "domtree/mis-r3" (fun () -> Dom_tree.mis ~scratch g ~r:3 0);
  add "union/exact-seq" (fun () -> Remote_spanner.exact_distance g);
  add "union/exact-par4" (fun () -> Parallel.exact_distance ~domains:4 g);
  let h = Remote_spanner.exact_distance g in
  add "verify/seq" (fun () -> Verify.is_remote_spanner g h ~alpha:1.0 ~beta:0.0);
  add "verify/par4" (fun () ->
      Parallel.is_remote_spanner ~domains:4 g h ~alpha:1.0 ~beta:0.0);
  (* Incremental repair: remove a batch of spread-out edges, then
     restore them (state cycles back, so the benchmark is steady).
     Compare against union/exact-seq, the from-scratch rebuild of the
     same (1,0) spanner. *)
  let module D = Rs_dynamic.Delta in
  let module R = Rs_dynamic.Repair in
  let st = R.init (R.Gdy_k { k = 1 }) g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let add_repair name size =
    let size = max 1 size in
    let step = max 1 (m / size) in
    let pairs = List.init size (fun i -> edges.(i * step)) in
    let removals = List.map (fun (u, v) -> D.Remove_edge (u, v)) pairs in
    let restores = List.map (fun (u, v) -> D.Add_edge (u, v)) pairs in
    add name (fun () ->
        ignore (R.apply st removals);
        ignore (R.apply st restores))
  in
  add_repair "repair/delta1" 1;
  add_repair "repair/delta-n100" (n / 100);
  add_repair "repair/delta-n10" (n / 10);
  (* Durable-store load fast path: parsing the text format (split,
     int_of_string, sort inside Graph.make) against decoding the
     binary snapshot (CRC + Graph.of_canonical's O(n+m) fill). The
     snapshot here carries the graph only, so the two rows load the
     same information; check_bench.py gates the ratio staying >= 10x
     at n = 2000 via --min-ratio. *)
  let module Snapshot = Rs_store.Snapshot in
  let text = Graph_io.to_string g in
  let snap = Snapshot.to_string { Snapshot.seq = 0; graph = g; spanners = [] } in
  add "store/load-text" (fun () -> Graph_io.of_string text);
  add "store/load-snap" (fun () -> Snapshot.of_string snap);
  (* Observability self-overhead: the same instrumented hot path with
     the registry off and on. check_bench.py --max-overhead gates the
     on/off ratio (sharded counters and log-bucketed histograms should
     cost well under 5%). The two sides are timed ALTERNATING within
     one block — timing them as two separate time_ns blocks lets
     clock/GC drift between the blocks masquerade as overhead (easily
     ±10% at 3 reps of a 70ms op, swamping the real 1-3% signal). *)
  let module Obs = Rs_obs.Obs in
  let f_off () = ignore (Sys.opaque_identity (Remote_spanner.exact_distance g)) in
  let f_on () =
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.set_enabled false;
        Obs.reset ())
      (fun () -> ignore (Sys.opaque_identity (Remote_spanner.exact_distance g)))
  in
  f_off ();
  f_on ();
  let off_ts = ref [] and on_ts = ref [] and reps = ref 0 in
  let t_start = now () in
  while now () -. t_start < 0.8 || !reps < 8 do
    let t0 = now () in
    f_off ();
    let t1 = now () in
    f_on ();
    off_ts := (t1 -. t0) :: !off_ts;
    on_ts := (now () -. t1) :: !on_ts;
    incr reps
  done;
  (* Report the per-side minimum: the alternation above gives both
     sides equal exposure to any load episode, and the min of dozens
     of reps is each side's clean-window rate (timing noise only adds
     time). A mean or median of either side can read a spurious ±5% —
     swamping the real 1-3% instrumentation cost — when contention
     spans several consecutive reps. *)
  let best ts = List.fold_left Float.min Float.infinity ts *. 1e9 in
  rows := (tag "obs/exact-off", best !off_ts) :: !rows;
  rows := (tag "obs/exact-on", best !on_ts) :: !rows
  end

let () =
  let has a = Array.exists (( = ) a) Sys.argv in
  let plan =
    if has "quick" then [ (300, `Full) ]
    else if has "scale" then
      [ (1_000, `Reduced); (10_000, `Reduced); (100_000, `Reduced) ]
    else if has "huge" then
      [ (1_000, `Reduced); (10_000, `Reduced); (100_000, `Reduced);
        (1_000_000, `Reduced) ]
    else
      [ (300, `Full); (1_000, `Full); (2_000, `Full); (10_000, `Reduced);
        (100_000, `Reduced) ]
  in
  let rows = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter (fun (n, tier) -> bench_size rows ~seen ~tier ~n) plan;
  let rows = List.sort compare !rows in
  Printf.printf "%-28s | %s\n" "benchmark" "time/op";
  print_endline (String.make 42 '-');
  List.iter (fun (name, ns) -> Printf.printf "%-28s | %s\n" name (human ns)) rows;
  let json =
    Rs_obs.Json.Obj (List.map (fun (name, ns) -> (name, Rs_obs.Json.Float ns)) rows)
  in
  let oc = open_out "BENCH_hotpath.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Rs_obs.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Printf.printf "wrote BENCH_hotpath.json (%d benchmarks)\n" (List.length rows)
