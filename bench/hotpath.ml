(* Hot-path microbenchmarks gating the CSR / scratch / lazy-greedy /
   work-stealing overhaul.

   Usage:
     dune exec bench/hotpath.exe             full sizes (n = 300, 1000, 2000)
     dune exec bench/hotpath.exe -- quick    n = 300 only (CI)

   Writes BENCH_hotpath.json (benchmark name -> ns/op) to the working
   directory. scripts/check_bench.py compares a fresh run against the
   committed baseline and fails CI on a >25% regression; see
   docs/PERFORMANCE.md for how to read the numbers. *)

open Rs_graph
open Rs_core

let now = Rs_obs.Obs.now

(* Same constant-density unit disk model as bench/support.ml (kept
   local: dune executables in one directory cannot share modules). *)
let udg ~seed ~n ~density =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. density) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

(* Wall-clock ns/op: one warm-up call, then repeat until both bounds
   are met. Coarser than Bechamel's OLS but robust for the multi-second
   union/verify runs at n = 2000. *)
let time_ns ?(min_time = 0.2) ?(min_reps = 3) f =
  ignore (Sys.opaque_identity (f ()));
  let reps = ref 0 in
  let t0 = now () in
  let rec go () =
    ignore (Sys.opaque_identity (f ()));
    incr reps;
    if now () -. t0 < min_time || !reps < min_reps then go ()
  in
  go ();
  (now () -. t0) *. 1e9 /. float_of_int !reps

let human ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let bench_size rows ~n =
  let g = udg ~seed:4242 ~n ~density:4.0 in
  let tag name = Printf.sprintf "%s/udg%d" name n in
  let add name f = rows := (tag name, time_ns f) :: !rows in
  let scratch = Bfs.Scratch.create () in
  add "bfs/dist" (fun () -> Bfs.dist g 0);
  add "bfs/scratch_run" (fun () -> Bfs.Scratch.run scratch g 0);
  add "domtree/gdy-r3b1" (fun () -> Dom_tree.gdy ~scratch g ~r:3 ~beta:1 0);
  add "domtree/mis-r3" (fun () -> Dom_tree.mis ~scratch g ~r:3 0);
  add "domtree/gdy_k2" (fun () -> Dom_tree_k.gdy_k ~scratch g ~k:2 0);
  add "union/exact-seq" (fun () -> Remote_spanner.exact_distance g);
  add "union/exact-par4" (fun () -> Parallel.exact_distance ~domains:4 g);
  let h = Remote_spanner.exact_distance g in
  add "verify/seq" (fun () -> Verify.is_remote_spanner g h ~alpha:1.0 ~beta:0.0);
  add "verify/par4" (fun () ->
      Parallel.is_remote_spanner ~domains:4 g h ~alpha:1.0 ~beta:0.0);
  (* Incremental repair: remove a batch of spread-out edges, then
     restore them (state cycles back, so the benchmark is steady).
     Compare against union/exact-seq, the from-scratch rebuild of the
     same (1,0) spanner. *)
  let module D = Rs_dynamic.Delta in
  let module R = Rs_dynamic.Repair in
  let st = R.init (R.Gdy_k { k = 1 }) g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let add_repair name size =
    let size = max 1 size in
    let step = max 1 (m / size) in
    let pairs = List.init size (fun i -> edges.(i * step)) in
    let removals = List.map (fun (u, v) -> D.Remove_edge (u, v)) pairs in
    let restores = List.map (fun (u, v) -> D.Add_edge (u, v)) pairs in
    add name (fun () ->
        ignore (R.apply st removals);
        ignore (R.apply st restores))
  in
  add_repair "repair/delta1" 1;
  add_repair "repair/delta-n100" (n / 100);
  add_repair "repair/delta-n10" (n / 10)

let () =
  let quick = Array.exists (( = ) "quick") Sys.argv in
  let sizes = if quick then [ 300 ] else [ 300; 1000; 2000 ] in
  let rows = ref [] in
  List.iter (fun n -> bench_size rows ~n) sizes;
  let rows = List.sort compare !rows in
  Printf.printf "%-28s | %s\n" "benchmark" "time/op";
  print_endline (String.make 42 '-');
  List.iter (fun (name, ns) -> Printf.printf "%-28s | %s\n" name (human ns)) rows;
  let json =
    Rs_obs.Json.Obj (List.map (fun (name, ns) -> (name, Rs_obs.Json.Float ns)) rows)
  in
  let oc = open_out "BENCH_hotpath.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Rs_obs.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Printf.printf "wrote BENCH_hotpath.json (%d benchmarks)\n" (List.length rows)
