(* Resident-service benchmark: query latency under a sustained delta
   stream, and the overload degradation curve.

   Usage:
     dune exec bench/service.exe             4 s steady phase
     dune exec bench/service.exe -- quick    1.5 s steady phase (CI)

   Four phases:

   - steady: an ephemeral service (the shipped default config) takes a
     ~200 deltas/s churn stream from a driver domain while the main
     domain issues route / advert / stats queries in a closed loop.
     Reported: sustained qps, and the p50 / p99 of the service's own
     per-response latency accounting.

   - tcp steady: the same mix through lib/net — one framed TCP
     connection in a closed loop, measuring the full wire round trip.

   - replica catch-up: a cold replica bootstraps from a leader holding
     a fixed number of WAL records (snapshot ship + streamed replay
     through Repair) and the row is the wall time to lag 0.

   - degradation: a deliberately under-provisioned service (capacity-8
     ingest queue, a writer slowed to ~2 ms per batch) is flooded at
     increasing offered rates. Overload must surface as explicit
     rejections with bounded queue depth — never as growing memory —
     and once the circuit breaker opens, as stale-flagged reads. The
     curve is printed; only the steady-phase latency rows go into
     BENCH_service.json (rejection counts are scheduling-dependent and
     would flake a regression gate).

   Writes BENCH_service.json (row -> ns) for scripts/check_bench.py,
   gated in CI with a lenient threshold: service rows measure queue
   round trips across domains on a shared runner, an order of
   magnitude noisier than the single-domain hotpath rows. *)

open Rs_graph
module Service = Rs_serve.Service
module Delta = Rs_dynamic.Delta
module Repair = Rs_dynamic.Repair
module Store = Rs_store.Store
module Wal = Rs_store.Wal
module Repl = Rs_net.Repl

let now = Rs_obs.Obs.now

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Sys.readdir path |> Array.iter (fun n -> rm_rf (Filename.concat path n));
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Same constant-density unit disk model as bench/support.ml. *)
let udg ~seed ~n ~density =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. density) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let quantile sorted q =
  let last = Array.length sorted - 1 in
  sorted.(int_of_float (ceil (q *. float_of_int last)))

(* Cycle through the edge set removing then restoring, so the topology
   (and repair cost) is steady over any horizon. *)
let churn_driver svc g ~period_s ~stop ~accepted () =
  let edges = Graph.edges g in
  let m = Array.length edges in
  let i = ref 0 in
  while not (Atomic.get stop) do
    let u, v = edges.(!i mod m) in
    let op =
      if !i / m mod 2 = 0 then Delta.Remove_edge (u, v) else Delta.Add_edge (u, v)
    in
    (match Service.offer svc [ op ] with
    | Ok () -> Atomic.incr accepted
    | Error _ -> ());
    incr i;
    Unix.sleepf period_s
  done

let steady ~dur ~n rows =
  let g = udg ~seed:4242 ~n ~density:4.0 in
  let svc =
    Service.start Service.default_config
      (Service.Ephemeral { specs = [ Repair.Gdy_k { k = 1 } ]; g })
  in
  let stop = Atomic.make false in
  let accepted = Atomic.make 0 in
  let driver =
    Domain.spawn (churn_driver svc g ~period_s:0.005 ~stop ~accepted)
  in
  let rand = Rand.create 7 in
  let lat = ref [] in
  let count = ref 0 in
  let nn = Graph.n g in
  let t0 = now () in
  while now () -. t0 < dur do
    let q =
      match !count mod 4 with
      | 0 | 1 ->
          Service.Route { src = Rand.int rand nn; dst = Rand.int rand nn }
      | 2 -> Service.Advert (Rand.int rand nn)
      | _ -> Service.Stats
    in
    let r = Service.query svc q in
    (match r.Service.answer with
    | Ok _ -> lat := r.Service.latency_ms :: !lat
    | Error _ -> ());
    incr count
  done;
  let elapsed = now () -. t0 in
  Atomic.set stop true;
  Domain.join driver;
  let st = Service.stop svc in
  let sorted = Array.of_list !lat in
  Array.sort compare sorted;
  let p50 = quantile sorted 0.50 *. 1e6 in
  let p99 = quantile sorted 0.99 *. 1e6 in
  let mean = elapsed *. 1e9 /. float_of_int (max 1 !count) in
  Printf.printf
    "steady (udg%d, %.1f s, %d deltas applied): %.0f qps, route+mixed p50 \
     %.0f us, p99 %.0f us\n"
    n elapsed st.Service.s_seq
    (float_of_int !count /. elapsed)
    (p50 /. 1e3) (p99 /. 1e3);
  if st.Service.s_seq = 0 then
    failwith "service bench: no delta ever applied during the steady phase";
  rows :=
    (Printf.sprintf "service/query_mean/udg%d" n, mean)
    :: (Printf.sprintf "service/query_p50/udg%d" n, p50)
    :: (Printf.sprintf "service/query_p99/udg%d" n, p99)
    :: !rows

(* The same steady mix over the TCP transport: a leader on an
   ephemeral port answers a closed-loop client speaking the framed
   line protocol, so the row measures the full round trip — length
   prefix, CRC, socket, Proto parse — not just the in-process queue
   hop. *)
let tcp_steady ~dur ~n rows =
  let g = udg ~seed:4242 ~n ~density:4.0 in
  let svc =
    Service.start Service.default_config
      (Service.Ephemeral { specs = [ Repair.Gdy_k { k = 1 } ]; g })
  in
  let stop = Atomic.make false in
  let accepted = Atomic.make 0 in
  let driver =
    Domain.spawn (churn_driver svc g ~period_s:0.005 ~stop ~accepted)
  in
  let ld =
    match Repl.lead ~service:svc ~store_dir:None ~host:"127.0.0.1" ~port:0 () with
    | Ok ld -> ld
    | Error e -> failwith ("service bench: tcp lead: " ^ e)
  in
  let fd =
    match
      Repl.connect_query ~host:"127.0.0.1" ~port:(Repl.leader_port ld)
        ~timeout_s:5.0
    with
    | Ok fd -> fd
    | Error e -> failwith ("service bench: tcp connect: " ^ e)
  in
  let rand = Rand.create 7 in
  let nn = Graph.n g in
  let lat = ref [] in
  let count = ref 0 in
  let t0 = now () in
  while now () -. t0 < dur do
    let line =
      match !count mod 4 with
      | 0 | 1 ->
          Printf.sprintf "route %d %d" (Rand.int rand nn) (Rand.int rand nn)
      | 2 -> Printf.sprintf "advert %d" (Rand.int rand nn)
      | _ -> "stats"
    in
    let q0 = now () in
    (match Repl.request fd ~timeout_s:5.0 line with
    | Ok _ -> lat := (now () -. q0) :: !lat
    | Error e -> failwith ("service bench: tcp request: " ^ e));
    incr count
  done;
  let elapsed = now () -. t0 in
  Unix.close fd;
  Atomic.set stop true;
  Domain.join driver;
  Repl.stop_leader ld;
  ignore (Service.stop svc);
  let sorted = Array.of_list !lat in
  Array.sort compare sorted;
  let p50 = quantile sorted 0.50 *. 1e9 in
  let p99 = quantile sorted 0.99 *. 1e9 in
  Printf.printf
    "tcp steady (udg%d, %.1f s): %.0f qps over one framed connection, p50 \
     %.0f us, p99 %.0f us\n"
    n elapsed
    (float_of_int !count /. elapsed)
    (p50 /. 1e3) (p99 /. 1e3);
  rows :=
    (Printf.sprintf "service/tcp_query_p50/udg%d" n, p50)
    :: (Printf.sprintf "service/tcp_query_p99/udg%d" n, p99)
    :: !rows

(* Cold-replica catch-up: snapshot ship plus WAL replay through
   incremental repair until lag 0. The delta count is a constant (the
   quick and full modes agree) so the row is comparable across runs. *)
let replica_catchup ~n ~deltas rows =
  let g = udg ~seed:4242 ~n ~density:4.0 in
  let root = "_bench_repl_scratch" in
  (try rm_rf root with Unix.Unix_error _ | Sys_error _ -> ());
  let ldir = Filename.concat root "leader" in
  let rdir = Filename.concat root "replica" in
  let store =
    Store.create ~policy:Wal.Always ~dir:ldir ~specs:[ Repair.Gdy_k { k = 1 } ] g
  in
  let svc =
    Service.start { Service.default_config with batch_max = 1 } (Service.Durable store)
  in
  let ld =
    match
      Repl.lead ~service:svc ~store_dir:(Some ldir) ~host:"127.0.0.1" ~port:0 ()
    with
    | Ok ld -> ld
    | Error e -> failwith ("service bench: replica lead: " ^ e)
  in
  let edges = Graph.edges g in
  if Array.length edges < deltas then
    failwith "service bench: graph too small for the catch-up delta count";
  for i = 0 to deltas - 1 do
    let u, v = edges.(i) in
    let rec offer () =
      match Service.offer svc [ Delta.Remove_edge (u, v) ] with
      | Ok () -> ()
      | Error _ ->
          Unix.sleepf 0.002;
          offer ()
    in
    offer ()
  done;
  while not (Service.idle svc) do
    Unix.sleepf 0.002
  done;
  let t0 = now () in
  let r =
    match
      Repl.follow ~service_config:Service.default_config ~dir:rdir
        ~host:"127.0.0.1" ~port:(Repl.leader_port ld) ()
    with
    | Ok r -> r
    | Error e -> failwith ("service bench: follow: " ^ e)
  in
  let caught_up () =
    Repl.lag r = 0 && Service.ingested_seq (Repl.replica_service r) >= deltas
  in
  let deadline = now () +. 60.0 in
  while (not (caught_up ())) && now () < deadline do
    Unix.sleepf 0.002
  done;
  let dt = now () -. t0 in
  if not (caught_up ()) then failwith "service bench: replica catch-up timed out";
  ignore (Repl.stop_replica r);
  Repl.stop_leader ld;
  ignore (Service.stop svc);
  (try rm_rf root with Unix.Unix_error _ | Sys_error _ -> ());
  Printf.printf
    "replica catch-up (udg%d, %d WAL records behind): %.1f ms from empty \
     directory to lag 0\n"
    n deltas (dt *. 1e3);
  rows := (Printf.sprintf "service/replica_catchup/udg%d" n, dt *. 1e9) :: !rows

(* Offered-rate sweep against a tiny queue and a slowed writer. *)
let degradation ~n =
  let g = udg ~seed:4242 ~n ~density:4.0 in
  let capacity = 8 in
  let cfg =
    { Service.default_config with
      ingest_capacity = capacity;
      batch_max = 4;
      repair_budget_s = 0.01;
      breaker_trips = 2;
      open_backlog = 4;
      before_apply = Some (fun _ _ -> Unix.sleepf 0.002) }
  in
  let svc =
    Service.start cfg
      (Service.Ephemeral { specs = [ Repair.Gdy_k { k = 1 } ]; g })
  in
  let edges = Graph.edges g in
  let m = Array.length edges in
  Printf.printf "\ndegradation curve (udg%d, ingest capacity %d, ~2 ms/batch writer):\n"
    n capacity;
  Printf.printf "  %-12s | %-10s | %-10s | %-9s | %s\n" "offered/s" "accepted/s"
    "rejected" "max queue" "stale reads";
  let saw_rejection = ref false and depth_ok = ref true in
  List.iter
    (fun rate ->
      let window = 0.4 in
      let period = 1.0 /. float_of_int rate in
      let acc = ref 0 and rej = ref 0 and max_depth = ref 0 and stale = ref 0 in
      let i = ref 0 in
      let t0 = now () in
      while now () -. t0 < window do
        let u, v = edges.(!i mod m) in
        let op =
          if !i / m mod 2 = 0 then Delta.Remove_edge (u, v)
          else Delta.Add_edge (u, v)
        in
        (match Service.offer svc [ op ] with
        | Ok () -> incr acc
        | Error _ -> incr rej);
        incr i;
        let st = Service.status svc in
        max_depth := max !max_depth st.Service.s_queue;
        (* a read probe rides along: under a lagging writer these come
           back stale-flagged — degraded, never wrong or blocked *)
        if !i mod 40 = 0 then begin
          let r = Service.query ~deadline_s:0.5 svc Service.Stats in
          if r.Service.stale then incr stale
        end;
        (* spin at high rates: sleepf granularity is coarser than the period *)
        if period > 0.0005 then Unix.sleepf period
      done;
      if !rej > 0 then saw_rejection := true;
      if !max_depth > capacity then depth_ok := false;
      Printf.printf "  %-12d | %-10.0f | %-10s | %-9d | %d\n" rate
        (float_of_int !acc /. window)
        (Printf.sprintf "%d (%.0f%%)" !rej
           (100.0 *. float_of_int !rej /. float_of_int (max 1 (!acc + !rej))))
        !max_depth !stale)
    [ 500; 2_000; 8_000; 32_000 ];
  let st = Service.stop svc in
  Printf.printf
    "  drained at seq %d (breaker saw %s); overload surfaced as explicit \
     rejections: %b, queue stayed within capacity: %b\n"
    st.Service.s_seq st.Service.s_breaker !saw_rejection !depth_ok;
  if not !saw_rejection then
    failwith "service bench: flood produced no explicit rejection";
  if not !depth_ok then
    failwith "service bench: ingest queue exceeded its configured capacity"

let () =
  let quick = Array.exists (( = ) "quick") Sys.argv in
  let rows = ref [] in
  steady ~dur:(if quick then 1.5 else 4.0) ~n:300 rows;
  tcp_steady ~dur:(if quick then 1.0 else 3.0) ~n:300 rows;
  replica_catchup ~n:300 ~deltas:128 rows;
  degradation ~n:300;
  let rows = List.sort compare !rows in
  let json =
    Rs_obs.Json.Obj (List.map (fun (k, v) -> (k, Rs_obs.Json.Float v)) rows)
  in
  let oc = open_out "BENCH_service.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Rs_obs.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Printf.printf "wrote BENCH_service.json (%d benchmarks)\n" (List.length rows)
