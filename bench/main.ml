(* Experiment + benchmark harness entry point.

   Usage:
     dune exec bench/main.exe               run everything (E1..E12 + timings)
     dune exec bench/main.exe -- e3 e4      run selected experiments
     dune exec bench/main.exe -- timings    run only the Bechamel timings
     dune exec bench/main.exe -- quick      experiments only, no timings

   Timing runs also write BENCH_timings.json (benchmark name ->
   ns/run) to the working directory for machine consumption (CI
   artifacts, regression tracking). *)

let write_timings_json rows =
  let file = "BENCH_timings.json" in
  let json =
    Rs_obs.Json.Obj
      (List.map
         (fun (name, ns) ->
           (name, if Float.is_nan ns then Rs_obs.Json.Null else Rs_obs.Json.Float ns))
         rows)
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Rs_obs.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Printf.printf "wrote %s (%d benchmarks)\n" file (List.length rows)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_timings = args = [] || List.mem "timings" args in
  let selected name = args = [] || List.mem "quick" args || List.mem name args in
  print_endline "Remote-Spanners reproduction harness (Jacquet & Viennot, RR-6679 / IPDPS'09)";
  List.iter (fun (name, f) -> if selected name then f ()) Experiments.all;
  if run_timings && not (List.mem "quick" args) then write_timings_json (Timings.run ());
  Printf.printf "\n%s\n"
    (if !Support.failures = 0 then "ALL EXPERIMENT CHECKS PASSED"
     else Printf.sprintf "%d EXPERIMENT CHECKS FAILED" !Support.failures);
  exit (if !Support.failures = 0 then 0 else 1)
