(* Experiment + benchmark harness entry point.

   Usage:
     dune exec bench/main.exe               run everything (E1..E12 + timings)
     dune exec bench/main.exe -- e3 e4      run selected experiments
     dune exec bench/main.exe -- timings    run only the Bechamel timings
     dune exec bench/main.exe -- quick      experiments only, no timings *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_timings = args = [] || List.mem "timings" args in
  let selected name = args = [] || List.mem "quick" args || List.mem name args in
  print_endline "Remote-Spanners reproduction harness (Jacquet & Viennot, RR-6679 / IPDPS'09)";
  List.iter (fun (name, f) -> if selected name then f ()) Experiments.all;
  if run_timings && not (List.mem "quick" args) then Timings.run ();
  Printf.printf "\n%s\n"
    (if !Support.failures = 0 then "ALL EXPERIMENT CHECKS PASSED"
     else Printf.sprintf "%d EXPERIMENT CHECKS FAILED" !Support.failures);
  exit (if !Support.failures = 0 then 0 else 1)
