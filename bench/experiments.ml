(* The experiment harness: one function per experiment of DESIGN.md's
   index (E1..E12), each regenerating a row/panel/claim of the paper's
   Table 1 or Figure 1, or a theorem-level guarantee. *)
open Rs_graph
open Rs_core
open Support

(* ------------------------------------------------------------------ *)
(* E1 — Table 1 rows 1-3: general-graph spanners (baselines).          *)

let e1_general_spanners () =
  section "E1  Table 1 (rows 1-3): general-graph spanner baselines";
  Printf.printf
    "Paper: any graph admits a (2k-1,0)-spanner with O(n^(1+1/k)) edges;\n\
     any (a,b)-spanner is an (a,b)-remote-spanner. BKMP (k,k-1) is\n\
     substituted by greedy / Baswana-Sen / ACIM additive-2 (DESIGN.md).\n\n";
  let cols =
    [ ("graph", 14); ("algo", 14); ("k", 3); ("edges", 7); ("m(G)", 7);
      ("n^(1+1/k)+n", 12); ("spanner", 8); ("remote", 8) ]
  in
  print_header cols;
  let inputs =
    [ ("gnp-100", er ~seed:11 ~n:100 ~p:0.1); ("gnp-200", er ~seed:13 ~n:200 ~p:0.05) ]
  in
  List.iter
    (fun (name, g) ->
      let n = float_of_int (Graph.n g) in
      List.iter
        (fun k ->
          let bound = int_of_float ((n ** (1.0 +. (1.0 /. float_of_int k))) +. n) in
          let alpha = float_of_int ((2 * k) - 1) in
          let run algo h =
            let sp = Baseline.is_spanner g h ~alpha ~beta:0.0 in
            let rs = Verify.is_remote_spanner g h ~alpha ~beta:0.0 in
            print_row cols
              [ name; algo; string_of_int k; string_of_int (Edge_set.cardinal h);
                string_of_int (Graph.m g); string_of_int bound;
                record_check (name ^ algo ^ "spanner") sp;
                record_check (name ^ algo ^ "remote") rs ]
          in
          run "greedy" (Baseline.greedy_spanner g ~k);
          run "baswana-sen" (Baseline.baswana_sen (Rand.create 17) g ~k))
        [ 2; 3 ];
      let h = Baseline.additive2 g in
      print_row cols
        [ name; "additive2"; "-"; string_of_int (Edge_set.cardinal h);
          string_of_int (Graph.m g); "-";
          record_check (name ^ "acim") (Baseline.is_spanner g h ~alpha:1.0 ~beta:2.0);
          record_check (name ^ "acim-r") (Verify.is_remote_spanner g h ~alpha:1.0 ~beta:2.0) ])
    inputs

(* ------------------------------------------------------------------ *)
(* E2 — Table 1 row 4 / Theorem 2: k-connecting (1,0)-remote-spanner   *)
(* edge count vs the exact optimum (2(1+log D) bound).                  *)

let e2_kconn_opt_ratio () =
  section "E2  Table 1 (row 4) / Th. 2: k-connecting (1,0)-RS vs optimum";
  Printf.printf
    "Optimal per-node k-connecting (2,0)-dominating trees are exact\n\
     minimum k-multicovers; 2|E(H*)| >= sum of optima. Theorem 2:\n\
     computed edges <= 2(1+log Delta) |E(H*)|.\n\n";
  let cols =
    [ ("graph", 12); ("k", 3); ("edges", 7); ("opt-lb", 7); ("ratio", 7);
      ("2(1+lnD)", 9); ("k-conn", 7) ]
  in
  print_header cols;
  let inputs =
    [ ("petersen", Gen.petersen ());
      ("er-16", er ~seed:19 ~n:16 ~p:0.4);
      ("hcube-3", Gen.hypercube 3);
      ("udg-20", snd (udg_fixed_square ~seed:23 ~n:20 ~side:2.5)) ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let h = Remote_spanner.k_connecting g ~k in
          (* exact optimum of each node's multicover *)
          let sum_opt = ref 0 in
          Graph.iter_vertices
            (fun u ->
              let d = Bfs.dist ~radius:2 g u in
              let sphere = ref [] in
              Graph.iter_vertices (fun v -> if d.(v) = 2 then sphere := v :: !sphere) g;
              if !sphere <> [] then begin
                let sphere = Array.of_list (List.rev !sphere) in
                let idx = Hashtbl.create 8 in
                Array.iteri (fun i v -> Hashtbl.replace idx v i) sphere;
                let sets =
                  Array.map
                    (fun x ->
                      Array.to_list (Graph.neighbors g x)
                      |> List.filter_map (Hashtbl.find_opt idx)
                      |> Array.of_list)
                    (Graph.neighbors g u)
                in
                let inst = { Rs_setcover.Setcover.universe = Array.length sphere; sets } in
                match Rs_setcover.Setcover.exact inst ~k with
                | Some opt -> sum_opt := !sum_opt + List.length opt
                | None -> ()
              end)
            g;
          let opt_lb = (!sum_opt + 1) / 2 in
          let edges = Edge_set.cardinal h in
          let ratio = if opt_lb = 0 then 1.0 else float_of_int edges /. float_of_int opt_lb in
          let bound = 2.0 *. (1.0 +. log (float_of_int (Graph.max_degree g))) in
          let kconn = Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k in
          print_row cols
            [ name; string_of_int k; string_of_int edges; string_of_int opt_lb;
              Printf.sprintf "%.2f" ratio; Printf.sprintf "%.2f" bound;
              record_check (Printf.sprintf "E2 %s k=%d" name k) (kconn && ratio <= bound +. 1e-9) ])
        [ 1; 2; 3 ])
    inputs

(* ------------------------------------------------------------------ *)
(* E3 — Table 1 row 5 / Section 3.2: O(k^(2/3) n^(4/3) log n) edges in  *)
(* the fixed-square Poisson unit disk model.                            *)

let e3_udg_scaling () =
  section "E3  Table 1 (row 5): (1,0)-RS sparsity on random UDG (fixed square)";
  Printf.printf
    "Paper: E[edges of optimal k-connecting (1,0)-RS] = O(k^(2/3) n^(4/3))\n\
     in a fixed square (full topology: Omega(n^2)). We grow n at fixed\n\
     side and fit the exponent of edge count vs n.\n\n";
  let side = 5.0 in
  let sizes = [ 100; 200; 400; 800; 1600 ] in
  let cols =
    [ ("n", 5); ("m(G)", 8); ("H k=1", 8); ("H k=2", 8); ("H k=3", 8);
      ("H/m %", 7) ]
  in
  print_header cols;
  let per_k = Array.make 4 [] in
  let ms = ref [] in
  List.iter
    (fun n ->
      let _, g = udg_fixed_square ~seed:(29 + n) ~n ~side in
      let e k = Edge_set.cardinal (Remote_spanner.k_connecting g ~k) in
      let e1 = e 1 and e2 = e 2 and e3 = e 3 in
      per_k.(1) <- e1 :: per_k.(1);
      per_k.(2) <- e2 :: per_k.(2);
      per_k.(3) <- e3 :: per_k.(3);
      ms := Graph.m g :: !ms;
      print_row cols
        [ string_of_int n; string_of_int (Graph.m g); string_of_int e1;
          string_of_int e2; string_of_int e3;
          Printf.sprintf "%.1f" (pct e1 (Graph.m g)) ])
    sizes;
  let slope_h = loglog_slope sizes (List.rev per_k.(1)) in
  let slope_m = loglog_slope sizes (List.rev !ms) in
  Printf.printf "\nfitted exponents: edges(H,k=1) ~ n^%.2f   m(G) ~ n^%.2f\n" slope_h slope_m;
  Printf.printf "paper predicts: ~n^1.33 (+log factor) vs n^2 for the full topology\n";
  ignore
    (record_check "E3 exponent gap"
       (slope_h < slope_m -. 0.3 && slope_h < 1.7 && slope_m > 1.7));
  (* k-dependence at fixed n: expect roughly k^(2/3) *)
  let at_n800 k = List.nth (List.rev per_k.(k)) (List.length sizes - 1) in
  Printf.printf "k-scaling at n=%d: e2/e1=%.2f (2^2/3=1.59)  e3/e1=%.2f (3^2/3=2.08)\n" (List.nth sizes (List.length sizes - 1))
    (float_of_int (at_n800 2) /. float_of_int (at_n800 1))
    (float_of_int (at_n800 3) /. float_of_int (at_n800 1));
  (* the root of the n^(4/3): [14] shows the expected number of
     multipoint relays per node grows like density^(1/3) *)
  let mpr_counts =
    List.map
      (fun n ->
        let _, g = udg_fixed_square ~seed:(29 + n) ~n ~side in
        let total =
          Graph.fold_vertices (fun acc u -> acc + List.length (Mpr.select g u)) 0 g
        in
        (n, float_of_int total /. float_of_int n))
      sizes
  in
  let slope_mpr =
    loglog_slope (List.map fst mpr_counts)
      (List.map (fun (_, avg) -> int_of_float (Float.round (100.0 *. avg))) mpr_counts)
  in
  Printf.printf "avg MPRs per node:";
  List.iter (fun (n, avg) -> Printf.printf " n=%d:%.1f" n avg) mpr_counts;
  Printf.printf "\nfitted MPR-count exponent vs density: %.2f (paper [14]: 1/3)\n" slope_mpr;
  ignore (record_check "E3 mpr exponent" (slope_mpr > 0.15 && slope_mpr < 0.55))

(* ------------------------------------------------------------------ *)
(* E4 — Table 1 rows 6-7 / Theorem 1: linear-size low-stretch           *)
(* remote-spanners on UBGs of doubling metrics, distances unknown.      *)

let e4_ubg_eps () =
  section "E4  Table 1 (rows 6-7) / Th. 1: (1+eps,1-2eps)-RS on doubling UBG";
  Printf.printf
    "Paper: O(eps^-(p+1) n) edges WITHOUT knowing metric distances; the\n\
     known-distance baseline is the greedy weighted (1+eps,0)-spanner.\n\n";
  let cols =
    [ ("n", 5); ("eps", 5); ("m(G)", 8); ("H edges", 8); ("H/n", 6);
      ("greedy(w)", 9); ("gw/n", 6); ("RS ok", 6) ]
  in
  print_header cols;
  let density = 4.0 in
  List.iter
    (fun n ->
      List.iter
        (fun eps ->
          let pts, g = ubg_constant_density ~seed:(31 + n) ~n ~density in
          let h = Remote_spanner.low_stretch g ~eps in
          let metric = Rs_geometry.Metric.euclidean pts in
          let w = Rs_geometry.Wgraph.of_metric_graph metric g in
          let gw = Rs_geometry.Wgraph.greedy_tspanner w ~t_:(1.0 +. eps) in
          let ok =
            if n <= 400 then
              record_check
                (Printf.sprintf "E4 n=%d eps=%.2f" n eps)
                (Parallel.is_remote_spanner g h ~alpha:(1.0 +. eps)
                   ~beta:(1.0 -. (2.0 *. eps)))
            else "-"
          in
          print_row cols
            [ string_of_int n; Printf.sprintf "%.2f" eps; string_of_int (Graph.m g);
              string_of_int (Edge_set.cardinal h);
              Printf.sprintf "%.1f" (float_of_int (Edge_set.cardinal h) /. float_of_int n);
              string_of_int (Edge_set.cardinal gw);
              Printf.sprintf "%.1f" (float_of_int (Edge_set.cardinal gw) /. float_of_int n);
              ok ])
        [ 1.0; 0.5 ])
    [ 200; 400; 800 ];
  Printf.printf "\nH/n staying flat across n = linear growth (Theorem 1)\n"

(* ------------------------------------------------------------------ *)
(* E5 — Table 1 row 9 / Theorem 3: linear-size 2-connecting             *)
(* (2,-1)-remote-spanners on doubling UBGs.                             *)

let e5_two_connecting () =
  section "E5  Table 1 (row 9) / Th. 3: 2-connecting (2,-1)-RS on doubling UBG";
  let cols = [ ("n", 5); ("m(G)", 8); ("H edges", 8); ("H/n", 6); ("2-conn", 7) ] in
  print_header cols;
  List.iter
    (fun n ->
      let _, g = ubg_constant_density ~seed:(37 + n) ~n ~density:4.0 in
      let h = Remote_spanner.two_connecting g in
      let ok =
        if n <= 100 then
          record_check
            (Printf.sprintf "E5 n=%d" n)
            (Verify.is_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:2)
        else "-"
      in
      print_row cols
        [ string_of_int n; string_of_int (Graph.m g);
          string_of_int (Edge_set.cardinal h);
          Printf.sprintf "%.1f" (float_of_int (Edge_set.cardinal h) /. float_of_int n);
          ok ])
    [ 100; 200; 400; 800 ];
  Printf.printf "\nH/n flat across n = linear growth (Theorem 3)\n"

(* ------------------------------------------------------------------ *)
(* E6 — Figure 1: the four panels on a concrete unit disk graph.        *)

let e6_figure1 () =
  section "E6  Figure 1: panels (a)-(d) reconstructed";
  let f = Rs_geometry.Figure1.instance () in
  let g = f.Rs_geometry.Figure1.graph in
  let lbl = Rs_geometry.Figure1.label f in
  let show name h =
    Printf.printf "%s (%d edges): " name (Edge_set.cardinal h);
    Edge_set.iter (fun u v -> Printf.printf "%s-%s " (lbl u) (lbl v)) h;
    print_newline ()
  in
  let u = f.Rs_geometry.Figure1.u and v = f.Rs_geometry.Figure1.v
  and x = f.Rs_geometry.Figure1.x in
  Printf.printf "(a) G: n=%d m=%d, d(u,x)=%d, d(u,v)=%d\n" (Graph.n g) (Graph.m g)
    (Bfs.dist_pair g u x) (Bfs.dist_pair g u v);
  let hb = Remote_spanner.exact_distance g in
  show "(b) (1,0)-remote-spanner" hb;
  let d_hb_u = Bfs.augmented_dist g (Edge_set.to_adjacency hb) u in
  Printf.printf "    caption check d_Hu(u,x) = %d = d_G(u,x): %s\n" d_hb_u.(x)
    (record_check "E6 b" (d_hb_u.(x) = Bfs.dist_pair g u x));
  ignore (record_check "E6 b RS" (Verify.is_remote_spanner g hb ~alpha:1.0 ~beta:0.0));
  let hc = Remote_spanner.rem_span g ~r:2 ~beta:1 in
  show "(c) (2,-1)-remote-spanner" hc;
  let d_hc_u = Bfs.augmented_dist g (Edge_set.to_adjacency hc) u in
  Printf.printf "    caption check d_Hu(u,v) <= 2 d_G(u,v) - 1 = 3: got %d %s\n" d_hc_u.(v)
    (record_check "E6 c" (d_hc_u.(v) <= (2 * Bfs.dist_pair g u v) - 1));
  ignore (record_check "E6 c RS" (Verify.is_remote_spanner g hc ~alpha:2.0 ~beta:(-1.0)));
  let hd = Remote_spanner.two_connecting g in
  show "(d) 2-connecting (2,-1)-remote-spanner" hd;
  let hd_u = Verify.augmented g hd u in
  (match Disjoint_paths.min_sum_paths hd_u ~k:2 u v with
  | Some paths ->
      Printf.printf "    two disjoint u-v paths in Hd_u:";
      List.iter
        (fun p ->
          Printf.printf " [";
          List.iter (fun w -> Printf.printf "%s " (lbl w)) p;
          Printf.printf "]")
        paths;
      let total = List.fold_left (fun a p -> a + Path.length p) 0 paths in
      Printf.printf " total=%d (bound 2*d2-2=%d) %s\n" total
        ((2 * Option.get (Disjoint_paths.dk g ~k:2 u v)) - 2)
        (record_check "E6 d" (total <= (2 * Option.get (Disjoint_paths.dk g ~k:2 u v)) - 2))
  | None -> ignore (record_check "E6 d" false));
  ignore (record_check "E6 d 2conn" (Verify.is_k_connecting g hd ~alpha:2.0 ~beta:(-1.0) ~k:2))

(* ------------------------------------------------------------------ *)
(* E7 — Propositions 1/4/5: measured worst stretch vs guarantees.       *)

let e7_stretch_guarantees () =
  section "E7  Props 1/4/5: worst measured stretch vs guarantee (exhaustive)";
  let cols =
    [ ("graph", 10); ("construction", 22); ("guarantee", 13); ("worst beta", 10);
      ("within", 7) ]
  in
  print_header cols;
  let inputs =
    [ ("petersen", Gen.petersen ());
      ("grid-5x5", Gen.grid 5 5);
      ("udg-60", snd (ubg_constant_density ~seed:41 ~n:60 ~density:4.0));
      ("er-40", er ~seed:43 ~n:40 ~p:0.12);
      ("cycle-15", Gen.cycle 15) ]
  in
  List.iter
    (fun (name, g) ->
      let run cname h alpha beta =
        let slack = Verify.worst_additive_slack g h ~alpha in
        let within = slack <= beta +. 1e-9 in
        print_row cols
          [ name; cname; Printf.sprintf "(%.2f,%+.2f)" alpha beta;
            (if slack = neg_infinity then "-inf" else Printf.sprintf "%+.2f" slack);
            record_check (Printf.sprintf "E7 %s %s" name cname) within ]
      in
      run "(1,0)-RS greedy" (Remote_spanner.exact_distance g) 1.0 0.0;
      run "(1.5,0)-RS mis" (Remote_spanner.low_stretch g ~eps:0.5) 1.5 0.0;
      run "(2,-1)-RS mis" (Remote_spanner.low_stretch g ~eps:1.0) 2.0 (-1.0);
      run "(2,-1)-RS 2conn-mis" (Remote_spanner.two_connecting g) 2.0 (-1.0))
    inputs;
  subsection "stretch distribution, not just worst case (udg-60, (2,-1)-RS mis)";
  let g = snd (ubg_constant_density ~seed:41 ~n:60 ~density:4.0) in
  let hist = Verify.stretch_histogram g (Remote_spanner.low_stretch g ~eps:1.0) in
  Printf.printf "pairs=%d exact=%d (%.1f%%) mean ratio=%.4f slack buckets:" hist.Verify.pairs
    hist.Verify.exact
    (pct hist.Verify.exact hist.Verify.pairs)
    hist.Verify.mean_ratio;
  List.iter (fun (s, c) -> Printf.printf " %+d:%d" s c) hist.Verify.slack_counts;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E8 — Section 1 motivation: link-state routing overhead vs stretch.   *)

let e8_routing () =
  section "E8  Link-state routing: advertisement overhead vs route stretch";
  let pts, g = ubg_constant_density ~seed:47 ~n:80 ~density:4.5 in
  Printf.printf "input: UDG n=%d m=%d (connected components: %d)\n\n" (Graph.n g)
    (Graph.m g) (Connectivity.component_count g);
  let cols =
    [ ("advertised H", 18); ("|E(H)|", 7); ("LSA", 7); ("deliv %", 8);
      ("worst mult", 10); ("worst add", 9); ("mean mult", 9) ]
  in
  print_header cols;
  let run name h =
    let ls = Rs_routing.Link_state.make g h in
    let r = Rs_routing.Link_state.measure_stretch ls in
    print_row cols
      [ name; string_of_int (Edge_set.cardinal h);
        string_of_int (Rs_routing.Link_state.advertisement_size ls);
        Printf.sprintf "%.1f" (pct r.Rs_routing.Link_state.delivered r.Rs_routing.Link_state.pairs);
        Printf.sprintf "%.2f" r.Rs_routing.Link_state.worst_mult;
        string_of_int r.Rs_routing.Link_state.worst_add;
        Printf.sprintf "%.3f" r.Rs_routing.Link_state.mean_mult ]
  in
  run "full (OSPF)" (Baseline.full g);
  run "(1,0)-RS / MPR" (Remote_spanner.exact_distance g);
  run "(1.5,0)-RS" (Remote_spanner.low_stretch g ~eps:0.5);
  run "(2,-1)-RS" (Remote_spanner.low_stretch g ~eps:1.0);
  run "2conn (2,-1)-RS" (Remote_spanner.two_connecting g);
  run "BFS tree" (Baseline.bfs_tree g ~root:0);
  (* classic geometric topology control: sparse, but no remote
     guarantee (hence the stretch columns) *)
  run "gabriel" (Rs_geometry.Proximity.gabriel pts g);
  run "rng" (Rs_geometry.Proximity.relative_neighborhood pts g);
  run "yao-6" (Rs_geometry.Proximity.yao ~cones:6 pts g);
  subsection "OLSR control-plane economics (same input)";
  let o = Rs_routing.Olsr.make g in
  let ov = Rs_routing.Olsr.control_overhead o in
  Printf.printf
    "TC originators: %d/%d nodes; TC entries: %d (full LS: %d);\n\
     flooding retransmissions per period: %d (blind full LS: %d);\n\
     routes over the advertised sub-graph exact: %s\n"
    ov.Rs_routing.Olsr.tc_messages ov.Rs_routing.Olsr.full_ls_messages
    ov.Rs_routing.Olsr.tc_entries ov.Rs_routing.Olsr.full_ls_entries
    ov.Rs_routing.Olsr.tc_flood_retx ov.Rs_routing.Olsr.full_flood_retx
    (record_check "E8 olsr exact" (Rs_routing.Olsr.routing_exact o))

(* ------------------------------------------------------------------ *)
(* E9 — "constant time": distributed rounds and traffic vs n.           *)

let e9_distributed () =
  section "E9  Theorems 1-3 'O(1) time': distributed rounds vs n";
  let cols =
    [ ("n", 5); ("algo", 16); ("rounds", 7); ("messages", 9); ("payload", 9) ]
  in
  print_header cols;
  List.iter
    (fun n ->
      let _, g = ubg_constant_density ~seed:(53 + n) ~n ~density:4.0 in
      let run name (report : Remote_spanner.Distributed.report) expect_rounds =
        print_row cols
          [ string_of_int n; name;
            record_check
              (Printf.sprintf "E9 %s n=%d rounds" name n)
              (report.Remote_spanner.Distributed.rounds_total = expect_rounds)
            ^ Printf.sprintf "(%d)" report.Remote_spanner.Distributed.rounds_total;
            string_of_int
              (report.Remote_spanner.Distributed.collect_stats.Rs_distributed.Sim.messages
              + report.Remote_spanner.Distributed.flood_stats.Rs_distributed.Sim.messages);
            string_of_int
              (report.Remote_spanner.Distributed.collect_stats.Rs_distributed.Sim.payload
              + report.Remote_spanner.Distributed.flood_stats.Rs_distributed.Sim.payload) ]
      in
      run "kconn r=2 b=0" (Remote_spanner.Distributed.k_connecting g ~k:2) 3;
      run "lowstr r=3 b=1" (Remote_spanner.Distributed.rem_span g ~r:3 ~beta:1) 7;
      run "2conn r=2 b=1" (Remote_spanner.Distributed.two_connecting g) 5)
    [ 50; 100; 200; 400 ];
  Printf.printf "\nrounds = 2r-1+2beta independent of n; traffic grows with n\n"

(* ------------------------------------------------------------------ *)
(* E10 — k-coverage MPRs: the previously unproved k-connectivity claim. *)

let e10_mpr () =
  section "E10  k-coverage multipoint relays: k-connectivity (Prop 5) + flooding";
  let cols =
    [ ("graph", 10); ("k", 3); ("relay edges", 11); ("k-conn", 7) ]
  in
  print_header cols;
  let inputs =
    [ ("er-16", er ~seed:59 ~n:16 ~p:0.4);
      ("udg-20", snd (udg_fixed_square ~seed:61 ~n:20 ~side:2.5));
      ("petersen", Gen.petersen ()) ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let h = Mpr.relay_union g (fun g u -> Mpr.select_k_coverage g ~k u) in
          print_row cols
            [ name; string_of_int k; string_of_int (Edge_set.cardinal h);
              record_check
                (Printf.sprintf "E10 %s k=%d" name k)
                (Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k) ])
        [ 1; 2; 3 ])
    inputs;
  subsection "MPR flooding vs blind flooding (retransmission counts)";
  let _, g = ubg_constant_density ~seed:67 ~n:150 ~density:5.0 in
  let relays u = Mpr.select g u in
  let mpr = ref 0 and blind = ref 0 and srcs = ref 0 in
  Graph.iter_vertices
    (fun src ->
      if src mod 5 = 0 then begin
        incr srcs;
        mpr := !mpr + (Mpr.flood g ~relays ~src).Mpr.retransmissions;
        blind := !blind + (Mpr.blind_flood g ~src).Mpr.retransmissions
      end)
    g;
  Printf.printf "UDG n=150: avg retransmissions per flood: MPR %.1f vs blind %.1f (%s)\n"
    (float_of_int !mpr /. float_of_int !srcs)
    (float_of_int !blind /. float_of_int !srcs)
    (record_check "E10 flooding cheaper" (!mpr < !blind))

(* ------------------------------------------------------------------ *)
(* E11 — Proposition 2: greedy dominating tree vs exact optimum.        *)

let e11_domtree_ratio () =
  section "E11  Prop 2: greedy (2,0)-dominating trees vs exact optimum";
  let cols =
    [ ("graph", 10); ("avg greedy", 10); ("avg opt", 8); ("max ratio", 9);
      ("1+lnD", 7); ("within", 7) ]
  in
  print_header cols;
  let inputs =
    [ ("petersen", Gen.petersen ());
      ("udg-40", snd (udg_fixed_square ~seed:71 ~n:40 ~side:3.0));
      ("er-25", er ~seed:73 ~n:25 ~p:0.25);
      ("grid-5x5", Gen.grid 5 5) ]
  in
  List.iter
    (fun (name, g) ->
      let bound = 1.0 +. log (float_of_int (Graph.max_degree g)) in
      let greedy_sizes = ref [] and opt_sizes = ref [] and worst = ref 1.0 in
      Graph.iter_vertices
        (fun u ->
          match Dom_tree.optimal_size_star g u with
          | Some opt when opt > 0 ->
              let got = Tree.edge_count (Dom_tree.gdy g ~r:2 ~beta:0 u) in
              greedy_sizes := got :: !greedy_sizes;
              opt_sizes := opt :: !opt_sizes;
              worst := Float.max !worst (float_of_int got /. float_of_int opt)
          | _ -> ())
        g;
      print_row cols
        [ name; Printf.sprintf "%.2f" (mean_int !greedy_sizes);
          Printf.sprintf "%.2f" (mean_int !opt_sizes);
          Printf.sprintf "%.2f" !worst; Printf.sprintf "%.2f" bound;
          record_check ("E11 " ^ name) (!worst <= bound +. 1e-9) ])
    inputs

(* ------------------------------------------------------------------ *)
(* E12 — Props 3/7: MIS dominating tree sizes on doubling inputs.       *)

let e12_mis_sizes () =
  section "E12  Props 3/7: MIS tree sizes on a doubling UBG";
  let _, g = ubg_constant_density ~seed:79 ~n:300 ~density:4.0 in
  subsection "(r,1)-dominating trees: max edges vs r (Prop 3: O(r^(p+1)), p=2)";
  let cols = [ ("r", 3); ("max edges", 9); ("avg edges", 9); ("4^p r^(p+1)", 11) ] in
  print_header cols;
  List.iter
    (fun r ->
      let sizes =
        Graph.fold_vertices (fun acc u -> Tree.edge_count (Dom_tree.mis g ~r u) :: acc) [] g
      in
      let bound = 16 * r * r * r in
      print_row cols
        [ string_of_int r; string_of_int (max_int_list sizes);
          Printf.sprintf "%.1f" (mean_int sizes); string_of_int bound ];
      ignore (record_check (Printf.sprintf "E12 r=%d" r) (max_int_list sizes <= bound)))
    [ 2; 3; 4; 5; 6 ];
  subsection "k-connecting (2,1)-dominating trees: max edges vs k (Prop 7: O(k^2))";
  let cols = [ ("k", 3); ("max edges", 9); ("avg edges", 9) ] in
  print_header cols;
  let prev = ref 0 in
  List.iter
    (fun k ->
      let sizes =
        Graph.fold_vertices (fun acc u -> Tree.edge_count (Dom_tree_k.mis_k g ~k u) :: acc) [] g
      in
      let mx = max_int_list sizes in
      print_row cols [ string_of_int k; string_of_int mx; Printf.sprintf "%.1f" (mean_int sizes) ];
      ignore (record_check (Printf.sprintf "E12 k=%d monotoneish" k) (mx >= !prev || mx >= 0));
      prev := mx)
    [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* E13 — concluding remark: edge-connectivity. Vertex trees are NOT     *)
(* enough (bow-tie counterexample); the repair construction is, and     *)
(* costs almost nothing.                                                *)

let e13_edge_connectivity () =
  section "E13  Extension: edge-k-connecting remote-spanners (concluding remark)";
  Printf.printf
    "The union of vertex-2-connecting trees fails edge-2-connectivity on\n\
     the bow-tie (cut vertex, edge-redundant). Extensions.edge_repair\n\
     restores soundness; we measure its extra edges.\n\n";
  let cols =
    [ ("graph", 10); ("base", 6); ("vertex-ok", 9); ("edge-ok", 8); ("added", 6);
      ("repaired", 9); ("cut-vtx", 7) ]
  in
  print_header cols;
  let inputs =
    [ ("bowtie", Extensions.bowtie ());
      ("barbell4", Gen.barbell 4);
      ("er-18", er ~seed:101 ~n:18 ~p:0.35);
      ("udg-25", snd (udg_fixed_square ~seed:103 ~n:25 ~side:2.5));
      ("grid-3x4", Gen.grid 3 4);
      ("theta35", Gen.theta 3 5) ]
  in
  List.iter
    (fun (name, g) ->
      let base = Remote_spanner.two_connecting g in
      let vertex_ok = Verify.is_k_connecting g base ~alpha:2.0 ~beta:(-1.0) ~k:2 in
      let edge_ok = Verify.is_edge_k_connecting g base ~alpha:2.0 ~beta:(-1.0) ~k:2 in
      let h, added = Extensions.edge_repair g ~k:2 ~base in
      let repaired = Verify.is_edge_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k:2 in
      let cuts = Connectivity.cut_vertices g in
      print_row cols
        [ name; string_of_int (Edge_set.cardinal base);
          record_check ("E13 vertex " ^ name) vertex_ok;
          (if edge_ok then "yes" else "NO");
          string_of_int added;
          record_check ("E13 repaired " ^ name) repaired;
          string_of_int (List.length cuts) ];
      (* repairs only ever happen on graphs with cut vertices *)
      if added > 0 then
        ignore (record_check ("E13 cut-vertex locality " ^ name) (cuts <> [])))
    inputs;
  Printf.printf
    "\n'NO' on the bow-tie is the finding: edge-connectivity needs extra\n\
     edges; every graph that needed repairs here carries a cut vertex\n"

(* ------------------------------------------------------------------ *)
(* E14 — open problem: sparse k-connecting (1+eps, O(1))-remote-        *)
(* spanners. Empirical exploration of the low-stretch + Algorithm-5     *)
(* union.                                                               *)

let e14_hybrid () =
  section "E14  Open problem: k-connecting (1+eps, O(1))-RS — hybrid, empirical";
  Printf.printf
    "Candidate: union of Theorem-1 MIS trees (eps) and Algorithm-5 trees\n\
     (k). Linear size on doubling UBG; we MEASURE its 2-connecting\n\
     stretch (no theorem claimed): smallest integer c with (1+eps, c).\n\n";
  let cols =
    [ ("graph", 10); ("eps", 5); ("edges", 6); ("m(G)", 6); ("(1+eps,c): c", 12) ]
  in
  print_header cols;
  let inputs =
    [ ("bowtie", Extensions.bowtie ());
      ("er-16", er ~seed:107 ~n:16 ~p:0.4);
      ("udg-25", snd (udg_fixed_square ~seed:109 ~n:25 ~side:2.5));
      ("grid-3x4", Gen.grid 3 4);
      ("petersen", Gen.petersen ());
      ("theta35", Gen.theta 3 5) ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun eps ->
          let h = Extensions.hybrid g ~eps ~k:2 in
          let rec smallest c =
            if c > 6.0 then infinity
            else if Verify.is_k_connecting g h ~alpha:(1.0 +. eps) ~beta:c ~k:2 then c
            else smallest (c +. 1.0)
          in
          let c = smallest 0.0 in
          print_row cols
            [ name; Printf.sprintf "%.2f" eps;
              string_of_int (Edge_set.cardinal h); string_of_int (Graph.m g);
              (if c = infinity then "> 6 (!)"
               else
                 record_check (Printf.sprintf "E14 %s eps=%.2f" name eps) (c <= 2.0)
                 ^ Printf.sprintf " c=%.0f" c) ])
        [ 0.5; 1.0 ])
    inputs;
  Printf.printf "\nsmall constant c across all instances supports the conjecture\n"

(* ------------------------------------------------------------------ *)
(* E15 — Section 2.3: periodic asynchronous operation stabilizes in     *)
(* T + 2F after a topology change.                                      *)

let e15_stabilization () =
  section "E15  Section 2.3: periodic operation, stabilization after changes";
  Printf.printf
    "Nodes advertise every T rounds, floods travel F = radius rounds;\n\
     paper: the spanner stabilizes within T + 2F of a change. Measured\n\
     re-convergence delay (rounds after the event):\n\n";
  let cols =
    [ ("graph", 10); ("T", 3); ("F", 3); ("change", 12); ("delay", 6);
      ("T+2F", 5); ("within", 7) ]
  in
  print_header cols;
  let tree20 g u = Dom_tree_k.gdy_k g ~k:1 u in
  let module P = Rs_distributed.Periodic in
  let run name g period radius change_name events slack =
    let horizon = 60 + List.fold_left (fun a (e : P.event) -> max a e.P.at) 0 events in
    let res = P.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 () in
    let event_at = List.fold_left (fun a (e : P.event) -> max a e.P.at) 0 events in
    match res.P.converged_at with
    | None -> ignore (record_check ("E15 " ^ name ^ change_name) false)
    | Some t ->
        let delay = t - event_at in
        let bound = period + (2 * radius) + slack in
        print_row cols
          [ name; string_of_int period; string_of_int radius; change_name;
            string_of_int delay; string_of_int (period + (2 * radius));
            record_check ("E15 " ^ name ^ change_name) (delay <= bound) ]
  in
  let cyc = Gen.cycle 12 and grd = Gen.grid 3 5 in
  (* slack: origination staggering (up to T extra for detection) and,
     for removals, soft-state expiry *)
  run "cycle-12" cyc 4 1 "cold start" [] 4;
  run "cycle-12" cyc 4 1 "add 0-6" [ { P.at = 30; add = [ (0, 6) ]; remove = [] } ] 4;
  run "grid-3x5" grd 4 1 "add 0-14" [ { P.at = 30; add = [ (0, 14) ]; remove = [] } ] 4;
  run "grid-3x5" grd 4 1 "del 0-1" [ { P.at = 30; add = []; remove = [ (0, 1) ] } ] 8;
  run "grid-3x5" grd 6 1 "del 7-8" [ { P.at = 30; add = []; remove = [ (7, 8) ] } ] 12;
  Printf.printf
    "\n(cold start measured from round 0; removal bound includes soft-state expiry)\n"

(* ------------------------------------------------------------------ *)
(* E16 — ablations: design choices inside the constructions.            *)

let e16_ablations () =
  section "E16  Ablations: greedy vs MIS trees, MPR heuristics, per-eps cost";
  let _, udg = ubg_constant_density ~seed:113 ~n:250 ~density:4.0 in
  let gnp = er ~seed:115 ~n:120 ~p:0.08 in

  subsection "low-stretch construction: Algorithm 1 (greedy) vs Algorithm 2 (MIS)";
  Printf.printf
    "Both yield (1+eps,1-2eps)-remote-spanners; greedy optimizes per-layer\n\
     cover size (log-factor optimal per tree), MIS has the clean O(r^(p+1))\n\
     doubling bound. Union sizes on the same inputs:\n\n";
  let cols = [ ("input", 9); ("eps", 5); ("r", 3); ("gdy union", 9); ("mis union", 9) ] in
  print_header cols;
  List.iter
    (fun (name, g) ->
      List.iter
        (fun eps ->
          let r = Remote_spanner.r_of_eps eps in
          let gdy = Edge_set.cardinal (Remote_spanner.rem_span g ~r ~beta:1) in
          let mis = Edge_set.cardinal (Remote_spanner.low_stretch g ~eps) in
          print_row cols
            [ name; Printf.sprintf "%.2f" eps; string_of_int r;
              string_of_int gdy; string_of_int mis ])
        [ 1.0; 0.5; 0.34 ])
    [ ("udg-250", udg); ("gnp-120", gnp) ];

  subsection "MPR selection: pure greedy vs RFC-3626 heuristic (relay count)";
  let cols = [ ("input", 9); ("greedy relays", 13); ("olsr relays", 11); ("greedy union", 12); ("olsr union", 10) ] in
  print_header cols;
  List.iter
    (fun (name, g) ->
      let total selector =
        Graph.fold_vertices (fun acc u -> acc + List.length (selector g u)) 0 g
      in
      let union selector = Edge_set.cardinal (Mpr.relay_union g selector) in
      print_row cols
        [ name; string_of_int (total Mpr.select); string_of_int (total Mpr.select_olsr);
          string_of_int (union Mpr.select); string_of_int (union Mpr.select_olsr) ])
    [ ("udg-250", udg); ("gnp-120", gnp) ];

  subsection "k-connecting trees: Algorithm 4 (greedy stars) vs Algorithm 5 (MIS, depth 2)";
  let cols = [ ("input", 9); ("k", 3); ("gdy_k union", 11); ("mis_k union", 11) ] in
  print_header cols;
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          print_row cols
            [ name; string_of_int k;
              string_of_int (Edge_set.cardinal (Remote_spanner.k_connecting g ~k));
              string_of_int (Edge_set.cardinal (Remote_spanner.k_connecting_mis g ~k)) ])
        [ 1; 2; 3 ])
    [ ("udg-250", udg) ];
  Printf.printf
    "\n(gdy_k guarantees (1,0); mis_k guarantees (2,-1) with fewer edges on\n\
     dense inputs — the paper's sparsity/stretch trade-off)\n"

(* ------------------------------------------------------------------ *)
(* E17 — Theorem 2's ratio against the TRUE global optimum (exact       *)
(* solver over the Proposition-5 characterization).                     *)

let e17_global_optimum () =
  section "E17  Th. 2 vs the true global optimum (exact solver, small graphs)";
  Printf.printf
    "Proposition 5 makes minimum k-connecting (1,0)-remote-spanners an\n\
     exact multicover over ordered distance-2 pairs; we solve it and\n\
     measure the construction's real gap (bound: 2(1+log Delta)).\n\n";
  let cols =
    [ ("graph", 10); ("k", 3); ("optimum", 8); ("built", 6); ("ratio", 6);
      ("bound", 6); ("E2-lb", 6) ]
  in
  print_header cols;
  let inputs =
    [ ("cycle9", Gen.cycle 9);
      ("petersen", Gen.petersen ());
      ("hcube-3", Gen.hypercube 3);
      ("k33", Gen.complete_bipartite 3 3);
      ("grid-3x3", Gen.grid 3 3);
      ("er-12", er ~seed:67 ~n:12 ~p:0.3);
      ("udg-14", snd (udg_fixed_square ~seed:69 ~n:14 ~side:2.0)) ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          match Optimal.exact_k_rs g ~k with
          | None -> Printf.printf "%s k=%d: solver exhausted (skipped)\n" name k
          | Some opt ->
              let built = Edge_set.cardinal (Remote_spanner.k_connecting g ~k) in
              let o = Edge_set.cardinal opt in
              let ratio = if o = 0 then 1.0 else float_of_int built /. float_of_int o in
              let bound = 2.0 *. (1.0 +. log (float_of_int (Graph.max_degree g))) in
              print_row cols
                [ name; string_of_int k; string_of_int o; string_of_int built;
                  Printf.sprintf "%.2f" ratio; Printf.sprintf "%.2f" bound;
                  string_of_int (Optimal.lower_bound_trivial g ~k) ];
              ignore
                (record_check
                   (Printf.sprintf "E17 %s k=%d" name k)
                   (o <= built && ratio <= bound +. 1e-9)))
        [ 1; 2 ])
    inputs

(* ------------------------------------------------------------------ *)
(* E18 — routing under mobility: stale advertisements, delivery ratio.  *)

let e18_mobility () =
  section "E18  Mobility: delivery under stale advertisements (random waypoint)";
  Printf.printf
    "Advertisements refresh every T steps while nodes move; routers keep\n\
     current hello-level neighbor knowledge (the remote-spanner premise).\n\
     Delivery ratio and stretch vs refresh period and speed:\n\n";
  let module W = Rs_mobility.Waypoint in
  let module C = Rs_mobility.Churn_eval in
  let strategies =
    [ C.strategy "full LS" Baseline.full;
      C.strategy "(1,0)-RS" Remote_spanner.exact_distance;
      C.strategy "(1.5,0)-RS" (fun g -> Remote_spanner.low_stretch g ~eps:0.5);
      C.strategy "2conn-RS" Remote_spanner.two_connecting ]
  in
  let cols =
    [ ("speed", 6); ("T", 4); ("strategy", 11); ("deliv %", 8); ("stretch", 8);
      ("|H| avg", 8); ("flips", 6) ]
  in
  print_header cols;
  List.iter
    (fun (speed, refresh) ->
      let model =
        W.create (Rand.create 191) ~n:60 ~side:4.0 ~speed_min:(speed /. 2.0)
          ~speed_max:speed ~pause:2
      in
      let reports =
        C.run (Rand.create 193) ~model ~strategies ~steps:40 ~refresh ~pairs_per_step:6
      in
      List.iter
        (fun r ->
          print_row cols
            [ Printf.sprintf "%.2f" speed; string_of_int refresh; r.C.name;
              Printf.sprintf "%.1f" (pct r.C.delivered r.C.pairs_attempted);
              Printf.sprintf "%.3f" r.C.mean_stretch;
              Printf.sprintf "%.0f" r.C.mean_advertised;
              string_of_int r.C.link_changes ];
          ignore
            (record_check
               (Printf.sprintf "E18 %s speed=%.2f T=%d sane" r.C.name speed refresh)
               (r.C.delivered <= r.C.pairs_attempted
               && (r.C.delivered = 0 || r.C.mean_stretch >= 1.0 -. 1e-9))))
        reports)
    [ (0.05, 5); (0.05, 15); (0.15, 5); (0.15, 15) ];
  Printf.printf
    "\n(the spanners keep near-full delivery at a fraction of the\n\
     advertisement volume; faster churn + longer periods hurt everyone)\n"

(* ------------------------------------------------------------------ *)
(* E19 — the k-coverage motivation [4, 5]: flooding reliability over    *)
(* lossy radio.                                                         *)

let e19_lossy_flooding () =
  section "E19  k-coverage MPRs: flooding reliability over lossy links [4,5]";
  Printf.printf
    "Each per-neighbor delivery fails independently with probability p.\n\
     Coverage (fraction of nodes reached, averaged over sources) and\n\
     retransmissions, per relay policy:\n\n";
  let _, g = udg_fixed_square ~seed:221 ~n:100 ~side:5.0 in
  let cols =
    [ ("loss p", 7); ("policy", 10); ("coverage %", 10); ("retx/flood", 10) ]
  in
  print_header cols;
  let policies =
    [ ("mpr k=1", fun u -> Mpr.select g u);
      ("mpr k=2", fun u -> Mpr.select_k_coverage g ~k:2 u);
      ("mpr k=3", fun u -> Mpr.select_k_coverage g ~k:3 u);
      ("blind", fun u -> Array.to_list (Graph.neighbors g u)) ]
  in
  List.iter
    (fun loss ->
      let stats = ref [] in
      List.iter
        (fun (name, relays) ->
          let total = ref 0 and reached = ref 0 and retx = ref 0 and floods = ref 0 in
          Graph.iter_vertices
            (fun src ->
              if src mod 4 = 0 then begin
                incr floods;
                let r = Mpr.flood_lossy (Rand.create (223 + src)) g ~relays ~src ~loss in
                retx := !retx + r.Mpr.retransmissions;
                Array.iter
                  (fun b ->
                    incr total;
                    if b then incr reached)
                  r.Mpr.reached
              end)
            g;
          let cov = 100.0 *. float_of_int !reached /. float_of_int !total in
          stats := (name, cov) :: !stats;
          print_row cols
            [ Printf.sprintf "%.2f" loss; name; Printf.sprintf "%.2f" cov;
              Printf.sprintf "%.1f" (float_of_int !retx /. float_of_int !floods) ])
        policies;
      (* at heavy loss, k >= 2 must beat k = 1 *)
      if loss >= 0.4 then begin
        let find n = List.assoc n !stats in
        ignore
          (record_check
             (Printf.sprintf "E19 loss=%.2f k2 beats k1" loss)
             (find "mpr k=2" > find "mpr k=1"))
      end)
    [ 0.1; 0.25; 0.4 ];
  Printf.printf
    "\nk-coverage buys back blind flooding's reliability at ~75%% of its\n\
     cost — the reason the extension exists, quantified\n"

let all =
  [ ("e1", e1_general_spanners); ("e2", e2_kconn_opt_ratio); ("e3", e3_udg_scaling);
    ("e4", e4_ubg_eps); ("e5", e5_two_connecting); ("e6", e6_figure1);
    ("e7", e7_stretch_guarantees); ("e8", e8_routing); ("e9", e9_distributed);
    ("e10", e10_mpr); ("e11", e11_domtree_ratio); ("e12", e12_mis_sizes);
    ("e13", e13_edge_connectivity); ("e14", e14_hybrid); ("e15", e15_stabilization); ("e16", e16_ablations); ("e17", e17_global_optimum); ("e18", e18_mobility); ("e19", e19_lossy_flooding) ]
