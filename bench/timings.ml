(* Bechamel timing benchmarks: one Test.make per Table-1 construction,
   all in one grouped run, reported as ns/run estimates. *)
open Bechamel
open Toolkit
open Rs_graph
open Rs_core

let inputs () =
  let _, udg = Support.ubg_constant_density ~seed:97 ~n:300 ~density:4.0 in
  let gnp = Support.er ~seed:98 ~n:150 ~p:0.08 in
  (udg, gnp)

let tests () =
  let udg, gnp = inputs () in
  let stage f = Staged.stage (fun () -> ignore (f ())) in
  [
    (* Table 1 rows, top to bottom *)
    Test.make ~name:"greedy-(3,0)-spanner/gnp150"
      (stage (fun () -> Baseline.greedy_spanner gnp ~k:2));
    Test.make ~name:"baswana-sen-(3,0)/gnp150"
      (stage (fun () -> Baseline.baswana_sen (Rand.create 1) gnp ~k:2));
    Test.make ~name:"additive2-(1,2)/gnp150" (stage (fun () -> Baseline.additive2 gnp));
    Test.make ~name:"kconn-(1,0)-RS-k2/udg300"
      (stage (fun () -> Remote_spanner.k_connecting udg ~k:2));
    Test.make ~name:"(1,0)-RS/udg300" (stage (fun () -> Remote_spanner.exact_distance udg));
    Test.make ~name:"(1.5,0)-RS-mis/udg300"
      (stage (fun () -> Remote_spanner.low_stretch udg ~eps:0.5));
    Test.make ~name:"2conn-(2,-1)-RS/udg300"
      (stage (fun () -> Remote_spanner.two_connecting udg));
    Test.make ~name:"mpr-select-union/udg300"
      (stage (fun () -> Mpr.relay_union udg Mpr.select));
    (* building blocks *)
    Test.make ~name:"domtree-gdy-r3b1/udg300-node0"
      (stage (fun () -> Dom_tree.gdy udg ~r:3 ~beta:1 0));
    Test.make ~name:"domtree-mis-r3/udg300-node0" (stage (fun () -> Dom_tree.mis udg ~r:3 0));
    Test.make ~name:"domtree-gdy-k2/udg300-node0" (stage (fun () -> Dom_tree_k.gdy_k udg ~k:2 0));
    Test.make ~name:"domtree-mis-k2/udg300-node0" (stage (fun () -> Dom_tree_k.mis_k udg ~k:2 0));
    (* verification & proof machinery *)
    Test.make ~name:"dk-profile-k3/udg300-pair"
      (stage (fun () -> Disjoint_paths.dk_profile udg ~kmax:3 0 (Graph.n udg - 1)));
    Test.make ~name:"edge-dk-profile-k3/udg300-pair"
      (stage (fun () -> Edge_disjoint.dk_profile udg ~kmax:3 0 (Graph.n udg - 1)));
    (let h = Remote_spanner.rem_span gnp ~r:2 ~beta:1 in
     Test.make ~name:"prop1-route/gnp150-pair"
       (stage (fun () -> Prop1_route.construct gnp h ~r:2 0 (Graph.n gnp - 1))));
    (let h = Remote_spanner.k_connecting gnp ~k:2 in
     Test.make ~name:"lemma2-surgery/gnp150-pair"
       (stage (fun () -> Surgery.theorem2_paths gnp h ~k:2 0 (Graph.n gnp - 1))));
    (* multicore: same construction fanned over domains *)
    Test.make ~name:"(1,0)-RS-par4/udg300"
      (stage (fun () -> Parallel.exact_distance ~domains:4 udg));
    Test.make ~name:"2conn-RS-par4/udg300"
      (stage (fun () -> Parallel.two_connecting ~domains:4 udg));
  ]

(* Runs the grouped benchmarks, prints the human table, and returns the
   (name, ns/run) rows so main can also emit BENCH_timings.json. *)
let run () =
  Support.section "Timings (Bechamel, monotonic clock, ns/run)";
  let grouped = Test.make_grouped ~name:"remote-spanner" (tests ()) in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let cols = [ ("benchmark", 42); ("time/run", 14) ] in
  Support.print_header cols;
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Support.print_row cols [ name; human ])
    rows;
  rows
