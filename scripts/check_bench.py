#!/usr/bin/env python3
"""Compare a fresh BENCH_hotpath.json run against the committed baseline.

Usage: check_bench.py BASELINE CURRENT [--threshold PCT]

Both files are flat {benchmark name: ns per op} objects written by
bench/hotpath.exe. Only keys present in BOTH files are compared (the
CI quick run covers a subset of the full baseline sizes). Exits
non-zero listing every benchmark that is more than PCT percent slower
than the baseline (default 25). Speed-ups are reported but never fail.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not all(
        isinstance(v, (int, float)) for v in doc.values()
    ):
        sys.exit(f"{path}: expected a flat object of numeric ns/op values")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="allowed regression in percent (default 25)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    common = sorted(set(base) & set(cur))
    if not common:
        sys.exit("no common benchmarks between baseline and current run")

    regressions = []
    width = max(len(k) for k in common)
    print(f"{'benchmark':<{width}} | {'baseline':>12} | {'current':>12} | delta")
    print("-" * (width + 48))
    for name in common:
        b, c = base[name], cur[name]
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        flag = " <-- REGRESSION" if delta > args.threshold else ""
        print(f"{name:<{width}} | {b:12.0f} | {c:12.0f} | {delta:+6.1f}%{flag}")
        if delta > args.threshold:
            regressions.append((name, delta))

    skipped = sorted(set(base) ^ set(cur))
    if skipped:
        print(f"(not compared: {', '.join(skipped)})")

    if regressions:
        names = ", ".join(f"{n} ({d:+.1f}%)" for n, d in regressions)
        sys.exit(f"{len(regressions)} benchmark(s) regressed beyond "
                 f"{args.threshold:.0f}%: {names}")
    print(f"all {len(common)} compared benchmarks within {args.threshold:.0f}% of baseline")


if __name__ == "__main__":
    main()
