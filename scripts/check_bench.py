#!/usr/bin/env python3
"""Compare a fresh BENCH_hotpath.json run against the committed baseline.

Usage: check_bench.py BASELINE CURRENT [--threshold PCT] [--max-overhead PCT]

Both files are flat {benchmark name: ns per op} objects written by
bench/hotpath.exe. Only keys present in BOTH files are compared (the
CI quick run covers a subset of the full baseline sizes). Exits
non-zero listing every benchmark that is more than PCT percent slower
than the baseline (default 25). Speed-ups are reported but never fail.

Regressions are judged after dividing out the machine-speed drift:
the median current/baseline ratio across all compared rows. A shared
runner (or a loaded dev box) can run every row 1.3-1.8x slower than
the box that produced the committed baseline; that uniform shift says
nothing about the code, while a genuine regression moves one row away
from the pack. A regression touching most rows at once would be
absorbed into the drift estimate - the gate trades that unlikely case
for not flaking on every noisy runner.

--max-overhead PCT additionally pairs every obs/<x>-on/<size> row with
its obs/<x>-off/<size> twin WITHIN the current run and fails if the
instrumented row is more than PCT percent slower: the observability
self-overhead gate (same machine, same run, so no cross-host noise).

--min-ratio R pairs every store/load-snap/<size> row with its
store/load-text/<size> twin WITHIN the current run and fails if the
binary snapshot load is not at least R times faster than the text
parse: the durable-store fast-path gate (again same-run, so immune
to cross-host drift).

--scaling-exponent KEY:MAX (repeatable) collects every row named
KEY/udg<n> WITHIN the current run, fits the least-squares slope of
log(ns/op) against log(n), and fails if the fitted exponent exceeds
MAX. This is the scaling gate behind the million-node work: a row
family that should be near-linear (e.g. bfs/dist) drifting toward
quadratic fails here long before any single size trips the 25% gate.
Exponents are same-run, so machine drift cancels entirely. At least
two sizes of KEY must be present. --exponents-out FILE additionally
writes the fitted exponent of EVERY row family with >= 2 sizes (not
just the gated ones) as a flat JSON object, for trend dashboards.
"""
import argparse
import json
import math
import re
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not all(
        isinstance(v, (int, float)) for v in doc.values()
    ):
        sys.exit(f"{path}: expected a flat object of numeric ns/op values")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="allowed regression in percent (default 25)")
    ap.add_argument("--max-overhead", type=float, default=None, metavar="PCT",
                    help="allowed obs-on vs obs-off overhead in percent, "
                         "paired within the current run")
    ap.add_argument("--min-ratio", type=float, default=None, metavar="R",
                    help="required store/load-text over store/load-snap "
                         "speed ratio, paired within the current run")
    ap.add_argument("--scaling-exponent", action="append", default=[],
                    metavar="KEY:MAX",
                    help="fit the log-log slope of KEY/udg<n> rows in the "
                         "current run and fail if it exceeds MAX (repeatable)")
    ap.add_argument("--exponents-out", default=None, metavar="FILE",
                    help="write every fitted row-family exponent as JSON")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    common = sorted(set(base) & set(cur))
    if not common:
        sys.exit("no common benchmarks between baseline and current run")

    ratios = sorted(cur[n] / base[n] for n in common if base[n] > 0)
    drift = ratios[len(ratios) // 2] if ratios else 1.0
    print(f"machine-speed drift (median current/baseline ratio): {drift:.3f}x")

    regressions = []
    width = max(len(k) for k in common)
    print(f"{'benchmark':<{width}} | {'baseline':>12} | {'current':>12} | delta (drift-adjusted)")
    print("-" * (width + 48))
    for name in common:
        b, c = base[name], cur[name]
        delta = (c / drift - b) / b * 100.0 if b > 0 else 0.0
        flag = " <-- REGRESSION" if delta > args.threshold else ""
        print(f"{name:<{width}} | {b:12.0f} | {c:12.0f} | {delta:+6.1f}%{flag}")
        if delta > args.threshold:
            regressions.append((name, delta))

    skipped = sorted(set(base) ^ set(cur))
    if skipped:
        print(f"(not compared: {', '.join(skipped)})")

    if regressions:
        names = ", ".join(f"{n} ({d:+.1f}%)" for n, d in regressions)
        sys.exit(f"{len(regressions)} benchmark(s) regressed beyond "
                 f"{args.threshold:.0f}%: {names}")
    print(f"all {len(common)} compared benchmarks within {args.threshold:.0f}% of baseline")

    if args.max_overhead is not None:
        pairs = [(on, on.replace("-on/", "-off/"))
                 for on in sorted(cur)
                 if on.startswith("obs/") and "-on/" in on
                 and on.replace("-on/", "-off/") in cur]
        if not pairs:
            sys.exit("--max-overhead: no obs/<x>-on / obs/<x>-off pairs "
                     "in the current run")
        over = []
        for on, off in pairs:
            pct = (cur[on] - cur[off]) / cur[off] * 100.0
            flag = " <-- OVER BUDGET" if pct > args.max_overhead else ""
            print(f"{on:<{width}} | {cur[off]:12.0f} | {cur[on]:12.0f} | "
                  f"{pct:+6.2f}%{flag}")
            if pct > args.max_overhead:
                over.append((on, pct))
        if over:
            names = ", ".join(f"{n} ({p:+.2f}%)" for n, p in over)
            sys.exit(f"observability overhead beyond "
                     f"{args.max_overhead:g}%: {names}")
        print(f"observability overhead within {args.max_overhead:g}% "
              f"for {len(pairs)} pair(s)")

    if args.min_ratio is not None:
        pairs = [(snap, snap.replace("/load-snap", "/load-text"))
                 for snap in sorted(cur)
                 if snap.startswith("store/load-snap")
                 and snap.replace("/load-snap", "/load-text") in cur]
        if not pairs:
            sys.exit("--min-ratio: no store/load-snap / store/load-text "
                     "pairs in the current run")
        slow = []
        for snap, text in pairs:
            ratio = cur[text] / cur[snap] if cur[snap] > 0 else float("inf")
            flag = "" if ratio >= args.min_ratio else " <-- TOO SLOW"
            print(f"{snap:<{width}} | {cur[text]:12.0f} | {cur[snap]:12.0f} | "
                  f"{ratio:6.1f}x{flag}")
            if ratio < args.min_ratio:
                slow.append((snap, ratio))
        if slow:
            names = ", ".join(f"{n} ({r:.1f}x)" for n, r in slow)
            sys.exit(f"snapshot load fast path below {args.min_ratio:g}x "
                     f"over the text parser: {names}")
        print(f"snapshot load >= {args.min_ratio:g}x faster than text "
              f"parse for {len(pairs)} pair(s)")

    if args.scaling_exponent or args.exponents_out:
        families = {}
        for name, ns in cur.items():
            m = re.fullmatch(r"(.+)/udg(\d+)", name)
            if m and ns > 0:
                families.setdefault(m.group(1), []).append(
                    (int(m.group(2)), ns))

        def fit(points):
            # least-squares slope of log(ns) against log(n)
            xs = [math.log(n) for n, _ in points]
            ys = [math.log(ns) for _, ns in points]
            mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
            sxx = sum((x - mx) ** 2 for x in xs)
            sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
            return sxy / sxx

        exponents = {key: fit(sorted(pts))
                     for key, pts in sorted(families.items())
                     if len(pts) >= 2}

        bad = []
        for spec in args.scaling_exponent:
            try:
                key, max_s = spec.rsplit(":", 1)
                max_exp = float(max_s)
            except ValueError:
                sys.exit(f"--scaling-exponent: cannot parse '{spec}' "
                         f"(expected KEY:MAX)")
            if key not in exponents:
                sys.exit(f"--scaling-exponent: fewer than two {key}/udg<n> "
                         f"rows in the current run")
            exp = exponents[key]
            sizes = "/".join(str(n) for n, _ in sorted(families[key]))
            flag = " <-- SUPERLINEAR" if exp > max_exp else ""
            print(f"{key}: fitted exponent {exp:+.3f} over n={sizes} "
                  f"(max {max_exp:g}){flag}")
            if exp > max_exp:
                bad.append((key, exp, max_exp))

        if args.exponents_out:
            with open(args.exponents_out, "w") as f:
                json.dump({k: round(v, 4) for k, v in exponents.items()},
                          f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"wrote {len(exponents)} fitted exponent(s) to "
                  f"{args.exponents_out}")

        if bad:
            names = ", ".join(f"{k} ({e:.3f} > {m:g})" for k, e, m in bad)
            sys.exit(f"scaling exponent(s) over budget: {names}")
        if args.scaling_exponent:
            print(f"all {len(args.scaling_exponent)} gated scaling "
                  f"exponent(s) within budget")


if __name__ == "__main__":
    main()
