#!/usr/bin/env python3
"""Validate the shape of an Obs.to_json () metrics registry.

Usage: validate_metrics.py FILE [FILE...]

Checks the schema documented in docs/OBSERVABILITY.md: top-level keys,
value types, histogram structure (bucket counts sum to the histogram
count), and that a profile run recorded at least one span, counter and
histogram observation. Exits non-zero with a message on the first
violation.
"""
import json
import sys

NUM = (int, float)


def fail(path, msg):
    sys.exit(f"{path}: schema violation: {msg}")


def validate(path):
    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    for key in ("version", "counters", "gauges", "histograms", "spans"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")
    if doc["version"] != 1:
        fail(path, f"unknown version {doc['version']!r}")

    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"counter {name!r} is not a non-negative int: {v!r}")
    for name, v in doc["gauges"].items():
        if not isinstance(v, NUM):
            fail(path, f"gauge {name!r} is not a number: {v!r}")

    for name, h in doc["histograms"].items():
        for key, typ in (("count", int), ("sum", NUM), ("min", NUM),
                         ("max", NUM), ("buckets", list)):
            if not isinstance(h.get(key), typ):
                fail(path, f"histogram {name!r} field {key!r} bad: {h.get(key)!r}")
        prev_le = None
        total = 0
        for b in h["buckets"]:
            if not isinstance(b.get("le"), NUM) or not isinstance(b.get("count"), int):
                fail(path, f"histogram {name!r} has a malformed bucket: {b!r}")
            if prev_le is not None and b["le"] <= prev_le:
                fail(path, f"histogram {name!r} buckets not strictly increasing")
            prev_le = b["le"]
            total += b["count"]
        if total != h["count"]:
            fail(path, f"histogram {name!r} bucket counts {total} != count {h['count']}")
        if h["count"] > 0 and h["min"] > h["max"]:
            fail(path, f"histogram {name!r} min > max")

    for name, s in doc["spans"].items():
        if not isinstance(s.get("count"), int) or s["count"] < 1:
            fail(path, f"span {name!r} has no observations")
        for key in ("total_s", "max_s"):
            if not isinstance(s.get(key), NUM) or s[key] < 0:
                fail(path, f"span {name!r} field {key!r} bad: {s.get(key)!r}")
        if s["max_s"] > s["total_s"] + 1e-9:
            fail(path, f"span {name!r} max_s exceeds total_s")

    # a profile run must actually have measured something
    if not doc["spans"]:
        fail(path, "no spans recorded")
    if not any(v > 0 for v in doc["counters"].values()):
        fail(path, "no counter ever incremented")
    if not any(h["count"] > 0 for h in doc["histograms"].values()):
        fail(path, "no histogram observation recorded")

    print(f"{path}: ok ({len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms, {len(doc['spans'])} spans)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip())
    for p in sys.argv[1:]:
        validate(p)
