#!/usr/bin/env python3
"""Validate rspan observability output.

Usage:
  validate_metrics.py [--expect COUNTER]... [--require-histogram NAME]... FILE...
  validate_metrics.py --trace [--expect EV]... FILE [FILE...]

Default mode checks an `Obs.to_json ()` metrics registry against the
schema documented in docs/OBSERVABILITY.md: top-level keys, value
types, histogram structure (bucket counts sum to the histogram count),
and that a profile run recorded at least one span, counter and
histogram observation. `--require-histogram NAME` additionally demands
that histogram NAME exists and has observations, and `--expect COUNTER`
that counter COUNTER exists with a positive value.

`--trace` mode instead validates a JSONL event trace (one object per
line, discriminated by "ev") against the per-event field schemas —
including the fault-injection events drop/dup/crash/recover.
`--expect EV` demands at least one event of kind EV.

Exits non-zero with a message on the first violation.
"""
import argparse
import json
import sys

NUM = (int, float)


def fail(path, msg):
    sys.exit(f"{path}: schema violation: {msg}")


def validate_registry(path, require_histograms=(), require_counters=()):
    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    for key in ("version", "counters", "gauges", "histograms", "spans"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")
    if doc["version"] != 1:
        fail(path, f"unknown version {doc['version']!r}")

    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"counter {name!r} is not a non-negative int: {v!r}")
    for name, v in doc["gauges"].items():
        if not isinstance(v, NUM):
            fail(path, f"gauge {name!r} is not a number: {v!r}")

    for name, h in doc["histograms"].items():
        for key, typ in (("count", int), ("sum", NUM), ("min", NUM),
                         ("max", NUM), ("buckets", list)):
            if not isinstance(h.get(key), typ):
                fail(path, f"histogram {name!r} field {key!r} bad: {h.get(key)!r}")
        prev_le = None
        total = 0
        for b in h["buckets"]:
            if not isinstance(b.get("le"), NUM) or not isinstance(b.get("count"), int):
                fail(path, f"histogram {name!r} has a malformed bucket: {b!r}")
            if prev_le is not None and b["le"] <= prev_le:
                fail(path, f"histogram {name!r} buckets not strictly increasing")
            prev_le = b["le"]
            total += b["count"]
        if total != h["count"]:
            fail(path, f"histogram {name!r} bucket counts {total} != count {h['count']}")
        if h["count"] > 0 and h["min"] > h["max"]:
            fail(path, f"histogram {name!r} min > max")

    for name, s in doc["spans"].items():
        if not isinstance(s.get("count"), int) or s["count"] < 1:
            fail(path, f"span {name!r} has no observations")
        for key in ("total_s", "max_s"):
            if not isinstance(s.get(key), NUM) or s[key] < 0:
                fail(path, f"span {name!r} field {key!r} bad: {s.get(key)!r}")
        if s["max_s"] > s["total_s"] + 1e-9:
            fail(path, f"span {name!r} max_s exceeds total_s")

    # a profile run must actually have measured something
    if not doc["spans"]:
        fail(path, "no spans recorded")
    if not any(v > 0 for v in doc["counters"].values()):
        fail(path, "no counter ever incremented")
    if not any(h["count"] > 0 for h in doc["histograms"].values()):
        fail(path, "no histogram observation recorded")

    for name in require_histograms:
        h = doc["histograms"].get(name)
        if h is None:
            fail(path, f"required histogram {name!r} missing")
        if h["count"] < 1:
            fail(path, f"required histogram {name!r} has no observations")

    for name in require_counters:
        v = doc["counters"].get(name)
        if v is None:
            fail(path, f"required counter {name!r} missing")
        if v < 1:
            fail(path, f"required counter {name!r} never incremented")

    print(f"{path}: ok ({len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms, {len(doc['spans'])} spans)")


# Per-event required fields for JSONL traces (docs/OBSERVABILITY.md).
# `int` means a non-bool integer; extra fields are allowed (round_end
# carries payload or matched depending on the producer).
TRACE_SCHEMAS = {
    "round_start": {"round": int},
    "send": {"round": int, "from": int, "to": int, "size": int},
    "recv": {"round": int, "node": int, "count": int},
    "halt": {"round": int, "node": int},
    "round_end": {"round": int, "messages": int},
    "originate": {"round": int, "node": int, "seq": int},
    "expire": {"round": int, "node": int, "origin": int},
    "drop": {"round": int, "from": int, "to": int, "reason": str},
    "dup": {"round": int, "from": int, "to": int},
    "crash": {"round": int, "node": int},
    "recover": {"round": int, "node": int},
    "route_start": {"src": int, "dst": int, "shortest": int},
    "hop": {"step": int, "node": int},
    "route_end": {"delivered": bool},
}

DROP_REASONS = {"loss", "link", "crash"}


def check_field(value, typ):
    if typ is int:
        return type(value) is int
    if typ is bool:
        return type(value) is bool
    return isinstance(value, typ)


def validate_trace(path, expect=()):
    seen = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(path, f"line {lineno}: not JSON: {e}")
            if not isinstance(ev, dict):
                fail(path, f"line {lineno}: event is not an object")
            kind = ev.get("ev")
            if not isinstance(kind, str):
                fail(path, f"line {lineno}: missing \"ev\" discriminator")
            schema = TRACE_SCHEMAS.get(kind)
            if schema is None:
                fail(path, f"line {lineno}: unknown event kind {kind!r}")
            for field, typ in schema.items():
                if field not in ev:
                    fail(path, f"line {lineno}: {kind} event missing {field!r}")
                if not check_field(ev[field], typ):
                    fail(path, f"line {lineno}: {kind} field {field!r} "
                                f"has bad type: {ev[field]!r}")
            if kind == "drop" and ev["reason"] not in DROP_REASONS:
                fail(path, f"line {lineno}: drop reason {ev['reason']!r} "
                            f"not in {sorted(DROP_REASONS)}")
            seen[kind] = seen.get(kind, 0) + 1

    if not seen:
        fail(path, "empty trace")
    for kind in expect:
        if kind not in seen:
            fail(path, f"expected at least one {kind!r} event, saw none "
                        f"(kinds present: {sorted(seen)})")

    summary = ", ".join(f"{k}={v}" for k, v in sorted(seen.items()))
    print(f"{path}: ok ({sum(seen.values())} events: {summary})")


def main():
    ap = argparse.ArgumentParser(
        description="Validate rspan metrics registries or JSONL traces.")
    ap.add_argument("--trace", action="store_true",
                    help="treat FILEs as JSONL event traces")
    ap.add_argument("--expect", action="append", default=[], metavar="NAME",
                    help="trace mode: require at least one event of kind NAME; "
                         "registry mode: require counter NAME to be positive")
    ap.add_argument("--require-histogram", action="append", default=[],
                    metavar="NAME",
                    help="(registry mode) require histogram NAME to exist "
                         "with observations")
    ap.add_argument("files", nargs="+", metavar="FILE")
    args = ap.parse_args()
    if args.require_histogram and args.trace:
        ap.error("--require-histogram only applies to registry mode")
    if args.trace:
        for ev in args.expect:
            if ev not in TRACE_SCHEMAS:
                ap.error(f"--expect {ev}: unknown event kind "
                         f"(choose from {', '.join(sorted(TRACE_SCHEMAS))})")
    for p in args.files:
        if args.trace:
            validate_trace(p, expect=args.expect)
        else:
            validate_registry(p, require_histograms=args.require_histogram,
                              require_counters=args.expect)


if __name__ == "__main__":
    main()
