#!/usr/bin/env python3
"""Validate rspan observability output.

Usage:
  validate_metrics.py [--expect COUNTER]... [--require-histogram NAME]... FILE...
  validate_metrics.py --trace [--expect EV]... FILE [FILE...]
  validate_metrics.py --folded FILE [FILE...]
  validate_metrics.py --max-overhead PCT BENCH.json

Default mode checks an `Obs.to_json ()` metrics registry against the
schema documented in docs/OBSERVABILITY.md: top-level keys, value
types, histogram structure (bucket counts sum to the histogram count,
min <= p50 <= p90 <= p99 <= max in version 2), the profile call tree
(self time bounded by total time, recursively), and that a profile run
recorded at least one span, counter and histogram observation.
`--require-histogram NAME` additionally demands that histogram NAME
exists and has observations, and `--expect COUNTER` that counter
COUNTER exists with a positive value.

`--trace` mode instead validates a JSONL event trace (one object per
line, discriminated by "ev") against the per-event field schemas —
including the fault-injection events drop/dup/crash/recover.
`--expect EV` demands at least one event of kind EV.

`--folded` mode validates a folded-stack profile (`rspan profile
--format folded`): every line must be `frame(;frame)* <int>` — the
format flamegraph.pl and speedscope consume.

`--max-overhead PCT` mode reads a BENCH_hotpath.json and fails if any
`obs/<x>-on/<size>` row is more than PCT percent slower than its
`obs/<x>-off/<size>` twin: the observability self-overhead gate.

Exits non-zero with a message on the first violation.
"""
import argparse
import json
import re
import sys

NUM = (int, float)


def fail(path, msg):
    sys.exit(f"{path}: schema violation: {msg}")


def validate_profile_node(path, node, where):
    if not isinstance(node, dict):
        fail(path, f"profile node {where} is not an object")
    if not isinstance(node.get("name"), str) or not node["name"]:
        fail(path, f"profile node {where} has a bad name: {node.get('name')!r}")
    name = f"{where}/{node['name']}"
    if not isinstance(node.get("count"), int) or node["count"] < 1:
        fail(path, f"profile node {name!r} has no observations")
    for key in ("total_s", "self_s", "max_s"):
        if not isinstance(node.get(key), NUM) or node[key] < 0:
            fail(path, f"profile node {name!r} field {key!r} bad: {node.get(key)!r}")
    if node["self_s"] > node["total_s"] + 1e-9:
        fail(path, f"profile node {name!r} self_s exceeds total_s")
    if node["max_s"] > node["total_s"] + 1e-9:
        fail(path, f"profile node {name!r} max_s exceeds total_s")
    gc = node.get("gc")
    if not isinstance(gc, dict):
        fail(path, f"profile node {name!r} missing gc object")
    for key in ("minor_words", "major_words"):
        if not isinstance(gc.get(key), NUM) or gc[key] < 0:
            fail(path, f"profile node {name!r} gc field {key!r} bad: {gc.get(key)!r}")
    if not isinstance(gc.get("compactions"), int) or gc["compactions"] < 0:
        fail(path, f"profile node {name!r} gc compactions bad: {gc.get('compactions')!r}")
    if not isinstance(node.get("children"), list):
        fail(path, f"profile node {name!r} children is not a list")
    for child in node["children"]:
        validate_profile_node(path, child, name)
    return 1 + sum(count_profile_nodes(c) for c in node["children"])


def count_profile_nodes(node):
    return 1 + sum(count_profile_nodes(c) for c in node.get("children", []))


def validate_registry(path, require_histograms=(), require_counters=()):
    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    version = doc.get("version")
    if version not in (1, 2):
        fail(path, f"unknown version {version!r}")
    keys = ["version", "counters", "gauges", "histograms", "spans"]
    if version >= 2:
        keys.append("profile")
    for key in keys:
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")

    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"counter {name!r} is not a non-negative int: {v!r}")
    for name, v in doc["gauges"].items():
        if not isinstance(v, NUM):
            fail(path, f"gauge {name!r} is not a number: {v!r}")

    for name, h in doc["histograms"].items():
        fields = [("count", int), ("sum", NUM), ("min", NUM),
                  ("max", NUM), ("buckets", list)]
        if version >= 2:
            fields += [("p50", NUM), ("p90", NUM), ("p99", NUM)]
        for key, typ in fields:
            if not isinstance(h.get(key), typ):
                fail(path, f"histogram {name!r} field {key!r} bad: {h.get(key)!r}")
        prev_le = None
        total = 0
        for b in h["buckets"]:
            if not isinstance(b.get("le"), NUM) or not isinstance(b.get("count"), int):
                fail(path, f"histogram {name!r} has a malformed bucket: {b!r}")
            if prev_le is not None and b["le"] <= prev_le:
                fail(path, f"histogram {name!r} buckets not strictly increasing")
            prev_le = b["le"]
            total += b["count"]
        if total != h["count"]:
            fail(path, f"histogram {name!r} bucket counts {total} != count {h['count']}")
        if h["count"] > 0 and h["min"] > h["max"]:
            fail(path, f"histogram {name!r} min > max")
        if version >= 2 and h["count"] > 0:
            tol = 1e-9
            if not (h["min"] - tol <= h["p50"] <= h["p90"] <= h["p99"]
                    <= h["max"] + tol):
                fail(path, f"histogram {name!r} quantiles not ordered within "
                           f"[min, max]: p50={h['p50']} p90={h['p90']} "
                           f"p99={h['p99']} min={h['min']} max={h['max']}")

    profile_nodes = 0
    if version >= 2:
        if not isinstance(doc["profile"], list):
            fail(path, "profile is not a list")
        for node in doc["profile"]:
            profile_nodes += validate_profile_node(path, node, "")

    for name, s in doc["spans"].items():
        if not isinstance(s.get("count"), int) or s["count"] < 1:
            fail(path, f"span {name!r} has no observations")
        for key in ("total_s", "max_s"):
            if not isinstance(s.get(key), NUM) or s[key] < 0:
                fail(path, f"span {name!r} field {key!r} bad: {s.get(key)!r}")
        if s["max_s"] > s["total_s"] + 1e-9:
            fail(path, f"span {name!r} max_s exceeds total_s")

    # a profile run must actually have measured something
    if not doc["spans"]:
        fail(path, "no spans recorded")
    if not any(v > 0 for v in doc["counters"].values()):
        fail(path, "no counter ever incremented")
    if not any(h["count"] > 0 for h in doc["histograms"].values()):
        fail(path, "no histogram observation recorded")

    for name in require_histograms:
        h = doc["histograms"].get(name)
        if h is None:
            fail(path, f"required histogram {name!r} missing")
        if h["count"] < 1:
            fail(path, f"required histogram {name!r} has no observations")

    for name in require_counters:
        v = doc["counters"].get(name)
        if v is None:
            fail(path, f"required counter {name!r} missing")
        if v < 1:
            fail(path, f"required counter {name!r} never incremented")

    print(f"{path}: ok ({len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms, {len(doc['spans'])} spans, "
          f"{profile_nodes} profile nodes)")


# Per-event required fields for JSONL traces (docs/OBSERVABILITY.md).
# `int` means a non-bool integer; extra fields are allowed (round_end
# carries payload or matched depending on the producer).
TRACE_SCHEMAS = {
    "round_start": {"round": int},
    "send": {"round": int, "from": int, "to": int, "size": int},
    "recv": {"round": int, "node": int, "count": int},
    "halt": {"round": int, "node": int},
    "round_end": {"round": int, "messages": int},
    "originate": {"round": int, "node": int, "seq": int},
    "expire": {"round": int, "node": int, "origin": int},
    "drop": {"round": int, "from": int, "to": int, "reason": str},
    "dup": {"round": int, "from": int, "to": int},
    "crash": {"round": int, "node": int},
    "recover": {"round": int, "node": int},
    "route_start": {"src": int, "dst": int, "shortest": int},
    "hop": {"step": int, "node": int},
    "route_end": {"delivered": bool},
}

DROP_REASONS = {"loss", "link", "crash"}


def check_field(value, typ):
    if typ is int:
        return type(value) is int
    if typ is bool:
        return type(value) is bool
    return isinstance(value, typ)


def validate_trace(path, expect=()):
    seen = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(path, f"line {lineno}: not JSON: {e}")
            if not isinstance(ev, dict):
                fail(path, f"line {lineno}: event is not an object")
            kind = ev.get("ev")
            if not isinstance(kind, str):
                fail(path, f"line {lineno}: missing \"ev\" discriminator")
            schema = TRACE_SCHEMAS.get(kind)
            if schema is None:
                fail(path, f"line {lineno}: unknown event kind {kind!r}")
            for field, typ in schema.items():
                if field not in ev:
                    fail(path, f"line {lineno}: {kind} event missing {field!r}")
                if not check_field(ev[field], typ):
                    fail(path, f"line {lineno}: {kind} field {field!r} "
                                f"has bad type: {ev[field]!r}")
            if kind == "drop" and ev["reason"] not in DROP_REASONS:
                fail(path, f"line {lineno}: drop reason {ev['reason']!r} "
                            f"not in {sorted(DROP_REASONS)}")
            seen[kind] = seen.get(kind, 0) + 1

    if not seen:
        fail(path, "empty trace")
    for kind in expect:
        if kind not in seen:
            fail(path, f"expected at least one {kind!r} event, saw none "
                        f"(kinds present: {sorted(seen)})")

    summary = ", ".join(f"{k}={v}" for k, v in sorted(seen.items()))
    print(f"{path}: ok ({sum(seen.values())} events: {summary})")


FOLDED_RE = re.compile(r"^[^; ]+(?:;[^; ]+)* \d+$")


def validate_folded(path):
    stacks = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if not FOLDED_RE.match(line):
                fail(path, f"line {lineno}: not a folded stack "
                           f"('frame(;frame)* <int>'): {line!r}")
            stacks += 1
    if stacks == 0:
        fail(path, "empty folded profile")
    print(f"{path}: ok ({stacks} folded stacks)")


def check_overhead(path, max_pct):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not all(
        isinstance(v, NUM) for v in doc.values()
    ):
        fail(path, "expected a flat object of numeric ns/op values")
    pairs = [(on, on.replace("-on/", "-off/"))
             for on in sorted(doc)
             if on.startswith("obs/") and "-on/" in on
             and on.replace("-on/", "-off/") in doc]
    if not pairs:
        fail(path, "no obs/<x>-on / obs/<x>-off benchmark pairs found")
    over = []
    for on, off in pairs:
        pct = (doc[on] - doc[off]) / doc[off] * 100.0
        flag = " <-- OVER BUDGET" if pct > max_pct else ""
        print(f"{on}: {doc[on]:.0f} ns vs {off}: {doc[off]:.0f} ns "
              f"({pct:+.2f}%){flag}")
        if pct > max_pct:
            over.append((on, pct))
    if over:
        names = ", ".join(f"{n} ({p:+.2f}%)" for n, p in over)
        sys.exit(f"{path}: observability overhead beyond {max_pct:g}%: {names}")
    print(f"{path}: ok ({len(pairs)} pair(s) within the {max_pct:g}% "
          f"overhead budget)")


def main():
    ap = argparse.ArgumentParser(
        description="Validate rspan metrics registries, JSONL traces, "
                    "folded-stack profiles, or benchmark overhead pairs.")
    ap.add_argument("--trace", action="store_true",
                    help="treat FILEs as JSONL event traces")
    ap.add_argument("--folded", action="store_true",
                    help="treat FILEs as folded-stack profiles")
    ap.add_argument("--max-overhead", type=float, default=None, metavar="PCT",
                    help="treat FILEs as BENCH_hotpath.json and fail if any "
                         "obs/<x>-on row exceeds its obs/<x>-off twin by more "
                         "than PCT percent")
    ap.add_argument("--expect", action="append", default=[], metavar="NAME",
                    help="trace mode: require at least one event of kind NAME; "
                         "registry mode: require counter NAME to be positive")
    ap.add_argument("--require-histogram", action="append", default=[],
                    metavar="NAME",
                    help="(registry mode) require histogram NAME to exist "
                         "with observations")
    ap.add_argument("files", nargs="+", metavar="FILE")
    args = ap.parse_args()
    modes = sum(bool(m) for m in
                (args.trace, args.folded, args.max_overhead is not None))
    if modes > 1:
        ap.error("--trace, --folded and --max-overhead are mutually exclusive")
    if args.require_histogram and modes:
        ap.error("--require-histogram only applies to registry mode")
    if args.trace:
        for ev in args.expect:
            if ev not in TRACE_SCHEMAS:
                ap.error(f"--expect {ev}: unknown event kind "
                         f"(choose from {', '.join(sorted(TRACE_SCHEMAS))})")
    for p in args.files:
        if args.trace:
            validate_trace(p, expect=args.expect)
        elif args.folded:
            validate_folded(p)
        elif args.max_overhead is not None:
            check_overhead(p, args.max_overhead)
        else:
            validate_registry(p, require_histograms=args.require_histogram,
                              require_counters=args.expect)


if __name__ == "__main__":
    main()
