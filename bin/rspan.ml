(* rspan — remote-spanner command-line tool.

   Generate graphs, build remote-spanners, verify stretch guarantees,
   inspect stats, simulate greedy link-state routing, export DOT.

     rspan gen --family udg -n 200 --seed 7 -o g.txt
     rspan build --algo low-stretch --eps 0.5 g.txt -o h.txt
     rspan verify --alpha 1.5 --beta 0 g.txt h.txt
     rspan verify --alpha 1 --beta 0 -k 2 g.txt h.txt
     rspan stats g.txt [h.txt]
     rspan profile --algo low-stretch --eps 0.5 g.txt
     rspan sim --radius 2 --trace t.jsonl g.txt
     rspan route --src 0 --dst 42 g.txt h.txt
     rspan dot g.txt h.txt -o g.dot
     rspan snapshot store/ --init g.txt --algo exact
     rspan heal --algo exact --deltas d.txt --wal store/ g.txt
     rspan recover store/ -o recovered.txt
     rspan crashtest --seed 7 crash-scratch/

   Every command accepts --stats[=FILE] to enable the metrics registry
   and dump it on exit (human table to stderr, or JSON to FILE). *)

open Cmdliner
open Rs_graph
open Rs_core
module Obs = Rs_obs.Obs
module Json = Rs_obs.Json
module Trace = Rs_obs.Trace

let read_graph path =
  try Ok (Graph_io.load path) with
  | Sys_error msg -> Error (`Msg msg)
  | Failure msg | Invalid_argument msg -> Error (`Msg (path ^ ": " ^ msg))

(* ------------------------------------------------------------------ *)
(* --stats[=FILE]: global observability switch, dumped at exit *)

let obs_dump_json path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string ~pretty:true (Obs.to_json ()));
        output_char oc '\n')
  with Sys_error msg -> Printf.eprintf "rspan: cannot write stats: %s\n" msg

(* --stats-every runs a ticker domain that appends one JSONL registry
   delta per period (and a final delta at exit). Only the ticker writes
   to the channel; at_exit joins it before closing, so the lines never
   interleave. *)
let obs_periodic path period =
  if period <= 0.0 then begin
    prerr_endline "rspan: --stats-every must be positive";
    exit 124
  end;
  match open_out path with
  | exception Sys_error msg ->
      Printf.eprintf "rspan: cannot write stats: %s\n" msg;
      exit 124
  | oc ->
      let stop = Atomic.make false in
      let ticker =
        Domain.spawn (fun () ->
            let prev = ref None in
            let tick () =
              let next = Obs.snapshot () in
              output_string oc (Json.to_string (Obs.delta_json ?prev:!prev next));
              output_char oc '\n';
              flush oc;
              prev := Some next
            in
            (* sleep in short slices so exit is prompt *)
            let rec loop slept =
              if not (Atomic.get stop) then
                if slept >= period then begin
                  tick ();
                  loop 0.0
                end
                else begin
                  let d = Float.min 0.05 (period -. slept) in
                  Unix.sleepf d;
                  loop (slept +. d)
                end
            in
            loop 0.0;
            tick ())
      in
      at_exit (fun () ->
          Atomic.set stop true;
          Domain.join ticker;
          close_out_noerr oc)

let obs_setup dest every =
  match dest with
  | None ->
      if every <> None then begin
        prerr_endline "rspan: --stats-every requires --stats=FILE";
        exit 124
      end
  | Some dest -> (
      Obs.set_enabled true;
      match every with
      | Some period ->
          if dest = "-" then begin
            prerr_endline "rspan: --stats-every requires --stats=FILE, not '-'";
            exit 124
          end;
          obs_periodic dest period
      | None ->
          at_exit (fun () ->
              match dest with
              | "-" -> prerr_string (Obs.to_table ())
              | path -> obs_dump_json path))

let obs_term =
  let stats =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Enable in-library metrics; on exit print a human-readable table to \
             stderr, or write JSON to $(docv) when given.")
  in
  let every =
    Arg.(
      value
      & opt (some float) None
      & info [ "stats-every" ] ~docv:"SECS"
          ~doc:
            "With --stats=$(i,FILE): instead of one dump at exit, append a JSONL \
             registry delta (changed counters/gauges/histograms) every $(docv) \
             seconds, plus a final delta at exit.")
  in
  Term.(const obs_setup $ stats $ every)

(* One-line latency digest for the dynamic-repair layer, printed by heal
   and churn when --stats is active and at least one repair ran. *)
let repair_latency_summary () =
  if Obs.enabled () then begin
    let h = Obs.histogram "repair/latency" in
    let n = Obs.histogram_count h in
    if n > 0 then
      Logs.app (fun m ->
          m "repair/latency: count=%d p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms"
            n (Obs.quantile h 0.5) (Obs.quantile h 0.9) (Obs.quantile h 0.99)
            (Obs.histogram_max h))
  end

(* The positional GRAPH argument is a plain filename loaded inside each
   command so a malformed or missing file yields a one-line diagnostic
   and a nonzero exit, not a usage dump or an uncaught backtrace. *)
let graph_arg idx =
  Arg.(required & pos idx (some string) None & info [] ~docv:"GRAPH" ~doc:"Graph file (n m header then edge lines).")

let with_graph file f =
  match read_graph file with Error e -> Error e | Ok g -> f g

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if omitted).")

let emit output content =
  match output with
  | None -> print_string content
  | Some path ->
      (* binary mode: .rsg payloads must not be newline-translated *)
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* Route file-system failures (unwritable -o targets, --coords paths)
   through the same one-line-diagnostic exit path as unreadable graph
   files instead of an uncaught Sys_error backtrace. *)
let catch_io f = try f () with Sys_error msg -> Error (`Msg msg)

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let family =
    Arg.(
      value
      & opt (enum [ ("udg", `Udg); ("gnp", `Gnp); ("grid", `Grid); ("cycle", `Cycle);
                    ("path", `Path); ("complete", `Complete); ("hypercube", `Hypercube);
                    ("tree", `Tree); ("theta", `Theta) ])
          `Udg
      & info [ "family" ] ~docv:"FAMILY" ~doc:"Graph family: udg, gnp, grid, cycle, path, complete, hypercube, tree, theta.")
  in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of vertices (or per-dimension size).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let p = Arg.(value & opt float 0.1 & info [ "p" ] ~doc:"Edge probability for gnp.") in
  let density = Arg.(value & opt float 4.0 & info [ "density" ] ~doc:"Points per unit square for udg.") in
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Branch count for theta.") in
  let coords =
    Arg.(value & opt (some string) None
         & info [ "coords" ] ~docv:"FILE" ~doc:"For udg: also save point coordinates (for 'rspan render').")
  in
  let binary =
    Arg.(value & flag
         & info [ "binary" ]
             ~doc:"Emit the compact binary format (.rsg: magic, counts, \
                   little-endian edge pairs, CRC-32) instead of the text \
                   format. Every command auto-detects it on input.")
  in
  let run () family n seed p density k coords binary output =
    catch_io @@ fun () ->
    let rand = Rand.create seed in
    let g =
      match family with
      | `Udg ->
          let side = sqrt (float_of_int n /. density) in
          let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
          (match coords with Some f -> Rs_geometry.Point_io.save f pts | None -> ());
          Rs_geometry.Unit_ball.udg pts
      | `Gnp -> Gen.erdos_renyi rand n p
      | `Grid ->
          let side = int_of_float (Float.round (sqrt (float_of_int n))) in
          Gen.grid side side
      | `Cycle -> Gen.cycle n
      | `Path -> Gen.path_graph n
      | `Complete -> Gen.complete n
      | `Hypercube -> Gen.hypercube n
      | `Tree -> Gen.random_tree rand n
      | `Theta -> Gen.theta k (max 1 (n / k))
    in
    emit output
      (if binary then Graph_io.to_binary_string g else Graph_io.to_string g);
    Logs.app (fun m -> m "generated: n=%d m=%d" (Graph.n g) (Graph.m g));
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ family $ n $ seed $ p $ density $ k $ coords $ binary
       $ output_arg))
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a graph.") term

(* ------------------------------------------------------------------ *)
(* build *)

let algo_enum =
  [ ("exact", `Exact); ("low-stretch", `Low_stretch); ("low-stretch-gdy", `Low_stretch_gdy);
    ("k-connecting", `K_connecting); ("two-connecting", `Two_connecting);
    ("k-connecting-mis", `K_connecting_mis); ("mpr", `Mpr); ("greedy-spanner", `Greedy);
    ("baswana-sen", `Baswana); ("additive2", `Additive2); ("bfs-tree", `Bfs_tree); ("edge-two-connecting", `Edge_two);
    ("full", `Full) ]

let build_algo algo ~eps ~k ~seed g =
  match algo with
  | `Exact -> Remote_spanner.exact_distance g
  | `Low_stretch -> Remote_spanner.low_stretch g ~eps
  | `Low_stretch_gdy -> Remote_spanner.rem_span g ~r:(Remote_spanner.r_of_eps eps) ~beta:1
  | `K_connecting -> Remote_spanner.k_connecting g ~k
  | `Two_connecting -> Remote_spanner.two_connecting g
  | `Edge_two -> Extensions.edge_two_connecting g
  | `K_connecting_mis -> Remote_spanner.k_connecting_mis g ~k
  | `Mpr -> Mpr.relay_union g Mpr.select
  | `Greedy -> Baseline.greedy_spanner g ~k
  | `Baswana -> Baseline.baswana_sen (Rand.create seed) g ~k
  | `Additive2 -> Baseline.additive2 g
  | `Bfs_tree -> Baseline.bfs_tree g ~root:0
  | `Full -> Baseline.full g

let algo_arg =
  Arg.(value & opt (enum algo_enum) `Exact
       & info [ "algo" ] ~docv:"ALGO"
           ~doc:"Construction: exact (1,0)-RS, low-stretch / low-stretch-gdy (1+eps,1-2eps)-RS, k-connecting (1,0)-RS, two-connecting / k-connecting-mis (2,-1)-RS, edge-two-connecting, mpr, greedy-spanner, baswana-sen, additive2, bfs-tree, full.")

let eps_arg = Arg.(value & opt float 0.5 & info [ "eps" ] ~doc:"Stretch parameter for low-stretch.")
let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Connectivity / stretch parameter.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Seed for randomized baselines.")

let build_cmd =
  let run () algo eps k seed graph_file output =
    with_graph graph_file @@ fun g ->
    catch_io @@ fun () ->
    let h = build_algo algo ~eps ~k ~seed g in
    emit output (Graph_io.to_string (Edge_set.to_graph h));
    Logs.app (fun m ->
        m "spanner: %d of %d edges (%.1f%%)" (Edge_set.cardinal h) (Graph.m g)
          (100.0 *. float_of_int (Edge_set.cardinal h) /. float_of_int (max 1 (Graph.m g))));
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ algo_arg $ eps_arg $ k_arg $ seed_arg $ graph_arg 0
       $ output_arg))
  in
  Cmd.v (Cmd.info "build" ~doc:"Build a remote-spanner or baseline spanner.") term

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("folded", `Folded) ]) `Json
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: json (full metrics registry) or folded \
             (semicolon-joined call stacks with self time in microseconds, \
             ready for flamegraph.pl or speedscope).")
  in
  let run () algo eps k seed format graph_file output =
    with_graph graph_file @@ fun g ->
    catch_io @@ fun () ->
    (* full instrumentation regardless of --stats; JSON to stdout (or
       -o FILE) so it can be piped straight into schema checks, human
       summary to stderr. *)
    Obs.set_enabled true;
    Obs.reset ();
    let t0 = Obs.now () in
    let h = Obs.with_span "profile" (fun () -> build_algo algo ~eps ~k ~seed g) in
    let dt = Obs.now () -. t0 in
    Obs.set_gauge (Obs.gauge "profile/spanner_edges")
      (float_of_int (Edge_set.cardinal h));
    Obs.set_gauge (Obs.gauge "profile/graph_n") (float_of_int (Graph.n g));
    Obs.set_gauge (Obs.gauge "profile/graph_m") (float_of_int (Graph.m g));
    (match format with
    | `Json -> emit output (Json.to_string ~pretty:true (Obs.to_json ()) ^ "\n")
    | `Folded -> emit output (Obs.folded ()));
    (* stdout carries only the JSON or folded stacks (pipeable into
       schema checks / flamegraph.pl); the human summary goes to stderr *)
    prerr_string (Obs.to_table ());
    Printf.eprintf "profiled build: %d of %d edges in %.1f ms\n" (Edge_set.cardinal h)
      (Graph.m g) (1e3 *. dt);
    Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ algo_arg $ eps_arg $ k_arg $ seed_arg $ format
       $ graph_arg 0 $ output_arg))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Build a spanner under full instrumentation and emit the JSON metrics \
          registry or a folded-stack profile (stdout, or -o FILE); spans, \
          counters and histograms included.")
    term

(* ------------------------------------------------------------------ *)
(* top *)

let top_cmd =
  let interval =
    Arg.(value & opt float 0.5 & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh interval (seconds).")
  in
  let repeat =
    Arg.(value & opt int 10
         & info [ "repeat" ] ~docv:"N" ~doc:"Number of instrumented builds the background workload performs.")
  in
  let run () algo eps k seed interval repeat graph_file =
    with_graph graph_file @@ fun g ->
    if interval <= 0.0 then Error (`Msg "top: --interval must be positive")
    else if repeat < 1 then Error (`Msg "top: --repeat must be >= 1")
    else begin
      Obs.set_enabled true;
      Obs.reset ();
      let done_flag = Atomic.make false in
      let worker =
        (* workload in its own domain; its metrics land in that domain's
           shard and the live view merges them on every frame *)
        Domain.spawn (fun () ->
            Fun.protect ~finally:(fun () -> Atomic.set done_flag true)
            @@ fun () ->
            for _ = 1 to repeat do
              ignore (Obs.with_span "top/build" (fun () -> build_algo algo ~eps ~k ~seed g))
            done)
      in
      let ansi = Unix.isatty Unix.stdout in
      let frame = ref 0 in
      let print_frame tag =
        incr frame;
        if ansi then print_string "\027[2J\027[H";
        Printf.printf "rspan top — frame %d (%s), interval %gs\n%s%!" !frame tag
          interval (Obs.to_table ())
      in
      while not (Atomic.get done_flag) do
        print_frame "live";
        Unix.sleepf interval
      done;
      (* join re-raises any workload exception *)
      Domain.join worker;
      print_frame "final";
      Ok ()
    end
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ algo_arg $ eps_arg $ k_arg $ seed_arg $ interval
       $ repeat $ graph_arg 0))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run an instrumented build workload in a background domain and \
          re-render the live metrics registry (counters, quantiles, profile \
          tree) every --interval seconds until it finishes.")
    term

(* ------------------------------------------------------------------ *)
(* fault-injection flags, shared by sim / periodic / churn *)

module Fault = Rs_distributed.Fault

type fault_flags = {
  loss : float;
  fdup : float;
  fdelay : int;
  jitter : int;
  until : int option;
  crash_plan : string option;
  fault_seed : int;
}

let fault_term =
  let loss =
    Arg.(value & opt float 0.0
         & info [ "loss" ] ~docv:"P" ~doc:"Per-transmission drop probability in [0,1].")
  in
  let fdup =
    Arg.(value & opt float 0.0
         & info [ "dup" ] ~docv:"P" ~doc:"Per-transmission duplication probability in [0,1].")
  in
  let fdelay =
    Arg.(value & opt int 0
         & info [ "delay" ] ~docv:"D" ~doc:"Fixed extra delivery delay (rounds).")
  in
  let jitter =
    Arg.(value & opt int 0
         & info [ "jitter" ] ~docv:"J" ~doc:"Additional uniform delivery delay in [0..$(docv)] rounds.")
  in
  let until =
    Arg.(value & opt (some int) None
         & info [ "fault-until" ] ~docv:"R"
             ~doc:"Apply the stochastic faults (loss/dup/delay/jitter) only to rounds < $(docv); default: forever.")
  in
  let crash_plan =
    Arg.(value & opt (some string) None
         & info [ "crash-plan" ] ~docv:"FILE"
             ~doc:"Crash/flap schedule: lines 'crash NODE AT [RECOVER]' and 'flap U V DOWN UP' ('#' comments).")
  in
  let fault_seed =
    Arg.(value & opt int 1
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed of the fault plan's random stream; a fixed seed makes faulty runs reproducible.")
  in
  Term.(
    const (fun loss fdup fdelay jitter until crash_plan fault_seed ->
        { loss; fdup; fdelay; jitter; until; crash_plan; fault_seed })
    $ loss $ fdup $ fdelay $ jitter $ until $ crash_plan $ fault_seed)

(* [None] when no flag engages a fault, so the byte-identical fast path
   of the simulators is taken by default. *)
let build_faults f =
  let schedule =
    match f.crash_plan with
    | None -> Ok ([], [])
    | Some path -> (
        try Ok (Fault.load_schedule path)
        with Failure msg | Sys_error msg -> Error (`Msg msg))
  in
  match schedule with
  | Error e -> Error e
  | Ok (crashes, flaps) ->
      if f.loss = 0.0 && f.fdup = 0.0 && f.fdelay = 0 && f.jitter = 0
         && crashes = [] && flaps = []
      then Ok None
      else (
        try
          Ok
            (Some
               (Fault.make ~drop:f.loss ~dup:f.fdup ~delay:f.fdelay
                  ~jitter:f.jitter ?until:f.until ~crashes ~flaps
                  ~seed:f.fault_seed ()))
        with Invalid_argument msg -> Error (`Msg msg))

(* ------------------------------------------------------------------ *)
(* sim *)

let sim_cmd =
  let radius = Arg.(value & opt int 2 & info [ "radius" ] ~doc:"Flooding radius (rounds).") in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE" ~doc:"Write a JSONL event trace of the run.")
  in
  let run () radius trace ff graph_file =
    with_graph graph_file @@ fun g ->
    match build_faults ff with
    | Error e -> Error e
    | Ok faults -> (
    match Option.map Trace.to_file trace with
    | exception Sys_error msg -> Error (`Msg msg)
    | sink ->
    let finish () = Option.iter Trace.close sink in
    match Rs_distributed.Sim.collect_neighborhoods ?trace:sink ?faults g ~radius with
    | exception e ->
        finish ();
        raise e
    | _views, stats ->
        finish ();
        let module Sim = Rs_distributed.Sim in
        Logs.app (fun m ->
            m "collect radius=%d: rounds=%d messages=%d payload=%d" radius
              stats.Sim.rounds stats.Sim.messages stats.Sim.payload);
        Logs.app (fun m ->
            m "busiest round: %d messages, %d payload; halted nodes: %d"
              stats.Sim.max_round_messages stats.Sim.max_round_payload
              stats.Sim.halted_nodes);
        if faults <> None then
          Logs.app (fun m ->
              m "faults: dropped=%d duplicated=%d delayed=%d (delivery %.1f%%)"
                stats.Sim.dropped stats.Sim.duplicated stats.Sim.delayed
                (100.0
                 *. float_of_int stats.Sim.messages
                 /. float_of_int (max 1 (stats.Sim.messages + stats.Sim.dropped))));
        Option.iter
          (fun f -> Logs.app (fun m -> m "trace: %s (%d events)" f
                                 (match sink with Some s -> Trace.events s | None -> 0)))
          trace;
        Ok ())
  in
  let term =
    Term.(term_result (const run $ obs_term $ radius $ trace $ fault_term $ graph_arg 0))
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Run the LOCAL-model neighborhood collection (phase 1 of RemSpan) and \
          report traffic statistics — optionally under seeded fault injection \
          (--loss, --dup, --delay, --jitter, --crash-plan, --fault-seed); \
          --trace captures a replayable JSONL event log.")
    term

(* ------------------------------------------------------------------ *)
(* periodic *)

let periodic_cmd =
  let module Periodic = Rs_distributed.Periodic in
  let period = Arg.(value & opt int 4 & info [ "period" ] ~doc:"Origination period T (rounds).") in
  let radius = Arg.(value & opt int 1 & info [ "radius" ] ~doc:"Advertisement flooding TTL.") in
  let horizon = Arg.(value & opt int 60 & info [ "horizon" ] ~doc:"Simulated rounds.") in
  let expiry =
    Arg.(value & opt (some int) None
         & info [ "expiry" ] ~docv:"E" ~doc:"Soft-state lifetime (rounds; default 2*period).")
  in
  let sweep =
    Arg.(value & opt (some string) None
         & info [ "sweep" ] ~docv:"LOSSES"
             ~doc:"Comma-separated loss rates; run once per rate and print a degradation table (delivery and convergence lag vs. loss).")
  in
  let bound =
    Arg.(value & opt (some int) None
         & info [ "assert-bound" ] ~docv:"B"
             ~doc:"Fail unless every run self-stabilizes within $(docv) rounds of faults ceasing.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE" ~doc:"Write a JSONL event trace (single run only).")
  in
  let incremental =
    Arg.(value & flag
         & info [ "incremental" ]
             ~doc:"Maintain the centralized target spanner by incremental repair \
                   (lib/dynamic) alongside the protocol and fail if it ever \
                   diverges from the from-scratch construction.")
  in
  let run () period radius horizon expiry sweep bound trace incremental ff graph_file =
    with_graph graph_file @@ fun g ->
    let tree_of g u = Rs_core.Dom_tree_k.gdy_k g ~k:1 u in
    let losses =
      match sweep with
      | None -> Ok [ ff.loss ]
      | Some s -> (
          try
            Ok (List.map (fun x -> float_of_string (String.trim x))
                  (String.split_on_char ',' s))
          with Failure _ -> Error (`Msg ("cannot parse --sweep: " ^ s)))
    in
    match losses with
    | Error e -> Error e
    | Ok losses ->
    if sweep <> None && trace <> None then
      Error (`Msg "--sweep and --trace cannot be combined")
    else
    (* a sweep needs faults to cease for convergence lag to be defined *)
    let ff =
      if sweep <> None && ff.until = None then { ff with until = Some (horizon / 2) }
      else ff
    in
    let one loss =
      match build_faults { ff with loss } with
      | Error e -> Error e
      | Ok faults -> (
          match Option.map Trace.to_file trace with
          | exception Sys_error msg -> Error (`Msg msg)
          | sink ->
              let maintainer =
                (* fresh repair state per run; the same (2,0)-tree family
                   the protocol's tree_of computes *)
                if incremental then
                  Some (Rs_dynamic.Repair.incremental_target (Rs_dynamic.Repair.Gdy_k { k = 1 }))
                else None
              in
              let res =
                Fun.protect ~finally:(fun () -> Option.iter Trace.close sink)
                @@ fun () ->
                Periodic.simulate ?trace:sink ?faults ?expiry ?incremental:maintainer
                  ~initial:g ~events:[] ~period ~radius ~horizon ~tree_of ()
              in
              let delivery =
                100.0
                *. float_of_int res.Periodic.messages
                /. float_of_int (max 1 (res.Periodic.messages + res.Periodic.lost))
              in
              let lag = Periodic.stabilization_lag res in
              Logs.app (fun m ->
                  m "loss=%.2f delivered=%d lost=%d (%.1f%%) converged_at=%s lag=%s"
                    loss res.Periodic.messages res.Periodic.lost delivery
                    (match res.Periodic.converged_at with
                    | Some t -> string_of_int t
                    | None -> "never")
                    (match lag with Some l -> string_of_int l | None -> "-"));
              if incremental then
                Logs.app (fun m ->
                    m "incremental repair: %d mismatching rounds of %d"
                      res.Periodic.incremental_mismatches horizon);
              if res.Periodic.incremental_mismatches > 0 then
                Error
                  (`Msg
                    (Printf.sprintf
                       "loss=%.2f: incremental repair diverged from the \
                        from-scratch target in %d rounds"
                       loss res.Periodic.incremental_mismatches))
              else
                match bound with
                | Some b when not (Periodic.self_stabilizes res ~bound:b) ->
                    Error
                      (`Msg
                        (Printf.sprintf
                           "loss=%.2f: did not self-stabilize within %d rounds" loss b))
                | _ -> Ok ())
    in
    List.fold_left
      (fun acc loss -> match acc with Error _ -> acc | Ok () -> one loss)
      (Ok ()) losses
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ period $ radius $ horizon $ expiry $ sweep $ bound
       $ trace $ incremental $ fault_term $ graph_arg 0))
  in
  Cmd.v
    (Cmd.info "periodic"
       ~doc:
         "Run the Section-2.3 periodic link-state protocol, optionally under \
          seeded fault injection, and report delivery and self-stabilization \
          lag; --sweep prints graceful degradation as a function of loss rate.")
    term

(* ------------------------------------------------------------------ *)
(* verify *)

let edge_set_of g file =
  match read_graph file with
  | Error e -> Error e
  | Ok hg ->
      if Graph.n hg <> Graph.n g then Error (`Msg "spanner has a different vertex count")
      else begin
        let h = Edge_set.create g in
        try
          Graph.iter_edges (fun u v -> Edge_set.add h u v) hg;
          Ok h
        with Not_found -> Error (`Msg "spanner contains an edge absent from the graph")
      end

let verify_cmd =
  let alpha = Arg.(value & opt float 1.0 & info [ "alpha" ] ~doc:"Multiplicative stretch.") in
  let beta = Arg.(value & opt float 0.0 & info [ "beta" ] ~doc:"Additive stretch.") in
  let k = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Check k-connecting stretch up to k (k=1: plain remote-spanner).") in
  let edge = Arg.(value & flag & info [ "edge" ] ~doc:"With -k: use edge-disjoint paths instead of vertex-disjoint.") in
  let spanner_file = Arg.(required & pos 1 (some string) None & info [] ~docv:"SPANNER" ~doc:"Spanner edge file.") in
  let run () alpha beta k edge graph_file spanner_file =
    with_graph graph_file @@ fun g ->
    match edge_set_of g spanner_file with
    | Error e -> Error e
    | Ok h ->
        let ok =
          if k <= 1 then Verify.is_remote_spanner g h ~alpha ~beta
          else if edge then Verify.is_edge_k_connecting g h ~alpha ~beta ~k
          else Verify.is_k_connecting g h ~alpha ~beta ~k
        in
        if ok then begin
          Logs.app (fun m -> m "OK: (%g, %g)-remote-spanner%s" alpha beta
                       (if k > 1 then
                          Printf.sprintf " (%s%d-connecting)" (if edge then "edge-" else "") k
                        else ""));
          Ok ()
        end
        else begin
          let vs =
            if k <= 1 then Verify.remote_spanner_violations g h ~alpha ~beta ~max_violations:5
            else if edge then
              Verify.edge_k_connecting_violations g h ~alpha ~beta ~k ~max_violations:5
            else Verify.k_connecting_violations g h ~alpha ~beta ~k ~max_violations:5
          in
          List.iter
            (fun v -> Logs.app (fun m -> m "violation: %a" Verify.pp_violation v))
            vs;
          Error (`Msg "stretch violated")
        end
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ alpha $ beta $ k $ edge $ graph_arg 0 $ spanner_file))
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify the (alpha, beta)[, k-connecting] remote-spanner property.") term

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let spanner_file =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"SPANNER"
             ~doc:"Optional spanner: also report its edge count against the Theorem-2 \
                   2(1+log Delta) approximation bound.")
  in
  let run () graph_file spanner_file =
    with_graph graph_file @@ fun g ->
    let degrees = Graph.fold_vertices (fun acc u -> Graph.degree g u :: acc) [] g in
    let avg_deg =
      if degrees = [] then 0.0
      else float_of_int (List.fold_left ( + ) 0 degrees) /. float_of_int (List.length degrees)
    in
    Logs.app (fun m -> m "n=%d m=%d" (Graph.n g) (Graph.m g));
    Logs.app (fun m -> m "degree: max=%d avg=%.2f min=%d" (Graph.max_degree g) avg_deg
                 (Connectivity.min_degree g));
    Logs.app (fun m -> m "components=%d diameter=%d" (Connectivity.component_count g)
                 (Bfs.diameter g));
    match spanner_file with
    | None -> Ok ()
    | Some file -> (
        match edge_set_of g file with
        | Error e -> Error e
        | Ok h ->
            (* Theorem 2: the greedy construction's edge count is within
               a factor 2(1 + log Delta) of the optimal k-connecting
               (1,0)-RS, so edges / factor lower-bounds the optimum. *)
            let edges = Edge_set.cardinal h in
            let delta = max 2 (Graph.max_degree g) in
            let factor = 2.0 *. (1.0 +. log (float_of_int delta)) in
            Logs.app (fun m ->
                m "spanner: %d of %d edges (%.1f%%)" edges (Graph.m g)
                  (100.0 *. float_of_int edges /. float_of_int (max 1 (Graph.m g))));
            Logs.app (fun m ->
                m "Th.2 bound: 2(1+log Delta) = %.2f (Delta = %d); implied optimum >= %.0f edges"
                  factor delta
                  (Float.ceil (float_of_int edges /. factor)));
            if Graph.n g <= 64 then begin
              let lb = Optimal.lower_bound_trivial g ~k:1 in
              Logs.app (fun m ->
                  m "exact multicover lower bound: %d edges (ratio <= %.2f, bound %.2f)"
                    lb
                    (float_of_int edges /. float_of_int (max 1 lb))
                    factor)
            end;
            Ok ())
  in
  let term = Term.(term_result (const run $ obs_term $ graph_arg 0 $ spanner_file)) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print graph statistics; with a second argument, spanner size vs. the Theorem-2 bound.")
    term

(* ------------------------------------------------------------------ *)
(* route *)

let route_cmd =
  let src = Arg.(value & opt int 0 & info [ "src" ] ~doc:"Source vertex.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~doc:"Destination vertex.") in
  let spanner_file = Arg.(required & pos 1 (some string) None & info [] ~docv:"SPANNER" ~doc:"Advertised sub-graph file.") in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE" ~doc:"Write a JSONL trace of the route (route_start, hop, route_end).")
  in
  let run () src dst trace graph_file spanner_file =
    with_graph graph_file @@ fun g ->
    match edge_set_of g spanner_file with
    | Error e -> Error e
    | Ok h -> (
        match Option.map Trace.to_file trace with
        | exception Sys_error msg -> Error (`Msg msg)
        | sink ->
        let emit_ev fields = Option.iter (fun s -> Trace.emit s fields) sink in
        Fun.protect ~finally:(fun () -> Option.iter Trace.close sink) @@ fun () ->
        emit_ev
          [ ("ev", Json.String "route_start"); ("src", Json.Int src); ("dst", Json.Int dst);
            ("shortest", Json.Int (Bfs.dist_pair g src dst)) ];
        let ls = Rs_routing.Link_state.make g h in
        (match Rs_routing.Link_state.route ls ~src ~dst with
        | None ->
            emit_ev [ ("ev", Json.String "route_end"); ("delivered", Json.Bool false) ];
            Error (`Msg "destination unreachable")
        | Some p ->
            if sink <> None then
              List.iteri
                (fun i v ->
                  emit_ev [ ("ev", Json.String "hop"); ("step", Json.Int i); ("node", Json.Int v) ])
                (p : Path.t :> int list);
            emit_ev
              [ ("ev", Json.String "route_end"); ("delivered", Json.Bool true);
                ("hops", Json.Int (Path.length p)) ];
            Logs.app (fun m ->
                m "route (%d hops, shortest %d): %a" (Path.length p)
                  (Bfs.dist_pair g src dst) Path.pp p);
            Ok ()))
  in
  let term =
    Term.(term_result (const run $ obs_term $ src $ dst $ trace $ graph_arg 0 $ spanner_file))
  in
  Cmd.v (Cmd.info "route" ~doc:"Greedy link-state route over an advertised sub-graph.") term

(* ------------------------------------------------------------------ *)
(* dot *)

let dot_cmd =
  let spanner_file = Arg.(value & pos 1 (some string) None & info [] ~docv:"SPANNER" ~doc:"Optional spanner to highlight.") in
  let run () graph_file spanner_file output =
    with_graph graph_file @@ fun g ->
    match spanner_file with
    | None -> catch_io (fun () -> emit output (Graph_io.to_dot g); Ok ())
    | Some file -> (
        match edge_set_of g file with
        | Error e -> Error e
        | Ok h ->
            catch_io (fun () -> emit output (Graph_io.to_dot ~highlight:h g); Ok ()))
  in
  let term = Term.(term_result (const run $ obs_term $ graph_arg 0 $ spanner_file $ output_arg)) in
  Cmd.v (Cmd.info "dot" ~doc:"Export Graphviz DOT, optionally highlighting a spanner.") term

(* ------------------------------------------------------------------ *)
(* render *)

let render_cmd =
  let coords_file =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"COORDS" ~doc:"Coordinate file written by 'rspan gen --coords'.")
  in
  let spanner_file =
    Arg.(value & pos 2 (some string) None & info [] ~docv:"SPANNER" ~doc:"Optional spanner to highlight ('#').")
  in
  let width = Arg.(value & opt int 76 & info [ "width" ] ~doc:"Canvas width.") in
  let height = Arg.(value & opt int 28 & info [ "height" ] ~doc:"Canvas height.") in
  let run () graph_file coords_file spanner_file width height =
    with_graph graph_file @@ fun g ->
    match (try Ok (Rs_geometry.Point_io.load coords_file) with Failure m | Sys_error m -> Error (`Msg m)) with
    | Error e -> Error e
    | Ok pts -> (
        let draw spanner =
          print_endline (Rs_geometry.Render.render ~width ~height ?spanner pts g);
          Ok ()
        in
        match spanner_file with
        | None -> draw None
        | Some file -> (
            match edge_set_of g file with Error e -> Error e | Ok h -> draw (Some h)))
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ graph_arg 0 $ coords_file $ spanner_file $ width $ height))
  in
  Cmd.v (Cmd.info "render" ~doc:"ASCII-render a geometric graph (and optionally a spanner).") term

(* ------------------------------------------------------------------ *)
(* durable store: flags shared by heal / churn / snapshot / recover *)

module Wal = Rs_store.Wal
module Store = Rs_store.Store

let policy_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Wal.policy_of_string s) in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Wal.policy_to_string p))

(* For commands where --wal is optional, --fsync without it is misuse:
   there is no log to sync, so the flag would silently do nothing. *)
let fsync_arg =
  Arg.(
    value
    & opt (some policy_conv) None
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:
          "WAL durability: $(b,always) (fsync every append), $(b,every:N), or \
           $(b,never). Requires --wal; defaults to $(b,always).")

let resolve_fsync ~wal fsync =
  match (fsync, wal) with
  | Some _, None -> Error (`Msg "--fsync requires --wal (there is no log to sync)")
  | _ -> Ok (Option.value fsync ~default:Wal.Always)

(* snapshot / recover always operate on a store; keep the plain default *)
let store_fsync_arg =
  Arg.(
    value
    & opt policy_conv Wal.Always
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:"WAL durability: $(b,always) (fsync every append), $(b,every:N), or $(b,never).")

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Durable store directory: snapshot the initial state and append every \
           applied topology delta to a checksummed write-ahead log under $(docv), \
           so 'rspan recover' can rebuild the spanner state after a crash.")

(* store-layer failures (existing store, corrupt files, failed recovery
   verification) exit through the same one-line path as bad graph files *)
let catch_store f =
  try f () with
  | Failure msg | Sys_error msg -> Error (`Msg msg)
  | Rs_store.Binio.Corrupt msg -> Error (`Msg ("corrupt store: " ^ msg))

(* ------------------------------------------------------------------ *)
(* churn *)

let churn_cmd =
  let n = Arg.(value & opt int 60 & info [ "n" ] ~doc:"Number of mobile nodes.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let speed = Arg.(value & opt float 0.1 & info [ "speed" ] ~doc:"Max node speed per step.") in
  let refresh = Arg.(value & opt int 8 & info [ "refresh" ] ~doc:"Advertisement refresh period (steps).") in
  let steps = Arg.(value & opt int 40 & info [ "steps" ] ~doc:"Simulation length (steps).") in
  let side = Arg.(value & opt float 4.0 & info [ "side" ] ~doc:"Square side (unit radio range).") in
  let incremental =
    Arg.(value & flag
         & info [ "incremental" ]
             ~doc:"Maintain spanner advertisements by incremental repair \
                   (lib/dynamic) instead of from-scratch rebuilds at each \
                   refresh; every refresh is gated against the rebuild and \
                   the command fails on any divergence.")
  in
  let run () n seed speed refresh steps side incremental wal fsync ff =
    match build_faults ff with
    | Error e -> Error e
    | Ok faults ->
    match resolve_fsync ~wal fsync with
    | Error e -> Error e
    | Ok fsync ->
    let module W = Rs_mobility.Waypoint in
    let module C = Rs_mobility.Churn_eval in
    let model =
      W.create (Rand.create seed) ~n ~side ~speed_min:(speed /. 2.0) ~speed_max:speed
        ~pause:2
    in
    let module Repair = Rs_dynamic.Repair in
    let strategies =
      [ C.strategy "full LS" Baseline.full;
        C.strategy ~spec:(Repair.Gdy_k { k = 1 }) "(1,0)-RS"
          Remote_spanner.exact_distance;
        C.strategy
          ~spec:(Repair.Mis { r = Remote_spanner.r_of_eps 0.5 })
          "(1.5,0)-RS"
          (fun g -> Remote_spanner.low_stretch g ~eps:0.5);
        C.strategy ~spec:(Repair.Mis_k { k = 2 }) "2conn-RS"
          Remote_spanner.two_connecting ]
    in
    (* the durability hook: first refresh creates the store (one
       maintained state per spec-carrying strategy), later refreshes
       log the topology diff since the previous one *)
    let store = ref None in
    let wal_hook =
      Option.map
        (fun dir g ->
          match !store with
          | None ->
              let specs = List.filter_map (fun s -> s.C.spec) strategies in
              store := Some (Store.create ~policy:fsync ~dir ~specs g)
          | Some s -> ignore (Store.sync_to s g))
        wal
    in
    match
      catch_store @@ fun () ->
      Ok
        (C.run ?faults ?wal:wal_hook ~incremental (Rand.create (seed + 1)) ~model
           ~strategies ~steps ~refresh ~pairs_per_step:6)
    with
    | Error e -> Error e
    | Ok reports ->
    Option.iter
      (fun s ->
        Logs.app (fun m -> m "wal: %s sealed at seq %d" (Store.dir s) (Store.seq s));
        Store.close s)
      !store;
    List.iter
      (fun r ->
        Logs.app (fun m ->
            m "%-12s delivery %5.1f%%  stretch %.3f  advertised %.0f%s" r.C.name
              (100.0 *. float_of_int r.C.delivered /. float_of_int (max 1 r.C.pairs_attempted))
              r.C.mean_stretch r.C.mean_advertised
              (if incremental then
                 Printf.sprintf "  repair mismatches %d" r.C.repair_mismatches
               else "")))
      reports;
    repair_latency_summary ();
    let mismatches =
      List.fold_left (fun acc r -> acc + r.C.repair_mismatches) 0 reports
    in
    if mismatches > 0 then
      Error
        (`Msg
          (Printf.sprintf
             "incremental repair diverged from from-scratch rebuilds at %d refreshes"
             mismatches))
    else Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ n $ seed $ speed $ refresh $ steps $ side $ incremental
       $ wal_arg $ fsync_arg $ fault_term))
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Routing-under-mobility comparison of advertised sub-graphs; --wal logs \
          the refresh-boundary topology deltas to a durable store.")
    term

(* ------------------------------------------------------------------ *)
(* heal *)

(* The constructions the dynamic-repair layer can maintain, keyed by
   the same --algo names as `rspan build`. *)
let repair_spec_of algo ~eps ~k =
  let module Repair = Rs_dynamic.Repair in
  match algo with
  | `Exact -> Ok (Repair.Gdy_k { k = 1 })
  | `Low_stretch -> Ok (Repair.Mis { r = Remote_spanner.r_of_eps eps })
  | `Low_stretch_gdy -> Ok (Repair.Gdy { r = Remote_spanner.r_of_eps eps; beta = 1 })
  | `K_connecting -> Ok (Repair.Gdy_k { k })
  | `Two_connecting -> Ok (Repair.Mis_k { k = 2 })
  | `K_connecting_mis -> Ok (Repair.Mis_k { k })
  | _ ->
      Error
        (`Msg
          "heal supports --algo exact, low-stretch, low-stretch-gdy, \
           k-connecting, two-connecting and k-connecting-mis")

let heal_cmd =
  let module Repair = Rs_dynamic.Repair in
  let module Delta = Rs_dynamic.Delta in
  let deltas_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "deltas" ] ~docv:"FILE"
          ~doc:
            "Topology delta file: lines 'add U V', 'remove U V', 'down U', \
             'up U V1 V2 ...' ('#' comments).")
  in
  let step =
    Arg.(
      value & flag
      & info [ "step" ]
          ~doc:
            "Apply the delta file one operation at a time (one repair per op) \
             instead of as a single batch.")
  in
  let dirty_radius =
    Arg.(
      value
      & opt (some int) None
      & info [ "dirty-radius" ] ~docv:"R"
          ~doc:
            "Override the construction's locality radius for dirty-set tracking \
             (an under-estimate exercises the escalation ladder).")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:
            "Skip the final from-scratch equivalence and (alpha,beta) stretch \
             checks; report repair cost only.")
  in
  let run () algo eps k deltas_file step no_verify dirty_radius wal fsync graph_file
      output =
    match (wal, dirty_radius) with
    | Some _, Some _ -> Error (`Msg "--wal cannot be combined with --dirty-radius")
    | _ -> (
    match resolve_fsync ~wal fsync with
    | Error e -> Error e
    | Ok fsync -> (
    with_graph graph_file @@ fun g ->
    match repair_spec_of algo ~eps ~k with
    | Error e -> Error e
    | Ok spec -> (
        match
          try Ok (Delta.load deltas_file)
          with Failure m | Sys_error m -> Error (`Msg m)
        with
        | Error e -> Error e
        | Ok ops -> (
            let heal () =
              let batches = if step then List.map (fun op -> [ op ]) ops else [ ops ] in
              let total = ref 0 in
              match wal with
              | None ->
                  let st = Repair.init spec g in
                  List.iteri
                    (fun i batch ->
                      let o = Repair.apply ?dirty_radius st batch in
                      total := !total + o.Repair.rebuilt;
                      Logs.app (fun m ->
                          m "delta %d: %a" i Repair.pp_outcome o))
                    batches;
                  (st, !total, fun () -> ())
              | Some dir ->
                  let store = Store.create ~policy:fsync ~dir ~specs:[ spec ] g in
                  List.iteri
                    (fun i batch ->
                      match Store.append store batch with
                      | [] ->
                          Logs.app (fun m -> m "delta %d: quiescent (not logged)" i)
                      | os ->
                          List.iter
                            (fun o ->
                              total := !total + o.Repair.rebuilt;
                              Logs.app (fun m ->
                                  m "delta %d: %a" i Repair.pp_outcome o))
                            os)
                    batches;
                  let st = List.assoc spec (Store.states store) in
                  ( st,
                    !total,
                    fun () ->
                      Logs.app (fun m ->
                          m "wal: %s sealed at seq %d" (Store.dir store)
                            (Store.seq store));
                      Store.close store )
            in
            match heal () with
            | exception Invalid_argument msg -> Error (`Msg (deltas_file ^ ": " ^ msg))
            | exception Failure msg -> Error (`Msg msg)
            | st, total_rebuilt, seal -> (
                let g' = Repair.graph st in
                let h = Repair.spanner st in
                Logs.app (fun m ->
                    m "healed: n=%d m=%d, spanner %d edges, %d of %d trees recomputed"
                      (Graph.n g') (Graph.m g') (Edge_set.cardinal h) total_rebuilt
                      (Graph.n g'));
                seal ();
                repair_latency_summary ();
                let write () =
                  catch_io (fun () ->
                      emit output (Graph_io.to_string (Edge_set.to_graph h));
                      Ok ())
                in
                if no_verify then write ()
                else if Repair.pairs st <> Edge_set.to_list (Repair.build spec g') then
                  Error
                    (`Msg "healed spanner differs from the from-scratch build")
                else begin
                  Logs.app (fun m ->
                      m "equivalence: healed spanner = from-scratch build");
                  match Repair.alpha_beta spec with
                  | Some (alpha, beta)
                    when not (Verify.is_remote_spanner g' h ~alpha ~beta) ->
                      Error
                        (`Msg
                          (Printf.sprintf
                             "healed spanner violates the (%g, %g) stretch bound"
                             alpha beta))
                  | Some (alpha, beta) ->
                      Logs.app (fun m ->
                          m "verified: (%g, %g)-remote-spanner" alpha beta);
                      write ()
                  | None -> write ()
                end)))))
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ algo_arg $ eps_arg $ k_arg $ deltas_arg $ step
       $ no_verify $ dirty_radius $ wal_arg $ fsync_arg $ graph_arg 0 $ output_arg))
  in
  Cmd.v
    (Cmd.info "heal"
       ~doc:
         "Apply a topology delta file to a graph and incrementally repair its \
          remote-spanner (recomputing only dirty nodes' trees), reporting repair \
          cost, escalations and equivalence against a from-scratch rebuild; \
          -o writes the healed spanner, --wal makes every applied delta durable.")
    term

(* ------------------------------------------------------------------ *)
(* snapshot *)

let store_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STORE" ~doc:"Durable store directory.")

let snapshot_cmd =
  let init =
    Arg.(
      value
      & opt (some string) None
      & info [ "init" ] ~docv:"GRAPH"
          ~doc:
            "Create a fresh store at $(b,STORE) from this graph file (maintaining \
             the --algo construction) instead of snapshotting an existing one.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "After publishing the snapshot, drop the WAL segments and older \
             snapshots it subsumes.")
  in
  let run () algo eps k dir init compact fsync =
    match init with
    | Some graph_file ->
        with_graph graph_file @@ fun g ->
        (match repair_spec_of algo ~eps ~k with
        | Error e -> Error e
        | Ok spec ->
            catch_store @@ fun () ->
            let store = Store.create ~policy:fsync ~dir ~specs:[ spec ] g in
            Logs.app (fun m ->
                m "store %s: initialized at seq 0 (n=%d m=%d, fsync %s)" dir
                  (Graph.n g) (Graph.m g)
                  (Wal.policy_to_string fsync));
            Store.close store;
            Ok ())
    | None ->
        catch_store @@ fun () ->
        let store, r = Store.recover ~policy:fsync ~dir () in
        let path =
          if compact then Store.compact store else Store.write_snapshot store
        in
        Logs.app (fun m ->
            m "store %s: %s at seq %d -> %s%s" dir
              (if compact then "compacted" else "snapshot")
              (Store.seq store) path
              (if r.Store.replayed > 0 then
                 Printf.sprintf " (replayed %d wal records)" r.Store.replayed
               else ""));
        Store.close store;
        Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ algo_arg $ eps_arg $ k_arg $ store_pos $ init
       $ compact $ store_fsync_arg))
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Publish a checksummed binary snapshot of a durable store's current \
          state (or, with --init, create a fresh store from a graph file); \
          --compact folds the WAL into the new snapshot.")
    term

(* ------------------------------------------------------------------ *)
(* recover *)

let recover_cmd =
  let module Repair = Rs_dynamic.Repair in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:
            "Skip the recovery gate (from-scratch spanner equivalence and the \
             (alpha,beta) stretch check).")
  in
  let spanner_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "spanner" ] ~docv:"FILE"
          ~doc:"Write the first maintained spanner (as a graph file) to $(docv).")
  in
  let run () dir no_verify fsync output spanner_out =
    catch_store @@ fun () ->
    let store, r = Store.recover ~policy:fsync ~verify:(not no_verify) ~dir () in
    Logs.app (fun m -> m "%a" Store.pp_recovery r);
    if not no_verify then
      Logs.app (fun m ->
          m "verified: every recovered spanner = from-scratch build");
    let write () =
      catch_io @@ fun () ->
      Option.iter
        (fun path ->
          emit (Some path) (Graph_io.to_string (Store.graph store)))
        output;
      match spanner_out with
      | None -> Ok ()
      | Some path -> (
          match Store.states store with
          | [] -> Error (`Msg "store maintains no spanner state")
          | (_, st) :: _ ->
              emit (Some path)
                (Graph_io.to_string (Edge_set.to_graph (Repair.spanner st)));
              Ok ())
    in
    let res = write () in
    Store.close store;
    res
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ store_pos $ no_verify $ store_fsync_arg $ output_arg
       $ spanner_out))
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild live spanner state from a (possibly crash-damaged) durable \
          store: newest intact snapshot plus WAL replay, truncating the log at \
          the first torn or corrupt record, then gate the result against a \
          from-scratch rebuild; -o writes the recovered graph.")
    term

(* ------------------------------------------------------------------ *)
(* crashtest *)

let crashtest_cmd =
  let module Crash = Rs_store.Crash in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
  in
  let n =
    Arg.(value & opt int 40 & info [ "n" ] ~docv:"N" ~doc:"Vertex count of the base graph.")
  in
  let batches =
    Arg.(
      value & opt int 12
      & info [ "batches" ] ~docv:"B" ~doc:"Random delta batches appended before crashing.")
  in
  let sites =
    Arg.(
      value & opt int 4
      & info [ "sites" ] ~docv:"K"
          ~doc:"Random cut points per torn-write family (WAL tails, snapshot truncations).")
  in
  let run () seed n batches sites dir =
    catch_store @@ fun () ->
    let report = Crash.run ~seed ~n ~batches ~sites ~dir () in
    Logs.app (fun m -> m "%a" Crash.pp_report report);
    if Crash.ok report then Ok ()
    else Error (`Msg "crash injection uncovered recovery failures")
  in
  let term =
    Term.(
      term_result (const run $ obs_term $ seed $ n $ batches $ sites $ store_pos))
  in
  Cmd.v
    (Cmd.info "crashtest"
       ~doc:
         "Seeded crash-point injection: build a durable store under churn, damage \
          copies of it at every interesting byte/record/rename boundary, and \
          demand that recovery reaches the exact pre-crash state or a verified \
          prefix — never a corrupt graph. Failing case directories are kept \
          under $(b,STORE) for inspection.")
    term

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let module Service = Rs_serve.Service in
  let readers_arg =
    Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N" ~doc:"Reader domains answering queries.")
  in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded queue capacity (deltas and queries); overflow is rejected \
             with a reason, never buffered without bound.")
  in
  let deadline_arg =
    Arg.(value & opt float 1.0
         & info [ "deadline" ] ~docv:"SECS" ~doc:"Default per-query deadline.")
  in
  let budget_arg =
    Arg.(
      value & opt float 0.5
      & info [ "repair-budget" ] ~docv:"SECS"
          ~doc:
            "Per-batch repair wall budget; repeated overruns trip the circuit \
             breaker into batched-rebuild mode.")
  in
  let trips_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-trips" ] ~docv:"N"
          ~doc:"Consecutive over-budget or fully escalated repairs that open the breaker.")
  in
  let watchdog_arg =
    Arg.(
      value & opt float 5.0
      & info [ "watchdog" ] ~docv:"SECS"
          ~doc:"Writer heartbeat staleness declaring it wedged; 0 disables the watchdog.")
  in
  let health_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "health-file" ] ~docv:"FILE"
          ~doc:
            "Continuously publish a one-line liveness/readiness probe to $(docv) \
             (written by temp-file-plus-rename, so probes never read a torn line).")
  in
  let ephemeral_arg =
    Arg.(
      value & flag
      & info [ "ephemeral" ]
          ~doc:
            "Keep state in memory only: no WAL, no snapshots, watchdog failover \
             allowed. Conflicts with --wal.")
  in
  let script_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Read serve commands from $(docv) instead of stdin, then drain and exit.")
  in
  let graph_opt = Arg.(value & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc:"Initial topology (omit to recover state from --wal).") in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:
            "Also serve over TCP at $(docv) (port 0 picks one): query \
             sessions speak the same line protocol, and with --wal the \
             endpoint additionally ships snapshots and streams WAL records \
             to replicas ($(b,rspan replica), $(b,rspan ship)).")
  in
  let run () algo eps k readers queue deadline budget trips watchdog health_file
      ephemeral script tcp wal fsync graph_file =
    (* misuse exits in one line before any state is touched *)
    if readers < 1 then Error (`Msg "serve: --readers must be >= 1")
    else if queue < 1 then Error (`Msg "serve: --queue must be >= 1")
    else if deadline <= 0. then
      Error (`Msg (Printf.sprintf "serve: --deadline must be positive (got %g)" deadline))
    else if budget <= 0. then
      Error (`Msg (Printf.sprintf "serve: --repair-budget must be positive (got %g)" budget))
    else if trips < 1 then Error (`Msg "serve: --breaker-trips must be >= 1")
    else if watchdog < 0. then Error (`Msg "serve: --watchdog must be >= 0 (0 disables)")
    else if ephemeral && wal <> None then
      Error (`Msg "serve: --ephemeral conflicts with --wal (pick one state backend)")
    else
      match
        match tcp with
        | None -> Ok None
        | Some hp -> (
            match Rs_net.Tcp.parse_hostport hp with
            | Ok (h, p) -> Ok (Some (h, p))
            | Error e -> Error (`Msg ("serve: --tcp " ^ e)))
      with
      | Error e -> Error e
      | Ok tcp_addr -> (
      match resolve_fsync ~wal fsync with
      | Error e -> Error e
      | Ok fsync -> (
          match repair_spec_of algo ~eps ~k with
          | Error e -> Error e
          | Ok spec -> (
              (* bind before opening any store: a taken port must be a
                 one-line exit, not a half-initialized service *)
              match
                match tcp_addr with
                | None -> Ok None
                | Some (h, p) -> (
                    match Rs_net.Tcp.listen ~host:h ~port:p with
                    | Ok srv -> Ok (Some (h, p, srv))
                    | Error e -> Error (`Msg ("serve: " ^ e)))
              with
              | Error e -> Error e
              | Ok bound -> (
              let serve backend =
                let cfg =
                  { Service.default_config with
                    readers; ingest_capacity = queue; request_capacity = queue;
                    deadline_s = deadline; repair_budget_s = budget;
                    breaker_trips = trips; watchdog_s = watchdog; health_file }
                in
                let svc = Service.start cfg backend in
                let stop_flag = Atomic.make false in
                let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
                let old_term = Sys.signal Sys.sigterm handler in
                let old_int = Sys.signal Sys.sigint handler in
                let g0, _ = Service.peek svc in
                Logs.app (fun m ->
                    m "serve: ready at seq %d (n=%d m=%d, readers=%d)"
                      (Service.view_seq svc) (Graph.n g0) (Graph.m g0) readers);
                (* the stdin/script path and the TCP path evaluate lines
                   through the same Proto grammar, so replies are
                   byte-identical on either transport *)
                let env =
                  { Rs_net.Proto.service = svc;
                    on_delta = (fun d -> Service.offer svc d);
                    stopped = (fun () -> Atomic.get stop_flag);
                    status_suffix = (fun () -> "") }
                in
                let ld =
                  match bound with
                  | None -> None
                  | Some (h, p, srv) -> (
                      match
                        Rs_net.Repl.lead ~proto_env:env ~server:srv ~service:svc
                          ~store_dir:wal ~host:h ~port:p ()
                      with
                      | Ok ld ->
                          Logs.app (fun m ->
                              m "serve: tcp on %s:%d (epoch %d, %s)" h
                                (Rs_net.Repl.leader_port ld)
                                (Rs_net.Repl.leader_epoch ld)
                                (if wal = None then "queries only"
                                 else "replication on"));
                          Some ld
                      | Error e ->
                          Logs.err (fun m -> m "serve: tcp failed: %s" e);
                          None)
                in
                let exec line =
                  match Rs_net.Proto.exec env line with
                  | Rs_net.Proto.Silent -> `Continue
                  | Rs_net.Proto.Quit -> `Quit
                  | Rs_net.Proto.Reply r ->
                      print_endline r;
                      flush stdout;
                      `Continue
                in
                (match script with
                | Some file ->
                    let lines = In_channel.with_open_text file In_channel.input_lines in
                    let rec go = function
                      | [] -> ()
                      | l :: rest ->
                          if Atomic.get stop_flag then ()
                          else if exec l = `Quit then ()
                          else go rest
                    in
                    go lines
                | None ->
                    (* stdin, interruptible: poll so SIGTERM lands between
                       commands and the drain-snapshot-exit path runs *)
                    let buf = Buffer.create 256 in
                    let chunk = Bytes.create 4096 in
                    let quit = ref false in
                    let feed k =
                      Buffer.add_subbytes buf chunk 0 k;
                      let rec lines () =
                        let s = Buffer.contents buf in
                        match String.index_opt s '\n' with
                        | None -> ()
                        | Some i ->
                            Buffer.clear buf;
                            Buffer.add_string buf
                              (String.sub s (i + 1) (String.length s - i - 1));
                            if exec (String.sub s 0 i) = `Quit then quit := true
                            else lines ()
                      in
                      lines ()
                    in
                    let rec loop () =
                      if not (!quit || Atomic.get stop_flag) then
                        match Unix.select [ Unix.stdin ] [] [] 0.1 with
                        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
                        | [], _, _ -> loop ()
                        | _ ->
                            let k = Unix.read Unix.stdin chunk 0 (Bytes.length chunk) in
                            if k > 0 then begin
                              feed k;
                              loop ()
                            end
                    in
                    loop ());
                Option.iter Rs_net.Repl.stop_leader ld;
                let st = Service.stop svc in
                Sys.set_signal Sys.sigterm old_term;
                Sys.set_signal Sys.sigint old_int;
                Logs.app (fun m ->
                    m
                      "serve: drained and stopped at seq %d (accepted %d, rejected \
                       %d, timeouts %d, stale reads %d)"
                      st.Service.s_seq st.Service.s_accepted st.Service.s_rejected
                      st.Service.s_timeouts st.Service.s_stale_reads);
                Ok ()
              in
              match (wal, graph_file) with
              | None, None ->
                  Error (`Msg "serve: need a GRAPH file or --wal STORE to serve from")
              | None, Some file ->
                  with_graph file @@ fun g ->
                  serve (Service.Ephemeral { specs = [ spec ]; g })
              | Some dir, Some file ->
                  with_graph file @@ fun g ->
                  catch_store @@ fun () ->
                  serve (Service.Durable (Store.create ~policy:fsync ~dir ~specs:[ spec ] g))
              | Some dir, None ->
                  catch_store @@ fun () ->
                  let store, r = Store.recover ~policy:fsync ~verify:true ~dir () in
                  Logs.app (fun m -> m "%a" Store.pp_recovery r);
                  serve (Service.Durable store)))))
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ algo_arg $ eps_arg $ k_arg $ readers_arg
       $ queue_arg $ deadline_arg $ budget_arg $ trips_arg $ watchdog_arg
       $ health_arg $ ephemeral_arg $ script_arg $ tcp_arg $ wal_arg $ fsync_arg
       $ graph_opt))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident spanner service: a writer domain folds topology deltas through \
          incremental repair while reader domains answer route / disjoint-path / \
          advertisement queries from immutable published snapshots. Overload is \
          rejected with a reason, slow repairs trip a circuit breaker into \
          batched rebuilds (readers serve stale-flagged answers meanwhile), a \
          watchdog handles a wedged writer, SIGTERM drains and snapshots, and \
          --wal makes the whole lifecycle crash-safe. --tcp exposes the same \
          line protocol over length-prefixed CRC-framed TCP and (with --wal) \
          leads replicas: it ships its newest checksummed snapshot to joiners \
          and streams WAL records, epoch-fenced against deposed leaders.")
    term

(* ------------------------------------------------------------------ *)
(* replica *)

let replica_cmd =
  let module Service = Rs_serve.Service in
  let module Repl = Rs_net.Repl in
  let module Proto = Rs_net.Proto in
  let follow_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"HOST:PORT"
          ~doc:"The leader to follow (required).")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:
            "Serve read-only queries over TCP at $(docv); delta lines are \
             refused with a pointer to the leader.")
  in
  let readers_arg =
    Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N" ~doc:"Reader domains answering queries.")
  in
  let retries_arg =
    Arg.(
      value & opt int 10
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Consecutive failed reconnects (capped exponential backoff with \
             jitter between them) before the follower gives up — the \
             --promote-on-disconnect trigger.")
  in
  let promote_arg =
    Arg.(
      value & flag
      & info [ "promote-on-disconnect" ]
          ~doc:
            "When the follower exhausts its retries, promote: finish applying \
             everything already accepted, bump and persist the epoch, and \
             keep serving as the freshest surviving state. The deposed \
             leader's stream is refused from then on.")
  in
  let health_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "health-file" ] ~docv:"FILE"
          ~doc:
            "Continuously publish a one-line liveness probe with the replica \
             suffix (leader_seq, lag, connected, epoch) to $(docv), written \
             by temp-file-plus-rename.")
  in
  let script_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Read query commands from $(docv), then stop. Without it the \
                replica is resident: it follows until SIGTERM (stdin commands \
                are answered; EOF on stdin keeps it serving).")
  in
  let run () follow tcp readers retries promote health_file script wal fsync =
    (* misuse exits in one line before any network or store I/O *)
    match follow with
    | None ->
        Error (`Msg "replica: --follow HOST:PORT is required (a replica needs a leader)")
    | Some follow -> (
        if wal = None then
          Error (`Msg "replica: --follow needs --wal DIR (the replica's own durable store)")
        else if readers < 1 then Error (`Msg "replica: --readers must be >= 1")
        else if retries < 1 then Error (`Msg "replica: --max-retries must be >= 1")
        else
          match Rs_net.Tcp.parse_hostport follow with
          | Error e -> Error (`Msg ("replica: --follow " ^ e))
          | Ok (lhost, lport) -> (
              match
                match tcp with
                | None -> Ok None
                | Some hp -> (
                    match Rs_net.Tcp.parse_hostport hp with
                    | Ok (h, p) -> Ok (Some (h, p))
                    | Error e -> Error (`Msg ("replica: --tcp " ^ e)))
              with
              | Error e -> Error e
              | Ok tcp_addr -> (
                  match resolve_fsync ~wal fsync with
                  | Error e -> Error e
                  | Ok fsync -> (
                      let dir = Option.get wal in
                      (* bind before following: a taken port must be a
                         one-line exit before any snapshot is shipped *)
                      match
                        match tcp_addr with
                        | None -> Ok None
                        | Some (h, p) -> (
                            match Rs_net.Tcp.listen ~host:h ~port:p with
                            | Ok srv -> Ok (Some (h, p, srv))
                            | Error e -> Error (`Msg ("replica: " ^ e)))
                      with
                      | Error e -> Error e
                      | Ok bound -> (
                          catch_store @@ fun () ->
                          let cfg =
                            { (Repl.default_replica_config ()) with
                              Repl.max_retries = retries; fsync }
                          in
                          let service_config = { Service.default_config with readers } in
                          match
                            Repl.follow ~config:cfg ?health_file ~service_config
                              ~dir ~host:lhost ~port:lport ()
                          with
                          | Error e -> Error (`Msg ("replica: " ^ e))
                          | Ok r ->
                              let svc = Repl.replica_service r in
                              let stop_flag = Atomic.make false in
                              let handler =
                                Sys.Signal_handle (fun _ -> Atomic.set stop_flag true)
                              in
                              let old_term = Sys.signal Sys.sigterm handler in
                              let old_int = Sys.signal Sys.sigint handler in
                              Logs.app (fun m ->
                                  m "replica: following %s:%d into %s (seq %d, epoch %d)"
                                    lhost lport dir (Service.view_seq svc)
                                    (Repl.replica_epoch r));
                              let env =
                                { Proto.service = svc;
                                  on_delta =
                                    (fun _ ->
                                      Error
                                        (Printf.sprintf
                                           "replica is read-only: offer deltas to the \
                                            leader at %s:%d"
                                           lhost lport));
                                  stopped = (fun () -> Atomic.get stop_flag);
                                  status_suffix = (fun () -> Repl.status_suffix r) }
                              in
                              let ld =
                                match bound with
                                | None -> None
                                | Some (h, p, srv) -> (
                                    match
                                      Repl.lead ~proto_env:env ~server:srv ~service:svc
                                        ~store_dir:None ~host:h ~port:p ()
                                    with
                                    | Ok ld ->
                                        Logs.app (fun m ->
                                            m "replica: tcp queries on %s:%d" h
                                              (Repl.leader_port ld));
                                        Some ld
                                    | Error e ->
                                        Logs.err (fun m -> m "replica: tcp failed: %s" e);
                                        None)
                              in
                              let promoted = ref false in
                              let tick () =
                                if promote && (not !promoted) && Repl.gave_up r then begin
                                  let e = Repl.promote r in
                                  promoted := true;
                                  Logs.app (fun m ->
                                      m
                                        "replica: leader lost after %d retries; promoted \
                                         to epoch %d at seq %d"
                                        retries e (Service.view_seq svc))
                                end
                              in
                              let exec line =
                                match Proto.exec env line with
                                | Proto.Silent -> `Continue
                                | Proto.Quit -> `Quit
                                | Proto.Reply rep ->
                                    print_endline rep;
                                    flush stdout;
                                    `Continue
                              in
                              (match script with
                              | Some file ->
                                  let lines =
                                    In_channel.with_open_text file In_channel.input_lines
                                  in
                                  let rec go = function
                                    | [] -> ()
                                    | l :: rest ->
                                        tick ();
                                        if Atomic.get stop_flag then ()
                                        else if exec l = `Quit then ()
                                        else go rest
                                  in
                                  go lines
                              | None ->
                                  (* resident: poll stdin for commands but keep
                                     following after EOF — only a signal (or an
                                     explicit quit) ends a replica *)
                                  let buf = Buffer.create 256 in
                                  let chunk = Bytes.create 4096 in
                                  let quit = ref false in
                                  let stdin_open = ref true in
                                  let feed k =
                                    Buffer.add_subbytes buf chunk 0 k;
                                    let rec lines () =
                                      let s = Buffer.contents buf in
                                      match String.index_opt s '\n' with
                                      | None -> ()
                                      | Some i ->
                                          Buffer.clear buf;
                                          Buffer.add_string buf
                                            (String.sub s (i + 1) (String.length s - i - 1));
                                          if exec (String.sub s 0 i) = `Quit then
                                            quit := true
                                          else lines ()
                                    in
                                    lines ()
                                  in
                                  let rec loop () =
                                    tick ();
                                    if not (!quit || Atomic.get stop_flag) then
                                      if not !stdin_open then begin
                                        Unix.sleepf 0.1;
                                        loop ()
                                      end
                                      else
                                        match Unix.select [ Unix.stdin ] [] [] 0.1 with
                                        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                                            loop ()
                                        | [], _, _ -> loop ()
                                        | _ ->
                                            let k =
                                              Unix.read Unix.stdin chunk 0
                                                (Bytes.length chunk)
                                            in
                                            if k > 0 then feed k else stdin_open := false;
                                            loop ()
                                  in
                                  loop ());
                              Option.iter Repl.stop_leader ld;
                              let st = Repl.stop_replica r in
                              Sys.set_signal Sys.sigterm old_term;
                              Sys.set_signal Sys.sigint old_int;
                              Logs.app (fun m ->
                                  m
                                    "replica: stopped at seq %d (applied %d, stale reads \
                                     %d, epoch %d)"
                                    st.Service.s_seq st.Service.s_accepted
                                    st.Service.s_stale_reads (Repl.replica_epoch r));
                              Ok ())))))
  in
  let term =
    Term.(
      term_result
        (const run $ obs_term $ follow_arg $ tcp_arg $ readers_arg $ retries_arg
       $ promote_arg $ health_arg $ script_arg $ wal_arg $ fsync_arg))
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:
         "Follow a leader started with $(b,rspan serve --tcp --wal): bootstrap \
          by shipping its newest checksummed snapshot (resumable, verified \
          before install), then apply its streamed WAL records through the \
          same incremental repair, serving stale-bounded reads with an \
          advertised lag. Disconnects reconnect with capped exponential \
          backoff and resume from the replica's own durable sequence number \
          (no gaps, no double-apply); --promote-on-disconnect turns a lost \
          leader into an epoch bump that fences the deposed one out.")
    term

(* ------------------------------------------------------------------ *)
(* ship *)

let ship_cmd =
  let module Repl = Rs_net.Repl in
  let hp_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"HOST:PORT" ~doc:"Leader address.")
  in
  let dir_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Destination directory.")
  in
  let timeout_arg =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECS" ~doc:"Per-frame transfer deadline.")
  in
  let run () hp dir timeout =
    match (hp, dir) with
    | None, _ -> Error (`Msg "ship: HOST:PORT of a leader is required")
    | _, None -> Error (`Msg "ship: a destination DIR is required")
    | Some hp, Some dir -> (
        match Rs_net.Tcp.parse_hostport hp with
        | Error e -> Error (`Msg ("ship: " ^ e))
        | Ok (host, port) -> (
            catch_store @@ fun () ->
            match Repl.ship ~timeout_s:timeout ~host ~port ~dir () with
            | Error e -> Error (`Msg ("ship: " ^ e))
            | Ok (seq, path) ->
                Printf.printf "shipped: snapshot seq %d -> %s\n" seq path;
                Ok ()))
  in
  let term = Term.(term_result (const run $ obs_term $ hp_arg $ dir_arg $ timeout_arg)) in
  Cmd.v
    (Cmd.info "ship"
       ~doc:
         "Fetch a leader's newest checksummed snapshot over TCP into DIR. An \
          interrupted transfer leaves a .part file that the next attempt \
          resumes at its byte offset; the whole file is verified against the \
          leader's CRC before the atomic rename, so a torn or corrupted ship \
          can never be mistaken for a snapshot.")
    term

(* ------------------------------------------------------------------ *)
(* chaostest *)

let chaostest_cmd =
  let module Chaos = Rs_serve.Chaos in
  let module Net_chaos = Rs_net.Net_chaos in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.") in
  let n =
    Arg.(value & opt int 40 & info [ "n" ] ~docv:"N" ~doc:"Vertex count of the base graph.")
  in
  let batches =
    Arg.(
      value & opt int 10
      & info [ "batches" ] ~docv:"B" ~doc:"Random delta batches driven through each scenario.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Run a single scenario: %s."
               (String.concat ", " (Chaos.names @ Net_chaos.names))))
  in
  let run () seed n batches scenario dir =
    let known = Chaos.names @ Net_chaos.names in
    match scenario with
    | Some s when not (List.mem s known) ->
        Error
          (`Msg
             (Printf.sprintf "chaostest: unknown scenario %s (known: %s)" s
                (String.concat ", " known)))
    | _ -> (
        let run_service =
          match scenario with None -> true | Some s -> List.mem s Chaos.names
        in
        let run_net =
          match scenario with None -> true | Some s -> List.mem s Net_chaos.names
        in
        catch_store @@ fun () ->
        match
          let svc_report =
            if run_service then Some (Chaos.run ~seed ~n ~batches ?only:scenario ~dir ())
            else None
          in
          let net_report =
            if run_net then
              Some (Net_chaos.run ~seed ~n ~batches ?only:scenario ~dir ())
            else None
          in
          (svc_report, net_report)
        with
        | exception Invalid_argument m -> Error (`Msg m)
        | svc_report, net_report ->
            Option.iter
              (fun rep -> Logs.app (fun m -> m "%a" Chaos.pp_report rep))
              svc_report;
            Option.iter
              (fun rep -> Logs.app (fun m -> m "%a" Net_chaos.pp_report rep))
              net_report;
            let ok =
              Option.fold ~none:true ~some:Chaos.ok svc_report
              && Option.fold ~none:true ~some:Net_chaos.ok net_report
            in
            if ok then Ok () else Error (`Msg "chaos uncovered failures"))
  in
  let term =
    Term.(term_result (const run $ obs_term $ seed $ n $ batches $ scenario $ store_pos))
  in
  Cmd.v
    (Cmd.info "chaostest"
       ~doc:
         "Chaos harness, two layers. Service: kill the writer mid-repair, tear \
          the WAL across a restart, saturate the bounded ingest queue, wedge \
          the writer under a watchdog. Network: partition leader and replica \
          mid-stream, tear a snapshot ship, overflow a slow replica's bounded \
          send buffer, restart-and-resume a replica, kill the leader and \
          promote. Every scenario must end in a state byte-identical to a \
          from-scratch build, with readers answering (stale-flagged at worst) \
          throughout.")
    term

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.App);
  let doc = "remote-spanner toolkit (Jacquet & Viennot, IPDPS 2009)" in
  let info = Cmd.info "rspan" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ gen_cmd; build_cmd; profile_cmd; top_cmd; sim_cmd; periodic_cmd; verify_cmd;
        stats_cmd; route_cmd; dot_cmd; render_cmd; churn_cmd; heal_cmd;
        snapshot_cmd; recover_cmd; crashtest_cmd; serve_cmd; replica_cmd;
        ship_cmd; chaostest_cmd ]
  in
  (* linking Rs_net ignores SIGPIPE process-wide, so a downstream
     `| head` closing stdout surfaces as Sys_error instead of a silent
     signal death; keep the conventional 141 exit rather than an
     uncaught-exception banner (cmdliner's own catch would print one,
     hence ~catch:false and a hand-rolled fallback for the rest) *)
  let broken_pipe msg = Filename.check_suffix msg "Broken pipe" in
  (* buffered output may only hit the dead pipe at an at_exit flush we
     don't control, so park fd 1 on /dev/null once EPIPE is seen — every
     later flush then succeeds and the process exits cleanly *)
  let mute_stdout () =
    try
      let fd = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd
    with Unix.Unix_error _ | Sys_error _ -> ()
  in
  let code =
    try Cmd.eval ~catch:false group with
    | Sys_error msg when broken_pipe msg ->
        mute_stdout ();
        141
    | exn ->
        let bt = Printexc.get_backtrace () in
        Format.eprintf "rspan: internal error, uncaught exception:@.%s@.%s@."
          (Printexc.to_string exn) bt;
        Cmd.Exit.internal_error
  in
  let code =
    try
      flush stdout;
      code
    with Sys_error msg when broken_pipe msg ->
      mute_stdout ();
      if code = 0 then 141 else code
  in
  exit code
