(* Tests for k-connecting (2, beta)-dominating trees: Algorithms 4, 5. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let dense_er seed n p = Gen.erdos_renyi (Rand.create seed) n p

let standard_graphs =
  [
    ("petersen", Gen.petersen ());
    ("k33", Gen.complete_bipartite 3 3);
    ("hypercube4", Gen.hypercube 4);
    ("grid44", Gen.grid 4 4);
    ("udg", udg 51 60);
    ("er_dense", dense_er 53 30 0.3);
    ("theta35", Gen.theta 3 5);
  ]

(* ---------------------------------------------------------------- *)
(* disjoint_branch_count *)

let test_branch_count_manual () =
  (* K_{2,3}: parts {0,1} and {2,3,4}. Root 0; v = 1 at distance 2.
     Tree: 0-2, 0-3 -> two disjoint depth-1 branches adjacent to 1. *)
  let g = Gen.complete_bipartite 2 3 in
  let t = Tree.create ~n:5 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:2;
  check_int "one" 1 (Dom_tree_k.disjoint_branch_count g t ~beta:0 1);
  Tree.add_edge t ~parent:0 ~child:3;
  check_int "two" 2 (Dom_tree_k.disjoint_branch_count g t ~beta:0 1)

let test_branch_count_depth2_same_branch () =
  (* path 0-1-2 plus edge 1-3, 2-3: tree 0-1, 1-2: both 1 and 2 are
     neighbors of 3 but share the branch through 1. *)
  let g = Graph.make ~n:4 [ (0, 1); (1, 2); (1, 3); (2, 3) ] in
  let t = Tree.create ~n:4 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  Tree.add_edge t ~parent:1 ~child:2;
  check_int "same branch counts once" 1 (Dom_tree_k.disjoint_branch_count g t ~beta:1 3)

let test_branch_count_depth_cutoff () =
  (* beta = 0 only sees depth-1 members *)
  let g = Graph.make ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let t = Tree.create ~n:4 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  Tree.add_edge t ~parent:1 ~child:2;
  (* v = 3: neighbor 2 is at depth 2 *)
  check_int "beta 0 blind to depth 2" 0 (Dom_tree_k.disjoint_branch_count g t ~beta:0 3);
  check_int "beta 1 sees it" 1 (Dom_tree_k.disjoint_branch_count g t ~beta:1 3)

(* ---------------------------------------------------------------- *)
(* Checker *)

let test_checker_k1_matches_domtree_definition () =
  (* a (2,0)-dominating tree is the k=1 case *)
  List.iter
    (fun (name, g) ->
      Graph.iter_vertices
        (fun u ->
          let t = Dom_tree_k.gdy_k g ~k:1 u in
          check (name ^ " k=1 both checkers") true
            (Dom_tree_k.is_k_dominating g ~k:1 ~beta:0 t
            && Dom_tree.is_dominating g ~r:2 ~beta:0 t))
        g)
    standard_graphs

let test_checker_escape_clause () =
  (* C6, root 0, v=2 with single common neighbor 1: a tree containing
     edge u-1 satisfies the "all common neighbors" clause even though
     one branch < k = 2. *)
  let g = Gen.cycle 6 in
  let t = Tree.create ~n:6 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  Tree.add_edge t ~parent:0 ~child:5;
  check "escape clause" true (Dom_tree_k.is_k_dominating g ~k:2 ~beta:0 t)

let test_checker_requires_all_common_neighbors () =
  (* K_{2,3}: root 0, v=1, common neighbors {2,3,4}. With k=3 a tree
     holding only 2 of them fails. *)
  let g = Gen.complete_bipartite 2 3 in
  let t = Tree.create ~n:5 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:2;
  Tree.add_edge t ~parent:0 ~child:3;
  check "2 of 3 insufficient for k=3" false (Dom_tree_k.is_k_dominating g ~k:3 ~beta:0 t);
  Tree.add_edge t ~parent:0 ~child:4;
  check "all 3 fine" true (Dom_tree_k.is_k_dominating g ~k:3 ~beta:0 t)

(* ---------------------------------------------------------------- *)
(* Algorithm 4 *)

let test_gdy_k_valid () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          Graph.iter_vertices
            (fun u ->
              let t = Dom_tree_k.gdy_k g ~k u in
              check
                (Printf.sprintf "%s u=%d k=%d" name u k)
                true
                (Dom_tree_k.is_k_dominating g ~k ~beta:0 t))
            g)
        [ 1; 2; 3; 5 ])
    standard_graphs

let test_gdy_k_is_star () =
  let g = udg 55 50 in
  Graph.iter_vertices
    (fun u ->
      let t = Dom_tree_k.gdy_k g ~k:2 u in
      List.iter
        (fun v -> if v <> u then check_int "depth 1" 1 (Tree.depth t v))
        (Tree.vertices t))
    g

let test_gdy_k_monotone_in_k () =
  let g = dense_er 57 25 0.4 in
  Graph.iter_vertices
    (fun u ->
      let s1 = Tree.edge_count (Dom_tree_k.gdy_k g ~k:1 u) in
      let s2 = Tree.edge_count (Dom_tree_k.gdy_k g ~k:2 u) in
      let s3 = Tree.edge_count (Dom_tree_k.gdy_k g ~k:3 u) in
      check "k=1 <= k=2" true (s1 <= s2);
      check "k=2 <= k=3" true (s2 <= s3))
    g

let test_gdy_k_saturates_at_neighborhood () =
  (* huge k: every common neighbor gets selected *)
  let g = Gen.cycle 8 in
  let t = Dom_tree_k.gdy_k g ~k:50 0 in
  check_int "both neighbors" 2 (Tree.edge_count t)

let test_gdy_k_ratio_vs_exact_multicover () =
  (* Proposition 6: within 1 + log Delta of the optimal k-connecting
     (2,0)-dominating tree = exact minimum k-multicover. *)
  let graphs = [ Gen.petersen (); dense_er 59 18 0.4; Gen.hypercube 3 ] in
  List.iter
    (fun g ->
      let delta = float_of_int (Graph.max_degree g) in
      Graph.iter_vertices
        (fun u ->
          let d = Bfs.dist ~radius:2 g u in
          let sphere = ref [] in
          Graph.iter_vertices (fun v -> if d.(v) = 2 then sphere := v :: !sphere) g;
          if !sphere <> [] then begin
            let sphere = Array.of_list (List.rev !sphere) in
            let idx = Hashtbl.create 8 in
            Array.iteri (fun i v -> Hashtbl.replace idx v i) sphere;
            let sets =
              Array.map
                (fun x ->
                  Array.to_list (Graph.neighbors g x)
                  |> List.filter_map (Hashtbl.find_opt idx)
                  |> Array.of_list)
                (Graph.neighbors g u)
            in
            let inst = { Rs_setcover.Setcover.universe = Array.length sphere; sets } in
            match Rs_setcover.Setcover.exact inst ~k:2 with
            | None -> ()
            | Some opt when opt <> [] ->
                let got = Tree.edge_count (Dom_tree_k.gdy_k g ~k:2 u) in
                let ratio = float_of_int got /. float_of_int (List.length opt) in
                check "prop 6 ratio" true (ratio <= 1.0 +. log delta +. 1e-9)
            | Some _ -> ()
          end)
        g)
    graphs

(* ---------------------------------------------------------------- *)
(* Algorithm 5 *)

let test_mis_k_valid () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          Graph.iter_vertices
            (fun u ->
              let t = Dom_tree_k.mis_k g ~k u in
              check
                (Printf.sprintf "%s u=%d k=%d" name u k)
                true
                (Dom_tree_k.is_k_dominating g ~k ~beta:1 t))
            g)
        [ 1; 2; 3 ])
    standard_graphs

let test_mis_k_depth_at_most_2 () =
  let g = udg 61 60 in
  Graph.iter_vertices
    (fun u ->
      let t = Dom_tree_k.mis_k g ~k:2 u in
      List.iter
        (fun v -> check "depth <= 2" true (Tree.depth t v <= 2))
        (Tree.vertices t))
    g

let test_mis_k_size_on_udg () =
  (* Proposition 7: O(k^2) edges on doubling UBG. Planar unit disks:
     MIS of a 2-ball has <= ~25 nodes; per round we add <= k+1 edges
     per MIS member. Use a generous constant. *)
  let g = udg 63 150 in
  List.iter
    (fun k ->
      Graph.iter_vertices
        (fun u ->
          let t = Dom_tree_k.mis_k g ~k u in
          check "O(k^2)" true (Tree.edge_count t <= 60 * k * (k + 1)))
        g)
    [ 1; 2; 3; 4 ]

let test_mis_k_2conn_theta () =
  (* theta(2,1): vertices 0,1 hubs; 2 internal paths of 1 node each:
     a 4-cycle. From 0: v=1 at distance 2 with 2 disjoint branches. *)
  let g = Gen.theta 2 1 in
  let t = Dom_tree_k.mis_k g ~k:2 0 in
  check_int "two branches" 2 (Dom_tree_k.disjoint_branch_count g t ~beta:1 1)

(* ---------------------------------------------------------------- *)
(* extract_k21: constructive Proposition-4-premise audit *)

let test_extract_succeeds_on_two_connecting_output () =
  List.iter
    (fun (name, g) ->
      let h = Rs_core.Remote_spanner.two_connecting g in
      Graph.iter_vertices
        (fun u ->
          match Dom_tree_k.extract_k21 g h ~k:2 u with
          | Some t ->
              check (Printf.sprintf "%s u=%d valid" name u) true
                (Dom_tree_k.is_k_dominating g ~k:2 ~beta:1 t);
              (* the certificate must use only H edges *)
              List.iter
                (fun (p, c) -> check "edge in H" true (Rs_graph.Edge_set.mem h p c))
                (Tree.edges t)
          | None -> Alcotest.failf "%s u=%d: extraction failed" name u)
        g)
    standard_graphs

let test_extract_fails_on_empty_h () =
  let g = Gen.cycle 8 in
  let h = Rs_graph.Edge_set.create g in
  check "no tree in empty H" true (Dom_tree_k.extract_k21 g h ~k:1 0 = None)

let test_extract_trivial_when_no_sphere () =
  let g = Gen.complete 5 in
  let h = Rs_graph.Edge_set.create g in
  (match Dom_tree_k.extract_k21 g h ~k:2 0 with
  | Some t -> check_int "bare root suffices" 1 (Tree.size t)
  | None -> Alcotest.fail "trivial tree expected")

let () =
  Alcotest.run "domtree_k"
    [
      ( "branch_count",
        [
          Alcotest.test_case "manual" `Quick test_branch_count_manual;
          Alcotest.test_case "same branch once" `Quick test_branch_count_depth2_same_branch;
          Alcotest.test_case "depth cutoff" `Quick test_branch_count_depth_cutoff;
        ] );
      ( "checker",
        [
          Alcotest.test_case "k=1 = (2,0) tree" `Quick test_checker_k1_matches_domtree_definition;
          Alcotest.test_case "escape clause" `Quick test_checker_escape_clause;
          Alcotest.test_case "needs all common" `Quick test_checker_requires_all_common_neighbors;
        ] );
      ( "gdy_k",
        [
          Alcotest.test_case "valid" `Quick test_gdy_k_valid;
          Alcotest.test_case "star shape" `Quick test_gdy_k_is_star;
          Alcotest.test_case "monotone in k" `Quick test_gdy_k_monotone_in_k;
          Alcotest.test_case "saturates" `Quick test_gdy_k_saturates_at_neighborhood;
          Alcotest.test_case "ratio vs exact (Prop 6)" `Quick test_gdy_k_ratio_vs_exact_multicover;
        ] );
      ( "mis_k",
        [
          Alcotest.test_case "valid" `Quick test_mis_k_valid;
          Alcotest.test_case "depth <= 2" `Quick test_mis_k_depth_at_most_2;
          Alcotest.test_case "O(k^2) on UDG" `Quick test_mis_k_size_on_udg;
          Alcotest.test_case "theta branches" `Quick test_mis_k_2conn_theta;
        ] );
      ( "extract_k21",
        [
          Alcotest.test_case "certifies construction output" `Quick
            test_extract_succeeds_on_two_connecting_output;
          Alcotest.test_case "fails on empty H" `Quick test_extract_fails_on_empty_h;
          Alcotest.test_case "trivial sphere" `Quick test_extract_trivial_when_no_sphere;
        ] );
    ]
