(* Tests for the fault-injection plan/state machinery. *)
module Fault = Rs_distributed.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_make_validates () =
  let bad f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "drop > 1" true (bad (fun () -> Fault.make ~drop:1.5 ~seed:1 ()));
  check "negative dup" true (bad (fun () -> Fault.make ~dup:(-0.1) ~seed:1 ()));
  check "negative delay" true (bad (fun () -> Fault.make ~delay:(-1) ~seed:1 ()));
  check "empty crash interval" true
    (bad (fun () ->
         Fault.make ~crashes:[ { Fault.node = 0; at = 5; recover = Some 5 } ] ~seed:1 ()));
  check "empty flap interval" true
    (bad (fun () -> Fault.make ~flaps:[ { Fault.u = 0; v = 1; down = 3; up = 3 } ] ~seed:1 ()));
  check "valid plan" true
    (match Fault.make ~drop:0.5 ~delay:1 ~jitter:2 ~dup:0.1 ~seed:1 () with
    | _ -> true
    | exception _ -> false)

let test_is_none () =
  check "none is none" true (Fault.is_none Fault.none);
  check "make default is none" true (Fault.is_none (Fault.make ~seed:7 ()));
  check "drop is not none" false (Fault.is_none (Fault.make ~drop:0.1 ~seed:7 ()));
  check "crash is not none" false
    (Fault.is_none
       (Fault.make ~crashes:[ { Fault.node = 0; at = 0; recover = None } ] ~seed:7 ()))

let test_quiet_at () =
  check_int "empty plan" 0 (Fault.quiet_at Fault.none);
  check_int "bounded loss" 10 (Fault.quiet_at (Fault.make ~drop:0.2 ~until:10 ~seed:1 ()));
  check_int "unbounded loss never quiet" max_int
    (Fault.quiet_at (Fault.make ~drop:0.2 ~seed:1 ()));
  check_int "crash recover dominates" 25
    (Fault.quiet_at
       (Fault.make ~drop:0.2 ~until:10
          ~crashes:[ { Fault.node = 3; at = 5; recover = Some 25 } ]
          ~seed:1 ()));
  check_int "unrecovered crash never quiet" max_int
    (Fault.quiet_at
       (Fault.make ~crashes:[ { Fault.node = 3; at = 5; recover = None } ] ~seed:1 ()));
  check_int "flap up" 15
    (Fault.quiet_at (Fault.make ~flaps:[ { Fault.u = 0; v = 1; down = 5; up = 15 } ] ~seed:1 ()))

let test_last_transition () =
  check_int "empty" 0 (Fault.last_transition Fault.none);
  check_int "unbounded loss ignored" 0
    (Fault.last_transition (Fault.make ~drop:0.5 ~seed:1 ()));
  check_int "unrecovered crash is its at" 5
    (Fault.last_transition
       (Fault.make ~crashes:[ { Fault.node = 0; at = 5; recover = None } ] ~seed:1 ()));
  check_int "recovery dominates" 30
    (Fault.last_transition
       (Fault.make
          ~crashes:[ { Fault.node = 0; at = 5; recover = Some 30 } ]
          ~flaps:[ { Fault.u = 0; v = 1; down = 2; up = 9 } ]
          ~seed:1 ()))

let test_schedules_respected () =
  let plan =
    Fault.make
      ~crashes:[ { Fault.node = 2; at = 10; recover = Some 20 } ]
      ~flaps:[ { Fault.u = 4; v = 1; down = 3; up = 7 } ]
      ~seed:1 ()
  in
  let st = Fault.start plan in
  check "up before crash" true (Fault.node_up st ~round:9 2);
  check "down at crash" false (Fault.node_up st ~round:10 2);
  check "down just before recover" false (Fault.node_up st ~round:19 2);
  check "up at recover" true (Fault.node_up st ~round:20 2);
  check "other nodes unaffected" true (Fault.node_up st ~round:15 3);
  check "link up before flap" true (Fault.link_up st ~round:2 1 4);
  check "link down during flap (either direction)" false (Fault.link_up st ~round:5 1 4);
  check "link down during flap (other direction)" false (Fault.link_up st ~round:5 4 1);
  check "link back up" true (Fault.link_up st ~round:7 4 1);
  check "other links unaffected" true (Fault.link_up st ~round:5 0 3)

let outcomes plan rounds =
  let st = Fault.start plan in
  List.init rounds (fun r -> Fault.transmit st ~round:r)

let test_transmit_deterministic () =
  let plan = Fault.make ~drop:0.4 ~dup:0.3 ~delay:1 ~jitter:2 ~seed:42 () in
  check "same seed, same outcomes" true (outcomes plan 200 = outcomes plan 200);
  let other = Fault.make ~drop:0.4 ~dup:0.3 ~delay:1 ~jitter:2 ~seed:43 () in
  check "different seed differs" true (outcomes plan 200 <> outcomes other 200)

let test_transmit_extremes () =
  let all_drop = outcomes (Fault.make ~drop:1.0 ~seed:1 ()) 50 in
  check "drop=1 drops everything" true
    (List.for_all (fun o -> o = Fault.Dropped) all_drop);
  let all_dup = outcomes (Fault.make ~dup:1.0 ~seed:1 ()) 50 in
  check "dup=1 duplicates everything" true
    (List.for_all (function Fault.Deliver [ 0; 0 ] -> true | _ -> false) all_dup);
  let fixed_delay = outcomes (Fault.make ~delay:3 ~seed:1 ()) 50 in
  check "fixed delay" true
    (List.for_all (function Fault.Deliver [ 3 ] -> true | _ -> false) fixed_delay);
  let jittered = outcomes (Fault.make ~delay:1 ~jitter:2 ~seed:1 ()) 200 in
  check "jitter within [delay, delay+jitter]" true
    (List.for_all
       (function Fault.Deliver [ d ] -> d >= 1 && d <= 3 | _ -> false)
       jittered);
  check "jitter actually varies" true
    (List.exists (fun o -> o = Fault.Deliver [ 1 ]) jittered
    && List.exists (fun o -> o = Fault.Deliver [ 3 ]) jittered)

let test_transmit_until_window () =
  let plan = Fault.make ~drop:1.0 ~until:5 ~seed:1 () in
  let st = Fault.start plan in
  check "dropped inside the window" true (Fault.transmit st ~round:4 = Fault.Dropped);
  check "clean outside the window" true (Fault.transmit st ~round:5 = Fault.Deliver [ 0 ]);
  check "still clean later" true (Fault.transmit st ~round:100 = Fault.Deliver [ 0 ])

let test_drop_rate_plausible () =
  let st = Fault.start (Fault.make ~drop:0.3 ~seed:9 ()) in
  let drops = ref 0 in
  for r = 0 to 9999 do
    if Fault.transmit st ~round:r = Fault.Dropped then incr drops
  done;
  (* 10k draws at p = 0.3: well inside +-5 points *)
  check "rate near 0.3" true (!drops > 2500 && !drops < 3500)

let test_parse_schedule () =
  let crashes, flaps =
    Fault.parse_schedule
      "# header comment\n\ncrash 3 10 25\ncrash 7 40   # forever\nflap 0 1 5 15\n"
  in
  check "two crashes" true
    (crashes
    = [ { Fault.node = 3; at = 10; recover = Some 25 };
        { Fault.node = 7; at = 40; recover = None } ]);
  check "one flap" true (flaps = [ { Fault.u = 0; v = 1; down = 5; up = 15 } ]);
  let bad text =
    match Fault.parse_schedule text with
    | _ -> None
    | exception Failure msg -> Some msg
  in
  (match bad "crash 3" with
  | Some msg ->
      check "bad arity names the line" true
        (String.length msg > 0
        &&
        let sub = "line 1" in
        let n = String.length msg and k = String.length sub in
        let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
        scan 0)
  | None -> Alcotest.fail "bad crash line accepted");
  check "unknown directive rejected" true (bad "crush 1 2 3" <> None);
  check "non-integer rejected" true (bad "crash x 2" <> None)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "is_none" `Quick test_is_none;
          Alcotest.test_case "quiet_at" `Quick test_quiet_at;
          Alcotest.test_case "last_transition" `Quick test_last_transition;
        ] );
      ( "state",
        [
          Alcotest.test_case "schedules respected" `Quick test_schedules_respected;
          Alcotest.test_case "transmit deterministic" `Quick test_transmit_deterministic;
          Alcotest.test_case "transmit extremes" `Quick test_transmit_extremes;
          Alcotest.test_case "until window" `Quick test_transmit_until_window;
          Alcotest.test_case "drop rate plausible" `Quick test_drop_rate_plausible;
        ] );
      ( "schedule-files",
        [ Alcotest.test_case "parse" `Quick test_parse_schedule ] );
    ]
