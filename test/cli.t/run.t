End-to-end CLI workflow: generate, build, verify, inspect, route.

  $ rspan gen --family udg -n 60 --seed 3 --coords pts.xy -o g.txt
  generated: n=60 m=322

  $ rspan stats g.txt
  n=60 m=322
  degree: max=21 avg=10.73 min=1
  components=1 diameter=7

  $ rspan build --algo exact g.txt -o h.txt
  spanner: 170 of 322 edges (52.8%)

  $ rspan verify --alpha 1 --beta 0 g.txt h.txt
  OK: (1, 0)-remote-spanner

A (1,0)-remote-spanner routes exactly; a broken spanner is rejected
with concrete violations.

  $ rspan build --algo bfs-tree g.txt -o tree.txt
  spanner: 59 of 322 edges (18.3%)

  $ rspan verify --alpha 1 --beta 0 g.txt tree.txt
  violation: (1 -> 2: d_G=4, d_Hu=5)
  violation: (1 -> 4: d_G=4, d_Hu=6)
  violation: (1 -> 5: d_G=4, d_Hu=5)
  violation: (1 -> 7: d_G=5, d_Hu=7)
  violation: (1 -> 8: d_G=2, d_Hu=7)
  rspan: stretch violated
  [124]

k-connecting verification via min-cost flow, vertex- and edge-disjoint.

  $ rspan build --algo two-connecting g.txt -o h2.txt
  spanner: 253 of 322 edges (78.6%)

  $ rspan verify --alpha 2 --beta=-1 -k 2 g.txt h2.txt
  OK: (2, -1)-remote-spanner (2-connecting)

Deterministic generation: same seed, same graph.

  $ rspan gen --family gnp -n 30 --seed 9 -o a.txt
  generated: n=30 m=40
  $ rspan gen --family gnp -n 30 --seed 9 -o b.txt
  generated: n=30 m=40
  $ cmp a.txt b.txt

Families and error handling.

  $ rspan gen --family theta -n 12 -k 3 -o t.txt
  generated: n=14 m=15

  $ rspan verify --alpha 1 --beta 0 g.txt missing.txt
  rspan: missing.txt: No such file or directory
  [124]

Continuous profiling: --format folded emits semicolon-joined call
stacks (one line per call-tree node, self time in microseconds) ready
for flamegraph.pl or speedscope. Frame names are deterministic.

  $ rspan profile --algo exact --format folded g.txt -o p.folded 2>/dev/null
  $ cut -d' ' -f1 p.folded | sort
  profile
  profile;build/exact_distance

With --stats active, heal prints a one-line repair-latency quantile
digest (values are wall-clock, so only the shape is stable), and the
registry lands in the JSON file.

  $ cat > flap.txt <<EOF
  > remove 0 2
  > add 0 2
  > EOF
  $ rspan heal --algo exact --deltas flap.txt --step --stats=heal_metrics.json g.txt -o healed.txt | sed 's/=[0-9.]*ms/=Xms/g'
  delta 0: dirty=24 rebuilt=24 escalations=0 level=local edges_changed=2
  delta 1: dirty=24 rebuilt=24 escalations=0 level=local edges_changed=2
  healed: n=60 m=322, spanner 170 edges, 48 of 60 trees recomputed
  repair/latency: count=2 p50=Xms p90=Xms p99=Xms max=Xms
  equivalence: healed spanner = from-scratch build
  verified: (1, 0)-remote-spanner
  $ grep -c '"p99"' heal_metrics.json > /dev/null && echo has-quantiles
  has-quantiles

So does churn when maintaining advertisements by incremental repair.

  $ rspan churn -n 20 --steps 6 --refresh 3 --seed 2 --incremental --stats=churn_metrics.json | sed 's/=[0-9.]*ms/=Xms/g'
  full LS      delivery 100.0%  stretch 1.010  advertised 41  repair mismatches 0
  (1,0)-RS     delivery 100.0%  stretch 1.010  advertised 29  repair mismatches 0
  (1.5,0)-RS   delivery 100.0%  stretch 1.010  advertised 34  repair mismatches 0
  2conn-RS     delivery 100.0%  stretch 1.010  advertised 40  repair mismatches 0
  repair/latency: count=3 p50=Xms p90=Xms p99=Xms max=Xms

Durable state: --wal logs every applied delta to a checksummed
write-ahead log (quiescent deltas are skipped — the log stays dense),
and recover rebuilds the exact live state from snapshot plus WAL,
gated against a from-scratch rebuild.

  $ cat > churn2.txt <<DELTAS
  > add 0 7
  > add 0 7
  > down 2
  > up 2 5 11
  > DELTAS
  $ rspan heal --algo exact --deltas churn2.txt --step --wal store g.txt -o live_spanner.txt
  delta 0: dirty=33 rebuilt=33 escalations=0 level=local edges_changed=11
  delta 1: quiescent (not logged)
  delta 2: dirty=46 rebuilt=46 escalations=0 level=local edges_changed=7
  delta 3: dirty=53 rebuilt=53 escalations=0 level=local edges_changed=5
  healed: n=60 m=316, spanner 175 edges, 132 of 60 trees recomputed
  wal: store sealed at seq 3
  equivalence: healed spanner = from-scratch build
  verified: (1, 0)-remote-spanner

  $ rspan recover store -o recovered.txt --spanner rec_spanner.txt
  snapshot seq 0 (snap-00000000000000000000.rsnap)
  replayed 3 WAL records -> seq 3
  verified: every recovered spanner = from-scratch build

The recovered spanner is byte-identical to the one the live run wrote:

  $ cmp live_spanner.txt rec_spanner.txt

Compaction folds the WAL into a single snapshot; the next recovery
replays nothing.

  $ rspan snapshot store --compact
  store store: compacted at seq 3 -> store/snap-00000000000000000003.rsnap (replayed 3 wal records)
  $ ls store
  snap-00000000000000000003.rsnap
  wal-00000000000000000004.seg
  $ rspan recover store
  snapshot seq 3 (snap-00000000000000000003.rsnap)
  replayed 0 WAL records -> seq 3
  verified: every recovered spanner = from-scratch build

Seeded crash-point injection: every damaged copy of the store must
recover to the exact pre-crash state or a verified prefix of history.

  $ rspan crashtest --seed 7 -n 30 --batches 8 scratch
  crash sites: 14 (6 exact recoveries, 8 verified prefixes)
  round trip: byte-identical

The resident service: a scripted session against the same graph —
queries answer from published views, a delta is ingested, drained, and
visible to the next read; SIGTERM-equivalent shutdown drains and
reports the lifecycle counters.

  $ cat > session.txt <<SCRIPT
  > status
  > stats
  > route 0 1
  > delta add 0 7
  > drain
  > status
  > stats
  > quit
  > SCRIPT
  $ rspan serve --ephemeral --script session.txt g.txt
  serve: ready at seq 0 (n=60 m=322, readers=2)
  state=serving seq=0 ingested=0 queue=0 breaker=closed epoch=1 accepted=0 rejected=0 timeouts=0 stale_reads=0 failovers=0
  stats: n=60 m=322 spanner=170 advert=340 seq=0
  route 0 1: 0 20 57 17 1 (4 hops, shortest 4)
  delta accepted
  drained at seq 1
  state=serving seq=1 ingested=1 queue=0 breaker=closed epoch=1 accepted=1 rejected=0 timeouts=0 stale_reads=0 failovers=0
  stats: n=60 m=323 spanner=177 advert=354 seq=1
  serve: drained and stopped at seq 1 (accepted 1, rejected 0, timeouts 0, stale reads 0)

Served from a write-ahead log, the same session is crash-safe: stop
snapshots, and a fresh serve recovers the exact state.

  $ rspan serve --script session.txt --wal svc_store g.txt
  serve: ready at seq 0 (n=60 m=322, readers=2)
  state=serving seq=0 ingested=0 queue=0 breaker=closed epoch=1 accepted=0 rejected=0 timeouts=0 stale_reads=0 failovers=0
  stats: n=60 m=322 spanner=170 advert=340 seq=0
  route 0 1: 0 20 57 17 1 (4 hops, shortest 4)
  delta accepted
  drained at seq 1
  state=serving seq=1 ingested=1 queue=0 breaker=closed epoch=1 accepted=1 rejected=0 timeouts=0 stale_reads=0 failovers=0
  stats: n=60 m=323 spanner=177 advert=354 seq=1
  serve: drained and stopped at seq 1 (accepted 1, rejected 0, timeouts 0, stale reads 0)
  $ cat > session2.txt <<SCRIPT
  > stats
  > quit
  > SCRIPT
  $ rspan serve --script session2.txt --wal svc_store
  snapshot seq 1 (snap-00000000000000000001.rsnap)
  replayed 0 WAL records -> seq 1
  serve: ready at seq 1 (n=60 m=323, readers=2)
  stats: n=60 m=323 spanner=177 advert=354 seq=1
  serve: drained and stopped at seq 1 (accepted 0, rejected 0, timeouts 0, stale reads 0)
