End-to-end CLI workflow: generate, build, verify, inspect, route.

  $ rspan gen --family udg -n 60 --seed 3 --coords pts.xy -o g.txt
  generated: n=60 m=322

  $ rspan stats g.txt
  n=60 m=322
  degree: max=21 avg=10.73 min=1
  components=1 diameter=7

  $ rspan build --algo exact g.txt -o h.txt
  spanner: 170 of 322 edges (52.8%)

  $ rspan verify --alpha 1 --beta 0 g.txt h.txt
  OK: (1, 0)-remote-spanner

A (1,0)-remote-spanner routes exactly; a broken spanner is rejected
with concrete violations.

  $ rspan build --algo bfs-tree g.txt -o tree.txt
  spanner: 59 of 322 edges (18.3%)

  $ rspan verify --alpha 1 --beta 0 g.txt tree.txt
  violation: (1 -> 2: d_G=4, d_Hu=5)
  violation: (1 -> 4: d_G=4, d_Hu=6)
  violation: (1 -> 5: d_G=4, d_Hu=7)
  violation: (1 -> 7: d_G=5, d_Hu=7)
  violation: (1 -> 8: d_G=2, d_Hu=5)
  rspan: stretch violated
  [124]

k-connecting verification via min-cost flow, vertex- and edge-disjoint.

  $ rspan build --algo two-connecting g.txt -o h2.txt
  spanner: 253 of 322 edges (78.6%)

  $ rspan verify --alpha 2 --beta=-1 -k 2 g.txt h2.txt
  OK: (2, -1)-remote-spanner (2-connecting)

Deterministic generation: same seed, same graph.

  $ rspan gen --family gnp -n 30 --seed 9 -o a.txt
  generated: n=30 m=40
  $ rspan gen --family gnp -n 30 --seed 9 -o b.txt
  generated: n=30 m=40
  $ cmp a.txt b.txt

Families and error handling.

  $ rspan gen --family theta -n 12 -k 3 -o t.txt
  generated: n=14 m=15

  $ rspan verify --alpha 1 --beta 0 g.txt missing.txt
  rspan: missing.txt: No such file or directory
  [124]
