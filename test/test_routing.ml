(* Tests for link-state routing over advertised sub-graphs. *)
open Rs_graph
open Rs_core
open Rs_routing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let test_full_topology_routes_shortest () =
  List.iter
    (fun g ->
      let ls = Link_state.make g (Baseline.full g) in
      Graph.iter_vertices
        (fun s ->
          let d = Bfs.dist g s in
          Graph.iter_vertices
            (fun t ->
              if s <> t && d.(t) > 0 then
                match Link_state.route ls ~src:s ~dst:t with
                | None -> Alcotest.fail "must deliver"
                | Some p -> check_int "shortest" d.(t) (Path.length p))
            g)
        g)
    [ Gen.petersen (); Gen.grid 4 4; Gen.cycle 9 ]

let test_route_path_is_real () =
  let g = udg 111 50 in
  let ls = Link_state.make g (Remote_spanner.exact_distance g) in
  let d = Bfs.dist g 0 in
  Graph.iter_vertices
    (fun t ->
      if t <> 0 && d.(t) > 0 then
        match Link_state.route ls ~src:0 ~dst:t with
        | None -> Alcotest.fail "deliver"
        | Some p ->
            check "valid path in G" true (Path.is_valid g p);
            check_int "starts at src" 0 (Path.source p);
            check_int "ends at dst" t (Path.target p))
    g

let test_exact_spanner_routes_shortest () =
  (* over a (1,0)-remote-spanner greedy routing is exactly shortest *)
  List.iter
    (fun g ->
      let ls = Link_state.make g (Remote_spanner.exact_distance g) in
      let report = Link_state.measure_stretch ls in
      check_int "all delivered" report.Link_state.pairs report.Link_state.delivered;
      check "stretch 1.0" true (report.Link_state.worst_mult <= 1.0 +. 1e-9);
      check_int "no additive" 0 report.Link_state.worst_add)
    [ Gen.petersen (); Gen.grid 4 4; udg 113 40 ]

let test_low_stretch_spanner_bounded_routes () =
  let eps = 0.5 in
  List.iter
    (fun g ->
      let h = Remote_spanner.low_stretch g ~eps in
      let ls = Link_state.make g h in
      let report = Link_state.measure_stretch ls in
      check_int "all delivered" report.Link_state.pairs report.Link_state.delivered;
      (* every route obeys (1+eps) d + 1 - 2eps; the mult/add mix makes
         per-route check the strong assertion *)
      Graph.iter_vertices
        (fun s ->
          let d = Bfs.dist g s in
          Graph.iter_vertices
            (fun t ->
              if s <> t && d.(t) > 1 then
                match Link_state.route ls ~src:s ~dst:t with
                | None -> Alcotest.fail "deliver"
                | Some p ->
                    let len = float_of_int (Path.length p) in
                    let bound =
                      ((1.0 +. eps) *. float_of_int d.(t)) +. 1.0 -. (2.0 *. eps)
                    in
                    check "route bound" true (len <= bound +. 1e-9))
            g)
        g)
    [ Gen.grid 4 4; udg 115 35; Gen.cycle 11 ]

let test_bfs_tree_routing_delivers () =
  (* even a tree delivers (possibly with large stretch) *)
  let g = Gen.cycle 10 in
  let ls = Link_state.make g (Baseline.bfs_tree g ~root:0) in
  let report = Link_state.measure_stretch ls in
  check_int "all delivered" report.Link_state.pairs report.Link_state.delivered;
  check "stretch can exceed 1" true (report.Link_state.worst_mult >= 1.0)

let test_next_hop_none_cases () =
  let g = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  let ls = Link_state.make g (Baseline.full g) in
  check "unreachable" true (Link_state.next_hop ls ~src:0 ~dst:3 = None);
  check "self" true (Link_state.next_hop ls ~src:0 ~dst:0 = None)

let test_route_self () =
  let g = Gen.cycle 5 in
  let ls = Link_state.make g (Baseline.full g) in
  Alcotest.(check (option (list int))) "self" (Some [ 2 ]) (Link_state.route ls ~src:2 ~dst:2)

let test_advertisement_overhead () =
  let g = udg 117 100 in
  let full = Link_state.make g (Baseline.full g) in
  let sparse = Link_state.make g (Remote_spanner.exact_distance g) in
  check_int "full = 2m" (2 * Graph.m g) (Link_state.advertisement_size full);
  check "spanner cheaper" true
    (Link_state.advertisement_size sparse < Link_state.advertisement_size full)

let test_measure_stretch_sampled_pairs () =
  let g = Gen.grid 3 4 in
  let ls = Link_state.make g (Baseline.full g) in
  let report = Link_state.measure_stretch ~pairs:[ (0, 11); (11, 0) ] ls in
  check_int "two pairs" 2 report.Link_state.pairs;
  check_int "delivered" 2 report.Link_state.delivered

let test_wrong_host_rejected () =
  let g = Gen.cycle 5 and g2 = Gen.cycle 6 in
  let h = Edge_set.create g2 in
  check "host mismatch" true
    (match Link_state.make g h with _ -> false | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* Multipath *)

let test_multipath_routes_disjoint () =
  let g = udg 119 40 in
  let h = Remote_spanner.two_connecting g in
  let mp = Multipath.make g h in
  let found = ref 0 in
  Graph.iter_vertices
    (fun s ->
      Graph.iter_vertices
        (fun t ->
          if s < t && not (Graph.mem_edge g s t) then
            match Multipath.disjoint_routes mp ~k:2 ~src:s ~dst:t with
            | None -> ()
            | Some routes ->
                incr found;
                check "two routes" true (List.length routes = 2);
                List.iter (fun p -> check "valid" true (Path.is_valid g p)) routes;
                check "disjoint" true (Path.pairwise_disjoint routes))
        g)
    g;
  check "some pairs found" true (!found > 0)

let test_multipath_bounded_by_2conn_stretch () =
  (* total length of the two routes <= 2 d^2_G - 2 over the spanner *)
  let g = Gen.theta 2 4 in
  let h = Remote_spanner.two_connecting g in
  let mp = Multipath.make g h in
  match Multipath.disjoint_routes mp ~k:2 ~src:0 ~dst:1 with
  | None -> Alcotest.fail "routes exist"
  | Some routes ->
      let total = List.fold_left (fun a p -> a + Path.length p) 0 routes in
      let d2 = Option.get (Disjoint_paths.dk g ~k:2 0 1) in
      check "bounded" true (total <= (2 * d2) - 2)

let test_multipath_failure_experiment () =
  let g = udg 121 60 in
  let h = Remote_spanner.two_connecting g in
  let mp = Multipath.make g h in
  let r = Multipath.failure_experiment (Rand.create 5) mp ~trials:30 in
  check "ran trials" true (r.Multipath.trials > 0);
  (* disjointness makes survival certain *)
  check_int "backups always survive" r.Multipath.primary_hit r.Multipath.backup_survived;
  check "detour non-negative" true (r.Multipath.total_detour >= 0)

let test_multipath_none_when_not_2connected () =
  let g = Gen.path_graph 5 in
  let mp = Multipath.make g (Baseline.full g) in
  check "no 2 routes on a path" true (Multipath.disjoint_routes mp ~k:2 ~src:0 ~dst:4 = None)

let () =
  Alcotest.run "routing"
    [
      ( "routes",
        [
          Alcotest.test_case "full topology shortest" `Quick test_full_topology_routes_shortest;
          Alcotest.test_case "paths are real" `Quick test_route_path_is_real;
          Alcotest.test_case "(1,0)-RS shortest routes" `Quick test_exact_spanner_routes_shortest;
          Alcotest.test_case "low-stretch bounded routes" `Quick test_low_stretch_spanner_bounded_routes;
          Alcotest.test_case "tree delivers" `Quick test_bfs_tree_routing_delivers;
          Alcotest.test_case "next_hop none" `Quick test_next_hop_none_cases;
          Alcotest.test_case "route to self" `Quick test_route_self;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "advertisement size" `Quick test_advertisement_overhead;
          Alcotest.test_case "sampled pairs" `Quick test_measure_stretch_sampled_pairs;
          Alcotest.test_case "host mismatch" `Quick test_wrong_host_rejected;
        ] );
      ( "multipath",
        [
          Alcotest.test_case "disjoint routes" `Quick test_multipath_routes_disjoint;
          Alcotest.test_case "2-conn stretch bound" `Quick test_multipath_bounded_by_2conn_stretch;
          Alcotest.test_case "failure experiment" `Quick test_multipath_failure_experiment;
          Alcotest.test_case "not 2-connected" `Quick test_multipath_none_when_not_2connected;
        ] );
    ]
