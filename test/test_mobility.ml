(* Tests for the random waypoint model and routing-under-churn
   evaluation. *)
open Rs_graph
module Waypoint = Rs_mobility.Waypoint
module Churn_eval = Rs_mobility.Churn_eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let model seed n =
  Waypoint.create (Rand.create seed) ~n ~side:5.0 ~speed_min:0.05 ~speed_max:0.2 ~pause:2

let test_waypoint_bounds () =
  let m = model 171 40 in
  for _ = 1 to 200 do
    Waypoint.step m;
    Array.iter
      (fun p ->
        check "x in box" true (p.(0) >= 0.0 && p.(0) <= 5.0);
        check "y in box" true (p.(1) >= 0.0 && p.(1) <= 5.0))
      (Waypoint.positions m)
  done

let test_waypoint_moves_bounded_speed () =
  let m = model 173 30 in
  for _ = 1 to 50 do
    let before = Waypoint.positions m in
    Waypoint.step m;
    let after = Waypoint.positions m in
    Array.iteri
      (fun i p ->
        let d = Rs_geometry.Point.l2 p after.(i) in
        check "speed cap" true (d <= 0.2 +. 1e-9))
      before
  done

let test_waypoint_deterministic () =
  let run seed =
    let m = model seed 20 in
    for _ = 1 to 30 do
      Waypoint.step m
    done;
    Waypoint.positions m
  in
  check "same seed same run" true (run 7 = run 7);
  check "different seed differs" true (run 7 <> run 8)

let test_waypoint_actually_moves () =
  let m = model 175 20 in
  let before = Waypoint.positions m in
  for _ = 1 to 30 do
    Waypoint.step m
  done;
  let after = Waypoint.positions m in
  let moved = ref 0 in
  Array.iteri
    (fun i p -> if Rs_geometry.Point.l2 p after.(i) > 0.1 then incr moved)
    before;
  check "most nodes moved" true (!moved > 10)

let test_waypoint_graph_changes () =
  let m = model 177 50 in
  let g0 = Waypoint.graph m in
  for _ = 1 to 60 do
    Waypoint.step m
  done;
  let g1 = Waypoint.graph m in
  check "topology churned" false (Graph.equal g0 g1)

let test_waypoint_rejects_bad_params () =
  check "bad speeds" true
    (match
       Waypoint.create (Rand.create 1) ~n:3 ~side:1.0 ~speed_min:0.5 ~speed_max:0.1 ~pause:0
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* Churn_eval *)

let strategies =
  [
    Churn_eval.strategy "full" Rs_core.Baseline.full;
    Churn_eval.strategy ~spec:(Rs_dynamic.Repair.Gdy_k { k = 1 }) "(1,0)-RS"
      Rs_core.Remote_spanner.exact_distance;
    Churn_eval.strategy ~spec:(Rs_dynamic.Repair.Mis_k { k = 2 }) "2conn"
      Rs_core.Remote_spanner.two_connecting;
  ]

let test_churn_reports_shape () =
  let m = model 179 40 in
  let reports =
    Churn_eval.run (Rand.create 181) ~model:m ~strategies ~steps:20 ~refresh:5
      ~pairs_per_step:5
  in
  check_int "one report per strategy" 3 (List.length reports);
  List.iter
    (fun r ->
      check "delivered <= attempted" true (r.Churn_eval.delivered <= r.Churn_eval.pairs_attempted);
      check "attempted > 0" true (r.Churn_eval.pairs_attempted > 0);
      check "stretch >= 1 when delivered" true
        (r.Churn_eval.delivered = 0 || r.Churn_eval.mean_stretch >= 1.0 -. 1e-9);
      check "advertised positive" true (r.Churn_eval.mean_advertised > 0.0))
    reports;
  (* the comparison is paired: same attempted count everywhere *)
  match reports with
  | a :: rest ->
      List.iter
        (fun r -> check_int "paired" a.Churn_eval.pairs_attempted r.Churn_eval.pairs_attempted)
        rest
  | [] -> ()

(* ~incremental:true maintains spanners through Repair.apply and gates
   every refresh against the from-scratch build: zero mismatches, and
   the routing results are identical to the full-rebuild run. *)
let test_churn_incremental_equivalence () =
  let run incremental =
    let m = model 191 40 in
    Churn_eval.run ~incremental (Rand.create 193) ~model:m ~strategies ~steps:20
      ~refresh:5 ~pairs_per_step:5
  in
  let inc = run true in
  List.iter
    (fun r ->
      check_int (r.Churn_eval.name ^ " no repair mismatches") 0
        r.Churn_eval.repair_mismatches)
    inc;
  check "incremental run = full-rebuild run" true (inc = run false)

let test_static_nodes_deliver_everything () =
  (* zero speed: no staleness, full delivery at stretch 1 for full and
     (1,0)-RS *)
  let m =
    Waypoint.create (Rand.create 183) ~n:40 ~side:3.0 ~speed_min:0.0 ~speed_max:0.0 ~pause:0
  in
  let reports =
    Churn_eval.run (Rand.create 185) ~model:m ~strategies ~steps:10 ~refresh:3
      ~pairs_per_step:5
  in
  List.iter
    (fun r ->
      check_int (r.Churn_eval.name ^ " all delivered") r.Churn_eval.pairs_attempted
        r.Churn_eval.delivered;
      check_int (r.Churn_eval.name ^ " no flips") 0 r.Churn_eval.link_changes;
      if r.Churn_eval.name <> "2conn" then
        check (r.Churn_eval.name ^ " stretch 1") true
          (Float.abs (r.Churn_eval.mean_stretch -. 1.0) < 1e-9))
    reports

let test_spanner_advertises_less () =
  let m = model 187 50 in
  let reports =
    Churn_eval.run (Rand.create 189) ~model:m ~strategies ~steps:12 ~refresh:4
      ~pairs_per_step:4
  in
  let find name = List.find (fun r -> r.Churn_eval.name = name) reports in
  check "spanner lighter than full" true
    ((find "(1,0)-RS").Churn_eval.mean_advertised < (find "full").Churn_eval.mean_advertised)

let test_churn_deterministic () =
  (* satellite: same Rand seed (and same freshly-built model) must give
     identical report lists, with and without a fault plan *)
  let run ?faults rand_seed =
    let m = model 191 30 in
    Churn_eval.run ?faults (Rand.create rand_seed) ~model:m ~strategies ~steps:15
      ~refresh:5 ~pairs_per_step:4
  in
  check "same seed, same reports" true (run 7 = run 7);
  check "different seed differs" true (run 7 <> run 8);
  let faults () = Rs_distributed.Fault.make ~drop:0.3 ~seed:5 () in
  check "faulty run reproducible" true
    (run ~faults:(faults ()) 7 = run ~faults:(faults ()) 7);
  (* an engaged plan must actually change the outcome *)
  check "faults change the outcome" true (run ~faults:(faults ()) 7 <> run 7);
  (* a plan with nothing engaged draws nothing: reports identical to
     the fault-free evaluator *)
  check "empty plan = no plan" true
    (run ~faults:(Rs_distributed.Fault.make ~seed:5 ()) 7 = run 7)

let test_churn_total_loss () =
  let m = model 193 30 in
  let reports =
    Churn_eval.run
      ~faults:(Rs_distributed.Fault.make ~drop:1.0 ~seed:3 ())
      (Rand.create 195) ~model:m ~strategies ~steps:10 ~refresh:5 ~pairs_per_step:4
  in
  List.iter
    (fun r ->
      check_int (r.Churn_eval.name ^ " nothing delivered") 0 r.Churn_eval.delivered;
      check "pairs were still attempted" true (r.Churn_eval.pairs_attempted > 0))
    reports

let test_churn_loss_degrades () =
  let run ?faults () =
    let m = model 197 40 in
    Churn_eval.run ?faults (Rand.create 199) ~model:m
      ~strategies:[ Churn_eval.strategy "full" Rs_core.Baseline.full ]
      ~steps:15 ~refresh:5 ~pairs_per_step:5
  in
  let clean = List.hd (run ()) in
  let lossy =
    List.hd (run ~faults:(Rs_distributed.Fault.make ~drop:0.3 ~seed:7 ()) ())
  in
  check_int "paired attempt counts" clean.Churn_eval.pairs_attempted
    lossy.Churn_eval.pairs_attempted;
  check "loss strictly reduces delivery" true
    (lossy.Churn_eval.delivered < clean.Churn_eval.delivered)

let () =
  Alcotest.run "mobility"
    [
      ( "waypoint",
        [
          Alcotest.test_case "stays in the box" `Quick test_waypoint_bounds;
          Alcotest.test_case "speed bounded" `Quick test_waypoint_moves_bounded_speed;
          Alcotest.test_case "deterministic" `Quick test_waypoint_deterministic;
          Alcotest.test_case "moves" `Quick test_waypoint_actually_moves;
          Alcotest.test_case "topology churns" `Quick test_waypoint_graph_changes;
          Alcotest.test_case "rejects bad params" `Quick test_waypoint_rejects_bad_params;
        ] );
      ( "churn_eval",
        [
          Alcotest.test_case "report shape" `Quick test_churn_reports_shape;
          Alcotest.test_case "incremental = full rebuild" `Quick
            test_churn_incremental_equivalence;
          Alcotest.test_case "static = perfect" `Quick test_static_nodes_deliver_everything;
          Alcotest.test_case "spanner lighter" `Quick test_spanner_advertises_less;
          Alcotest.test_case "deterministic" `Quick test_churn_deterministic;
          Alcotest.test_case "total loss delivers nothing" `Quick test_churn_total_loss;
          Alcotest.test_case "loss degrades delivery" `Quick test_churn_loss_degrades;
        ] );
    ]
