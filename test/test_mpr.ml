(* Tests for multipoint relays and MPR flooding. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let graphs =
  [
    ("petersen", Gen.petersen ());
    ("grid45", Gen.grid 4 5);
    ("udg", udg 91 70);
    ("er", Gen.erdos_renyi (Rand.create 93) 40 0.15);
    ("cycle9", Gen.cycle 9);
  ]

let test_select_valid () =
  List.iter
    (fun (name, g) ->
      Graph.iter_vertices
        (fun u ->
          check (Printf.sprintf "%s u=%d" name u) true
            (Mpr.is_valid_mpr g u (Mpr.select g u)))
        g)
    graphs

let test_select_olsr_valid () =
  List.iter
    (fun (name, g) ->
      Graph.iter_vertices
        (fun u ->
          check (Printf.sprintf "%s u=%d olsr" name u) true
            (Mpr.is_valid_mpr g u (Mpr.select_olsr g u)))
        g)
    graphs

let test_select_subset_of_neighbors () =
  List.iter
    (fun (name, g) ->
      Graph.iter_vertices
        (fun u ->
          List.iter
            (fun x -> check (name ^ " relay is neighbor") true (Graph.mem_edge g u x))
            (Mpr.select g u))
        g)
    graphs

let test_select_star_leaf () =
  let g = Gen.star 6 in
  (* from a leaf, the center must be the single relay *)
  Alcotest.(check (list int)) "center" [ 0 ] (Mpr.select g 1);
  (* the center has no 2-hop nodes: no relays *)
  Alcotest.(check (list int)) "none" [] (Mpr.select g 0)

let test_k_coverage_counts () =
  let g = Gen.complete_bipartite 2 4 in
  (* u=0, the only 2-hop node is 1, coverable by all 4 right nodes *)
  check_int "k=2" 2 (List.length (Mpr.select_k_coverage g ~k:2 0));
  check_int "k=3" 3 (List.length (Mpr.select_k_coverage g ~k:3 0));
  check_int "k=10 capped" 4 (List.length (Mpr.select_k_coverage g ~k:10 0))

let test_is_valid_mpr_negative () =
  let g = Gen.cycle 6 in
  check "empty relays invalid" false (Mpr.is_valid_mpr g 0 []);
  check "one side missing" false (Mpr.is_valid_mpr g 0 [ 1 ])

let test_relay_union_is_1_0_remote_spanner () =
  (* the paper: MPR unions provide shortest-path routes *)
  List.iter
    (fun (name, g) ->
      let h = Mpr.relay_union g Mpr.select in
      check (name ^ " union RS") true (Verify.is_remote_spanner g h ~alpha:1.0 ~beta:0.0);
      let h2 = Mpr.relay_union g Mpr.select_olsr in
      check (name ^ " olsr union RS") true (Verify.is_remote_spanner g h2 ~alpha:1.0 ~beta:0.0))
    graphs

let test_relay_union_equals_exact_distance () =
  (* Mpr.select = leaves of gdy_k k=1, so the unions coincide *)
  let g = udg 95 50 in
  check "same edge set" true
    (Edge_set.equal (Mpr.relay_union g Mpr.select) (Remote_spanner.exact_distance g))

let test_flood_reaches_component () =
  List.iter
    (fun (name, g) ->
      let relays u = Mpr.select g u in
      Graph.iter_vertices
        (fun src ->
          let d = Bfs.dist g src in
          let res = Mpr.flood g ~relays ~src in
          Graph.iter_vertices
            (fun v ->
              check
                (Printf.sprintf "%s src=%d v=%d" name src v)
                (d.(v) >= 0)
                res.Mpr.reached.(v))
            g)
        g)
    graphs

let test_flood_cheaper_than_blind () =
  let g = udg 97 120 in
  let relays u = Mpr.select g u in
  let total_mpr = ref 0 and total_blind = ref 0 in
  Graph.iter_vertices
    (fun src ->
      total_mpr := !total_mpr + (Mpr.flood g ~relays ~src).Mpr.retransmissions;
      total_blind := !total_blind + (Mpr.blind_flood g ~src).Mpr.retransmissions)
    g;
  check "fewer retransmissions" true (!total_mpr < !total_blind)

let test_flood_from_isolated () =
  let g = Gen.empty 3 in
  let res = Mpr.flood g ~relays:(fun _ -> []) ~src:0 in
  check "only source" true res.Mpr.reached.(0);
  check "others not" false res.Mpr.reached.(1);
  check_int "no retransmissions" 0 res.Mpr.retransmissions

let test_k_coverage_union_is_k_connecting () =
  (* the claim "never proved" before Prop 5, checked by flow (E10) *)
  let g = Gen.erdos_renyi (Rand.create 99) 16 0.4 in
  let h = Mpr.relay_union g (fun g u -> Mpr.select_k_coverage g ~k:2 u) in
  check "k-coverage union 2-connects" true
    (Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k:2)

(* ---------------------------------------------------------------- *)
(* lossy flooding: the k-coverage motivation *)

let test_lossy_zero_loss_equals_reliable () =
  let g = udg 201 80 in
  let relays u = Mpr.select g u in
  Graph.iter_vertices
    (fun src ->
      if src mod 7 = 0 then begin
        let lossless = Mpr.flood_lossy (Rand.create 5) g ~relays ~src ~loss:0.0 in
        let reliable = Mpr.flood g ~relays ~src in
        Alcotest.(check (array bool)) "same coverage" reliable.Mpr.reached lossless.Mpr.reached
      end)
    g

let test_lossy_k_coverage_more_reliable () =
  let g = udg 203 100 in
  let loss = 0.4 in
  let coverage relays seed =
    let total = ref 0 and reached = ref 0 in
    Graph.iter_vertices
      (fun src ->
        if src mod 5 = 0 then begin
          let r = Mpr.flood_lossy (Rand.create seed) g ~relays ~src ~loss in
          Array.iter
            (fun b ->
              incr total;
              if b then incr reached)
            r.Mpr.reached
        end)
      g;
    float_of_int !reached /. float_of_int !total
  in
  let k1 = coverage (fun u -> Mpr.select g u) 11 in
  let k3 = coverage (fun u -> Mpr.select_k_coverage g ~k:3 u) 11 in
  check "k=3 covers at least as well" true (k3 >= k1);
  check "k=3 much better at heavy loss" true (k3 -. k1 > 0.05)

let test_lossy_rejects_bad_loss () =
  let g = Gen.cycle 5 in
  check "loss 1 rejected" true
    (match Mpr.flood_lossy (Rand.create 1) g ~relays:(fun _ -> []) ~src:0 ~loss:1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "mpr"
    [
      ( "selection",
        [
          Alcotest.test_case "greedy valid" `Quick test_select_valid;
          Alcotest.test_case "olsr valid" `Quick test_select_olsr_valid;
          Alcotest.test_case "relays are neighbors" `Quick test_select_subset_of_neighbors;
          Alcotest.test_case "star cases" `Quick test_select_star_leaf;
          Alcotest.test_case "k-coverage counts" `Quick test_k_coverage_counts;
          Alcotest.test_case "validity negative" `Quick test_is_valid_mpr_negative;
        ] );
      ( "union",
        [
          Alcotest.test_case "union is (1,0)-RS" `Quick test_relay_union_is_1_0_remote_spanner;
          Alcotest.test_case "union = exact_distance" `Quick test_relay_union_equals_exact_distance;
          Alcotest.test_case "k-coverage 2-connects (E10)" `Slow test_k_coverage_union_is_k_connecting;
        ] );
      ( "flooding",
        [
          Alcotest.test_case "reaches the component" `Quick test_flood_reaches_component;
          Alcotest.test_case "cheaper than blind" `Quick test_flood_cheaper_than_blind;
          Alcotest.test_case "isolated source" `Quick test_flood_from_isolated;
          Alcotest.test_case "lossy: zero loss = reliable" `Quick test_lossy_zero_loss_equals_reliable;
          Alcotest.test_case "lossy: k-coverage helps" `Quick test_lossy_k_coverage_more_reliable;
          Alcotest.test_case "lossy: bad loss rejected" `Quick test_lossy_rejects_bad_loss;
        ] );
    ]
