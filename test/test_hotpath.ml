(* Equivalence and allocation tests for the hot-path overhaul: the
   CSR / scratch / lazy-greedy implementations must be byte-identical
   to the straightforward pre-overhaul algorithms (re-implemented here
   as references), and the scratch paths must not re-allocate per-call
   adjacency. Determinism is load-bearing: the paper's tie-break
   arguments and the distributed-vs-centralized tests both rely on it. *)
open Rs_graph
open Rs_core
module Setcover = Rs_setcover.Setcover
module Obs = Rs_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let gnp seed n p = Gen.erdos_renyi (Rand.create seed) n p

(* one UDG and one Gnp per seed: the two families exercise different
   degree profiles (doubling vs. concentrated) *)
let instances =
  lazy
    (List.concat_map
       (fun seed -> [ udg (100 + seed) 120; gnp (200 + seed) 80 0.08 ])
       [ 1; 2; 3 ])

(* ---------- references: the pre-overhaul implementations ---------- *)

(* Textbook queue BFS for distances, then the canonical parent rule
   applied as an independent post-pass: the parent of [v] is its
   smallest-id neighbor at distance d(v) - 1 — a property of the graph
   alone, which the incremental min-tracking in [Bfs.Scratch] must
   reproduce exactly. *)
let ref_bfs ?radius g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) and parent = Array.make n (-1) in
  dist.(src) <- 0;
  parent.(src) <- src;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let expand = match radius with None -> true | Some r -> dist.(u) < r in
    if expand then
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            parent.(v) <- u;
            Queue.push v q
          end)
        (Graph.neighbors g u)
  done;
  for v = 0 to n - 1 do
    if dist.(v) > 0 then
      Array.iter
        (fun w -> if dist.(w) = dist.(v) - 1 && w < parent.(v) then parent.(v) <- w)
        (Graph.neighbors g v)
  done;
  (dist, parent)

(* Eager greedy k-multicover: full rescan of all sets per round, max
   residual coverage, smallest index on ties (pre-overhaul
   Setcover.greedy_with_demand, verbatim semantics). *)
let ref_greedy_multicover inst ~k =
  let demand = Array.map (fun c -> min k c) (Setcover.demand_cap inst) in
  let nsets = Array.length inst.Setcover.sets in
  let used = Array.make nsets false in
  let residual s =
    if used.(s) then -1
    else begin
      let seen = Hashtbl.create 8 in
      let count = ref 0 in
      Array.iter
        (fun e ->
          if demand.(e) > 0 && not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            incr count
          end)
        inst.Setcover.sets.(s);
      !count
    end
  in
  let total = ref (Array.fold_left ( + ) 0 demand) in
  let picks = ref [] in
  while !total > 0 do
    let best = ref (-1) and best_cov = ref 0 in
    for s = 0 to nsets - 1 do
      let c = residual s in
      if c > !best_cov then begin
        best := s;
        best_cov := c
      end
    done;
    if !best < 0 then total := 0
    else begin
      used.(!best) <- true;
      picks := !best :: !picks;
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if demand.(e) > 0 && not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            demand.(e) <- demand.(e) - 1;
            decr total
          end)
        inst.Setcover.sets.(!best)
    end
  done;
  List.rev !picks

(* Pre-overhaul DomTreeGdy: double full BFS, per-layer eager cover. *)
let ref_gdy g ~r ~beta u =
  let dist, parent = ref_bfs ~radius:(r + beta) g u in
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  for r' = 2 to r do
    let sphere = ref [] and annulus = ref [] in
    Graph.iter_vertices
      (fun v ->
        if dist.(v) = r' then sphere := v :: !sphere;
        if dist.(v) >= r' - 1 && dist.(v) <= r' - 1 + beta then annulus := v :: !annulus)
      g;
    let sphere = Array.of_list (List.rev !sphere) in
    let annulus = Array.of_list (List.rev !annulus) in
    let elt_of = Hashtbl.create 16 in
    Array.iteri (fun i v -> Hashtbl.replace elt_of v i) sphere;
    let ball_of x =
      let acc = ref [] in
      (match Hashtbl.find_opt elt_of x with Some i -> acc := [ i ] | None -> ());
      Array.iter
        (fun w ->
          match Hashtbl.find_opt elt_of w with Some i -> acc := i :: !acc | None -> ())
        (Graph.neighbors g x);
      Array.of_list !acc
    in
    let sets = Array.map ball_of annulus in
    let alive = Array.make (Array.length sphere) true in
    let remaining = ref (Array.length sphere) in
    let used = Array.make (Array.length annulus) false in
    let coverage s =
      Array.fold_left (fun acc e -> if alive.(e) then acc + 1 else acc) 0 sets.(s)
    in
    while !remaining > 0 do
      let best = ref (-1) and best_cov = ref 0 in
      Array.iteri
        (fun s _ ->
          if not used.(s) then begin
            let c = coverage s in
            if c > !best_cov then begin
              best := s;
              best_cov := c
            end
          end)
        annulus;
      assert (!best >= 0);
      used.(!best) <- true;
      Tree.graft_parents t parent annulus.(!best);
      Array.iter
        (fun e ->
          if alive.(e) then begin
            alive.(e) <- false;
            decr remaining
          end)
        sets.(!best)
    done
  done;
  t

(* Pre-overhaul DomTreeMIS: increasing (distance, id) over B(u,r)\B(u,1). *)
let ref_mis g ~r u =
  let dist, parent = ref_bfs ~radius:r g u in
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let b = ref [] in
  Graph.iter_vertices (fun v -> if dist.(v) >= 2 && dist.(v) <= r then b := v :: !b) g;
  let order = Array.of_list !b in
  Array.sort (fun a b -> compare (dist.(a), a) (dist.(b), b)) order;
  let alive = Array.make (Graph.n g) false in
  Array.iter (fun v -> alive.(v) <- true) order;
  Array.iter
    (fun x ->
      if alive.(x) then begin
        Tree.graft_parents t parent x;
        alive.(x) <- false;
        Array.iter (fun w -> alive.(w) <- false) (Graph.neighbors g x)
      end)
    order;
  t

(* Pre-overhaul DomTreeGdy_{2,0,k}: eager max-coverage relay picking. *)
let ref_gdy_k g ~k u =
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let dist, _ = ref_bfs ~radius:2 g u in
  let common_in_m in_m v =
    Array.to_list (Graph.neighbors g v)
    |> List.filter (fun w -> Graph.mem_edge g u w)
    |> fun common ->
    ( List.for_all (fun w -> in_m.(w)) common,
      List.length (List.filter (fun w -> in_m.(w)) common) )
  in
  let in_m = Array.make (Graph.n g) false in
  let alive = Hashtbl.create 64 in
  Graph.iter_vertices (fun v -> if dist.(v) = 2 then Hashtbl.replace alive v ()) g;
  let covered_enough v =
    let all, cnt = common_in_m in_m v in
    all || cnt >= k
  in
  while Hashtbl.length alive > 0 do
    let best = ref (-1) and best_cov = ref 0 in
    Array.iter
      (fun x ->
        if not in_m.(x) then begin
          let c =
            Array.fold_left
              (fun acc w -> if Hashtbl.mem alive w then acc + 1 else acc)
              0 (Graph.neighbors g x)
          in
          if c > !best_cov then begin
            best := x;
            best_cov := c
          end
        end)
      (Graph.neighbors g u);
    assert (!best >= 0);
    in_m.(!best) <- true;
    Tree.add_edge t ~parent:u ~child:!best;
    Hashtbl.iter
      (fun v () -> if covered_enough v then Hashtbl.remove alive v)
      (Hashtbl.copy alive)
  done;
  t

let tree_equal t1 t2 =
  Tree.root t1 = Tree.root t2
  && List.sort compare (Tree.edges t1) = List.sort compare (Tree.edges t2)
  && List.for_all (fun v -> Tree.depth t1 v = Tree.depth t2 v) (Tree.vertices t1)

(* ---------- CSR core ---------- *)

let test_csr_matches_neighbors () =
  List.iter
    (fun g ->
      let off, nbr = Graph.csr g in
      check_int "off length" (Graph.n g + 1) (Array.length off);
      check_int "nbr length" (2 * Graph.m g) (Array.length nbr);
      Graph.iter_vertices
        (fun u ->
          let a = Graph.neighbors g u in
          check_int "degree" (Array.length a) (Graph.degree g u);
          check "csr slice" true (Array.sub nbr off.(u) (Graph.degree g u) = a);
          let via_iter = ref [] in
          Graph.iter_neighbors g u (fun v -> via_iter := v :: !via_iter);
          check "iter_neighbors" true (Array.of_list (List.rev !via_iter) = a);
          check_int "fold_neighbors" (Array.length a)
            (Graph.fold_neighbors g u (fun acc _ -> acc + 1) 0))
        g)
    (Lazy.force instances)

let test_mem_edge_and_edge_id () =
  List.iter
    (fun g ->
      let n = Graph.n g in
      (* membership agrees with a linear scan on a deterministic pair grid *)
      for u = 0 to min (n - 1) 40 do
        for v = 0 to min (n - 1) 40 do
          let slow = u <> v && Array.exists (( = ) v) (Graph.neighbors g u) in
          check "mem_edge" slow (Graph.mem_edge g u v)
        done
      done;
      Array.iteri
        (fun i (a, b) ->
          check_int "edge_id fwd" i (Graph.edge_id g a b);
          check_int "edge_id bwd" i (Graph.edge_id g b a);
          check "edge round-trip" true (Graph.edge g i = (a, b)))
        (Graph.edges g))
    (Lazy.force instances)

(* ---------- BFS scratch ---------- *)

let test_scratch_matches_reference () =
  let scratch = Bfs.Scratch.create () in
  List.iter
    (fun g ->
      List.iter
        (fun radius ->
          let src = 0 in
          let rdist, rparent = ref_bfs ?radius g src in
          check "dist" true
            ((match radius with
             | None -> Bfs.dist g src
             | Some r -> Bfs.dist ~radius:r g src)
            = rdist);
          check "parents" true
            ((match radius with
             | None -> Bfs.parents g src
             | Some r -> Bfs.parents ~radius:r g src)
            = rparent);
          Bfs.Scratch.run ?radius scratch g src;
          Graph.iter_vertices
            (fun v ->
              check_int "scratch dist" rdist.(v) (Bfs.Scratch.dist scratch v);
              check_int "scratch parent" rparent.(v) (Bfs.Scratch.parent scratch v))
            g)
        [ None; Some 2; Some 3 ])
    (Lazy.force instances)

let test_dist_pair_radius () =
  List.iter
    (fun g ->
      let rdist, _ = ref_bfs g 0 in
      Graph.iter_vertices
        (fun v ->
          check_int "pair full" rdist.(v) (Bfs.dist_pair g 0 v);
          let expect2 = if rdist.(v) >= 0 && rdist.(v) <= 2 then rdist.(v) else -1 in
          check_int "pair radius 2" expect2 (Bfs.dist_pair ~radius:2 g 0 v))
        g)
    (Lazy.force instances)

let test_dist_pair_records_trivial_run () =
  let g = gnp 9 30 0.1 in
  let runs = Obs.counter "bfs/runs" in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      let before = Obs.counter_value runs in
      check_int "u = v is 0" 0 (Bfs.dist_pair g 5 5);
      check_int "still counted as a run" (before + 1) (Obs.counter_value runs))

(* Reusing a warm scratch must not allocate: no per-call adjacency, no
   n-length re-initialization (Gc.allocated_bytes counts minor + direct
   major allocations). *)
let alloc_bytes f =
  ignore (Sys.opaque_identity (f ()));
  let b0 = Gc.allocated_bytes () in
  ignore (Sys.opaque_identity (f ()));
  Gc.allocated_bytes () -. b0

let test_scratch_run_allocation_free () =
  let g = udg 7 400 in
  let s = Bfs.Scratch.create () in
  let bytes = alloc_bytes (fun () -> Bfs.Scratch.run s g 0) in
  check "scratch run allocates nothing" true (bytes < 512.0)

let test_dist_allocates_only_result () =
  let g = udg 7 400 in
  let n = Graph.n g in
  (* result array (n words) + slack; the pre-overhaul implementation
     also rebuilt an n-length adjacency and a fresh queue (~3n words) *)
  let budget = float_of_int ((16 * n) + 1024) in
  check "dist" true (alloc_bytes (fun () -> Bfs.dist g 0) < budget);
  check "parents" true (alloc_bytes (fun () -> Bfs.parents g 0) < budget)

(* ---------- lazy greedy vs eager reference ---------- *)

let test_lazy_greedy_matches_eager () =
  let rand = Rand.create 77 in
  for _trial = 1 to 60 do
    let universe = 1 + Rand.int rand 12 in
    let nsets = 1 + Rand.int rand 10 in
    let sets =
      Array.init nsets (fun _ ->
          Array.init (Rand.int rand 6) (fun _ -> Rand.int rand universe))
    in
    let inst = { Setcover.universe; sets } in
    List.iter
      (fun k ->
        check "picks identical" true
          (Setcover.greedy_multicover inst ~k = ref_greedy_multicover inst ~k))
      [ 1; 2; 3 ]
  done

(* ---------- tree constructions vs references ---------- *)

let roots g = [ 0; Graph.n g / 2; Graph.n g - 1 ]

let test_gdy_matches_reference () =
  let scratch = Bfs.Scratch.create () in
  List.iter
    (fun g ->
      List.iter
        (fun (r, beta) ->
          List.iter
            (fun u ->
              check "gdy tree" true
                (tree_equal (Dom_tree.gdy ~scratch g ~r ~beta u) (ref_gdy g ~r ~beta u)))
            (roots g))
        [ (2, 0); (2, 1); (3, 1) ])
    (Lazy.force instances)

let test_mis_matches_reference () =
  let scratch = Bfs.Scratch.create () in
  List.iter
    (fun g ->
      List.iter
        (fun u ->
          check "mis tree" true (tree_equal (Dom_tree.mis ~scratch g ~r:3 u) (ref_mis g ~r:3 u)))
        (roots g))
    (Lazy.force instances)

let test_gdy_k_matches_reference () =
  let scratch = Bfs.Scratch.create () in
  List.iter
    (fun g ->
      List.iter
        (fun k ->
          List.iter
            (fun u ->
              check "gdy_k tree" true
                (tree_equal (Dom_tree_k.gdy_k ~scratch g ~k u) (ref_gdy_k g ~k u)))
            (roots g))
        [ 1; 2 ])
    (Lazy.force instances)

(* Shared scratch across roots must not leak state between trees: the
   whole spanner is identical to fresh-scratch-per-root. *)
let test_scratch_reuse_identical_spanners () =
  List.iter
    (fun g ->
      let shared = Bfs.Scratch.create () in
      let with_shared = Edge_set.create g in
      let with_fresh = Edge_set.create g in
      Graph.iter_vertices
        (fun u -> Tree.add_to with_shared (Dom_tree.gdy ~scratch:shared g ~r:3 ~beta:1 u))
        g;
      Graph.iter_vertices
        (fun u -> Tree.add_to with_fresh (Dom_tree.gdy g ~r:3 ~beta:1 u))
        g;
      check "spanner identical" true (Edge_set.equal with_shared with_fresh))
    (Lazy.force instances)

let () =
  Alcotest.run "hotpath"
    [
      ( "csr",
        [
          Alcotest.test_case "neighbors agree" `Quick test_csr_matches_neighbors;
          Alcotest.test_case "mem_edge and edge_id" `Quick test_mem_edge_and_edge_id;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "matches reference BFS" `Quick test_scratch_matches_reference;
          Alcotest.test_case "dist_pair radius" `Quick test_dist_pair_radius;
          Alcotest.test_case "dist_pair trivial run counted" `Quick
            test_dist_pair_records_trivial_run;
          Alcotest.test_case "run is allocation-free" `Quick test_scratch_run_allocation_free;
          Alcotest.test_case "dist allocates only the result" `Quick
            test_dist_allocates_only_result;
        ] );
      ( "lazy-greedy",
        [ Alcotest.test_case "matches eager picks" `Quick test_lazy_greedy_matches_eager ] );
      ( "trees",
        [
          Alcotest.test_case "gdy matches reference" `Quick test_gdy_matches_reference;
          Alcotest.test_case "mis matches reference" `Quick test_mis_matches_reference;
          Alcotest.test_case "gdy_k matches reference" `Quick test_gdy_k_matches_reference;
          Alcotest.test_case "scratch reuse leaks nothing" `Quick
            test_scratch_reuse_identical_spanners;
        ] );
    ]
