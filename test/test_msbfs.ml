(* Multi-source BFS engine: the batched traversals must be
   byte-identical to one Bfs.Scratch run per root — distances,
   reach sets and level structure — on arbitrary graphs (including
   disconnected ones) and under radius bounds. *)
open Rs_graph

let check_int = Alcotest.(check int)

let graph_of_seed ~max_n seed =
  let rand = Rand.create seed in
  let n = 2 + Rand.int rand (max_n - 1) in
  match Rand.int rand 4 with
  | 0 -> Gen.erdos_renyi rand n (0.05 +. Rand.float rand 0.3)
  | 1 -> Gen.random_connected rand n 0.1
  | 2 ->
      let side = sqrt (float_of_int n /. 3.0) in
      let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
      Rs_geometry.Unit_ball.udg pts
  | _ -> Gen.random_tree rand n

(* a random batch of distinct roots, 1 <= size <= min (width, n) *)
let batch_of rand g =
  let n = Graph.n g in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rand.int rand (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Array.sub perm 0 (1 + Rand.int rand (min Msbfs.width n))

let arb_instance ~max_n =
  QCheck2.Gen.map
    (fun seed ->
      let rand = Rand.create seed in
      let g = graph_of_seed ~max_n (Rand.int rand 1_000_000) in
      let srcs = batch_of rand g in
      let radius = if Rand.int rand 2 = 0 then None else Some (Rand.int rand 5) in
      (g, srcs, radius))
    QCheck2.Gen.(int_range 0 1_000_000)

let make_test ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* one reusable engine and scratch across all QCheck cases: also
   exercises the generation-stamp reset between runs of different
   sizes and graphs *)
let ms = Msbfs.create ()
let scratch = Bfs.Scratch.create ()

let prop_matches_scratch (g, srcs, radius) =
  Msbfs.run ?radius ms g srcs;
  let n = Graph.n g in
  Array.iteri
    (fun s src ->
      assert (Msbfs.source ms s = src);
      Bfs.Scratch.run ?radius scratch g src;
      (* identical reach set and distances, checked both ways: every
         visited vertex agrees, and the counts rule out extras *)
      assert (Msbfs.visited_count ms s = Bfs.Scratch.visited_count scratch);
      let seen = Array.make n (-1) in
      Msbfs.iter_visited ms s (fun v d ->
          assert (seen.(v) < 0);
          seen.(v) <- d);
      for v = 0 to n - 1 do
        assert (seen.(v) = Bfs.Scratch.dist scratch v)
      done)
    srcs;
  true

let prop_levels_structure (g, srcs, radius) =
  Msbfs.run ?radius ms g srcs;
  let s = Array.length srcs - 1 in
  Bfs.Scratch.run ?radius scratch g srcs.(s);
  let max_dist = match radius with Some r -> r | None -> Graph.n g in
  let levels = Msbfs.levels ms s ~max_dist in
  assert (Array.length levels = max_dist + 1);
  (* each level: exactly the vertices at that distance, ascending id *)
  Array.iteri
    (fun d lvl ->
      let expect = ref [] in
      for v = Graph.n g - 1 downto 0 do
        if Bfs.Scratch.dist scratch v = d then expect := v :: !expect
      done;
      assert (Array.to_list lvl = !expect))
    levels;
  true

let test_width_batch () =
  (* a full-width batch on a graph bigger than one word *)
  let g = Gen.grid 10 10 in
  let srcs = Array.init Msbfs.width (fun i -> i) in
  Msbfs.run ms g srcs;
  Array.iteri
    (fun s src ->
      Bfs.Scratch.run scratch g src;
      check_int "count" (Bfs.Scratch.visited_count scratch)
        (Msbfs.visited_count ms s);
      Msbfs.iter_visited ms s (fun v d ->
          check_int "dist" (Bfs.Scratch.dist scratch v) d))
    srcs

let test_disconnected () =
  let g = Graph.make ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  Msbfs.run ms g [| 0; 4; 3 |];
  check_int "component of 0" 3 (Msbfs.visited_count ms 0);
  check_int "component of 4" 2 (Msbfs.visited_count ms 1);
  check_int "isolated root" 1 (Msbfs.visited_count ms 2);
  Msbfs.iter_visited ms 2 (fun v d ->
      check_int "isolated v" 3 v;
      check_int "isolated d" 0 d)

let test_radius_zero () =
  let g = Gen.path_graph 5 in
  Msbfs.run ~radius:0 ms g [| 2 |];
  check_int "only the root" 1 (Msbfs.visited_count ms 0)

let () =
  Alcotest.run "msbfs"
    [
      ( "equivalence",
        [
          make_test "matches per-root scratch" (arb_instance ~max_n:60)
            prop_matches_scratch;
          make_test ~count:40 "levels structure" (arb_instance ~max_n:40)
            prop_levels_structure;
        ] );
      ( "unit",
        [
          Alcotest.test_case "full-width batch" `Quick test_width_batch;
          Alcotest.test_case "disconnected components" `Quick test_disconnected;
          Alcotest.test_case "radius zero" `Quick test_radius_zero;
        ] );
    ]
