(* Tests for remote-spanner constructions and the Proposition 1
   characterization; distributed execution included. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let graphs =
  [
    ("petersen", Gen.petersen ());
    ("grid45", Gen.grid 4 5);
    ("cycle10", Gen.cycle 10);
    ("hypercube4", Gen.hypercube 4);
    ("udg", udg 71 60);
    ("er", Gen.erdos_renyi (Rand.create 73) 35 0.15);
    ("barbell", Gen.barbell 5);
    ("two_comps", Graph.make ~n:8 [ (0, 1); (1, 2); (2, 3); (4, 5); (5, 6); (6, 7) ]);
  ]

(* ---------------------------------------------------------------- *)
(* r_of_eps *)

let test_r_of_eps () =
  check_int "eps=1" 2 (Remote_spanner.r_of_eps 1.0);
  check_int "eps=0.5" 3 (Remote_spanner.r_of_eps 0.5);
  check_int "eps=0.34" 4 (Remote_spanner.r_of_eps 0.34);
  check_int "eps=0.25" 5 (Remote_spanner.r_of_eps 0.25);
  check "rejects 0" true
    (match Remote_spanner.r_of_eps 0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "rejects > 1" true
    (match Remote_spanner.r_of_eps 1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* (1,0)-remote-spanners: exact distance preservation *)

let test_exact_distance_is_1_0_remote_spanner () =
  List.iter
    (fun (name, g) ->
      let h = Remote_spanner.exact_distance g in
      check (name ^ " (1,0)-RS") true (Verify.is_remote_spanner g h ~alpha:1.0 ~beta:0.0))
    graphs

let test_exact_distance_sparser_than_full () =
  let g = udg 75 120 in
  let h = Remote_spanner.exact_distance g in
  check "strictly sparser" true (Edge_set.cardinal h < Graph.m g)

(* ---------------------------------------------------------------- *)
(* Low-stretch remote-spanners (Theorem 1 / Proposition 1) *)

let eps_list = [ 1.0; 0.5; 0.34 ]

let test_low_stretch_mis () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun eps ->
          let h = Remote_spanner.low_stretch g ~eps in
          check
            (Printf.sprintf "%s eps=%.2f" name eps)
            true
            (Verify.is_remote_spanner g h ~alpha:(1.0 +. eps) ~beta:(1.0 -. (2.0 *. eps))))
        eps_list)
    graphs

let test_rem_span_gdy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun eps ->
          let r = Remote_spanner.r_of_eps eps in
          let h = Remote_spanner.rem_span g ~r ~beta:1 in
          check
            (Printf.sprintf "%s gdy eps=%.2f" name eps)
            true
            (Verify.is_remote_spanner g h ~alpha:(1.0 +. eps) ~beta:(1.0 -. (2.0 *. eps))))
        eps_list)
    graphs

let test_low_stretch_induces_trees () =
  List.iter
    (fun (name, g) ->
      let eps = 0.5 in
      let r = Remote_spanner.r_of_eps eps in
      let h = Remote_spanner.low_stretch g ~eps in
      check (name ^ " induces") true (Verify.induces_dominating_trees g h ~r ~beta:1))
    graphs

(* Proposition 1 is an iff: on random sub-graphs, inducing
   (r,1)-dominating trees and being a (1+eps, 1-2eps)-remote-spanner
   must agree (with eps = 1/(r-1), the tight value). *)
let test_prop1_equivalence_random_subgraphs () =
  let rand = Rand.create 77 in
  List.iter
    (fun (name, g) ->
      for trial = 1 to 12 do
        let h = Edge_set.create g in
        Graph.iter_edges
          (fun u v -> if Rand.int rand 100 < 70 then Edge_set.add h u v)
          g;
        List.iter
          (fun r ->
            let eps = 1.0 /. float_of_int (r - 1) in
            let induces = Verify.induces_dominating_trees g h ~r ~beta:1 in
            let spanner =
              Verify.is_remote_spanner g h ~alpha:(1.0 +. eps)
                ~beta:(1.0 -. (2.0 *. eps))
            in
            check
              (Printf.sprintf "%s trial=%d r=%d iff" name trial r)
              true (induces = spanner))
          [ 2; 3 ]
      done)
    [ ("petersen", Gen.petersen ()); ("grid", Gen.grid 4 4); ("cycle10", Gen.cycle 10) ]

(* ---------------------------------------------------------------- *)
(* Edge counts on doubling inputs (Theorem 1's O(n) claim, sanity level) *)

let test_low_stretch_linear_on_udg () =
  let g = udg 79 300 in
  let h = Remote_spanner.low_stretch g ~eps:0.5 in
  let per_node = float_of_int (Edge_set.cardinal h) /. 300.0 in
  (* eps = 0.5, p = 2: O(eps^-(p+1)) = O(8) trees of O(r^3) edges;
     empirically the density is far below 60 edges per node *)
  check "linear density" true (per_node < 60.0)

let test_worst_additive_slack () =
  let g = Gen.cycle 12 in
  let h = Remote_spanner.exact_distance g in
  let slack = Verify.worst_additive_slack g h ~alpha:1.0 in
  check "no slack for (1,0)" true (slack <= 0.0);
  (* removing a needed edge creates positive slack *)
  let h2 = Edge_set.copy h in
  Edge_set.iter (fun u v -> if Edge_set.cardinal h2 > 1 then Edge_set.remove h2 u v) h2;
  let slack2 = Verify.worst_additive_slack g h2 ~alpha:1.0 in
  check "slack grows" true (slack2 > 0.0)

(* ---------------------------------------------------------------- *)
(* Distributed Algorithm 3 *)

let test_distributed_equals_centralized_gdy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (r, beta) ->
          let report = Remote_spanner.Distributed.rem_span g ~r ~beta in
          let centralized = Remote_spanner.rem_span g ~r ~beta in
          check
            (Printf.sprintf "%s r=%d beta=%d" name r beta)
            true
            (Edge_set.equal report.Remote_spanner.Distributed.spanner centralized))
        [ (2, 0); (2, 1); (3, 1) ])
    graphs

let test_distributed_equals_centralized_kconn () =
  List.iter
    (fun (name, g) ->
      let report = Remote_spanner.Distributed.k_connecting g ~k:2 in
      let centralized = Remote_spanner.k_connecting g ~k:2 in
      check (name ^ " k-conn") true
        (Edge_set.equal report.Remote_spanner.Distributed.spanner centralized))
    graphs

let test_distributed_equals_centralized_2conn () =
  List.iter
    (fun (name, g) ->
      let report = Remote_spanner.Distributed.two_connecting g in
      let centralized = Remote_spanner.two_connecting g in
      check (name ^ " 2-conn") true
        (Edge_set.equal report.Remote_spanner.Distributed.spanner centralized))
    graphs

let test_distributed_round_count () =
  (* 2r - 1 + 2*beta rounds, independent of n *)
  List.iter
    (fun n ->
      let g = Gen.cycle n in
      let report = Remote_spanner.Distributed.rem_span g ~r:3 ~beta:1 in
      check_int
        (Printf.sprintf "rounds n=%d" n)
        ((2 * 3) - 1 + (2 * 1))
        report.Remote_spanner.Distributed.rounds_total)
    [ 12; 24; 48 ]

let test_distributed_round_counts_per_construction () =
  let g = Gen.grid 4 5 in
  check_int "k-conn rounds (r=2,b=0)" 3
    (Remote_spanner.Distributed.k_connecting g ~k:2).Remote_spanner.Distributed.rounds_total;
  check_int "2-conn rounds (r=2,b=1)" 5
    (Remote_spanner.Distributed.two_connecting g).Remote_spanner.Distributed.rounds_total;
  check_int "low-stretch rounds (r=2,b=1)" 5
    (Remote_spanner.Distributed.rem_span g ~r:2 ~beta:1).Remote_spanner.Distributed.rounds_total

let test_distributed_messages_grow_with_n () =
  let stats n =
    let g = Gen.cycle n in
    (Remote_spanner.Distributed.rem_span g ~r:2 ~beta:0).Remote_spanner.Distributed.collect_stats
  in
  let s1 = stats 10 and s2 = stats 40 in
  check "messages scale" true (s2.Rs_distributed.Sim.messages > s1.Rs_distributed.Sim.messages)

let () =
  Alcotest.run "remote_spanner"
    [
      ("params", [ Alcotest.test_case "r_of_eps" `Quick test_r_of_eps ]);
      ( "exact",
        [
          Alcotest.test_case "(1,0)-RS everywhere" `Quick test_exact_distance_is_1_0_remote_spanner;
          Alcotest.test_case "sparser than full" `Quick test_exact_distance_sparser_than_full;
        ] );
      ( "low_stretch",
        [
          Alcotest.test_case "MIS construction (Th 1)" `Quick test_low_stretch_mis;
          Alcotest.test_case "greedy construction" `Quick test_rem_span_gdy;
          Alcotest.test_case "induces dominating trees" `Quick test_low_stretch_induces_trees;
          Alcotest.test_case "Prop 1 equivalence" `Quick test_prop1_equivalence_random_subgraphs;
          Alcotest.test_case "linear on UDG" `Quick test_low_stretch_linear_on_udg;
          Alcotest.test_case "additive slack" `Quick test_worst_additive_slack;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "gdy = centralized" `Quick test_distributed_equals_centralized_gdy;
          Alcotest.test_case "k-conn = centralized" `Quick test_distributed_equals_centralized_kconn;
          Alcotest.test_case "2-conn = centralized" `Quick test_distributed_equals_centralized_2conn;
          Alcotest.test_case "round count 2r-1+2b" `Quick test_distributed_round_count;
          Alcotest.test_case "rounds per construction" `Quick test_distributed_round_counts_per_construction;
          Alcotest.test_case "messages scale with n" `Quick test_distributed_messages_grow_with_n;
        ] );
    ]
