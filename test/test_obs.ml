(* Tests for the observability layer: metric arithmetic, span nesting,
   JSON round-trips, registry reset, trace sinks, and the invariant
   that the parallel runtime's metrics sum to the sequential run's. *)
open Rs_graph
module Obs = Rs_obs.Obs
module Json = Rs_obs.Json
module Trace = Rs_obs.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* Every test starts from a clean, enabled registry and leaves the
   switch off so instrumentation stays free for the other suites. *)
let with_obs f () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* counters, gauges, histograms *)

let test_counter_arithmetic () =
  let c = Obs.counter "test/counter" in
  check_int "starts at 0" 0 (Obs.counter_value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  check_int "2 incr + add 40" 42 (Obs.counter_value c);
  check_int "find-or-register shares state" 42
    (Obs.counter_value (Obs.counter "test/counter"))

let test_disabled_is_noop () =
  let c = Obs.counter "test/disabled" in
  let h = Obs.histogram "test/disabled_h" in
  Obs.set_enabled false;
  Obs.incr c;
  Obs.add c 10;
  Obs.observe h 3.0;
  Obs.set_enabled true;
  check_int "counter untouched" 0 (Obs.counter_value c);
  check_int "histogram untouched" 0 (Obs.histogram_count h)

let test_gauge () =
  let g = Obs.gauge "test/gauge" in
  Obs.set_gauge g 3.5;
  Obs.set_gauge g 2.25;
  check_float "last write wins" 2.25 (Obs.gauge_value g)

let test_histogram_arithmetic () =
  let h = Obs.histogram "test/hist" in
  List.iter (Obs.observe h) [ 1.0; 2.0; 3.0; 100.0 ];
  check_int "count" 4 (Obs.histogram_count h);
  check_float "sum" 106.0 (Obs.histogram_sum h);
  (* min/max/buckets only surface through the JSON snapshot *)
  let j = Obs.to_json () in
  let hist =
    match Json.member "histograms" j with
    | Some hs -> Option.get (Json.member "test/hist" hs)
    | None -> Alcotest.fail "no histograms key"
  in
  check "min 1" true (Json.member "min" hist = Some (Json.Float 1.0));
  check "max 100" true (Json.member "max" hist = Some (Json.Float 100.0));
  match Json.member "buckets" hist with
  | Some (Json.List buckets) ->
      let total =
        List.fold_left
          (fun acc b ->
            match Json.member "count" b with Some (Json.Int c) -> acc + c | _ -> acc)
          0 buckets
      in
      check_int "bucket counts sum to count" 4 total
  | _ -> Alcotest.fail "no buckets"

(* ------------------------------------------------------------------ *)
(* spans *)

let test_span_nesting () =
  let r =
    Obs.with_span "a" (fun () ->
        Obs.with_span "b" (fun () -> ());
        Obs.with_span "b" (fun () -> ());
        17)
  in
  check_int "with_span returns" 17 r;
  (match Obs.span_stats "a" with
  | Some (count, total) ->
      check_int "outer once" 1 count;
      check "outer has time" true (total >= 0.0)
  | None -> Alcotest.fail "span a missing");
  (match Obs.span_stats "a/b" with
  | Some (count, _) -> check_int "nested under joined path" 2 count
  | None -> Alcotest.fail "span a/b missing");
  check "no bare b" true (Obs.span_stats "b" = None)

let test_span_closes_on_exception () =
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  (match Obs.span_stats "boom" with
  | Some (count, _) -> check_int "recorded despite raise" 1 count
  | None -> Alcotest.fail "span missing");
  (* the stack unwound: a sibling span is not nested under "boom" *)
  Obs.with_span "after" (fun () -> ());
  check "sibling at top level" true (Obs.span_stats "after" <> None)

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let c = Obs.counter "rt/counter" in
  Obs.add c 7;
  Obs.set_gauge (Obs.gauge "rt/gauge") 1.5;
  Obs.observe (Obs.histogram "rt/hist") 42.0;
  Obs.with_span "rt" (fun () -> ());
  let j = Obs.to_json () in
  (match Json.parse (Json.to_string j) with
  | Ok j' -> check "compact round-trip" true (Json.equal j j')
  | Error e -> Alcotest.fail ("compact parse: " ^ e));
  match Json.parse (Json.to_string ~pretty:true j) with
  | Ok j' -> check "pretty round-trip" true (Json.equal j j')
  | Error e -> Alcotest.fail ("pretty parse: " ^ e)

let test_json_parser_strictness () =
  check "trailing garbage" true (Result.is_error (Json.parse "1 2"));
  check "unterminated string" true (Result.is_error (Json.parse "\"ab"));
  check "bare word" true (Result.is_error (Json.parse "nulx"));
  (match Json.parse "{\"a\": [1, -2.5e1, true, null, \"\\u0041\"]}" with
  | Ok j ->
      check "escapes and numbers" true
        (Json.equal j
           (Json.Obj
              [ ("a",
                 Json.List
                   [ Json.Int 1; Json.Float (-25.0); Json.Bool true; Json.Null;
                     Json.String "A" ]) ]))
  | Error e -> Alcotest.fail e);
  check "nan prints as null" true (Json.to_string (Json.Float Float.nan) = "null")

(* ------------------------------------------------------------------ *)
(* reset *)

let test_reset_keeps_handles () =
  let c = Obs.counter "reset/c" in
  let h = Obs.histogram "reset/h" in
  Obs.add c 5;
  Obs.observe h 1.0;
  Obs.with_span "reset_span" (fun () -> ());
  Obs.reset ();
  check_int "counter zeroed" 0 (Obs.counter_value c);
  check_int "histogram zeroed" 0 (Obs.histogram_count h);
  check "span aggregates dropped" true (Obs.span_stats "reset_span" = None);
  Obs.incr c;
  check_int "old handle still live" 1 (Obs.counter_value c);
  check_int "re-registration sees the same cell" 1
    (Obs.counter_value (Obs.counter "reset/c"))

(* ------------------------------------------------------------------ *)
(* trace sinks *)

let test_trace_buffer () =
  let buf = Buffer.create 256 in
  let sink = Trace.to_buffer buf in
  Trace.emit sink [ ("ev", Json.String "x"); ("n", Json.Int 1) ];
  Trace.emit sink [ ("ev", Json.String "y") ];
  check_int "two events" 2 (Trace.events sink);
  Trace.close sink;
  Trace.close sink (* idempotent *);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (fun l -> l <> "")
  in
  check_int "one line per event" 2 (List.length lines);
  List.iter
    (fun l -> check "line parses" true (Result.is_ok (Json.parse l)))
    lines;
  check "emit after close raises" true
    (match Trace.emit sink [ ("ev", Json.String "z") ] with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* parallel metrics == sequential metrics *)

let snapshot () =
  List.map
    (fun name -> (name, Obs.counter_value (Obs.counter name)))
    [ "core/trees_built"; "bfs/runs"; "bfs/expansions" ]

let prop_parallel_metrics_match =
  QCheck.Test.make ~count:15 ~name:"parallel union_trees metrics sum to sequential"
    QCheck.(pair (int_range 65 120) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.erdos_renyi (Rand.create seed) n 0.08 in
      Obs.set_enabled true;
      Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
      Obs.reset ();
      let h_seq = Rs_core.Remote_spanner.exact_distance g in
      let seq = snapshot () in
      Obs.reset ();
      let h_par = Rs_core.Parallel.exact_distance ~domains:4 g in
      let par = snapshot () in
      Edge_set.cardinal h_seq = Edge_set.cardinal h_par && seq = par)

(* ------------------------------------------------------------------ *)
(* quantiles *)

let test_quantile_accuracy () =
  let h = Obs.histogram "test/quant" in
  for v = 1 to 1000 do
    Obs.observe h (float_of_int v)
  done;
  (* log-bucketed sketch: <= 2% relative error, clamped to [min, max] *)
  let within q expect =
    let got = Obs.quantile h q in
    let err = Float.abs (got -. expect) /. expect in
    if err > 0.02 then
      Alcotest.failf "p%.0f = %g, want %g +- 2%% (err %.3f%%)" (100. *. q) got
        expect (100. *. err)
  in
  within 0.5 500.0;
  within 0.9 900.0;
  within 0.99 990.0;
  check_float "p0 clamps to min" 1.0 (Obs.quantile h 0.0);
  check_float "p100 clamps to max" 1000.0 (Obs.quantile h 1.0);
  check_float "histogram_min" 1.0 (Obs.histogram_min h);
  check_float "histogram_max" 1000.0 (Obs.histogram_max h)

let test_quantile_zero_and_negative () =
  let h = Obs.histogram "test/quant_zero" in
  List.iter (Obs.observe h) [ 0.0; 0.0; 0.0; 5.0 ];
  (* three of four observations land in the zero bucket *)
  check_float "p50 in the zero bucket" 0.0 (Obs.quantile h 0.5);
  check_float "p100 reaches max" 5.0 (Obs.quantile h 1.0)

(* ------------------------------------------------------------------ *)
(* domain-sharded exactness *)

let test_multidomain_counters () =
  let c = Obs.counter "test/md_counter" in
  let h = Obs.histogram "test/md_hist" in
  let n_domains = 4 and per_domain = 25_000 in
  let domains =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.incr c;
              Obs.observe h 2.0
            done))
  in
  List.iter Domain.join domains;
  (* plain per-domain writes, exact after join: no increment lost *)
  check_int "counter total exact" (n_domains * per_domain) (Obs.counter_value c);
  check_int "histogram count exact" (n_domains * per_domain)
    (Obs.histogram_count h);
  check_float "histogram sum exact"
    (2.0 *. float_of_int (n_domains * per_domain))
    (Obs.histogram_sum h)

let test_multidomain_trace_interleaving () =
  let buf = Buffer.create 4096 in
  let sink = Trace.to_buffer buf in
  let n_domains = 4 and per_domain = 500 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Trace.emit sink
                [ ("ev", Json.String "stress"); ("domain", Json.Int d);
                  ("i", Json.Int i) ]
            done))
  in
  List.iter Domain.join domains;
  Trace.close sink;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "no line lost or torn" (n_domains * per_domain) (List.length lines);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.failf "line is not an object: %s" l
      | Error e -> Alcotest.failf "line is not standalone JSON (%s): %s" e l)
    lines

(* ------------------------------------------------------------------ *)
(* span stack discipline and the profile tree *)

let test_span_exception_restores_stack () =
  (* an exception inside a nested span must pop exactly the spans it
     pushed: the sibling opened afterwards is a child of "a", not of
     the span that blew up *)
  Obs.with_span "a" (fun () ->
      (try
         Obs.with_span "b" (fun () -> failwith "boom")
       with Failure _ -> ());
      Obs.with_span "c" (fun () -> ()));
  let has n = Obs.span_stats n <> None in
  check "a recorded" true (has "a");
  check "a/b recorded" true (has "a/b");
  check "c is a sibling of b under a" true (has "a/c");
  check "c did not nest under the failed b" false (has "a/b/c")

let test_profile_tree () =
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ignore (Sys.opaque_identity (ref 0)));
      Obs.with_span "inner" (fun () -> ()));
  let forest = Obs.profile () in
  let outer =
    match List.find_opt (fun n -> n.Obs.p_name = "outer") forest with
    | Some n -> n
    | None -> Alcotest.fail "no 'outer' root in profile forest"
  in
  check_int "outer ran once" 1 outer.Obs.p_count;
  let inner =
    match outer.Obs.p_children with
    | [ n ] -> n
    | l -> Alcotest.failf "expected one child of outer, got %d" (List.length l)
  in
  check_int "inner ran twice" 2 inner.Obs.p_count;
  check "child total bounded by parent total" true
    (inner.Obs.p_total_s <= outer.Obs.p_total_s +. 1e-9);
  check "self = total - children" true
    (Float.abs (outer.Obs.p_self_s -. (outer.Obs.p_total_s -. inner.Obs.p_total_s))
     < 1e-9);
  (* folded export: every line is "frame(;frame)* <int>" *)
  let folded = Obs.folded () in
  let lines =
    String.split_on_char '\n' folded |> List.filter (fun l -> l <> "")
  in
  check "folded is non-empty" true (lines <> []);
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "folded line has no sample count: %s" l
      | Some i ->
          let stack = String.sub l 0 i in
          let count = String.sub l (i + 1) (String.length l - i - 1) in
          check "stack non-empty" true (stack <> "");
          (match int_of_string_opt count with
          | Some n -> check "count non-negative" true (n >= 0)
          | None -> Alcotest.failf "folded count not an int: %s" l))
    lines;
  check "folded contains the nested stack" true
    (List.exists
       (fun l -> String.length l >= 11 && String.sub l 0 11 = "outer;inner")
       lines)

(* ------------------------------------------------------------------ *)
(* snapshots and JSONL deltas *)

let test_snapshot_delta () =
  let c = Obs.counter "test/delta_c" in
  let c2 = Obs.counter "test/delta_quiet" in
  let h = Obs.histogram "test/delta_h" in
  Obs.incr c2;
  let s0 = Obs.snapshot () in
  Obs.add c 5;
  Obs.observe h 3.0;
  Obs.observe h 4.0;
  let s1 = Obs.snapshot () in
  let d = Obs.delta_json ~prev:s0 s1 in
  let counters = Option.get (Json.member "counters" d) in
  (match Json.member "test/delta_c" counters with
  | Some (Json.Int 5) -> ()
  | j -> Alcotest.failf "delta_c delta wrong: %s"
           (match j with Some j -> Json.to_string j | None -> "absent"));
  check "unchanged counter omitted from delta" true
    (Json.member "test/delta_quiet" counters = None);
  let hists = Option.get (Json.member "histograms" d) in
  (match Json.member "test/delta_h" hists with
  | Some hd ->
      check "hist delta count" true (Json.member "count" hd = Some (Json.Int 2))
  | None -> Alcotest.fail "histogram delta missing")

(* ------------------------------------------------------------------ *)
(* exact float round-trip through the JSON printer *)

let prop_json_float_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"JSON float printing round-trips exactly"
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      let s = Json.to_string (Json.Float f) in
      match Json.parse s with
      | Ok (Json.Float f') -> Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
      | Ok (Json.Int i) ->
          (* integral floats print without a dot and re-parse as Int;
             the value must still be bit-exact *)
          Int64.equal (Int64.bits_of_float f)
            (Int64.bits_of_float (float_of_int i))
      | Ok _ | Error _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter arithmetic" `Quick (with_obs test_counter_arithmetic);
          Alcotest.test_case "disabled is a no-op" `Quick (with_obs test_disabled_is_noop);
          Alcotest.test_case "gauge last-write-wins" `Quick (with_obs test_gauge);
          Alcotest.test_case "histogram arithmetic" `Quick (with_obs test_histogram_arithmetic);
          Alcotest.test_case "quantile accuracy <=2%" `Quick (with_obs test_quantile_accuracy);
          Alcotest.test_case "quantile zero bucket" `Quick (with_obs test_quantile_zero_and_negative);
        ] );
      ( "sharding",
        [
          Alcotest.test_case "multi-domain counters exact" `Quick (with_obs test_multidomain_counters);
          Alcotest.test_case "multi-domain trace lines standalone" `Quick
            (with_obs test_multidomain_trace_interleaving);
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting joins paths" `Quick (with_obs test_span_nesting);
          Alcotest.test_case "closes on exception" `Quick (with_obs test_span_closes_on_exception);
          Alcotest.test_case "exception restores span stack" `Quick
            (with_obs test_span_exception_restores_stack);
          Alcotest.test_case "profile tree and folded export" `Quick (with_obs test_profile_tree);
        ] );
      ( "json",
        [
          Alcotest.test_case "registry round-trip" `Quick (with_obs test_json_roundtrip);
          Alcotest.test_case "parser strictness" `Quick (with_obs test_json_parser_strictness);
          QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "reset keeps handles" `Quick (with_obs test_reset_keeps_handles);
          Alcotest.test_case "snapshot deltas" `Quick (with_obs test_snapshot_delta);
        ] );
      ( "trace",
        [ Alcotest.test_case "buffer sink" `Quick (with_obs test_trace_buffer) ] );
      ( "parallel",
        [ QCheck_alcotest.to_alcotest prop_parallel_metrics_match ] );
    ]
