Malformed or missing input files must yield a one-line diagnostic and
exit 124 — never a cmdliner usage dump or an uncaught backtrace.

A graph file with a bad header:

  $ printf 'bogus\n' > bad_header.txt
  $ rspan stats bad_header.txt
  rspan: bad_header.txt: Graph_io.of_string: bad header
  [124]

A malformed edge line:

  $ printf '2 1\n0 1 junk\n' > bad_edge.txt
  $ rspan stats bad_edge.txt
  rspan: bad_edge.txt: Graph_io.of_string: bad edge line: 0 1 junk
  [124]

A header whose edge count disagrees with the body:

  $ printf '3 2\n0 1\n' > short.txt
  $ rspan stats short.txt
  rspan: short.txt: Graph_io.of_string: edge count mismatch: header declares m=2, found 1
  [124]

Extra edge lines beyond the declared m (trailing garbage):

  $ printf '2 1\n0 1\n1 0\n' > trail.txt
  $ rspan stats trail.txt
  rspan: trail.txt: Graph_io.of_string: trailing garbage: edge line 3 exceeds the declared m=1
  [124]

A duplicate edge (in either orientation) — Graph.make would silently
merge it, leaving fewer edges than the header promised:

  $ printf '3 3\n0 1\n1 2\n1 0\n' > dup.txt
  $ rspan stats dup.txt
  rspan: dup.txt: Graph_io.of_string: duplicate edge 1 0 (line 4 repeats line 2)
  [124]

An edge referencing a vertex outside the declared range:

  $ printf '2 1\n0 7\n' > oob.txt
  $ rspan stats oob.txt
  rspan: oob.txt: Graph.make: endpoint out of range (0,7)
  [124]

A missing graph file:

  $ rspan stats no_such_graph.txt
  rspan: no_such_graph.txt: No such file or directory
  [124]

A well-formed graph for the remaining cases:

  $ rspan gen --family grid -n 9 -o g.txt
  generated: n=9 m=12

An unwritable output target (gen, build):

  $ rspan gen --family path -n 4 -o no_such_dir/out.txt
  rspan: no_such_dir/out.txt: No such file or directory
  [124]
  $ rspan build --algo exact g.txt -o no_such_dir/h.txt
  rspan: no_such_dir/h.txt: No such file or directory
  [124]

An unwritable --coords target:

  $ rspan gen --family udg -n 4 --coords no_such_dir/c.txt -o u.txt
  rspan: no_such_dir/c.txt: No such file or directory
  [124]

A malformed coordinate file (render):

  $ printf '2 2\n0 0\n' > bad_coords.txt
  $ rspan render g.txt bad_coords.txt
  rspan: Point_io.of_string: row count mismatch
  [124]
  $ printf 'x y\n' > bad_coords2.txt
  $ rspan render g.txt bad_coords2.txt
  rspan: Point_io.of_string: bad header
  [124]

A malformed crash/flap schedule:

  $ printf 'crash oops\n' > bad_plan.txt
  $ rspan periodic --crash-plan bad_plan.txt g.txt
  rspan: Fault.parse_schedule: line 1: expected: crash NODE AT [RECOVER]
  [124]

A malformed topology delta file (heal):

  $ printf 'frob 1 2\n' > bad_delta.txt
  $ rspan heal --deltas bad_delta.txt g.txt
  rspan: Delta.parse: line 1: unknown directive: frob
  [124]
  $ printf 'add 0\n' > bad_delta2.txt
  $ rspan heal --deltas bad_delta2.txt g.txt
  rspan: Delta.parse: line 1: expected: add U V
  [124]

A delta referencing a vertex outside the graph:

  $ printf 'add 0 99\n' > oob_delta.txt
  $ rspan heal --deltas oob_delta.txt g.txt
  rspan: oob_delta.txt: Delta: vertex 99 out of range [0..9)
  [124]

A missing delta file:

  $ rspan heal --deltas no_such_deltas.txt g.txt
  rspan: no_such_deltas.txt: No such file or directory
  [124]

And the heal happy path: a removed-then-restored edge (quiescent net
effect — nothing recomputed) and a real removal, both gated against
the from-scratch rebuild.

  $ printf 'remove 0 1\nadd 0 1\n' > quiet.txt
  $ rspan heal --algo exact --deltas quiet.txt g.txt -o healed.txt
  delta 0: dirty=0 rebuilt=0 escalations=0 level=local edges_changed=0
  healed: n=9 m=12, spanner 12 edges, 0 of 9 trees recomputed
  equivalence: healed spanner = from-scratch build
  verified: (1, 0)-remote-spanner

  $ printf 'remove 0 1\n' > cut.txt
  $ rspan heal --algo exact --deltas cut.txt g.txt -o healed2.txt
  delta 0: dirty=8 rebuilt=8 escalations=0 level=local edges_changed=2
  healed: n=9 m=11, spanner 10 edges, 8 of 9 trees recomputed
  equivalence: healed spanner = from-scratch build
  verified: (1, 0)-remote-spanner

Durable-store misuse must fail the same way. Recovering a directory
that is not a store:

  $ rspan recover no_such_store
  rspan: no_such_store: No such file or directory
  [124]

Initializing a store on top of an existing one (would destroy history):

  $ rspan snapshot wstore --init g.txt
  store wstore: initialized at seq 0 (n=9 m=12, fsync always)
  $ rspan snapshot wstore --init g.txt
  rspan: Store.create: wstore already contains a store (recover it instead)
  [124]

--wal pins the construction's own locality radius (the WAL invariant
is per-spec), so the dirty-radius override is rejected:

  $ printf 'add 0 4\n' > one.txt
  $ rspan heal --deltas one.txt --wal w2 --dirty-radius 1 g.txt
  rspan: --wal cannot be combined with --dirty-radius
  [124]

--stats-every needs a JSONL destination: a file, not the stderr table.

  $ rspan stats --stats-every 0.5 g.txt > /dev/null
  rspan: --stats-every requires --stats=FILE
  [124]

  $ rspan stats --stats --stats-every 0.5 g.txt > /dev/null
  rspan: --stats-every requires --stats=FILE, not '-'
  [124]

  $ rspan stats --stats=m.jsonl --stats-every 0 g.txt > /dev/null
  rspan: --stats-every must be positive
  [124]

The resident service validates its lifecycle flags before touching any
state. A non-positive deadline:

  $ rspan serve --deadline 0 g.txt
  rspan: serve: --deadline must be positive (got 0)
  [124]

Two state backends at once:

  $ rspan serve --ephemeral --wal svc_store g.txt
  rspan: serve: --ephemeral conflicts with --wal (pick one state backend)
  [124]

No initial topology and no log to recover one from:

  $ rspan serve
  rspan: serve: need a GRAPH file or --wal STORE to serve from
  [124]

A breaker that can never trip, a reader count that can never answer:

  $ rspan serve --repair-budget=-1 g.txt
  rspan: serve: --repair-budget must be positive (got -1)
  [124]

  $ rspan serve --readers 0 g.txt
  rspan: serve: --readers must be >= 1
  [124]

--fsync tunes the WAL, so without one it is a contradiction — serve
and heal agree on the diagnostic:

  $ rspan serve --fsync never g.txt
  rspan: --fsync requires --wal (there is no log to sync)
  [124]

  $ rspan heal --deltas one.txt --fsync every:4 g.txt
  rspan: --fsync requires --wal (there is no log to sync)
  [124]

An unknown chaos scenario is named, not swallowed — the list spans
both the service and the network suites:

  $ rspan chaostest --scenario no-such-chaos chaos_scratch
  rspan: chaostest: unknown scenario no-such-chaos (known: kill-writer-mid-repair, torn-wal-restart, queue-saturation, wedged-writer-failover, partition-mid-stream, torn-snapshot-ship, slow-replica-overflow, replica-restart-resume, leader-kill-promote)
  [124]

The TCP endpoint validates its address before any I/O — serve and
replica agree on the diagnostics:

  $ rspan serve --tcp nocolon g.txt
  rspan: serve: --tcp expected HOST:PORT, got nocolon
  [124]

  $ rspan serve --tcp 127.0.0.1:notaport g.txt
  rspan: serve: --tcp port is not an integer: notaport
  [124]

  $ rspan serve --tcp 127.0.0.1:99999 g.txt
  rspan: serve: --tcp port out of range: 99999
  [124]

A replica without a leader, or without a durable store of its own, is
a contradiction named before any snapshot is shipped:

  $ rspan replica --wal rep_store
  rspan: replica: --follow HOST:PORT is required (a replica needs a leader)
  [124]

  $ rspan replica --follow 127.0.0.1:7530
  rspan: replica: --follow needs --wal DIR (the replica's own durable store)
  [124]

  $ rspan replica --follow nocolon --wal rep_store
  rspan: replica: --follow expected HOST:PORT, got nocolon
  [124]

  $ rspan ship
  rspan: ship: HOST:PORT of a leader is required
  [124]

  $ rspan ship 127.0.0.1:99999 ship_dir
  rspan: ship: port out of range: 99999
  [124]

A taken port is a one-line exit before any store is opened: hold the
port with an ephemeral server, then try to bind it again.

  $ cat > hold.txt <<SCRIPT
  > sleep 5
  > quit
  > SCRIPT
  $ rspan serve --ephemeral --tcp 127.0.0.1:37531 --script hold.txt g.txt > held.log 2>&1 &
  $ sleep 1
  $ rspan replica --follow 127.0.0.1:37530 --wal rep_store --tcp 127.0.0.1:37531
  rspan: replica: cannot bind 127.0.0.1:37531: Address already in use
  [124]
  $ rspan serve --ephemeral --tcp 127.0.0.1:37531 g.txt
  rspan: serve: cannot bind 127.0.0.1:37531: Address already in use
  [124]
  $ wait
