(* The paper's claims as a CI-enforced regression suite: one test per
   Table-1 row / theorem / named remark, in miniature (the bench
   harness runs the full-size versions). Each test states the claim it
   pins in its name. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n density =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. density) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  (pts, Rs_geometry.Unit_ball.udg pts)

(* Table 1 row 1-2: any graph admits a (2k-1,0)-spanner with
   O(n^{1+1/k}) edges, and spanners are remote-spanners *)
let row_general_graph_spanners () =
  let g = Gen.erdos_renyi (Rand.create 201) 80 0.12 in
  let k = 2 in
  let h = Baseline.greedy_spanner g ~k in
  check "spanner" true (Baseline.is_spanner g h ~alpha:3.0 ~beta:0.0);
  check "remote-spanner" true (Verify.is_remote_spanner g h ~alpha:3.0 ~beta:0.0);
  let bound = (80.0 ** 1.5) +. 80.0 in
  check "girth size bound" true (float_of_int (Edge_set.cardinal h) <= bound)

(* Table 1 row 3: a (1,0)-spanner must contain all edges... *)
let row_exact_spanner_needs_everything () =
  let g = Gen.cycle 8 in
  let full = Edge_set.full g in
  check "full graph is the only (1,0)-spanner of a cycle" true
    (Baseline.is_spanner g full ~alpha:1.0 ~beta:0.0);
  let missing = Edge_set.copy full in
  Edge_set.remove missing 0 1;
  check "any missing edge breaks it" false
    (Baseline.is_spanner g missing ~alpha:1.0 ~beta:0.0);
  (* ...whereas a (1,0)-REMOTE-spanner can drop edges *)
  let h = Remote_spanner.exact_distance (snd (udg 203 60 4.0)) in
  let g2 = Edge_set.host h in
  check "remote version is sparser" true (Edge_set.cardinal h < Graph.m g2);
  check "and still exact" true (Verify.is_remote_spanner g2 h ~alpha:1.0 ~beta:0.0)

(* Table 1 row 4 / Theorem 2: k-connecting (1,0)-RS in O(1) time with
   near-optimal size *)
let row_k_connecting_optimal () =
  let g = Gen.erdos_renyi (Rand.create 205) 16 0.4 in
  let k = 2 in
  let h = Remote_spanner.k_connecting g ~k in
  check "k-connecting (1,0)" true (Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k);
  (match Optimal.exact_k_rs g ~k with
  | Some opt ->
      let ratio =
        float_of_int (Edge_set.cardinal h) /. float_of_int (max 1 (Edge_set.cardinal opt))
      in
      check "within 2(1+log D) of optimum" true
        (ratio <= (2.0 *. (1.0 +. log (float_of_int (Graph.max_degree g)))) +. 1e-9)
  | None -> ());
  check_int "constant rounds (2r-1)" 3
    (Remote_spanner.Distributed.k_connecting g ~k).Remote_spanner.Distributed.rounds_total

(* Table 1 row 5: sparse (1,0)-RS on random UDG — spot check the
   density drop at two sizes in a fixed square *)
let row_udg_sparsity () =
  let frac n =
    let rand = Rand.create (207 + n) in
    let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side:4.0 in
    let g = Rs_geometry.Unit_ball.udg pts in
    float_of_int (Edge_set.cardinal (Remote_spanner.exact_distance g))
    /. float_of_int (Graph.m g)
  in
  (* n^{4/3} / n^2 shrinks: the kept fraction must drop with n *)
  check "kept fraction drops" true (frac 300 < frac 75)

(* Table 1 rows 6-7 / Theorem 1: low stretch, linear on doubling UBG,
   distances unknown *)
let row_low_stretch_linear () =
  let eps = 0.5 in
  let per_node n =
    let _, g = udg (209 + n) n 4.0 in
    let h = Remote_spanner.low_stretch g ~eps in
    check "stretch" true
      (Verify.is_remote_spanner g h ~alpha:(1.0 +. eps) ~beta:(1.0 -. (2.0 *. eps)));
    float_of_int (Edge_set.cardinal h) /. float_of_int n
  in
  let d1 = per_node 100 and d2 = per_node 300 in
  check "edges per node flat (linear size)" true (d2 < d1 *. 1.6)

(* Table 1 row 9 / Theorem 3: 2-connecting (2,-1)-RS, linear on UBG *)
let row_two_connecting () =
  let _, g = udg 211 40 4.0 in
  let h = Remote_spanner.two_connecting g in
  check "2-connecting (2,-1)" true (Verify.is_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:2);
  check_int "constant rounds (2r-1+2b)" 5
    (Remote_spanner.Distributed.two_connecting g).Remote_spanner.Distributed.rounds_total

(* Proposition 1: iff characterization at the tight eps *)
let prop1_iff () =
  let g = Gen.grid 4 4 in
  let rand = Rand.create 213 in
  for _ = 1 to 8 do
    let h = Edge_set.create g in
    Graph.iter_edges (fun u v -> if Rand.int rand 4 < 3 then Edge_set.add h u v) g;
    check "iff" true
      (Verify.induces_dominating_trees g h ~r:2 ~beta:1
      = Verify.is_remote_spanner g h ~alpha:2.0 ~beta:(-1.0))
  done

(* Proposition 5: iff characterization for k-connecting (1,0) *)
let prop5_iff () =
  let g = Gen.petersen () in
  let rand = Rand.create 215 in
  for _ = 1 to 8 do
    let h = Edge_set.create g in
    Graph.iter_edges (fun u v -> if Rand.int rand 4 < 3 then Edge_set.add h u v) g;
    check "iff" true
      (Verify.induces_k20_trees g h ~k:2
      = Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k:2)
  done

(* Section 1.2: multipoint relays are (2,0)-dominating trees and their
   union gives shortest-path routes *)
let mpr_shortest_routes () =
  let _, g = udg 217 50 4.5 in
  let h = Mpr.relay_union g Mpr.select in
  let ls = Rs_routing.Link_state.make g h in
  let r = Rs_routing.Link_state.measure_stretch ls in
  check_int "all delivered" r.Rs_routing.Link_state.pairs r.Rs_routing.Link_state.delivered;
  check_int "shortest" 0 r.Rs_routing.Link_state.worst_add

(* Section 1: greedy routing achieves the d_{H_u} bound *)
let greedy_routing_bound () =
  let _, g = udg 219 40 4.0 in
  let h = Remote_spanner.low_stretch g ~eps:1.0 in
  let h_adj = Edge_set.to_adjacency h in
  let ls = Rs_routing.Link_state.make g h in
  Graph.iter_vertices
    (fun s ->
      let dhu = Bfs.augmented_dist g h_adj s in
      Graph.iter_vertices
        (fun t ->
          if s <> t && dhu.(t) > 0 then
            match Rs_routing.Link_state.route ls ~src:s ~dst:t with
            | Some p -> check "route <= d_Hu" true (Path.length p <= dhu.(t))
            | None -> Alcotest.fail "must deliver")
        g)
    g

(* Concluding remark: edge-connectivity — false for the vertex
   construction (bow-tie), true after repair *)
let remark_edge_connectivity () =
  let g = Extensions.bowtie () in
  let base = Remote_spanner.two_connecting g in
  check "counterexample" false (Verify.is_edge_k_connecting g base ~alpha:2.0 ~beta:(-1.0) ~k:2);
  let h, added = Extensions.edge_repair g ~k:2 ~base in
  check_int "two edges fix it" 2 added;
  check "repaired" true (Verify.is_edge_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k:2)

let () =
  Alcotest.run "paper_claims"
    [
      ( "table1",
        [
          Alcotest.test_case "rows 1-2: general spanners" `Quick row_general_graph_spanners;
          Alcotest.test_case "row 3: remote beats exact spanner" `Quick row_exact_spanner_needs_everything;
          Alcotest.test_case "row 4: k-connecting near-optimal" `Quick row_k_connecting_optimal;
          Alcotest.test_case "row 5: UDG sparsity" `Quick row_udg_sparsity;
          Alcotest.test_case "rows 6-7: low stretch linear" `Quick row_low_stretch_linear;
          Alcotest.test_case "row 9: 2-connecting linear" `Quick row_two_connecting;
        ] );
      ( "propositions",
        [
          Alcotest.test_case "Prop 1 iff" `Quick prop1_iff;
          Alcotest.test_case "Prop 5 iff" `Quick prop5_iff;
        ] );
      ( "narrative",
        [
          Alcotest.test_case "MPRs give shortest routes" `Quick mpr_shortest_routes;
          Alcotest.test_case "greedy routing bound" `Quick greedy_routing_bound;
          Alcotest.test_case "edge-connectivity remark" `Quick remark_edge_connectivity;
        ] );
    ]
