(* Tests for the edge-connectivity extension (Edge_disjoint,
   Verify.is_edge_k_connecting, Extensions) and the hybrid
   construction for the paper's open problem. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

(* ---------------------------------------------------------------- *)
(* Edge_disjoint *)

let test_edge_dk_cycle () =
  let c = Gen.cycle 7 in
  (* same as the vertex case on a cycle: 3 + 4 *)
  Alcotest.(check (array int)) "profile" [| 3; 7 |] (Edge_disjoint.dk_profile c ~kmax:3 0 3)

let test_edge_dk_bowtie_beats_vertex () =
  let g = Extensions.bowtie () in
  check_int "vertex menger" 1 (Disjoint_paths.max_disjoint g 0 4);
  check_int "edge menger" 2 (Edge_disjoint.max_disjoint g 0 4);
  Alcotest.(check (option int)) "edge d2 via shared vertex" (Some 6)
    (Edge_disjoint.dk g ~k:2 0 4);
  Alcotest.(check (option int)) "vertex d2 absent" None (Disjoint_paths.dk g ~k:2 0 4)

let test_edge_dk_dominated_by_vertex () =
  (* d^k_edge <= d^k_vertex wherever both exist *)
  List.iter
    (fun g ->
      let n = Graph.n g in
      for s = 0 to n - 1 do
        for t = s + 1 to n - 1 do
          let pv = Disjoint_paths.dk_profile g ~kmax:3 s t in
          let pe = Edge_disjoint.dk_profile g ~kmax:3 s t in
          check "at least as many paths" true (Array.length pe >= Array.length pv);
          Array.iteri (fun i dv -> check "edge <= vertex" true (pe.(i) <= dv)) pv
        done
      done)
    [ Gen.petersen (); Gen.grid 3 4; Extensions.bowtie (); Gen.barbell 3 ]

let test_edge_min_sum_paths_valid () =
  let g = Extensions.bowtie () in
  match Edge_disjoint.min_sum_paths g ~k:2 0 4 with
  | None -> Alcotest.fail "two edge-disjoint paths exist"
  | Some paths ->
      check_int "two paths" 2 (List.length paths);
      List.iter
        (fun p ->
          check "valid path" true (Path.is_valid g p);
          check_int "from 0" 0 (Path.source p);
          check_int "to 4" 4 (Path.target p))
        paths;
      check "edge disjoint" true (Edge_disjoint.edges_pairwise_disjoint paths);
      check_int "total = d2" 6 (List.fold_left (fun a p -> a + Path.length p) 0 paths)

let test_edge_min_sum_paths_theta () =
  let g = Gen.theta 3 4 in
  match Edge_disjoint.min_sum_paths g ~k:3 0 1 with
  | None -> Alcotest.fail "three paths"
  | Some paths ->
      check "disjoint" true (Edge_disjoint.edges_pairwise_disjoint paths);
      check_int "total" 15 (List.fold_left (fun a p -> a + Path.length p) 0 paths)

let test_edges_pairwise_disjoint_negative () =
  check "reused edge" false
    (Edge_disjoint.edges_pairwise_disjoint [ [ 0; 1; 2 ]; [ 3; 1; 0 ] ]);
  check "shared vertex ok" true
    (Edge_disjoint.edges_pairwise_disjoint [ [ 0; 1; 2 ]; [ 3; 1; 4 ] ])

let test_edge_dk_k1_is_bfs () =
  let g = Gen.grid 4 4 in
  for s = 0 to 15 do
    for t = 0 to 15 do
      if s <> t then
        Alcotest.(check (option int))
          "d1 edge = bfs"
          (let d = Bfs.dist_pair g s t in
           if d < 0 then None else Some d)
          (Edge_disjoint.dk g ~k:1 s t)
    done
  done

(* ---------------------------------------------------------------- *)
(* Edge-k-connecting verification *)

let test_vertex_constructions_fail_edge_on_bowtie () =
  (* the counterexample driving the extension *)
  let g = Extensions.bowtie () in
  let h = Remote_spanner.two_connecting g in
  check "vertex 2-connecting holds" true
    (Verify.is_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:2);
  check "edge 2-connecting fails" false
    (Verify.is_edge_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:2)

let test_full_graph_is_edge_k_connecting () =
  List.iter
    (fun g ->
      check "full" true
        (Verify.is_edge_k_connecting g (Baseline.full g) ~alpha:1.0 ~beta:0.0 ~k:3))
    [ Gen.petersen (); Extensions.bowtie (); Gen.grid 3 4 ]

(* ---------------------------------------------------------------- *)
(* Extensions.edge_repair *)

let repair_cases =
  [ ("bowtie", Extensions.bowtie ());
    ("barbell4", Gen.barbell 4);
    ("er18", Gen.erdos_renyi (Rand.create 5) 18 0.35);
    ("udg25", udg 9 25);
    ("grid34", Gen.grid 3 4);
    ("theta35", Gen.theta 3 5) ]

let test_edge_repair_sound () =
  List.iter
    (fun (name, g) ->
      let h, _ = Extensions.edge_repair g ~k:2 ~base:(Remote_spanner.two_connecting g) in
      check (name ^ " (1,0) edge-2-connecting") true
        (Verify.is_edge_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k:2))
    repair_cases

let test_edge_repair_bowtie_adds_two () =
  let g = Extensions.bowtie () in
  let base = Remote_spanner.two_connecting g in
  let h, added = Extensions.edge_repair g ~k:2 ~base in
  check_int "adds the two dropped edges" 2 added;
  check "contains 0-1" true (Edge_set.mem h 0 1);
  check "contains 3-4" true (Edge_set.mem h 3 4)

let test_edge_repair_idempotent () =
  let g = Extensions.bowtie () in
  let h1, _ = Extensions.edge_repair g ~k:2 ~base:(Remote_spanner.two_connecting g) in
  let h2, added = Extensions.edge_repair g ~k:2 ~base:h1 in
  check_int "nothing more to add" 0 added;
  check "unchanged" true (Edge_set.equal h1 h2)

let test_edge_repair_noop_on_full () =
  let g = Gen.petersen () in
  let _, added = Extensions.edge_repair g ~k:3 ~base:(Baseline.full g) in
  check_int "full needs nothing" 0 added

let test_edge_two_connecting_wrapper () =
  let g = Extensions.bowtie () in
  let h = Extensions.edge_two_connecting g in
  check "sound" true (Verify.is_edge_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:2);
  check "base included" true
    (Edge_set.subset (Remote_spanner.two_connecting g) h)

(* ---------------------------------------------------------------- *)
(* Extensions.hybrid (open problem, empirical) *)

let test_hybrid_contains_both_parts () =
  let g = udg 11 40 in
  let h = Extensions.hybrid g ~eps:0.5 ~k:2 in
  check "low-stretch part" true (Edge_set.subset (Remote_spanner.low_stretch g ~eps:0.5) h);
  check "k-connecting part" true (Edge_set.subset (Remote_spanner.k_connecting_mis g ~k:2) h)

let test_hybrid_is_low_stretch_rs () =
  (* the k'=1 guarantee is inherited from the low-stretch part *)
  List.iter
    (fun (name, g) ->
      let h = Extensions.hybrid g ~eps:0.5 ~k:2 in
      check (name ^ " (1.5,0)-RS") true (Verify.is_remote_spanner g h ~alpha:1.5 ~beta:0.0))
    repair_cases

let test_hybrid_empirical_k_stretch () =
  (* measured, not proved: on these instances the hybrid achieves
     (1.5, 1)-2-connecting stretch (and usually (1.5, 0)) *)
  List.iter
    (fun (name, g) ->
      let h = Extensions.hybrid g ~eps:0.5 ~k:2 in
      check (name ^ " empirical (1.5,1) k=2") true
        (Verify.is_k_connecting g h ~alpha:1.5 ~beta:1.0 ~k:2))
    repair_cases

let () =
  Alcotest.run "extensions"
    [
      ( "edge_disjoint",
        [
          Alcotest.test_case "cycle profile" `Quick test_edge_dk_cycle;
          Alcotest.test_case "bowtie beats vertex" `Quick test_edge_dk_bowtie_beats_vertex;
          Alcotest.test_case "edge <= vertex" `Quick test_edge_dk_dominated_by_vertex;
          Alcotest.test_case "paths valid (bowtie)" `Quick test_edge_min_sum_paths_valid;
          Alcotest.test_case "paths valid (theta)" `Quick test_edge_min_sum_paths_theta;
          Alcotest.test_case "disjointness predicate" `Quick test_edges_pairwise_disjoint_negative;
          Alcotest.test_case "k=1 is bfs" `Quick test_edge_dk_k1_is_bfs;
        ] );
      ( "edge_verify",
        [
          Alcotest.test_case "bowtie counterexample" `Quick test_vertex_constructions_fail_edge_on_bowtie;
          Alcotest.test_case "full graph passes" `Quick test_full_graph_is_edge_k_connecting;
        ] );
      ( "edge_repair",
        [
          Alcotest.test_case "sound everywhere" `Slow test_edge_repair_sound;
          Alcotest.test_case "bowtie adds exactly 2" `Quick test_edge_repair_bowtie_adds_two;
          Alcotest.test_case "idempotent" `Quick test_edge_repair_idempotent;
          Alcotest.test_case "noop on full" `Quick test_edge_repair_noop_on_full;
          Alcotest.test_case "wrapper" `Quick test_edge_two_connecting_wrapper;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "contains both parts" `Quick test_hybrid_contains_both_parts;
          Alcotest.test_case "(1.5,0)-RS" `Quick test_hybrid_is_low_stretch_rs;
          Alcotest.test_case "empirical k-stretch" `Slow test_hybrid_empirical_k_stretch;
        ] );
    ]
