(* Tests for greedy and exact set cover / k-multicover. *)
open Rs_setcover

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let inst universe sets = { Setcover.universe; sets = Array.map Array.of_list (Array.of_list sets) }

let test_demand_cap () =
  let i = inst 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 1 ] ] in
  Alcotest.(check (array int)) "caps" [| 1; 3; 1 |] (Setcover.demand_cap i)

let test_demand_cap_dup_elements () =
  (* duplicates inside a set count once *)
  let i = inst 2 [ [ 0; 0; 1 ] ] in
  Alcotest.(check (array int)) "caps" [| 1; 1 |] (Setcover.demand_cap i)

let test_greedy_covers () =
  let i = inst 5 [ [ 0; 1 ]; [ 1; 2; 3 ]; [ 3; 4 ]; [ 0; 4 ] ] in
  let picks = Setcover.greedy i in
  check "is cover" true (Setcover.is_cover i ~k:1 picks)

let test_greedy_prefers_big_set () =
  let i = inst 4 [ [ 0 ]; [ 0; 1; 2; 3 ]; [ 1 ] ] in
  Alcotest.(check (list int)) "single pick" [ 1 ] (Setcover.greedy i)

let test_greedy_ignores_uncoverable () =
  let i = inst 3 [ [ 0 ] ] in
  let picks = Setcover.greedy i in
  check "covers what it can" true (Setcover.is_cover i ~k:1 picks);
  check_int "one set" 1 (List.length picks)

let test_greedy_empty_universe () =
  let i = inst 0 [ [] ] in
  Alcotest.(check (list int)) "nothing" [] (Setcover.greedy i)

let test_multicover_demands () =
  let i = inst 2 [ [ 0; 1 ]; [ 0; 1 ]; [ 0 ] ] in
  let picks = Setcover.greedy_multicover i ~k:2 in
  check "2-cover" true (Setcover.is_cover i ~k:2 picks);
  check_int "needs both big sets" 2 (List.length picks)

let test_multicover_capped_demand () =
  (* element 1 appears in one set only: demand capped at 1 *)
  let i = inst 2 [ [ 0 ]; [ 0 ]; [ 0; 1 ] ] in
  let picks = Setcover.greedy_multicover i ~k:3 in
  check "cover ok" true (Setcover.is_cover i ~k:3 picks);
  check_int "all three sets" 3 (List.length picks)

let test_is_cover_negative () =
  let i = inst 2 [ [ 0 ]; [ 1 ] ] in
  check "partial is not cover" false (Setcover.is_cover i ~k:1 [ 0 ])

let test_exact_minimum () =
  (* greedy can be fooled; exact must find the 2-set cover *)
  let i =
    inst 6 [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ] ]
  in
  match Setcover.exact i ~k:1 with
  | None -> Alcotest.fail "exact exhausted"
  | Some picks ->
      check_int "optimum 2" 2 (List.length picks);
      check "is cover" true (Setcover.is_cover i ~k:1 picks)

let test_exact_matches_greedy_when_tight () =
  let i = inst 3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  match Setcover.exact i ~k:1 with
  | None -> Alcotest.fail "exhausted"
  | Some picks -> check_int "needs all" 3 (List.length picks)

let test_exact_multicover () =
  let i = inst 2 [ [ 0; 1 ]; [ 0; 1 ]; [ 0 ]; [ 1 ] ] in
  match Setcover.exact i ~k:2 with
  | None -> Alcotest.fail "exhausted"
  | Some picks ->
      check_int "two sets suffice" 2 (List.length picks);
      check "valid" true (Setcover.is_cover i ~k:2 picks)

let test_exact_never_worse_than_greedy () =
  let rand = Rs_graph.Rand.create 42 in
  for _trial = 1 to 25 do
    let universe = 1 + Rs_graph.Rand.int rand 8 in
    let nsets = 1 + Rs_graph.Rand.int rand 8 in
    let sets =
      List.init nsets (fun _ ->
          List.filter (fun _ -> Rs_graph.Rand.bool rand) (List.init universe Fun.id))
    in
    let i = inst universe sets in
    let greedy = Setcover.greedy i in
    match Setcover.exact i ~k:1 with
    | None -> Alcotest.fail "exhausted on tiny instance"
    | Some opt ->
        check "exact <= greedy" true (List.length opt <= List.length greedy);
        check "exact is cover" true (Setcover.is_cover i ~k:1 opt)
  done

let test_exact_ratio_bound () =
  (* greedy within 1 + ln(n) of optimum on random instances *)
  let rand = Rs_graph.Rand.create 43 in
  for _trial = 1 to 15 do
    let universe = 6 + Rs_graph.Rand.int rand 6 in
    let nsets = 6 + Rs_graph.Rand.int rand 6 in
    let sets =
      List.init nsets (fun _ ->
          List.filter (fun _ -> Rs_graph.Rand.int rand 3 = 0) (List.init universe Fun.id))
    in
    let i = inst universe sets in
    let greedy = Setcover.greedy i in
    match Setcover.exact i ~k:1 with
    | None -> ()
    | Some opt ->
        if opt <> [] then begin
          let ratio = float_of_int (List.length greedy) /. float_of_int (List.length opt) in
          check "chvatal ratio" true (ratio <= 1.0 +. log (float_of_int universe) +. 1e-9)
        end
  done

let () =
  Alcotest.run "setcover"
    [
      ( "greedy",
        [
          Alcotest.test_case "demand cap" `Quick test_demand_cap;
          Alcotest.test_case "demand cap dups" `Quick test_demand_cap_dup_elements;
          Alcotest.test_case "covers" `Quick test_greedy_covers;
          Alcotest.test_case "prefers big set" `Quick test_greedy_prefers_big_set;
          Alcotest.test_case "ignores uncoverable" `Quick test_greedy_ignores_uncoverable;
          Alcotest.test_case "empty universe" `Quick test_greedy_empty_universe;
          Alcotest.test_case "multicover demands" `Quick test_multicover_demands;
          Alcotest.test_case "multicover capped" `Quick test_multicover_capped_demand;
          Alcotest.test_case "is_cover negative" `Quick test_is_cover_negative;
        ] );
      ( "exact",
        [
          Alcotest.test_case "finds optimum" `Quick test_exact_minimum;
          Alcotest.test_case "tight instance" `Quick test_exact_matches_greedy_when_tight;
          Alcotest.test_case "multicover" `Quick test_exact_multicover;
          Alcotest.test_case "never worse than greedy" `Quick test_exact_never_worse_than_greedy;
          Alcotest.test_case "greedy ratio vs optimum" `Quick test_exact_ratio_bound;
        ] );
    ]
