(* Tests for the LOCAL-model simulator. *)
open Rs_graph
module Sim = Rs_distributed.Sim
module Json = Rs_obs.Json
module Trace = Rs_obs.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A trivial protocol: each node sends its id once; state = ids heard. *)
let hello_protocol g =
  {
    Sim.init =
      (fun u ->
        ([], Array.to_list (Array.map (fun v -> (v, u)) (Graph.neighbors g u))));
    step = (fun _u heard ~inbox -> (List.map snd inbox @ heard, []));
    halted = (fun _ -> true);
    msg_size = (fun _ -> 1);
  }

let test_hello_learns_neighbors () =
  let g = Gen.cycle 5 in
  let states, stats = Sim.run g (hello_protocol g) ~max_rounds:5 in
  check_int "one round" 1 stats.Sim.rounds;
  check_int "messages = 2m" (2 * Graph.m g) stats.Sim.messages;
  Array.iteri
    (fun u heard ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d" u)
        (Array.to_list (Graph.neighbors g u))
        (List.sort compare heard))
    states

let test_send_to_non_neighbor_rejected () =
  let g = Gen.path_graph 3 in
  let bad =
    {
      Sim.init = (fun u -> ((), if u = 0 then [ (2, ()) ] else []));
      step = (fun _ s ~inbox:_ -> (s, []));
      halted = (fun _ -> true);
      msg_size = (fun _ -> 0);
    }
  in
  check "rejected" true
    (match Sim.run g bad ~max_rounds:2 with
    | _ -> false
    | exception Invalid_argument msg ->
        (* the message names both endpoints and the offending round *)
        let contains sub =
          let n = String.length msg and k = String.length sub in
          let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
          scan 0
        in
        contains "non-neighbor 2" && contains "in round 0")

let test_non_neighbor_round_in_message () =
  let g = Gen.path_graph 4 in
  (* legal in round 0, illegal from the step in round 1 onwards *)
  let bad =
    {
      Sim.init = (fun u -> ((), if u = 0 then [ (1, ()) ] else []));
      step = (fun u s ~inbox:_ -> (s, if u = 1 then [ (3, ()) ] else []));
      halted = (fun _ -> false);
      msg_size = (fun _ -> 0);
    }
  in
  check "round 1 reported" true
    (match Sim.run g bad ~max_rounds:3 with
    | _ -> false
    | exception Invalid_argument msg ->
        let n = String.length msg in
        let sub = "in round 1" in
        let k = String.length sub in
        let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
        scan 0)

let test_trace_totals_match_stats () =
  let g = Gen.grid 4 4 in
  let buf = Buffer.create 4096 in
  let sink = Trace.to_buffer buf in
  let _, stats = Sim.collect_neighborhoods ~trace:sink g ~radius:2 in
  Trace.close sink;
  let events =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j -> j
           | Error e -> Alcotest.fail ("unparseable trace line: " ^ e))
  in
  let field name j = Json.member name j in
  let kind j = match field "ev" j with Some (Json.String s) -> s | _ -> "?" in
  let int_field name j = match field name j with Some (Json.Int i) -> i | _ -> 0 in
  let sum_over ev name =
    List.fold_left (fun acc j -> if kind j = ev then acc + int_field name j else acc) 0 events
  in
  check_int "round_end messages sum to stats.messages" stats.Sim.messages
    (sum_over "round_end" "messages");
  check_int "round_end payload sums to stats.payload" stats.Sim.payload
    (sum_over "round_end" "payload");
  check_int "one send event per message" stats.Sim.messages
    (List.length (List.filter (fun j -> kind j = "send") events));
  check_int "round_start count = rounds" stats.Sim.rounds
    (List.length (List.filter (fun j -> kind j = "round_start") events));
  check_int "all nodes halt" (Graph.n g)
    (List.length (List.filter (fun j -> kind j = "halt") events));
  check_int "stats counts halted nodes" (Graph.n g) stats.Sim.halted_nodes;
  (* the busiest round reported in stats appears among the round_end events *)
  let max_msgs =
    List.fold_left
      (fun acc j -> if kind j = "round_end" then max acc (int_field "messages" j) else acc)
      0 events
  in
  check_int "max_round_messages" stats.Sim.max_round_messages max_msgs

let test_max_rounds_cutoff () =
  let g = Gen.cycle 4 in
  (* ping-pong forever *)
  let chatty =
    {
      Sim.init = (fun u -> ((), [ ((u + 1) mod 4, ()) ]));
      step = (fun u () ~inbox:_ -> ((), [ ((u + 1) mod 4, ()) ]));
      halted = (fun _ -> false);
      msg_size = (fun _ -> 1);
    }
  in
  let _, stats = Sim.run g chatty ~max_rounds:7 in
  check_int "cut" 7 stats.Sim.rounds

let dist_of_view g u view =
  (* recompute u's eccentricity knowledge from its collected edges *)
  let module M = Map.Make (Int) in
  ignore g;
  ignore u;
  Array.length view

let test_collect_radius0 () =
  let g = Gen.petersen () in
  let views, stats = Sim.collect_neighborhoods g ~radius:0 in
  check_int "no rounds" 0 stats.Sim.rounds;
  check_int "no messages" 0 stats.Sim.messages;
  Array.iteri
    (fun u view -> check_int (Printf.sprintf "own edges %d" u) (Graph.degree g u) (dist_of_view g u view))
    views

let test_collect_radius1_knows_neighbors_edges () =
  let g = Gen.cycle 6 in
  let views, stats = Sim.collect_neighborhoods g ~radius:1 in
  check_int "rounds" 1 stats.Sim.rounds;
  (* each node sees edges incident to its closed neighborhood: on a
     cycle that is 4 edges *)
  Array.iter (fun view -> check_int "4 edges" 4 (Array.length view)) views

let test_collect_covers_ball () =
  let g = Gen.grid 4 5 in
  let radius = 2 in
  let views, _ = Sim.collect_neighborhoods g ~radius in
  Graph.iter_vertices
    (fun u ->
      let d = Bfs.dist g u in
      (* every edge with an endpoint within distance radius must be known *)
      let known = Hashtbl.create 64 in
      Array.iter (fun (a, b, _) -> Hashtbl.replace known (a, b) ()) views.(u);
      Graph.iter_edges
        (fun a b ->
          if min d.(a) d.(b) <= radius then
            check (Printf.sprintf "edge %d-%d known by %d" a b u) true
              (Hashtbl.mem known (a, b)))
        g)
    g

let test_collect_rounds_learned_are_tight () =
  let g = Gen.path_graph 7 in
  let views, _ = Sim.collect_neighborhoods g ~radius:3 in
  (* node 0: the edge (3,4) is incident to node 3 at distance 3 and is
     learned exactly at round 3 *)
  let found = ref (-1) in
  Array.iter (fun (a, b, r) -> if (a, b) = (3, 4) then found := r) views.(0);
  check_int "learned in round 3" 3 !found

let test_collect_whole_graph_when_radius_large () =
  let g = Gen.petersen () in
  let views, _ = Sim.collect_neighborhoods g ~radius:4 in
  Array.iter (fun view -> check_int "all edges" (Graph.m g) (Array.length view)) views

let test_collect_stats_scale_with_radius () =
  let g = Gen.grid 5 5 in
  let _, s1 = Sim.collect_neighborhoods g ~radius:1 in
  let _, s2 = Sim.collect_neighborhoods g ~radius:2 in
  check "more traffic at radius 2" true (s2.Sim.messages > s1.Sim.messages);
  check "payload grows" true (s2.Sim.payload > s1.Sim.payload)

let test_rounds_independent_of_n () =
  (* the "constant time" shape: rounds depend on the radius only *)
  let rounds n =
    let g = Gen.cycle n in
    let _, stats = Sim.collect_neighborhoods g ~radius:2 in
    stats.Sim.rounds
  in
  check_int "n=10" (rounds 10) (rounds 50);
  check_int "n=50" (rounds 50) (rounds 200)

(* ---------------------------------------------------------------- *)
(* Fault injection *)

module Fault = Rs_distributed.Fault

(* Reference copy of the pre-fault simulator (same pattern as
   test_hotpath): the [?faults:None] path of Sim.run must return
   exactly what this returns — states and every pre-fault stats
   field. *)
let ref_run g proto ~max_rounds =
  let n = Graph.n g in
  let states = Array.make n None in
  let outboxes = Array.make n [] in
  for u = 0 to n - 1 do
    let st, sends = proto.Sim.init u in
    states.(u) <- Some st;
    outboxes.(u) <- sends
  done;
  let messages = ref 0 and payload = ref 0 and rounds = ref 0 in
  let max_round_messages = ref 0 and max_round_payload = ref 0 in
  let in_flight () = Array.exists (fun o -> o <> []) outboxes in
  let all_halted () =
    Array.for_all (function Some st -> proto.Sim.halted st | None -> true) states
  in
  while !rounds < max_rounds && (in_flight () || not (all_halted ())) do
    incr rounds;
    let round_messages = ref 0 and round_payload = ref 0 in
    let inboxes = Array.make n [] in
    Array.iteri
      (fun u sends ->
        List.iter
          (fun (v, msg) ->
            incr messages;
            incr round_messages;
            let size = proto.Sim.msg_size msg in
            payload := !payload + size;
            round_payload := !round_payload + size;
            inboxes.(v) <- (u, msg) :: inboxes.(v))
          sends)
      outboxes;
    Array.fill outboxes 0 n [];
    for u = 0 to n - 1 do
      match states.(u) with
      | None -> ()
      | Some st ->
          if inboxes.(u) <> [] || not (proto.Sim.halted st) then begin
            let st', sends = proto.Sim.step u st ~inbox:inboxes.(u) in
            states.(u) <- Some st';
            outboxes.(u) <- sends
          end
    done;
    max_round_messages := max !max_round_messages !round_messages;
    max_round_payload := max !max_round_payload !round_payload
  done;
  let final = Array.map (function Some st -> st | None -> assert false) states in
  let halted_nodes =
    Array.fold_left (fun acc st -> if proto.Sim.halted st then acc + 1 else acc) 0 final
  in
  ( final,
    (!rounds, !messages, !payload, !max_round_messages, !max_round_payload, halted_nodes) )

type ref_collect_state = {
  rc_known : (int * int, int) Hashtbl.t;
  mutable rc_round : int;
  rc_budget : int;
}

let ref_collect g ~radius =
  let canonical u v = if u < v then (u, v) else (v, u) in
  let proto =
    {
      Sim.init =
        (fun u ->
          let known = Hashtbl.create 64 in
          Array.iter
            (fun v -> Hashtbl.replace known (canonical u v) 0)
            (Graph.neighbors g u);
          let st = { rc_known = known; rc_round = 0; rc_budget = radius } in
          let batch = Hashtbl.fold (fun e _ acc -> e :: acc) known [] in
          let sends =
            if radius = 0 then []
            else Array.to_list (Array.map (fun v -> (v, batch)) (Graph.neighbors g u))
          in
          (st, sends));
      step =
        (fun u st ~inbox ->
          st.rc_round <- st.rc_round + 1;
          let fresh = ref [] in
          List.iter
            (fun (_, batch) ->
              List.iter
                (fun e ->
                  if not (Hashtbl.mem st.rc_known e) then begin
                    Hashtbl.replace st.rc_known e st.rc_round;
                    fresh := e :: !fresh
                  end)
                batch)
            inbox;
          let sends =
            if st.rc_round >= st.rc_budget || !fresh = [] then []
            else Array.to_list (Array.map (fun v -> (v, !fresh)) (Graph.neighbors g u))
          in
          (st, sends));
      halted = (fun st -> st.rc_round >= st.rc_budget);
      msg_size = List.length;
    }
  in
  let states, stats = ref_run g proto ~max_rounds:(radius + 1) in
  let views =
    Array.map
      (fun st ->
        Hashtbl.fold (fun (a, b) r acc -> (a, b, r) :: acc) st.rc_known []
        |> List.sort compare |> Array.of_list)
      states
  in
  (views, stats)

let fault_test_graphs () =
  [
    ("cycle11", Gen.cycle 11);
    ("grid4x5", Gen.grid 4 5);
    ("gnp24", Gen.erdos_renyi (Rand.create 91) 24 0.15);
    ("conn20", Gen.random_connected (Rand.create 93) 20 0.12);
  ]

let test_no_faults_byte_identical () =
  List.iter
    (fun (name, g) ->
      let views, stats = Sim.collect_neighborhoods g ~radius:2 in
      let ref_views, (rounds, messages, payload, mrm, mrp, halted) =
        ref_collect g ~radius:2
      in
      check (name ^ " views identical") true (views = ref_views);
      check_int (name ^ " rounds") rounds stats.Sim.rounds;
      check_int (name ^ " messages") messages stats.Sim.messages;
      check_int (name ^ " payload") payload stats.Sim.payload;
      check_int (name ^ " max_round_messages") mrm stats.Sim.max_round_messages;
      check_int (name ^ " max_round_payload") mrp stats.Sim.max_round_payload;
      check_int (name ^ " halted") halted stats.Sim.halted_nodes;
      check_int (name ^ " no drops") 0 stats.Sim.dropped;
      check_int (name ^ " no dups") 0 stats.Sim.duplicated;
      check_int (name ^ " no delays") 0 stats.Sim.delayed;
      (* same for a hand-written protocol *)
      let s1, _ = Sim.run g (hello_protocol g) ~max_rounds:5 in
      let s2, _ = ref_run g (hello_protocol g) ~max_rounds:5 in
      check (name ^ " hello states identical") true (s1 = s2))
    (fault_test_graphs ())

let test_fault_seed_reproducible () =
  let g = Gen.grid 4 5 in
  let plan () = Fault.make ~drop:0.3 ~dup:0.2 ~delay:1 ~jitter:1 ~seed:5 () in
  let r1 = Sim.collect_neighborhoods ~faults:(plan ()) g ~radius:2 in
  let r2 = Sim.collect_neighborhoods ~faults:(plan ()) g ~radius:2 in
  check "same seed, same run" true (r1 = r2);
  let r3 =
    Sim.collect_neighborhoods
      ~faults:(Fault.make ~drop:0.3 ~dup:0.2 ~delay:1 ~jitter:1 ~seed:6 ())
      g ~radius:2
  in
  check "different seed differs" true (r1 <> r3)

let test_drop_all_isolates () =
  let g = Gen.grid 4 4 in
  let views, stats =
    Sim.collect_neighborhoods ~faults:(Fault.make ~drop:1.0 ~seed:1 ()) g ~radius:2
  in
  check_int "nothing delivered" 0 stats.Sim.messages;
  check "drops counted" true (stats.Sim.dropped > 0);
  Array.iteri
    (fun u view ->
      check_int (Printf.sprintf "node %d keeps only its own edges" u)
        (Graph.degree g u) (Array.length view))
    views

let test_delay_defers_but_delivers () =
  let g = Gen.cycle 8 in
  let states, stats =
    Sim.run ~faults:(Fault.make ~delay:2 ~seed:3 ()) g (hello_protocol g) ~max_rounds:10
  in
  (* every transmission arrives two rounds late; quiescence must wait
     for the in-flight copies instead of stopping at round 1 *)
  check_int "delivery at round 3" 3 stats.Sim.rounds;
  check_int "all delivered" (2 * Graph.m g) stats.Sim.messages;
  check_int "all delayed" (2 * Graph.m g) stats.Sim.delayed;
  check_int "none dropped" 0 stats.Sim.dropped;
  Array.iteri
    (fun u heard ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d heard everyone" u)
        (Array.to_list (Graph.neighbors g u))
        (List.sort compare heard))
    states

let test_dup_doubles_delivery () =
  let g = Gen.cycle 6 in
  let states, stats =
    Sim.run ~faults:(Fault.make ~dup:1.0 ~seed:4 ()) g (hello_protocol g) ~max_rounds:5
  in
  check_int "every transmission doubled" (4 * Graph.m g) stats.Sim.messages;
  check_int "dups counted" (2 * Graph.m g) stats.Sim.duplicated;
  Array.iteri
    (fun u heard ->
      let nbrs = Array.to_list (Graph.neighbors g u) in
      Alcotest.(check (list int))
        (Printf.sprintf "node %d heard everyone twice" u)
        (List.sort compare (nbrs @ nbrs))
        (List.sort compare heard))
    states

let test_crash_silences_node () =
  let g = Gen.cycle 6 in
  let faults =
    Fault.make ~crashes:[ { Fault.node = 0; at = 0; recover = None } ] ~seed:1 ()
  in
  let states, stats = Sim.run ~faults g (hello_protocol g) ~max_rounds:5 in
  (* node 0's two sends and its neighbors' two sends to it are lost *)
  check_int "delivered" ((2 * Graph.m g) - 4) stats.Sim.messages;
  check_int "dropped" 4 stats.Sim.dropped;
  check "crashed node heard nothing" true (states.(0) = []);
  Alcotest.(check (list int)) "neighbor 1 heard only 2" [ 2 ] (List.sort compare states.(1));
  Alcotest.(check (list int)) "neighbor 5 heard only 4" [ 4 ] (List.sort compare states.(5))

let test_flap_blocks_link () =
  let g = Gen.path_graph 3 in
  (* link 0-1 is down exactly at round 1, the only delivery round *)
  let faults =
    Fault.make ~flaps:[ { Fault.u = 0; v = 1; down = 1; up = 2 } ] ~seed:1 ()
  in
  let states, stats = Sim.run ~faults g (hello_protocol g) ~max_rounds:5 in
  check_int "two transmissions lost on the flapped link" 2 stats.Sim.dropped;
  check_int "the 1-2 link still carries" 2 stats.Sim.messages;
  check "0 heard nothing" true (states.(0) = []);
  Alcotest.(check (list int)) "1 heard only 2" [ 2 ] (List.sort compare states.(1));
  Alcotest.(check (list int)) "2 heard 1" [ 1 ] (List.sort compare states.(2))

let test_crash_recover_trace_events () =
  let g = Gen.cycle 4 in
  let chatty =
    {
      Sim.init = (fun u -> ((), [ ((u + 1) mod 4, ()) ]));
      step = (fun u () ~inbox:_ -> ((), [ ((u + 1) mod 4, ()) ]));
      halted = (fun _ -> false);
      msg_size = (fun _ -> 1);
    }
  in
  let faults =
    Fault.make ~crashes:[ { Fault.node = 0; at = 2; recover = Some 4 } ] ~seed:1 ()
  in
  let buf = Buffer.create 4096 in
  let sink = Trace.to_buffer buf in
  let _ = Sim.run ~trace:sink ~faults g chatty ~max_rounds:6 in
  Trace.close sink;
  let events =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j -> j
           | Error e -> Alcotest.fail ("unparseable trace line: " ^ e))
  in
  let kind j = match Json.member "ev" j with Some (Json.String s) -> s | _ -> "?" in
  let int_field name j = match Json.member name j with Some (Json.Int i) -> i | _ -> -1 in
  let find ev =
    List.filter (fun j -> kind j = ev) events
    |> List.map (fun j -> (int_field "round" j, int_field "node" j))
  in
  check "crash event at round 2" true (List.mem (2, 0) (find "crash"));
  check "recover event at round 4" true (List.mem (4, 0) (find "recover"));
  check "drop events carry a reason" true
    (List.for_all
       (fun j ->
         match Json.member "reason" j with
         | Some (Json.String ("loss" | "link" | "crash")) -> true
         | _ -> false)
       (List.filter (fun j -> kind j = "drop") events))

let () =
  Alcotest.run "distributed"
    [
      ( "sim",
        [
          Alcotest.test_case "hello exchanges ids" `Quick test_hello_learns_neighbors;
          Alcotest.test_case "non-neighbor send rejected" `Quick test_send_to_non_neighbor_rejected;
          Alcotest.test_case "non-neighbor error names the round" `Quick test_non_neighbor_round_in_message;
          Alcotest.test_case "trace totals match stats" `Quick test_trace_totals_match_stats;
          Alcotest.test_case "max_rounds cutoff" `Quick test_max_rounds_cutoff;
        ] );
      ( "collect",
        [
          Alcotest.test_case "radius 0" `Quick test_collect_radius0;
          Alcotest.test_case "radius 1" `Quick test_collect_radius1_knows_neighbors_edges;
          Alcotest.test_case "covers the ball" `Quick test_collect_covers_ball;
          Alcotest.test_case "round labels tight" `Quick test_collect_rounds_learned_are_tight;
          Alcotest.test_case "large radius = whole graph" `Quick test_collect_whole_graph_when_radius_large;
          Alcotest.test_case "traffic grows with radius" `Quick test_collect_stats_scale_with_radius;
          Alcotest.test_case "rounds independent of n" `Quick test_rounds_independent_of_n;
        ] );
      ( "faults",
        [
          Alcotest.test_case "no faults = byte-identical" `Quick test_no_faults_byte_identical;
          Alcotest.test_case "seed reproducible" `Quick test_fault_seed_reproducible;
          Alcotest.test_case "drop=1 isolates" `Quick test_drop_all_isolates;
          Alcotest.test_case "delay defers but delivers" `Quick test_delay_defers_but_delivers;
          Alcotest.test_case "dup doubles delivery" `Quick test_dup_doubles_delivery;
          Alcotest.test_case "crash silences a node" `Quick test_crash_silences_node;
          Alcotest.test_case "flap blocks a link" `Quick test_flap_blocks_link;
          Alcotest.test_case "crash/recover traced" `Quick test_crash_recover_trace_events;
        ] );
    ]
