(* Tests for the LOCAL-model simulator. *)
open Rs_graph
module Sim = Rs_distributed.Sim
module Json = Rs_obs.Json
module Trace = Rs_obs.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A trivial protocol: each node sends its id once; state = ids heard. *)
let hello_protocol g =
  {
    Sim.init =
      (fun u ->
        ([], Array.to_list (Array.map (fun v -> (v, u)) (Graph.neighbors g u))));
    step = (fun _u heard ~inbox -> (List.map snd inbox @ heard, []));
    halted = (fun _ -> true);
    msg_size = (fun _ -> 1);
  }

let test_hello_learns_neighbors () =
  let g = Gen.cycle 5 in
  let states, stats = Sim.run g (hello_protocol g) ~max_rounds:5 in
  check_int "one round" 1 stats.Sim.rounds;
  check_int "messages = 2m" (2 * Graph.m g) stats.Sim.messages;
  Array.iteri
    (fun u heard ->
      Alcotest.(check (list int))
        (Printf.sprintf "node %d" u)
        (Array.to_list (Graph.neighbors g u))
        (List.sort compare heard))
    states

let test_send_to_non_neighbor_rejected () =
  let g = Gen.path_graph 3 in
  let bad =
    {
      Sim.init = (fun u -> ((), if u = 0 then [ (2, ()) ] else []));
      step = (fun _ s ~inbox:_ -> (s, []));
      halted = (fun _ -> true);
      msg_size = (fun _ -> 0);
    }
  in
  check "rejected" true
    (match Sim.run g bad ~max_rounds:2 with
    | _ -> false
    | exception Invalid_argument msg ->
        (* the message names both endpoints and the offending round *)
        let contains sub =
          let n = String.length msg and k = String.length sub in
          let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
          scan 0
        in
        contains "non-neighbor 2" && contains "in round 0")

let test_non_neighbor_round_in_message () =
  let g = Gen.path_graph 4 in
  (* legal in round 0, illegal from the step in round 1 onwards *)
  let bad =
    {
      Sim.init = (fun u -> ((), if u = 0 then [ (1, ()) ] else []));
      step = (fun u s ~inbox:_ -> (s, if u = 1 then [ (3, ()) ] else []));
      halted = (fun _ -> false);
      msg_size = (fun _ -> 0);
    }
  in
  check "round 1 reported" true
    (match Sim.run g bad ~max_rounds:3 with
    | _ -> false
    | exception Invalid_argument msg ->
        let n = String.length msg in
        let sub = "in round 1" in
        let k = String.length sub in
        let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
        scan 0)

let test_trace_totals_match_stats () =
  let g = Gen.grid 4 4 in
  let buf = Buffer.create 4096 in
  let sink = Trace.to_buffer buf in
  let _, stats = Sim.collect_neighborhoods ~trace:sink g ~radius:2 in
  Trace.close sink;
  let events =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j -> j
           | Error e -> Alcotest.fail ("unparseable trace line: " ^ e))
  in
  let field name j = Json.member name j in
  let kind j = match field "ev" j with Some (Json.String s) -> s | _ -> "?" in
  let int_field name j = match field name j with Some (Json.Int i) -> i | _ -> 0 in
  let sum_over ev name =
    List.fold_left (fun acc j -> if kind j = ev then acc + int_field name j else acc) 0 events
  in
  check_int "round_end messages sum to stats.messages" stats.Sim.messages
    (sum_over "round_end" "messages");
  check_int "round_end payload sums to stats.payload" stats.Sim.payload
    (sum_over "round_end" "payload");
  check_int "one send event per message" stats.Sim.messages
    (List.length (List.filter (fun j -> kind j = "send") events));
  check_int "round_start count = rounds" stats.Sim.rounds
    (List.length (List.filter (fun j -> kind j = "round_start") events));
  check_int "all nodes halt" (Graph.n g)
    (List.length (List.filter (fun j -> kind j = "halt") events));
  check_int "stats counts halted nodes" (Graph.n g) stats.Sim.halted_nodes;
  (* the busiest round reported in stats appears among the round_end events *)
  let max_msgs =
    List.fold_left
      (fun acc j -> if kind j = "round_end" then max acc (int_field "messages" j) else acc)
      0 events
  in
  check_int "max_round_messages" stats.Sim.max_round_messages max_msgs

let test_max_rounds_cutoff () =
  let g = Gen.cycle 4 in
  (* ping-pong forever *)
  let chatty =
    {
      Sim.init = (fun u -> ((), [ ((u + 1) mod 4, ()) ]));
      step = (fun u () ~inbox:_ -> ((), [ ((u + 1) mod 4, ()) ]));
      halted = (fun _ -> false);
      msg_size = (fun _ -> 1);
    }
  in
  let _, stats = Sim.run g chatty ~max_rounds:7 in
  check_int "cut" 7 stats.Sim.rounds

let dist_of_view g u view =
  (* recompute u's eccentricity knowledge from its collected edges *)
  let module M = Map.Make (Int) in
  ignore g;
  ignore u;
  Array.length view

let test_collect_radius0 () =
  let g = Gen.petersen () in
  let views, stats = Sim.collect_neighborhoods g ~radius:0 in
  check_int "no rounds" 0 stats.Sim.rounds;
  check_int "no messages" 0 stats.Sim.messages;
  Array.iteri
    (fun u view -> check_int (Printf.sprintf "own edges %d" u) (Graph.degree g u) (dist_of_view g u view))
    views

let test_collect_radius1_knows_neighbors_edges () =
  let g = Gen.cycle 6 in
  let views, stats = Sim.collect_neighborhoods g ~radius:1 in
  check_int "rounds" 1 stats.Sim.rounds;
  (* each node sees edges incident to its closed neighborhood: on a
     cycle that is 4 edges *)
  Array.iter (fun view -> check_int "4 edges" 4 (Array.length view)) views

let test_collect_covers_ball () =
  let g = Gen.grid 4 5 in
  let radius = 2 in
  let views, _ = Sim.collect_neighborhoods g ~radius in
  Graph.iter_vertices
    (fun u ->
      let d = Bfs.dist g u in
      (* every edge with an endpoint within distance radius must be known *)
      let known = Hashtbl.create 64 in
      Array.iter (fun (a, b, _) -> Hashtbl.replace known (a, b) ()) views.(u);
      Graph.iter_edges
        (fun a b ->
          if min d.(a) d.(b) <= radius then
            check (Printf.sprintf "edge %d-%d known by %d" a b u) true
              (Hashtbl.mem known (a, b)))
        g)
    g

let test_collect_rounds_learned_are_tight () =
  let g = Gen.path_graph 7 in
  let views, _ = Sim.collect_neighborhoods g ~radius:3 in
  (* node 0: the edge (3,4) is incident to node 3 at distance 3 and is
     learned exactly at round 3 *)
  let found = ref (-1) in
  Array.iter (fun (a, b, r) -> if (a, b) = (3, 4) then found := r) views.(0);
  check_int "learned in round 3" 3 !found

let test_collect_whole_graph_when_radius_large () =
  let g = Gen.petersen () in
  let views, _ = Sim.collect_neighborhoods g ~radius:4 in
  Array.iter (fun view -> check_int "all edges" (Graph.m g) (Array.length view)) views

let test_collect_stats_scale_with_radius () =
  let g = Gen.grid 5 5 in
  let _, s1 = Sim.collect_neighborhoods g ~radius:1 in
  let _, s2 = Sim.collect_neighborhoods g ~radius:2 in
  check "more traffic at radius 2" true (s2.Sim.messages > s1.Sim.messages);
  check "payload grows" true (s2.Sim.payload > s1.Sim.payload)

let test_rounds_independent_of_n () =
  (* the "constant time" shape: rounds depend on the radius only *)
  let rounds n =
    let g = Gen.cycle n in
    let _, stats = Sim.collect_neighborhoods g ~radius:2 in
    stats.Sim.rounds
  in
  check_int "n=10" (rounds 10) (rounds 50);
  check_int "n=50" (rounds 50) (rounds 200)

let () =
  Alcotest.run "distributed"
    [
      ( "sim",
        [
          Alcotest.test_case "hello exchanges ids" `Quick test_hello_learns_neighbors;
          Alcotest.test_case "non-neighbor send rejected" `Quick test_send_to_non_neighbor_rejected;
          Alcotest.test_case "non-neighbor error names the round" `Quick test_non_neighbor_round_in_message;
          Alcotest.test_case "trace totals match stats" `Quick test_trace_totals_match_stats;
          Alcotest.test_case "max_rounds cutoff" `Quick test_max_rounds_cutoff;
        ] );
      ( "collect",
        [
          Alcotest.test_case "radius 0" `Quick test_collect_radius0;
          Alcotest.test_case "radius 1" `Quick test_collect_radius1_knows_neighbors_edges;
          Alcotest.test_case "covers the ball" `Quick test_collect_covers_ball;
          Alcotest.test_case "round labels tight" `Quick test_collect_rounds_learned_are_tight;
          Alcotest.test_case "large radius = whole graph" `Quick test_collect_whole_graph_when_radius_large;
          Alcotest.test_case "traffic grows with radius" `Quick test_collect_stats_scale_with_radius;
          Alcotest.test_case "rounds independent of n" `Quick test_rounds_independent_of_n;
        ] );
    ]
