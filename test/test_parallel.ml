(* Tests for the multicore construction path and the stretch
   histogram. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let big = udg 131 400
let small = Gen.petersen ()

let test_parallel_equals_sequential () =
  List.iter
    (fun (name, par, seq) ->
      check (name ^ " identical") true (Edge_set.equal (par big) (seq big));
      check (name ^ " identical small") true (Edge_set.equal (par small) (seq small)))
    [
      ( "exact",
        (fun g -> Parallel.exact_distance ~domains:4 g),
        Remote_spanner.exact_distance );
      ( "low-stretch",
        (fun g -> Parallel.low_stretch ~domains:4 g ~eps:0.5),
        fun g -> Remote_spanner.low_stretch g ~eps:0.5 );
      ( "k-conn",
        (fun g -> Parallel.k_connecting ~domains:4 g ~k:2),
        fun g -> Remote_spanner.k_connecting g ~k:2 );
      ( "2-conn",
        (fun g -> Parallel.two_connecting ~domains:4 g),
        Remote_spanner.two_connecting );
    ]

let test_parallel_domain_counts () =
  (* result independent of the domain count *)
  let reference = Parallel.exact_distance ~domains:1 big in
  List.iter
    (fun d ->
      check
        (Printf.sprintf "domains=%d" d)
        true
        (Edge_set.equal reference (Parallel.exact_distance ~domains:d big)))
    [ 2; 3; 5; 7; 16 ]

let test_parallel_empty_and_tiny () =
  let g0 = Gen.empty 0 in
  check_int "empty" 0 (Edge_set.cardinal (Parallel.exact_distance ~domains:4 g0));
  let g1 = Gen.path_graph 3 in
  check "tiny equals seq" true
    (Edge_set.equal
       (Parallel.exact_distance ~domains:4 g1)
       (Remote_spanner.exact_distance g1))

let test_default_domains_positive () =
  check "positive" true (Parallel.default_domains () >= 1)

let test_parallel_verify_agrees () =
  (* positive and negative cases, across domain counts *)
  let g = big in
  let good = Remote_spanner.low_stretch g ~eps:0.5 in
  let bad = Edge_set.copy good in
  (* break it: drop a third of its edges *)
  let rand = Rand.create 7 in
  Edge_set.iter (fun u v -> if Rand.int rand 3 = 0 then Edge_set.remove bad u v) good;
  List.iter
    (fun d ->
      check "good agrees" true
        (Parallel.is_remote_spanner ~domains:d g good ~alpha:1.5 ~beta:0.0
        = Verify.is_remote_spanner g good ~alpha:1.5 ~beta:0.0);
      check "bad agrees" true
        (Parallel.is_remote_spanner ~domains:d g bad ~alpha:1.5 ~beta:0.0
        = Verify.is_remote_spanner g bad ~alpha:1.5 ~beta:0.0))
    [ 1; 3; 6 ]

(* ---------------------------------------------------------------- *)
(* stretch histogram *)

let test_histogram_exact_spanner () =
  let g = udg 133 60 in
  let h = Remote_spanner.exact_distance g in
  let hist = Verify.stretch_histogram g h in
  check_int "all exact" hist.Verify.pairs (hist.Verify.exact + hist.Verify.unreachable);
  check_int "no unreachable among connected" 0 hist.Verify.unreachable;
  Alcotest.(check (float 1e-9)) "ratio 1" 1.0 hist.Verify.mean_ratio;
  Alcotest.(check (list (pair int int))) "single bucket"
    [ (0, hist.Verify.pairs) ] hist.Verify.slack_counts

let test_histogram_detours_counted () =
  let g = Gen.cycle 10 in
  let h = Remote_spanner.low_stretch g ~eps:1.0 in
  let hist = Verify.stretch_histogram g h in
  check "pairs counted" true (hist.Verify.pairs > 0);
  let total = List.fold_left (fun a (_, c) -> a + c) 0 hist.Verify.slack_counts in
  check_int "buckets sum to reachable" (hist.Verify.pairs - hist.Verify.unreachable) total;
  check "mean ratio within guarantee" true (hist.Verify.mean_ratio <= 2.0)

let test_histogram_empty_h () =
  let g = Gen.path_graph 6 in
  let h = Edge_set.create g in
  let hist = Verify.stretch_histogram g h in
  (* only distance-1 neighbors are reachable via the free hop, and they
     are not counted (pairs are non-adjacent); everything else lost *)
  check_int "all unreachable" hist.Verify.pairs hist.Verify.unreachable

let () =
  Alcotest.run "parallel"
    [
      ( "domains",
        [
          Alcotest.test_case "par = seq" `Quick test_parallel_equals_sequential;
          Alcotest.test_case "any domain count" `Quick test_parallel_domain_counts;
          Alcotest.test_case "empty and tiny" `Quick test_parallel_empty_and_tiny;
          Alcotest.test_case "default domains" `Quick test_default_domains_positive;
          Alcotest.test_case "parallel verify agrees" `Quick test_parallel_verify_agrees;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact spanner" `Quick test_histogram_exact_spanner;
          Alcotest.test_case "detours counted" `Quick test_histogram_detours_counted;
          Alcotest.test_case "empty H" `Quick test_histogram_empty_h;
        ] );
    ]
