(* Unit tests for the graph substrate: Graph, Edge_set, Bfs, Path, Tree. *)
open Rs_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let petersen = Gen.petersen ()
let p5 = Gen.path_graph 5
let c6 = Gen.cycle 6
let k5 = Gen.complete 5

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_make_dedup () =
  let g = Graph.make ~n:3 [ (0, 1); (1, 0); (1, 2); (1, 2) ] in
  check_int "m" 2 (Graph.m g);
  check "mem 0 1" true (Graph.mem_edge g 0 1);
  check "mem 1 0" true (Graph.mem_edge g 1 0);
  check "mem 0 2" false (Graph.mem_edge g 0 2)

let test_make_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.make: self-loop at 1")
    (fun () -> ignore (Graph.make ~n:3 [ (1, 1) ]))

let test_make_rejects_range () =
  match Graph.make ~n:3 [ (0, 3) ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_neighbors_sorted () =
  let g = Graph.make ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_degrees () =
  check_int "deg path end" 1 (Graph.degree p5 0);
  check_int "deg path mid" 2 (Graph.degree p5 2);
  check_int "max deg k5" 4 (Graph.max_degree k5);
  check_int "petersen 3-regular" 3 (Graph.max_degree petersen)

let test_edge_ids_roundtrip () =
  Graph.iter_edges
    (fun u v ->
      let id = Graph.edge_id petersen u v in
      Alcotest.(check (pair int int)) "roundtrip" (u, v) (Graph.edge petersen id))
    petersen

let test_edge_id_symmetric () =
  check_int "id sym" (Graph.edge_id p5 0 1) (Graph.edge_id p5 1 0)

let test_edge_id_missing () =
  check "raises" true
    (match Graph.edge_id p5 0 4 with _ -> false | exception Not_found -> true)

let test_induced () =
  let h, back = Graph.induced petersen [| 0; 1; 2; 5 |] in
  check_int "n" 4 (Graph.n h);
  (* edges among {0,1,2,5}: 0-1, 1-2, 0-5 *)
  check_int "m" 3 (Graph.m h);
  Alcotest.(check (array int)) "back" [| 0; 1; 2; 5 |] back

let test_remove_vertex () =
  let g = Graph.remove_vertex k5 0 in
  check_int "n unchanged" 5 (Graph.n g);
  check_int "m" 6 (Graph.m g);
  check_int "isolated" 0 (Graph.degree g 0)

let test_union_edges () =
  let g = Graph.union_edges p5 [ (0, 4) ] in
  check_int "m" 5 (Graph.m g);
  check "new edge" true (Graph.mem_edge g 0 4)

let test_equal () =
  check "equal self" true (Graph.equal p5 (Gen.path_graph 5));
  check "not equal" false (Graph.equal p5 c6)

(* ------------------------------------------------------------------ *)
(* Edge_set *)

let test_edge_set_basic () =
  let s = Edge_set.create p5 in
  check_int "empty" 0 (Edge_set.cardinal s);
  Edge_set.add s 0 1;
  Edge_set.add s 1 0;
  check_int "idempotent add" 1 (Edge_set.cardinal s);
  check "mem" true (Edge_set.mem s 1 0);
  Edge_set.remove s 0 1;
  check_int "removed" 0 (Edge_set.cardinal s)

let test_edge_set_full_and_subset () =
  let f = Edge_set.full c6 in
  check_int "full card" 6 (Edge_set.cardinal f);
  let s = Edge_set.create c6 in
  Edge_set.add s 0 1;
  check "subset" true (Edge_set.subset s f);
  check "not superset" false (Edge_set.subset f s)

let test_edge_set_union_into () =
  let a = Edge_set.create c6 and b = Edge_set.create c6 in
  Edge_set.add a 0 1;
  Edge_set.add b 1 2;
  Edge_set.add b 0 1;
  Edge_set.union_into a b;
  check_int "union card" 2 (Edge_set.cardinal a)

let test_edge_set_adjacency () =
  let s = Edge_set.create petersen in
  Edge_set.add s 0 1;
  Edge_set.add s 0 5;
  let adj = Edge_set.to_adjacency s in
  Alcotest.(check (array int)) "adj 0" [| 1; 5 |] adj.(0);
  Alcotest.(check (array int)) "adj 1" [| 0 |] adj.(1);
  Alcotest.(check (array int)) "adj 2" [||] adj.(2)

let test_edge_set_to_graph () =
  let s = Edge_set.create petersen in
  Edge_set.add s 0 1;
  let g = Edge_set.to_graph s in
  check_int "n preserved" 10 (Graph.n g);
  check_int "m" 1 (Graph.m g)

let test_edge_set_mem_nonedge () =
  let s = Edge_set.full p5 in
  check "non-edge" false (Edge_set.mem s 0 4)

(* ------------------------------------------------------------------ *)
(* Bfs *)

let test_bfs_path_distances () =
  let d = Bfs.dist p5 0 in
  Alcotest.(check (array int)) "dists" [| 0; 1; 2; 3; 4 |] d

let test_bfs_radius () =
  let d = Bfs.dist ~radius:2 p5 0 in
  Alcotest.(check (array int)) "radius cut" [| 0; 1; 2; -1; -1 |] d

let test_bfs_unreachable () =
  let g = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  let d = Bfs.dist g 0 in
  Alcotest.(check (array int)) "components" [| 0; 1; -1; -1 |] d

let test_bfs_pair () =
  check_int "pair" 4 (Bfs.dist_pair p5 0 4);
  check_int "pair same" 0 (Bfs.dist_pair p5 2 2);
  let g = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  check_int "pair disconnected" (-1) (Bfs.dist_pair g 0 3)

let test_bfs_parents_deterministic () =
  let parent = Bfs.parents c6 0 in
  check_int "parent of 1" 0 parent.(1);
  check_int "parent of 5" 0 parent.(5);
  (* vertex 3 is reached through 2 (smallest-id BFS ordering) *)
  check_int "parent of 3" 2 parent.(3)

let test_ball_sphere () =
  let b = Bfs.ball petersen 0 1 in
  Alcotest.(check (array int)) "ball 1" [| 0; 1; 4; 5 |] b;
  let s = Bfs.sphere petersen 0 2 in
  check_int "sphere 2 size" 6 (Array.length s);
  let s1 = Bfs.sphere p5 0 3 in
  Alcotest.(check (array int)) "sphere path" [| 3 |] s1

let test_diameter () =
  check_int "path" 4 (Bfs.diameter p5);
  check_int "cycle" 3 (Bfs.diameter c6);
  check_int "complete" 1 (Bfs.diameter k5);
  check_int "petersen" 2 (Bfs.diameter petersen);
  let g = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  check_int "disconnected" (-1) (Bfs.diameter g)

let test_augmented_dist () =
  (* H = only edge (2,3) of the path; H_0 adds 0-1. d_{H_0}(0,1)=1,
     rest unreachable except via nothing. *)
  let h = Edge_set.create p5 in
  Edge_set.add h 2 3;
  let adj = Edge_set.to_adjacency h in
  let d = Bfs.augmented_dist p5 adj 0 in
  Alcotest.(check (array int)) "aug" [| 0; 1; -1; -1; -1 |] d

let test_augmented_dist_through_neighbors () =
  (* G = C6. H = all edges except 0-1 and 0-5. H_0 restores them. *)
  let h = Edge_set.full c6 in
  Edge_set.remove h 0 1;
  Edge_set.remove h 0 5;
  let adj = Edge_set.to_adjacency h in
  let d = Bfs.augmented_dist c6 adj 0 in
  Alcotest.(check (array int)) "aug full ring" [| 0; 1; 2; 3; 2; 1 |] d

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_basic () =
  check_int "len" 2 (Path.length [ 0; 1; 2 ]);
  check_int "len single" 0 (Path.length [ 3 ]);
  check_int "source" 0 (Path.source [ 0; 1; 2 ]);
  check_int "target" 2 (Path.target [ 0; 1; 2 ])

let test_path_valid () =
  check "valid" true (Path.is_valid p5 [ 0; 1; 2; 3 ]);
  check "broken edge" false (Path.is_valid p5 [ 0; 2 ]);
  check "repeat" false (Path.is_valid c6 [ 0; 1; 0 ]);
  check "empty" false (Path.is_valid p5 [])

let test_path_valid_in () =
  let h = Edge_set.create p5 in
  Edge_set.add h 0 1;
  check "in set" true (Path.is_valid_in h [ 0; 1 ]);
  check "not in set" false (Path.is_valid_in h [ 1; 2 ])

let test_path_internal () =
  Alcotest.(check (list int)) "internal" [ 1; 2 ] (Path.internal [ 0; 1; 2; 3 ]);
  Alcotest.(check (list int)) "internal short" [] (Path.internal [ 0; 1 ]);
  Alcotest.(check (list int)) "internal single" [] (Path.internal [ 7 ])

let test_path_disjoint () =
  check "disjoint" true (Path.pairwise_disjoint [ [ 0; 1; 5 ]; [ 0; 2; 5 ]; [ 0; 3; 5 ] ]);
  check "shared internal" false (Path.pairwise_disjoint [ [ 0; 1; 5 ]; [ 2; 1; 6 ] ]);
  check "shared endpoints ok" true (Path.pairwise_disjoint [ [ 0; 1; 5 ]; [ 0; 2; 5 ] ])

let test_path_concat () =
  Alcotest.(check (list int)) "concat" [ 0; 1; 2; 3 ] (Path.concat [ 0; 1; 2 ] [ 2; 3 ]);
  check "mismatch" true
    (match Path.concat [ 0; 1 ] [ 2; 3 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_path_of_parents () =
  let parent = Bfs.parents p5 0 in
  Alcotest.(check (list int)) "of_parents" [ 0; 1; 2; 3 ] (Path.of_parents parent 3)

(* ------------------------------------------------------------------ *)
(* Tree *)

let test_tree_basic () =
  let t = Tree.create ~n:6 ~root:2 in
  check_int "root" 2 (Tree.root t);
  check_int "size" 1 (Tree.size t);
  Tree.add_edge t ~parent:2 ~child:0;
  Tree.add_edge t ~parent:0 ~child:4;
  check_int "size 3" 3 (Tree.size t);
  check_int "edges" 2 (Tree.edge_count t);
  check_int "depth 4" 2 (Tree.depth t 4);
  check_int "first hop 4" 0 (Tree.first_hop t 4);
  Alcotest.(check (list int)) "path" [ 2; 0; 4 ] (Tree.path_from_root t 4)

let test_tree_readd_same_edge () =
  let t = Tree.create ~n:4 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  Tree.add_edge t ~parent:0 ~child:1;
  check_int "no dup" 2 (Tree.size t)

let test_tree_conflicting_parent () =
  let t = Tree.create ~n:4 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  Tree.add_edge t ~parent:0 ~child:2;
  Tree.add_edge t ~parent:1 ~child:3;
  check "conflict" true
    (match Tree.add_edge t ~parent:2 ~child:3 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_tree_graft () =
  let parent = Bfs.parents p5 0 in
  let t = Tree.create ~n:5 ~root:0 in
  Tree.graft_parents t parent 3;
  check_int "grafted size" 4 (Tree.size t);
  check_int "depth" 3 (Tree.depth t 3);
  (* second graft reuses the existing prefix *)
  Tree.graft_parents t parent 4;
  check_int "size after 2nd" 5 (Tree.size t)

let test_tree_edges_in () =
  let t = Tree.create ~n:5 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  check "in" true (Tree.edges_in p5 t);
  let t2 = Tree.create ~n:5 ~root:0 in
  Tree.add_edge t2 ~parent:0 ~child:3;
  check "not in" false (Tree.edges_in p5 t2)

let test_tree_add_to () =
  let t = Tree.create ~n:5 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  Tree.add_edge t ~parent:1 ~child:2;
  let s = Edge_set.create p5 in
  Tree.add_to s t;
  check_int "added" 2 (Edge_set.cardinal s)

(* ------------------------------------------------------------------ *)
(* Heap *)

module IntHeap = Heap.Make (Int)

let test_heap_sorts () =
  let h = IntHeap.create () in
  let rand = Rand.create 99 in
  let keys = Array.init 200 (fun _ -> Rand.int rand 1000) in
  Array.iteri (fun i k -> IntHeap.push h k i) keys;
  check_int "size" 200 (IntHeap.size h);
  let prev = ref min_int in
  let popped = ref 0 in
  let rec drain () =
    match IntHeap.pop h with
    | None -> ()
    | Some (k, _) ->
        check "ascending" true (k >= !prev);
        prev := k;
        incr popped;
        drain ()
  in
  drain ();
  check_int "all popped" 200 !popped

let test_heap_interleaved () =
  let h = IntHeap.create () in
  IntHeap.push h 5 0;
  IntHeap.push h 1 1;
  Alcotest.(check (option (pair int int))) "min first" (Some (1, 1)) (IntHeap.pop h);
  IntHeap.push h 3 2;
  IntHeap.push h 0 3;
  Alcotest.(check (option (pair int int))) "new min" (Some (0, 3)) (IntHeap.pop h);
  Alcotest.(check (option (pair int int))) "then 3" (Some (3, 2)) (IntHeap.pop h);
  Alcotest.(check (option (pair int int))) "then 5" (Some (5, 0)) (IntHeap.pop h);
  Alcotest.(check (option (pair int int))) "empty" None (IntHeap.pop h)

let test_heap_duplicates () =
  let h = IntHeap.create () in
  for i = 0 to 9 do
    IntHeap.push h 7 i
  done;
  let count = ref 0 in
  let rec drain () =
    match IntHeap.pop h with
    | Some (7, _) ->
        incr count;
        drain ()
    | Some _ -> Alcotest.fail "wrong key"
    | None -> ()
  in
  drain ();
  check_int "all ten" 10 !count

(* ------------------------------------------------------------------ *)
(* Rand *)

let test_rand_deterministic () =
  let a = Rand.create 42 and b = Rand.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rand.int a 1000) (Rand.int b 1000)
  done

let test_rand_bounds () =
  let r = Rand.create 7 in
  for _ = 1 to 1000 do
    let x = Rand.int r 10 in
    check "in range" true (x >= 0 && x < 10);
    let f = Rand.float r 2.5 in
    check "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rand_poisson_mean () =
  let r = Rand.create 3 in
  let trials = 2000 in
  let sum = ref 0 in
  for _ = 1 to trials do
    sum := !sum + Rand.poisson r 5.0
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  check "poisson mean near 5" true (mean > 4.5 && mean < 5.5)

let test_rand_shuffle_permutation () =
  let r = Rand.create 11 in
  let a = Array.init 50 Fun.id in
  Rand.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "make dedups" `Quick test_make_dedup;
          Alcotest.test_case "rejects self-loops" `Quick test_make_rejects_self_loop;
          Alcotest.test_case "rejects out-of-range" `Quick test_make_rejects_range;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "edge id roundtrip" `Quick test_edge_ids_roundtrip;
          Alcotest.test_case "edge id symmetric" `Quick test_edge_id_symmetric;
          Alcotest.test_case "edge id missing" `Quick test_edge_id_missing;
          Alcotest.test_case "induced subgraph" `Quick test_induced;
          Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
          Alcotest.test_case "union edges" `Quick test_union_edges;
          Alcotest.test_case "equality" `Quick test_equal;
        ] );
      ( "edge_set",
        [
          Alcotest.test_case "basic ops" `Quick test_edge_set_basic;
          Alcotest.test_case "full/subset" `Quick test_edge_set_full_and_subset;
          Alcotest.test_case "union_into" `Quick test_edge_set_union_into;
          Alcotest.test_case "to_adjacency" `Quick test_edge_set_adjacency;
          Alcotest.test_case "to_graph" `Quick test_edge_set_to_graph;
          Alcotest.test_case "mem non-edge" `Quick test_edge_set_mem_nonedge;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "path distances" `Quick test_bfs_path_distances;
          Alcotest.test_case "radius cut" `Quick test_bfs_radius;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "pair distance" `Quick test_bfs_pair;
          Alcotest.test_case "deterministic parents" `Quick test_bfs_parents_deterministic;
          Alcotest.test_case "ball and sphere" `Quick test_ball_sphere;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "augmented distances" `Quick test_augmented_dist;
          Alcotest.test_case "augmented via neighbors" `Quick test_augmented_dist_through_neighbors;
        ] );
      ( "path",
        [
          Alcotest.test_case "basics" `Quick test_path_basic;
          Alcotest.test_case "validity" `Quick test_path_valid;
          Alcotest.test_case "validity in set" `Quick test_path_valid_in;
          Alcotest.test_case "internal vertices" `Quick test_path_internal;
          Alcotest.test_case "disjointness" `Quick test_path_disjoint;
          Alcotest.test_case "concat" `Quick test_path_concat;
          Alcotest.test_case "of_parents" `Quick test_path_of_parents;
        ] );
      ( "tree",
        [
          Alcotest.test_case "basics" `Quick test_tree_basic;
          Alcotest.test_case "re-add same edge" `Quick test_tree_readd_same_edge;
          Alcotest.test_case "conflicting parent" `Quick test_tree_conflicting_parent;
          Alcotest.test_case "graft shortest paths" `Quick test_tree_graft;
          Alcotest.test_case "edges_in" `Quick test_tree_edges_in;
          Alcotest.test_case "add_to edge set" `Quick test_tree_add_to;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
        ] );
      ( "rand",
        [
          Alcotest.test_case "deterministic" `Quick test_rand_deterministic;
          Alcotest.test_case "bounds" `Quick test_rand_bounds;
          Alcotest.test_case "poisson mean" `Quick test_rand_poisson_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rand_shuffle_permutation;
        ] );
    ]
