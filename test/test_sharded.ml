(* Sharded batched construction: for every strategy the merged edge
   set must equal the per-root sequential reference exactly, for every
   domain count, batch width, root order and shard mode — and the
   results must satisfy the constructions' remote-spanner
   guarantees. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph_of_seed ~max_n seed =
  let rand = Rand.create seed in
  let n = 2 + Rand.int rand (max_n - 1) in
  match Rand.int rand 4 with
  | 0 -> Gen.erdos_renyi rand n (0.05 +. Rand.float rand 0.3)
  | 1 -> Gen.random_connected rand n 0.1
  | 2 ->
      let side = sqrt (float_of_int n /. 3.0) in
      let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
      Rs_geometry.Unit_ball.udg pts
  | _ -> Gen.random_tree rand n

let arb_graph ~max_n =
  QCheck2.Gen.map (graph_of_seed ~max_n) QCheck2.Gen.(int_range 0 1_000_000)

let make_test ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* the per-root sequential reference for each strategy *)
let reference g strat =
  let scratch = Bfs.Scratch.create () in
  let tree_of =
    match strat with
    | Sharded.Gdy { r; beta } -> fun u -> Dom_tree.gdy ~scratch g ~r ~beta u
    | Sharded.Mis { r } -> fun u -> Dom_tree.mis ~scratch g ~r u
    | Sharded.Gdy_k { k } -> fun u -> Dom_tree_k.gdy_k ~scratch g ~k u
  in
  Remote_spanner.union_trees g tree_of

let strategies =
  [
    ("gdy r3 b1", Sharded.Gdy { r = 3; beta = 1 });
    ("gdy r2 b0", Sharded.Gdy { r = 2; beta = 0 });
    ("mis r3", Sharded.Mis { r = 3 });
    ("gdy_k k1", Sharded.Gdy_k { k = 1 });
    ("gdy_k k2", Sharded.Gdy_k { k = 2 });
  ]

let prop_matches_reference g =
  List.for_all
    (fun (_, strat) ->
      Edge_set.equal (reference g strat) (Sharded.build ~domains:1 g strat))
    strategies

(* shard-merge determinism: same edge set for every domain count,
   batch width, root order and the local (halo sub-graph) mode *)
let prop_deterministic g =
  let strat = Sharded.Gdy_k { k = 1 } in
  let expect = reference g strat in
  let n = Graph.n g in
  let reversed = Array.init n (fun i -> n - 1 - i) in
  List.for_all
    (fun build -> Edge_set.equal expect (build ()))
    [
      (fun () -> Sharded.build ~domains:1 g strat);
      (fun () -> Sharded.build ~domains:2 g strat);
      (fun () -> Sharded.build ~domains:3 g strat);
      (fun () -> Sharded.build ~domains:5 g strat);
      (fun () -> Sharded.build ~domains:2 ~chunk:1 g strat);
      (fun () -> Sharded.build ~domains:2 ~chunk:7 g strat);
      (fun () -> Sharded.build ~domains:2 ~order:reversed g strat);
      (fun () -> Sharded.build ~domains:2 ~local:true g strat);
      (fun () -> Sharded.build ~domains:1 ~local:true ~chunk:5 g strat);
    ]

let prop_local_mode_all_strategies g =
  List.for_all
    (fun (_, strat) ->
      Edge_set.equal (reference g strat)
        (Sharded.build ~domains:2 ~local:true g strat))
    strategies

let prop_is_remote_spanner g =
  let h_exact = Sharded.build ~domains:2 g (Sharded.Gdy_k { k = 1 }) in
  let h_mis = Sharded.build ~domains:2 g (Sharded.Mis { r = 3 }) in
  Verify.is_remote_spanner g h_exact ~alpha:1.0 ~beta:0.0
  && Verify.is_remote_spanner g h_mis ~alpha:1.5 ~beta:0.0

let test_strategies_on_fixed_graphs () =
  let rand = Rand.create 77 in
  let side = sqrt (300.0 /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n:300 ~dim:2 ~side in
  let gs =
    [ ("udg300", Rs_geometry.Unit_ball.udg pts);
      ("petersen", Gen.petersen ());
      ("gnp", Gen.erdos_renyi (Rand.create 3) 120 0.06) ]
  in
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun (sname, strat) ->
          check
            (gname ^ " " ^ sname)
            true
            (Edge_set.equal (reference g strat) (Sharded.build g strat)))
        strategies)
    gs

let test_grid_order_is_permutation () =
  let rand = Rand.create 5 in
  let pts = Rs_geometry.Sampler.uniform rand ~n:200 ~dim:2 ~side:7.0 in
  let order = Rs_geometry.Proximity.grid_order pts in
  check_int "length" 200 (Array.length order);
  let seen = Array.make 200 false in
  Array.iter
    (fun v ->
      check "in range" true (v >= 0 && v < 200);
      check "no dup" false seen.(v);
      seen.(v) <- true)
    order;
  (* and it is a valid Sharded order producing the reference set *)
  let g = Rs_geometry.Unit_ball.udg pts in
  let strat = Sharded.Gdy_k { k = 1 } in
  check "grid order same result" true
    (Edge_set.equal (reference g strat)
       (Sharded.build ~domains:2 ~order g strat))

let test_empty_and_tiny () =
  let g0 = Gen.empty 0 in
  check_int "empty" 0
    (Edge_set.cardinal (Sharded.build g0 (Sharded.Gdy_k { k = 1 })));
  let g1 = Gen.path_graph 3 in
  check "tiny" true
    (Edge_set.equal
       (reference g1 (Sharded.Gdy_k { k = 1 }))
       (Sharded.build ~domains:4 g1 (Sharded.Gdy_k { k = 1 })))

let test_bad_arguments () =
  let g = Gen.cycle 8 in
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "bad order length" true
    (raises (fun () -> Sharded.build ~order:[| 0; 1 |] g (Sharded.Gdy_k { k = 1 })));
  check "duplicate in order" true
    (raises (fun () ->
         Sharded.build ~order:[| 0; 1; 2; 3; 4; 5; 6; 6 |] g (Sharded.Gdy_k { k = 1 })));
  check "out-of-range in order" true
    (raises (fun () ->
         Sharded.build ~order:[| 0; 1; 2; 3; 4; 5; 6; 8 |] g (Sharded.Gdy_k { k = 1 })));
  check "bad r" true (raises (fun () -> Sharded.build g (Sharded.Gdy { r = 0; beta = 1 })));
  check "bad k" true (raises (fun () -> Sharded.build g (Sharded.Gdy_k { k = 0 })))

let () =
  Alcotest.run "sharded"
    [
      ( "equivalence",
        [
          make_test "every strategy matches per-root reference"
            (arb_graph ~max_n:50) prop_matches_reference;
          make_test ~count:25 "deterministic across domains/order/chunk/local"
            (arb_graph ~max_n:60) prop_deterministic;
          make_test ~count:20 "local mode matches for every strategy"
            (arb_graph ~max_n:40) prop_local_mode_all_strategies;
          make_test ~count:20 "verified remote-spanner guarantees"
            (arb_graph ~max_n:40) prop_is_remote_spanner;
        ] );
      ( "unit",
        [
          Alcotest.test_case "fixed graphs, all strategies" `Quick
            test_strategies_on_fixed_graphs;
          Alcotest.test_case "geometry grid order" `Quick
            test_grid_order_is_permutation;
          Alcotest.test_case "empty and tiny" `Quick test_empty_and_tiny;
          Alcotest.test_case "invalid arguments" `Quick test_bad_arguments;
        ] );
    ]
