(* Metamorphic and structural invariants: locality of the
   constructions, monotonicity of the remote-spanner property, the
   asymmetry of d_{H_u} vs d_{H_v}, and adversarial edge cases. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------------------------------------------------------- *)
(* Locality: the constructions decide each tree from a bounded-radius
   view, so on a disjoint union they behave component-wise. *)

let disjoint_union g1 g2 =
  let off = Graph.n g1 in
  let es =
    Graph.fold_edges (fun acc a b -> (a, b) :: acc) [] g1
    @ Graph.fold_edges (fun acc a b -> (a + off, b + off) :: acc) [] g2
  in
  Graph.make ~n:(Graph.n g1 + Graph.n g2) es

let edge_list h = List.sort compare (Edge_set.to_list h)

let test_union_locality () =
  let g1 = Gen.petersen () and g2 = Gen.grid 3 4 in
  let g = disjoint_union g1 g2 in
  let off = Graph.n g1 in
  List.iter
    (fun (name, build) ->
      let combined = edge_list (build g) in
      let part1 = edge_list (build g1) in
      let part2 =
        List.map (fun (a, b) -> (a + off, b + off)) (edge_list (build g2))
      in
      Alcotest.(check (list (pair int int)))
        (name ^ " component-wise")
        (List.sort compare (part1 @ part2))
        combined)
    [
      ("exact", Remote_spanner.exact_distance);
      ("low-stretch", fun g -> Remote_spanner.low_stretch g ~eps:0.5);
      ("k-conn", fun g -> Remote_spanner.k_connecting g ~k:2);
      ("2-conn", Remote_spanner.two_connecting);
    ]

(* ---------------------------------------------------------------- *)
(* Monotonicity: adding edges to a remote-spanner keeps it one. *)

let test_superset_still_spanner () =
  let rand = Rand.create 51 in
  let g = Gen.erdos_renyi (Rand.create 53) 25 0.2 in
  let h = Remote_spanner.low_stretch g ~eps:0.5 in
  for _ = 1 to 5 do
    let h' = Edge_set.copy h in
    Graph.iter_edges (fun u v -> if Rand.int rand 3 = 0 then Edge_set.add h' u v) g;
    check "superset is (1.5,0)-RS" true (Verify.is_remote_spanner g h' ~alpha:1.5 ~beta:0.0)
  done

let test_relaxed_guarantee_still_holds () =
  (* (1,0)-RS is also (alpha,beta)-RS for any weaker pair *)
  let g = Gen.grid 4 4 in
  let h = Remote_spanner.exact_distance g in
  List.iter
    (fun (a, b) -> check "weaker guarantee" true (Verify.is_remote_spanner g h ~alpha:a ~beta:b))
    [ (1.0, 0.0); (1.0, 1.0); (1.5, 0.0); (2.0, -1.0); (3.0, 2.0) ]

(* ---------------------------------------------------------------- *)
(* Asymmetry: d_{H_u}(u,v) and d_{H_v}(v,u) genuinely differ — the
   paper stresses the definition is asymmetric "as is the knowledge of
   u and v in a link state routing protocol". *)

let test_direction_asymmetry_exists () =
  (* P4: 0-1-2-3 with H = {1-2} only.
     From 0: H_0 = {0-1, 1-2}: d_{H_0}(0,2) = 2 but 3 unreachable.
     From 2: H_2 = {1-2, 2-3}: d_{H_2}(2,0) = 2. So (0,2): 2 = 2 both
     ways... use the pair (0,3): unreachable from 0, while from 3:
     H_3 = {2-3, 1-2}: 3-2-1-0? 1-0 not in H_3: unreachable too.
     Use H = {2-3}: from 1: H_1 = {0-1,1-2,2-3}: d(1,3) = 2.
     From 3: H_3 = {2-3}: d(3,1) = unreachable. *)
  let g = Gen.path_graph 4 in
  let h = Edge_set.create g in
  Edge_set.add h 2 3;
  let adj = Edge_set.to_adjacency h in
  let from1 = Bfs.augmented_dist g adj 1 in
  let from3 = Bfs.augmented_dist g adj 3 in
  check_int "1 reaches 3" 2 from1.(3);
  check_int "3 cannot reach 1" (-1) from3.(1)

let test_asymmetric_slack_on_random () =
  (* exhibit a pair with different slacks in the two directions *)
  let g = Gen.erdos_renyi (Rand.create 57) 20 0.15 in
  let h = Edge_set.create g in
  (* keep one third of the edges *)
  let rand = Rand.create 59 in
  Graph.iter_edges (fun u v -> if Rand.int rand 3 = 0 then Edge_set.add h u v) g;
  let adj = Edge_set.to_adjacency h in
  let asym = ref false in
  Graph.iter_vertices
    (fun u ->
      let du = Bfs.augmented_dist g adj u in
      Graph.iter_vertices
        (fun v ->
          if u < v then begin
            let dv = Bfs.augmented_dist g adj v in
            if du.(v) <> dv.(u) then asym := true
          end)
        g)
    g;
  check "asymmetry observed" true !asym

(* ---------------------------------------------------------------- *)
(* Edge cases for every construction *)

let constructions =
  [
    ("exact", Remote_spanner.exact_distance);
    ("low-stretch", fun g -> Remote_spanner.low_stretch g ~eps:0.5);
    ("gdy r3b1", fun g -> Remote_spanner.rem_span g ~r:3 ~beta:1);
    ("k-conn", fun g -> Remote_spanner.k_connecting g ~k:2);
    ("2-conn", Remote_spanner.two_connecting);
    ("mis k3", fun g -> Remote_spanner.k_connecting_mis g ~k:3);
  ]

let test_empty_graph () =
  let g = Gen.empty 0 in
  List.iter
    (fun (name, build) -> check_int (name ^ " empty") 0 (Edge_set.cardinal (build g)))
    constructions

let test_isolated_vertices () =
  let g = Gen.empty 7 in
  List.iter
    (fun (name, build) -> check_int (name ^ " isolated") 0 (Edge_set.cardinal (build g)))
    constructions

let test_single_edge () =
  let g = Graph.make ~n:2 [ (0, 1) ] in
  List.iter
    (fun (name, build) ->
      (* no distance-2 pairs: every tree is trivial *)
      check_int (name ^ " single edge") 0 (Edge_set.cardinal (build g)))
    constructions

let test_complete_graph_trivial () =
  let g = Gen.complete 6 in
  List.iter
    (fun (name, build) ->
      check_int (name ^ " complete") 0 (Edge_set.cardinal (build g));
      check (name ^ " still (1,0)-RS") true
        (Verify.is_remote_spanner g (build g) ~alpha:1.0 ~beta:0.0))
    constructions

let test_star_needs_nothing_but_center_edges () =
  (* from each leaf, the single center dominates everything *)
  let g = Gen.star 10 in
  let h = Remote_spanner.exact_distance g in
  check_int "star spanner = star" 9 (Edge_set.cardinal h);
  check "(1,0)" true (Verify.is_remote_spanner g h ~alpha:1.0 ~beta:0.0)

let test_very_long_path () =
  let g = Gen.path_graph 60 in
  let h = Remote_spanner.low_stretch g ~eps:0.25 in
  (* on a path every edge is needed by some tree *)
  check_int "all edges" (Graph.m g) (Edge_set.cardinal h);
  check "verified" true (Verify.is_remote_spanner g h ~alpha:1.25 ~beta:0.5)

let test_all_constructions_deterministic () =
  (* repeated runs must agree edge-for-edge: the distributed execution
     and the parallel path both depend on it *)
  let rand = Rand.create 63 in
  let pts = Rs_geometry.Sampler.uniform rand ~n:80 ~dim:2 ~side:4.2 in
  let g = Rs_geometry.Unit_ball.udg pts in
  List.iter
    (fun (name, build) ->
      check (name ^ " deterministic") true (Edge_set.equal (build g) (build g)))
    constructions

let test_dense_random_regular () =
  let g = Gen.random_regular (Rand.create 61) 24 6 in
  List.iter
    (fun (name, build) ->
      let h = build g in
      check (name ^ " nonempty") true (Edge_set.cardinal h > 0))
    constructions;
  check "(1,0) verified" true
    (Verify.is_remote_spanner g (Remote_spanner.exact_distance g) ~alpha:1.0 ~beta:0.0)

let () =
  Alcotest.run "invariants"
    [
      ( "metamorphic",
        [
          Alcotest.test_case "locality on disjoint unions" `Quick test_union_locality;
          Alcotest.test_case "superset monotone" `Quick test_superset_still_spanner;
          Alcotest.test_case "weaker guarantees" `Quick test_relaxed_guarantee_still_holds;
        ] );
      ( "asymmetry",
        [
          Alcotest.test_case "directional reachability" `Quick test_direction_asymmetry_exists;
          Alcotest.test_case "asymmetric slack" `Quick test_asymmetric_slack_on_random;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "isolated vertices" `Quick test_isolated_vertices;
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "complete graph" `Quick test_complete_graph_trivial;
          Alcotest.test_case "star" `Quick test_star_needs_nothing_but_center_edges;
          Alcotest.test_case "long path" `Quick test_very_long_path;
          Alcotest.test_case "random regular" `Quick test_dense_random_regular;
          Alcotest.test_case "all constructions deterministic" `Quick test_all_constructions_deterministic;
        ] );
    ]
