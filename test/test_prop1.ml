(* Tests for the constructive Proposition-1 route (proof-as-code) and
   the ASCII renderer. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  (pts, Rs_geometry.Unit_ball.udg pts)

(* a path is a valid walk of H_u: consecutive edges in H, except edges
   incident to the source which may be any G-edge *)
let valid_in_hu g h u p =
  Path.is_valid g p
  &&
  let rec ok = function
    | a :: (b :: _ as rest) ->
        (Edge_set.mem h a b || a = u || b = u) && Graph.mem_edge g a b && ok rest
    | [ _ ] | [] -> true
  in
  ok p

let graphs =
  [
    ("petersen", Gen.petersen ());
    ("cycle12", Gen.cycle 12);
    ("grid45", Gen.grid 4 5);
    ("path9", Gen.path_graph 9);
    ("udg", snd (udg 31 50));
    ("er", Gen.erdos_renyi (Rand.create 33) 30 0.15);
  ]

let test_construct_meets_bound () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun r ->
          let h = Remote_spanner.rem_span g ~r ~beta:1 in
          Graph.iter_vertices
            (fun u ->
              let d = Bfs.dist g u in
              Graph.iter_vertices
                (fun v ->
                  if v <> u && d.(v) > 0 then begin
                    match Prop1_route.construct g h ~r u v with
                    | None -> Alcotest.failf "%s r=%d: no route %d->%d" name r u v
                    | Some p ->
                        check (Printf.sprintf "%s r=%d %d->%d valid" name r u v) true
                          (valid_in_hu g h u p);
                        check_int "starts at u" u (Path.source p);
                        check_int "ends at v" v (Path.target p);
                        check
                          (Printf.sprintf "%s r=%d %d->%d bound" name r u v)
                          true
                          (float_of_int (Path.length p)
                          <= Prop1_route.bound ~r d.(v) +. 1e-9)
                  end)
                g)
            g)
        [ 2; 3 ])
    graphs

let test_construct_with_mis_trees () =
  let _, g = udg 35 40 in
  let r = 3 in
  let h = Remote_spanner.low_stretch g ~eps:(1.0 /. float_of_int (r - 1)) in
  Graph.iter_vertices
    (fun u ->
      let d = Bfs.dist g u in
      Graph.iter_vertices
        (fun v ->
          if v <> u && d.(v) > 1 then
            match Prop1_route.construct g h ~r u v with
            | None -> Alcotest.fail "route must exist"
            | Some p ->
                check "bound" true
                  (float_of_int (Path.length p) <= Prop1_route.bound ~r d.(v) +. 1e-9))
        g)
    g

let test_construct_never_shorter_than_distance () =
  let g = Gen.grid 4 4 in
  let h = Remote_spanner.rem_span g ~r:2 ~beta:1 in
  Graph.iter_vertices
    (fun u ->
      let d = Bfs.dist g u in
      Graph.iter_vertices
        (fun v ->
          if v <> u then
            match Prop1_route.construct g h ~r:2 u v with
            | Some p -> check "len >= d" true (Path.length p >= d.(v))
            | None -> ())
        g)
    g

let test_construct_unreachable () =
  let g = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  let h = Edge_set.full g in
  check "unreachable" true (Prop1_route.construct g h ~r:2 0 3 = None)

let test_construct_adjacent_and_self () =
  let g = Gen.cycle 5 in
  let h = Edge_set.create g in
  Alcotest.(check (option (list int))) "adjacent" (Some [ 0; 1 ])
    (Prop1_route.construct g h ~r:2 0 1);
  Alcotest.(check (option (list int))) "self" (Some [ 2 ])
    (Prop1_route.construct g h ~r:2 2 2)

let test_construct_fails_on_bad_h () =
  (* empty H cannot dominate distance-2 nodes on a cycle *)
  let g = Gen.cycle 8 in
  let h = Edge_set.create g in
  check "no route" true (Prop1_route.construct g h ~r:2 0 4 = None)

let test_bound_values () =
  (* r=2: eps=1: 2l - 1 *)
  Alcotest.(check (float 1e-9)) "r=2 l=2" 3.0 (Prop1_route.bound ~r:2 2);
  Alcotest.(check (float 1e-9)) "r=2 l=5" 9.0 (Prop1_route.bound ~r:2 5);
  (* r=3: eps=1/2: 1.5l *)
  Alcotest.(check (float 1e-9)) "r=3 l=4" 6.0 (Prop1_route.bound ~r:3 4)

(* ---------------------------------------------------------------- *)
(* Render *)

let test_render_shapes () =
  let pts, g = udg 37 20 in
  let s = Rs_geometry.Render.render ~width:40 ~height:12 pts g in
  let lines = String.split_on_char '\n' s in
  check_int "height" 12 (List.length lines);
  List.iter (fun l -> check_int "width" 40 (String.length l)) lines

let test_render_highlights_spanner () =
  let pts, g = udg 39 15 in
  let h = Remote_spanner.exact_distance g in
  let s = Rs_geometry.Render.render ~spanner:h pts g in
  check "has spanner glyph" true (String.contains s '#')

let test_render_empty () =
  let s = Rs_geometry.Render.render [||] (Gen.empty 0) in
  check "renders" true (String.length s >= 0)

let test_render_rejects_3d () =
  let pts = [| [| 0.0; 0.0; 0.0 |] |] in
  check "rejects" true
    (match Rs_geometry.Render.render pts (Gen.empty 1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "prop1"
    [
      ( "construct",
        [
          Alcotest.test_case "meets the bound everywhere" `Slow test_construct_meets_bound;
          Alcotest.test_case "with MIS trees" `Quick test_construct_with_mis_trees;
          Alcotest.test_case "never beats d_G" `Quick test_construct_never_shorter_than_distance;
          Alcotest.test_case "unreachable" `Quick test_construct_unreachable;
          Alcotest.test_case "adjacent / self" `Quick test_construct_adjacent_and_self;
          Alcotest.test_case "fails on bad H" `Quick test_construct_fails_on_bad_h;
          Alcotest.test_case "bound values" `Quick test_bound_values;
        ] );
      ( "render",
        [
          Alcotest.test_case "canvas shape" `Quick test_render_shapes;
          Alcotest.test_case "spanner glyph" `Quick test_render_highlights_spanner;
          Alcotest.test_case "empty input" `Quick test_render_empty;
          Alcotest.test_case "rejects 3-D" `Quick test_render_rejects_3d;
        ] );
    ]
