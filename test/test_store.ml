(* Tests for the durable store: codec round trips, WAL scanning and
   truncation, store create/append/recover/compact, and the named
   crash points — torn final record, corrupt mid-segment CRC,
   truncated snapshot section, interrupted rename — plus the seeded
   crash-injection harness as acceptance. *)
open Rs_graph
module Delta = Rs_dynamic.Delta
module Repair = Rs_dynamic.Repair
module Crc32 = Rs_store.Crc32
module Binio = Rs_store.Binio
module Snapshot = Rs_store.Snapshot
module Wal = Rs_store.Wal
module Store = Rs_store.Store
module Crash = Rs_store.Crash

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let tmp_count = ref 0

(* fresh scratch directory per test; removed by the test on success *)
let tmp_dir name =
  incr tmp_count;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rs_store_test_%d_%s_%d" (Unix.getpid ()) name !tmp_count)
  in
  rm_rf d;
  d

(* ---------------------------------------------------------------- *)
(* CRC-32 *)

let test_crc32 () =
  (* the standard check value for CRC-32/ISO-HDLC *)
  check_int "check string" 0xCBF43926 (Crc32.of_string "123456789");
  check_int "empty" 0 (Crc32.of_string "");
  let a = Crc32.update Crc32.init "12345" ~pos:0 ~len:5 in
  check_int "streaming composes" (Crc32.of_string "123456789")
    (Crc32.finish (Crc32.update a "xx6789" ~pos:2 ~len:4))

(* ---------------------------------------------------------------- *)
(* Snapshot codec *)

let all_specs =
  [
    Repair.Gdy { r = 2; beta = 1 };
    Repair.Mis { r = 2 };
    Repair.Gdy_k { k = 1 };
    Repair.Mis_k { k = 2 };
  ]

let snapshot_of_graph ~seq ~specs g =
  { Snapshot.seq;
    graph = g;
    spanners =
      List.map
        (fun spec ->
          let st = Repair.init spec g in
          { Snapshot.spec; trees = Repair.export_trees st; union = Repair.pairs st })
        specs }

(* The snapshot decoder feeds CRC-clean edge arrays through
   [Graph.of_canonical]'s validation as a second line of defense (a
   correct checksum over a wrong-but-consistent payload, e.g. a
   version skew, must still be rejected); the hot loaders pass
   [~validate:false] only for arrays they built themselves. *)
let test_of_canonical_validate () =
  let edges = [| (0, 1); (1, 2) |] in
  let ok = Graph.of_canonical ~n:3 edges in
  check_int "m" 2 (Graph.m ok);
  let rejects bad =
    match Graph.of_canonical ~n:3 bad with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check "unsorted" true (rejects [| (1, 2); (0, 1) |]);
  check "duplicate" true (rejects [| (0, 1); (0, 1) |]);
  check "non-canonical orientation" true (rejects [| (1, 0) |]);
  check "self loop" true (rejects [| (1, 1) |]);
  check "out of range" true (rejects [| (0, 7) |]);
  check "trusted fast path same graph" true
    (Graph.equal ok (Graph.of_canonical ~validate:false ~n:3 edges))

let test_snapshot_roundtrip () =
  let g = Gen.random_connected (Rand.create 7) 60 0.08 in
  let t = snapshot_of_graph ~seq:42 ~specs:all_specs g in
  let s = Snapshot.to_string t in
  let t' = Snapshot.of_string s in
  check_int "seq" t.Snapshot.seq t'.Snapshot.seq;
  check "graph" true (Graph.equal t.Snapshot.graph t'.Snapshot.graph);
  check "spanner count" true
    (List.length t.Snapshot.spanners = List.length t'.Snapshot.spanners);
  List.iter2
    (fun a b ->
      check "spec" true (a.Snapshot.spec = b.Snapshot.spec);
      check "trees" true (a.Snapshot.trees = b.Snapshot.trees);
      check "union" true (a.Snapshot.union = b.Snapshot.union))
    t.Snapshot.spanners t'.Snapshot.spanners;
  check "deterministic re-encode" true (Snapshot.to_string t' = s)

let test_snapshot_rejects_damage () =
  let g = Gen.random_connected (Rand.create 9) 30 0.15 in
  let s = Snapshot.to_string (snapshot_of_graph ~seq:3 ~specs:[ Repair.Gdy_k { k = 1 } ] g) in
  let len = String.length s in
  (* every truncation point must be rejected *)
  let cut_points = [ 4; 12; len / 3; len / 2; len - 1 ] in
  List.iter
    (fun cut ->
      match Snapshot.of_string (String.sub s 0 cut) with
      | _ -> Alcotest.failf "truncation at %d of %d accepted" cut len
      | exception Binio.Corrupt _ -> ())
    cut_points;
  (* every single-byte flip must be rejected *)
  let pos = ref 0 in
  while !pos < len do
    let b = Bytes.of_string s in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0xA5));
    (match Snapshot.of_string (Bytes.to_string b) with
    | _ -> Alcotest.failf "flip at byte %d of %d accepted" !pos len
    | exception Binio.Corrupt _ -> ());
    pos := !pos + 7
  done

let test_restore_equivalence () =
  let g = Gen.random_connected (Rand.create 21) 80 0.06 in
  List.iter
    (fun spec ->
      let st = Repair.init spec g in
      let st' = Repair.restore spec g ~trees:(Repair.export_trees st) in
      check "pairs equal" true (Repair.pairs st = Repair.pairs st');
      check "spanner equal" true (Edge_set.equal (Repair.spanner st) (Repair.spanner st')))
    all_specs

(* ---------------------------------------------------------------- *)
(* WAL *)

let some_deltas =
  [
    [ Delta.Add_edge (0, 5) ];
    [ Delta.Remove_edge (1, 2) ];
    [ Delta.Node_down 3 ];
    [ Delta.Node_up (3, [ 2; 4 ]) ];
    [ Delta.Add_edge (6, 12); Delta.Add_edge (7, 15) ];
    [ Delta.Remove_edge (0, 5) ];
  ]

let test_wal_roundtrip () =
  let dir = tmp_dir "wal" in
  Unix.mkdir dir 0o755;
  (* tiny segments force rotation mid-history *)
  let w = Wal.create_writer ~policy:(Wal.Every 2) ~segment_bytes:64 ~dir ~next_seq:1 () in
  List.iteri (fun i d -> check_int "assigned seq" (i + 1) (Wal.append w d)) some_deltas;
  Wal.close_writer w;
  check "rotated into several segments" true (List.length (Wal.segment_files ~dir) > 1);
  let scan = Wal.scan_dir ~dir ~after_seq:0 in
  check "no damage" true (scan.Wal.truncation = None);
  check "all records back, in order" true
    (List.map (fun r -> (r.Wal.seq, r.Wal.delta)) scan.Wal.records
    = List.mapi (fun i d -> (i + 1, d)) some_deltas);
  let scan4 = Wal.scan_dir ~dir ~after_seq:4 in
  check "after_seq skips covered records" true
    (List.map (fun r -> r.Wal.seq) scan4.Wal.records = [ 5; 6 ]);
  rm_rf dir

let test_wal_torn_tail () =
  let dir = tmp_dir "wal_torn" in
  Unix.mkdir dir 0o755;
  let w = Wal.create_writer ~policy:Wal.Never ~dir ~next_seq:1 () in
  List.iter (fun d -> ignore (Wal.append w d)) some_deltas;
  Wal.close_writer w;
  let full = Wal.scan_dir ~dir ~after_seq:0 in
  let last = List.nth full.Wal.records (List.length full.Wal.records - 1) in
  (* tear the final record mid-payload *)
  Unix.truncate last.Wal.file (last.Wal.offset + 5);
  let scan = Wal.scan_dir ~dir ~after_seq:0 in
  check "stops at the torn record" true
    (List.map (fun r -> r.Wal.seq) scan.Wal.records = [ 1; 2; 3; 4; 5 ]);
  (match scan.Wal.truncation with
  | Some tr ->
      check "tear located" true (tr.Wal.t_file = last.Wal.file && tr.Wal.t_offset = last.Wal.offset);
      Wal.truncate ~dir tr
  | None -> Alcotest.fail "tear not reported");
  let rescan = Wal.scan_dir ~dir ~after_seq:0 in
  check "physical truncation heals the log" true
    (rescan.Wal.truncation = None && List.length rescan.Wal.records = 5);
  rm_rf dir

(* every:N batches fsyncs, but rotation must not extend the risk
   window: sealing a segment flushes and fsyncs it regardless of how
   few appends are unsynced, so once a record's segment has rotated
   away it is recoverable even if the writer never closes (the crash
   case) and the count never reached N. *)
let test_wal_every_n_rotation () =
  let dir = tmp_dir "wal_every_rot" in
  Unix.mkdir dir 0o755;
  (* N far above the append count: no count-triggered fsync ever runs;
     tiny segments force several rotations *)
  let w = Wal.create_writer ~policy:(Wal.Every 1_000_000) ~segment_bytes:64 ~dir ~next_seq:1 () in
  List.iter (fun d -> ignore (Wal.append w d)) some_deltas;
  let segs = Wal.segment_files ~dir in
  check "rotated into several segments" true (List.length segs > 1);
  (* crash now: the writer is abandoned, never flushed, never closed *)
  let tail_first_seq, tail_seg = List.nth segs (List.length segs - 1) in
  let scan = Wal.scan_dir ~dir ~after_seq:0 in
  let seqs = List.map (fun r -> r.Wal.seq) scan.Wal.records in
  check "every sealed-segment record survives the crash" true
    (List.filteri (fun i _ -> i < tail_first_seq - 1) (List.mapi (fun i _ -> i + 1) some_deltas)
    = List.filter (fun s -> s < tail_first_seq) seqs);
  check "recovered records are a contiguous prefix" true
    (seqs = List.mapi (fun i _ -> i + 1) seqs);
  (match scan.Wal.truncation with
  | Some tr -> check "any damage is confined to the open tail segment" true (tr.Wal.t_file = tail_seg)
  | None -> ());
  List.iter2
    (fun r (i, d) ->
      if r.Wal.seq < tail_first_seq then begin
        check_int "sealed seq" i r.Wal.seq;
        check "sealed payload intact" true (r.Wal.delta = d)
      end)
    scan.Wal.records
    (List.filteri (fun i _ -> i < List.length scan.Wal.records)
       (List.mapi (fun i d -> (i + 1, d)) some_deltas));
  Wal.close_writer w;
  rm_rf dir

let test_wal_policy_parse () =
  check "always" true (Wal.policy_of_string "always" = Ok Wal.Always);
  check "never" true (Wal.policy_of_string "never" = Ok Wal.Never);
  check "every:8" true (Wal.policy_of_string "every:8" = Ok (Wal.Every 8));
  check "every:0 rejected" true (Result.is_error (Wal.policy_of_string "every:0"));
  check "garbage rejected" true (Result.is_error (Wal.policy_of_string "fsyncish"))

(* ---------------------------------------------------------------- *)
(* Store *)

let specs = [ Repair.Gdy_k { k = 1 } ]

let build_store dir =
  let g0 = Gen.cycle 24 in
  let st = Store.create ~policy:Wal.Always ~segment_bytes:128 ~dir ~specs g0 in
  List.iter (fun d -> ignore (Store.append st d)) some_deltas;
  st

let test_store_recover () =
  let dir = tmp_dir "store" in
  let st = build_store dir in
  let live = Store.graph st in
  check_int "six deltas appended" 6 (Store.seq st);
  Store.close st;
  let t, rcv = Store.recover ~verify:true ~dir () in
  check_int "recovered to the last seq" 6 rcv.Store.last_seq;
  check_int "replayed the whole log" 6 rcv.Store.replayed;
  check "no damage" true (rcv.Store.truncated = None && rcv.Store.snapshots_skipped = []);
  check "graph identical" true (Graph.equal live (Store.graph t));
  check "spanner equal to from-scratch" true
    (List.for_all
       (fun (spec, s) -> Repair.pairs s = Edge_set.to_list (Repair.build spec (Store.graph t)))
       (Store.states t));
  (* the recovered store keeps working *)
  ignore (Store.append t [ Delta.Add_edge (2, 9) ]);
  check_int "append continues the sequence" 7 (Store.seq t);
  Store.close t;
  let t2, rcv2 = Store.recover ~verify:true ~dir () in
  check_int "second recovery sees the new record" 7 rcv2.Store.last_seq;
  Store.close t2;
  rm_rf dir

let test_store_quiescent_append () =
  let dir = tmp_dir "store_quiescent" in
  let st = build_store dir in
  let seq = Store.seq st in
  check "net-empty delta logs nothing" true
    (Store.append st [ Delta.Add_edge (0, 1) ] = [] && Store.seq st = seq);
  check "sync_to same graph logs nothing" true
    (Store.sync_to st (Store.graph st) = [] && Store.seq st = seq);
  Store.close st;
  rm_rf dir

let test_store_compact () =
  let dir = tmp_dir "store_compact" in
  let st = build_store dir in
  let live = Store.graph st in
  ignore (Store.compact st);
  check "one snapshot survives compaction" true (List.length (Snapshot.list_dir ~dir) = 1);
  ignore (Store.append st [ Delta.Add_edge (3, 17) ]);
  Store.close st;
  let t, rcv = Store.recover ~verify:true ~dir () in
  check_int "snapshot carries the folded history" 6 rcv.Store.snapshot_seq;
  check_int "only the post-compaction record replays" 1 rcv.Store.replayed;
  check "graph identical" true
    (Graph.equal (Delta.apply live [ Delta.Add_edge (3, 17) ]) (Store.graph t));
  Store.close t;
  rm_rf dir

(* ---------------------------------------------------------------- *)
(* Named crash points *)

let test_crash_torn_final_record () =
  let dir = tmp_dir "crash_torn" in
  let st = build_store dir in
  let before_last = Delta.apply (Gen.cycle 24) (List.concat (List.filteri (fun i _ -> i < 5) some_deltas)) in
  Store.close st;
  let scan = Wal.scan_dir ~dir ~after_seq:0 in
  let last = List.nth scan.Wal.records 5 in
  Unix.truncate last.Wal.file (last.Wal.offset + 3);
  let t, rcv = Store.recover ~verify:true ~dir () in
  check_int "lost exactly the torn record" 5 rcv.Store.last_seq;
  check "damage reported" true (rcv.Store.truncated <> None);
  check "recovered the verified prefix" true (Graph.equal before_last (Store.graph t));
  Store.close t;
  rm_rf dir

let test_crash_corrupt_mid_segment () =
  let dir = tmp_dir "crash_crc" in
  let st = build_store dir in
  Store.close st;
  let scan = Wal.scan_dir ~dir ~after_seq:0 in
  let r3 = List.nth scan.Wal.records 2 in
  (* flip one payload byte of record 3: its CRC must fail, and records
     4..6 — some in later segments — become unreachable past the gap *)
  let fd = Unix.openfile r3.Wal.file [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (r3.Wal.offset + 16) Unix.SEEK_SET);
  let b = Bytes.make 1 '\xff' in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
  ignore (Unix.lseek fd (r3.Wal.offset + 16) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let t, rcv = Store.recover ~verify:true ~dir () in
  check_int "stopped before the corrupt record" 2 rcv.Store.last_seq;
  check "damage reported" true (rcv.Store.truncated <> None);
  let expect = Delta.apply (Gen.cycle 24) (List.concat (List.filteri (fun i _ -> i < 2) some_deltas)) in
  check "recovered the verified prefix" true (Graph.equal expect (Store.graph t));
  Store.close t;
  rm_rf dir

let test_crash_truncated_snapshot () =
  let dir = tmp_dir "crash_snap" in
  let st = build_store dir in
  ignore (Store.write_snapshot st);
  let live = Store.graph st in
  Store.close st;
  let _, newest = List.hd (List.rev (Snapshot.list_dir ~dir)) in
  Unix.truncate newest ((Unix.stat newest).Unix.st_size / 2);
  let t, rcv = Store.recover ~verify:true ~dir () in
  check "newest snapshot rejected" true (List.length rcv.Store.snapshots_skipped = 1);
  check_int "fell back to the initial snapshot" 0 rcv.Store.snapshot_seq;
  check_int "replayed the full log instead" 6 rcv.Store.replayed;
  check "exact pre-crash state" true (Graph.equal live (Store.graph t));
  Store.close t;
  rm_rf dir

let test_crash_interrupted_rename () =
  let dir = tmp_dir "crash_rename" in
  let st = build_store dir in
  ignore (Store.write_snapshot st);
  let live = Store.graph st in
  Store.close st;
  let _, newest = List.hd (List.rev (Snapshot.list_dir ~dir)) in
  (* as if the crash hit after writing the temp file, before rename *)
  Sys.rename newest (newest ^ ".tmp");
  let t, rcv = Store.recover ~verify:true ~dir () in
  check_int "tmp file invisible, fell back" 0 rcv.Store.snapshot_seq;
  check "exact pre-crash state" true
    (rcv.Store.last_seq = 6 && Graph.equal live (Store.graph t));
  check "tmp residue swept" true
    (not (Sys.file_exists (newest ^ ".tmp")));
  Store.close t;
  rm_rf dir

(* ---------------------------------------------------------------- *)
(* Acceptance *)

let test_crash_harness () =
  let dir = tmp_dir "crash_harness" in
  let report = Crash.run ~seed:5 ~n:40 ~batches:12 ~dir () in
  if not (Crash.ok report) then
    Alcotest.failf "crash harness: %s" (Format.asprintf "%a" Crash.pp_report report);
  check "several sites injected" true (report.Crash.cases >= 10);
  check "both regimes observed" true (report.Crash.exact > 0 && report.Crash.prefix > 0);
  rm_rf dir

(* snapshot load must beat the text parser decisively; the bench gates
   the >= 10x headline at n=2000, this is a generous in-test floor *)
let test_snapshot_load_fast_path () =
  let g = Gen.random_connected (Rand.create 3) 2000 0.004 in
  let text = Graph_io.to_string g in
  let snap = Snapshot.to_string { Snapshot.seq = 0; graph = g; spanners = [] } in
  let best f =
    let b = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      b := min !b (Unix.gettimeofday () -. t0)
    done;
    !b
  in
  let t_text = best (fun () -> Graph_io.of_string text) in
  let t_snap = best (fun () -> Snapshot.of_string snap) in
  check "binary load at least 3x the text parser" true (t_snap *. 3. < t_text)

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "of_canonical validation" `Quick test_of_canonical_validate;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "snapshot rejects damage" `Quick test_snapshot_rejects_damage;
          Alcotest.test_case "restore = init" `Quick test_restore_equivalence;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "every:N across rotation" `Quick test_wal_every_n_rotation;
          Alcotest.test_case "policy parse" `Quick test_wal_policy_parse;
        ] );
      ( "store",
        [
          Alcotest.test_case "recover" `Quick test_store_recover;
          Alcotest.test_case "quiescent append" `Quick test_store_quiescent_append;
          Alcotest.test_case "compact" `Quick test_store_compact;
        ] );
      ( "crash points",
        [
          Alcotest.test_case "torn final record" `Quick test_crash_torn_final_record;
          Alcotest.test_case "corrupt mid-segment CRC" `Quick test_crash_corrupt_mid_segment;
          Alcotest.test_case "truncated snapshot" `Quick test_crash_truncated_snapshot;
          Alcotest.test_case "interrupted rename" `Quick test_crash_interrupted_rename;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "seeded crash harness" `Slow test_crash_harness;
          Alcotest.test_case "snapshot load fast path" `Slow test_snapshot_load_fast_path;
        ] );
    ]
