(* Tests for baseline spanner constructions. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let graphs =
  [
    ("petersen", Gen.petersen ());
    ("grid45", Gen.grid 4 5);
    ("udg", udg 101 60);
    ("er", Gen.erdos_renyi (Rand.create 103) 40 0.2);
    ("hypercube4", Gen.hypercube 4);
  ]

let test_full_is_everything () =
  let g = Gen.petersen () in
  check_int "all edges" (Graph.m g) (Edge_set.cardinal (Baseline.full g))

let test_bfs_tree_spanning () =
  List.iter
    (fun (name, g) ->
      let h = Baseline.bfs_tree g ~root:0 in
      let comps = Connectivity.component_count g in
      check_int (name ^ " n-comps edges") (Graph.n g - comps) (Edge_set.cardinal h);
      (* same reachability *)
      let hg = Edge_set.to_graph h in
      check_int (name ^ " comps") comps (Connectivity.component_count hg))
    (("two_comps", Graph.make ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5) ]) :: graphs)

let test_bfs_tree_preserves_root_distances () =
  let g = Gen.petersen () in
  let h = Baseline.bfs_tree g ~root:0 in
  let adj = Edge_set.to_adjacency h in
  let dg = Bfs.dist g 0 and dh = Bfs.dist_adj adj 0 in
  Alcotest.(check (array int)) "root distances" dg dh

let test_greedy_spanner_stretch () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let h = Baseline.greedy_spanner g ~k in
          check
            (Printf.sprintf "%s k=%d" name k)
            true
            (Baseline.is_spanner g h ~alpha:(float_of_int ((2 * k) - 1)) ~beta:0.0))
        [ 1; 2; 3 ])
    graphs

let test_greedy_spanner_k1_is_full () =
  let g = Gen.petersen () in
  check_int "k=1 keeps all" (Graph.m g) (Edge_set.cardinal (Baseline.greedy_spanner g ~k:1))

let test_greedy_spanner_girth_bound () =
  (* kept sub-graph has girth > 2k, so at most n^(1+1/k) + n edges *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let h = Baseline.greedy_spanner g ~k in
          let n = float_of_int (Graph.n g) in
          let bound = (n ** (1.0 +. (1.0 /. float_of_int k))) +. n in
          check
            (Printf.sprintf "%s k=%d size" name k)
            true
            (float_of_int (Edge_set.cardinal h) <= bound))
        [ 2; 3 ])
    graphs

let test_greedy_spanner_remote_adapter () =
  (* any (a,b)-spanner is an (a,b)-remote-spanner: same edge set *)
  List.iter
    (fun (name, g) ->
      let h = Baseline.greedy_spanner g ~k:2 in
      check (name ^ " remote") true (Verify.is_remote_spanner g h ~alpha:3.0 ~beta:0.0))
    graphs

let test_baswana_sen_stretch () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          List.iter
            (fun seed ->
              let h = Baseline.baswana_sen (Rand.create seed) g ~k in
              check
                (Printf.sprintf "%s k=%d seed=%d" name k seed)
                true
                (Baseline.is_spanner g h ~alpha:(float_of_int ((2 * k) - 1)) ~beta:0.0))
            [ 1; 2; 3 ])
        [ 2; 3 ])
    graphs

let test_baswana_sen_k1 () =
  let g = Gen.petersen () in
  let h = Baseline.baswana_sen (Rand.create 1) g ~k:1 in
  check "k=1 keeps all edges" true (Baseline.is_spanner g h ~alpha:1.0 ~beta:0.0)

let test_additive2_stretch () =
  List.iter
    (fun (name, g) ->
      let h = Baseline.additive2 g in
      check (name ^ " (1,2)") true (Baseline.is_spanner g h ~alpha:1.0 ~beta:2.0))
    graphs

let test_additive2_on_dense () =
  let g = Gen.erdos_renyi (Rand.create 105) 60 0.5 in
  let h = Baseline.additive2 g in
  check "(1,2) dense" true (Baseline.is_spanner g h ~alpha:1.0 ~beta:2.0);
  check "sparser" true (Edge_set.cardinal h < Graph.m g)

let test_is_spanner_negative () =
  let g = Gen.cycle 8 in
  let h = Edge_set.create g in
  Edge_set.add h 0 1;
  check "not a spanner" false (Baseline.is_spanner g h ~alpha:1.0 ~beta:0.0);
  check "tree is (n,0)" true
    (Baseline.is_spanner g (Baseline.bfs_tree g ~root:0) ~alpha:7.0 ~beta:0.0)

let () =
  Alcotest.run "baseline"
    [
      ( "trivial",
        [
          Alcotest.test_case "full" `Quick test_full_is_everything;
          Alcotest.test_case "bfs tree spanning" `Quick test_bfs_tree_spanning;
          Alcotest.test_case "bfs tree root distances" `Quick test_bfs_tree_preserves_root_distances;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "stretch" `Quick test_greedy_spanner_stretch;
          Alcotest.test_case "k=1 full" `Quick test_greedy_spanner_k1_is_full;
          Alcotest.test_case "girth size bound" `Quick test_greedy_spanner_girth_bound;
          Alcotest.test_case "remote adapter" `Quick test_greedy_spanner_remote_adapter;
        ] );
      ( "baswana_sen",
        [
          Alcotest.test_case "stretch" `Quick test_baswana_sen_stretch;
          Alcotest.test_case "k=1" `Quick test_baswana_sen_k1;
        ] );
      ( "additive2",
        [
          Alcotest.test_case "stretch" `Quick test_additive2_stretch;
          Alcotest.test_case "dense graph" `Quick test_additive2_on_dense;
          Alcotest.test_case "is_spanner negative" `Quick test_is_spanner_negative;
        ] );
    ]
