(* Tests for points, metrics, samplers, unit ball graphs, weighted
   graphs and the Figure 1 instance. *)
open Rs_geometry
module Graph = Rs_graph.Graph
module Bfs = Rs_graph.Bfs
module Rand = Rs_graph.Rand
module Connectivity = Rs_graph.Connectivity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Point / Metric *)

let test_point_distances () =
  check_float "l2" 5.0 (Point.l2 [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  check_float "linf" 4.0 (Point.linf [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  check_float "l1" 7.0 (Point.l1 [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  check_float "torus wrap" 2.0 (Point.torus_l2 ~side:10.0 [| 1.0 |] [| 9.0 |])

let test_point_dim_mismatch () =
  check "mismatch" true
    (match Point.l2 [| 0.0 |] [| 0.0; 1.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_metric_symmetric () =
  let pts = [| [| 0.0; 0.0 |]; [| 1.0; 2.0 |]; [| -3.0; 0.5 |] |] in
  let m = Metric.euclidean pts in
  for i = 0 to 2 do
    for j = 0 to 2 do
      check_float "sym" (m.Metric.dist i j) (m.Metric.dist j i)
    done;
    check_float "self" 0.0 (m.Metric.dist i i)
  done

let test_doubling_estimate_plane () =
  let rand = Rand.create 9 in
  let pts = Sampler.uniform rand ~n:200 ~dim:2 ~side:10.0 in
  let m = Metric.euclidean pts in
  let est = Metric.doubling_estimate m ~sample:20 (Rand.create 10) in
  (* the plane has doubling dimension 2; finite samples stay below ~4 *)
  check "plane doubling below 4.2" true (est <= 4.2)

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_uniform_bounds () =
  let rand = Rand.create 1 in
  let pts = Sampler.uniform rand ~n:100 ~dim:3 ~side:4.0 in
  check_int "count" 100 (Array.length pts);
  Array.iter
    (fun p ->
      check_int "dim" 3 (Array.length p);
      Array.iter (fun x -> check "in cube" true (x >= 0.0 && x < 4.0)) p)
    pts

let test_poisson_square_count () =
  let rand = Rand.create 2 in
  let trials = 50 in
  let sum = ref 0 in
  for _ = 1 to trials do
    sum := !sum + Array.length (Sampler.poisson_square rand ~intensity:3.0 ~side:5.0)
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  (* expected 75 *)
  check "poisson count near 75" true (mean > 65.0 && mean < 85.0)

let test_grid_jitter () =
  let rand = Rand.create 3 in
  let pts = Sampler.grid_jitter rand ~per_side:5 ~spacing:1.0 ~jitter:0.1 in
  check_int "count" 25 (Array.length pts);
  (* point (r=0,c=1) stays near (1, 0) *)
  check "near grid" true (Point.l2 pts.(1) [| 1.0; 0.0 |] <= sqrt 2.0 *. 0.1 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Unit_ball *)

let square_pts = [| [| 0.0; 0.0 |]; [| 0.9; 0.0 |]; [| 0.9; 0.9 |]; [| 0.0; 0.9 |] |]

let test_udg_square () =
  let g = Unit_ball.udg square_pts in
  (* sides length .9 are edges, diagonals ~1.27 are not *)
  check_int "m" 4 (Graph.m g);
  check "side" true (Graph.mem_edge g 0 1);
  check "diagonal" false (Graph.mem_edge g 0 2)

let test_udg_radius_param () =
  let g = Unit_ball.udg ~radius:1.5 square_pts in
  check_int "all edges" 6 (Graph.m g)

let test_grid_matches_naive () =
  let rand = Rand.create 4 in
  let pts = Sampler.uniform rand ~n:150 ~dim:2 ~side:5.0 in
  let fast = Unit_ball.of_points pts in
  let naive = Unit_ball.of_metric (Metric.euclidean pts) in
  check "same graph" true (Graph.equal fast naive)

let test_grid_matches_naive_3d () =
  let rand = Rand.create 5 in
  let pts = Sampler.uniform rand ~n:80 ~dim:3 ~side:3.0 in
  let fast = Unit_ball.of_points pts in
  let naive = Unit_ball.of_metric (Metric.euclidean pts) in
  check "same graph 3d" true (Graph.equal fast naive)

let test_ubg_linf_metric () =
  let pts = [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |] |] in
  let g2 = Unit_ball.of_metric (Metric.linf pts) in
  check "linf edge" true (Graph.mem_edge g2 0 1);
  let g = Unit_ball.of_metric (Metric.euclidean pts) in
  check "l2 no edge" false (Graph.mem_edge g 0 1)

let test_empty_points () =
  check_int "empty" 0 (Graph.n (Unit_ball.of_points [||]))

(* ------------------------------------------------------------------ *)
(* Point_io *)

let test_point_io_roundtrip () =
  let rand = Rand.create 21 in
  let pts = Sampler.uniform rand ~n:30 ~dim:2 ~side:5.0 in
  let pts' = Point_io.of_string (Point_io.to_string pts) in
  check_int "count" 30 (Array.length pts');
  Array.iteri (fun i p -> check "exact roundtrip" true (p = pts'.(i))) pts

let test_point_io_3d () =
  let pts = [| [| 1.0; 2.0; 3.0 |]; [| -0.5; 0.25; 1e-9 |] |] in
  let pts' = Point_io.of_string (Point_io.to_string pts) in
  check "3d roundtrip" true (pts = pts')

let test_point_io_errors () =
  check "empty" true
    (match Point_io.of_string "" with _ -> false | exception Failure _ -> true);
  check "bad row" true
    (match Point_io.of_string "1 2\n0.0\n" with _ -> false | exception Failure _ -> true);
  check "count mismatch" true
    (match Point_io.of_string "2 1\n0.0\n" with _ -> false | exception Failure _ -> true)

let test_point_io_file () =
  let file = Filename.temp_file "rspan" ".xy" in
  let pts = [| [| 0.5; 0.5 |] |] in
  Point_io.save file pts;
  let pts' = Point_io.load file in
  Sys.remove file;
  check "file roundtrip" true (pts = pts')

(* ------------------------------------------------------------------ *)
(* higher-dimensional / exotic-metric UBGs drive the constructions too *)

let test_constructions_on_3d_ubg () =
  let rand = Rand.create 23 in
  let pts = Sampler.uniform rand ~n:60 ~dim:3 ~side:2.5 in
  let g = Unit_ball.of_points pts in
  let h = Rs_core.Remote_spanner.low_stretch g ~eps:0.5 in
  check "3d UBG (1.5,0)-RS" true
    (Rs_core.Verify.is_remote_spanner g h ~alpha:1.5 ~beta:0.0)

let test_constructions_on_torus_ubg () =
  let rand = Rand.create 25 in
  let pts = Sampler.uniform rand ~n:60 ~dim:2 ~side:4.0 in
  let g = Unit_ball.of_metric (Metric.torus ~side:4.0 pts) in
  let h = Rs_core.Remote_spanner.exact_distance g in
  check "torus UBG (1,0)-RS" true
    (Rs_core.Verify.is_remote_spanner g h ~alpha:1.0 ~beta:0.0)

(* ------------------------------------------------------------------ *)
(* Wgraph *)

let test_wgraph_weights () =
  let pts = [| [| 0.0; 0.0 |]; [| 0.5; 0.0 |]; [| 1.0; 0.0 |] |] in
  let m = Metric.euclidean pts in
  let g = Unit_ball.of_metric m in
  let w = Wgraph.of_metric_graph m g in
  check_float "weight" 0.5 (Wgraph.weight w 0 1);
  check_float "weight 02" 1.0 (Wgraph.weight w 0 2)

let test_wgraph_dijkstra () =
  let pts = [| [| 0.0; 0.0 |]; [| 0.9; 0.0 |]; [| 1.8; 0.0 |]; [| 9.0; 9.0 |] |] in
  let m = Metric.euclidean pts in
  let g = Unit_ball.of_metric m in
  let w = Wgraph.of_metric_graph m g in
  let d = Wgraph.dijkstra w 0 in
  check_float "two hops" 1.8 d.(2);
  check "unreachable" true (d.(3) = infinity)

let test_greedy_tspanner_property () =
  let rand = Rand.create 6 in
  let pts = Sampler.uniform rand ~n:100 ~dim:2 ~side:3.0 in
  let m = Metric.euclidean pts in
  let g = Unit_ball.of_metric m in
  let w = Wgraph.of_metric_graph m g in
  let sp = Wgraph.greedy_tspanner w ~t_:1.5 in
  check "t-spanner property" true (Wgraph.stretch_ok w sp ~t_:1.5);
  check "sparser than input" true
    (Rs_graph.Edge_set.cardinal sp <= Graph.m g)

let test_greedy_tspanner_linear_on_doubling () =
  let rand = Rand.create 7 in
  let pts = Sampler.uniform rand ~n:300 ~dim:2 ~side:6.0 in
  let m = Metric.euclidean pts in
  let g = Unit_ball.of_metric m in
  let w = Wgraph.of_metric_graph m g in
  let sp = Wgraph.greedy_tspanner w ~t_:1.5 in
  (* greedy t-spanners of doubling metrics have bounded degree;
     12/edge-per-node is a loose empirical cap for t = 1.5 in the plane *)
  check "O(n) edges" true (Rs_graph.Edge_set.cardinal sp < 12 * 300)

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

let test_figure1_caption_properties () =
  let f = Figure1.instance () in
  let g = f.Figure1.graph in
  check_int "u-x distance 2" 2 (Bfs.dist_pair g f.Figure1.u f.Figure1.x);
  check_int "u-v distance 2" 2 (Bfs.dist_pair g f.Figure1.u f.Figure1.v);
  check "u-v nonadjacent" false (Graph.mem_edge g f.Figure1.u f.Figure1.v);
  check "u-y edge" true (Graph.mem_edge g f.Figure1.u f.Figure1.y);
  check "y-v edge" true (Graph.mem_edge g f.Figure1.y f.Figure1.v);
  check "y-x edge" true (Graph.mem_edge g f.Figure1.y f.Figure1.x);
  check "x-v edge" true (Graph.mem_edge g f.Figure1.x f.Figure1.v);
  check "y'-x' edge" true (Graph.mem_edge g f.Figure1.y' f.Figure1.x');
  check "x'-v edge" true (Graph.mem_edge g f.Figure1.x' f.Figure1.v);
  check "z-x edge" true (Graph.mem_edge g f.Figure1.z f.Figure1.x);
  check "z-v nonadjacent" false (Graph.mem_edge g f.Figure1.z f.Figure1.v);
  check "connected" true (Connectivity.is_connected g)

let test_figure1_two_disjoint_uv_paths () =
  let f = Figure1.instance () in
  check "2-connected pair" true
    (Connectivity.is_k_connected_pair f.Figure1.graph ~k:2 f.Figure1.u f.Figure1.v)

let test_figure1_labels () =
  let f = Figure1.instance () in
  Alcotest.(check string) "u" "u" (Figure1.label f f.Figure1.u);
  Alcotest.(check string) "y'" "y'" (Figure1.label f f.Figure1.y')

let () =
  Alcotest.run "geometry"
    [
      ( "point_metric",
        [
          Alcotest.test_case "distances" `Quick test_point_distances;
          Alcotest.test_case "dimension mismatch" `Quick test_point_dim_mismatch;
          Alcotest.test_case "metric symmetry" `Quick test_metric_symmetric;
          Alcotest.test_case "doubling estimate" `Quick test_doubling_estimate_plane;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "poisson count" `Quick test_poisson_square_count;
          Alcotest.test_case "grid jitter" `Quick test_grid_jitter;
        ] );
      ( "unit_ball",
        [
          Alcotest.test_case "udg square" `Quick test_udg_square;
          Alcotest.test_case "radius param" `Quick test_udg_radius_param;
          Alcotest.test_case "grid = naive (2d)" `Quick test_grid_matches_naive;
          Alcotest.test_case "grid = naive (3d)" `Quick test_grid_matches_naive_3d;
          Alcotest.test_case "linf metric" `Quick test_ubg_linf_metric;
          Alcotest.test_case "empty input" `Quick test_empty_points;
        ] );
      ( "point_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_point_io_roundtrip;
          Alcotest.test_case "3d" `Quick test_point_io_3d;
          Alcotest.test_case "errors" `Quick test_point_io_errors;
          Alcotest.test_case "file" `Quick test_point_io_file;
        ] );
      ( "exotic_inputs",
        [
          Alcotest.test_case "3d UBG" `Quick test_constructions_on_3d_ubg;
          Alcotest.test_case "torus UBG" `Quick test_constructions_on_torus_ubg;
        ] );
      ( "wgraph",
        [
          Alcotest.test_case "weights" `Quick test_wgraph_weights;
          Alcotest.test_case "dijkstra" `Quick test_wgraph_dijkstra;
          Alcotest.test_case "greedy t-spanner property" `Quick test_greedy_tspanner_property;
          Alcotest.test_case "t-spanner linear size" `Quick test_greedy_tspanner_linear_on_doubling;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "caption properties" `Quick test_figure1_caption_properties;
          Alcotest.test_case "two disjoint u-v paths" `Quick test_figure1_two_disjoint_uv_paths;
          Alcotest.test_case "labels" `Quick test_figure1_labels;
        ] );
    ]
