(* Tests for the dynamic-repair subsystem: Delta semantics, dirty-set
   repair equivalence against from-scratch builds, the escalation
   ladder, and the quiescent fast path. *)
open Rs_graph
module Delta = Rs_dynamic.Delta
module Repair = Rs_dynamic.Repair

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg ~seed ~n ~density =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. density) in
  Rs_geometry.Unit_ball.udg (Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side)

let pairs_of_set h = Edge_set.to_list h

(* ---------------------------------------------------------------- *)
(* Delta *)

let test_delta_effect_and_apply () =
  let g = Gen.path_graph 5 in
  (* net effect: redundant ops vanish, sequential ops compose *)
  let added, removed = Delta.effect g [ Delta.Add_edge (0, 2); Delta.Add_edge (0, 1) ] in
  check "existing edge add is redundant" true (added = [ (0, 2) ] && removed = []);
  let added, removed =
    Delta.effect g [ Delta.Remove_edge (1, 2); Delta.Add_edge (1, 2) ]
  in
  check "remove then add cancels" true (added = [] && removed = []);
  let g' = Delta.apply g [ Delta.Remove_edge (1, 2); Delta.Add_edge (1, 2) ] in
  check "quiescent apply returns the graph itself" true (g == g');
  let g' = Delta.apply g [ Delta.Node_down 2 ] in
  check_int "node down drops incident edges" (Graph.m g - 2) (Graph.m g');
  let g'' = Delta.apply g' [ Delta.Node_up (2, [ 1; 3 ]) ] in
  check "down then up restores" true (Graph.equal g g'')

let test_delta_diff_roundtrip () =
  let g = udg ~seed:11 ~n:40 ~density:4.0 in
  let g' = Delta.apply g [ Delta.Node_down 3; Delta.Add_edge (0, 39) ] in
  check "diff reproduces the target" true (Graph.equal g' (Delta.apply g (Delta.diff g g')));
  check "diff of equal graphs is empty" true (Delta.diff g g = [])

let test_delta_touched () =
  let t = Delta.touched ~added:[ (3, 1) ] ~removed:[ (1, 2); (5, 4) ] in
  check "touched = sorted distinct endpoints" true (t = [ 1; 2; 3; 4; 5 ])

let test_delta_parse () =
  let ops = Delta.parse "# comment\nadd 0 1\n\nremove 2 3\ndown 4\nup 4 0 2\n" in
  check "parse shapes" true
    (ops
    = [ Delta.Add_edge (0, 1); Delta.Remove_edge (2, 3); Delta.Node_down 4;
        Delta.Node_up (4, [ 0; 2 ]) ]);
  Alcotest.check_raises "unknown directive"
    (Failure "Delta.parse: line 2: unknown directive: frob") (fun () ->
      ignore (Delta.parse "add 0 1\nfrob 2"));
  Alcotest.check_raises "arity"
    (Failure "Delta.parse: line 1: expected: down U") (fun () ->
      ignore (Delta.parse "down 1 2"));
  Alcotest.check_raises "non-integer"
    (Failure "Delta.parse: line 1: not an integer: x") (fun () ->
      ignore (Delta.parse "add x 1"))

let test_delta_validation () =
  let g = Gen.path_graph 4 in
  check "out of range rejected" true
    (match Delta.effect g [ Delta.Add_edge (0, 9) ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "self-loop rejected" true
    (match Delta.effect g [ Delta.Add_edge (2, 2) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------------------------------------------------------- *)
(* Repair: equivalence with from-scratch builds *)

let equivalent st =
  Repair.pairs st = pairs_of_set (Repair.build (Repair.Gdy_k { k = 1 }) (Repair.graph st))

let test_repair_quiescent () =
  let g = udg ~seed:21 ~n:60 ~density:4.0 in
  let st = Repair.init (Repair.Gdy_k { k = 1 }) g in
  let h_before = Repair.spanner st in
  let u, v = (Graph.edges g).(0) in
  let o = Repair.apply st [ Delta.Remove_edge (u, v); Delta.Add_edge (u, v) ] in
  check_int "no dirty nodes" 0 o.Repair.dirty;
  check_int "no trees rebuilt" 0 o.Repair.rebuilt;
  check "graph untouched" true (Repair.graph st == g);
  check "spanner physically untouched" true (Repair.spanner st == h_before)

let test_repair_single_edge () =
  let g = udg ~seed:23 ~n:120 ~density:4.0 in
  let st = Repair.init (Repair.Gdy_k { k = 1 }) g in
  let u, v = (Graph.edges g).(Graph.m g / 2) in
  let o = Repair.apply st [ Delta.Remove_edge (u, v) ] in
  check "local repair" true (o.Repair.level = Repair.Local);
  check_int "no escalations" 0 o.Repair.escalations;
  check "only a fraction of trees rebuilt" true (o.Repair.rebuilt < Graph.n g / 2);
  check "equivalent to from-scratch" true (equivalent st);
  (* and the restored edge heals back to the original spanner *)
  let o = Repair.apply st [ Delta.Add_edge (u, v) ] in
  check "restore is local too" true (o.Repair.level = Repair.Local);
  check "equivalent after restore" true (equivalent st);
  check "restored spanner = original build" true
    (Repair.pairs st = pairs_of_set (Repair.build (Repair.Gdy_k { k = 1 }) g))

let test_repair_crash_recover_batch () =
  let g = udg ~seed:29 ~n:80 ~density:4.0 in
  let st = Repair.init (Repair.Gdy_k { k = 1 }) g in
  let links = Array.to_list (Graph.neighbors g 7) in
  let o = Repair.apply st [ Delta.Node_down 7; Delta.Node_up (7, links) ] in
  check_int "crash/recover in one batch is quiescent" 0 o.Repair.dirty;
  let o = Repair.apply st [ Delta.Node_down 7 ] in
  check "crash repaired locally" true (o.Repair.level = Repair.Local);
  check "equivalent after crash" true (equivalent st);
  let o = Repair.apply st [ Delta.Node_up (7, links) ] in
  check "recovery repaired locally" true (o.Repair.level = Repair.Local);
  check "equivalent after recovery" true (equivalent st)

(* Back-to-back deltas where the second strikes inside the first's
   dirty ball before any quiescent period: dirty-set tracking must not
   assume the neighborhood it is repairing was clean when the delta
   arrived. Regression shape for the serve writer, which feeds deltas
   to one long-lived state with no gate between batches. *)
let test_repair_overlapping_dirty_balls () =
  let g = udg ~seed:37 ~n:120 ~density:4.0 in
  let spec = Repair.Gdy_k { k = 1 } in
  let st = Repair.init spec g in
  (* first delta: drop an edge at a well-connected node *)
  let u =
    let best = ref 0 in
    for v = 1 to Graph.n g - 1 do
      if Graph.degree g v > Graph.degree g !best then best := v
    done;
    !best
  in
  let nbrs = Graph.neighbors g u in
  let v = nbrs.(0) in
  let o1 = Repair.apply st [ Delta.Remove_edge (u, v) ] in
  check "first repair lands" true (o1.Repair.dirty > 0);
  (* second delta: same node u and one of its still-present neighbors —
     dead center of the ball the first repair just rebuilt *)
  let w = nbrs.(1) in
  let o2 = Repair.apply st [ Delta.Remove_edge (u, w) ] in
  check "second repair overlaps the first ball" true (o2.Repair.dirty > 0);
  check "equivalent after overlapping repairs" true (equivalent st);
  (* third wave: the neighbor w goes down entirely, then everything is
     restored in reverse order — each step against a still-warm ball *)
  let w_links = Array.to_list (Graph.neighbors (Repair.graph st) w) in
  ignore (Repair.apply st [ Delta.Node_down w ]);
  check "equivalent after node-down in the same ball" true (equivalent st);
  ignore (Repair.apply st [ Delta.Node_up (w, w_links) ]);
  ignore (Repair.apply st [ Delta.Add_edge (u, w) ]);
  ignore (Repair.apply st [ Delta.Add_edge (u, v) ]);
  check "equivalent after full restore" true (equivalent st);
  check "restore lands on the original build" true
    (Repair.pairs st = pairs_of_set (Repair.build spec g));
  (* the same collision as one batch must agree with the two-step path *)
  let st2 = Repair.init spec g in
  ignore (Repair.apply st2 [ Delta.Remove_edge (u, v); Delta.Remove_edge (u, w) ]);
  let st3 = Repair.init spec g in
  ignore (Repair.apply st3 [ Delta.Remove_edge (u, v) ]);
  ignore (Repair.apply st3 [ Delta.Remove_edge (u, w) ]);
  check "batched = sequential on overlapping deltas" true
    (Repair.pairs st2 = Repair.pairs st3)

let all_specs =
  [ Repair.Gdy_k { k = 1 }; Repair.Mis_k { k = 2 }; Repair.Mis { r = 3 };
    Repair.Gdy { r = 3; beta = 1 } ]

let test_repair_all_specs () =
  let g = udg ~seed:31 ~n:50 ~density:4.0 in
  List.iter
    (fun spec ->
      let name = Format.asprintf "%a" Repair.pp_spec spec in
      let st = Repair.init spec g in
      check (name ^ " init = build") true
        (Repair.pairs st = pairs_of_set (Repair.build spec g));
      let u, v = (Graph.edges g).(0) in
      ignore (Repair.apply st [ Delta.Remove_edge (u, v) ]);
      ignore (Repair.apply st [ Delta.Node_down (Graph.n g - 1) ]);
      let reference = Repair.build spec (Repair.graph st) in
      check (name ^ " equivalent after deltas") true
        (Repair.pairs st = pairs_of_set reference);
      match Repair.alpha_beta spec with
      | Some (alpha, beta) ->
          check (name ^ " verifies") true
            (Rs_core.Verify.is_remote_spanner (Repair.graph st) (Repair.spanner st)
               ~alpha ~beta)
      | None -> ())
    all_specs

(* The ladder: an under-estimated dirty radius misses roots whose
   trees hold the removed edge; the gates catch it and the repair
   widens (and, with a radius far too small for the spec, goes all the
   way to a full rebuild) — ending equivalent regardless. *)
let test_escalation_ladder () =
  let g = Gen.path_graph 21 in
  let spec = Repair.Gdy { r = 5; beta = 1 } in
  let st = Repair.init spec g in
  let o = Repair.apply ~dirty_radius:0 st [ Delta.Remove_edge (10, 11) ] in
  check "escalated" true (o.Repair.escalations >= 1);
  check "not local" true (o.Repair.level <> Repair.Local);
  check "still equivalent" true
    (Repair.pairs st = pairs_of_set (Repair.build spec (Repair.graph st)));
  (* a mild under-estimate is healed by the 2-hop widening alone *)
  let g = Gen.path_graph 21 in
  let spec = Repair.Gdy { r = 3; beta = 1 } in
  let st = Repair.init spec g in
  let o = Repair.apply ~dirty_radius:1 st [ Delta.Remove_edge (10, 11) ] in
  check "widened suffices" true (o.Repair.level = Repair.Widened);
  check "widened equivalent" true
    (Repair.pairs st = pairs_of_set (Repair.build spec (Repair.graph st)))

let test_incremental_target () =
  let g = udg ~seed:37 ~n:40 ~density:4.0 in
  let spec = Repair.Gdy_k { k = 1 } in
  let maintain = Repair.incremental_target spec in
  let u, v = (Graph.edges g).(0) in
  let g' = Delta.apply g [ Delta.Remove_edge (u, v) ] in
  List.iter
    (fun graph ->
      check "maintained = from-scratch" true
        (maintain graph = pairs_of_set (Repair.build spec graph)))
    [ g; g; g'; g' ]

(* ---------------------------------------------------------------- *)
(* Property: random UDGs x random delta sequences (the ISSUE's
   equivalence gate, >= 50 random sequences in CI) *)

let random_delta rand g =
  let n = Graph.n g in
  let m = Graph.m g in
  let rand_op () =
    match Rand.int rand 4 with
    | 0 ->
        let u = Rand.int rand n and v = Rand.int rand n in
        if u = v then Delta.Node_down u else Delta.Add_edge (u, v)
    | 1 when m > 0 ->
        let u, v = (Graph.edges g).(Rand.int rand m) in
        Delta.Remove_edge (u, v)
    | 2 -> Delta.Node_down (Rand.int rand n)
    | _ ->
        let u = Rand.int rand n in
        let links =
          List.init (1 + Rand.int rand 3) (fun _ -> Rand.int rand n)
          |> List.filter (( <> ) u)
        in
        if links = [] then Delta.Node_down u else Delta.Node_up (u, links)
  in
  List.init (1 + Rand.int rand 3) (fun _ -> rand_op ())

let prop_incremental_equivalence seed =
  let rand = Rand.create seed in
  let n = 12 + Rand.int rand 25 in
  let g = udg ~seed:(seed + 1) ~n ~density:3.5 in
  let spec = List.nth all_specs (Rand.int rand (List.length all_specs)) in
  let st = Repair.init spec g in
  let ok = ref true in
  for _ = 1 to 3 do
    ignore (Repair.apply st (random_delta rand (Repair.graph st)));
    let g' = Repair.graph st in
    if Repair.pairs st <> pairs_of_set (Repair.build spec g') then ok := false;
    (match Repair.alpha_beta spec with
    | Some (alpha, beta) ->
        if not (Rs_core.Verify.is_remote_spanner g' (Repair.spanner st) ~alpha ~beta)
        then ok := false
    | None -> ());
    (* quiescent repair leaves the spanner physically untouched *)
    let h = Repair.spanner st in
    ignore (Repair.apply st []);
    if Repair.spanner st != h then ok := false
  done;
  !ok

let make_prop ?(count = 60) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count QCheck2.Gen.(int_range 0 1_000_000) prop)

(* parse/print round trip: any delta [to_string] can emit (Node_up
   links non-empty — the only shape [parse] produces) survives the
   text format, which is also the WAL record payload format *)
let delta_gen =
  let open QCheck2.Gen in
  let vertex = int_range 0 500 in
  let op =
    oneof
      [
        map2 (fun u v -> Delta.Add_edge (u, v)) vertex vertex;
        map2 (fun u v -> Delta.Remove_edge (u, v)) vertex vertex;
        map (fun u -> Delta.Node_down u) vertex;
        map2
          (fun u links -> Delta.Node_up (u, links))
          vertex
          (list_size (int_range 1 5) vertex);
      ]
  in
  list_size (int_range 0 8) op

let prop_parse_print_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parse (to_string d) = d" ~count:300 delta_gen (fun d ->
         Delta.parse (Delta.to_string d) = d))

(* ---------------------------------------------------------------- *)
(* Acceptance: 2000-node UDG, single-edge delta -> < 5% of trees
   recomputed, repaired spanner passes Verify with the construction's
   (alpha, beta), equivalent to a from-scratch rebuild. *)

let test_acceptance_2000 () =
  let g = udg ~seed:41 ~n:2000 ~density:4.0 in
  let spec = Repair.Gdy_k { k = 1 } in
  let st = Repair.init spec g in
  let u, v = (Graph.edges g).(Graph.m g / 3) in
  let o = Repair.apply st [ Delta.Remove_edge (u, v) ] in
  check "local" true (o.Repair.level = Repair.Local);
  check "< 5% of trees recomputed" true
    (float_of_int o.Repair.rebuilt < 0.05 *. float_of_int (Graph.n g));
  let g' = Repair.graph st in
  check "equivalent to from-scratch" true
    (Repair.pairs st = pairs_of_set (Repair.build spec g'));
  check "passes Verify at (1, 0)" true
    (Rs_core.Verify.is_remote_spanner g' (Repair.spanner st) ~alpha:1.0 ~beta:0.0)

let () =
  Alcotest.run "dynamic"
    [
      ( "delta",
        [
          Alcotest.test_case "effect and apply" `Quick test_delta_effect_and_apply;
          Alcotest.test_case "diff roundtrip" `Quick test_delta_diff_roundtrip;
          Alcotest.test_case "touched" `Quick test_delta_touched;
          Alcotest.test_case "parse" `Quick test_delta_parse;
          Alcotest.test_case "validation" `Quick test_delta_validation;
        ] );
      ( "repair",
        [
          Alcotest.test_case "quiescent" `Quick test_repair_quiescent;
          Alcotest.test_case "single edge" `Quick test_repair_single_edge;
          Alcotest.test_case "crash/recover" `Quick test_repair_crash_recover_batch;
          Alcotest.test_case "overlapping dirty balls" `Quick test_repair_overlapping_dirty_balls;
          Alcotest.test_case "all specs" `Quick test_repair_all_specs;
          Alcotest.test_case "escalation ladder" `Quick test_escalation_ladder;
          Alcotest.test_case "incremental target" `Quick test_incremental_target;
        ] );
      ( "properties",
        [
          make_prop "incremental repair = from-scratch" prop_incremental_equivalence;
          prop_parse_print_roundtrip;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "2000-node single-edge" `Slow test_acceptance_2000 ] );
    ]
