(* Tests for Lemma 2's executable path surgery. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

(* the tuple is a valid optimal witness inside H_s *)
let witness_ok g h ~k s t paths =
  let k' = min k (Disjoint_paths.max_disjoint g s t) in
  check_int "path count" k' (List.length paths);
  List.iter
    (fun p ->
      check "valid in G" true (Path.is_valid g p);
      check_int "source" s (Path.source p);
      check_int "target" t (Path.target p);
      check "outside <= 1" true (Surgery.outside_count h p <= 1))
    paths;
  check "disjoint" true (Path.pairwise_disjoint paths);
  let total = List.fold_left (fun acc p -> acc + Path.length p) 0 paths in
  match Disjoint_paths.dk g ~k:k' s t with
  | Some d -> check_int "total = d^k'" d total
  | None -> Alcotest.fail "dk must exist"

let test_outside_count () =
  let g = Gen.path_graph 5 in
  let h = Edge_set.create g in
  Edge_set.add h 2 3;
  Edge_set.add h 3 4;
  check_int "two leading edges out" 2 (Surgery.outside_count h [ 0; 1; 2; 3; 4 ]);
  Edge_set.add h 1 2;
  check_int "one out" 1 (Surgery.outside_count h [ 0; 1; 2; 3; 4 ]);
  Edge_set.add h 0 1;
  check_int "all in" 0 (Surgery.outside_count h [ 0; 1; 2; 3; 4 ]);
  let h2 = Edge_set.create g in
  Edge_set.add h2 0 1;
  check_int "last edge out" 4 (Surgery.outside_count h2 [ 0; 1; 2; 3; 4 ]);
  check_int "single vertex" 0 (Surgery.outside_count h2 [ 3 ])

let test_step_reduces_outside () =
  (* K_{2,4}: s=0, t=1, 4 common neighbors; H = k_connecting k=2 *)
  let g = Gen.complete_bipartite 2 4 in
  let h = Remote_spanner.k_connecting g ~k:2 in
  match Disjoint_paths.min_sum_paths g ~k:2 0 1 with
  | None -> Alcotest.fail "paths exist"
  | Some paths ->
      let rec drive paths n =
        match Surgery.lemma2_step g h ~k:2 paths with
        | None -> (paths, n)
        | Some p' ->
            let before = List.fold_left (fun a p -> a + Surgery.outside_count h p) 0 paths in
            let after = List.fold_left (fun a p -> a + Surgery.outside_count h p) 0 p' in
            check "outside decreases" true (after < before);
            drive p' (n + 1)
      in
      let final, _ = drive paths 0 in
      List.iter (fun p -> check "settled" true (Surgery.outside_count h p <= 1)) final

let graphs_for_theorem2 =
  [
    ("petersen", Gen.petersen ());
    ("k33", Gen.complete_bipartite 3 3);
    ("theta35", Gen.theta 3 5);
    ("grid34", Gen.grid 3 4);
    ("udg25", udg 41 25);
    ("er18", Gen.erdos_renyi (Rand.create 43) 18 0.35);
    ("hypercube3", Gen.hypercube 3);
  ]

let test_theorem2_paths_all_pairs () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let h = Remote_spanner.k_connecting g ~k in
          Graph.iter_vertices
            (fun s ->
              Graph.iter_vertices
                (fun t ->
                  if s <> t && not (Graph.mem_edge g s t)
                     && Disjoint_paths.max_disjoint g s t > 0 then begin
                    match Surgery.theorem2_paths g h ~k s t with
                    | None -> Alcotest.failf "%s k=%d: surgery failed %d->%d" name k s t
                    | Some paths -> witness_ok g h ~k s t paths
                  end)
                g)
            g)
        [ 1; 2 ])
    graphs_for_theorem2

let test_theorem2_paths_k3 () =
  let g = Gen.complete_bipartite 4 4 in
  let h = Remote_spanner.k_connecting g ~k:3 in
  match Surgery.theorem2_paths g h ~k:3 0 1 with
  | None -> Alcotest.fail "surgery failed"
  | Some paths -> witness_ok g h ~k:3 0 1 paths

let test_theorem2_rejects_adjacent () =
  let g = Gen.cycle 5 in
  let h = Edge_set.full g in
  check "adjacent" true (Surgery.theorem2_paths g h ~k:2 0 1 = None);
  check "self" true (Surgery.theorem2_paths g h ~k:2 2 2 = None)

let test_theorem2_fails_on_bad_h () =
  (* an empty H cannot absorb the paths (except trivially short ones) *)
  let g = Gen.cycle 8 in
  let h = Edge_set.create g in
  check "no witness" true (Surgery.theorem2_paths g h ~k:1 0 4 = None)

let test_surgery_agrees_with_flow_checker () =
  (* both roads to Theorem 2 must agree: surgery succeeds exactly when
     the flow checker validates the pair *)
  let g = Gen.erdos_renyi (Rand.create 47) 14 0.3 in
  let h = Remote_spanner.k_connecting g ~k:2 in
  Graph.iter_vertices
    (fun s ->
      Graph.iter_vertices
        (fun t ->
          if s <> t && not (Graph.mem_edge g s t)
             && Disjoint_paths.max_disjoint g s t > 0 then begin
            let by_surgery = Surgery.theorem2_paths g h ~k:2 s t <> None in
            let by_flow =
              Verify.is_k_connecting ~pairs:[ (s, t) ] g h ~alpha:1.0 ~beta:0.0 ~k:2
            in
            check (Printf.sprintf "agree %d-%d" s t) true (by_surgery = by_flow)
          end)
        g)
    g

(* ---------------------------------------------------------------- *)
(* Lemma 1 / Proposition 4 *)

let prop4_witness_ok g h s t (p, q) =
  check "valid p" true (Path.is_valid g p);
  check "valid q" true (Path.is_valid g q);
  check_int "p src" s (Path.source p);
  check_int "q src" s (Path.source q);
  check_int "p dst" t (Path.target p);
  check_int "q dst" t (Path.target q);
  check "disjoint" true (Path.pairwise_disjoint [ p; q ]);
  check "p in H_s" true (Surgery.outside_count h p <= 1);
  check "q in H_s" true (Surgery.outside_count h q <= 1);
  let l = Option.get (Disjoint_paths.dk g ~k:2 s t) in
  check "2-connecting stretch" true (Path.length p + Path.length q <= (2 * l) - 2)

let graphs_for_prop4 =
  [
    ("petersen", Gen.petersen ());
    ("k33", Gen.complete_bipartite 3 3);
    ("theta25", Gen.theta 2 5);
    ("grid34", Gen.grid 3 4);
    ("udg25", udg 9 25);
    ("er18", Gen.erdos_renyi (Rand.create 5) 18 0.35);
    ("cycle9", Gen.cycle 9);
    ("hypercube3", Gen.hypercube 3);
  ]

let test_prop4_paths_all_pairs () =
  List.iter
    (fun (name, g) ->
      let h = Remote_spanner.two_connecting g in
      Graph.iter_vertices
        (fun s ->
          Graph.iter_vertices
            (fun t ->
              if s <> t && (not (Graph.mem_edge g s t))
                 && Disjoint_paths.max_disjoint g s t >= 2 then begin
                match Surgery.prop4_paths g h s t with
                | None -> Alcotest.failf "%s: prop4 surgery failed %d->%d" name s t
                | Some pair -> prop4_witness_ok g h s t pair
              end)
            g)
        g)
    graphs_for_prop4

let test_lemma1_step_monotone () =
  (* every step: sum grows by at most 1, total outside strictly drops *)
  let g = udg 9 25 in
  let h = Remote_spanner.two_connecting g in
  let checked = ref 0 in
  Graph.iter_vertices
    (fun s ->
      Graph.iter_vertices
        (fun t ->
          if !checked < 40 && s <> t && (not (Graph.mem_edge g s t))
             && Disjoint_paths.max_disjoint g s t >= 2 then begin
            match Disjoint_paths.min_sum_paths g ~k:2 s t with
            | Some [ p; q ] ->
                let rec drive pair fuel =
                  if fuel = 0 then ()
                  else
                    let out pr =
                      Surgery.outside_count h (fst pr) + Surgery.outside_count h (snd pr)
                    in
                    let sum pr = Path.length (fst pr) + Path.length (snd pr) in
                    match Surgery.lemma1_step g h pair with
                    | None -> ()
                    | Some pair' ->
                        incr checked;
                        check "sum +<=1" true (sum pair' <= sum pair + 1);
                        check "outside drops" true (out pair' < out pair);
                        check "still disjoint" true
                          (Path.pairwise_disjoint [ fst pair'; snd pair' ]);
                        drive pair' (fuel - 1)
                in
                drive (p, q) 20
            | _ -> ()
          end)
        g)
    g;
  check "exercised steps" true (!checked > 0)

let test_prop4_rejects_adjacent () =
  let g = Gen.cycle 6 in
  check "adjacent" true (Surgery.prop4_paths g (Edge_set.full g) 0 1 = None);
  check "not 2-connected" true
    (Surgery.prop4_paths (Gen.path_graph 5) (Edge_set.full (Gen.path_graph 5)) 0 4 = None)

let test_prop4_fails_on_empty_h () =
  let g = Gen.cycle 8 in
  let h = Edge_set.create g in
  check "no witness" true (Surgery.prop4_paths g h 0 4 = None)

let () =
  Alcotest.run "surgery"
    [
      ( "lemma1",
        [
          Alcotest.test_case "prop4 all pairs" `Slow test_prop4_paths_all_pairs;
          Alcotest.test_case "step monotone" `Quick test_lemma1_step_monotone;
          Alcotest.test_case "rejects adjacent" `Quick test_prop4_rejects_adjacent;
          Alcotest.test_case "fails on empty H" `Quick test_prop4_fails_on_empty_h;
        ] );
      ( "lemma2",
        [
          Alcotest.test_case "outside count" `Quick test_outside_count;
          Alcotest.test_case "step reduces outside" `Quick test_step_reduces_outside;
          Alcotest.test_case "theorem2 all pairs" `Slow test_theorem2_paths_all_pairs;
          Alcotest.test_case "theorem2 k=3" `Quick test_theorem2_paths_k3;
          Alcotest.test_case "rejects adjacent/self" `Quick test_theorem2_rejects_adjacent;
          Alcotest.test_case "fails on bad H" `Quick test_theorem2_fails_on_bad_h;
          Alcotest.test_case "agrees with flow checker" `Slow test_surgery_agrees_with_flow_checker;
        ] );
    ]
