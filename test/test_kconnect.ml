(* Flow-verified tests for k-connecting remote-spanners:
   Theorem 2 (k-connecting (1,0)), Theorem 3 / Proposition 4
   (2-connecting (2,-1)), Proposition 5 (characterization). *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

(* small graphs: the checker runs O(n^2) max-flow computations *)
let small_graphs =
  [
    ("petersen", Gen.petersen ());
    ("k33", Gen.complete_bipartite 3 3);
    ("theta35", Gen.theta 3 5);
    ("hypercube3", Gen.hypercube 3);
    ("grid34", Gen.grid 3 4);
    ("cycle8", Gen.cycle 8);
    ("udg", udg 81 25);
    ("er_dense", Gen.erdos_renyi (Rand.create 83) 18 0.35);
    ("barbell4", Gen.barbell 4);
  ]

let test_k_connecting_stretch () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let h = Remote_spanner.k_connecting g ~k in
          check
            (Printf.sprintf "%s k=%d" name k)
            true
            (Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k))
        [ 1; 2; 3 ])
    small_graphs

let test_k_connecting_preserves_menger () =
  List.iter
    (fun (name, g) ->
      let k = 2 in
      let h = Remote_spanner.k_connecting g ~k in
      Graph.iter_vertices
        (fun s ->
          Graph.iter_vertices
            (fun t ->
              if s < t && not (Graph.mem_edge g s t) then begin
                let in_g = min k (Disjoint_paths.max_disjoint g s t) in
                let hs = Verify.augmented g h s in
                let in_h = Disjoint_paths.max_disjoint hs s t in
                check (Printf.sprintf "%s menger %d-%d" name s t) true (in_h >= in_g)
              end)
            g)
        g)
    [ ("petersen", Gen.petersen ()); ("theta35", Gen.theta 3 5); ("grid34", Gen.grid 3 4) ]

let test_k_connecting_induces_k20 () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let h = Remote_spanner.k_connecting g ~k in
          check
            (Printf.sprintf "%s k=%d induces" name k)
            true
            (Verify.induces_k20_trees g h ~k))
        [ 1; 2; 3 ])
    small_graphs

(* Proposition 5 is an iff: check both directions on random subgraphs. *)
let test_prop5_equivalence () =
  let rand = Rand.create 85 in
  List.iter
    (fun (name, g) ->
      for trial = 1 to 10 do
        let h = Edge_set.create g in
        Graph.iter_edges (fun u v -> if Rand.int rand 100 < 75 then Edge_set.add h u v) g;
        List.iter
          (fun k ->
            let induces = Verify.induces_k20_trees g h ~k in
            let kconn = Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k in
            check (Printf.sprintf "%s trial=%d k=%d iff" name trial k) true (induces = kconn))
          [ 1; 2 ]
      done)
    [
      ("petersen", Gen.petersen ());
      ("k33", Gen.complete_bipartite 3 3);
      ("cycle7", Gen.cycle 7);
      ("er", Gen.erdos_renyi (Rand.create 87) 14 0.4);
    ]

let test_two_connecting_stretch () =
  List.iter
    (fun (name, g) ->
      let h = Remote_spanner.two_connecting g in
      check (name ^ " (2,-1) 2-connecting") true
        (Verify.is_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:2))
    small_graphs

let test_two_connecting_is_21_remote_spanner () =
  (* Proposition 4 via Proposition 1 with eps = 1: the k' = 1 case *)
  List.iter
    (fun (name, g) ->
      let h = Remote_spanner.two_connecting g in
      check (name ^ " (2,-1)-RS") true
        (Verify.is_remote_spanner g h ~alpha:2.0 ~beta:(-1.0)))
    small_graphs

let test_k_connecting_mis_trees_valid () =
  (* union of Algorithm-5 trees for k=3 still k-connects (extension
     beyond the paper's k=2 proof; verified empirically by flow) *)
  List.iter
    (fun (name, g) ->
      let h = Remote_spanner.k_connecting_mis g ~k:3 in
      (* at stretch (2,-1): d^k'_Hs <= 2 d^k' - k' *)
      check (name ^ " k=3 mis") true
        (Verify.is_k_connecting g h ~alpha:2.0 ~beta:(-1.0) ~k:3))
    [ ("k44", Gen.complete_bipartite 4 4); ("theta45", Gen.theta 4 5); ("er", Gen.erdos_renyi (Rand.create 89) 16 0.5) ]

let test_violation_reporting () =
  (* an empty H on a cycle has violations and they are well-formed *)
  let g = Gen.cycle 8 in
  let h = Edge_set.create g in
  let vs = Verify.remote_spanner_violations g h ~alpha:1.0 ~beta:0.0 ~max_violations:5 in
  check "has violations" true (List.length vs = 5);
  List.iter
    (fun v ->
      check "src/dst nonadjacent" true (not (Graph.mem_edge g v.Verify.src v.Verify.dst));
      check "dg >= 2" true (v.Verify.d_g >= 2))
    vs

let test_kconn_violation_on_broken_spanner () =
  (* theta(2,3): removing one middle edge from H breaks 2-connection *)
  let g = Gen.theta 2 3 in
  let h = Edge_set.full g in
  Edge_set.remove h 2 3;
  let vs = Verify.k_connecting_violations g h ~alpha:1.0 ~beta:0.0 ~k:2 ~max_violations:50 in
  check "violations found" true (vs <> []);
  (* both kinds of failure occur: finite detours (k'=1 stretch blown)
     and infinite ones (the second disjoint path is gone entirely) *)
  List.iter (fun v -> check "worse than G" true (v.Verify.d_h > v.Verify.d_g)) vs;
  check "some infinite" true (List.exists (fun v -> v.Verify.d_h = max_int) vs);
  check "some finite" true (List.exists (fun v -> v.Verify.d_h < max_int) vs)

let test_sampled_pairs_subset () =
  let g = Gen.grid 3 4 in
  let h = Remote_spanner.k_connecting g ~k:2 in
  check "sampled ok" true
    (Verify.is_k_connecting ~pairs:[ (0, 11); (11, 0); (3, 8) ] g h ~alpha:1.0 ~beta:0.0 ~k:2)

let () =
  Alcotest.run "kconnect"
    [
      ( "theorem2",
        [
          Alcotest.test_case "k-connecting stretch" `Slow test_k_connecting_stretch;
          Alcotest.test_case "menger preserved" `Slow test_k_connecting_preserves_menger;
          Alcotest.test_case "induces k-(2,0) trees" `Quick test_k_connecting_induces_k20;
          Alcotest.test_case "Prop 5 equivalence" `Slow test_prop5_equivalence;
        ] );
      ( "theorem3",
        [
          Alcotest.test_case "2-connecting (2,-1)" `Slow test_two_connecting_stretch;
          Alcotest.test_case "(2,-1)-remote-spanner" `Quick test_two_connecting_is_21_remote_spanner;
          Alcotest.test_case "k=3 MIS extension" `Slow test_k_connecting_mis_trees_valid;
        ] );
      ( "violations",
        [
          Alcotest.test_case "reporting" `Quick test_violation_reporting;
          Alcotest.test_case "broken spanner detected" `Quick test_kconn_violation_on_broken_spanner;
          Alcotest.test_case "sampled pairs" `Quick test_sampled_pairs_subset;
        ] );
    ]
