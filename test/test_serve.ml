(* Tests for the resident service: lifecycle (start/query/offer/
   drain/stop), overload rejection with reasons, deadline timeouts,
   the stale flag and breaker under a slowed writer, the durable
   restart round trip, and the seeded chaos harness as acceptance. *)
open Rs_graph
module Delta = Rs_dynamic.Delta
module Repair = Rs_dynamic.Repair
module Store = Rs_store.Store
module Service = Rs_serve.Service
module Chaos = Rs_serve.Chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg ~seed ~n ~density =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. density) in
  Rs_geometry.Unit_ball.udg (Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let tmp_count = ref 0

let tmp_dir name =
  incr tmp_count;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rs_serve_test_%d_%s_%d" (Unix.getpid ()) name !tmp_count)
  in
  rm_rf d;
  d

let spec = Repair.Gdy_k { k = 1 }

(* modest domain counts: the container is small *)
let base_config = { Service.default_config with Service.readers = 1; watchdog_s = 0. }

let wait_for ?(timeout = 30.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* the chaos harness's recovery gate, reused for unit-level drains *)
let verify_view svc =
  let g, spanners = Service.peek svc in
  List.iter
    (fun (sp_spec, sp) ->
      check "spanner = from-scratch build" true
        (Edge_set.to_list sp = Edge_set.to_list (Repair.build sp_spec g));
      match Repair.alpha_beta sp_spec with
      | Some (alpha, beta) ->
          check "paper guarantee holds" true
            (Rs_core.Verify.is_remote_spanner g sp ~alpha ~beta)
      | None -> ())
    spanners

(* ---------------------------------------------------------------- *)
(* Lifecycle: queries answer from the first view, a delta becomes
   visible after drain, stop reports the session's counters. *)

let test_lifecycle () =
  let g = udg ~seed:11 ~n:80 ~density:4.0 in
  let svc = Service.start base_config (Service.Ephemeral { specs = [ spec ]; g }) in
  check_int "first view is seq 0" 0 (Service.view_seq svc);
  let r = Service.query svc (Service.Route { src = 0; dst = 1 }) in
  (match r.Service.answer with
  | Ok (Service.Route_a { path; shortest }) ->
      check "route delivered or both sides agree on disconnection" true
        (match path with Some _ -> shortest >= 0 | None -> shortest = -1)
  | Ok _ -> Alcotest.fail "route answered with the wrong constructor"
  | Error _ -> Alcotest.fail "route failed on an idle service");
  check "fresh read is not stale" false r.Service.stale;
  let m0 =
    match (Service.query svc Service.Stats).Service.answer with
    | Ok (Service.Stats_a { m; _ }) -> m
    | _ -> Alcotest.fail "stats failed"
  in
  (* grow the graph by one edge and drain it through the writer *)
  let u, v =
    let rec free a b =
      if a <> b && not (Array.exists (( = ) b) (Graph.neighbors g a)) then (a, b)
      else free a ((b + 1) mod Graph.n g)
    in
    free 0 1
  in
  (match Service.offer svc [ Delta.Add_edge (u, v) ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "offer rejected on an idle service: %s" e);
  wait_for "drain" (fun () -> Service.idle svc);
  check_int "view caught the log" 1 (Service.view_seq svc);
  (match (Service.query svc Service.Stats).Service.answer with
  | Ok (Service.Stats_a { m; _ }) -> check_int "edge landed" (m0 + 1) m
  | _ -> Alcotest.fail "stats failed after drain");
  verify_view svc;
  let st = Service.stop svc in
  check_int "one delta accepted" 1 st.Service.s_accepted;
  check_int "none rejected" 0 st.Service.s_rejected;
  check "stop is idempotent" true
    (ignore (Service.stop svc);
     true)

(* ---------------------------------------------------------------- *)
(* Overload: a full ingest queue and an invalid delta both reject
   with a reason; memory never grows past the configured bound. *)

let test_offer_rejection () =
  let g = udg ~seed:12 ~n:60 ~density:4.0 in
  let cfg =
    { base_config with
      Service.ingest_capacity = 2;
      batch_max = 1;
      (* wedge every apply long enough to keep the queue full *)
      before_apply = Some (fun _ _ -> Unix.sleepf 0.05) }
  in
  let svc = Service.start cfg (Service.Ephemeral { specs = [ spec ]; g }) in
  (match Service.offer svc [ Delta.Add_edge (0, Graph.n g + 5) ] with
  | Error reason -> check "invalid delta names the vertex" true (reason <> "")
  | Ok () -> Alcotest.fail "out-of-range delta accepted");
  let rejected = ref 0 and accepted = ref 0 in
  for i = 0 to 63 do
    let d =
      if i mod 2 = 0 then Delta.Remove_edge (0, 1) else Delta.Add_edge (0, 1)
    in
    match Service.offer svc [ d ] with
    | Ok () -> incr accepted
    | Error _ -> incr rejected
  done;
  check "saturation rejects explicitly" true (!rejected > 0);
  check "some deltas still flow" true (!accepted > 0);
  wait_for "drain" (fun () -> Service.idle svc);
  verify_view svc;
  let st = Service.stop svc in
  (* + 1: the out-of-range delta above also rejected with a reason *)
  check_int "rejections counted" (!rejected + 1) st.Service.s_rejected

(* ---------------------------------------------------------------- *)
(* Deadlines: an already-expired request is answered [Timeout]
   without computing, and the timeout is counted. *)

let test_deadline_timeout () =
  let g = udg ~seed:13 ~n:60 ~density:4.0 in
  let svc = Service.start base_config (Service.Ephemeral { specs = [ spec ]; g }) in
  let r = Service.query ~deadline_s:1e-9 svc (Service.Route { src = 0; dst = 1 }) in
  (match r.Service.answer with
  | Error Service.Timeout -> ()
  | Ok _ -> Alcotest.fail "expired deadline still answered"
  | Error _ -> Alcotest.fail "expired deadline failed with the wrong error");
  let st = Service.stop svc in
  check "timeout counted" true (st.Service.s_timeouts >= 1)

(* ---------------------------------------------------------------- *)
(* Stale reads and the breaker: a writer that always blows its repair
   budget trips the breaker; reads during the open window are
   stale-flagged, and the drained state still verifies. *)

let test_stale_and_breaker () =
  let g = udg ~seed:14 ~n:60 ~density:4.0 in
  let cfg =
    { base_config with
      Service.batch_max = 1;
      (* every batch blows a nanosecond budget: the breaker must open
         on the first repair and stay mostly open *)
      repair_budget_s = 1e-9;
      breaker_trips = 1;
      open_backlog = 4;
      before_apply = Some (fun _ _ -> Unix.sleepf 0.01) }
  in
  let svc = Service.start cfg (Service.Ephemeral { specs = [ spec ]; g }) in
  let saw_stale = ref false and saw_open = ref false in
  let give_up = Unix.gettimeofday () +. 20. in
  let i = ref 0 in
  while
    (not (!saw_stale && !saw_open)) && Unix.gettimeofday () < give_up
  do
    incr i;
    let d =
      if !i mod 2 = 0 then Delta.Remove_edge (0, 1) else Delta.Add_edge (0, 1)
    in
    ignore (Service.offer svc [ d ]);
    let r = Service.query ~deadline_s:2.0 svc Service.Stats in
    if r.Service.stale then saw_stale := true;
    if (Service.status svc).Service.s_breaker = "open" then saw_open := true
  done;
  check "stale reads are flagged while the view lags" true !saw_stale;
  check "breaker opened under sustained over-budget repairs" true !saw_open;
  wait_for "drain" (fun () -> Service.idle svc);
  check "drained view caught the log" true
    (Service.view_seq svc = Service.ingested_seq svc);
  verify_view svc;
  ignore (Service.stop svc)

(* ---------------------------------------------------------------- *)
(* Durable lifecycle: serve from a store, stop (snapshots), recover —
   the recovered state must equal the served one exactly. *)

let test_durable_roundtrip () =
  let dir = tmp_dir "svc" in
  let g = udg ~seed:15 ~n:60 ~density:4.0 in
  let store = Store.create ~dir ~specs:[ spec ] g in
  let svc = Service.start base_config (Service.Durable store) in
  let deltas =
    [ [ Delta.Remove_edge (0, 1) ]; [ Delta.Add_edge (0, 1) ];
      [ Delta.Node_down 2 ] ]
  in
  List.iter (fun d -> ignore (Service.offer svc d)) deltas;
  wait_for "drain" (fun () -> Service.idle svc);
  let g_live, spanners_live = Service.peek svc in
  let st = Service.stop svc in
  check "served past seq 0" true (st.Service.s_seq > 0);
  let store2, _ = Store.recover ~verify:true ~dir () in
  check_int "recovered to the served seq" st.Service.s_seq (Store.seq store2);
  check "recovered graph = served graph" true
    (Graph.edges (Store.graph store2) = Graph.edges g_live);
  List.iter2
    (fun (_, live) (_, rec_state) ->
      check "recovered spanner = served spanner" true
        (Edge_set.to_list live = Repair.pairs rec_state))
    spanners_live (Store.states store2);
  Store.close store2;
  rm_rf dir

(* ---------------------------------------------------------------- *)
(* Acceptance: every chaos scenario ends in a verified state. *)

let test_chaos () =
  let dir = tmp_dir "chaos" in
  let r = Chaos.run ~seed:5 ~n:30 ~batches:5 ~dir () in
  List.iter
    (fun f -> Printf.eprintf "chaos FAIL %s: %s\n%!" f.Chaos.scenario f.Chaos.reason)
    r.Chaos.failures;
  check "every scenario passed" true (Chaos.ok r);
  check_int "all scenarios ran" (List.length Chaos.names) r.Chaos.scenarios;
  check "saturation produced explicit rejections" true (r.Chaos.rejections > 0);
  check "the wedged writer failed over" true (r.Chaos.failovers >= 1);
  rm_rf dir

let () =
  Alcotest.run "serve"
    [ ( "service",
        [ Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "offer rejection" `Quick test_offer_rejection;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
          Alcotest.test_case "stale + breaker" `Quick test_stale_and_breaker;
          Alcotest.test_case "durable round trip" `Quick test_durable_roundtrip ] );
      ("chaos", [ Alcotest.test_case "all scenarios" `Slow test_chaos ]) ]
