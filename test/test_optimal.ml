(* Tests for the globally optimal (1,0)-remote-spanner solver. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_graphs =
  [
    ("cycle6", Gen.cycle 6);
    ("cycle9", Gen.cycle 9);
    ("petersen", Gen.petersen ());
    ("hypercube3", Gen.hypercube 3);
    ("k33", Gen.complete_bipartite 3 3);
    ("grid33", Gen.grid 3 3);
    ("er12", Gen.erdos_renyi (Rand.create 67) 12 0.3);
  ]

let test_exact_is_valid_rs () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          match Optimal.exact_k_rs g ~k with
          | None -> Alcotest.failf "%s: solver exhausted" name
          | Some h ->
              check
                (Printf.sprintf "%s k=%d valid" name k)
                true
                (Verify.is_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k))
        [ 1; 2 ])
    small_graphs

let test_exact_below_construction () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          match Optimal.exact_k_rs g ~k with
          | None -> ()
          | Some opt ->
              let constructed = Remote_spanner.k_connecting g ~k in
              check
                (Printf.sprintf "%s k=%d opt <= constructed" name k)
                true
                (Edge_set.cardinal opt <= Edge_set.cardinal constructed))
        [ 1; 2 ])
    small_graphs

let test_bound_ordering () =
  (* trivial lower bound <= exact optimum <= greedy construction *)
  List.iter
    (fun (name, g) ->
      let k = 1 in
      match Optimal.exact_k_rs g ~k with
      | None -> ()
      | Some opt ->
          let lb = Optimal.lower_bound_trivial g ~k in
          check (name ^ " lb <= opt") true (lb <= Edge_set.cardinal opt))
    small_graphs

let test_cycle_exact_value () =
  (* C6: every vertex needs both incident edges to dominate its two
     distance-2 nodes -> optimum is all 6 edges *)
  match Optimal.exact_k_rs (Gen.cycle 6) ~k:1 with
  | None -> Alcotest.fail "exhausted"
  | Some h -> check_int "C6 optimum" 6 (Edge_set.cardinal h)

let test_star_exact_value () =
  (* star: all leaf pairs are at distance 2 through the center; every
     center edge is needed *)
  match Optimal.exact_k_rs (Gen.star 6) ~k:1 with
  | None -> Alcotest.fail "exhausted"
  | Some h -> check_int "star optimum" 5 (Edge_set.cardinal h)

let test_complete_exact_value () =
  (* no distance-2 pairs at all *)
  match Optimal.exact_k_rs (Gen.complete 5) ~k:1 with
  | None -> Alcotest.fail "exhausted"
  | Some h -> check_int "complete optimum" 0 (Edge_set.cardinal h)

let test_theorem2_ratio_vs_global_optimum () =
  (* the 2(1+log D) guarantee measured against the TRUE optimum *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          match Optimal.exact_k_rs g ~k with
          | None -> ()
          | Some opt when Edge_set.cardinal opt > 0 ->
              let constructed = Remote_spanner.k_connecting g ~k in
              let ratio =
                float_of_int (Edge_set.cardinal constructed)
                /. float_of_int (Edge_set.cardinal opt)
              in
              let bound = 2.0 *. (1.0 +. log (float_of_int (Graph.max_degree g))) in
              check (Printf.sprintf "%s k=%d ratio" name k) true (ratio <= bound +. 1e-9)
          | Some _ -> ())
        [ 1; 2 ])
    small_graphs

let () =
  Alcotest.run "optimal"
    [
      ( "exact",
        [
          Alcotest.test_case "valid remote-spanner" `Slow test_exact_is_valid_rs;
          Alcotest.test_case "below construction" `Quick test_exact_below_construction;
          Alcotest.test_case "bound ordering" `Quick test_bound_ordering;
          Alcotest.test_case "cycle value" `Quick test_cycle_exact_value;
          Alcotest.test_case "star value" `Quick test_star_exact_value;
          Alcotest.test_case "complete value" `Quick test_complete_exact_value;
          Alcotest.test_case "theorem 2 ratio vs optimum" `Quick test_theorem2_ratio_vs_global_optimum;
        ] );
    ]
