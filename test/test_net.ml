(* Tests for the TCP transport and replication layer: frame framing
   against corruption and clean/dirty close, the blocking bounded
   queue under close, snapshot forward-compatibility (unknown section
   kinds), a WAL sequence gap exactly on a segment-rotation boundary,
   and the seeded network chaos harness as acceptance. *)
open Rs_graph
module Delta = Rs_dynamic.Delta
module Bqueue = Rs_serve.Bqueue
module Wal = Rs_store.Wal
module Snapshot = Rs_store.Snapshot
module Binio = Rs_store.Binio
module Frame = Rs_net.Frame
module Net_chaos = Rs_net.Net_chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let tmp_count = ref 0

let tmp_dir name =
  incr tmp_count;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rs_net_test_%d_%s_%d" (Unix.getpid ()) name !tmp_count)
  in
  rm_rf d;
  d

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* {1 Frame} *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let payloads = [ ""; "x"; String.make 100_000 'q'; "\x00\xff\x7f" ] in
  List.iter
    (fun p ->
      (match Frame.send a ~timeout_s:5.0 p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (Frame.error_to_string e));
      match Frame.recv b ~timeout_s:5.0 with
      | Ok got -> check "round-trip" true (String.equal got p)
      | Error e -> Alcotest.failf "recv: %s" (Frame.error_to_string e))
    payloads;
  Unix.close a;
  Unix.close b

let test_frame_crc_rejects () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  (* a well-formed header whose payload was flipped in flight *)
  let buf = Buffer.create 16 in
  Binio.w_u32 buf 5;
  Binio.w_u32 buf (Crc32.of_string "hello");
  Buffer.add_string buf "hellp";
  let raw = Buffer.contents buf in
  ignore (Unix.write_substring a raw 0 (String.length raw));
  (match Frame.recv b ~timeout_s:5.0 with
  | Error (Frame.Corrupt m) -> check "names the checksum" true (contains m "checksum")
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "a corrupt frame was accepted");
  Unix.close a;
  Unix.close b

let test_frame_close_kinds () =
  (* EOF between frames is a clean close; EOF mid-frame is corruption *)
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.close a;
  (match Frame.recv b ~timeout_s:5.0 with
  | Error Frame.Closed -> ()
  | Error e -> Alcotest.failf "expected Closed, got %s" (Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "recv on a closed peer returned a frame");
  Unix.close b;
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let buf = Buffer.create 16 in
  Binio.w_u32 buf 100;
  Binio.w_u32 buf 0;
  Buffer.add_string buf "only-part";
  let raw = Buffer.contents buf in
  ignore (Unix.write_substring a raw 0 (String.length raw));
  Unix.close a;
  (match Frame.recv b ~timeout_s:5.0 with
  | Error (Frame.Corrupt _) -> ()
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "a torn frame was accepted");
  Unix.close b

let test_frame_timeout () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let t0 = Unix.gettimeofday () in
  (match Frame.recv b ~timeout_s:0.1 with
  | Error Frame.Timeout -> ()
  | Error e -> Alcotest.failf "expected Timeout, got %s" (Frame.error_to_string e)
  | Ok _ -> Alcotest.fail "recv with nothing to read returned a frame");
  check "deadline honored" true (Unix.gettimeofday () -. t0 < 2.0);
  Unix.close a;
  Unix.close b

(* {1 Bqueue: close while producers are blocked} *)

let test_bqueue_close_wakes_blocked () =
  let q = Bqueue.create ~capacity:1 in
  (match Bqueue.push q 0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first push into an empty queue rejected");
  let results = Array.make 3 None in
  let doms =
    Array.init 3 (fun i ->
        Domain.spawn (fun () -> results.(i) <- Some (Bqueue.push_wait q (i + 1))))
  in
  (* give every producer time to block on the full queue *)
  Unix.sleepf 0.1;
  check_int "queue stayed bounded" 1 (Bqueue.length q);
  Bqueue.close q;
  Array.iter Domain.join doms;
  Array.iter
    (fun r ->
      match r with
      | Some (Error Bqueue.Closed) -> ()
      | Some (Ok ()) -> Alcotest.fail "a blocked push slipped past close"
      | Some (Error (Bqueue.Full _)) -> Alcotest.fail "push_wait returned Full"
      | None -> Alcotest.fail "a blocked producer never returned")
    results;
  (* drain after close: what was accepted before close is poppable *)
  (match Bqueue.pop_batch q ~max:10 ~timeout_s:0.2 with
  | [ 0 ] -> ()
  | other -> Alcotest.failf "drained %d elements, expected [0]" (List.length other));
  check "drained" true (Bqueue.pop_batch q ~max:10 ~timeout_s:0.05 = []);
  check "closed" true (Bqueue.is_closed q);
  (match Bqueue.push_wait q 9 with
  | Error Bqueue.Closed -> ()
  | _ -> Alcotest.fail "push_wait after close must return Closed without blocking")

let test_bqueue_push_wait_unblocks () =
  let q = Bqueue.create ~capacity:1 in
  (match Bqueue.push q 1 with Ok () -> () | Error _ -> Alcotest.fail "push");
  let d = Domain.spawn (fun () -> Bqueue.push_wait q 2) in
  Unix.sleepf 0.05;
  check_int "producer is blocked, not rejected" 1 (Bqueue.length q);
  (match Bqueue.pop_batch q ~max:1 ~timeout_s:0.5 with
  | [ 1 ] -> ()
  | _ -> Alcotest.fail "pop");
  (match Domain.join d with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "push_wait must succeed once room frees");
  match Bqueue.pop_batch q ~max:1 ~timeout_s:0.5 with
  | [ 2 ] -> ()
  | _ -> Alcotest.fail "the unblocked push's element is missing"

(* {1 Snapshot forward compatibility} *)

let sample_snapshot () =
  let rand = Rand.create 11 in
  let g = Gen.random_connected rand 16 0.3 in
  { Snapshot.seq = 7; graph = g; spanners = [] }

(* append one unknown-kind section and patch the section count *)
let with_unknown_section ?(bad_crc = false) snap =
  let base = Snapshot.to_string snap in
  let payload = "a-section-from-the-future" in
  let b = Buffer.create (String.length base + 64) in
  Buffer.add_string b base;
  Binio.w_u32 b 99;
  Binio.w_u32 b (String.length payload);
  Buffer.add_string b payload;
  Binio.w_u32 b (if bad_crc then 0x0BAD0BAD else Crc32.of_string payload);
  let by = Bytes.of_string (Buffer.contents b) in
  let count = Int32.to_int (Bytes.get_int32_le by 12) land 0xFFFFFFFF in
  Bytes.set_int32_le by 12 (Int32.of_int (count + 1));
  Bytes.to_string by

let test_snapshot_unknown_section_loads () =
  let snap = sample_snapshot () in
  let s = with_unknown_section snap in
  match Snapshot.of_string s with
  | got ->
      check_int "seq survives the unknown section" snap.Snapshot.seq got.Snapshot.seq;
      check "graph survives the unknown section" true
        (Graph.equal snap.Snapshot.graph got.Snapshot.graph)
  | exception Binio.Corrupt m ->
      Alcotest.failf "an unknown-kind section must be skipped, got Corrupt: %s" m

let test_snapshot_unknown_section_bad_crc_rejected () =
  let s = with_unknown_section ~bad_crc:true (sample_snapshot ()) in
  match Snapshot.of_string s with
  | _ -> Alcotest.fail "a CRC-damaged unknown section must reject the snapshot"
  | exception Binio.Corrupt _ -> ()

(* {1 WAL: sequence gap on a segment-rotation boundary} *)

let test_wal_gap_at_rotation () =
  let dir = tmp_dir "walgap" in
  Unix.mkdir dir 0o755;
  let w = Wal.create_writer ~policy:Wal.Always ~dir ~next_seq:1 () in
  check_int "seq 1" 1 (Wal.append w [ Delta.Add_edge (0, 1) ]);
  check_int "seq 2" 2 (Wal.append w [ Delta.Add_edge (1, 2) ]);
  check_int "seq 3" 3 (Wal.append w [ Delta.Add_edge (2, 3) ]);
  Wal.close_writer w;
  (* a rotation that lost a record: the next segment starts at 5 *)
  let w2 = Wal.create_writer ~policy:Wal.Always ~dir ~next_seq:5 () in
  check_int "seq 5" 5 (Wal.append w2 [ Delta.Add_edge (3, 4) ]);
  Wal.close_writer w2;
  let scan = Wal.scan_dir ~dir ~after_seq:0 in
  check_int "the contiguous prefix survives" 3 (List.length scan.Wal.records);
  (match List.rev scan.Wal.records with
  | last :: _ -> check_int "prefix ends at the last contiguous seq" 3 last.Wal.seq
  | [] -> Alcotest.fail "no records survived");
  (match scan.Wal.truncation with
  | None -> Alcotest.fail "the cross-segment gap went undetected"
  | Some tr ->
      check "reason names the gap" true (contains tr.Wal.t_reason "gap");
      check "damage pinned to the gapped segment" true
        (contains (Filename.basename tr.Wal.t_file) "5");
      check_int "whole segment is invalid" 0 tr.Wal.t_offset;
      (* making it physical leaves a cleanly extendable log *)
      Wal.truncate ~dir tr);
  let scan2 = Wal.scan_dir ~dir ~after_seq:0 in
  check "no damage after truncate" true (scan2.Wal.truncation = None);
  check_int "still the contiguous prefix" 3 (List.length scan2.Wal.records);
  let w3 = Wal.create_writer ~policy:Wal.Always ~dir ~next_seq:4 () in
  check_int "a fresh writer extends at 4" 4 (Wal.append w3 [ Delta.Add_edge (4, 5) ]);
  Wal.close_writer w3;
  let scan3 = Wal.scan_dir ~dir ~after_seq:0 in
  check_int "log is whole again" 4 (List.length scan3.Wal.records);
  rm_rf dir

(* {1 Network chaos as acceptance} *)

let test_net_chaos () =
  let dir = tmp_dir "net_chaos" in
  let r = Net_chaos.run ~seed:7 ~n:24 ~batches:6 ~dir () in
  List.iter
    (fun f ->
      Printf.eprintf "net chaos FAIL %s: %s\n%!" f.Net_chaos.scenario
        f.Net_chaos.reason)
    r.Net_chaos.failures;
  check "all scenarios pass" true (Net_chaos.ok r);
  check_int "all scenarios ran" 5 r.Net_chaos.scenarios;
  check "reconnects were exercised" true (r.Net_chaos.reconnects >= 2);
  check "reasoned disconnects were exercised" true (r.Net_chaos.disconnects >= 2);
  rm_rf dir

let () =
  Alcotest.run "net"
    [ ("frame",
       [ Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
         Alcotest.test_case "crc rejects" `Quick test_frame_crc_rejects;
         Alcotest.test_case "close kinds" `Quick test_frame_close_kinds;
         Alcotest.test_case "timeout" `Quick test_frame_timeout ]);
      ("bqueue",
       [ Alcotest.test_case "close wakes blocked producers" `Quick
           test_bqueue_close_wakes_blocked;
         Alcotest.test_case "push_wait unblocks on room" `Quick
           test_bqueue_push_wait_unblocks ]);
      ("snapshot",
       [ Alcotest.test_case "unknown section loads" `Quick
           test_snapshot_unknown_section_loads;
         Alcotest.test_case "bad-crc unknown section rejected" `Quick
           test_snapshot_unknown_section_bad_crc_rejected ]);
      ("wal",
       [ Alcotest.test_case "gap at rotation boundary" `Quick
           test_wal_gap_at_rotation ]);
      ("chaos", [ Alcotest.test_case "all scenarios" `Slow test_net_chaos ]) ]
