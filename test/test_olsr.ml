(* Tests for the OLSR control-plane model and the proximity-graph
   baselines. *)
open Rs_graph
open Rs_routing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg_with_pts seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.5) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  (pts, Rs_geometry.Unit_ball.udg pts)

(* ---------------------------------------------------------------- *)
(* Olsr *)

let test_selector_duality () =
  let _, g = udg_with_pts 141 60 in
  let o = Olsr.make g in
  Graph.iter_vertices
    (fun u ->
      List.iter
        (fun x -> check "duality" true (List.mem u (Olsr.selectors_of o x)))
        (Olsr.mpr_of o u))
    g;
  Graph.iter_vertices
    (fun x ->
      List.iter
        (fun u -> check "duality rev" true (List.mem x (Olsr.mpr_of o u)))
        (Olsr.selectors_of o x))
    g

let test_advertised_equals_relay_union () =
  let _, g = udg_with_pts 143 50 in
  let o = Olsr.make g in
  check "equal" true
    (Edge_set.equal (Olsr.advertised o) (Rs_core.Mpr.relay_union g Rs_core.Mpr.select))

let test_tc_originators_have_selectors () =
  let _, g = udg_with_pts 145 50 in
  let o = Olsr.make g in
  List.iter
    (fun x -> check "nonempty selectors" true (Olsr.selectors_of o x <> []))
    (Olsr.tc_originators o);
  Graph.iter_vertices
    (fun x ->
      if Olsr.selectors_of o x <> [] then
        check "listed" true (List.mem x (Olsr.tc_originators o)))
    g

let test_routing_exact () =
  List.iter
    (fun seed ->
      let _, g = udg_with_pts seed 40 in
      let o = Olsr.make g in
      check "shortest routes" true (Olsr.routing_exact o))
    [ 147; 149; 151 ]

let test_overhead_economics () =
  let _, g = udg_with_pts 153 80 in
  let o = Olsr.make g in
  let ov = Olsr.control_overhead o in
  check "fewer TC sources" true (ov.Olsr.tc_messages <= ov.Olsr.full_ls_messages);
  check "fewer entries" true (ov.Olsr.tc_entries <= ov.Olsr.full_ls_entries);
  check "cheaper flooding" true (ov.Olsr.tc_flood_retx < ov.Olsr.full_flood_retx);
  check "hello counted" true (ov.Olsr.hello_entries = 2 * Graph.m g)

let test_olsr_on_star () =
  (* star: only the hub is selected as relay; it alone originates TC *)
  let g = Gen.star 8 in
  let o = Olsr.make g in
  Alcotest.(check (list int)) "hub only" [ 0 ] (Olsr.tc_originators o);
  check_int "advertised = star" 7 (Edge_set.cardinal (Olsr.advertised o));
  check "routes exact" true (Olsr.routing_exact o)

let test_olsr_on_complete () =
  (* no 2-hop nodes: nobody selects relays, nothing is advertised *)
  let g = Gen.complete 6 in
  let o = Olsr.make g in
  Alcotest.(check (list int)) "no TC" [] (Olsr.tc_originators o);
  check_int "nothing advertised" 0 (Edge_set.cardinal (Olsr.advertised o));
  check "routes still exact (all 1-hop)" true (Olsr.routing_exact o)

(* ---------------------------------------------------------------- *)
(* Proximity baselines *)

let test_gabriel_subset_rng_superset () =
  (* RNG is a sub-graph of Gabriel *)
  let pts, g = udg_with_pts 155 60 in
  let gg = Rs_geometry.Proximity.gabriel pts g in
  let rng = Rs_geometry.Proximity.relative_neighborhood pts g in
  check "rng subset of gabriel" true (Edge_set.subset rng gg);
  check "gabriel subset of g" true (Edge_set.subset gg (Edge_set.full g))

let test_gabriel_manual () =
  (* three collinear points: the long edge is blocked by the middle *)
  let pts = [| [| 0.0; 0.0 |]; [| 0.5; 0.0 |]; [| 1.0; 0.0 |] |] in
  let g = Rs_geometry.Unit_ball.udg pts in
  let gg = Rs_geometry.Proximity.gabriel pts g in
  check "short kept" true (Edge_set.mem gg 0 1);
  check "short kept 2" true (Edge_set.mem gg 1 2);
  check "long dropped" false (Edge_set.mem gg 0 2)

let test_rng_keeps_connectivity () =
  let pts, g = udg_with_pts 157 70 in
  if Connectivity.is_connected g then begin
    let rng = Rs_geometry.Proximity.relative_neighborhood pts g in
    check "still connected" true (Connectivity.is_connected (Edge_set.to_graph rng))
  end

let test_yao_degree_bound_and_connectivity () =
  let pts, g = udg_with_pts 159 70 in
  let y = Rs_geometry.Proximity.yao ~cones:6 pts g in
  (* out-degree per node <= cones; symmetric closure can double it *)
  let yg = Edge_set.to_graph y in
  Graph.iter_vertices
    (fun u -> check "degree bounded" true (Graph.degree yg u <= 12))
    yg;
  if Connectivity.is_connected g then
    check "connected" true (Connectivity.is_connected yg)

let test_proximity_no_remote_guarantee () =
  (* the motivating gap: proximity graphs are sparse but their
     remote-stretch is unbounded — exhibit stretch > 1.5 on RNG *)
  let worst = ref 0.0 in
  List.iter
    (fun seed ->
      let pts, g = udg_with_pts seed 60 in
      let rng = Rs_geometry.Proximity.relative_neighborhood pts g in
      let slack = Rs_core.Verify.worst_additive_slack g rng ~alpha:1.0 in
      if slack <> neg_infinity && slack <> infinity then
        worst := Float.max !worst slack)
    [ 161; 163; 165 ];
  check "detours appear" true (!worst >= 1.0)

let () =
  Alcotest.run "olsr"
    [
      ( "olsr",
        [
          Alcotest.test_case "selector duality" `Quick test_selector_duality;
          Alcotest.test_case "advertised = relay union" `Quick test_advertised_equals_relay_union;
          Alcotest.test_case "TC originators" `Quick test_tc_originators_have_selectors;
          Alcotest.test_case "routing exact" `Quick test_routing_exact;
          Alcotest.test_case "overhead economics" `Quick test_overhead_economics;
          Alcotest.test_case "star" `Quick test_olsr_on_star;
          Alcotest.test_case "complete" `Quick test_olsr_on_complete;
        ] );
      ( "proximity",
        [
          Alcotest.test_case "rng ⊆ gabriel ⊆ g" `Quick test_gabriel_subset_rng_superset;
          Alcotest.test_case "gabriel manual" `Quick test_gabriel_manual;
          Alcotest.test_case "rng connectivity" `Quick test_rng_keeps_connectivity;
          Alcotest.test_case "yao degree + connectivity" `Quick test_yao_degree_bound_and_connectivity;
          Alcotest.test_case "no remote guarantee" `Quick test_proximity_no_remote_guarantee;
        ] );
    ]
