(* Tests for graph generators and text/DOT serialization. *)
open Rs_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_path () =
  let g = Gen.path_graph 6 in
  check_int "n" 6 (Graph.n g);
  check_int "m" 5 (Graph.m g);
  check_int "diameter" 5 (Bfs.diameter g)

let test_path_tiny () =
  check_int "n1" 0 (Graph.m (Gen.path_graph 1));
  check_int "n0" 0 (Graph.n (Gen.path_graph 0))

let test_cycle () =
  let g = Gen.cycle 8 in
  check_int "m" 8 (Graph.m g);
  Graph.iter_vertices (fun v -> check_int "2-regular" 2 (Graph.degree g v)) g;
  check "small cycle rejected" true
    (match Gen.cycle 2 with _ -> false | exception Invalid_argument _ -> true)

let test_complete () =
  let g = Gen.complete 6 in
  check_int "m" 15 (Graph.m g);
  check_int "diam" 1 (Bfs.diameter g)

let test_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  check_int "m" 12 (Graph.m g);
  check "no intra-left edge" false (Graph.mem_edge g 0 1);
  check "cross edge" true (Graph.mem_edge g 0 3)

let test_star () =
  let g = Gen.star 7 in
  check_int "m" 6 (Graph.m g);
  check_int "center degree" 6 (Graph.degree g 0)

let test_grid () =
  let g = Gen.grid 3 4 in
  check_int "n" 12 (Graph.n g);
  check_int "m" 17 (Graph.m g);
  (* corners have degree 2 *)
  check_int "corner" 2 (Graph.degree g 0);
  check_int "diameter" 5 (Bfs.diameter g)

let test_torus () =
  let g = Gen.torus 4 4 in
  check_int "n" 16 (Graph.n g);
  Graph.iter_vertices (fun v -> check_int "4-regular" 4 (Graph.degree g v)) g

let test_hypercube () =
  let g = Gen.hypercube 4 in
  check_int "n" 16 (Graph.n g);
  check_int "m" 32 (Graph.m g);
  check_int "diameter" 4 (Bfs.diameter g)

let test_petersen () =
  let g = Gen.petersen () in
  check_int "n" 10 (Graph.n g);
  check_int "m" 15 (Graph.m g);
  check_int "girth witness: no triangles through 0-1" 2 (Bfs.diameter g)

let test_theta () =
  let g = Gen.theta 4 2 in
  check_int "n" 10 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  check_int "hub distance" 3 (Bfs.dist_pair g 0 1)

let test_erdos_renyi_extremes () =
  let r = Rand.create 1 in
  let g0 = Gen.erdos_renyi r 10 0.0 in
  check_int "p=0" 0 (Graph.m g0);
  let g1 = Gen.erdos_renyi r 10 1.0 in
  check_int "p=1" 45 (Graph.m g1)

let test_erdos_renyi_density () =
  let r = Rand.create 2 in
  let g = Gen.erdos_renyi r 60 0.3 in
  let expected = 0.3 *. float_of_int (60 * 59 / 2) in
  let got = float_of_int (Graph.m g) in
  check "density within 20%" true (Float.abs (got -. expected) < 0.2 *. expected)

let test_random_tree () =
  let r = Rand.create 3 in
  let g = Gen.random_tree r 40 in
  check_int "m = n-1" 39 (Graph.m g);
  check "connected" true (Connectivity.is_connected g)

let test_random_connected () =
  let r = Rand.create 4 in
  let g = Gen.random_connected r 50 0.02 in
  check "connected" true (Connectivity.is_connected g)

let test_barbell () =
  let g = Gen.barbell 4 in
  check_int "n" 8 (Graph.n g);
  check_int "m" 13 (Graph.m g);
  check_int "bridge" 1 (Connectivity.pair_connectivity g 0 7)

let test_wheel () =
  let g = Gen.wheel 7 in
  check_int "n" 7 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  check_int "hub degree" 6 (Graph.degree g 0);
  for v = 1 to 6 do
    check_int "rim degree" 3 (Graph.degree g v)
  done;
  check_int "diameter" 2 (Bfs.diameter g)

let test_circulant () =
  let g = Gen.circulant 10 [ 1; 2 ] in
  check_int "m" 20 (Graph.m g);
  Graph.iter_vertices (fun v -> check_int "4-regular" 4 (Graph.degree g v)) g;
  check "wrap edge" true (Graph.mem_edge g 0 9);
  check "offset 2" true (Graph.mem_edge g 0 2);
  check "bad offset" true
    (match Gen.circulant 10 [ 6 ] with _ -> false | exception Invalid_argument _ -> true)

let test_binary_tree () =
  let g = Gen.binary_tree 15 in
  check_int "m" 14 (Graph.m g);
  check "connected" true (Connectivity.is_connected g);
  check_int "root degree" 2 (Graph.degree g 0);
  check_int "leaf degree" 1 (Graph.degree g 14);
  check_int "depth" 3 (Bfs.dist g 0).(14)

let test_caterpillar () =
  let g = Gen.caterpillar 4 3 in
  check_int "n" 16 (Graph.n g);
  check_int "m (tree)" 15 (Graph.m g);
  check "connected" true (Connectivity.is_connected g);
  check_int "spine end degree" 4 (Graph.degree g 0);
  check_int "spine mid degree" 5 (Graph.degree g 1)

let test_gnm_exact_count () =
  let r = Rand.create 8 in
  List.iter
    (fun m ->
      let g = Gen.gnm r 20 m in
      check_int "edge count" m (Graph.m g))
    [ 0; 1; 50; 190 ];
  check "too many" true
    (match Gen.gnm r 5 11 with _ -> false | exception Invalid_argument _ -> true)

let test_random_regular () =
  let r = Rand.create 9 in
  List.iter
    (fun (n, d) ->
      let g = Gen.random_regular r n d in
      Graph.iter_vertices
        (fun v -> check_int (Printf.sprintf "degree n=%d d=%d" n d) d (Graph.degree g v))
        g)
    [ (10, 3); (20, 4); (8, 2); (6, 5) ];
  check "odd product" true
    (match Gen.random_regular r 5 3 with _ -> false | exception Invalid_argument _ -> true)

let test_io_roundtrip () =
  List.iter
    (fun g ->
      let s = Graph_io.to_string g in
      check "roundtrip" true (Graph.equal g (Graph_io.of_string s)))
    [ Gen.petersen (); Gen.grid 3 3; Gen.empty 5; Gen.complete 4 ]

let test_io_comments_and_errors () =
  let g = Graph_io.of_string "# a comment\n2 1\n0 1\n" in
  check_int "parsed" 1 (Graph.m g);
  check "bad header" true
    (match Graph_io.of_string "nope" with _ -> false | exception Failure _ -> true);
  check "count mismatch" true
    (match Graph_io.of_string "2 2\n0 1\n" with
    | _ -> false
    | exception Failure _ -> true)

let test_io_file_roundtrip () =
  let file = Filename.temp_file "rspan" ".graph" in
  let g = Gen.petersen () in
  Graph_io.save file g;
  let g' = Graph_io.load file in
  Sys.remove file;
  check "file roundtrip" true (Graph.equal g g')

let test_io_binary_roundtrip () =
  List.iter
    (fun g ->
      let s = Graph_io.to_binary_string g in
      check "sniffs as binary" true (Graph_io.is_binary s);
      check "text not binary" false (Graph_io.is_binary (Graph_io.to_string g));
      check "binary roundtrip" true (Graph.equal g (Graph_io.of_binary_string s)))
    [ Gen.petersen (); Gen.grid 3 3; Gen.empty 5; Gen.complete 4;
      Gen.erdos_renyi (Rand.create 9) 60 0.1 ]

let test_io_binary_corruption () =
  let s = Graph_io.to_binary_string (Gen.petersen ()) in
  let corrupt s =
    match Graph_io.of_binary_string s with
    | _ -> false
    | exception Failure _ -> true
  in
  (* a flipped payload byte must fail the CRC *)
  let b = Bytes.of_string s in
  Bytes.set b 17 (Char.chr (Char.code (Bytes.get b 17) lxor 0x40));
  check "flipped byte" true (corrupt (Bytes.to_string b));
  (* truncation anywhere: mid-magic, mid-header, mid-payload, mid-CRC *)
  List.iter
    (fun cut ->
      check
        (Printf.sprintf "truncated at %d" cut)
        true
        (corrupt (String.sub s 0 cut)))
    [ 3; 10; 33; String.length s - 2 ];
  check "bad magic" true
    (corrupt ("XXGRF001" ^ String.sub s 8 (String.length s - 8)));
  (* trailing garbage is a length mismatch, not silently ignored *)
  check "trailing bytes" true (corrupt (s ^ "\x00"))

(* The declared edge count is validated against the physical byte
   length BEFORE the checksum is read and before any edge array is
   built: a trailer cut mid-CRC and a header promising edges past EOF
   both die on the same one-line length diagnostic — the second
   without allocating a quarter-billion-entry array first. *)
let test_io_binary_bad_lengths () =
  let s = Graph_io.to_binary_string (Gen.petersen ()) in
  let failure_of f =
    match f () with _ -> "decoded damaged input" | exception Failure m -> m
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  (* trailer cut mid-CRC: 1 to 3 of the 4 checksum bytes missing *)
  List.iter
    (fun k ->
      let m =
        failure_of (fun () ->
            Graph_io.of_binary_string (String.sub s 0 (String.length s - k)))
      in
      check
        (Printf.sprintf "CRC trailer short by %d -> length diagnostic" k)
        true
        (contains m "does not match"))
    [ 1; 2; 3 ];
  (* header promising 2^28-1 edges (over 2 GiB of payload that is not
     there): the length check fires, Array.init never runs *)
  let b = Bytes.of_string s in
  Bytes.set_int32_le b 12 0x0FFFFFFFl;
  let m_big = failure_of (fun () -> Graph_io.of_binary_string (Bytes.to_string b)) in
  check "length past EOF names the bogus m" true
    (contains m_big "does not match m=268435455");
  (* same guard at the file entry point: one Failure line, not Out_of_memory *)
  let file = Filename.temp_file "rspan" ".rsg" in
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (Bytes.to_string b));
  let m_file = failure_of (fun () -> Graph_io.read_binary file) in
  Sys.remove file;
  check "read_binary rejects it with the same diagnostic" true
    (contains m_file "does not match")

let test_io_binary_file_autodetect () =
  let file = Filename.temp_file "rspan" ".rsg" in
  let g = Gen.erdos_renyi (Rand.create 4) 40 0.15 in
  Graph_io.write_binary file g;
  (* load sniffs the magic: same entry point as text files *)
  let g' = Graph_io.load file in
  let g'' = Graph_io.read_binary file in
  Sys.remove file;
  check "load autodetects" true (Graph.equal g g');
  check "read_binary" true (Graph.equal g g'')

let test_dot_output () =
  let g = Gen.path_graph 3 in
  let h = Edge_set.create g in
  Edge_set.add h 0 1;
  let dot = Graph_io.to_dot ~highlight:h g in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  check "mentions bold edge" true (contains dot "0 -- 1 [color=red");
  check "plain edge gray" true (contains dot "1 -- 2 [color=gray")

let () =
  Alcotest.run "gen"
    [
      ( "generators",
        [
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "tiny paths" `Quick test_path_tiny;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "theta" `Quick test_theta;
          Alcotest.test_case "ER extremes" `Quick test_erdos_renyi_extremes;
          Alcotest.test_case "ER density" `Quick test_erdos_renyi_density;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "barbell" `Quick test_barbell;
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
          Alcotest.test_case "gnm exact" `Quick test_gnm_exact_count;
          Alcotest.test_case "random regular" `Quick test_random_regular;
        ] );
      ( "io",
        [
          Alcotest.test_case "string roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments and errors" `Quick test_io_comments_and_errors;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "binary roundtrip" `Quick test_io_binary_roundtrip;
          Alcotest.test_case "binary corruption" `Quick test_io_binary_corruption;
          Alcotest.test_case "binary bad lengths" `Quick test_io_binary_bad_lengths;
          Alcotest.test_case "binary autodetect" `Quick test_io_binary_file_autodetect;
          Alcotest.test_case "dot highlight" `Quick test_dot_output;
        ] );
    ]
