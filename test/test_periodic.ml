(* Tests for the periodic asynchronous protocol and its stabilization
   bound (Section 2.3 remark: stabilizes within T + 2F after a
   topology change). *)
open Rs_graph
module Periodic = Rs_distributed.Periodic
module Fault = Rs_distributed.Fault

let check = Alcotest.(check bool)

(* dominating-tree construction used for the protocol: (2,0) greedy,
   radius requirement 1 *)
let tree20 g u = Rs_core.Dom_tree_k.gdy_k g ~k:1 u

let tree_r3 g u = Rs_core.Dom_tree.gdy g ~r:3 ~beta:1 u

let test_cold_start_converges () =
  let g = Gen.cycle 10 in
  let period = 4 and radius = 1 and horizon = 30 in
  let res = Periodic.simulate ~initial:g ~events:[] ~period ~radius ~horizon ~tree_of:tree20 () in
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never converged"
  | Some t ->
      (* cold start: everyone advertised within period, flood radius 1:
         T + 2F with slack for staggering *)
      check "cold start bound" true (t <= (2 * period) + (2 * radius) + 1));
  check "stays converged" true res.Periodic.matched.(horizon - 1)

let test_cold_start_radius3 () =
  let g = Gen.grid 4 5 in
  let period = 5 and radius = 3 and horizon = 40 in
  let res = Periodic.simulate ~initial:g ~events:[] ~period ~radius ~horizon ~tree_of:tree_r3 () in
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never converged"
  | Some t -> check "bound" true (t <= (2 * period) + (2 * radius) + 1));
  check "stays" true res.Periodic.matched.(horizon - 1)

let test_edge_addition_stabilizes () =
  let g = Gen.cycle 12 in
  let period = 4 and radius = 1 and horizon = 60 in
  let events = [ { Periodic.at = 30; add = [ (0, 6) ]; remove = [] } ] in
  let res = Periodic.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 () in
  check "was converged before the event" true res.Periodic.matched.(29);
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never re-converged"
  | Some t ->
      (* T + 2F after the change, with stagger slack *)
      check "stabilization bound" true (t <= 30 + (2 * period) + (2 * radius) + 1));
  check "stays converged" true res.Periodic.matched.(horizon - 1)

let test_edge_removal_stabilizes () =
  let g = Gen.grid 3 5 in
  let period = 4 and radius = 1 and horizon = 80 in
  let events = [ { Periodic.at = 30; add = []; remove = [ (0, 1) ] } ] in
  let res = Periodic.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 () in
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never re-converged"
  | Some t ->
      (* removals may need soft-state expiry: 2T + 2F slack *)
      check "stabilization bound" true (t <= 30 + (3 * period) + (2 * radius) + 1));
  check "stays converged" true res.Periodic.matched.(horizon - 1)

let test_multiple_events () =
  let g = Gen.cycle 9 in
  let period = 3 and radius = 1 and horizon = 70 in
  let events =
    [ { Periodic.at = 20; add = [ (0, 4) ]; remove = [] };
      { Periodic.at = 40; add = [ (2, 7) ]; remove = [ (0, 4) ] } ]
  in
  let res = Periodic.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 () in
  check "re-converges after both" true (res.Periodic.converged_at <> None);
  check "final state good" true res.Periodic.matched.(horizon - 1)

(* An incremental maintainer wired through [?incremental] must agree
   with the from-scratch target on every round, across topology
   events. *)
let test_incremental_maintainer_agrees () =
  let g = Gen.cycle 9 in
  let period = 3 and radius = 1 and horizon = 70 in
  let events =
    [ { Periodic.at = 20; add = [ (0, 4) ]; remove = [] };
      { Periodic.at = 40; add = [ (2, 7) ]; remove = [ (0, 4) ] } ]
  in
  let maintain =
    Rs_dynamic.Repair.incremental_target (Rs_dynamic.Repair.Gdy_k { k = 1 })
  in
  let res =
    Periodic.simulate ~incremental:maintain ~initial:g ~events ~period ~radius
      ~horizon ~tree_of:tree20 ()
  in
  check "no mismatching rounds" true (res.Periodic.incremental_mismatches = 0);
  check "still converges" true (res.Periodic.converged_at <> None);
  (* and a broken maintainer is caught by the equivalence gate *)
  let res =
    Periodic.simulate ~incremental:(fun _ -> []) ~initial:g ~events ~period
      ~radius ~horizon ~tree_of:tree20 ()
  in
  check "broken maintainer detected" true (res.Periodic.incremental_mismatches > 0)

let test_messages_accounted () =
  let g = Gen.cycle 8 in
  let res =
    Periodic.simulate ~initial:g ~events:[] ~period:4 ~radius:1 ~horizon:12
      ~tree_of:tree20 ()
  in
  (* every node originates 3 times over 12 rounds at 2 transmissions
     each (degree 2, ttl=1 so no forwarding); the two offset-3 nodes'
     last origination (round 11) is still in flight when the horizon
     ends *)
  Alcotest.(check int) "messages" (((8 * 3) - 2) * 2) res.Periodic.messages

let test_rejects_bad_params () =
  let g = Gen.cycle 5 in
  check "period 0" true
    (match Periodic.simulate ~initial:g ~events:[] ~period:0 ~radius:1 ~horizon:5 ~tree_of:tree20 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* Event validation (events must be sorted by [at]) *)

let test_unsorted_events_rejected () =
  let g = Gen.cycle 8 in
  let events =
    [ { Periodic.at = 30; add = [ (0, 4) ]; remove = [] };
      { Periodic.at = 20; add = []; remove = [ (0, 4) ] } ]
  in
  check "unsorted rejected, indices named" true
    (match
       Periodic.simulate ~initial:g ~events ~period:4 ~radius:1 ~horizon:50
         ~tree_of:tree20 ()
     with
    | _ -> false
    | exception Invalid_argument msg ->
        let contains sub =
          let n = String.length msg and k = String.length sub in
          let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
          scan 0
        in
        contains "events 0 and 1")

let test_expiry_rejects_bad () =
  let g = Gen.cycle 5 in
  check "expiry 0 rejected" true
    (match
       Periodic.simulate ~expiry:0 ~initial:g ~events:[] ~period:4 ~radius:1 ~horizon:5
         ~tree_of:tree20 ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* Reference copy of the pre-fault protocol (test_hotpath pattern):
   with no fault plan, [simulate] must agree with this on every
   observable. *)

module Ref_periodic = struct
  module Tree = Rs_graph.Tree

  type entry = { seq : int; nbrs : int array; heard_at : int }
  type msg = { origin : int; mseq : int; mnbrs : int array; ttl : int }

  let canonical (a, b) = if a < b then (a, b) else (b, a)

  module Pair_set = Set.Make (struct
    type t = int * int

    let compare = compare
  end)

  let apply_events g events t =
    List.fold_left
      (fun g ev ->
        if ev.Periodic.at <> t then g
        else begin
          let removals = List.map canonical ev.Periodic.remove in
          let kept =
            Graph.fold_edges
              (fun acc a b ->
                if List.mem (canonical (a, b)) removals then acc else (a, b) :: acc)
              [] g
          in
          Graph.make ~n:(Graph.n g) (List.rev_append ev.Periodic.add kept)
        end)
      g events

  let recompute_tree ~tree_of g cache u =
    let lists = Hashtbl.create 16 in
    Hashtbl.iter (fun origin e -> Hashtbl.replace lists origin e.nbrs) cache;
    Hashtbl.replace lists u (Graph.neighbors g u);
    let verts = Hashtbl.create 32 in
    Hashtbl.iter
      (fun origin nbrs ->
        Hashtbl.replace verts origin ();
        Array.iter (fun w -> Hashtbl.replace verts w ()) nbrs)
      lists;
    let vs =
      Array.of_list (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) verts []))
    in
    let fwd = Hashtbl.create (Array.length vs) in
    Array.iteri (fun i v -> Hashtbl.replace fwd v i) vs;
    let edges = ref [] in
    Hashtbl.iter
      (fun origin nbrs ->
        let o = Hashtbl.find fwd origin in
        Array.iter (fun w -> edges := (o, Hashtbl.find fwd w) :: !edges) nbrs)
      lists;
    let local = Graph.make ~n:(Array.length vs) !edges in
    let t_local = tree_of local (Hashtbl.find fwd u) in
    let by_depth =
      List.sort
        (fun (p1, _) (p2, _) ->
          compare (Tree.depth t_local p1, p1) (Tree.depth t_local p2, p2))
        (Tree.edges t_local)
    in
    List.map (fun (p, c) -> canonical (vs.(p), vs.(c))) by_depth

  let simulate ~initial ~events ~period ~radius ~horizon ~tree_of () =
    let n = Graph.n initial in
    let expiry = 2 * period in
    let caches = Array.init n (fun _ -> (Hashtbl.create 16 : (int, entry) Hashtbl.t)) in
    let trees = Array.make n [] in
    let dirty = Array.make n true in
    let seqs = Array.make n 0 in
    let inboxes = Array.make n ([] : msg list) in
    let outboxes = Array.make n ([] : msg list) in
    let messages = ref 0 in
    let matched = Array.make horizon false in
    let g = ref initial in
    let target_cache = Hashtbl.create 4 in
    let target g =
      let key = Graph.edges g in
      match Hashtbl.find_opt target_cache key with
      | Some s -> s
      | None ->
          let s =
            Graph.fold_vertices
              (fun acc u ->
                List.fold_left
                  (fun acc e -> Pair_set.add e acc)
                  acc
                  (List.map canonical (Tree.edges (tree_of g u))))
              Pair_set.empty g
          in
          Hashtbl.replace target_cache key s;
          s
    in
    for t = 0 to horizon - 1 do
      g := apply_events !g events t;
      let gt = !g in
      for u = 0 to n - 1 do
        dirty.(u) <- true
      done;
      Array.iteri
        (fun u msgs ->
          List.iter
            (fun m ->
              Array.iter
                (fun v ->
                  incr messages;
                  inboxes.(v) <- m :: inboxes.(v))
                (Graph.neighbors gt u))
            msgs)
        outboxes;
      Array.fill outboxes 0 n [];
      for u = 0 to n - 1 do
        List.iter
          (fun m ->
            if m.origin <> u then begin
              let fresher =
                match Hashtbl.find_opt caches.(u) m.origin with
                | Some e -> m.mseq > e.seq
                | None -> true
              in
              if fresher then begin
                Hashtbl.replace caches.(u) m.origin
                  { seq = m.mseq; nbrs = m.mnbrs; heard_at = t };
                dirty.(u) <- true;
                if m.ttl > 1 then
                  outboxes.(u) <- { m with ttl = m.ttl - 1 } :: outboxes.(u)
              end
            end)
          inboxes.(u);
        inboxes.(u) <- []
      done;
      for u = 0 to n - 1 do
        if t mod period = u mod period then begin
          seqs.(u) <- seqs.(u) + 1;
          outboxes.(u) <-
            { origin = u; mseq = seqs.(u); mnbrs = Graph.neighbors gt u; ttl = radius }
            :: outboxes.(u)
        end
      done;
      for u = 0 to n - 1 do
        let stale =
          Hashtbl.fold
            (fun origin e acc -> if t - e.heard_at > expiry then origin :: acc else acc)
            caches.(u) []
        in
        if stale <> [] then begin
          List.iter (Hashtbl.remove caches.(u)) stale;
          dirty.(u) <- true
        end
      done;
      for u = 0 to n - 1 do
        if dirty.(u) then begin
          trees.(u) <- recompute_tree ~tree_of gt caches.(u) u;
          dirty.(u) <- false
        end
      done;
      let union =
        Array.fold_left
          (fun acc es -> List.fold_left (fun acc e -> Pair_set.add e acc) acc es)
          Pair_set.empty trees
      in
      matched.(t) <- Pair_set.equal union (target gt)
    done;
    let last_event = List.fold_left (fun acc ev -> max acc ev.Periodic.at) 0 events in
    let converged_at =
      let rec scan best t =
        if t < last_event then best
        else if matched.(t) then scan (Some t) (t - 1)
        else best
      in
      if horizon = 0 then None else scan None (horizon - 1)
    in
    (converged_at, matched, !messages)
end

let test_no_faults_matches_reference () =
  let scenarios =
    [
      ("cycle cold", Gen.cycle 10, [], 4, 1, 30);
      ( "cycle events",
        Gen.cycle 9,
        [ { Periodic.at = 20; add = [ (0, 4) ]; remove = [] };
          { Periodic.at = 40; add = [ (2, 7) ]; remove = [ (0, 4) ] } ],
        3,
        1,
        70 );
      ( "grid removal",
        Gen.grid 3 5,
        [ { Periodic.at = 30; add = []; remove = [ (0, 1) ] } ],
        4,
        1,
        80 );
    ]
  in
  List.iter
    (fun (name, g, events, period, radius, horizon) ->
      let res =
        Periodic.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 ()
      in
      let ref_conv, ref_matched, ref_messages =
        Ref_periodic.simulate ~initial:g ~events ~period ~radius ~horizon
          ~tree_of:tree20 ()
      in
      check (name ^ " converged_at identical") true
        (res.Periodic.converged_at = ref_conv);
      check (name ^ " matched identical") true (res.Periodic.matched = ref_matched);
      Alcotest.(check int) (name ^ " messages identical") ref_messages
        res.Periodic.messages;
      Alcotest.(check int) (name ^ " nothing lost") 0 res.Periodic.lost)
    scenarios

(* ---------------------------------------------------------------- *)
(* Self-stabilization under faults *)

let test_loss_then_stabilize () =
  let g = Gen.cycle 12 in
  let faults = Fault.make ~drop:0.3 ~until:24 ~seed:11 () in
  let res =
    Periodic.simulate ~faults ~initial:g ~events:[] ~period:4 ~radius:1 ~horizon:80
      ~tree_of:tree20 ()
  in
  Alcotest.(check int) "quiet once the loss window closes" 24 res.Periodic.quiet_at;
  check "losses recorded" true (res.Periodic.lost > 0);
  check "self-stabilizes within a generous bound" true
    (Periodic.self_stabilizes res ~bound:30);
  (match Periodic.stabilization_lag res with
  | None -> Alcotest.fail "no lag reported"
  | Some lag -> check "lag within bound" true (lag >= 0 && lag <= 30));
  check "stays converged" true res.Periodic.matched.(79)

let test_crash_recover_stabilizes () =
  let g = Gen.grid 3 4 in
  let faults =
    Fault.make ~crashes:[ { Fault.node = 5; at = 20; recover = Some 40 } ] ~seed:7 ()
  in
  let res =
    Periodic.simulate ~faults ~initial:g ~events:[] ~period:4 ~radius:1 ~horizon:100
      ~tree_of:tree20 ()
  in
  Alcotest.(check int) "quiet at the recovery" 40 res.Periodic.quiet_at;
  check "re-converges after the recovery" true
    (Periodic.self_stabilizes res ~bound:30);
  check "stays converged" true res.Periodic.matched.(99)

let test_unrecovered_crash_never_quiet () =
  let g = Gen.cycle 10 in
  let faults =
    Fault.make ~crashes:[ { Fault.node = 3; at = 30; recover = None } ] ~seed:7 ()
  in
  (* the crashed node's edges leave the graph when it dies: the live
     nodes should settle on the residual topology once the phantom
     advertisement of node 3 ages out of its neighbors' caches *)
  let events = [ { Periodic.at = 30; add = []; remove = [ (2, 3); (3, 4) ] } ] in
  let run ?expiry () =
    Periodic.simulate ?expiry ~faults ~initial:g ~events ~period:4 ~radius:1
      ~horizon:80 ~tree_of:tree20 ()
  in
  let res = run () in
  Alcotest.(check int) "faults never cease" max_int res.Periodic.quiet_at;
  check "so converged_at is None" true (res.Periodic.converged_at = None);
  check "and the lag is undefined" true (Periodic.stabilization_lag res = None);
  (* ... but the per-round match flags still show recovery with the
     default soft-state expiry ... *)
  check "default expiry clears the phantom" true res.Periodic.matched.(79);
  (* ... and never recover when cached state cannot expire *)
  let frozen = run ~expiry:1000 () in
  check "huge expiry pins the phantom" false frozen.Periodic.matched.(79)

let test_self_stabilization_property () =
  (* Acceptance criterion: on random connected UDGs, with message loss
     <= 0.3 plus a crash/recover event, the protocol self-stabilizes
     once faults cease. *)
  let tested = ref 0 in
  let seed = ref 0 in
  while !tested < 5 && !seed < 40 do
    incr seed;
    let pts =
      Rs_geometry.Sampler.uniform (Rand.create !seed) ~n:22 ~dim:2 ~side:4.0
    in
    let g = Rs_geometry.Unit_ball.udg ~radius:1.6 pts in
    if Connectivity.is_connected g && Graph.m g < 120 then begin
      incr tested;
      let faults =
        Fault.make ~drop:0.25 ~until:30 ~seed:(100 + !seed)
          ~crashes:[ { Fault.node = !seed mod 22; at = 10; recover = Some 30 } ]
          ()
      in
      let res =
        Periodic.simulate ~faults ~initial:g ~events:[] ~period:4 ~radius:1
          ~horizon:120 ~tree_of:tree20 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d quiet at 30" !seed)
        30 res.Periodic.quiet_at;
      check
        (Printf.sprintf "seed %d self-stabilizes" !seed)
        true
        (Periodic.self_stabilizes res ~bound:40)
    end
  done;
  check "found enough connected instances" true (!tested >= 5)

let test_faulty_run_reproducible () =
  let g = Gen.grid 3 4 in
  let run () =
    let faults =
      Fault.make ~drop:0.2 ~dup:0.1 ~delay:1 ~seed:13
        ~crashes:[ { Fault.node = 2; at = 15; recover = Some 35 } ]
        ()
    in
    Periodic.simulate ~faults ~initial:g ~events:[] ~period:4 ~radius:1 ~horizon:60
      ~tree_of:tree20 ()
  in
  let a = run () and b = run () in
  check "identical results from the same plan seed" true
    (a.Periodic.converged_at = b.Periodic.converged_at
    && a.Periodic.matched = b.Periodic.matched
    && a.Periodic.messages = b.Periodic.messages
    && a.Periodic.lost = b.Periodic.lost)

let () =
  Alcotest.run "periodic"
    [
      ( "stabilization",
        [
          Alcotest.test_case "cold start r=1" `Quick test_cold_start_converges;
          Alcotest.test_case "cold start r=3" `Quick test_cold_start_radius3;
          Alcotest.test_case "edge addition" `Quick test_edge_addition_stabilizes;
          Alcotest.test_case "edge removal" `Quick test_edge_removal_stabilizes;
          Alcotest.test_case "multiple events" `Quick test_multiple_events;
          Alcotest.test_case "incremental maintainer" `Quick
            test_incremental_maintainer_agrees;
          Alcotest.test_case "message accounting" `Quick test_messages_accounted;
          Alcotest.test_case "bad params" `Quick test_rejects_bad_params;
          Alcotest.test_case "unsorted events rejected" `Quick test_unsorted_events_rejected;
          Alcotest.test_case "bad expiry rejected" `Quick test_expiry_rejects_bad;
          Alcotest.test_case "no faults = reference" `Quick test_no_faults_matches_reference;
        ] );
      ( "self-stabilization",
        [
          Alcotest.test_case "loss window then stabilize" `Quick test_loss_then_stabilize;
          Alcotest.test_case "crash/recover stabilizes" `Quick test_crash_recover_stabilizes;
          Alcotest.test_case "unrecovered crash + expiry" `Quick test_unrecovered_crash_never_quiet;
          Alcotest.test_case "random UDG property" `Slow test_self_stabilization_property;
          Alcotest.test_case "faulty run reproducible" `Quick test_faulty_run_reproducible;
        ] );
    ]
