(* Tests for the periodic asynchronous protocol and its stabilization
   bound (Section 2.3 remark: stabilizes within T + 2F after a
   topology change). *)
open Rs_graph
module Periodic = Rs_distributed.Periodic

let check = Alcotest.(check bool)

(* dominating-tree construction used for the protocol: (2,0) greedy,
   radius requirement 1 *)
let tree20 g u = Rs_core.Dom_tree_k.gdy_k g ~k:1 u

let tree_r3 g u = Rs_core.Dom_tree.gdy g ~r:3 ~beta:1 u

let test_cold_start_converges () =
  let g = Gen.cycle 10 in
  let period = 4 and radius = 1 and horizon = 30 in
  let res = Periodic.simulate ~initial:g ~events:[] ~period ~radius ~horizon ~tree_of:tree20 () in
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never converged"
  | Some t ->
      (* cold start: everyone advertised within period, flood radius 1:
         T + 2F with slack for staggering *)
      check "cold start bound" true (t <= (2 * period) + (2 * radius) + 1));
  check "stays converged" true res.Periodic.matched.(horizon - 1)

let test_cold_start_radius3 () =
  let g = Gen.grid 4 5 in
  let period = 5 and radius = 3 and horizon = 40 in
  let res = Periodic.simulate ~initial:g ~events:[] ~period ~radius ~horizon ~tree_of:tree_r3 () in
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never converged"
  | Some t -> check "bound" true (t <= (2 * period) + (2 * radius) + 1));
  check "stays" true res.Periodic.matched.(horizon - 1)

let test_edge_addition_stabilizes () =
  let g = Gen.cycle 12 in
  let period = 4 and radius = 1 and horizon = 60 in
  let events = [ { Periodic.at = 30; add = [ (0, 6) ]; remove = [] } ] in
  let res = Periodic.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 () in
  check "was converged before the event" true res.Periodic.matched.(29);
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never re-converged"
  | Some t ->
      (* T + 2F after the change, with stagger slack *)
      check "stabilization bound" true (t <= 30 + (2 * period) + (2 * radius) + 1));
  check "stays converged" true res.Periodic.matched.(horizon - 1)

let test_edge_removal_stabilizes () =
  let g = Gen.grid 3 5 in
  let period = 4 and radius = 1 and horizon = 80 in
  let events = [ { Periodic.at = 30; add = []; remove = [ (0, 1) ] } ] in
  let res = Periodic.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 () in
  (match res.Periodic.converged_at with
  | None -> Alcotest.fail "never re-converged"
  | Some t ->
      (* removals may need soft-state expiry: 2T + 2F slack *)
      check "stabilization bound" true (t <= 30 + (3 * period) + (2 * radius) + 1));
  check "stays converged" true res.Periodic.matched.(horizon - 1)

let test_multiple_events () =
  let g = Gen.cycle 9 in
  let period = 3 and radius = 1 and horizon = 70 in
  let events =
    [ { Periodic.at = 20; add = [ (0, 4) ]; remove = [] };
      { Periodic.at = 40; add = [ (2, 7) ]; remove = [ (0, 4) ] } ]
  in
  let res = Periodic.simulate ~initial:g ~events ~period ~radius ~horizon ~tree_of:tree20 () in
  check "re-converges after both" true (res.Periodic.converged_at <> None);
  check "final state good" true res.Periodic.matched.(horizon - 1)

let test_messages_accounted () =
  let g = Gen.cycle 8 in
  let res =
    Periodic.simulate ~initial:g ~events:[] ~period:4 ~radius:1 ~horizon:12
      ~tree_of:tree20 ()
  in
  (* every node originates 3 times over 12 rounds at 2 transmissions
     each (degree 2, ttl=1 so no forwarding); the two offset-3 nodes'
     last origination (round 11) is still in flight when the horizon
     ends *)
  Alcotest.(check int) "messages" (((8 * 3) - 2) * 2) res.Periodic.messages

let test_rejects_bad_params () =
  let g = Gen.cycle 5 in
  check "period 0" true
    (match Periodic.simulate ~initial:g ~events:[] ~period:0 ~radius:1 ~horizon:5 ~tree_of:tree20 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "periodic"
    [
      ( "stabilization",
        [
          Alcotest.test_case "cold start r=1" `Quick test_cold_start_converges;
          Alcotest.test_case "cold start r=3" `Quick test_cold_start_radius3;
          Alcotest.test_case "edge addition" `Quick test_edge_addition_stabilizes;
          Alcotest.test_case "edge removal" `Quick test_edge_removal_stabilizes;
          Alcotest.test_case "multiple events" `Quick test_multiple_events;
          Alcotest.test_case "message accounting" `Quick test_messages_accounted;
          Alcotest.test_case "bad params" `Quick test_rejects_bad_params;
        ] );
    ]
