(* Tests for min-cost flow, disjoint paths, connectivity, matching. *)
open Rs_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Mincost_flow *)

let test_flow_simple_path () =
  let net = Mincost_flow.create 3 in
  Mincost_flow.add_arc net ~src:0 ~dst:1 ~cap:1 ~cost:2;
  Mincost_flow.add_arc net ~src:1 ~dst:2 ~cap:1 ~cost:3;
  Alcotest.(check (list int)) "one unit cost 5" [ 5 ]
    (Mincost_flow.min_cost_units net ~s:0 ~t_:2 ~max_units:4)

let test_flow_picks_cheaper_path_first () =
  let net = Mincost_flow.create 4 in
  Mincost_flow.add_arc net ~src:0 ~dst:1 ~cap:1 ~cost:1;
  Mincost_flow.add_arc net ~src:1 ~dst:3 ~cap:1 ~cost:1;
  Mincost_flow.add_arc net ~src:0 ~dst:2 ~cap:1 ~cost:5;
  Mincost_flow.add_arc net ~src:2 ~dst:3 ~cap:1 ~cost:5;
  Alcotest.(check (list int)) "2 then 10" [ 2; 10 ]
    (Mincost_flow.min_cost_units net ~s:0 ~t_:3 ~max_units:3)

let test_flow_needs_rerouting () =
  (* Classic case where the second augmentation must push flow back:
     0->1 (c0), 1->3 (c0), 0->2 (c1), 2->3 (c1), and a middle arc
     1->2 (c0). First unit greedily goes 0-1-2-3? No: costs make
     0-1-3 cost 0 first, then second must use 0-2-3 cost 2. With the
     middle arc the optimum stays the same, but a naive path search
     without residuals would fail on:
     0->1 cap1 c0 ; 1->3 cap1 c0 ; 0->2 cap1 c0 ; 2->3 cap1 c0;
     1->2 cap1 c0 when first path is forced through 1->2. *)
  let net = Mincost_flow.create 4 in
  Mincost_flow.add_arc net ~src:0 ~dst:1 ~cap:1 ~cost:0;
  Mincost_flow.add_arc net ~src:1 ~dst:2 ~cap:1 ~cost:0;
  Mincost_flow.add_arc net ~src:2 ~dst:3 ~cap:1 ~cost:0;
  Mincost_flow.add_arc net ~src:1 ~dst:3 ~cap:1 ~cost:3;
  Mincost_flow.add_arc net ~src:0 ~dst:2 ~cap:1 ~cost:3;
  let units = Mincost_flow.min_cost_units net ~s:0 ~t_:3 ~max_units:2 in
  check_int "both units" 2 (List.length units);
  check_int "total cost 6" 6 (List.fold_left ( + ) 0 units)

let test_flow_saturates () =
  let net = Mincost_flow.create 2 in
  Mincost_flow.add_arc net ~src:0 ~dst:1 ~cap:2 ~cost:1;
  Alcotest.(check (list int)) "cap 2" [ 1; 1 ]
    (Mincost_flow.min_cost_units net ~s:0 ~t_:1 ~max_units:5)

let test_flow_disconnected () =
  let net = Mincost_flow.create 3 in
  Mincost_flow.add_arc net ~src:0 ~dst:1 ~cap:1 ~cost:1;
  Alcotest.(check (list int)) "none" []
    (Mincost_flow.min_cost_units net ~s:0 ~t_:2 ~max_units:1)

let test_flow_monotone_unit_costs () =
  (* successive augmentations have non-decreasing real cost *)
  let rand = Rand.create 5 in
  for _trial = 1 to 20 do
    let n = 8 in
    let net = Mincost_flow.create n in
    for _ = 1 to 20 do
      let a = Rand.int rand n and b = Rand.int rand n in
      if a <> b then Mincost_flow.add_arc net ~src:a ~dst:b ~cap:1 ~cost:(Rand.int rand 5)
    done;
    let units = Mincost_flow.min_cost_units net ~s:0 ~t_:(n - 1) ~max_units:4 in
    let rec mono = function
      | a :: (b :: _ as rest) -> a <= b && mono rest
      | _ -> true
    in
    check "monotone" true (mono units)
  done

let test_flow_on_and_arcs () =
  let net = Mincost_flow.create 3 in
  Mincost_flow.add_arc net ~src:0 ~dst:1 ~cap:2 ~cost:1;
  Mincost_flow.add_arc net ~src:1 ~dst:2 ~cap:1 ~cost:1;
  Mincost_flow.add_arc net ~src:0 ~dst:2 ~cap:1 ~cost:5;
  ignore (Mincost_flow.min_cost_units net ~s:0 ~t_:2 ~max_units:2);
  check_int "arc 0 carries 1" 1 (Mincost_flow.flow_on net ~arc:0);
  check_int "arc 1 carries 1" 1 (Mincost_flow.flow_on net ~arc:1);
  check_int "arc 2 carries 1" 1 (Mincost_flow.flow_on net ~arc:2);
  let with_flow = Mincost_flow.arcs_with_flow net in
  check_int "three flowing arcs" 3 (List.length with_flow);
  List.iter (fun (_, _, f) -> check "positive" true (f > 0)) with_flow

let test_flow_rejects_negative () =
  let net = Mincost_flow.create 2 in
  check "negative cap" true
    (match Mincost_flow.add_arc net ~src:0 ~dst:1 ~cap:(-1) ~cost:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "node range" true
    (match Mincost_flow.add_arc net ~src:0 ~dst:5 ~cap:1 ~cost:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Disjoint_paths *)

let theta34 = Gen.theta 3 4 (* 3 disjoint paths of length 5 between 0 and 1 *)

let test_dk_theta () =
  Alcotest.(check (option int)) "d1" (Some 5) (Disjoint_paths.dk theta34 ~k:1 0 1);
  Alcotest.(check (option int)) "d2" (Some 10) (Disjoint_paths.dk theta34 ~k:2 0 1);
  Alcotest.(check (option int)) "d3" (Some 15) (Disjoint_paths.dk theta34 ~k:3 0 1);
  Alcotest.(check (option int)) "d4 absent" None (Disjoint_paths.dk theta34 ~k:4 0 1)

let test_dk_profile_cycle () =
  let c = Gen.cycle 7 in
  (* between antipodal-ish nodes 0 and 3: paths of length 3 and 4 *)
  let p = Disjoint_paths.dk_profile c ~kmax:3 0 3 in
  Alcotest.(check (array int)) "profile" [| 3; 7 |] p

let test_dk_adjacent_pair () =
  let k4 = Gen.complete 4 in
  (* adjacent s,t: direct edge, then 2 two-hop paths *)
  let p = Disjoint_paths.dk_profile k4 ~kmax:3 0 1 in
  Alcotest.(check (array int)) "k4 profile" [| 1; 3; 5 |] p

let test_max_disjoint () =
  check_int "theta" 3 (Disjoint_paths.max_disjoint theta34 0 1);
  check_int "petersen" 3 (Disjoint_paths.max_disjoint (Gen.petersen ()) 0 7);
  check_int "path" 1 (Disjoint_paths.max_disjoint (Gen.path_graph 5) 0 4);
  let g = Graph.make ~n:4 [ (0, 1); (2, 3) ] in
  check_int "disconnected" 0 (Disjoint_paths.max_disjoint g 0 3)

let test_min_sum_paths_valid_and_disjoint () =
  match Disjoint_paths.min_sum_paths theta34 ~k:3 0 1 with
  | None -> Alcotest.fail "expected 3 paths"
  | Some paths ->
      check_int "three" 3 (List.length paths);
      List.iter (fun p -> check "valid" true (Path.is_valid theta34 p)) paths;
      List.iter
        (fun p ->
          check_int "src" 0 (Path.source p);
          check_int "dst" 1 (Path.target p))
        paths;
      check "disjoint" true (Path.pairwise_disjoint paths);
      check_int "total length 15" 15
        (List.fold_left (fun acc p -> acc + Path.length p) 0 paths)

let test_min_sum_paths_infeasible () =
  check "infeasible" true (Disjoint_paths.min_sum_paths (Gen.path_graph 4) ~k:2 0 3 = None)

let test_dk_vs_bruteforce_small () =
  (* d^1 must equal BFS distance on assorted graphs *)
  List.iter
    (fun g ->
      let n = Graph.n g in
      for s = 0 to n - 1 do
        for t = 0 to n - 1 do
          if s <> t then begin
            let bfs = Bfs.dist_pair g s t in
            let d1 = Disjoint_paths.dk g ~k:1 s t in
            match d1 with
            | None -> check_int "both unreachable" (-1) bfs
            | Some d -> check_int "d1 = bfs" bfs d
          end
        done
      done)
    [ Gen.petersen (); Gen.cycle 5; Gen.grid 3 4; Gen.complete 5 ]

(* ------------------------------------------------------------------ *)
(* Connectivity *)

let test_components () =
  let g = Graph.make ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  let label = Connectivity.components g in
  check "same comp" true (label.(0) = label.(2));
  check "diff comp" true (label.(0) <> label.(3));
  check_int "count" 2 (Connectivity.component_count g)

let test_is_connected () =
  check "cycle" true (Connectivity.is_connected (Gen.cycle 4));
  check "empty graph" true (Connectivity.is_connected (Gen.empty 0));
  check "single" true (Connectivity.is_connected (Gen.empty 1));
  check "two isolated" false (Connectivity.is_connected (Gen.empty 2))

let test_pair_connectivity_petersen () =
  (* Petersen graph is 3-connected *)
  let g = Gen.petersen () in
  Graph.iter_vertices
    (fun s ->
      Graph.iter_vertices
        (fun t ->
          if s < t && not (Graph.mem_edge g s t) then
            check_int "3-connected" 3 (Connectivity.pair_connectivity g s t))
        g)
    g

let test_k_connected_pair () =
  check "2-conn cycle" true (Connectivity.is_k_connected_pair (Gen.cycle 6) ~k:2 0 3);
  check "not 3-conn cycle" false (Connectivity.is_k_connected_pair (Gen.cycle 6) ~k:3 0 3);
  check "k=0 trivial" true (Connectivity.is_k_connected_pair (Gen.empty 2) ~k:0 0 1)

let test_min_degree () =
  check_int "path" 1 (Connectivity.min_degree (Gen.path_graph 4));
  check_int "cycle" 2 (Connectivity.min_degree (Gen.cycle 5));
  check_int "empty" 0 (Connectivity.min_degree (Gen.empty 3))

let test_cut_vertices_basic () =
  Alcotest.(check (list int)) "path internals" [ 1; 2; 3 ]
    (Connectivity.cut_vertices (Gen.path_graph 5));
  Alcotest.(check (list int)) "cycle none" [] (Connectivity.cut_vertices (Gen.cycle 6));
  Alcotest.(check (list int)) "star center" [ 0 ] (Connectivity.cut_vertices (Gen.star 5));
  Alcotest.(check (list int)) "petersen none" []
    (Connectivity.cut_vertices (Gen.petersen ()));
  (* bow-tie: two triangles sharing vertex 2 *)
  let bowtie = Graph.make ~n:5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  Alcotest.(check (list int)) "bowtie hinge" [ 2 ] (Connectivity.cut_vertices bowtie)

let test_cut_vertices_barbell () =
  (* barbell 4: bridge endpoints 3 and 4 are the articulation points *)
  Alcotest.(check (list int)) "barbell" [ 3; 4 ] (Connectivity.cut_vertices (Gen.barbell 4))

let test_cut_vertices_match_removal () =
  (* brute-force cross-check: v is a cut vertex iff deleting it
     increases the component count of its component *)
  let rand = Rand.create 71 in
  for _trial = 1 to 10 do
    let g = Gen.erdos_renyi rand 14 0.18 in
    let fast = Connectivity.cut_vertices g in
    let slow =
      Graph.fold_vertices
        (fun acc v ->
          if Graph.degree g v = 0 then acc
          else begin
            (* remove_vertex leaves v isolated: discount that one
               component; v is an articulation point iff the rest
               splits further *)
            let g' = Graph.remove_vertex g v in
            let before = Connectivity.component_count g in
            let after = Connectivity.component_count g' - 1 in
            if after > before then v :: acc else acc
          end)
        [] g
    in
    Alcotest.(check (list int)) "agree" (List.sort compare slow) fast
  done

let test_bridges () =
  Alcotest.(check (list (pair int int))) "path all" [ (0, 1); (1, 2); (2, 3) ]
    (Connectivity.bridges (Gen.path_graph 4));
  Alcotest.(check (list (pair int int))) "cycle none" [] (Connectivity.bridges (Gen.cycle 5));
  Alcotest.(check (list (pair int int))) "barbell bridge" [ (3, 4) ]
    (Connectivity.bridges (Gen.barbell 4))

(* ------------------------------------------------------------------ *)
(* Matching *)

let test_matching_perfect () =
  let edges = [ (0, 0); (0, 1); (1, 1); (2, 2) ] in
  check_int "size" 3 (Matching.matching_size ~left:3 ~right:3 edges)

let test_matching_augmenting () =
  (* requires an augmenting flip: 0-(0), 1-(0),(1) *)
  let edges = [ (0, 0); (1, 0); (1, 1) ] in
  check_int "size 2" 2 (Matching.matching_size ~left:2 ~right:2 edges)

let test_matching_empty () =
  check_int "empty" 0 (Matching.matching_size ~left:3 ~right:3 [])

let test_matching_valid_pairs () =
  let edges = [ (0, 1); (1, 0); (2, 1); (0, 2) ] in
  let pairs = Matching.max_matching ~left:3 ~right:3 edges in
  List.iter (fun (l, r) -> check "pair is an edge" true (List.mem (l, r) edges)) pairs;
  let ls = List.map fst pairs and rs = List.map snd pairs in
  check "left distinct" true (List.length ls = List.length (List.sort_uniq compare ls));
  check "right distinct" true (List.length rs = List.length (List.sort_uniq compare rs))

let () =
  Alcotest.run "flow"
    [
      ( "mincost_flow",
        [
          Alcotest.test_case "simple path" `Quick test_flow_simple_path;
          Alcotest.test_case "cheaper path first" `Quick test_flow_picks_cheaper_path_first;
          Alcotest.test_case "rerouting via residuals" `Quick test_flow_needs_rerouting;
          Alcotest.test_case "saturation" `Quick test_flow_saturates;
          Alcotest.test_case "disconnected" `Quick test_flow_disconnected;
          Alcotest.test_case "monotone unit costs" `Quick test_flow_monotone_unit_costs;
          Alcotest.test_case "flow_on / arcs_with_flow" `Quick test_flow_on_and_arcs;
          Alcotest.test_case "rejects bad arcs" `Quick test_flow_rejects_negative;
        ] );
      ( "disjoint_paths",
        [
          Alcotest.test_case "theta d^k" `Quick test_dk_theta;
          Alcotest.test_case "cycle profile" `Quick test_dk_profile_cycle;
          Alcotest.test_case "adjacent pair" `Quick test_dk_adjacent_pair;
          Alcotest.test_case "max disjoint" `Quick test_max_disjoint;
          Alcotest.test_case "paths valid+disjoint" `Quick test_min_sum_paths_valid_and_disjoint;
          Alcotest.test_case "infeasible" `Quick test_min_sum_paths_infeasible;
          Alcotest.test_case "d^1 = bfs" `Quick test_dk_vs_bruteforce_small;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
          Alcotest.test_case "petersen 3-connected" `Quick test_pair_connectivity_petersen;
          Alcotest.test_case "k-connected pair" `Quick test_k_connected_pair;
          Alcotest.test_case "min degree" `Quick test_min_degree;
          Alcotest.test_case "cut vertices" `Quick test_cut_vertices_basic;
          Alcotest.test_case "cut vertices barbell" `Quick test_cut_vertices_barbell;
          Alcotest.test_case "cut vertices = removal test" `Quick test_cut_vertices_match_removal;
          Alcotest.test_case "bridges" `Quick test_bridges;
        ] );
      ( "matching",
        [
          Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "augmenting path" `Quick test_matching_augmenting;
          Alcotest.test_case "empty" `Quick test_matching_empty;
          Alcotest.test_case "valid pairs" `Quick test_matching_valid_pairs;
        ] );
    ]
