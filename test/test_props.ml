(* Property-based tests (qcheck): theorem-level invariants on random
   inputs, registered as alcotest cases. *)
open Rs_graph
open Rs_core

(* ---------------------------------------------------------------- *)
(* Generators *)

let graph_of_seed ~max_n seed =
  let rand = Rand.create seed in
  let n = 2 + Rand.int rand (max_n - 1) in
  match Rand.int rand 4 with
  | 0 -> Gen.erdos_renyi rand n (0.1 +. Rand.float rand 0.4)
  | 1 -> Gen.random_connected rand n 0.1
  | 2 ->
      let side = sqrt (float_of_int n /. 3.0) in
      let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
      Rs_geometry.Unit_ball.udg pts
  | _ -> Gen.random_tree rand n

let arb_graph ~max_n =
  QCheck2.Gen.map (graph_of_seed ~max_n) QCheck2.Gen.(int_range 0 1_000_000)

let make_test ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* ---------------------------------------------------------------- *)
(* Properties *)

let prop_exact_distance_rs g =
  Verify.is_remote_spanner g (Remote_spanner.exact_distance g) ~alpha:1.0 ~beta:0.0

let prop_low_stretch_rs g =
  let eps = 0.5 in
  Verify.is_remote_spanner g (Remote_spanner.low_stretch g ~eps) ~alpha:1.5 ~beta:0.0

let prop_rem_span_eps1 g =
  Verify.is_remote_spanner g (Remote_spanner.rem_span g ~r:2 ~beta:1) ~alpha:2.0 ~beta:(-1.0)

let prop_gdy_trees_dominate g =
  Graph.fold_vertices
    (fun acc u -> acc && Dom_tree.is_dominating g ~r:3 ~beta:0 (Dom_tree.gdy g ~r:3 ~beta:0 u))
    true g

let prop_mis_trees_dominate g =
  Graph.fold_vertices
    (fun acc u -> acc && Dom_tree.is_dominating g ~r:3 ~beta:1 (Dom_tree.mis g ~r:3 u))
    true g

let prop_gdy_k_trees g =
  Graph.fold_vertices
    (fun acc u -> acc && Dom_tree_k.is_k_dominating g ~k:2 ~beta:0 (Dom_tree_k.gdy_k g ~k:2 u))
    true g

let prop_mis_k_trees g =
  Graph.fold_vertices
    (fun acc u -> acc && Dom_tree_k.is_k_dominating g ~k:2 ~beta:1 (Dom_tree_k.mis_k g ~k:2 u))
    true g

let prop_two_connecting g =
  Verify.is_k_connecting g (Remote_spanner.two_connecting g) ~alpha:2.0 ~beta:(-1.0) ~k:2

let prop_k_connecting g =
  Verify.is_k_connecting g (Remote_spanner.k_connecting g ~k:2) ~alpha:1.0 ~beta:0.0 ~k:2

let prop_dk_profile_increasing g =
  let n = Graph.n g in
  let rand = Rand.create (Graph.m g) in
  let ok = ref true in
  for _ = 1 to 10 do
    let s = Rand.int rand n and t = Rand.int rand n in
    if s <> t then begin
      let p = Disjoint_paths.dk_profile g ~kmax:3 s t in
      for i = 1 to Array.length p - 1 do
        (* each extra path adds at least one edge *)
        if p.(i) <= p.(i - 1) then ok := false
      done
    end
  done;
  !ok

let prop_min_sum_paths_consistent g =
  let n = Graph.n g in
  let rand = Rand.create (Graph.n g + 7) in
  let ok = ref true in
  for _ = 1 to 6 do
    let s = Rand.int rand n and t = Rand.int rand n in
    if s <> t then
      match Disjoint_paths.min_sum_paths g ~k:2 s t with
      | None -> ()
      | Some paths ->
          let total = List.fold_left (fun acc p -> acc + Path.length p) 0 paths in
          let dk = Disjoint_paths.dk g ~k:2 s t in
          if dk <> Some total then ok := false;
          if not (Path.pairwise_disjoint paths) then ok := false;
          List.iter (fun p -> if not (Path.is_valid g p) then ok := false) paths
  done;
  !ok

let prop_mpr_floods g =
  if Graph.n g = 0 then true
  else begin
    let relays u = Mpr.select g u in
    let src = 0 in
    let d = Bfs.dist g src in
    let res = Mpr.flood g ~relays ~src in
    let ok = ref true in
    Graph.iter_vertices (fun v -> if (d.(v) >= 0) <> res.Mpr.reached.(v) then ok := false) g;
    !ok
  end

let prop_greedy_spanner_stretch g =
  Baseline.is_spanner g (Baseline.greedy_spanner g ~k:2) ~alpha:3.0 ~beta:0.0

let prop_baswana_sen_stretch g =
  let h = Baseline.baswana_sen (Rand.create (Graph.n g)) g ~k:2 in
  Baseline.is_spanner g h ~alpha:3.0 ~beta:0.0

let prop_additive2_stretch g =
  Baseline.is_spanner g (Baseline.additive2 g) ~alpha:1.0 ~beta:2.0

let prop_routing_delivers_with_exact_spanner g =
  let h = Remote_spanner.exact_distance g in
  let ls = Rs_routing.Link_state.make g h in
  let report = Rs_routing.Link_state.measure_stretch ls in
  report.Rs_routing.Link_state.delivered = report.Rs_routing.Link_state.pairs
  && report.Rs_routing.Link_state.worst_add = 0

let prop_distributed_matches_centralized g =
  let report = Remote_spanner.Distributed.rem_span g ~r:2 ~beta:1 in
  Edge_set.equal report.Remote_spanner.Distributed.spanner
    (Remote_spanner.rem_span g ~r:2 ~beta:1)

let prop_surgery_matches_theorem2 g =
  let h = Remote_spanner.k_connecting g ~k:2 in
  let rand = Rand.create (Graph.n g + 3) in
  let ok = ref true in
  for _ = 1 to 6 do
    let s = Rand.int rand (Graph.n g) and t = Rand.int rand (Graph.n g) in
    if s <> t && (not (Graph.mem_edge g s t)) && Disjoint_paths.max_disjoint g s t > 0
    then
      match Surgery.theorem2_paths g h ~k:2 s t with
      | None -> ok := false
      | Some paths ->
          if not (Path.pairwise_disjoint paths) then ok := false;
          List.iter
            (fun p ->
              if not (Path.is_valid g p) || Surgery.outside_count h p > 1 then ok := false)
            paths
  done;
  !ok

let prop_prop1_route_bound g =
  let r = 2 in
  let h = Remote_spanner.rem_span g ~r ~beta:1 in
  let rand = Rand.create (Graph.n g + 5) in
  let ok = ref true in
  for _ = 1 to 8 do
    let u = Rand.int rand (Graph.n g) and v = Rand.int rand (Graph.n g) in
    let d = Bfs.dist_pair g u v in
    if u <> v && d > 0 then
      match Prop1_route.construct g h ~r u v with
      | None -> ok := false
      | Some p ->
          if float_of_int (Path.length p) > Prop1_route.bound ~r d +. 1e-9 then ok := false
  done;
  !ok

let prop_edge_repair_sound g =
  if Graph.n g > 16 then true (* keep the O(n^2) flows cheap *)
  else begin
    let h, _ = Extensions.edge_repair g ~k:2 ~base:(Remote_spanner.two_connecting g) in
    Verify.is_edge_k_connecting g h ~alpha:1.0 ~beta:0.0 ~k:2
  end

let prop_edge_dk_below_vertex_dk g =
  let rand = Rand.create (Graph.n g + 11) in
  let ok = ref true in
  for _ = 1 to 8 do
    let s = Rand.int rand (Graph.n g) and t = Rand.int rand (Graph.n g) in
    if s <> t then begin
      let pv = Disjoint_paths.dk_profile g ~kmax:2 s t in
      let pe = Edge_disjoint.dk_profile g ~kmax:2 s t in
      if Array.length pe < Array.length pv then ok := false;
      Array.iteri (fun i dv -> if pe.(i) > dv then ok := false) pv
    end
  done;
  !ok

let prop_periodic_cold_start g =
  if not (Rs_graph.Connectivity.is_connected g) || Graph.n g < 2 then true
  else begin
    let module P = Rs_distributed.Periodic in
    let res =
      P.simulate ~initial:g ~events:[] ~period:3 ~radius:1 ~horizon:20
        ~tree_of:(fun g u -> Dom_tree_k.gdy_k g ~k:1 u) ()
    in
    res.P.matched.(19)
  end

let prop_edge_set_roundtrip g =
  let rand = Rand.create (Graph.n g + 13) in
  let s = Edge_set.create g in
  Graph.iter_edges (fun u v -> if Rand.bool rand then Edge_set.add s u v) g;
  let g' = Edge_set.to_graph s in
  Graph.n g' = Graph.n g && Graph.m g' = Edge_set.cardinal s

let prop_spanner_subset_of_graph g =
  Edge_set.subset (Remote_spanner.low_stretch g ~eps:1.0) (Edge_set.full g)

let () =
  Alcotest.run "props"
    [
      ( "remote_spanners",
        [
          make_test "exact_distance is (1,0)-RS" (arb_graph ~max_n:30) prop_exact_distance_rs;
          make_test "low_stretch eps=.5 is (1.5,0)-RS" (arb_graph ~max_n:25) prop_low_stretch_rs;
          make_test "rem_span r=2 b=1 is (2,-1)-RS" (arb_graph ~max_n:25) prop_rem_span_eps1;
          make_test "spanner edges subset of G" (arb_graph ~max_n:30) prop_spanner_subset_of_graph;
        ] );
      ( "dominating_trees",
        [
          make_test "gdy dominates" (arb_graph ~max_n:30) prop_gdy_trees_dominate;
          make_test "mis dominates" (arb_graph ~max_n:30) prop_mis_trees_dominate;
          make_test "gdy_k k=2" (arb_graph ~max_n:25) prop_gdy_k_trees;
          make_test "mis_k k=2" (arb_graph ~max_n:25) prop_mis_k_trees;
        ] );
      ( "k_connectivity",
        [
          make_test ~count:15 "two_connecting (2,-1)" (arb_graph ~max_n:14) prop_two_connecting;
          make_test ~count:15 "k_connecting (1,0)" (arb_graph ~max_n:14) prop_k_connecting;
          make_test "dk profile increasing" (arb_graph ~max_n:20) prop_dk_profile_increasing;
          make_test "min_sum_paths consistent" (arb_graph ~max_n:20) prop_min_sum_paths_consistent;
        ] );
      ( "mpr_baselines",
        [
          make_test "mpr flooding covers" (arb_graph ~max_n:30) prop_mpr_floods;
          make_test "greedy spanner (3,0)" (arb_graph ~max_n:25) prop_greedy_spanner_stretch;
          make_test "baswana-sen (3,0)" (arb_graph ~max_n:25) prop_baswana_sen_stretch;
          make_test "additive2 (1,2)" (arb_graph ~max_n:25) prop_additive2_stretch;
        ] );
      ( "proof_as_code",
        [
          make_test ~count:20 "surgery = theorem 2" (arb_graph ~max_n:18)
            prop_surgery_matches_theorem2;
          make_test ~count:25 "prop1 route bound" (arb_graph ~max_n:22) prop_prop1_route_bound;
        ] );
      ( "extensions",
        [
          make_test ~count:12 "edge repair sound" (arb_graph ~max_n:16) prop_edge_repair_sound;
          make_test ~count:25 "edge dk <= vertex dk" (arb_graph ~max_n:20)
            prop_edge_dk_below_vertex_dk;
          make_test ~count:12 "periodic cold start" (arb_graph ~max_n:14)
            prop_periodic_cold_start;
        ] );
      ( "optimal_and_certificates",
        [
          make_test ~count:12 "global optimum <= construction"
            (arb_graph ~max_n:10)
            (fun g ->
              match Optimal.exact_k_rs ~limit:2_000_000 g ~k:1 with
              | None -> true
              | Some opt ->
                  Edge_set.cardinal opt
                  <= Edge_set.cardinal (Remote_spanner.exact_distance g));
          make_test ~count:15 "extract_k21 certifies two_connecting"
            (arb_graph ~max_n:18)
            (fun g ->
              let h = Remote_spanner.two_connecting g in
              Graph.fold_vertices
                (fun acc u -> acc && Dom_tree_k.extract_k21 g h ~k:2 u <> None)
                true g);
          make_test ~count:15 "lossless lossy flood = reliable flood"
            (arb_graph ~max_n:25)
            (fun g ->
              if Graph.n g = 0 then true
              else begin
                let relays u = Mpr.select g u in
                let a = Mpr.flood g ~relays ~src:0 in
                let b =
                  Mpr.flood_lossy (Rand.create 3) g ~relays ~src:0 ~loss:0.0
                in
                a.Mpr.reached = b.Mpr.reached
              end);
        ] );
      ( "infrastructure",
        [
          make_test ~count:20 "routing delivers shortest" (arb_graph ~max_n:16)
            prop_routing_delivers_with_exact_spanner;
          make_test ~count:20 "distributed = centralized" (arb_graph ~max_n:16)
            prop_distributed_matches_centralized;
          make_test "edge set roundtrip" (arb_graph ~max_n:30) prop_edge_set_roundtrip;
        ] );
    ]
