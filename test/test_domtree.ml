(* Tests for (r, beta)-dominating trees: Algorithms 1 and 2. *)
open Rs_graph
open Rs_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let udg seed n =
  let rand = Rand.create seed in
  let side = sqrt (float_of_int n /. 4.0) in
  let pts = Rs_geometry.Sampler.uniform rand ~n ~dim:2 ~side in
  Rs_geometry.Unit_ball.udg pts

let standard_graphs =
  [
    ("petersen", Gen.petersen ());
    ("cycle9", Gen.cycle 9);
    ("grid45", Gen.grid 4 5);
    ("path8", Gen.path_graph 8);
    ("hypercube4", Gen.hypercube 4);
    ("udg", udg 17 60);
    ("er", Gen.erdos_renyi (Rand.create 23) 40 0.12);
  ]

(* ---------------------------------------------------------------- *)
(* Checker sanity *)

let test_checker_accepts_trivial_on_complete () =
  let g = Gen.complete 5 in
  let t = Tree.create ~n:5 ~root:0 in
  (* no vertex at distance >= 2: the bare root is a dominating tree *)
  check "trivial ok" true (Dom_tree.is_dominating g ~r:3 ~beta:0 t)

let test_checker_rejects_bare_root_on_cycle () =
  let g = Gen.cycle 6 in
  let t = Tree.create ~n:6 ~root:0 in
  check "undominated" false (Dom_tree.is_dominating g ~r:2 ~beta:0 t)

let test_checker_rejects_foreign_edges () =
  let g = Gen.path_graph 5 in
  let t = Tree.create ~n:5 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:2 (* not an edge of the path *) ;
  check "foreign edge" false (Dom_tree.is_dominating g ~r:2 ~beta:0 t)

let test_checker_manual_cycle6 () =
  (* On C6 from root 0, nodes at distance 2 are {2, 4}; the tree
     0-1 dominates 2 (neighbor 1 at depth 1), 0-5 dominates 4. *)
  let g = Gen.cycle 6 in
  let t = Tree.create ~n:6 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  check "half" false (Dom_tree.is_dominating g ~r:2 ~beta:0 t);
  Tree.add_edge t ~parent:0 ~child:5;
  check "both" true (Dom_tree.is_dominating g ~r:2 ~beta:0 t)

let test_checker_depth_bound_matters () =
  (* A path 0-1-2-3: the (3,0)-tree must reach node 2's neighbor at
     depth <= 2 for v=3 (r'=3). Tree 0-1 only has depth 1; v=3 needs
     x=2 at depth 2. *)
  let g = Gen.path_graph 4 in
  let t = Tree.create ~n:4 ~root:0 in
  Tree.add_edge t ~parent:0 ~child:1;
  check "v=2 ok v=3 not" false (Dom_tree.is_dominating g ~r:3 ~beta:0 t);
  Tree.add_edge t ~parent:1 ~child:2;
  check "now ok" true (Dom_tree.is_dominating g ~r:3 ~beta:0 t)

(* ---------------------------------------------------------------- *)
(* Algorithm 1 (greedy) *)

let test_gdy_valid_all_graphs () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (r, beta) ->
          Graph.iter_vertices
            (fun u ->
              let t = Dom_tree.gdy g ~r ~beta u in
              check
                (Printf.sprintf "%s u=%d r=%d beta=%d" name u r beta)
                true
                (Dom_tree.is_dominating g ~r ~beta t))
            g)
        [ (2, 0); (2, 1); (3, 0); (3, 1); (4, 1) ])
    standard_graphs

let test_gdy_root_is_u () =
  let g = Gen.petersen () in
  let t = Dom_tree.gdy g ~r:2 ~beta:0 3 in
  check_int "root" 3 (Tree.root t)

let test_gdy_depth_bounded () =
  List.iter
    (fun (name, g) ->
      let r = 3 and beta = 1 in
      Graph.iter_vertices
        (fun u ->
          let t = Dom_tree.gdy g ~r ~beta u in
          List.iter
            (fun v ->
              check (Printf.sprintf "%s depth" name) true
                (Tree.depth t v <= r - 1 + beta))
            (Tree.vertices t))
        g)
    standard_graphs

let test_gdy_deterministic () =
  let g = udg 31 50 in
  Graph.iter_vertices
    (fun u ->
      let t1 = Dom_tree.gdy g ~r:3 ~beta:1 u in
      let t2 = Dom_tree.gdy g ~r:3 ~beta:1 u in
      check "same tree" true (Tree.edges t1 = Tree.edges t2))
    g

let test_gdy_r1_is_trivial () =
  let g = Gen.petersen () in
  let t = Dom_tree.gdy g ~r:1 ~beta:0 0 in
  check_int "only root" 1 (Tree.size t)

let test_gdy_path_shape () =
  (* On a path rooted at one end, each layer's only candidate is the
     next vertex: the tree is a path prefix. *)
  let g = Gen.path_graph 6 in
  let t = Dom_tree.gdy g ~r:4 ~beta:0 0 in
  Alcotest.(check (list (pair int int)))
    "path prefix" [ (0, 1); (1, 2); (2, 3) ] (List.sort compare (Tree.edges t))

let test_gdy_star_center () =
  let g = Gen.star 8 in
  let t = Dom_tree.gdy g ~r:2 ~beta:0 0 in
  check_int "center sees everything at distance 1" 1 (Tree.size t);
  (* from a leaf, all other leaves are at distance 2, dominated by the center *)
  let t1 = Dom_tree.gdy g ~r:2 ~beta:0 1 in
  check_int "leaf tree = edge to center" 2 (Tree.size t1)

(* ---------------------------------------------------------------- *)
(* Algorithm 2 (MIS) *)

let test_mis_valid_all_graphs () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun r ->
          Graph.iter_vertices
            (fun u ->
              let t = Dom_tree.mis g ~r u in
              check
                (Printf.sprintf "%s u=%d r=%d" name u r)
                true
                (Dom_tree.is_dominating g ~r ~beta:1 t))
            g)
        [ 2; 3; 5 ])
    standard_graphs

let test_mis_members_independent () =
  (* the non-root, non-path members picked by the MIS rule are
     pairwise non-adjacent: check the leaves of each branch *)
  let g = udg 37 70 in
  Graph.iter_vertices
    (fun u ->
      let t = Dom_tree.mis g ~r:3 u in
      (* reconstruct M: members at distance >= 2 that were picked, i.e.
         tree leaves plus internal picks; we verify the weaker, still
         MIS-implied property that the tree dominates B(u,3)\B(u,1). *)
      let d = Bfs.dist ~radius:3 g u in
      Graph.iter_vertices
        (fun v ->
          if d.(v) >= 2 && d.(v) <= 3 then begin
            let dominated =
              Tree.mem t v
              || Array.exists (fun w -> Tree.mem t w) (Graph.neighbors g v)
            in
            check "mis dominates ball" true dominated
          end)
        g)
    g

let test_mis_depth_equals_graph_distance () =
  let g = Gen.grid 5 5 in
  Graph.iter_vertices
    (fun u ->
      let d = Bfs.dist g u in
      let t = Dom_tree.mis g ~r:4 u in
      List.iter
        (fun v -> check_int "depth = d_G" d.(v) (Tree.depth t v))
        (Tree.vertices t))
    g

let test_mis_size_bounded_on_udg () =
  (* Proposition 3: O(r^(p+1)) edges on a doubling UBG; in the plane
     p = 2, the proof's constant is 4^p r^(p+1). We check a generous
     empirical version of the bound. *)
  let g = udg 41 200 in
  List.iter
    (fun r ->
      Graph.iter_vertices
        (fun u ->
          let t = Dom_tree.mis g ~r u in
          check "O(r^3) edges" true
            (Tree.edge_count t <= 16 * r * r * r))
        g)
    [ 2; 3; 4 ]

(* ---------------------------------------------------------------- *)
(* Optimal sizes and ratios *)

let test_optimal_star_cycle () =
  (* C6 root 0: sphere {2,4}; need neighbors 1 (covers 2) and 5
     (covers 4): optimum 2. *)
  Alcotest.(check (option int)) "cycle" (Some 2) (Dom_tree.optimal_size_star (Gen.cycle 6) 0);
  (* complete graph: nothing at distance 2 *)
  Alcotest.(check (option int)) "complete" (Some 0) (Dom_tree.optimal_size_star (Gen.complete 4) 0)

let test_gdy_vs_optimal_star_ratio () =
  (* Proposition 2 for r=2, beta=0: ratio <= 1 + log2 Delta (we use a
     slightly generous log2 form of 1 + ln) *)
  List.iter
    (fun (name, g) ->
      let delta = float_of_int (Graph.max_degree g) in
      Graph.iter_vertices
        (fun u ->
          match Dom_tree.optimal_size_star g u with
          | None -> ()
          | Some 0 -> ()
          | Some opt ->
              let got = Tree.edge_count (Dom_tree.gdy g ~r:2 ~beta:0 u) in
              let ratio = float_of_int got /. float_of_int opt in
              check
                (Printf.sprintf "%s ratio" name)
                true
                (ratio <= 1.0 +. log delta +. 1e-9))
        g)
    [ ("petersen", Gen.petersen ()); ("udg", udg 43 50); ("grid", Gen.grid 4 4) ]

let test_optimal_lower_bound_below_gdy () =
  List.iter
    (fun (_, g) ->
      Graph.iter_vertices
        (fun u ->
          match Dom_tree.optimal_lower_bound g ~r:3 ~beta:1 u with
          | None -> ()
          | Some lb ->
              let got = Tree.edge_count (Dom_tree.gdy g ~r:3 ~beta:1 u) in
              check "lb <= constructed" true (lb <= got))
        g)
    [ ("petersen", Gen.petersen ()); ("grid", Gen.grid 4 4); ("cycle", Gen.cycle 10) ]

let () =
  Alcotest.run "domtree"
    [
      ( "checker",
        [
          Alcotest.test_case "trivial on complete" `Quick test_checker_accepts_trivial_on_complete;
          Alcotest.test_case "bare root rejected" `Quick test_checker_rejects_bare_root_on_cycle;
          Alcotest.test_case "foreign edges rejected" `Quick test_checker_rejects_foreign_edges;
          Alcotest.test_case "manual cycle6" `Quick test_checker_manual_cycle6;
          Alcotest.test_case "depth bound matters" `Quick test_checker_depth_bound_matters;
        ] );
      ( "gdy",
        [
          Alcotest.test_case "valid on all graphs" `Quick test_gdy_valid_all_graphs;
          Alcotest.test_case "root" `Quick test_gdy_root_is_u;
          Alcotest.test_case "depth bounded" `Quick test_gdy_depth_bounded;
          Alcotest.test_case "deterministic" `Quick test_gdy_deterministic;
          Alcotest.test_case "r=1 trivial" `Quick test_gdy_r1_is_trivial;
          Alcotest.test_case "path shape" `Quick test_gdy_path_shape;
          Alcotest.test_case "star center" `Quick test_gdy_star_center;
        ] );
      ( "mis",
        [
          Alcotest.test_case "valid on all graphs" `Quick test_mis_valid_all_graphs;
          Alcotest.test_case "dominates the ball" `Quick test_mis_members_independent;
          Alcotest.test_case "depth = graph distance" `Quick test_mis_depth_equals_graph_distance;
          Alcotest.test_case "O(r^3) on UDG" `Quick test_mis_size_bounded_on_udg;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "star optimum" `Quick test_optimal_star_cycle;
          Alcotest.test_case "greedy ratio (Prop 2)" `Quick test_gdy_vs_optimal_star_ratio;
          Alcotest.test_case "lower bound sanity" `Quick test_optimal_lower_bound_below_gdy;
        ] );
    ]
