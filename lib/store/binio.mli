(** Little-endian binary primitives shared by the snapshot and WAL
    codecs: bounds-checked readers over an in-memory byte string, and
    [Buffer] writers. All multi-byte fields in the on-disk formats go
    through this module, so "little-endian everywhere" is enforced in
    one place. *)

exception Corrupt of string
(** Raised by every reader on a malformed or truncated input — the
    signal recovery catches to stop at the last valid prefix. *)

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with a formatted message. *)

(** {1 Writers} *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside [0, 2^32) — a write-side range
    bug must fail loudly, not wrap silently into the file. *)

val w_i32 : Buffer.t -> int -> unit
val w_u64 : Buffer.t -> int -> unit
(** Non-negative 63-bit ints (sequence numbers); raises on negatives. *)

(** {1 Readers} *)

type reader
(** A cursor over a string slice; every read checks remaining bytes
    and raises {!Corrupt} rather than reading past the limit. *)

val reader : ?pos:int -> ?limit:int -> string -> reader
val pos : reader -> int
val remaining : reader -> int
val r_u8 : reader -> int
val r_u32 : reader -> int
val r_i32 : reader -> int
val r_u64 : reader -> int
val r_u32_pairs : reader -> count:int -> what:string -> (int * int) array
(** [count] little-endian [(u32, u32)] pairs with a single up-front
    bounds check — the bulk read behind a snapshot's GRAPH section,
    where per-element reader overhead would dominate the load. *)

val r_string : reader -> len:int -> string
val expect_end : reader -> what:string -> unit
(** Raises {!Corrupt} if the reader has bytes left — sections must be
    consumed exactly, trailing garbage inside a checksummed payload is
    still a format error. *)
