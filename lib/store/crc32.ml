(* The checksum now lives in [Rs_graph.Crc32] (the binary graph format
   shares it); this alias keeps [Rs_store.Crc32] and the unqualified
   uses in this library working unchanged. *)
include Rs_graph.Crc32
