exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let w_u8 buf v =
  if v < 0 || v > 0xFF then invalid_arg "Binio.w_u8: out of range";
  Buffer.add_char buf (Char.chr v)

let w_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Binio.w_u32: out of range";
  Buffer.add_int32_le buf (Int32.of_int v)

let w_i32 buf v =
  if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
    invalid_arg "Binio.w_i32: out of range";
  Buffer.add_int32_le buf (Int32.of_int v)

let w_u64 buf v =
  if v < 0 then invalid_arg "Binio.w_u64: negative";
  Buffer.add_int64_le buf (Int64.of_int v)

type reader = { s : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit s =
  let limit = match limit with Some l -> l | None -> String.length s in
  if pos < 0 || limit > String.length s || pos > limit then
    invalid_arg "Binio.reader: slice out of range";
  { s; pos; limit }

let pos r = r.pos
let remaining r = r.limit - r.pos

let need r k what = if r.limit - r.pos < k then corrupt "truncated %s at byte %d" what r.pos

let r_u8 r =
  need r 1 "u8";
  let v = Char.code (String.unsafe_get r.s r.pos) in
  r.pos <- r.pos + 1;
  v

(* Composed from bytes rather than [String.get_int32_le]: the boxed
   [Int32] the stdlib reader allocates per call is the dominant cost
   when decoding a snapshot's m edge pairs (the store/load-snap bench
   row), and plain int arithmetic never leaves registers. *)
let r_u32 r =
  need r 4 "u32";
  let s = r.s and p = r.pos in
  let b i = Char.code (String.unsafe_get s (p + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- p + 4;
  v

let r_i32 r =
  let v = r_u32 r in
  (v lxor 0x80000000) - 0x80000000

let r_u64 r =
  need r 8 "u64";
  let v64 = String.get_int64_le r.s r.pos in
  if Int64.compare v64 0L < 0 then corrupt "u64 at byte %d exceeds the native int range" r.pos;
  r.pos <- r.pos + 8;
  Int64.to_int v64

let r_u32_pairs r ~count ~what =
  if count < 0 then corrupt "%s: negative pair count at byte %d" what r.pos;
  if count > (r.limit - r.pos) / 8 then corrupt "truncated %s at byte %d" what r.pos;
  let s = r.s and base = r.pos in
  (* one bounds check up front, then straight-line byte composition:
     this is the inner loop of a snapshot's GRAPH section (m edge
     pairs), where per-element reader overhead would dominate *)
  let a =
    Array.init count (fun i ->
        let p = base + (8 * i) in
        let b j = Char.code (String.unsafe_get s (p + j)) in
        ( b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24),
          b 4 lor (b 5 lsl 8) lor (b 6 lsl 16) lor (b 7 lsl 24) ))
  in
  r.pos <- base + (8 * count);
  a

let r_string r ~len =
  if len < 0 then corrupt "negative length field at byte %d" r.pos;
  need r len "bytes";
  let v = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  v

let expect_end r ~what =
  if r.pos <> r.limit then
    corrupt "%s: %d trailing bytes after the last field" what (r.limit - r.pos)
