open Rs_obs

let magic = "RSWAL001"
let header_len = 16
let record_header_len = 16

let c_appends = Obs.counter "store/wal_appends"
let c_bytes = Obs.counter "store/wal_bytes"
let c_fsyncs = Obs.counter "store/wal_fsyncs"
let c_segments = Obs.counter "store/wal_segments"
let h_fsync = Obs.histogram "wal/fsync_latency"

type policy = Always | Every of int | Never

let policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "every" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n >= 1 -> Ok (Every n)
          | _ -> Error (Printf.sprintf "invalid fsync policy %S: every:N needs N >= 1" s))
      | _ -> Error (Printf.sprintf "invalid fsync policy %S (always, never, every:N)" s))

let policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every n -> Printf.sprintf "every:%d" n

let segment_name seq = Printf.sprintf "wal-%020d.seg" seq

(* [Some first_seq] when the basename is a well-formed segment name *)
let segment_seq name =
  if String.length name = 28 && String.sub name 0 4 = "wal-" && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name 4 20)
  else None

let segment_files ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match segment_seq name with
         | Some seq -> Some (seq, Filename.concat dir name)
         | None -> None)
  |> List.sort compare

(* {1 Writer} *)

type writer = {
  dir : string;
  policy : policy;
  segment_bytes : int;
  mutable oc : out_channel;
  mutable cur_bytes : int;
  mutable next : int;
  mutable unsynced : int;
}

let open_segment dir seq =
  let oc = open_out_bin (Filename.concat dir (segment_name seq)) in
  let buf = Buffer.create header_len in
  Buffer.add_string buf magic;
  Binio.w_u64 buf seq;
  Buffer.output_buffer oc buf;
  Obs.incr c_segments;
  oc

let create_writer ?(policy = Always) ?(segment_bytes = 1 lsl 20) ~dir ~next_seq () =
  if next_seq < 1 then invalid_arg "Wal.create_writer: next_seq must be >= 1";
  { dir; policy; segment_bytes; oc = open_segment dir next_seq; cur_bytes = header_len;
    next = next_seq; unsynced = 0 }

let do_sync w =
  flush w.oc;
  let t0 = Obs.now () in
  Unix.fsync (Unix.descr_of_out_channel w.oc);
  Obs.observe h_fsync ((Obs.now () -. t0) *. 1000.);
  Obs.incr c_fsyncs;
  w.unsynced <- 0

let sync w = do_sync w

let rotate w =
  flush w.oc;
  if w.policy <> Never then do_sync w;
  close_out w.oc;
  w.oc <- open_segment w.dir w.next;
  w.cur_bytes <- header_len

(* checksum covers seq + payload, so a record can neither be replayed
   under the wrong sequence number nor with damaged content *)
let encode_record ~seq delta =
  let body = Buffer.create 64 in
  Binio.w_u64 body seq;
  Buffer.add_string body (Rs_dynamic.Delta.to_string delta);
  let body = Buffer.contents body in
  let rec_buf = Buffer.create (8 + String.length body) in
  Binio.w_u32 rec_buf (String.length body - 8);
  Binio.w_u32 rec_buf (Crc32.of_string body);
  Buffer.add_string rec_buf body;
  Buffer.contents rec_buf

let decode_record s ~pos =
  let len = String.length s in
  if len - pos < record_header_len then `Need_more
  else begin
    let plen = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF in
    let crc = Int32.to_int (String.get_int32_le s (pos + 4)) land 0xFFFFFFFF in
    let seq = Int64.to_int (String.get_int64_le s (pos + 8)) in
    if plen > len - pos - record_header_len then `Need_more
    else if Crc32.of_substring s ~pos:(pos + 8) ~len:(8 + plen) <> crc then
      `Bad "record checksum mismatch"
    else
      match Rs_dynamic.Delta.parse (String.sub s (pos + record_header_len) plen) with
      | delta -> `Record (seq, delta, pos + record_header_len + plen)
      | exception Failure msg -> `Bad ("unparsable record payload: " ^ msg)
  end

let append w delta =
  let seq = w.next in
  let rec_s = encode_record ~seq delta in
  output_string w.oc rec_s;
  (* flush (not fsync) unconditionally: a record is visible to
     same-host tailers — the replication feed — the moment append
     returns, whatever the durability policy says about fsync *)
  flush w.oc;
  w.cur_bytes <- w.cur_bytes + String.length rec_s;
  w.next <- seq + 1;
  w.unsynced <- w.unsynced + 1;
  Obs.incr c_appends;
  Obs.add c_bytes (String.length rec_s);
  (match w.policy with
  | Always -> do_sync w
  | Every n -> if w.unsynced >= n then do_sync w
  | Never -> ());
  if w.cur_bytes >= w.segment_bytes then rotate w;
  seq

let next_seq w = w.next

let close_writer w =
  flush w.oc;
  if w.policy <> Never then do_sync w;
  close_out w.oc

(* {1 Scanning} *)

type record = { seq : int; delta : Rs_dynamic.Delta.t; file : string; offset : int }
type truncation = { t_file : string; t_offset : int; t_reason : string }

let pp_truncation fmt t =
  Format.fprintf fmt "%s at byte %d of %s" t.t_reason t.t_offset (Filename.basename t.t_file)

type scan = { records : record list; truncation : truncation option }

(* One segment: the valid record prefix plus where/why it ends early.
   Never raises — every malformation becomes a truncation point. *)
let scan_file ~name_seq file =
  let s = In_channel.with_open_bin file In_channel.input_all in
  let len = String.length s in
  let bad offset reason = ([], Some { t_file = file; t_offset = offset; t_reason = reason }) in
  if len < header_len then bad 0 "torn segment header"
  else if String.sub s 0 8 <> magic then bad 0 "bad segment magic"
  else begin
    let first_seq =
      Int64.to_int (String.get_int64_le s 8)
    in
    if first_seq <> name_seq then
      bad 0
        (Printf.sprintf "segment header sequence %d does not match filename sequence %d"
           first_seq name_seq)
    else begin
      let records = ref [] in
      let count = ref 0 in
      let pos = ref header_len in
      let stop = ref None in
      while !stop = None && !pos < len do
        let start = !pos in
        if len - start < record_header_len then
          stop := Some (start, "torn record header")
        else begin
          let plen = Int32.to_int (String.get_int32_le s start) land 0xFFFFFFFF in
          let crc = Int32.to_int (String.get_int32_le s (start + 4)) land 0xFFFFFFFF in
          let seq = Int64.to_int (String.get_int64_le s (start + 8)) in
          if plen > len - start - record_header_len then
            stop := Some (start, "torn record payload")
          else if Crc32.of_substring s ~pos:(start + 8) ~len:(8 + plen) <> crc then
            stop := Some (start, "record checksum mismatch")
          else begin
            let expected = first_seq + !count in
            if seq <> expected then
              stop :=
                Some
                  (start, Printf.sprintf "record sequence %d, expected %d" seq expected)
            else
              match Rs_dynamic.Delta.parse (String.sub s (start + record_header_len) plen) with
              | delta ->
                  records := { seq; delta; file; offset = start } :: !records;
                  incr count;
                  pos := start + record_header_len + plen
              | exception Failure msg ->
                  stop := Some (start, "unparsable record payload: " ^ msg)
          end
        end
      done;
      ( List.rev !records,
        Option.map
          (fun (offset, reason) -> { t_file = file; t_offset = offset; t_reason = reason })
          !stop )
    end
  end

let scan_dir ~dir ~after_seq =
  let segments = segment_files ~dir in
  let records = ref [] in
  let truncation = ref None in
  let expected = ref None in
  List.iter
    (fun (name_seq, file) ->
      if !truncation = None then begin
        let gap =
          match !expected with
          | Some e when name_seq > e ->
              Some (Printf.sprintf "sequence gap: segment starts at %d, expected %d" name_seq e)
          | Some e when name_seq < e ->
              Some (Printf.sprintf "overlapping segment: starts at %d, expected %d" name_seq e)
          | None when name_seq > after_seq + 1 ->
              Some
                (Printf.sprintf "sequence gap after snapshot: segment starts at %d, expected %d"
                   name_seq (after_seq + 1))
          | _ -> None
        in
        match gap with
        | Some reason -> truncation := Some { t_file = file; t_offset = 0; t_reason = reason }
        | None ->
            let recs, stop = scan_file ~name_seq file in
            List.iter (fun r -> if r.seq > after_seq then records := r :: !records) recs;
            expected := Some (name_seq + List.length recs);
            truncation := stop
      end)
    segments;
  { records = List.rev !records; truncation = !truncation }

let truncate ~dir tr =
  let base = Filename.basename tr.t_file in
  List.iter
    (fun (_, file) -> if Filename.basename file > base then Sys.remove file)
    (segment_files ~dir);
  if Sys.file_exists tr.t_file then
    if tr.t_offset <= header_len then Sys.remove tr.t_file
    else Unix.truncate tr.t_file tr.t_offset
