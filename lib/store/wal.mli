(** Write-ahead log of {!Rs_dynamic.Delta} batches.

    Append-only segment files named [wal-<first-seq>.seg], each a
    16-byte header (magic ["RSWAL001"], u64 first sequence number)
    followed by records:

    {v
    u32  payload length
    u32  CRC-32 over (u64 seq ++ payload)
    u64  sequence number
    ...  payload — the delta in Delta.to_string text form
    v}

    Sequence numbers are assigned by the store, start at 1 and are
    contiguous; a segment's records continue exactly where the
    previous segment's stopped. Recovery scans segments in name order
    and stops at the first anomaly — a torn record (fewer bytes than
    the header promises), a checksum mismatch, an unparsable payload,
    or a sequence gap — reporting the byte offset so the caller can
    physically truncate the log to its valid prefix. Everything before
    that point is trustworthy: each record is independently
    checksummed, so a flipped bit anywhere in the tail cannot corrupt
    the replayed state, only shorten it.

    Durability is governed by the fsync {!policy}; [rspan]'s
    [--fsync] flag maps onto it. Appends record [store/wal_appends],
    [store/wal_bytes], [store/wal_fsyncs] and [store/wal_segments]
    counters and the [wal/fsync_latency] histogram (milliseconds per
    fsync) when {!Rs_obs.Obs} is enabled. *)

type policy =
  | Always  (** fsync after every append — full durability *)
  | Every of int  (** fsync after every [n] appends ([n >= 1]) *)
  | Never  (** leave flushing to the OS; crash may lose the tail *)

val policy_of_string : string -> (policy, string) result
(** ["always"], ["never"], or ["every:N"] with [N >= 1]. *)

val policy_to_string : policy -> string

(** {1 Appending} *)

type writer

val create_writer :
  ?policy:policy ->
  ?segment_bytes:int ->
  dir:string ->
  next_seq:int ->
  unit ->
  writer
(** Open a fresh segment [wal-<next_seq>.seg] in [dir] (truncating any
    leftover file of that name — recovery has already established that
    nothing valid lives at or past [next_seq]). [?policy] defaults to
    [Always]; [?segment_bytes] (default 1 MiB) is the size past which
    a segment is sealed and the next one opened. *)

val append : writer -> Rs_dynamic.Delta.t -> int
(** Append one record, returning its sequence number. Syncs and/or
    rotates per policy. The channel is always {e flushed} (records are
    visible to same-host readers — the replication tailer — as soon as
    [append] returns); only the [fsync] is governed by the policy. *)

val next_seq : writer -> int

val sync : writer -> unit
(** Flush and [fsync] now, regardless of policy. *)

val close_writer : writer -> unit
(** Flush, fsync (unless the policy is [Never]) and close. *)

(** {1 Scanning (recovery)} *)

type record = {
  seq : int;
  delta : Rs_dynamic.Delta.t;
  file : string;  (** absolute path of the segment holding it *)
  offset : int;  (** byte offset of the record header in that file *)
}

type truncation = {
  t_file : string;
  t_offset : int;  (** first invalid byte; [0] = whole file invalid *)
  t_reason : string;
}

val pp_truncation : Format.formatter -> truncation -> unit

type scan = {
  records : record list;  (** valid prefix, ascending contiguous seq *)
  truncation : truncation option;
      (** where and why the scan stopped early, if it did *)
}

val scan_dir : dir:string -> after_seq:int -> scan
(** Read every segment in [dir] in name order, returning the records
    with [seq > after_seq] (records at or below it are re-validated
    for checksum and contiguity but not returned — the snapshot
    already covers them). Never raises on malformed input; damage is
    reported as [truncation]. *)

val truncate : dir:string -> truncation -> unit
(** Make the damage physical: truncate the named segment at the
    reported offset (deleting it outright when nothing but the header
    — or less — would survive) and delete every later segment. After
    this, [scan_dir] reports no truncation and a fresh writer can
    extend the log. *)

val segment_files : dir:string -> (int * string) list
(** [(first_seq, absolute path)] of every segment in [dir], ascending. *)

(** {1 Record codec}

    The record framing is also the unit of WAL {e streaming}: a leader
    ships records to replicas verbatim inside its transport frames, and
    the replica validates them with the same checksum-then-parse path
    recovery uses. *)

val header_len : int
(** Segment header bytes ([16]: magic + u64 first seq). *)

val record_header_len : int
(** Record header bytes ([16]: u32 len, u32 crc, u64 seq). *)

val encode_record : seq:int -> Rs_dynamic.Delta.t -> string
(** One record exactly as {!append} lays it down — header included. *)

val decode_record :
  string ->
  pos:int ->
  [ `Record of int * Rs_dynamic.Delta.t * int
    (** (seq, delta, position just past the record) *)
  | `Need_more  (** fewer bytes than one whole record *)
  | `Bad of string  (** checksum or payload damage *) ]
(** Decode the record starting at [pos]. Never raises. *)
