(** Versioned binary snapshots of durable spanner state.

    One snapshot captures a sequence number, the full graph, and the
    per-root dominating trees (plus the resulting spanner edge union)
    of every maintained strategy. On-disk layout:

    {v
    "RSNAP001"            8-byte magic
    u32 version  (= 1)
    u32 section count
    section*:  u32 kind | u32 payload length | payload | u32 CRC-32(payload)
    v}

    Sections (all integers little-endian):
    - kind 1, {b META}: [u64 seq, u32 n, u32 m, u32 spanner_count] —
      cross-checked against the other sections, so a snapshot whose
      sections disagree is rejected as a unit;
    - kind 2, {b GRAPH}: [u32 n, u32 m], then [m] canonical edge pairs
      [(u32 u, u32 v)] in strictly ascending lexicographic order —
      exactly the {!Rs_graph.Graph.of_canonical} contract, which is
      what makes loading a snapshot an O(n+m) pass with no sort (the
      >=10x fast path over the text parser, gated in the bench);
    - kind 3, {b SPANNER} (one per strategy): the
      {!Rs_dynamic.Repair.spec} (u8 tag + two i32 parameters), then
      per-root tree edge lists (shallow-first [(parent, child)]
      pairs), then the spanner edge union as sorted canonical pairs —
      redundant with the trees by construction, stored so recovery can
      cross-check the restored refcounts against what was live.

    Unknown section kinds are skipped (checksum still verified), so
    later format versions can add sections without breaking old
    readers. Any structural damage — bad magic, unsupported version,
    checksum mismatch, truncated section, inconsistent counts — raises
    {!Binio.Corrupt}; recovery treats the file as unusable and falls
    back to an older snapshot. Encoding is deterministic: equal states
    produce byte-identical snapshots, which the crash harness asserts
    for the round-trip gate. *)

open Rs_dynamic

type spanner = {
  spec : Repair.spec;
  trees : (int * int) list array;  (** per-root [(parent, child)], shallow-first *)
  union : (int * int) list;  (** sorted canonical spanner edges *)
}

type t = {
  seq : int;  (** every delta with sequence number [<= seq] is folded in *)
  graph : Rs_graph.Graph.t;
  spanners : spanner list;
}

val to_string : t -> string
val of_string : string -> t
(** Raises {!Binio.Corrupt} on any malformed input. *)

(** {1 Files} *)

val filename : seq:int -> string
(** [snap-<seq, zero-padded>.rsnap] — name order is seq order. *)

val write : dir:string -> t -> string
(** Atomic publication: encode, write to a [.tmp] sibling, flush,
    [fsync], then [rename] into place (and best-effort fsync the
    directory). A crash at any point leaves either the old directory
    contents or the complete new file — never a half-written snapshot
    under the real name. Records [store/snapshots_written] and
    [store/snapshot_bytes] under a [store/snapshot_write] span.
    Returns the published path. *)

val read : string -> t
(** Raises {!Binio.Corrupt} on damage, [Sys_error] on I/O failure. *)

val list_dir : dir:string -> (int * string) list
(** [(seq, absolute path)] of every snapshot in [dir], ascending by
    seq. Ignores [.tmp] leftovers (an interrupted {!write}'s residue). *)

val remove_temp : dir:string -> unit
(** Delete abandoned [.tmp] files — called by recovery so an
    interrupted write cannot accumulate garbage. *)
