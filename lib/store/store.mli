(** Durable spanner state: a directory of checksummed snapshots plus a
    delta write-ahead log, and the crash-safe recovery that stitches
    them back into live {!Rs_dynamic.Repair} state.

    A store directory holds [snap-*.rsnap] files ({!Snapshot}) and
    [wal-*.seg] segments ({!Wal}). The invariant tying them together:
    a snapshot at sequence number [s] is the exact state after deltas
    [1..s], and WAL record [i] is the [i]-th delta — so {e any} valid
    snapshot plus the contiguous WAL records above its sequence number
    reproduces the live state. Recovery exploits the redundancy in
    both directions: a damaged newest snapshot falls back to an older
    one (replaying a longer WAL suffix), and a damaged WAL tail is
    truncated to its last valid record (recovering a verified prefix
    of history). The one thing recovery never does is hand back
    unverified bytes as a graph.

    Writes are ordered for crash safety: a delta is appended (and,
    policy permitting, fsynced) to the WAL {e before} it is applied to
    the in-memory repair states, and snapshots are published by
    temp-file-plus-rename, so every crash point leaves the directory
    parseable as some prefix of history. *)

open Rs_dynamic

type t

val create :
  ?policy:Wal.policy ->
  ?segment_bytes:int ->
  dir:string ->
  specs:Repair.spec list ->
  Rs_graph.Graph.t ->
  t
(** Initialize a store: create [dir] (and parents) if needed, build
    one {!Repair} state per spec from the graph, write the sequence-0
    snapshot and open the WAL at sequence 1. Raises [Failure] if [dir]
    already holds store files — recover those, don't overwrite them.
    [?policy] defaults to [Always]; [?segment_bytes] to 1 MiB. *)

val graph : t -> Rs_graph.Graph.t
(** Current topology (after every appended delta). *)

val seq : t -> int
(** Sequence number of the last appended delta; 0 when fresh. *)

val dir : t -> string

val states : t -> (Repair.spec * Repair.t) list
(** Raises [Invalid_argument] while the states are stale (see
    {!append}'s [~repair:false] and {!rebuild}). *)

val states_stale : t -> bool
(** True between an [append ~repair:false] and the {!rebuild} that
    re-derives the spanner states from the advanced graph. *)

val append : ?repair:bool -> t -> Delta.t -> Repair.outcome list
(** Log-then-apply: validate the delta against the current graph,
    append it to the WAL, then heal every maintained spanner through
    {!Repair.apply}. A delta with empty net effect is skipped entirely
    (nothing logged, nothing returned) — quiescence stays free and the
    log stays dense. Raises [Invalid_argument] on an invalid delta,
    {e before} anything is written.

    [~repair:false] is the circuit-breaker path of the resident
    service: the delta is logged and the graph advances, but the
    maintained spanners are {e not} repaired — they are marked stale
    and every stale-sensitive operation ({!states}, {!snapshot_value},
    {!write_snapshot}, {!compact}, and [append ~repair:true] itself)
    raises until {!rebuild} folds the backlog in. Durability is
    unaffected: the WAL already holds every delta, so a crash in the
    stale window recovers normally. *)

val rebuild : t -> unit
(** Replace every maintained spanner with a from-scratch
    {!Repair.init} on the current graph and clear the stale flag — the
    batched alternative to per-delta incremental repair. Records a
    [store/rebuild] span. *)

val sync_to : t -> Rs_graph.Graph.t -> Repair.outcome list
(** [append] the {!Delta.diff} from the current graph to the given
    one — the hook shape used by [rspan churn --wal], where the
    caller has topologies, not deltas. *)

val snapshot_value : t -> Snapshot.t
(** The current state as a snapshot value (no I/O) — exposed for the
    crash harness's byte-identity round-trip gate. *)

val write_snapshot : t -> string
(** Publish a snapshot of the current state; returns its path. Older
    snapshots and the WAL are left in place (fallback depth). *)

val compact : t -> string
(** Fold the WAL into a fresh snapshot: {!write_snapshot}, then drop
    every WAL segment and every older snapshot — all their information
    is now in the published file — and restart the WAL at the next
    sequence number. Returns the snapshot's path. *)

val close : t -> unit
(** Seal the WAL (final fsync unless the policy is [Never]). The store
    refuses further appends. *)

(** {1 Recovery} *)

type recovery = {
  snapshot_seq : int;
  snapshot_file : string;  (** the snapshot actually used *)
  last_seq : int;  (** sequence number of the recovered state *)
  replayed : int;  (** WAL records replayed on top of the snapshot *)
  truncated : Wal.truncation option;
      (** damage found in the WAL; already made physical *)
  snapshots_skipped : (string * string) list;
      (** (path, reason) for snapshots rejected as corrupt, newest first *)
}

val pp_recovery : Format.formatter -> recovery -> unit

val recover :
  ?policy:Wal.policy ->
  ?segment_bytes:int ->
  ?verify:bool ->
  dir:string ->
  unit ->
  t * recovery
(** Reopen a store directory after a crash (or a clean close):

    + sweep abandoned [.tmp] files (interrupted snapshot publications);
    + load the newest snapshot that decodes, checksums and restores
      cleanly — including the stored-union cross-check against the
      refcounts {!Repair.restore} rederives — falling back to older
      snapshots on damage;
    + replay the WAL suffix above the snapshot's sequence number
      through {!Repair.apply}, stopping at the first torn or corrupt
      record and physically truncating the log there;
    + with [~verify:true] (default false; the CLI defaults it on),
      gate the result: every recovered spanner must equal a
      from-scratch {!Repair.build} on the recovered graph, and must
      pass {!Rs_core.Verify.is_remote_spanner} at its spec's
      [alpha_beta] when the paper states one — raising [Failure]
      rather than returning a state that fails its own invariants;
    + reopen the WAL for appending at [last_seq + 1].

    Raises [Failure] when no usable snapshot exists. Records
    [store/recoveries], [store/replayed_records], [store/truncations]
    and [store/snapshots_skipped] under a [store/recover] span (with
    [load_snapshot] / [replay] / [verify] child spans). *)
