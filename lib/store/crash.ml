open Rs_graph
open Rs_dynamic

type failure = { case : string; reason : string }

type report = {
  cases : int;
  exact : int;
  prefix : int;
  round_trip_ok : bool;
  failures : failure list;
}

let ok r = r.round_trip_ok && r.failures = []

let pp_report fmt r =
  Format.fprintf fmt "@[<v>crash sites: %d (%d exact recoveries, %d verified prefixes)" r.cases
    r.exact r.prefix;
  Format.fprintf fmt "@,round trip: %s" (if r.round_trip_ok then "byte-identical" else "FAILED");
  List.iter (fun f -> Format.fprintf fmt "@,FAIL %s: %s" f.case f.reason) r.failures;
  Format.fprintf fmt "@]"

(* {1 Filesystem scratchpads} *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* store directories are flat — plain file-by-file copy suffices *)
let copy_dir src dst =
  rm_rf dst;
  mkdir_p dst;
  Array.iter
    (fun name ->
      let data = In_channel.with_open_bin (Filename.concat src name) In_channel.input_all in
      Out_channel.with_open_bin (Filename.concat dst name) (fun oc ->
          Out_channel.output_string oc data))
    (Sys.readdir src)

let truncate_file path len = Unix.truncate path len

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  if Unix.read fd b 0 1 <> 1 then failwith "flip_byte: short read";
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xA5));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  if Unix.write fd b 0 1 <> 1 then failwith "flip_byte: short write";
  Unix.close fd

(* {1 Random history} *)

let random_op rand g =
  let n = Graph.n g in
  let m = Graph.m g in
  let pick () = Rand.int rand n in
  match Rand.int rand 100 with
  | r when r < 45 || m = 0 ->
      (* an absent pair is overwhelmingly likely in sparse graphs; a
         few tries suffice, and a present pair is still a valid op *)
      let rec go tries =
        let u = pick () and v = pick () in
        if u = v then go tries
        else if Graph.mem_edge g u v && tries > 0 then go (tries - 1)
        else Delta.Add_edge (u, v)
      in
      go 8
  | r when r < 80 ->
      let u, v = Graph.edge g (Rand.int rand m) in
      Delta.Remove_edge (u, v)
  | r when r < 90 -> Delta.Node_down (pick ())
  | _ ->
      let u = pick () in
      let links =
        List.init
          (1 + Rand.int rand 3)
          (fun _ ->
            let rec go () =
              let v = pick () in
              if v = u then go () else v
            in
            go ())
        |> List.sort_uniq compare
      in
      Delta.Node_up (u, links)

let random_delta rand g =
  let rec go tries =
    let ops = List.init (1 + Rand.int rand 3) (fun _ -> random_op rand g) in
    match Delta.effect g ops with
    | [], [] when tries > 0 -> go (tries - 1)
    | _ -> ops
  in
  go 16

(* {1 The plan} *)

type expect = Seq of int  (** best recoverable sequence number *)

let run ?(specs = [ Repair.Gdy_k { k = 1 }; Repair.Mis { r = 2 } ]) ?(sites = 4) ~seed ~n
    ~batches ~dir () =
  if batches < 2 then invalid_arg "Crash.run: need at least 2 batches";
  let rand = Rand.create seed in
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "base" in
  mkdir_p dir;
  rm_rf base;
  (* tiny segments force multi-segment histories, so cross-segment
     anomalies (gaps after a truncated tail) are actually exercised *)
  let store = Store.create ~policy:Wal.Always ~segment_bytes:256 ~dir:base ~specs g0 in
  let mid = batches / 2 in
  let expected = Array.make (batches + 1) g0 in
  for s = 1 to batches do
    let delta = random_delta rand (Store.graph store) in
    ignore (Store.append store delta);
    if Store.seq store <> s then
      failwith (Printf.sprintf "Crash.run: append %d landed at seq %d" s (Store.seq store));
    expected.(s) <- Store.graph store;
    if s = mid then ignore (Store.write_snapshot store)
  done;
  let live_bytes = Snapshot.to_string (Store.snapshot_value store) in
  Store.close store;

  (* record map of the pristine log, for choosing crash sites and for
     computing what the best recoverable prefix is *)
  let scan = Wal.scan_dir ~dir:base ~after_seq:0 in
  (match scan.Wal.truncation with
  | Some tr -> failwith (Format.asprintf "Crash.run: pristine WAL unreadable: %a" Wal.pp_truncation tr)
  | None -> ());
  let records = Array.of_list scan.Wal.records in
  if Array.length records <> batches then
    failwith
      (Printf.sprintf "Crash.run: pristine WAL holds %d records, appended %d"
         (Array.length records) batches);
  let record_len r =
    let s = In_channel.with_open_bin r.Wal.file In_channel.input_all in
    16 + (Int32.to_int (String.get_int32_le s r.Wal.offset) land 0xFFFFFFFF)
  in
  let last_record = records.(batches - 1) in
  let last_seg = last_record.Wal.file in
  let file_size f = (Unix.stat f).Unix.st_size in
  let newest_snap =
    match List.rev (Snapshot.list_dir ~dir:base) with
    | (sseq, path) :: _ -> (sseq, path)
    | [] -> failwith "Crash.run: base store has no snapshot"
  in
  if fst newest_snap <> mid then
    failwith (Printf.sprintf "Crash.run: newest snapshot at seq %d, expected %d" (fst newest_snap) mid);

  (* best recoverable seq when the log becomes unusable from record
     [s] on: everything below [s], topped up by the mid snapshot *)
  let best_without s = max mid (s - 1) in

  let cases = ref [] in
  let add name mutate expect = cases := (name, mutate, expect) :: !cases in

  (* torn WAL tail: cut the last segment at sampled offsets inside the
     final record — header bytes, payload bytes — and exactly at its
     start (the post-write-pre-fsync boundary crash) *)
  let lr_len = record_len last_record in
  add "torn-tail-boundary"
    (fun d -> truncate_file (Filename.concat d (Filename.basename last_seg)) last_record.Wal.offset)
    (Seq (best_without last_record.Wal.seq));
  for i = 1 to sites do
    let cut = last_record.Wal.offset + 1 + Rand.int rand (lr_len - 1) in
    add
      (Printf.sprintf "torn-tail-mid-%d" i)
      (fun d -> truncate_file (Filename.concat d (Filename.basename last_seg)) cut)
      (Seq (best_without last_record.Wal.seq))
  done;
  (* several records lost at once: cut at an earlier record boundary in
     the last segment (a longer unsynced tail) *)
  let in_last_seg = Array.to_list records |> List.filter (fun r -> r.Wal.file = last_seg) in
  (match in_last_seg with
  | first_in_last :: _ when List.length in_last_seg >= 2 ->
      add "lost-unsynced-tail"
        (fun d ->
          truncate_file (Filename.concat d (Filename.basename last_seg)) first_in_last.Wal.offset)
        (Seq (best_without first_in_last.Wal.seq))
  | _ -> ());
  (* torn segment header on the last segment *)
  add "torn-segment-header"
    (fun d -> truncate_file (Filename.concat d (Filename.basename last_seg)) 8)
    (Seq
       (best_without
          (match in_last_seg with r :: _ -> r.Wal.seq | [] -> last_record.Wal.seq)));
  (* checksum-corrupting flips: one in a mid-history record (dropping
     every later segment across the gap), one in the final record *)
  let mid_record = records.(batches / 2) in
  add "corrupt-mid-crc"
    (fun d ->
      flip_byte
        (Filename.concat d (Filename.basename mid_record.Wal.file))
        (mid_record.Wal.offset + 16 + Rand.int rand (record_len mid_record - 16)))
    (Seq (best_without mid_record.Wal.seq));
  add "corrupt-seq-field"
    (fun d ->
      flip_byte (Filename.concat d (Filename.basename last_seg)) (last_record.Wal.offset + 8))
    (Seq (best_without last_record.Wal.seq));
  (* snapshot damage: recovery must fall back to the seq-0 snapshot and
     replay the whole log — the full pre-crash state *)
  let snap_base = Filename.basename (snd newest_snap) in
  let snap_size = file_size (snd newest_snap) in
  for i = 1 to sites do
    let cut = 1 + Rand.int rand (snap_size - 1) in
    add
      (Printf.sprintf "snapshot-truncated-%d" i)
      (fun d -> truncate_file (Filename.concat d snap_base) cut)
      (Seq batches)
  done;
  add "snapshot-bitflip"
    (fun d -> flip_byte (Filename.concat d snap_base) (Rand.int rand snap_size))
    (Seq batches);
  add "interrupted-rename"
    (fun d ->
      let p = Filename.concat d snap_base in
      Sys.rename p (p ^ ".tmp"))
    (Seq batches);

  let failures = ref [] in
  let exact = ref 0 and prefix = ref 0 in
  let fail case reason = failures := { case; reason } :: !failures in
  let case_list = List.rev !cases in
  List.iter
    (fun (name, mutate, Seq want) ->
      let d = Filename.concat dir ("case-" ^ name) in
      copy_dir base d;
      mutate d;
      match Store.recover ~verify:true ~dir:d () with
      | exception Failure reason -> fail name ("recovery failed: " ^ reason)
      | exception Binio.Corrupt reason -> fail name ("recovery raised Corrupt: " ^ reason)
      | t, rcv ->
          let seq = rcv.Store.last_seq in
          Store.close t;
          if seq <> want then
            fail name (Printf.sprintf "recovered seq %d, best recoverable prefix is %d" seq want)
          else if not (Graph.equal (Store.graph t) expected.(seq)) then
            fail name (Printf.sprintf "recovered graph at seq %d differs from live history" seq)
          else begin
            if seq = batches then incr exact else incr prefix;
            rm_rf d
          end)
    case_list;

  (* unmutated round trip: recovered state must re-encode to the exact
     bytes of the live state at close *)
  let round_trip_ok =
    let d = Filename.concat dir "case-round-trip" in
    copy_dir base d;
    match Store.recover ~verify:true ~dir:d () with
    | exception Failure reason ->
        fail "round-trip" ("recovery failed: " ^ reason);
        false
    | t, rcv ->
        let got = Snapshot.to_string (Store.snapshot_value t) in
        Store.close t;
        if rcv.Store.last_seq <> batches then begin
          fail "round-trip" (Printf.sprintf "recovered seq %d of %d" rcv.Store.last_seq batches);
          false
        end
        else if got <> live_bytes then begin
          fail "round-trip" "recovered snapshot bytes differ from live state";
          false
        end
        else begin
          rm_rf d;
          true
        end
  in
  { cases = List.length case_list; exact = !exact; prefix = !prefix; round_trip_ok;
    failures = List.rev !failures }
