(** Seeded crash-point injection for the durable store — the
    [lib/distributed/fault.ml] idea applied to the filesystem: instead
    of dropping messages, drop {e bytes}.

    {!run} builds a reference store (a seeded random connected graph
    plus random delta batches, with a mid-history snapshot and small
    WAL segments so history spans several files), remembers the exact
    topology at every sequence number, then enumerates crash sites and
    replays each one on a scratch copy of the directory:

    - the WAL tail torn mid-record and exactly at record boundaries
      (the post-write-pre-fsync crash: bytes handed to the kernel but
      never persisted);
    - a checksum-corrupting bit flip in the middle of an earlier
      segment (later segments must be dropped too — their records are
      unreachable past the gap);
    - a torn segment header;
    - the newest snapshot truncated mid-section, and bit-flipped;
    - an interrupted rename: the newest snapshot demoted to its [.tmp]
      name, as if the crash hit between write and rename.

    Every case must recover — with verification on — to {e exactly}
    the pre-crash state or to the information-theoretically best
    verified prefix (the harness computes which sequence number that
    is and asserts equality, graph and spanners both). An unmutated
    copy must additionally round-trip byte-identically: the snapshot
    encoding of the recovered state equals the encoding of the live
    state at the moment of the crash. *)

open Rs_dynamic

type failure = { case : string; reason : string }

type report = {
  cases : int;  (** crash sites injected *)
  exact : int;  (** recovered the full pre-crash state *)
  prefix : int;  (** recovered a strict, verified prefix *)
  round_trip_ok : bool;  (** unmutated copy recovered byte-identically *)
  failures : failure list;  (** empty on success *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val run :
  ?specs:Repair.spec list ->
  ?sites:int ->
  seed:int ->
  n:int ->
  batches:int ->
  dir:string ->
  unit ->
  report
(** [run ~seed ~n ~batches ~dir ()] drives the whole plan under [dir]
    (created if needed; the base store lands in [dir/base], scratch
    copies in [dir/case-*] — removed when their case passes, kept for
    inspection when it fails). [?specs] defaults to one star family
    and one tree family ([Gdy_k {k = 1}; Mis {r = 2}]), so both
    snapshot encodings are exercised; [?sites] (default 4) scales the
    number of sampled torn-tail offsets. Deterministic in [seed]. *)
