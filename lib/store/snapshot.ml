open Rs_dynamic
open Rs_obs

let magic = "RSNAP001"
let version = 1
let k_meta = 1
let k_graph = 2
let k_spanner = 3

let c_written = Obs.counter "store/snapshots_written"
let c_bytes = Obs.counter "store/snapshot_bytes"

type spanner = {
  spec : Repair.spec;
  trees : (int * int) list array;
  union : (int * int) list;
}

type t = { seq : int; graph : Rs_graph.Graph.t; spanners : spanner list }

let spec_code = function
  | Repair.Gdy { r; beta } -> (1, r, beta)
  | Repair.Mis { r } -> (2, r, 0)
  | Repair.Gdy_k { k } -> (3, k, 0)
  | Repair.Mis_k { k } -> (4, k, 0)

let spec_of_code tag p1 p2 =
  match tag with
  | 1 -> Repair.Gdy { r = p1; beta = p2 }
  | 2 -> Repair.Mis { r = p1 }
  | 3 -> Repair.Gdy_k { k = p1 }
  | 4 -> Repair.Mis_k { k = p1 }
  | t -> Binio.corrupt "spanner section: unknown spec tag %d" t

(* {1 Encoding} *)

let add_section buf ~kind payload =
  Binio.w_u32 buf kind;
  Binio.w_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Binio.w_u32 buf (Crc32.of_string payload)

let encode_spanner sp =
  let buf = Buffer.create 1024 in
  let tag, p1, p2 = spec_code sp.spec in
  Binio.w_u8 buf tag;
  Binio.w_i32 buf p1;
  Binio.w_i32 buf p2;
  Binio.w_u32 buf (Array.length sp.trees);
  Array.iter
    (fun edges ->
      Binio.w_u32 buf (List.length edges);
      List.iter
        (fun (p, c) ->
          Binio.w_u32 buf p;
          Binio.w_u32 buf c)
        edges)
    sp.trees;
  Binio.w_u32 buf (List.length sp.union);
  List.iter
    (fun (u, v) ->
      Binio.w_u32 buf u;
      Binio.w_u32 buf v)
    sp.union;
  Buffer.contents buf

let to_string t =
  let open Rs_graph in
  let n = Graph.n t.graph and m = Graph.m t.graph in
  let meta = Buffer.create 24 in
  Binio.w_u64 meta t.seq;
  Binio.w_u32 meta n;
  Binio.w_u32 meta m;
  Binio.w_u32 meta (List.length t.spanners);
  let gr = Buffer.create (8 + (8 * m)) in
  Binio.w_u32 gr n;
  Binio.w_u32 gr m;
  Graph.iter_edges
    (fun u v ->
      Binio.w_u32 gr u;
      Binio.w_u32 gr v)
    t.graph;
  let buf = Buffer.create (64 + (8 * m)) in
  Buffer.add_string buf magic;
  Binio.w_u32 buf version;
  Binio.w_u32 buf (2 + List.length t.spanners);
  add_section buf ~kind:k_meta (Buffer.contents meta);
  add_section buf ~kind:k_graph (Buffer.contents gr);
  List.iter (fun sp -> add_section buf ~kind:k_spanner (encode_spanner sp)) t.spanners;
  Buffer.contents buf

(* {1 Decoding} *)

let decode_spanner payload =
  let r = Binio.reader payload in
  let tag = Binio.r_u8 r in
  let p1 = Binio.r_i32 r in
  let p2 = Binio.r_i32 r in
  let spec = spec_of_code tag p1 p2 in
  let n_roots = Binio.r_u32 r in
  let trees =
    Array.init n_roots (fun _ ->
        let count = Binio.r_u32 r in
        List.init count (fun _ ->
            let p = Binio.r_u32 r in
            let c = Binio.r_u32 r in
            (p, c)))
  in
  let union_count = Binio.r_u32 r in
  let union =
    List.init union_count (fun _ ->
        let u = Binio.r_u32 r in
        let v = Binio.r_u32 r in
        (u, v))
  in
  Binio.expect_end r ~what:"spanner section";
  let rec check_sorted prev = function
    | [] -> ()
    | (u, v) :: rest ->
        if u >= v then Binio.corrupt "spanner section: union edge (%d,%d) not canonical" u v;
        (match prev with
        | Some (pu, pv) when compare (pu, pv) (u, v) >= 0 ->
            Binio.corrupt "spanner section: union not strictly sorted at (%d,%d)" u v
        | _ -> ());
        check_sorted (Some (u, v)) rest
  in
  check_sorted None union;
  { spec; trees; union }

let of_string s =
  let r = Binio.reader s in
  if Binio.r_string r ~len:8 <> magic then Binio.corrupt "bad snapshot magic";
  let v = Binio.r_u32 r in
  if v <> version then Binio.corrupt "unsupported snapshot version %d" v;
  let count = Binio.r_u32 r in
  let sections = ref [] in
  for i = 1 to count do
    let kind = Binio.r_u32 r in
    let len = Binio.r_u32 r in
    let payload = Binio.r_string r ~len in
    let crc = Binio.r_u32 r in
    if Crc32.of_string payload <> crc then
      Binio.corrupt "section %d (kind %d): checksum mismatch" i kind;
    sections := (kind, payload) :: !sections
  done;
  Binio.expect_end r ~what:"snapshot";
  let sections = List.rev !sections in
  let meta =
    match List.filter (fun (k, _) -> k = k_meta) sections with
    | [ (_, p) ] -> p
    | l -> Binio.corrupt "expected exactly one META section, found %d" (List.length l)
  in
  let mr = Binio.reader meta in
  let seq = Binio.r_u64 mr in
  let n = Binio.r_u32 mr in
  let m = Binio.r_u32 mr in
  let spanner_count = Binio.r_u32 mr in
  Binio.expect_end mr ~what:"META section";
  let graph_payload =
    match List.filter (fun (k, _) -> k = k_graph) sections with
    | [ (_, p) ] -> p
    | l -> Binio.corrupt "expected exactly one GRAPH section, found %d" (List.length l)
  in
  let gr = Binio.reader graph_payload in
  let gn = Binio.r_u32 gr in
  let gm = Binio.r_u32 gr in
  if gn <> n || gm <> m then
    Binio.corrupt "GRAPH section (n=%d, m=%d) disagrees with META (n=%d, m=%d)" gn gm n m;
  let edges = Binio.r_u32_pairs gr ~count:gm ~what:"GRAPH edges" in
  Binio.expect_end gr ~what:"GRAPH section";
  let graph =
    try Rs_graph.Graph.of_canonical ~n edges
    with Invalid_argument msg -> Binio.corrupt "GRAPH section: %s" msg
  in
  let spanner_payloads = List.filter_map (fun (k, p) -> if k = k_spanner then Some p else None) sections in
  if List.length spanner_payloads <> spanner_count then
    Binio.corrupt "META declares %d spanner sections, found %d" spanner_count
      (List.length spanner_payloads);
  let spanners = List.map decode_spanner spanner_payloads in
  List.iter
    (fun sp ->
      if Array.length sp.trees <> n then
        Binio.corrupt "spanner section stores %d trees for a %d-vertex graph"
          (Array.length sp.trees) n)
    spanners;
  { seq; graph; spanners }

(* {1 Files} *)

let filename ~seq = Printf.sprintf "snap-%020d.rsnap" seq

(* [Some seq] when the basename is a well-formed snapshot name *)
let snapshot_seq name =
  if
    String.length name = 31
    && String.sub name 0 5 = "snap-"
    && Filename.check_suffix name ".rsnap"
  then int_of_string_opt (String.sub name 5 20)
  else None

let list_dir ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match snapshot_seq name with
         | Some seq -> Some (seq, Filename.concat dir name)
         | None -> None)
  |> List.sort compare

let fsync_dir dir =
  (* Linux lets a directory fd be fsynced, persisting the rename; on
     platforms that refuse, atomicity of the rename itself still holds *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write ~dir t =
  Obs.with_span "store/snapshot_write" @@ fun () ->
  let data = to_string t in
  let path = Filename.concat dir (filename ~seq:t.seq) in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Sys.rename tmp path;
  fsync_dir dir;
  Obs.incr c_written;
  Obs.add c_bytes (String.length data);
  path

let read path = of_string (In_channel.with_open_bin path In_channel.input_all)

let remove_temp ~dir =
  Sys.readdir dir |> Array.iter (fun name ->
      if Filename.check_suffix name ".tmp" && snapshot_seq (Filename.chop_suffix name ".tmp") <> None
      then Sys.remove (Filename.concat dir name))
