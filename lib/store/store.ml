open Rs_graph
open Rs_dynamic
open Rs_obs

let c_recoveries = Obs.counter "store/recoveries"
let c_replayed = Obs.counter "store/replayed_records"
let c_truncations = Obs.counter "store/truncations"
let c_skipped = Obs.counter "store/snapshots_skipped"
let c_compactions = Obs.counter "store/compactions"

type t = {
  dir : string;
  policy : Wal.policy;
  segment_bytes : int;
  mutable seq : int;
  mutable g : Graph.t;
  mutable states : (Repair.spec * Repair.t) list;
  mutable states_stale : bool;
      (* true after an [append ~repair:false]: [states] lag [g] and
         must be re-derived by [rebuild] before they are served *)
  mutable wal : Wal.writer;
  mutable closed : bool;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let snapshot_value t =
  if t.states_stale then
    invalid_arg "Store.snapshot_value: spanner states are stale (rebuild first)";
  { Snapshot.seq = t.seq;
    graph = t.g;
    spanners =
      List.map
        (fun (spec, st) ->
          { Snapshot.spec; trees = Repair.export_trees st; union = Repair.pairs st })
        t.states }

let create ?(policy = Wal.Always) ?(segment_bytes = 1 lsl 20) ~dir ~specs g =
  mkdir_p dir;
  if Snapshot.list_dir ~dir <> [] || Wal.segment_files ~dir <> [] then
    failwith (Printf.sprintf "Store.create: %s already contains a store (recover it instead)" dir);
  let states = List.map (fun spec -> (spec, Repair.init spec g)) specs in
  let t =
    { dir; policy; segment_bytes; seq = 0; g; states; states_stale = false;
      wal = Wal.create_writer ~policy ~segment_bytes ~dir ~next_seq:1 (); closed = false }
  in
  ignore (Snapshot.write ~dir (snapshot_value t));
  t

let graph t = t.g
let seq t = t.seq
let dir t = t.dir

let states t =
  if t.states_stale then
    invalid_arg "Store.states: spanner states are stale (rebuild first)";
  t.states

let states_stale t = t.states_stale

let append ?(repair = true) t delta =
  if t.closed then invalid_arg "Store.append: store is closed";
  if repair && t.states_stale then
    invalid_arg "Store.append: spanner states are stale (rebuild first)";
  (* validate first — an invalid delta must not reach the log *)
  match Delta.effect t.g delta with
  | [], [] -> []
  | _ ->
      let seq = Wal.append t.wal delta in
      t.seq <- seq;
      t.g <- Delta.apply t.g delta;
      if repair then List.map (fun (_, st) -> Repair.apply st delta) t.states
      else begin
        (* log-and-defer: the WAL and graph advance, the maintained
           spanners intentionally lag — the circuit-breaker path that
           trades incremental repair for one batched [rebuild] *)
        t.states_stale <- true;
        []
      end

let rebuild t =
  if t.closed then invalid_arg "Store.rebuild: store is closed";
  Obs.with_span "store/rebuild" @@ fun () ->
  t.states <- List.map (fun (spec, _) -> (spec, Repair.init spec t.g)) t.states;
  t.states_stale <- false

let sync_to t g' =
  match Delta.diff t.g g' with [] -> [] | delta -> append t delta

let write_snapshot t = Snapshot.write ~dir:t.dir (snapshot_value t)

let compact t =
  Obs.with_span "store/compact" @@ fun () ->
  if t.closed then invalid_arg "Store.compact: store is closed";
  let path = write_snapshot t in
  (* every WAL record and older snapshot is now folded into [path]:
     drop them all and restart the log right above the snapshot *)
  Wal.close_writer t.wal;
  List.iter (fun (_, file) -> Sys.remove file) (Wal.segment_files ~dir:t.dir);
  List.iter
    (fun (sseq, file) -> if sseq < t.seq then Sys.remove file)
    (Snapshot.list_dir ~dir:t.dir);
  t.wal <-
    Wal.create_writer ~policy:t.policy ~segment_bytes:t.segment_bytes ~dir:t.dir
      ~next_seq:(t.seq + 1) ();
  Obs.incr c_compactions;
  path

let close t =
  if not t.closed then begin
    Wal.close_writer t.wal;
    t.closed <- true
  end

(* {1 Recovery} *)

type recovery = {
  snapshot_seq : int;
  snapshot_file : string;
  last_seq : int;
  replayed : int;
  truncated : Wal.truncation option;
  snapshots_skipped : (string * string) list;
}

let pp_recovery fmt r =
  Format.fprintf fmt "@[<v>snapshot seq %d (%s)@,replayed %d WAL records -> seq %d"
    r.snapshot_seq
    (Filename.basename r.snapshot_file)
    r.replayed r.last_seq;
  (match r.truncated with
  | Some tr -> Format.fprintf fmt "@,WAL truncated: %a" Wal.pp_truncation tr
  | None -> ());
  List.iter
    (fun (file, reason) ->
      Format.fprintf fmt "@,skipped corrupt snapshot %s: %s" (Filename.basename file) reason)
    r.snapshots_skipped;
  Format.fprintf fmt "@]"

let verify_states g states =
  List.iter
    (fun (spec, st) ->
      let rebuilt = Edge_set.to_list (Repair.build spec g) in
      if Repair.pairs st <> rebuilt then
        failwith
          (Format.asprintf
             "Store.recover: recovered %a spanner diverges from a from-scratch build"
             Repair.pp_spec spec);
      match Repair.alpha_beta spec with
      | Some (alpha, beta) ->
          if not (Rs_core.Verify.is_remote_spanner g (Repair.spanner st) ~alpha ~beta) then
            failwith
              (Format.asprintf
                 "Store.recover: recovered %a spanner violates its (%.1f, %.1f) guarantee"
                 Repair.pp_spec spec alpha beta)
      | None -> ())
    states

let recover ?(policy = Wal.Always) ?(segment_bytes = 1 lsl 20) ?(verify = false) ~dir () =
  Obs.with_span "store/recover" @@ fun () ->
  Obs.incr c_recoveries;
  Snapshot.remove_temp ~dir;
  let skipped = ref [] in
  let snap, states, snap_file =
    Obs.with_span "load_snapshot" @@ fun () ->
    let rec attempt = function
      | [] ->
          failwith
            (Printf.sprintf "Store.recover: no usable snapshot in %s (%d corrupt skipped)" dir
               (List.length !skipped))
      | (_, path) :: rest -> (
          match
            let snap = Snapshot.read path in
            let states =
              List.map
                (fun sp ->
                  let st = Repair.restore sp.Snapshot.spec snap.Snapshot.graph ~trees:sp.trees in
                  (* the stored union is redundant with the trees; a
                     disagreement means the section set is internally
                     inconsistent — reject the whole file *)
                  if Repair.pairs st <> sp.union then
                    failwith "stored spanner union disagrees with the per-root trees";
                  (sp.spec, st))
                snap.Snapshot.spanners
            in
            (snap, states, path)
          with
          | v -> v
          | exception (Binio.Corrupt reason | Failure reason | Sys_error reason) ->
              skipped := (path, reason) :: !skipped;
              Obs.incr c_skipped;
              attempt rest)
    in
    attempt (List.rev (Snapshot.list_dir ~dir))
  in
  let scan = Wal.scan_dir ~dir ~after_seq:snap.Snapshot.seq in
  let g = ref snap.Snapshot.graph in
  let last = ref snap.Snapshot.seq in
  let replayed = ref 0 in
  let truncated = ref scan.Wal.truncation in
  Obs.with_span "replay" (fun () ->
      let stop = ref false in
      List.iter
        (fun (r : Wal.record) ->
          if not !stop then
            match Delta.effect !g r.Wal.delta with
            | _ ->
                (* [effect] validated every op, so neither apply below
                   can raise *)
                List.iter (fun (_, st) -> ignore (Repair.apply st r.Wal.delta)) states;
                g := Delta.apply !g r.Wal.delta;
                last := r.Wal.seq;
                incr replayed;
                Obs.incr c_replayed
            | exception (Invalid_argument reason | Failure reason) ->
                (* checksummed but semantically inapplicable — treat as
                   damage and keep the verified prefix *)
                stop := true;
                truncated :=
                  Some
                    { Wal.t_file = r.Wal.file; t_offset = r.Wal.offset;
                      t_reason = "record does not apply: " ^ reason })
        scan.Wal.records);
  (match !truncated with
  | Some tr ->
      Wal.truncate ~dir tr;
      Obs.incr c_truncations
  | None -> ());
  if verify then Obs.with_span "verify" (fun () -> verify_states !g states);
  let t =
    { dir; policy; segment_bytes; seq = !last; g = !g; states; states_stale = false;
      wal = Wal.create_writer ~policy ~segment_bytes ~dir ~next_seq:(!last + 1) ();
      closed = false }
  in
  ( t,
    { snapshot_seq = snap.Snapshot.seq; snapshot_file = snap_file; last_seq = !last;
      replayed = !replayed; truncated = !truncated; snapshots_skipped = List.rev !skipped } )
