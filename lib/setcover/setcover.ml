type instance = { universe : int; sets : int array array }

let validate inst =
  Array.iter
    (Array.iter (fun e ->
         if e < 0 || e >= inst.universe then invalid_arg "Setcover: element out of range"))
    inst.sets

let demand_cap inst =
  validate inst;
  let cap = Array.make inst.universe 0 in
  Array.iter
    (fun set ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            cap.(e) <- cap.(e) + 1
          end)
        set)
    inst.sets;
  cap

(* Residual coverage of a set: elements it contains whose demand is
   still positive, counting each element once. *)
let residual inst demand set_id used =
  if used.(set_id) then -1
  else begin
    let seen = Hashtbl.create 8 in
    let count = ref 0 in
    Array.iter
      (fun e ->
        if demand.(e) > 0 && not (Hashtbl.mem seen e) then begin
          Hashtbl.replace seen e ();
          incr count
        end)
      inst.sets.(set_id);
    !count
  end

let greedy_with_demand inst demand =
  let nsets = Array.length inst.sets in
  let used = Array.make nsets false in
  let total = ref (Array.fold_left ( + ) 0 demand) in
  let picks = ref [] in
  while !total > 0 do
    let best = ref (-1) and best_cov = ref 0 in
    for s = 0 to nsets - 1 do
      let c = residual inst demand s used in
      if c > !best_cov then begin
        best := s;
        best_cov := c
      end
    done;
    if !best < 0 then total := 0 (* residual demands unsatisfiable; done *)
    else begin
      used.(!best) <- true;
      picks := !best :: !picks;
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if demand.(e) > 0 && not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            demand.(e) <- demand.(e) - 1;
            decr total
          end)
        inst.sets.(!best)
    end
  done;
  List.rev !picks

let greedy_multicover inst ~k =
  if k < 1 then invalid_arg "Setcover.greedy_multicover: k < 1";
  let cap = demand_cap inst in
  let demand = Array.map (fun c -> min k c) cap in
  greedy_with_demand inst demand

let greedy inst = greedy_multicover inst ~k:1

let is_cover inst ~k picks =
  let cap = demand_cap inst in
  let covered = Array.make inst.universe 0 in
  List.iter
    (fun s ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            covered.(e) <- covered.(e) + 1
          end)
        inst.sets.(s))
    picks;
  let ok = ref true in
  for e = 0 to inst.universe - 1 do
    if covered.(e) < min k cap.(e) then ok := false
  done;
  !ok

let exact ?(limit = 10_000_000) inst ~k =
  if k < 1 then invalid_arg "Setcover.exact: k < 1";
  validate inst;
  let nsets = Array.length inst.sets in
  let cap = demand_cap inst in
  let demand = Array.map (fun c -> min k c) cap in
  (* sets containing each element *)
  let containing = Array.make inst.universe [] in
  Array.iteri
    (fun s set ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            containing.(e) <- s :: containing.(e)
          end)
        set)
    inst.sets;
  let max_set_size =
    Array.fold_left (fun acc s -> max acc (Array.length s)) 1 inst.sets
  in
  let best = ref None in
  let best_size = ref max_int in
  let nodes = ref 0 in
  let used = Array.make nsets false in
  let exhausted = ref false in
  let rec branch picked npicked total_demand =
    incr nodes;
    if !nodes > limit then exhausted := true
    else if total_demand = 0 then begin
      if npicked < !best_size then begin
        best_size := npicked;
        best := Some (List.rev picked)
      end
    end
    else begin
      (* lower bound: each further set satisfies <= max_set_size demand units *)
      let lb = npicked + ((total_demand + max_set_size - 1) / max_set_size) in
      if lb < !best_size then begin
        (* branch on the unmet element with fewest unused options *)
        let pivot = ref (-1) and options = ref max_int in
        for e = 0 to inst.universe - 1 do
          if demand.(e) > 0 then begin
            let avail = List.length (List.filter (fun s -> not used.(s)) containing.(e)) in
            if avail < !options then begin
              options := avail;
              pivot := e
            end
          end
        done;
        if !pivot >= 0 && !options > 0 && !options < max_int then begin
          let choices = List.filter (fun s -> not used.(s)) containing.(!pivot) in
          List.iter
            (fun s ->
              if not !exhausted then begin
                used.(s) <- true;
                let seen = Hashtbl.create 8 in
                let delta = ref 0 in
                Array.iter
                  (fun e ->
                    if demand.(e) > 0 && not (Hashtbl.mem seen e) then begin
                      Hashtbl.replace seen e ();
                      demand.(e) <- demand.(e) - 1;
                      incr delta
                    end)
                  inst.sets.(s);
                branch (s :: picked) (npicked + 1) (total_demand - !delta);
                Hashtbl.iter (fun e () -> demand.(e) <- demand.(e) + 1) seen;
                used.(s) <- false
              end)
            choices
        end
      end
    end
  in
  let total = Array.fold_left ( + ) 0 demand in
  branch [] 0 total;
  if !exhausted then None else !best
