type instance = { universe : int; sets : int array array }

(* The lazy-greedy solver sits inside every dominating-tree layer, so
   its instance sizes and pick counts are the per-layer shape of
   Algorithm 1's set-cover universe. One enabled-check per solve. *)
let c_instances = Rs_obs.Obs.counter "setcover/instances"
let c_picks = Rs_obs.Obs.counter "setcover/picks"
let h_universe = Rs_obs.Obs.histogram "setcover/universe"

let validate inst =
  Array.iter
    (Array.iter (fun e ->
         if e < 0 || e >= inst.universe then invalid_arg "Setcover: element out of range"))
    inst.sets

let demand_cap inst =
  validate inst;
  let cap = Array.make inst.universe 0 in
  Array.iter
    (fun set ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            cap.(e) <- cap.(e) + 1
          end)
        set)
    inst.sets;
  cap

(* Lazy greedy: residual coverages only decrease as demands are
   consumed, so a set's last-known coverage is a valid upper bound. We
   bucket sets by that bound and, per round, re-evaluate only the top
   bucket: movers sink to their true bucket, and once any member
   verifies at the top level, {e every} set whose true coverage equals
   the maximum is in that verified batch (anything cached lower is
   truly lower) — so picking the smallest index among them reproduces
   the eager scan's deterministic tie-break (max coverage, then
   smallest set index) exactly. Each set's cached bound only sinks,
   which is what makes the total re-evaluation work amortize. *)

(* Residual coverage of a set: elements it contains whose demand is
   still positive, counting each element once. [seen]/[gen] implement a
   generation-stamped member check so evaluation allocates nothing. *)
let residual_stamped sets demand seen gen set_id =
  incr gen;
  let stamp = !gen in
  let count = ref 0 in
  Array.iter
    (fun e ->
      if demand.(e) > 0 && seen.(e) <> stamp then begin
        seen.(e) <- stamp;
        incr count
      end)
    sets.(set_id);
  !count

let greedy_with_demand inst demand =
  let nsets = Array.length inst.sets in
  let total = ref (Array.fold_left ( + ) 0 demand) in
  if Rs_obs.Obs.enabled () then begin
    Rs_obs.Obs.incr c_instances;
    Rs_obs.Obs.observe h_universe (float_of_int inst.universe)
  end;
  if nsets = 0 || !total = 0 then []
  else begin
    let seen = Array.make (max 1 inst.universe) 0 in
    let gen = ref 0 in
    let residual = residual_stamped inst.sets demand seen gen in
    let maxcov = ref 0 in
    let cov = Array.make nsets 0 in
    for s = 0 to nsets - 1 do
      cov.(s) <- residual s;
      if cov.(s) > !maxcov then maxcov := cov.(s)
    done;
    let bucket = Array.make (!maxcov + 1) [] in
    for s = nsets - 1 downto 0 do
      bucket.(cov.(s)) <- s :: bucket.(cov.(s))
    done;
    let picks = ref [] in
    let top = ref !maxcov in
    while
      !total > 0
      && begin
           while !top > 0 && bucket.(!top) = [] do
             decr top
           done;
           !top > 0
         end
    do
      let c = !top in
      (* re-evaluate the whole top bucket: stale entries sink, and the
         verified batch is exactly the set of current argmaxes *)
      let verified = ref [] in
      List.iter
        (fun s ->
          let c' = residual s in
          if c' = c then verified := s :: !verified else bucket.(c') <- s :: bucket.(c'))
        bucket.(c);
      bucket.(c) <- [];
      match !verified with
      | [] -> ()
      | vs ->
          let s_star = List.fold_left min max_int vs in
          bucket.(c) <- List.filter (fun s -> s <> s_star) vs;
          picks := s_star :: !picks;
          Rs_obs.Obs.incr c_picks;
          incr gen;
          let stamp = !gen in
          Array.iter
            (fun e ->
              if demand.(e) > 0 && seen.(e) <> stamp then begin
                seen.(e) <- stamp;
                demand.(e) <- demand.(e) - 1;
                decr total
              end)
            inst.sets.(s_star)
    done;
    List.rev !picks
  end

let greedy_multicover inst ~k =
  if k < 1 then invalid_arg "Setcover.greedy_multicover: k < 1";
  let cap = demand_cap inst in
  let demand = Array.map (fun c -> min k c) cap in
  greedy_with_demand inst demand

let greedy inst = greedy_multicover inst ~k:1

let is_cover inst ~k picks =
  let cap = demand_cap inst in
  let covered = Array.make inst.universe 0 in
  List.iter
    (fun s ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            covered.(e) <- covered.(e) + 1
          end)
        inst.sets.(s))
    picks;
  let ok = ref true in
  for e = 0 to inst.universe - 1 do
    if covered.(e) < min k cap.(e) then ok := false
  done;
  !ok

let exact ?(limit = 10_000_000) inst ~k =
  if k < 1 then invalid_arg "Setcover.exact: k < 1";
  validate inst;
  let nsets = Array.length inst.sets in
  let cap = demand_cap inst in
  let demand = Array.map (fun c -> min k c) cap in
  (* sets containing each element *)
  let containing = Array.make inst.universe [] in
  Array.iteri
    (fun s set ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            containing.(e) <- s :: containing.(e)
          end)
        set)
    inst.sets;
  let max_set_size =
    Array.fold_left (fun acc s -> max acc (Array.length s)) 1 inst.sets
  in
  let best = ref None in
  let best_size = ref max_int in
  let nodes = ref 0 in
  let used = Array.make nsets false in
  let exhausted = ref false in
  let rec branch picked npicked total_demand =
    incr nodes;
    if !nodes > limit then exhausted := true
    else if total_demand = 0 then begin
      if npicked < !best_size then begin
        best_size := npicked;
        best := Some (List.rev picked)
      end
    end
    else begin
      (* lower bound: each further set satisfies <= max_set_size demand units *)
      let lb = npicked + ((total_demand + max_set_size - 1) / max_set_size) in
      if lb < !best_size then begin
        (* branch on the unmet element with fewest unused options *)
        let pivot = ref (-1) and options = ref max_int in
        for e = 0 to inst.universe - 1 do
          if demand.(e) > 0 then begin
            let avail = List.length (List.filter (fun s -> not used.(s)) containing.(e)) in
            if avail < !options then begin
              options := avail;
              pivot := e
            end
          end
        done;
        if !pivot >= 0 && !options > 0 && !options < max_int then begin
          let choices = List.filter (fun s -> not used.(s)) containing.(!pivot) in
          List.iter
            (fun s ->
              if not !exhausted then begin
                used.(s) <- true;
                let seen = Hashtbl.create 8 in
                let delta = ref 0 in
                Array.iter
                  (fun e ->
                    if demand.(e) > 0 && not (Hashtbl.mem seen e) then begin
                      Hashtbl.replace seen e ();
                      demand.(e) <- demand.(e) - 1;
                      incr delta
                    end)
                  inst.sets.(s);
                branch (s :: picked) (npicked + 1) (total_demand - !delta);
                Hashtbl.iter (fun e () -> demand.(e) <- demand.(e) + 1) seen;
                used.(s) <- false
              end)
            choices
        end
      end
    end
  in
  let total = Array.fold_left ( + ) 0 demand in
  branch [] 0 total;
  if !exhausted then None else !best
