(** Set cover and k-multicover: greedy heuristics and an exact solver.

    Algorithm 1 of the paper is a layered greedy set cover, Algorithm 4
    a greedy k-multicover (cover every element k times, each set
    counting at most once per element). The greedy guarantees are the
    classical [1 + ln n] ratio (Chvátal; Dobson/Wolsey for multicover).
    The exact branch-and-bound solver is used by the experiments to
    measure the constructions' real approximation ratios on small
    instances (Prop. 2 and Prop. 6, experiments E2/E11). *)

type instance = {
  universe : int;  (** elements are [0 .. universe-1] *)
  sets : int array array;  (** [sets.(i)] lists the elements of set i *)
}

val demand_cap : instance -> int array
(** [demand_cap inst] gives, per element, the number of sets containing
    it — the maximum satisfiable demand. *)

val greedy : instance -> int list
(** Classical greedy set cover: repeatedly pick the set covering the
    most uncovered elements (smallest index on ties — deterministic).
    Elements contained in no set are ignored. Returns chosen set
    indices in pick order.

    Implemented as a lazy greedy over coverage buckets: residual
    coverages only decrease, so sets are re-evaluated only when they
    surface at the current maximum instead of rescanning every set per
    round. Output-identical to the eager scan, including the
    tie-break. *)

val greedy_multicover : instance -> k:int -> int list
(** Greedy k-multicover: every element [e] must be covered
    [min k (demand_cap e)] times, a set counting once per element.
    Repeatedly picks the set with maximum residual coverage. *)

val is_cover : instance -> k:int -> int list -> bool
(** Check that the chosen sets cover every element
    [min k (demand_cap e)] times. *)

val exact : ?limit:int -> instance -> k:int -> int list option
(** Exact minimum k-multicover by branch and bound (branching on the
    element with fewest remaining options). Exponential: intended for
    instances with at most ~30 sets. [limit] caps the number of search
    nodes (default 10_000_000); returns [None] if the search space is
    exhausted without proof — in practice never on experiment-sized
    inputs. With [k = 1] this is exact minimum set cover. *)
