open Rs_obs
module Crc32 = Rs_graph.Crc32

let c_frames_in = Obs.counter "net/frames_in"
let c_frames_out = Obs.counter "net/frames_out"
let c_bytes_in = Obs.counter "net/bytes_in"
let c_bytes_out = Obs.counter "net/bytes_out"
let c_read_timeouts = Obs.counter "net/read_timeouts"
let c_write_timeouts = Obs.counter "net/write_timeouts"
let c_frame_errors = Obs.counter "net/frame_errors"

type error = Timeout | Closed | Corrupt of string

let error_to_string = function
  | Timeout -> "deadline exceeded"
  | Closed -> "connection closed by peer"
  | Corrupt reason -> "corrupt frame: " ^ reason

let max_payload = 1 lsl 26
let header_len = 8

(* A peer that vanishes mid-write must surface as [Error Closed], not
   kill the process: writes to a severed socket raise SIGPIPE before
   [EPIPE] can be returned, so the transport ignores the signal once,
   at link time. *)
let () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ | (exception (Invalid_argument _ | Sys_error _)) -> ()

(* [SO_RCVTIMEO]/[SO_SNDTIMEO] turn a blocked read or write into
   [EAGAIN] after the timeout — per-operation deadlines without
   nonblocking state machines. Sockets support them; for other fds
   (pipes in tests) the setsockopt fails and the op simply blocks,
   which those callers accept. *)
let set_timeout fd opt timeout_s =
  try Unix.setsockopt_float fd opt (Float.max 0.001 timeout_s)
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let is_timeout = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> true
  | _ -> false

let is_closed = function
  | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOTCONN | Unix.EBADF | Unix.ESHUTDOWN ->
      true
  | _ -> false

(* Write all of [s], surviving partial writes. *)
let write_all fd ~timeout_s s =
  set_timeout fd Unix.SO_SNDTIMEO timeout_s;
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write fd b off (len - off) with
      | 0 ->
          Obs.incr c_write_timeouts;
          Error Timeout
      | k -> go (off + k)
      | exception Unix.Unix_error (e, _, _) when is_timeout e ->
          Obs.incr c_write_timeouts;
          Error Timeout
      | exception Unix.Unix_error (e, _, _) when is_closed e -> Error Closed
      | exception Unix.Unix_error (e, _, _) ->
          Error (Corrupt (Unix.error_message e))
  in
  go 0

(* Read exactly [len] bytes. [eof_ok] distinguishes a clean close at a
   frame boundary from one mid-frame. *)
let read_exact fd ~timeout_s ~eof_ok len =
  set_timeout fd Unix.SO_RCVTIMEO timeout_s;
  let b = Bytes.create len in
  let rec go off =
    if off >= len then Ok (Bytes.unsafe_to_string b)
    else
      match Unix.read fd b off (len - off) with
      | 0 ->
          if off = 0 && eof_ok then Error Closed
          else begin
            Obs.incr c_frame_errors;
            Error (Corrupt "peer closed mid-frame")
          end
      | k -> go (off + k)
      | exception Unix.Unix_error (e, _, _) when is_timeout e ->
          Obs.incr c_read_timeouts;
          Error Timeout
      | exception Unix.Unix_error (e, _, _) when is_closed e ->
          if off = 0 && eof_ok then Error Closed
          else begin
            Obs.incr c_frame_errors;
            Error (Corrupt "peer reset mid-frame")
          end
      | exception Unix.Unix_error (e, _, _) ->
          Error (Corrupt (Unix.error_message e))
  in
  go 0

let send fd ~timeout_s payload =
  let len = String.length payload in
  if len > max_payload then
    Error (Corrupt (Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" len max_payload))
  else begin
    let buf = Buffer.create (header_len + len) in
    Rs_store.Binio.w_u32 buf len;
    Rs_store.Binio.w_u32 buf (Crc32.of_string payload);
    Buffer.add_string buf payload;
    match write_all fd ~timeout_s (Buffer.contents buf) with
    | Ok () ->
        Obs.incr c_frames_out;
        Obs.add c_bytes_out (header_len + len);
        Ok ()
    | Error _ as e -> e
  end

let recv fd ~timeout_s =
  match read_exact fd ~timeout_s ~eof_ok:true header_len with
  | Error _ as e -> e
  | Ok hdr -> (
      let len = Int32.to_int (String.get_int32_le hdr 0) land 0xFFFFFFFF in
      let crc = Int32.to_int (String.get_int32_le hdr 4) land 0xFFFFFFFF in
      if len > max_payload then begin
        Obs.incr c_frame_errors;
        Error
          (Corrupt (Printf.sprintf "frame announces %d bytes (cap %d)" len max_payload))
      end
      else
        match read_exact fd ~timeout_s ~eof_ok:false len with
        | Error _ as e -> e
        | Ok payload ->
            if Crc32.of_string payload <> crc then begin
              Obs.incr c_frame_errors;
              Error (Corrupt "payload checksum mismatch")
            end
            else begin
              Obs.incr c_frames_in;
              Obs.add c_bytes_in (header_len + len);
              Ok payload
            end)
