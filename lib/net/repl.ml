open Rs_obs
module Service = Rs_serve.Service
module Bqueue = Rs_serve.Bqueue
module Store = Rs_store.Store
module Wal = Rs_store.Wal
module Snapshot = Rs_store.Snapshot
module Binio = Rs_store.Binio
module Crc32 = Rs_graph.Crc32
module Rand = Rs_graph.Rand

let c_records_streamed = Obs.counter "net/records_streamed"
let c_heartbeats = Obs.counter "net/heartbeats"
let c_send_overflows = Obs.counter "net/send_overflows"
let c_ship_requests = Obs.counter "net/ship_requests"
let c_ship_bytes = Obs.counter "net/ship_bytes"
let c_handshake_rejects = Obs.counter "net/handshakes_rejected"
let g_followers = Obs.gauge "net/followers"
let c_applied = Obs.counter "replica/records_applied"
let c_reconnects = Obs.counter "replica/reconnects"
let c_snapshot_bytes = Obs.counter "replica/snapshot_bytes"
let c_stream_rejects = Obs.counter "replica/stream_rejects"
let g_lag = Obs.gauge "replica/lag"
let g_connected = Obs.gauge "replica/connected"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_quiet fd =
  try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* {1 Epoch fencing} *)

let epoch_file dir = Filename.concat dir "epoch"

let read_epoch ~dir =
  match In_channel.with_open_text (epoch_file dir) In_channel.input_all with
  | s -> (
      match int_of_string_opt (String.trim s) with
      | Some e when e >= 0 -> e
      | _ -> 0)
  | exception Sys_error _ -> 0

let write_epoch ~dir e =
  let tmp = epoch_file dir ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc (string_of_int e ^ "\n"));
  Sys.rename tmp (epoch_file dir)

(* {1 Wire messages} — one tag byte, then Binio little-endian fields *)

let msg_query_hello = "Q"

let msg_join ~epoch ~have_seq =
  let b = Buffer.create 13 in
  Buffer.add_char b 'J';
  Binio.w_u32 b epoch;
  Binio.w_u64 b have_seq;
  Buffer.contents b

let msg_get ~offset ~snap_seq =
  let b = Buffer.create 17 in
  Buffer.add_char b 'G';
  Binio.w_u64 b offset;
  Binio.w_u64 b snap_seq;
  Buffer.contents b

let msg_ok ~epoch ~seq =
  let b = Buffer.create 13 in
  Buffer.add_char b 'K';
  Binio.w_u32 b epoch;
  Binio.w_u64 b seq;
  Buffer.contents b

let msg_meta ~epoch ~snap_seq ~total ~crc ~name =
  let b = Buffer.create (25 + String.length name) in
  Buffer.add_char b 'M';
  Binio.w_u32 b epoch;
  Binio.w_u64 b snap_seq;
  Binio.w_u64 b total;
  Binio.w_u32 b crc;
  Buffer.add_string b name;
  Buffer.contents b

let msg_record ~epoch raw =
  let b = Buffer.create (5 + String.length raw) in
  Buffer.add_char b 'R';
  Binio.w_u32 b epoch;
  Buffer.add_string b raw;
  Buffer.contents b

let msg_heartbeat ~epoch ~seq =
  let b = Buffer.create 13 in
  Buffer.add_char b 'H';
  Binio.w_u32 b epoch;
  Binio.w_u64 b seq;
  Buffer.contents b

let msg_line l = "L" ^ l
let msg_err reason = "E" ^ reason

(* {1 WAL tailing} — incremental follow of a live WAL directory: keep
   (segment, offset, next seq), read only freshly flushed bytes, hop
   to the next segment on rotation. *)

type tail = {
  t_dir : string;
  mutable t_file : string option;
  mutable t_offset : int;
  mutable t_next : int;
}

let tail_create dir next = { t_dir = dir; t_file = None; t_offset = 0; t_next = next }

(* Position at the segment holding [t_next], skipping earlier records. *)
let tail_seek t =
  let segs = Wal.segment_files ~dir:t.t_dir in
  let holder =
    List.fold_left
      (fun acc (fs, path) -> if fs <= t.t_next then Some (fs, path) else acc)
      None segs
  in
  match holder with
  | None -> false
  | Some (fs, path) -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error _ -> false
      | s ->
          let pos = ref Wal.header_len in
          let seq = ref fs in
          let ok = ref true in
          (try
             while !seq < t.t_next do
               match Wal.decode_record s ~pos:!pos with
               | `Record (sq, _, nxt) ->
                   seq := sq + 1;
                   pos := nxt
               | `Need_more | `Bad _ -> raise Exit
             done
           with Exit -> ok := false);
          if !ok then begin
            t.t_file <- Some path;
            t.t_offset <- !pos;
            true
          end
          else false)

(* New complete records as (seq, raw record bytes); [] when idle. *)
let tail_poll t =
  let ready = match t.t_file with Some _ -> true | None -> tail_seek t in
  if not ready then []
  else begin
    let path = Option.get t.t_file in
    let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    if size > t.t_offset then begin
      match
        In_channel.with_open_bin path (fun ic ->
            In_channel.seek ic (Int64.of_int t.t_offset);
            really_input_string ic (size - t.t_offset))
      with
      | exception (Sys_error _ | End_of_file) -> []
      | buf ->
          let out = ref [] and pos = ref 0 and stop = ref false in
          while not !stop do
            match Wal.decode_record buf ~pos:!pos with
            | `Record (seq, _, nxt) ->
                out := (seq, String.sub buf !pos (nxt - !pos)) :: !out;
                pos := nxt;
                t.t_next <- seq + 1;
                stop := nxt >= String.length buf
            | `Need_more | `Bad _ ->
                (* a record the writer is mid-flush on; retry next poll *)
                stop := true
          done;
          t.t_offset <- t.t_offset + !pos;
          List.rev !out
    end
    else begin
      (* rotation: a fresh segment starting exactly at the next seq *)
      (match List.assoc_opt t.t_next (Wal.segment_files ~dir:t.t_dir) with
      | Some path' when t.t_file <> Some path' ->
          t.t_file <- Some path';
          t.t_offset <- Wal.header_len
      | _ -> ());
      []
    end
  end

(* {1 Leader} *)

type leader_config = {
  frame_timeout_s : float;
  heartbeat_s : float;
  send_capacity : int;
  overflow_patience_s : float Atomic.t;
  ship_chunk : int;
  sender_delay_s : float Atomic.t;
}

let default_leader_config () =
  {
    frame_timeout_s = 5.0;
    heartbeat_s = 0.5;
    send_capacity = 1024;
    overflow_patience_s = Atomic.make 5.0;
    ship_chunk = 1 lsl 18;
    sender_delay_s = Atomic.make 0.;
  }

type leader = {
  l_cfg : leader_config;
  l_env : Proto.env;
  l_service : Service.t;
  l_store_dir : string option;
  l_epoch : int;
  l_server : Tcp.server;
  l_followers : int Atomic.t;
  l_stop : bool Atomic.t;
}

let send_quiet ld fd payload =
  ignore (Frame.send fd ~timeout_s:ld.l_cfg.frame_timeout_s payload)

let query_session ld fd =
  let rec loop () =
    if Atomic.get ld.l_stop then ()
    else
      match Frame.recv fd ~timeout_s:ld.l_cfg.frame_timeout_s with
      | Error Frame.Timeout -> loop ()
      | Error (Frame.Closed | Frame.Corrupt _) -> ()
      | Ok p when String.length p >= 1 && p.[0] = 'L' -> (
          let line = String.sub p 1 (String.length p - 1) in
          match Proto.exec ld.l_env line with
          | Proto.Reply r ->
              (match Frame.send fd ~timeout_s:ld.l_cfg.frame_timeout_s (msg_line r) with
              | Ok () -> loop ()
              | Error _ -> ())
          | Proto.Silent -> (
              match Frame.send fd ~timeout_s:ld.l_cfg.frame_timeout_s (msg_line "") with
              | Ok () -> loop ()
              | Error _ -> ())
          | Proto.Quit -> send_quiet ld fd (msg_line ""))
      | Ok _ -> send_quiet ld fd (msg_err "expected an 'L' request frame")
  in
  loop ()

let newest_snapshot dir =
  match List.rev (Snapshot.list_dir ~dir) with [] -> None | s :: _ -> Some s

let ship_session ld dir fd hello =
  Obs.incr c_ship_requests;
  match
    let r = Binio.reader ~pos:1 hello in
    let offset = Binio.r_u64 r in
    let snap_seq = Binio.r_u64 r in
    (offset, snap_seq)
  with
  | exception Binio.Corrupt m -> send_quiet ld fd (msg_err ("bad ship request: " ^ m))
  | offset, snap_seq_req -> (
      match newest_snapshot dir with
      | None -> send_quiet ld fd (msg_err "no snapshot available to ship")
      | Some (seq, path) -> (
          match In_channel.with_open_bin path In_channel.input_all with
          | exception Sys_error m -> send_quiet ld fd (msg_err ("cannot read snapshot: " ^ m))
          | bytes ->
              let total = String.length bytes in
              let crc = Crc32.of_string bytes in
              let start =
                if snap_seq_req = seq && offset > 0 && offset <= total then offset
                else 0
              in
              let meta =
                msg_meta ~epoch:ld.l_epoch ~snap_seq:seq ~total ~crc
                  ~name:(Filename.basename path)
              in
              (match Frame.send fd ~timeout_s:ld.l_cfg.frame_timeout_s meta with
              | Error _ -> ()
              | Ok () ->
                  let rec chunks pos =
                    if Atomic.get ld.l_stop then ()
                    else if pos >= total then send_quiet ld fd "D"
                    else begin
                      let d = Atomic.get ld.l_cfg.sender_delay_s in
                      if d > 0. then Unix.sleepf d;
                      let len = min ld.l_cfg.ship_chunk (total - pos) in
                      match
                        Frame.send fd ~timeout_s:ld.l_cfg.frame_timeout_s
                          ("C" ^ String.sub bytes pos len)
                      with
                      | Ok () ->
                          Obs.add c_ship_bytes len;
                          chunks (pos + len)
                      | Error _ -> ()
                    end
                  in
                  chunks start)))

(* One WAL subscription: a tailer domain feeds a bounded send queue, a
   sender domain drains it to the socket, and the connection's own
   domain sits in recv to notice the peer going away. The bounded
   queue is the overload contract: a replica that cannot drain frames
   as fast as the writer produces them is disconnected with an
   explicit reason — the leader's memory per follower is
   [send_capacity] frames, full stop. *)
let stream_session ld dir fd hello =
  match
    let r = Binio.reader ~pos:1 hello in
    let known_epoch = Binio.r_u32 r in
    let have_seq = Binio.r_u64 r in
    (known_epoch, have_seq)
  with
  | exception Binio.Corrupt m -> send_quiet ld fd (msg_err ("bad join request: " ^ m))
  | known_epoch, have_seq ->
      if known_epoch > ld.l_epoch then begin
        Obs.incr c_handshake_rejects;
        send_quiet ld fd
          (msg_err
             (Printf.sprintf "stale leader epoch %d < replica epoch %d" ld.l_epoch
                known_epoch))
      end
      else begin
        let floor =
          match Wal.segment_files ~dir with [] -> 0 | (fs, _) :: _ -> fs
        in
        let current = Service.ingested_seq ld.l_service in
        if floor > 0 && have_seq + 1 < floor then begin
          Obs.incr c_handshake_rejects;
          send_quiet ld fd
            (msg_err
               (Printf.sprintf
                  "resync required: WAL starts at seq %d, replica resumes at %d" floor
                  (have_seq + 1)))
        end
        else
          match
            Frame.send fd ~timeout_s:ld.l_cfg.frame_timeout_s
              (msg_ok ~epoch:ld.l_epoch ~seq:current)
          with
          | Error _ -> ()
          | Ok () ->
              let nf = Atomic.fetch_and_add ld.l_followers 1 + 1 in
              Obs.set_gauge g_followers (float_of_int nf);
              let q = Bqueue.create ~capacity:ld.l_cfg.send_capacity in
              let overflow = Atomic.make false in
              let stop_conn = Atomic.make false in
              let stopping () = Atomic.get stop_conn || Atomic.get ld.l_stop in
              let tailer =
                Domain.spawn (fun () ->
                    let t = tail_create dir (have_seq + 1) in
                    let last_beat = ref (Unix.gettimeofday ()) in
                    (* A full queue is not yet overload: a replica
                       resuming with a backlog larger than the buffer
                       fills it instantly and legitimately. Overflow
                       means the sender could not free one slot within
                       the patience window — the replica is stuck, not
                       merely behind. *)
                    let push payload =
                      let deadline =
                        Unix.gettimeofday ()
                        +. Atomic.get ld.l_cfg.overflow_patience_s
                      in
                      let rec go () =
                        match Bqueue.push q payload with
                        | Ok () -> true
                        | Error Bqueue.Closed -> false
                        | Error (Bqueue.Full _) ->
                            if stopping () then false
                            else if Unix.gettimeofday () >= deadline then begin
                              Obs.incr c_send_overflows;
                              Atomic.set overflow true;
                              false
                            end
                            else begin
                              Unix.sleepf 0.002;
                              go ()
                            end
                      in
                      go ()
                    in
                    let rec loop () =
                      if stopping () || Atomic.get overflow then ()
                      else begin
                        let records = tail_poll t in
                        let ok =
                          List.for_all
                            (fun (_, raw) ->
                              let ok = push (msg_record ~epoch:ld.l_epoch raw) in
                              if ok then Obs.incr c_records_streamed;
                              ok)
                            records
                        in
                        if ok then begin
                          if records = [] then begin
                            let now = Unix.gettimeofday () in
                            if now -. !last_beat >= ld.l_cfg.heartbeat_s then begin
                              last_beat := now;
                              if
                                push
                                  (msg_heartbeat ~epoch:ld.l_epoch
                                     ~seq:(Service.ingested_seq ld.l_service))
                              then Obs.incr c_heartbeats
                            end;
                            Unix.sleepf 0.01
                          end;
                          loop ()
                        end
                      end
                    in
                    loop ())
              in
              let sender =
                Domain.spawn (fun () ->
                    let rec loop () =
                      if Atomic.get overflow then begin
                        (* don't drain the backlog into a replica that
                           already proved too slow: say why, hang up *)
                        send_quiet ld fd
                          (msg_err
                             (Printf.sprintf
                                "send buffer overflow (capacity %d frames): replica \
                                 too slow, disconnecting"
                                ld.l_cfg.send_capacity));
                        Atomic.set stop_conn true;
                        shutdown_quiet fd
                      end
                      else if stopping () && Bqueue.length q = 0 then ()
                      else begin
                        let batch = Bqueue.pop_batch q ~max:32 ~timeout_s:0.05 in
                        let rec send_all = function
                          | [] -> true
                          | payload :: rest ->
                              let d = Atomic.get ld.l_cfg.sender_delay_s in
                              if d > 0. then Unix.sleepf d;
                              if Atomic.get overflow then false
                              else (
                                match
                                  Frame.send fd ~timeout_s:ld.l_cfg.frame_timeout_s
                                    payload
                                with
                                | Ok () -> send_all rest
                                | Error _ ->
                                    Atomic.set stop_conn true;
                                    false)
                        in
                        if send_all batch then loop () else if Atomic.get overflow then loop ()
                      end
                    in
                    loop ())
              in
              (* the subscriber never speaks after the handshake; recv is
                 purely how we learn the connection died *)
              let rec watch () =
                if stopping () then ()
                else
                  match Frame.recv fd ~timeout_s:0.25 with
                  | Error Frame.Timeout -> watch ()
                  | Error (Frame.Closed | Frame.Corrupt _) -> Atomic.set stop_conn true
                  | Ok _ -> watch ()
              in
              watch ();
              Atomic.set stop_conn true;
              Bqueue.close q;
              Domain.join tailer;
              Domain.join sender;
              let nf = Atomic.fetch_and_add ld.l_followers (-1) - 1 in
              Obs.set_gauge g_followers (float_of_int nf)
      end

let lead ?config ?proto_env ?server ~service ~store_dir ~host ~port () =
  let l_cfg = match config with Some c -> c | None -> default_leader_config () in
  let epoch =
    match store_dir with
    | None -> 1
    | Some dir ->
        mkdir_p dir;
        let e = max 1 (read_epoch ~dir) in
        write_epoch ~dir e;
        e
  in
  match
    match server with Some s -> Ok s | None -> Tcp.listen ~host ~port
  with
  | Error _ as e -> e
  | Ok server ->
      let env = match proto_env with Some e -> e | None -> Proto.leader_env service in
      let ld =
        {
          l_cfg;
          l_env = env;
          l_service = service;
          l_store_dir = store_dir;
          l_epoch = epoch;
          l_server = server;
          l_followers = Atomic.make 0;
          l_stop = Atomic.make false;
        }
      in
      Tcp.serve server (fun fd ->
          match Frame.recv fd ~timeout_s:l_cfg.frame_timeout_s with
          | Error _ -> ()
          | Ok hello when String.length hello = 0 -> ()
          | Ok hello -> (
              match (hello.[0], store_dir) with
              | 'Q', _ -> query_session ld fd
              | 'G', Some dir -> ship_session ld dir fd hello
              | 'J', Some dir -> stream_session ld dir fd hello
              | ('G' | 'J'), None ->
                  send_quiet ld fd (msg_err "leader is ephemeral: no replication")
              | c, _ ->
                  send_quiet ld fd
                    (msg_err (Printf.sprintf "unknown hello tag %C" c))));
      Ok ld

let leader_port ld = Tcp.port ld.l_server
let leader_epoch ld = ld.l_epoch
let followers ld = Atomic.get ld.l_followers
let leader_set_refuse ld v = Tcp.set_refuse ld.l_server v
let leader_drop_connections ld = Tcp.drop_connections ld.l_server

let stop_leader ld =
  Atomic.set ld.l_stop true;
  Tcp.stop ld.l_server

(* {1 Snapshot shipping (client side)} *)

(* snap-<seq>.rsnap.part: recover the seq so the leader can tell us
   whether resuming against it still makes sense *)
let find_part dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".part")
  |> function
  | [] -> None
  | n :: _ ->
      let path = Filename.concat dir n in
      let size = (Unix.stat path).Unix.st_size in
      let base = Filename.chop_suffix n ".part" in
      let seq =
        if
          String.length base > 11
          && String.sub base 0 5 = "snap-"
          && Filename.check_suffix base ".rsnap"
        then
          match int_of_string_opt (String.sub base 5 (String.length base - 11)) with
          | Some s -> s
          | None -> 0
        else 0
      in
      Some (path, size, seq)

let ship ?(chunk_hint = 0) ?(timeout_s = 10.0) ~host ~port ~dir () =
  ignore chunk_hint;
  mkdir_p dir;
  let offset, snap_seq_req =
    match find_part dir with Some (_, size, seq) -> (size, seq) | None -> (0, 0)
  in
  match Tcp.connect ~host ~port ~timeout_s with
  | Error m -> Error m
  | Ok fd -> (
      let fail m =
        close_quiet fd;
        Error m
      in
      let frame_err e = Frame.error_to_string e in
      match Frame.send fd ~timeout_s (msg_get ~offset ~snap_seq:snap_seq_req) with
      | Error e -> fail ("ship request: " ^ frame_err e)
      | Ok () -> (
          match Frame.recv fd ~timeout_s with
          | Error e -> fail ("ship meta: " ^ frame_err e)
          | Ok p when String.length p >= 1 && p.[0] = 'E' ->
              fail ("leader refused ship: " ^ String.sub p 1 (String.length p - 1))
          | Ok p when String.length p >= 1 && p.[0] = 'M' -> (
              match
                let r = Binio.reader ~pos:1 p in
                let epoch = Binio.r_u32 r in
                let snap_seq = Binio.r_u64 r in
                let total = Binio.r_u64 r in
                let crc = Binio.r_u32 r in
                let name = Binio.r_string r ~len:(Binio.remaining r) in
                (epoch, snap_seq, total, crc, name)
              with
              | exception Binio.Corrupt m -> fail ("bad ship meta: " ^ m)
              | epoch, snap_seq, total, crc, name ->
                  if epoch > read_epoch ~dir then write_epoch ~dir epoch;
                  let target = Filename.concat dir name in
                  let part = target ^ ".part" in
                  let resume = snap_seq = snap_seq_req && offset > 0 && offset <= total in
                  if not resume then
                    (* different snapshot than the partial, or nothing
                       partial: start clean *)
                    Sys.readdir dir |> Array.iter (fun n ->
                        if Filename.check_suffix n ".part" then
                          Sys.remove (Filename.concat dir n));
                  let oc =
                    open_out_gen
                      (if resume then [ Open_wronly; Open_binary; Open_append ]
                       else [ Open_wronly; Open_binary; Open_creat; Open_trunc ])
                      0o644 part
                  in
                  let written = ref (if resume then offset else 0) in
                  let rec drain () =
                    match Frame.recv fd ~timeout_s with
                    | Error e -> Error ("ship stream: " ^ frame_err e)
                    | Ok p when String.length p >= 1 && p.[0] = 'C' ->
                        let len = String.length p - 1 in
                        output_substring oc p 1 len;
                        (* keep the partial's on-disk size honest: a
                           resume offsets from it, chunk by chunk *)
                        flush oc;
                        written := !written + len;
                        Obs.add c_snapshot_bytes len;
                        drain ()
                    | Ok "D" -> Ok ()
                    | Ok p when String.length p >= 1 && p.[0] = 'E' ->
                        Error ("leader aborted ship: " ^ String.sub p 1 (String.length p - 1))
                    | Ok _ -> Error "unexpected frame during ship"
                  in
                  let r = drain () in
                  close_out oc;
                  close_quiet fd;
                  (match r with
                  | Error m -> Error m
                  | Ok () ->
                      if !written <> total then
                        Error
                          (Printf.sprintf "ship incomplete: %d of %d bytes" !written
                             total)
                      else
                        let bytes =
                          In_channel.with_open_bin part In_channel.input_all
                        in
                        if Crc32.of_string bytes <> crc then begin
                          (* a torn or corrupted partial: discard so the
                             next attempt starts clean *)
                          Sys.remove part;
                          Error "shipped snapshot failed its checksum; partial discarded"
                        end
                        else begin
                          Sys.rename part target;
                          Ok (snap_seq, target)
                        end))
          | Ok _ -> fail "unexpected reply to ship request"))

(* {1 Query client} *)

let connect_query ~host ~port ~timeout_s =
  match Tcp.connect ~host ~port ~timeout_s with
  | Error _ as e -> e
  | Ok fd -> (
      match Frame.send fd ~timeout_s msg_query_hello with
      | Ok () -> Ok fd
      | Error e ->
          close_quiet fd;
          Error (Frame.error_to_string e))

let request fd ~timeout_s line =
  match Frame.send fd ~timeout_s (msg_line line) with
  | Error e -> Error (Frame.error_to_string e)
  | Ok () -> (
      match Frame.recv fd ~timeout_s with
      | Error e -> Error (Frame.error_to_string e)
      | Ok p when String.length p >= 1 && p.[0] = 'L' ->
          Ok (String.sub p 1 (String.length p - 1))
      | Ok p when String.length p >= 1 && p.[0] = 'E' ->
          Error (String.sub p 1 (String.length p - 1))
      | Ok _ -> Error "unexpected reply frame")

(* {1 Replica} *)

type replica_config = {
  r_frame_timeout_s : float;
  apply_capacity : int;
  reconnect_base_s : float;
  reconnect_max_s : float;
  max_retries : int;
  seed : int;
  fsync : Wal.policy;
  apply_delay_s : float Atomic.t;
}

let default_replica_config () =
  {
    r_frame_timeout_s = 5.0;
    apply_capacity = 256;
    reconnect_base_s = 0.05;
    reconnect_max_s = 2.0;
    max_retries = 10;
    seed = 1;
    fsync = Wal.Every 32;
    apply_delay_s = Atomic.make 0.;
  }

type replica = {
  r_cfg : replica_config;
  r_dir : string;
  r_host : string;
  r_port : int;
  r_service : Service.t;
  r_epoch : int Atomic.t;
  r_leader_seq : int Atomic.t;
  r_connected : bool Atomic.t;
  r_ever_connected : bool Atomic.t;
  r_reconnects : int Atomic.t;
  r_gave_up : bool Atomic.t;
  r_stop : bool Atomic.t;
  r_err_m : Mutex.t;
  mutable r_err : string option;
  mutable r_fd : Unix.file_descr option;  (* under r_err_m *)
  r_apply_q : (int * Rs_dynamic.Delta.t) Bqueue.t;
  r_inflight : int Atomic.t;  (* popped from the queue, not yet offered *)
  mutable r_net_dom : unit Domain.t option;
  mutable r_apply_dom : unit Domain.t option;
  mutable r_health_dom : unit Domain.t option;
}

let set_err r m =
  Mutex.lock r.r_err_m;
  r.r_err <- Some m;
  Mutex.unlock r.r_err_m

let last_error r =
  Mutex.lock r.r_err_m;
  let e = r.r_err in
  Mutex.unlock r.r_err_m;
  e

let set_fd r fd =
  Mutex.lock r.r_err_m;
  r.r_fd <- fd;
  Mutex.unlock r.r_err_m

let replica_service r = r.r_service
let replica_epoch r = Atomic.get r.r_epoch
let connected r = Atomic.get r.r_connected
let gave_up r = Atomic.get r.r_gave_up
let reconnects r = Atomic.get r.r_reconnects

let lag r =
  let l = Atomic.get r.r_leader_seq - Service.ingested_seq r.r_service in
  max 0 l

let status_suffix r =
  Printf.sprintf " role=replica leader_seq=%d lag=%d connected=%b epoch=%d"
    (Atomic.get r.r_leader_seq) (lag r) (connected r)
    (Atomic.get r.r_epoch)

let note_lag r =
  Obs.set_gauge g_lag (float_of_int (lag r));
  Obs.set_gauge g_connected (if connected r then 1. else 0.)

(* The applier: drains the bounded queue into [Service.offer],
   retrying on a momentarily full ingest queue — backpressure flows
   back through [push_wait] to the receiver, and from there through
   TCP to the leader's bounded send buffer. *)
let applier r () =
  let rec offer_one (seq, delta) =
    let d = Atomic.get r.r_cfg.apply_delay_s in
    if d > 0. then Unix.sleepf d;
    match Service.offer r.r_service delta with
    | Ok () ->
        Obs.incr c_applied;
        ignore seq
    | Error _ when Atomic.get r.r_stop -> ()
    | Error reason ->
        if
          (* a full service queue is transient backpressure; anything
             else (suspended ingest, shutdown) ends the stream *)
          String.length reason >= 10 && String.sub reason 0 10 = "queue full"
        then begin
          Unix.sleepf 0.005;
          offer_one (seq, delta)
        end
        else begin
          set_err r ("replica apply rejected: " ^ reason);
          Atomic.set r.r_stop true
        end
  in
  let rec loop () =
    let batch = Bqueue.pop_batch r.r_apply_q ~max:16 ~timeout_s:0.05 in
    Atomic.set r.r_inflight (List.length batch);
    List.iter offer_one batch;
    Atomic.set r.r_inflight 0;
    if
      batch = [] && Bqueue.is_closed r.r_apply_q
      && Bqueue.length r.r_apply_q = 0
    then ()
    else loop ()
  in
  loop ()

(* Quiescence that covers the whole replica pipeline: nothing queued,
   nothing between pop and offer, and the service's writer has caught
   its log — only then does [ingested_seq] name the exact resume
   point. *)
let replica_idle r =
  Bqueue.length r.r_apply_q = 0
  && Atomic.get r.r_inflight = 0
  && Service.idle r.r_service

let wait_idle r =
  while (not (replica_idle r)) && not (Atomic.get r.r_stop) do
    Unix.sleepf 0.005
  done

(* The follower loop: connect, handshake from the durable sequence
   number, stream, and on any disconnect reconnect with capped
   exponential backoff plus jitter — resuming from wherever the
   applier durably got to, so nothing is skipped or re-applied. *)
let follower r () =
  let rand = Rand.create r.r_cfg.seed in
  let attempts = ref 0 in
  let backoff () =
    incr attempts;
    if !attempts > r.r_cfg.max_retries then begin
      Atomic.set r.r_gave_up true;
      true (* give up *)
    end
    else begin
      let base = r.r_cfg.reconnect_base_s *. (2. ** float_of_int (!attempts - 1)) in
      let capped = Float.min base r.r_cfg.reconnect_max_s in
      let jitter = capped *. 0.5 *. (float_of_int (Rand.int rand 1000) /. 1000.) in
      let until = Unix.gettimeofday () +. capped +. jitter in
      while Unix.gettimeofday () < until && not (Atomic.get r.r_stop) do
        Unix.sleepf 0.01
      done;
      false
    end
  in
  let stream fd session_epoch have =
    let next = ref (have + 1) in
    let rec loop () =
      if Atomic.get r.r_stop then ()
      else
        match Frame.recv fd ~timeout_s:r.r_cfg.r_frame_timeout_s with
        | Error Frame.Timeout ->
            (* heartbeats come every heartbeat_s << the frame deadline:
               silence this long means the link is dead *)
            set_err r "stream silent past the deadline"
        | Error Frame.Closed -> set_err r "leader closed the stream"
        | Error (Frame.Corrupt m) -> set_err r ("stream corrupt: " ^ m)
        | Ok p when String.length p >= 5 && p.[0] = 'R' -> (
            let epoch =
              let rd = Binio.reader ~pos:1 ~limit:5 p in
              Binio.r_u32 rd
            in
            if epoch <> session_epoch then begin
              Obs.incr c_stream_rejects;
              set_err r
                (Printf.sprintf "epoch fence: frame epoch %d, session epoch %d" epoch
                   session_epoch)
            end
            else
              match Wal.decode_record p ~pos:5 with
              | `Bad m ->
                  Obs.incr c_stream_rejects;
                  set_err r ("bad streamed record: " ^ m)
              | `Need_more ->
                  Obs.incr c_stream_rejects;
                  set_err r "truncated streamed record"
              | `Record (seq, delta, _) ->
                  if seq <> !next then begin
                    Obs.incr c_stream_rejects;
                    set_err r
                      (Printf.sprintf "sequence gap: streamed %d, expected %d" seq
                         !next)
                  end
                  else (
                    match Bqueue.push_wait r.r_apply_q (seq, delta) with
                    | Ok () ->
                        next := seq + 1;
                        if seq > Atomic.get r.r_leader_seq then
                          Atomic.set r.r_leader_seq seq;
                        note_lag r;
                        loop ()
                    | Error _ -> () (* shutting down *)))
        | Ok p when String.length p >= 13 && p.[0] = 'H' -> (
            match
              let rd = Binio.reader ~pos:1 p in
              let epoch = Binio.r_u32 rd in
              let seq = Binio.r_u64 rd in
              (epoch, seq)
            with
            | exception Binio.Corrupt m -> set_err r ("bad heartbeat: " ^ m)
            | epoch, seq ->
                if epoch <> session_epoch then begin
                  Obs.incr c_stream_rejects;
                  set_err r
                    (Printf.sprintf "epoch fence: heartbeat epoch %d, session epoch %d"
                       epoch session_epoch)
                end
                else begin
                  if seq > Atomic.get r.r_leader_seq then Atomic.set r.r_leader_seq seq;
                  note_lag r;
                  loop ()
                end)
        | Ok p when String.length p >= 1 && p.[0] = 'E' ->
            set_err r
              ("disconnected by leader: " ^ String.sub p 1 (String.length p - 1))
        | Ok _ -> set_err r "unexpected frame on the stream"
    in
    loop ()
  in
  let rec outer () =
    if Atomic.get r.r_stop then ()
    else
      match Tcp.connect ~host:r.r_host ~port:r.r_port ~timeout_s:2.0 with
      | Error e ->
          set_err r e;
          if backoff () then () else outer ()
      | Ok fd -> (
          set_fd r (Some fd);
          (* quiesce first: once idle, ingested = applied = durable, so
             have_seq is exact — no gap, no double-apply on resume *)
          wait_idle r;
          let have = Service.ingested_seq r.r_service in
          let hello = msg_join ~epoch:(Atomic.get r.r_epoch) ~have_seq:have in
          let cleanup () =
            set_fd r None;
            close_quiet fd
          in
          match Frame.send fd ~timeout_s:r.r_cfg.r_frame_timeout_s hello with
          | Error e ->
              cleanup ();
              set_err r ("join: " ^ Frame.error_to_string e);
              if backoff () then () else outer ()
          | Ok () -> (
              match Frame.recv fd ~timeout_s:r.r_cfg.r_frame_timeout_s with
              | Error e ->
                  cleanup ();
                  set_err r ("join reply: " ^ Frame.error_to_string e);
                  if backoff () then () else outer ()
              | Ok p when String.length p >= 13 && p.[0] = 'K' -> (
                  match
                    let rd = Binio.reader ~pos:1 p in
                    let epoch = Binio.r_u32 rd in
                    let seq = Binio.r_u64 rd in
                    (epoch, seq)
                  with
                  | exception Binio.Corrupt m ->
                      cleanup ();
                      set_err r ("bad join reply: " ^ m);
                      if backoff () then () else outer ()
                  | epoch, leader_seq ->
                      if epoch < Atomic.get r.r_epoch then begin
                        Obs.incr c_stream_rejects;
                        cleanup ();
                        set_err r
                          (Printf.sprintf
                             "rejected deposed leader: stream epoch %d < replica \
                              epoch %d"
                             epoch (Atomic.get r.r_epoch));
                        if backoff () then () else outer ()
                      end
                      else begin
                        if epoch > Atomic.get r.r_epoch then begin
                          Atomic.set r.r_epoch epoch;
                          write_epoch ~dir:r.r_dir epoch
                        end;
                        if leader_seq > Atomic.get r.r_leader_seq then
                          Atomic.set r.r_leader_seq leader_seq;
                        attempts := 0;
                        if Atomic.get r.r_ever_connected then begin
                          Atomic.incr r.r_reconnects;
                          Obs.incr c_reconnects
                        end;
                        Atomic.set r.r_ever_connected true;
                        Atomic.set r.r_connected true;
                        note_lag r;
                        stream fd epoch have;
                        Atomic.set r.r_connected false;
                        note_lag r;
                        cleanup ();
                        if backoff () then () else outer ()
                      end)
              | Ok p when String.length p >= 1 && p.[0] = 'E' ->
                  cleanup ();
                  set_err r
                    ("leader refused join: " ^ String.sub p 1 (String.length p - 1));
                  if backoff () then () else outer ()
              | Ok _ ->
                  cleanup ();
                  set_err r "unexpected join reply";
                  if backoff () then () else outer ()))
  in
  outer ();
  Atomic.set r.r_connected false;
  note_lag r

let health_writer r ~path ~every_s () =
  let write () =
    let line = Service.health r.r_service ^ status_suffix r in
    let tmp = path ^ ".tmp" in
    try
      Out_channel.with_open_text tmp (fun oc ->
          Out_channel.output_string oc (line ^ "\n"));
      Sys.rename tmp path
    with Sys_error _ -> ()
  in
  write ();
  let rec loop () =
    if Atomic.get r.r_stop then write ()
    else begin
      let until = Unix.gettimeofday () +. every_s in
      while Unix.gettimeofday () < until && not (Atomic.get r.r_stop) do
        Unix.sleepf 0.02
      done;
      write ();
      loop ()
    end
  in
  loop ()

let follow ?config ?health_file ~service_config ~dir ~host ~port () =
  let cfg = match config with Some c -> c | None -> default_replica_config () in
  mkdir_p dir;
  (* bootstrap: an empty directory gets the leader's newest snapshot
     (resumable across torn attempts); an existing store resumes *)
  let rec bootstrap attempt =
    if Snapshot.list_dir ~dir <> [] then Ok ()
    else
      match ship ~timeout_s:cfg.r_frame_timeout_s ~host ~port ~dir () with
      | Ok _ -> Ok ()
      | Error e when attempt < cfg.max_retries ->
          ignore e;
          Unix.sleepf
            (Float.min cfg.reconnect_max_s
               (cfg.reconnect_base_s *. (2. ** float_of_int attempt)));
          bootstrap (attempt + 1)
      | Error e -> Error ("snapshot bootstrap failed: " ^ e)
  in
  match bootstrap 0 with
  | Error _ as e -> e
  | Ok () -> (
      match Store.recover ~policy:cfg.fsync ~verify:false ~dir () with
      | exception Failure m -> Error ("replica recover failed: " ^ m)
      | store, _recovery ->
          let svc_cfg =
            { service_config with Service.batch_max = 1; health_file = None }
          in
          let svc = Service.start svc_cfg (Service.Durable store) in
          let r =
            {
              r_cfg = cfg;
              r_dir = dir;
              r_host = host;
              r_port = port;
              r_service = svc;
              r_epoch = Atomic.make (read_epoch ~dir);
              r_leader_seq = Atomic.make (Service.ingested_seq svc);
              r_connected = Atomic.make false;
              r_ever_connected = Atomic.make false;
              r_reconnects = Atomic.make 0;
              r_gave_up = Atomic.make false;
              r_stop = Atomic.make false;
              r_err_m = Mutex.create ();
              r_err = None;
              r_fd = None;
              r_apply_q = Bqueue.create ~capacity:cfg.apply_capacity;
              r_inflight = Atomic.make 0;
              r_net_dom = None;
              r_apply_dom = None;
              r_health_dom = None;
            }
          in
          r.r_apply_dom <- Some (Domain.spawn (applier r));
          r.r_net_dom <- Some (Domain.spawn (follower r));
          (match health_file with
          | Some path ->
              r.r_health_dom <-
                Some
                  (Domain.spawn
                     (health_writer r ~path ~every_s:svc_cfg.Service.health_every_s))
          | None -> ());
          Ok r)

let detach r =
  if not (Atomic.exchange r.r_stop true) then begin
    (* wake a blocked recv *)
    Mutex.lock r.r_err_m;
    (match r.r_fd with Some fd -> shutdown_quiet fd | None -> ());
    Mutex.unlock r.r_err_m;
    Bqueue.close r.r_apply_q;
    (match r.r_net_dom with Some d -> Domain.join d | None -> ());
    (match r.r_apply_dom with Some d -> Domain.join d | None -> ());
    (match r.r_health_dom with Some d -> Domain.join d | None -> ());
    r.r_net_dom <- None;
    r.r_apply_dom <- None;
    r.r_health_dom <- None
  end

let promote r =
  detach r;
  (* everything the applier accepted must be folded in before the
     epoch changes hands *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while (not (Service.idle r.r_service)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  let e = Atomic.get r.r_epoch + 1 in
  Atomic.set r.r_epoch e;
  write_epoch ~dir:r.r_dir e;
  e

let stop_replica r =
  detach r;
  Service.stop r.r_service

let kill_replica r =
  detach r;
  Service.kill r.r_service
