(** TCP plumbing for [Rs_net]: a domain-per-connection listener and a
    deadline-bounded connector.

    The server accepts on its own domain and runs each connection's
    handler on a fresh domain; handlers speak {!Frame} with deadlines,
    so closing a connection's descriptor (from {!stop} or
    {!drop_connections}) unblocks them promptly. Two knobs exist for
    the chaos harness: {!set_refuse} makes the listener close new
    connections on arrival, and {!drop_connections} severs the live
    ones — together they simulate a network partition without a proxy
    process. *)

val parse_hostport : string -> (string * int, string) result
(** ["HOST:PORT"] → [(host, port)]. The last [':'] splits, so bare
    numeric forms work; empty host means ["127.0.0.1"]. Errors are
    one-line diagnostics suitable for CLI misuse output. *)

type server

val listen :
  host:string -> port:int -> (server, string) result
(** Bind and listen (SO_REUSEADDR). [port = 0] picks an ephemeral
    port; read it back with {!port}. No domain is spawned yet. *)

val port : server -> int
(** The actually-bound port. *)

val serve : server -> (Unix.file_descr -> unit) -> unit
(** Start the accept loop on a new domain. Each accepted connection
    runs [handler fd] on its own domain; the fd is closed when the
    handler returns or raises. Records [net/accepts] and gauges
    [net/connections]. *)

val set_refuse : server -> bool -> unit
(** While set, accepted connections are closed immediately — new
    clients see a reset, as across a partition. *)

val drop_connections : server -> int
(** Shut down every live connection's socket (handlers unblock with
    [Closed]); returns how many were severed. *)

val connections : server -> int
(** Live connection count. *)

val stop : server -> unit
(** Close the listener, sever live connections, join every domain.
    Idempotent. *)

val connect :
  host:string -> port:int -> timeout_s:float -> (Unix.file_descr, string) result
(** One connection attempt with a bounded wait (non-blocking connect +
    [select]); [TCP_NODELAY] set. The caller owns the descriptor. *)
