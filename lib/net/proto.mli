(** The serve line protocol as a pure command evaluator.

    [rspan serve] historically parsed its stdin commands inline; the
    TCP transport needs the same grammar and byte-identical replies, so
    the evaluator lives here and both paths call it. One request line
    in, one reply (possibly multi-line) out — transport-agnostic, so a
    reply travels equally well to stdout or inside a {!Frame}. *)

type outcome =
  | Reply of string  (** reply text, no trailing newline *)
  | Silent  (** blank line or comment: nothing to say *)
  | Quit  (** the peer asked to end the session *)

type env = {
  service : Rs_serve.Service.t;
  on_delta : Rs_dynamic.Delta.t -> (unit, string) result;
      (** how a [delta] line is admitted — the leader offers it to the
          service; a replica rejects it with a read-only reason *)
  stopped : unit -> bool;  (** external shutdown, checked while draining *)
  status_suffix : unit -> string;
      (** appended to the [status] health line (replicas advertise
          [" lag=N"] here); [""] for a leader *)
}

val leader_env : Rs_serve.Service.t -> env
(** The standard writable environment: deltas are offered to the
    service, no status suffix, never externally stopped. *)

val exec : env -> string -> outcome
(** Evaluate one request line: [status], [stats], [route A B],
    [paths A B K], [advert U], [delta …], [drain], [sleep S], [quit],
    comments. Unknown commands and malformed integers come back as
    [Reply "error: …"] — the connection stays up. *)
