module Service = Rs_serve.Service
module Delta = Rs_dynamic.Delta

type outcome = Reply of string | Silent | Quit

type env = {
  service : Service.t;
  on_delta : Delta.t -> (unit, string) result;
  stopped : unit -> bool;
  status_suffix : unit -> string;
}

let leader_env service =
  {
    service;
    on_delta = (fun d -> Service.offer service d);
    stopped = (fun () -> false);
    status_suffix = (fun () -> "");
  }

(* Formats below are pinned by test/cli.t — the stdin path printed
   them verbatim before the TCP transport existed. *)
let format_response label (r : Service.response) =
  let ints xs = String.concat " " (List.map string_of_int xs) in
  let stale = if r.Service.stale then " [stale]" else "" in
  match r.Service.answer with
  | Error Service.Timeout -> Printf.sprintf "%s: timeout" label
  | Error (Service.Overloaded reason) ->
      Printf.sprintf "%s: overloaded (%s)" label reason
  | Error (Service.Bad_request m) -> Printf.sprintf "%s: bad request (%s)" label m
  | Ok (Service.Route_a { path = None; shortest }) ->
      Printf.sprintf "%s: unreachable (shortest %d)%s" label shortest stale
  | Ok (Service.Route_a { path = Some p; shortest }) ->
      Printf.sprintf "%s: %s (%d hops, shortest %d)%s" label (ints p)
        (List.length p - 1) shortest stale
  | Ok (Service.Paths_a None) -> Printf.sprintf "%s: none%s" label stale
  | Ok (Service.Paths_a (Some ps)) ->
      Printf.sprintf "%s: %s%s" label
        (String.concat " | " (List.map ints ps))
        stale
  | Ok (Service.Advert_a ns) -> Printf.sprintf "%s: %s%s" label (ints ns) stale
  | Ok (Service.Stats_a { n; m; spanner; advert; seq }) ->
      Printf.sprintf "%s: n=%d m=%d spanner=%d advert=%d seq=%d%s" label n m
        spanner advert seq stale
  | Ok (Service.Status_a _) -> Printf.sprintf "%s: ok" label

let exec env line =
  let svc = env.service in
  let eval () =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Silent
    else
      let parts = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
      let node s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> failwith ("not an integer: " ^ s)
      in
      match parts with
      | [ "quit" ] -> Quit
      | [ "status" ] -> Reply (Service.health svc ^ env.status_suffix ())
      | [ "stats" ] -> Reply (format_response "stats" (Service.query svc Service.Stats))
      | [ "route"; a; b ] ->
          Reply
            (format_response
               (Printf.sprintf "route %s %s" a b)
               (Service.query svc (Service.Route { src = node a; dst = node b })))
      | [ "paths"; a; b; kk ] ->
          Reply
            (format_response
               (Printf.sprintf "paths %s %s %s" a b kk)
               (Service.query svc
                  (Service.Paths { src = node a; dst = node b; k = node kk })))
      | [ "advert"; u ] ->
          Reply
            (format_response
               (Printf.sprintf "advert %s" u)
               (Service.query svc (Service.Advert (node u))))
      | "delta" :: rest when rest <> [] -> (
          match Delta.parse (String.concat " " rest) with
          | exception Failure m -> Reply (Printf.sprintf "delta rejected: %s" m)
          | d -> (
              match env.on_delta d with
              | Ok () -> Reply "delta accepted"
              | Error reason -> Reply (Printf.sprintf "delta rejected: %s" reason)))
      | [ "drain" ] ->
          let deadline_at = Unix.gettimeofday () +. 60.0 in
          let rec wait timed_out =
            if env.stopped () || Service.idle svc then timed_out
            else if Unix.gettimeofday () > deadline_at then true
            else begin
              Unix.sleepf 0.01;
              wait timed_out
            end
          in
          let timed_out = wait false in
          let drained = Printf.sprintf "drained at seq %d" (Service.view_seq svc) in
          Reply (if timed_out then "drain: timed out\n" ^ drained else drained)
      | [ "sleep"; s ] -> (
          match float_of_string_opt s with
          | Some dt when dt >= 0. ->
              Unix.sleepf dt;
              Silent
          | _ -> Reply "sleep: not a duration")
      | cmd :: _ -> Reply (Printf.sprintf "error: unknown command '%s'" cmd)
      | [] -> Silent
  in
  match eval () with r -> r | exception Failure m -> Reply ("error: " ^ m)
