(** Leader/replica replication of durable spanner state.

    A {e leader} is a durable {!Rs_serve.Service} made reachable over
    TCP: it answers the serve line protocol ({!Proto}) to query
    clients, ships its newest checksummed snapshot to joining
    replicas, and streams WAL records to followers as its writer
    appends them. A {e replica} is a full store-plus-service of its
    own — it installs the shipped snapshot, recovers from it, then
    applies the streamed records through {!Rs_dynamic.Repair} exactly
    as the leader did, serving stale-bounded reads with an advertised
    [lag] (leader seq minus applied seq).

    Every connection opens with one tag byte from the client:
    - ['Q'] — query session: ['L' line] requests, ['L' reply] answers;
    - ['G' u64 offset, u64 snap_seq] — snapshot fetch (resumable:
      [offset] into the file previously identified by [snap_seq]; [0,
      0] asks for the newest from the start). The leader answers
      ['M' u32 epoch, u64 snap_seq, u64 total_len, u32 crc, name],
      then ['C' bytes] chunks, then ['D']; the replica verifies the
      whole-file CRC before installing under the real name;
    - ['J' u32 known_epoch, u64 have_seq] — WAL subscription. Accepted
      with ['K' u32 epoch, u64 leader_seq], then ['R' u32 epoch,
      record] frames carrying {!Rs_store.Wal} records verbatim
      (validated by the same checksum-then-parse path recovery uses)
      and ['H' u32 epoch, u64 leader_seq] heartbeats. Refusals and
      disconnect reasons travel as ['E' reason].

    Robustness contract:
    - every read/write runs against a {!Frame} deadline;
    - each follower is fed through a {e bounded} send buffer — a
      replica that cannot keep up is disconnected with an explicit
      ['E'] reason, the leader never buffers without bound;
    - a disconnected replica reconnects with capped exponential
      backoff plus seeded jitter and resumes from its own durable
      sequence number — the handshake's [have_seq] is read after the
      service is idle, so records are neither skipped nor re-applied;
    - leader identity is {e epoch-fenced}: the epoch lives in a file
      in the store directory, every streamed frame carries it, and a
      replica promoted to epoch [e] refuses any stream with epoch
      [< e] — a deposed leader cannot un-promote it. *)

(** {1 Epoch fencing} *)

val read_epoch : dir:string -> int
(** The epoch recorded in [dir]'s [epoch] file; [0] when absent. *)

val write_epoch : dir:string -> int -> unit
(** Persist atomically (temp + rename). *)

(** {1 Leader} *)

type leader_config = {
  frame_timeout_s : float;  (** per-frame read/write deadline *)
  heartbeat_s : float;  (** idle-stream heartbeat period *)
  send_capacity : int;  (** per-follower send buffer, in frames *)
  overflow_patience_s : float Atomic.t;
      (** how long a full send buffer may refuse one frame before the
          follower is declared too slow and disconnected — a buffer
          that is full but {e draining} (a replica resuming through a
          large backlog) is healthy backpressure, not overload *)
  ship_chunk : int;  (** snapshot ship chunk bytes *)
  sender_delay_s : float Atomic.t;
      (** chaos knob: sleep per streamed frame, making the bounded
          send buffer fill deterministically *)
}

val default_leader_config : unit -> leader_config
(** 5 s frames, 0.5 s heartbeats, 1024-frame buffers with 5 s
    overflow patience, 256 KiB chunks, no delay. (A function: the
    config carries fresh atomics.) *)

type leader

val lead :
  ?config:leader_config ->
  ?proto_env:Proto.env ->
  ?server:Tcp.server ->
  service:Rs_serve.Service.t ->
  store_dir:string option ->
  host:string ->
  port:int ->
  unit ->
  (leader, string) result
(** Start serving on [host:port] ([port = 0] picks one — see
    {!leader_port}). [?server] supplies a pre-bound listener instead
    — the CLI binds {e before} opening any store so a taken port is a
    one-line exit, not a half-initialized service.
    [store_dir = None] (ephemeral backend) serves
    queries only: join and ship requests are refused with a reason.
    Otherwise the leader's epoch is [max 1 (read_epoch dir)],
    persisted back, and followers are fed by tailing the directory's
    WAL segments. [?proto_env] overrides how ['Q'] sessions evaluate
    lines (default {!Proto.leader_env}) — a promoted or query-serving
    replica passes an environment that rejects [delta] lines and
    advertises its lag. *)

val leader_port : leader -> int
val leader_epoch : leader -> int

val followers : leader -> int
(** Live WAL subscriptions. *)

val leader_set_refuse : leader -> bool -> unit
(** Partition chaos: refuse new connections (see {!Tcp.set_refuse}). *)

val leader_drop_connections : leader -> int
(** Partition chaos: sever every live connection. *)

val stop_leader : leader -> unit
(** Stop the listener and all per-follower machinery. Does {e not}
    stop the underlying service. Idempotent. *)

(** {1 Replica} *)

type replica_config = {
  r_frame_timeout_s : float;
  apply_capacity : int;  (** bounded queue between receiver and applier *)
  reconnect_base_s : float;
  reconnect_max_s : float;  (** backoff cap *)
  max_retries : int;  (** consecutive failed connects before giving up *)
  seed : int;  (** backoff jitter *)
  fsync : Rs_store.Wal.policy;  (** the replica's own WAL durability *)
  apply_delay_s : float Atomic.t;  (** chaos knob: slow consumer *)
}

val default_replica_config : unit -> replica_config

type replica

val follow :
  ?config:replica_config ->
  ?health_file:string ->
  service_config:Rs_serve.Service.config ->
  dir:string ->
  host:string ->
  port:int ->
  unit ->
  (replica, string) result
(** Attach to a leader. An empty [dir] is bootstrapped by shipping the
    leader's newest snapshot (resumable across interrupted attempts);
    a [dir] that already holds a store is recovered and resumed from
    its own sequence number. The service is started with
    [batch_max = 1] (forced), so the replica's sequence numbers match
    the leader's one to one. [?health_file] publishes
    [Service.health ^ {!status_suffix}] atomically every
    [health_every_s]. *)

val replica_service : replica -> Rs_serve.Service.t
(** Query it directly; writes should go through the leader. *)

val lag : replica -> int
(** Leader's last advertised seq minus the replica's applied seq
    (clamped at 0) — the staleness bound served to clients. *)

val connected : replica -> bool

val gave_up : replica -> bool
(** The follower loop exhausted [max_retries] consecutive failed
    connection attempts and exited — the promote-on-disconnect signal. *)

val reconnects : replica -> int
(** Total successful re-handshakes after a disconnect. *)

val replica_epoch : replica -> int

val last_error : replica -> string option
(** Why the stream last ended, e.g. the leader's ['E'] reason. *)

val status_suffix : replica -> string
(** [" role=replica leader_seq=%d lag=%d connected=%b epoch=%d"] —
    appended to health lines and [status] replies. *)

val detach : replica -> unit
(** Stop following (domains joined, socket closed); the service keeps
    serving what it has. Idempotent. *)

val promote : replica -> int
(** {!detach}, wait until the service is idle, bump and persist the
    epoch, and return it. The replica's service is now the freshest
    surviving state and refuses the deposed leader's stream. *)

val stop_replica : replica -> Rs_serve.Service.status
(** {!detach} then [Service.stop] (final snapshot, store closed). *)

val kill_replica : replica -> unit
(** {!detach} then [Service.kill] — crash simulation for chaos. *)

(** {1 Clients} *)

val ship :
  ?chunk_hint:int ->
  ?timeout_s:float ->
  host:string ->
  port:int ->
  dir:string ->
  unit ->
  (int * string, string) result
(** Fetch the leader's newest snapshot into [dir], resuming a
    matching [.part] left by an interrupted attempt at its offset.
    The file is verified against the leader's whole-file CRC before
    the atomic rename; a mismatch discards the partial and reports an
    error (the next attempt starts clean). Returns (seq, path). *)

val connect_query :
  host:string -> port:int -> timeout_s:float -> (Unix.file_descr, string) result
(** Open a query session (sends the ['Q'] hello). *)

val request :
  Unix.file_descr -> timeout_s:float -> string -> (string, string) result
(** One line in, one reply out, over an open query session. *)
