open Rs_graph
open Rs_dynamic
module Service = Rs_serve.Service
module Store = Rs_store.Store
module Wal = Rs_store.Wal
module Snapshot = Rs_store.Snapshot
module Verify = Rs_core.Verify

let names =
  [ "partition-mid-stream"; "torn-snapshot-ship"; "slow-replica-overflow";
    "replica-restart-resume"; "leader-kill-promote" ]

type failure = { scenario : string; reason : string }

type report = {
  scenarios : int;
  queries_ok : int;
  stale_served : int;
  reconnects : int;
  disconnects : int;
  failures : failure list;
}

let ok r = r.scenarios > 0 && r.failures = []

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>net chaos scenarios: %d (%d queries answered, %d stale-flagged, %d \
     reconnects, %d reasoned disconnects)"
    r.scenarios r.queries_ok r.stale_served r.reconnects r.disconnects;
  List.iter
    (fun f -> Format.fprintf fmt "@,FAIL %s: %s" f.scenario f.reason)
    r.failures;
  Format.fprintf fmt "@]"

(* {1 Filesystem scratchpads} — the flat-directory helpers every
   harness in this repo uses; store directories hold no subdirectories *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let copy_dir src dst =
  rm_rf dst;
  mkdir_p dst;
  Array.iter
    (fun name ->
      let data = In_channel.with_open_bin (Filename.concat src name) In_channel.input_all in
      Out_channel.with_open_bin (Filename.concat dst name) (fun oc ->
          Out_channel.output_string oc data))
    (Sys.readdir src)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* {1 Random churn} — the same op mix the in-process chaos harness
   drives, so network scenarios exercise the same delta space *)

let random_op rand g =
  let n = Graph.n g in
  let m = Graph.m g in
  let pick () = Rand.int rand n in
  match Rand.int rand 100 with
  | r when r < 45 || m = 0 ->
      let rec go tries =
        let u = pick () and v = pick () in
        if u = v then go tries
        else if Graph.mem_edge g u v && tries > 0 then go (tries - 1)
        else Delta.Add_edge (u, v)
      in
      go 8
  | r when r < 80 ->
      let u, v = Graph.edge g (Rand.int rand m) in
      Delta.Remove_edge (u, v)
  | r when r < 90 -> Delta.Node_down (pick ())
  | _ ->
      let u = pick () in
      let links =
        List.init
          (1 + Rand.int rand 3)
          (fun _ ->
            let rec go () =
              let v = pick () in
              if v = u then go () else v
            in
            go ())
        |> List.sort_uniq compare
      in
      Delta.Node_up (u, links)

let random_delta rand g =
  let rec go tries =
    let ops = List.init (1 + Rand.int rand 3) (fun _ -> random_op rand g) in
    match Delta.effect g ops with
    | [], [] when tries > 0 -> go (tries - 1)
    | _ -> ops
  in
  go 16

(* {1 Gates} *)

let wait_until ?(timeout = 20.0) ~what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      failwith ("timed out waiting for " ^ what)
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* The recovery gate, applied to the replica's live view: its spanners
   must equal a from-scratch build on its graph and honor the paper
   guarantee — streamed deltas through [Repair.apply] land exactly
   where the leader landed. *)
let verify_state ~what g spanners =
  List.iter
    (fun (spec, sp) ->
      if Edge_set.to_list sp <> Edge_set.to_list (Repair.build spec g) then
        failwith
          (Format.asprintf "%s: %a spanner diverges from a from-scratch build"
             what Repair.pp_spec spec);
      match Repair.alpha_beta spec with
      | Some (alpha, beta) ->
          if not (Verify.is_remote_spanner g sp ~alpha ~beta) then
            failwith
              (Format.asprintf "%s: %a spanner violates its (%.1f, %.1f) guarantee"
                 what Repair.pp_spec spec alpha beta)
      | None -> ())
    spanners

(* Both directories must recover to the same state; the snapshot
   encoding is deterministic, so equal states have equal bytes. *)
let gate_byte_identical ~what dir_a dir_b =
  let recover_value suffix src =
    let copy = src ^ suffix in
    copy_dir src copy;
    let st, info = Store.recover ~policy:Wal.Always ~verify:false ~dir:copy () in
    let v = Snapshot.to_string (Store.snapshot_value st) in
    Store.close st;
    (info.Store.last_seq, v)
  in
  let sa, va = recover_value "-cmp-a" dir_a in
  let sb, vb = recover_value "-cmp-b" dir_b in
  if sa <> sb then
    failwith
      (Printf.sprintf "%s: stores recover to different seqs (%d vs %d)" what sa sb);
  if not (String.equal va vb) then
    failwith (Printf.sprintf "%s: stores at seq %d are not byte-identical" what sa)

(* {1 Concurrent client load} — reader traffic against the replica's
   service during every disruption; a [Bad_request] is a harness
   failure, timeouts and overload rejections are not *)

type clients = {
  cl_served : int Atomic.t;
  cl_stale : int Atomic.t;
  cl_soft : int Atomic.t;
  cl_bad_m : Mutex.t;
  mutable cl_bad : string list;
  cl_stop : bool Atomic.t;
  mutable cl_domains : unit Domain.t array;
}

let spawn_clients svc ~seed ~n ~count =
  let cl =
    { cl_served = Atomic.make 0; cl_stale = Atomic.make 0; cl_soft = Atomic.make 0;
      cl_bad_m = Mutex.create (); cl_bad = []; cl_stop = Atomic.make false;
      cl_domains = [||] }
  in
  cl.cl_domains <-
    Array.init count (fun i ->
        Domain.spawn (fun () ->
            let rand = Rand.create (seed + (7919 * (i + 1))) in
            while not (Atomic.get cl.cl_stop) do
              let q =
                match Rand.int rand 4 with
                | 0 -> Service.Stats
                | 1 -> Service.Status
                | 2 -> Service.Route { src = Rand.int rand n; dst = Rand.int rand n }
                | _ -> Service.Advert (Rand.int rand n)
              in
              let r = Service.query ~deadline_s:2.0 svc q in
              (match r.Service.answer with
              | Ok _ ->
                  Atomic.incr cl.cl_served;
                  if r.Service.stale then Atomic.incr cl.cl_stale
              | Error (Service.Timeout | Service.Overloaded _) ->
                  Atomic.incr cl.cl_soft
              | Error (Service.Bad_request m) ->
                  Mutex.lock cl.cl_bad_m;
                  cl.cl_bad <- m :: cl.cl_bad;
                  Mutex.unlock cl.cl_bad_m);
              Unix.sleepf 0.001
            done));
  cl

let join_clients cl =
  Atomic.set cl.cl_stop true;
  Array.iter Domain.join cl.cl_domains;
  match cl.cl_bad with
  | [] -> ()
  | m :: _ ->
      failwith
        (Printf.sprintf "clients saw %d Bad_request responses (e.g. %s)"
           (List.length cl.cl_bad) m)

type outcome = {
  o_queries : int;
  o_stale : int;
  o_reconnects : int;
  o_disconnects : int;
}

(* {1 Shared scaffolding} *)

let host = "127.0.0.1"

let start_leader ?lcfg ~specs ~g0 ~base () =
  rm_rf base;
  let lcfg =
    match lcfg with Some c -> c | None -> Repl.default_leader_config ()
  in
  let store = Store.create ~policy:Wal.Always ~segment_bytes:512 ~dir:base ~specs g0 in
  let svc =
    Service.start
      { Service.default_config with readers = 2; batch_max = 1; watchdog_s = 0. }
      (Service.Durable store)
  in
  match Repl.lead ~config:lcfg ~service:svc ~store_dir:(Some base) ~host ~port:0 () with
  | Error m -> failwith ("leader failed to start: " ^ m)
  | Ok ld -> (store, svc, ld)

let rcfg ~seed ?(max_retries = 1000) () =
  { (Repl.default_replica_config ()) with
    Repl.r_frame_timeout_s = 2.0;
    reconnect_base_s = 0.02;
    reconnect_max_s = 0.2;
    max_retries;
    seed;
    fsync = Wal.Always }

let start_replica ~cfg ~dir ~port () =
  match
    Repl.follow ~config:cfg
      ~service_config:{ Service.default_config with readers = 2; watchdog_s = 0. }
      ~dir ~host ~port ()
  with
  | Error m -> failwith ("replica failed to attach: " ^ m)
  | Ok r -> r

let feed svc rand expected ~from_ ~upto =
  for i = from_ to upto do
    let d = random_delta rand expected.(i - 1) in
    expected.(i) <- Delta.apply expected.(i - 1) d;
    (match Service.offer svc d with
    | Ok () -> ()
    | Error e -> failwith ("leader offer rejected: " ^ e));
    wait_until ~what:"leader ingest" (fun () -> Service.ingested_seq svc >= i)
  done

let wait_caught_up ?(timeout = 30.0) ~what r target =
  wait_until ~timeout ~what (fun () ->
      let svc = Repl.replica_service r in
      Service.ingested_seq svc >= target && Service.idle svc)

(* exact equality is the no-gap/no-double-apply gate: a skipped record
   leaves the replica short, a re-applied one pushes it past *)
let gate_seq ~what r target =
  let got = Service.ingested_seq (Repl.replica_service r) in
  if got <> target then
    failwith
      (Printf.sprintf "%s: replica at seq %d, leader at %d (gap or double-apply)"
         what got target)

let gate_replica ~what r expected_g =
  let svc = Repl.replica_service r in
  wait_until ~what:(what ^ ": replica publication") (fun () ->
      Service.view_seq svc = Service.ingested_seq svc);
  let g, spanners = Service.peek svc in
  if not (Graph.equal g expected_g) then
    failwith (what ^ ": replica topology diverges from the reference");
  verify_state ~what g spanners

(* {1 Scenarios} *)

(* The leader↔replica link is severed mid-stream while the leader keeps
   ingesting. The replica serves what it has, then reconnects when the
   partition heals and resumes from its own sequence number. *)
let partition_mid_stream ~rand ~specs ~n ~batches ~dir =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "partition-mid-stream" in
  let rdir = base ^ "-replica" in
  rm_rf rdir;
  let _store, svc, ld = start_leader ~specs ~g0 ~base () in
  let port = Repl.leader_port ld in
  let expected = Array.make (batches + 1) g0 in
  let half = batches / 2 in
  feed svc rand expected ~from_:1 ~upto:half;
  let r = start_replica ~cfg:(rcfg ~seed:(3 * n) ()) ~dir:rdir ~port () in
  wait_caught_up ~what:"replica catch-up before the partition" r half;
  gate_seq ~what:"partition-mid-stream (pre)" r half;
  let cl = spawn_clients (Repl.replica_service r) ~seed:(11 * n) ~n ~count:2 in
  Repl.leader_set_refuse ld true;
  ignore (Repl.leader_drop_connections ld);
  feed svc rand expected ~from_:(half + 1) ~upto:batches;
  wait_until ~what:"the replica noticing the partition" (fun () ->
      not (Repl.connected r));
  (match
     (Service.query ~deadline_s:2.0 (Repl.replica_service r) Service.Stats)
       .Service.answer
   with
  | Ok _ -> ()
  | Error _ -> failwith "partitioned replica stopped answering reads");
  Repl.leader_set_refuse ld false;
  wait_until ~what:"reconnection after the partition healed" (fun () ->
      Repl.connected r);
  wait_caught_up ~what:"resume catch-up" r batches;
  gate_seq ~what:"partition-mid-stream" r batches;
  if Repl.reconnects r < 1 then failwith "no reconnect was recorded";
  join_clients cl;
  gate_replica ~what:"partition-mid-stream" r expected.(batches);
  (* the healed leader still answers the line protocol over TCP *)
  let tcp_ok = ref 0 in
  (match Repl.connect_query ~host ~port ~timeout_s:2.0 with
  | Error m -> failwith ("query connect: " ^ m)
  | Ok fd ->
      List.iter
        (fun line ->
          match Repl.request fd ~timeout_s:2.0 line with
          | Ok _ -> incr tcp_ok
          | Error m -> failwith ("query '" ^ line ^ "': " ^ m))
        [ "status"; "stats" ];
      ignore (Repl.request fd ~timeout_s:2.0 "quit");
      (try Unix.close fd with Unix.Unix_error _ -> ()));
  let reconnects = Repl.reconnects r in
  ignore (Repl.stop_replica r);
  Repl.stop_leader ld;
  ignore (Service.stop svc);
  gate_byte_identical ~what:"partition-mid-stream" base rdir;
  { o_queries = Atomic.get cl.cl_served + !tcp_ok;
    o_stale = Atomic.get cl.cl_stale;
    o_reconnects = reconnects;
    o_disconnects = 0 }

(* A snapshot ship is cut mid-chunk, the partial is corrupted on disk,
   and the ship retried: the resume must continue at the partial's
   offset, the CRC must reject the corruption, and a clean retry must
   bootstrap a replica that catches up. *)
let torn_snapshot_ship ~rand ~specs ~n ~batches ~dir =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "torn-snapshot-ship" in
  let rdir = base ^ "-replica" in
  rm_rf rdir;
  let lcfg = { (Repl.default_leader_config ()) with Repl.ship_chunk = 64 } in
  Atomic.set lcfg.Repl.sender_delay_s 0.02;
  let store, svc, ld = start_leader ~lcfg ~specs ~g0 ~base () in
  let port = Repl.leader_port ld in
  let expected = Array.make (batches + 3) g0 in
  feed svc rand expected ~from_:1 ~upto:batches;
  wait_until ~what:"leader quiescence before the snapshot" (fun () ->
      Service.idle svc);
  let snap_path = Store.write_snapshot store in
  let total = (Unix.stat snap_path).Unix.st_size in
  let part = Filename.concat rdir (Filename.basename snap_path ^ ".part") in
  (* cut the wire mid-ship; the partial must survive at a real offset *)
  let shipper =
    Domain.spawn (fun () -> Repl.ship ~timeout_s:2.0 ~host ~port ~dir:rdir ())
  in
  wait_until ~what:"ship progress before the cut" (fun () ->
      Sys.file_exists part && (Unix.stat part).Unix.st_size > 0);
  ignore (Repl.leader_drop_connections ld);
  (match Domain.join shipper with
  | Ok _ -> failwith "the severed ship reported success"
  | Error _ -> ());
  if not (Sys.file_exists part) then failwith "the interrupted ship left no partial";
  let torn = (Unix.stat part).Unix.st_size in
  if torn <= 0 || torn >= total then
    failwith (Printf.sprintf "torn partial holds %d of %d bytes" torn total);
  (* corrupt one byte; the resumed ship must reject the whole file *)
  let flipped = Bytes.of_string (read_file part) in
  let i = torn / 2 in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0xff));
  write_file part (Bytes.to_string flipped);
  Atomic.set lcfg.Repl.sender_delay_s 0.;
  (match Repl.ship ~timeout_s:5.0 ~host ~port ~dir:rdir () with
  | Ok _ -> failwith "a corrupted partial shipped without a checksum failure"
  | Error m ->
      if not (contains m "checksum") then
        failwith ("unexpected resume error: " ^ m));
  if Sys.file_exists part then failwith "the corrupt partial was not discarded";
  (* a clean retry installs, and the replica it bootstraps catches up *)
  (match Repl.ship ~timeout_s:5.0 ~host ~port ~dir:rdir () with
  | Error m -> failwith ("clean ship failed: " ^ m)
  | Ok (seq, _) ->
      if seq <> batches then
        failwith (Printf.sprintf "shipped snapshot at seq %d, expected %d" seq batches));
  let r = start_replica ~cfg:(rcfg ~seed:(5 * n) ()) ~dir:rdir ~port () in
  feed svc rand expected ~from_:(batches + 1) ~upto:(batches + 2);
  wait_caught_up ~what:"post-bootstrap catch-up" r (batches + 2);
  gate_seq ~what:"torn-snapshot-ship" r (batches + 2);
  gate_replica ~what:"torn-snapshot-ship" r expected.(batches + 2);
  let reconnects = Repl.reconnects r in
  ignore (Repl.stop_replica r);
  Repl.stop_leader ld;
  ignore (Service.stop svc);
  gate_byte_identical ~what:"torn-snapshot-ship" base rdir;
  { o_queries = 0; o_stale = 0; o_reconnects = reconnects; o_disconnects = 0 }

(* The per-follower send buffer is shrunk and the stream throttled
   until the buffer overflows: the leader must hang up with an
   explicit reason, and the un-throttled replica must reconnect and
   converge. *)
let slow_replica_overflow ~rand ~specs ~n ~batches ~dir =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "slow-replica-overflow" in
  let rdir = base ^ "-replica" in
  rm_rf rdir;
  let lcfg = { (Repl.default_leader_config ()) with Repl.send_capacity = 4 } in
  let _store, svc, ld = start_leader ~lcfg ~specs ~g0 ~base () in
  let port = Repl.leader_port ld in
  let r = start_replica ~cfg:(rcfg ~seed:(7 * n) ()) ~dir:rdir ~port () in
  wait_until ~what:"replica attach" (fun () -> Repl.connected r);
  let cl = spawn_clients (Repl.replica_service r) ~seed:(13 * n) ~n ~count:2 in
  (* throttle: one frame per 0.2 s against 0.05 s of patience means the
     first push into a full buffer declares overflow *)
  Atomic.set lcfg.Repl.sender_delay_s 0.2;
  Atomic.set lcfg.Repl.overflow_patience_s 0.05;
  let total = max batches 24 in
  let expected = Array.make (total + 1) g0 in
  feed svc rand expected ~from_:1 ~upto:total;
  wait_until ~timeout:30.0 ~what:"the overflow disconnect" (fun () ->
      match Repl.last_error r with
      | Some m -> contains m "overflow"
      | None -> false);
  Atomic.set lcfg.Repl.sender_delay_s 0.;
  Atomic.set lcfg.Repl.overflow_patience_s 5.0;
  wait_caught_up ~timeout:40.0 ~what:"catch-up after the overflow" r total;
  gate_seq ~what:"slow-replica-overflow" r total;
  if Repl.reconnects r < 1 then failwith "the overflowed replica never reconnected";
  join_clients cl;
  gate_replica ~what:"slow-replica-overflow" r expected.(total);
  let reconnects = Repl.reconnects r in
  ignore (Repl.stop_replica r);
  Repl.stop_leader ld;
  ignore (Service.stop svc);
  gate_byte_identical ~what:"slow-replica-overflow" base rdir;
  { o_queries = Atomic.get cl.cl_served;
    o_stale = Atomic.get cl.cl_stale;
    o_reconnects = reconnects;
    o_disconnects = 1 }

(* The replica is crash-killed mid-apply (no final snapshot), the
   leader keeps ingesting, and a restart from the same directory must
   recover its own WAL and resume the stream from the recovered
   sequence number. *)
let replica_restart_resume ~rand ~specs ~n ~batches ~dir =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "replica-restart-resume" in
  let rdir = base ^ "-replica" in
  rm_rf rdir;
  let _store, svc, ld = start_leader ~specs ~g0 ~base () in
  let port = Repl.leader_port ld in
  let expected = Array.make (batches + 1) g0 in
  let half = batches / 2 in
  feed svc rand expected ~from_:1 ~upto:half;
  let cfg = rcfg ~seed:(9 * n) () in
  Atomic.set cfg.Repl.apply_delay_s 0.01;
  let r = start_replica ~cfg ~dir:rdir ~port () in
  wait_until ~what:"some replica progress before the crash" (fun () ->
      Service.ingested_seq (Repl.replica_service r) >= 1);
  Repl.kill_replica r;
  let crashed_at = Service.ingested_seq (Repl.replica_service r) in
  if crashed_at > half then
    failwith (Printf.sprintf "crashed at seq %d past the leader's %d" crashed_at half);
  feed svc rand expected ~from_:(half + 1) ~upto:batches;
  let r2 = start_replica ~cfg:(rcfg ~seed:(10 * n) ()) ~dir:rdir ~port () in
  wait_caught_up ~what:"catch-up after the restart" r2 batches;
  gate_seq ~what:"replica-restart-resume" r2 batches;
  gate_replica ~what:"replica-restart-resume" r2 expected.(batches);
  let reconnects = Repl.reconnects r2 in
  ignore (Repl.stop_replica r2);
  Repl.stop_leader ld;
  ignore (Service.stop svc);
  gate_byte_identical ~what:"replica-restart-resume" base rdir;
  { o_queries = 0; o_stale = 0; o_reconnects = reconnects; o_disconnects = 0 }

(* The leader dies; the caught-up replica is promoted — epoch bumped
   and persisted — and the deposed leader, restarted with its stale
   epoch, must be refused when the promoted store tries to follow it. *)
let leader_kill_promote ~rand ~specs ~n ~batches ~dir =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "leader-kill-promote" in
  let rdir = base ^ "-replica" in
  rm_rf rdir;
  let _store, svc, ld = start_leader ~specs ~g0 ~base () in
  let port = Repl.leader_port ld in
  let expected = Array.make (batches + 1) g0 in
  feed svc rand expected ~from_:1 ~upto:batches;
  let r = start_replica ~cfg:(rcfg ~seed:(12 * n) ()) ~dir:rdir ~port () in
  wait_caught_up ~what:"replica catch-up before the leader dies" r batches;
  if Repl.lag r <> 0 then failwith "a caught-up replica reports non-zero lag";
  Service.kill svc;
  Repl.stop_leader ld;
  let epoch = Repl.promote r in
  if epoch <> 2 then failwith (Printf.sprintf "promoted to epoch %d, expected 2" epoch);
  if Repl.read_epoch ~dir:rdir <> 2 then failwith "the promoted epoch was not persisted";
  gate_seq ~what:"leader-kill-promote" r batches;
  gate_replica ~what:"leader-kill-promote" r expected.(batches);
  (* the deposed leader restarts from its own directory, still epoch 1 *)
  let deposed = base ^ "-deposed" in
  copy_dir base deposed;
  let dstore, dinfo = Store.recover ~policy:Wal.Always ~verify:false ~dir:deposed () in
  if dinfo.Store.last_seq <> batches then
    failwith
      (Printf.sprintf "deposed leader recovered to seq %d, expected %d"
         dinfo.Store.last_seq batches);
  let dsvc =
    Service.start
      { Service.default_config with readers = 1; batch_max = 1; watchdog_s = 0. }
      (Service.Durable dstore)
  in
  let dld =
    match Repl.lead ~service:dsvc ~store_dir:(Some deposed) ~host ~port:0 () with
    | Error m -> failwith ("deposed leader failed to restart: " ^ m)
    | Ok l -> l
  in
  if Repl.leader_epoch dld <> 1 then
    failwith "the deposed leader should still be at epoch 1";
  (* release the promoted store, then probe the fence with it *)
  ignore (Service.stop (Repl.replica_service r));
  (match
     Repl.follow
       ~config:(rcfg ~seed:(13 * n) ~max_retries:2 ())
       ~service_config:{ Service.default_config with readers = 1; watchdog_s = 0. }
       ~dir:rdir ~host ~port:(Repl.leader_port dld) ()
   with
  | Error m -> failwith ("fence probe failed to start: " ^ m)
  | Ok probe ->
      wait_until ~what:"the fence probe giving up" (fun () -> Repl.gave_up probe);
      (match Repl.last_error probe with
      | Some m when contains m "stale leader epoch" -> ()
      | Some m -> failwith ("fence rejected for the wrong reason: " ^ m)
      | None -> failwith "the fence probe recorded no error");
      ignore (Repl.stop_replica probe));
  Repl.stop_leader dld;
  ignore (Service.stop dsvc);
  gate_byte_identical ~what:"leader-kill-promote" deposed rdir;
  { o_queries = 0; o_stale = 0; o_reconnects = Repl.reconnects r; o_disconnects = 1 }

(* {1 The plan} *)

let run ?(specs = [ Repair.Gdy_k { k = 1 } ]) ?only ~seed ~n ~batches ~dir () =
  if batches < 4 then invalid_arg "Net_chaos.run: need at least 4 batches";
  (match only with
  | Some s when not (List.mem s names) ->
      invalid_arg
        (Printf.sprintf "Net_chaos.run: unknown scenario %s (known: %s)" s
           (String.concat ", " names))
  | _ -> ());
  mkdir_p dir;
  let rand = Rand.create seed in
  let scenarios = ref 0 in
  let queries = ref 0 and stale = ref 0 and reconn = ref 0 and disc = ref 0 in
  let failures = ref [] in
  let scenario name f =
    if only = None || only = Some name then begin
      incr scenarios;
      match f ~rand ~specs ~n ~batches ~dir with
      | o ->
          queries := !queries + o.o_queries;
          stale := !stale + o.o_stale;
          reconn := !reconn + o.o_reconnects;
          disc := !disc + o.o_disconnects
      | exception Failure reason -> failures := { scenario = name; reason } :: !failures
      | exception e ->
          failures := { scenario = name; reason = Printexc.to_string e } :: !failures
    end
  in
  scenario "partition-mid-stream" partition_mid_stream;
  scenario "torn-snapshot-ship" torn_snapshot_ship;
  scenario "slow-replica-overflow" slow_replica_overflow;
  scenario "replica-restart-resume" replica_restart_resume;
  scenario "leader-kill-promote" leader_kill_promote;
  { scenarios = !scenarios; queries_ok = !queries; stale_served = !stale;
    reconnects = !reconn; disconnects = !disc; failures = List.rev !failures }
