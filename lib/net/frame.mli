(** Length-prefixed, CRC-framed messages over a file descriptor — the
    wire unit of every [Rs_net] connection.

    One frame on the wire:

    {v
    u32  payload length   (little-endian, < 64 MiB)
    u32  CRC-32 over the payload
    ...  payload
    v}

    The checksum means a torn or bit-flipped frame is detected at the
    receiver instead of being parsed as garbage — the same contract the
    store's WAL records and snapshots already honor on disk, applied to
    the network. Payloads are opaque here; {!Repl} and the query
    protocol tag them with a leading byte.

    All reads and writes run against {e deadlines}: {!recv} and
    {!send} take an absolute number of seconds of patience and return
    [Error Timeout] instead of blocking a domain forever on a dead or
    glacial peer (implemented with [SO_RCVTIMEO]/[SO_SNDTIMEO], set
    per call). A peer that closes mid-frame yields [Error Closed];
    anything structurally wrong yields [Error (Corrupt reason)]. None
    of the entry points raise on I/O failure.

    Linking this module ignores [SIGPIPE] process-wide: a write to a
    socket the peer already severed must come back as [Error Closed],
    and the default signal disposition would kill the process before
    [EPIPE] could be observed. *)

type error =
  | Timeout  (** the deadline passed before a full frame moved *)
  | Closed  (** the peer closed (EOF or reset) *)
  | Corrupt of string  (** bad length, checksum mismatch *)

val error_to_string : error -> string

val max_payload : int
(** 64 MiB — a frame announcing more is [Corrupt], not an allocation. *)

val send : Unix.file_descr -> timeout_s:float -> string -> (unit, error) result
(** Write one frame, honoring the deadline across partial writes.
    Records [net/frames_out] and [net/bytes_out]. *)

val recv : Unix.file_descr -> timeout_s:float -> (string, error) result
(** Read one frame, verify its checksum, return the payload. A clean
    EOF {e between} frames is [Error Closed]; an EOF {e inside} one is
    [Error (Corrupt _)]. Records [net/frames_in] and [net/bytes_in]. *)
