(** Seeded network chaos: {!Rs_serve.Chaos} extended across the wire.

    Each scenario stands up a real leader (durable service + {!Repl}
    TCP front) and a real replica (shipped snapshot, WAL stream,
    its own store), keeps client reads flowing against the replica,
    injects one network failure, and gates the aftermath: the
    replica's state must equal a from-scratch
    {!Rs_dynamic.Repair.build} on its graph, pass
    {!Rs_core.Verify.is_remote_spanner} at the spec's [alpha_beta],
    and — where both ends survive — recover to a snapshot {e byte
    identical} to the leader's at the same sequence number.

    Scenarios:

    - [partition-mid-stream]: the leader↔replica link is severed (new
      connections refused, live ones dropped) while the leader keeps
      ingesting. The replica must keep serving what it has, then
      reconnect when the partition heals and resume from its own
      sequence number — no gap, no double-apply.
    - [torn-snapshot-ship]: a snapshot ship is cut mid-chunk, the
      partial corrupted on disk, and the ship retried. Resume must
      continue at the partial's offset, the CRC check must reject the
      corrupted file, and a clean retry must install and bootstrap a
      replica that catches up.
    - [slow-replica-overflow]: the per-follower send buffer is shrunk
      and the stream throttled until it overflows. The leader must
      disconnect that follower with an explicit reason (never buffer
      without bound); the unthrottled replica must reconnect and
      converge.
    - [replica-restart-resume]: the replica is crash-killed (no final
      snapshot), the leader keeps ingesting, and the replica restarts
      from its own directory — recovery replays its local WAL, the
      stream resumes from the recovered sequence number, and the
      final stores are byte-identical.
    - [leader-kill-promote]: the leader dies; the caught-up replica is
      promoted (epoch bumped and persisted). The promoted state must
      verify against a from-scratch build, and the deposed leader —
      restarted with its stale epoch — must be refused when the
      promoted store tries to follow it. *)

open Rs_dynamic

val names : string list

type failure = { scenario : string; reason : string }

type report = {
  scenarios : int;
  queries_ok : int;  (** replica-side client queries answered [Ok] *)
  stale_served : int;
  reconnects : int;  (** successful resume handshakes across all runs *)
  disconnects : int;  (** reasoned disconnects observed (overflow, fence) *)
  failures : failure list;
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val run :
  ?specs:Repair.spec list ->
  ?only:string ->
  seed:int ->
  n:int ->
  batches:int ->
  dir:string ->
  unit ->
  report
(** Same contract as {!Rs_serve.Chaos.run}: every scenario (or the one
    named by [?only]) under [dir], deterministic in [seed] up to
    scheduling. [?specs] defaults to [[Gdy_k {k = 1}]]. Raises
    [Invalid_argument] on an unknown [?only]. *)
