open Rs_obs

let c_accepts = Obs.counter "net/accepts"
let c_refused = Obs.counter "net/refused"
let g_connections = Obs.gauge "net/connections"
let live = Atomic.make 0

let conn_delta d =
  Obs.set_gauge g_connections (float_of_int (Atomic.fetch_and_add live d + d))

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %s" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_s with
      | None -> Error (Printf.sprintf "port is not an integer: %s" port_s)
      | Some p when p < 0 || p > 65535 ->
          Error (Printf.sprintf "port out of range: %d" p)
      | Some p -> Ok (host, p))

let resolve host port =
  try Ok (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with Failure _ -> (
    match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE SOCK_STREAM ] with
    | { ai_addr; _ } :: _ -> Ok ai_addr
    | [] | (exception _) -> Error (Printf.sprintf "cannot resolve host %s" host))

type conn = { fd : Unix.file_descr; dom : unit Domain.t }

type server = {
  listener : Unix.file_descr;
  bound_port : int;
  refuse : bool Atomic.t;
  stopping : bool Atomic.t;
  mu : Mutex.t;
  mutable conns : conn list;
  mutable accept_dom : unit Domain.t option;
}

let listen ~host ~port =
  match resolve host port with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.setsockopt fd SO_REUSEADDR true;
      match Unix.bind fd addr with
      | () ->
          Unix.listen fd 64;
          let bound_port =
            match Unix.getsockname fd with
            | ADDR_INET (_, p) -> p
            | ADDR_UNIX _ -> port
          in
          Ok
            {
              listener = fd;
              bound_port;
              refuse = Atomic.make false;
              stopping = Atomic.make false;
              mu = Mutex.create ();
              conns = [];
              accept_dom = None;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot bind %s:%d: %s" host port
               (Unix.error_message e)))

let port t = t.bound_port
let set_refuse t v = Atomic.set t.refuse v

let connections t =
  Mutex.lock t.mu;
  let n = List.length t.conns in
  Mutex.unlock t.mu;
  n

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let shutdown_quiet fd =
  try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let drop_connections t =
  Mutex.lock t.mu;
  let dropped = t.conns in
  Mutex.unlock t.mu;
  List.iter (fun c -> shutdown_quiet c.fd) dropped;
  List.length dropped

(* Handler domains unregister themselves so [conns] stays the live
   set; [stop] joins whatever remains after severing the sockets. *)
let serve t handler =
  let run_conn c () =
    Fun.protect
      ~finally:(fun () ->
        close_quiet c;
        conn_delta (-1);
        Mutex.lock t.mu;
        t.conns <- List.filter (fun x -> x.fd != c) t.conns;
        Mutex.unlock t.mu)
      (fun () -> try handler c with _ when Atomic.get t.stopping -> ())
  in
  let rec accept_loop () =
    match Unix.accept t.listener with
    | fd, _ ->
        if Atomic.get t.stopping then close_quiet fd
        else if Atomic.get t.refuse then begin
          Obs.incr c_refused;
          close_quiet fd
        end
        else begin
          Obs.incr c_accepts;
          conn_delta 1;
          (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
          Mutex.lock t.mu;
          let dom = Domain.spawn (run_conn fd) in
          t.conns <- { fd; dom } :: t.conns;
          Mutex.unlock t.mu
        end;
        accept_loop ()
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error (_, _, _) ->
        if not (Atomic.get t.stopping) then accept_loop ()
  in
  t.accept_dom <- Some (Domain.spawn accept_loop)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    shutdown_quiet t.listener;
    close_quiet t.listener;
    (match t.accept_dom with Some d -> Domain.join d | None -> ());
    let rec drain () =
      Mutex.lock t.mu;
      let conns = t.conns in
      Mutex.unlock t.mu;
      match conns with
      | [] -> ()
      | cs ->
          List.iter (fun c -> shutdown_quiet c.fd) cs;
          List.iter (fun c -> try Domain.join c.dom with _ -> ()) cs;
          drain ()
    in
    drain ()
  end

let connect ~host ~port ~timeout_s =
  match resolve host port with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      let fail fmt =
        Printf.ksprintf
          (fun m ->
            close_quiet fd;
            Error m)
          fmt
      in
      Unix.set_nonblock fd;
      match Unix.connect fd addr with
      | () ->
          Unix.clear_nonblock fd;
          (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
          Ok fd
      | exception Unix.Unix_error (EINPROGRESS, _, _) -> (
          match Unix.select [] [ fd ] [] timeout_s with
          | _, [ _ ], _ -> (
              match Unix.getsockopt_error fd with
              | None ->
                  Unix.clear_nonblock fd;
                  (try Unix.setsockopt fd TCP_NODELAY true
                   with Unix.Unix_error _ -> ());
                  Ok fd
              | Some e ->
                  fail "connect %s:%d: %s" host port (Unix.error_message e))
          | _ -> fail "connect %s:%d: timed out after %.1fs" host port timeout_s
          | exception Unix.Unix_error (e, _, _) ->
              fail "connect %s:%d: %s" host port (Unix.error_message e))
      | exception Unix.Unix_error (e, _, _) ->
          fail "connect %s:%d: %s" host port (Unix.error_message e))
