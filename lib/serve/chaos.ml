open Rs_graph
open Rs_dynamic
module Store = Rs_store.Store
module Wal = Rs_store.Wal
module Verify = Rs_core.Verify

let names =
  [ "kill-writer-mid-repair"; "torn-wal-restart"; "queue-saturation";
    "wedged-writer-failover" ]

type failure = { scenario : string; reason : string }

type report = {
  scenarios : int;
  queries_ok : int;
  stale_served : int;
  rejections : int;
  failovers : int;
  failures : failure list;
}

let ok r = r.scenarios > 0 && r.failures = []

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>chaos scenarios: %d (%d queries answered, %d stale-flagged, %d \
     rejections, %d failovers)"
    r.scenarios r.queries_ok r.stale_served r.rejections r.failovers;
  List.iter
    (fun f -> Format.fprintf fmt "@,FAIL %s: %s" f.scenario f.reason)
    r.failures;
  Format.fprintf fmt "@]"

(* {1 Filesystem scratchpads} — same flat-directory helpers as the
   crash harness *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let copy_dir src dst =
  rm_rf dst;
  mkdir_p dst;
  Array.iter
    (fun name ->
      let data = In_channel.with_open_bin (Filename.concat src name) In_channel.input_all in
      Out_channel.with_open_bin (Filename.concat dst name) (fun oc ->
          Out_channel.output_string oc data))
    (Sys.readdir src)

let truncate_file path len = Unix.truncate path len

(* {1 Random churn} — the crash harness's op mix *)

let random_op rand g =
  let n = Graph.n g in
  let m = Graph.m g in
  let pick () = Rand.int rand n in
  match Rand.int rand 100 with
  | r when r < 45 || m = 0 ->
      let rec go tries =
        let u = pick () and v = pick () in
        if u = v then go tries
        else if Graph.mem_edge g u v && tries > 0 then go (tries - 1)
        else Delta.Add_edge (u, v)
      in
      go 8
  | r when r < 80 ->
      let u, v = Graph.edge g (Rand.int rand m) in
      Delta.Remove_edge (u, v)
  | r when r < 90 -> Delta.Node_down (pick ())
  | _ ->
      let u = pick () in
      let links =
        List.init
          (1 + Rand.int rand 3)
          (fun _ ->
            let rec go () =
              let v = pick () in
              if v = u then go () else v
            in
            go ())
        |> List.sort_uniq compare
      in
      Delta.Node_up (u, links)

let random_delta rand g =
  let rec go tries =
    let ops = List.init (1 + Rand.int rand 3) (fun _ -> random_op rand g) in
    match Delta.effect g ops with
    | [], [] when tries > 0 -> go (tries - 1)
    | _ -> ops
  in
  go 16

(* {1 Gates} *)

let wait_until ?(timeout = 20.0) ~what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      failwith ("timed out waiting for " ^ what)
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let degraded svc =
  match (Service.status svc).Service.s_state with
  | Service.Degraded _ -> true
  | Service.Serving | Service.Rebuilding -> false

(* The recovery gate of the crash harness, applied to a live view: the
   surviving spanners must equal a from-scratch build on the surviving
   graph and honor their paper guarantee. *)
let verify_state ~what g spanners =
  List.iter
    (fun (spec, sp) ->
      if Edge_set.to_list sp <> Edge_set.to_list (Repair.build spec g) then
        failwith
          (Format.asprintf "%s: %a spanner diverges from a from-scratch build"
             what Repair.pp_spec spec);
      match Repair.alpha_beta spec with
      | Some (alpha, beta) ->
          if not (Verify.is_remote_spanner g sp ~alpha ~beta) then
            failwith
              (Format.asprintf "%s: %a spanner violates its (%.1f, %.1f) guarantee"
                 what Repair.pp_spec spec alpha beta)
      | None -> ())
    spanners

(* {1 Concurrent client load} — real reader traffic during every
   scenario; a [Bad_request] or a hung await is a harness failure *)

type clients = {
  cl_served : int Atomic.t;
  cl_stale : int Atomic.t;
  cl_soft : int Atomic.t;  (** timeouts and overload rejections — allowed *)
  cl_bad_m : Mutex.t;
  mutable cl_bad : string list;
  cl_stop : bool Atomic.t;
  mutable cl_domains : unit Domain.t array;
}

let spawn_clients svc ~seed ~n ~count =
  let cl =
    { cl_served = Atomic.make 0; cl_stale = Atomic.make 0; cl_soft = Atomic.make 0;
      cl_bad_m = Mutex.create (); cl_bad = []; cl_stop = Atomic.make false;
      cl_domains = [||] }
  in
  cl.cl_domains <-
    Array.init count (fun i ->
        Domain.spawn (fun () ->
            let rand = Rand.create (seed + (7919 * (i + 1))) in
            while not (Atomic.get cl.cl_stop) do
              let q =
                match Rand.int rand 4 with
                | 0 -> Service.Stats
                | 1 -> Service.Status
                | 2 -> Service.Route { src = Rand.int rand n; dst = Rand.int rand n }
                | _ -> Service.Advert (Rand.int rand n)
              in
              let r = Service.query ~deadline_s:2.0 svc q in
              (match r.Service.answer with
              | Ok _ ->
                  Atomic.incr cl.cl_served;
                  if r.Service.stale then Atomic.incr cl.cl_stale
              | Error (Service.Timeout | Service.Overloaded _) ->
                  Atomic.incr cl.cl_soft
              | Error (Service.Bad_request m) ->
                  Mutex.lock cl.cl_bad_m;
                  cl.cl_bad <- m :: cl.cl_bad;
                  Mutex.unlock cl.cl_bad_m);
              Unix.sleepf 0.001
            done));
  cl

let join_clients cl =
  Atomic.set cl.cl_stop true;
  Array.iter Domain.join cl.cl_domains;
  match cl.cl_bad with
  | [] -> ()
  | m :: _ ->
      failwith
        (Printf.sprintf "clients saw %d Bad_request responses (e.g. %s)"
           (List.length cl.cl_bad) m)

type outcome = { o_queries : int; o_stale : int; o_rejected : int; o_failovers : int }

let outcome_of cl (st : Service.status) =
  { o_queries = Atomic.get cl.cl_served; o_stale = Atomic.get cl.cl_stale;
    o_rejected = st.Service.s_rejected; o_failovers = st.Service.s_failovers }

(* {1 Scenarios} *)

(* The writer dies after the WAL append, before repair and
   publication. Readers must keep answering from the last view;
   recovery from a directory copy must land exactly on the crash
   sequence number and verify. *)
let kill_writer_mid_repair ~rand ~specs ~n ~batches ~dir =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "kill-writer-mid-repair" in
  rm_rf base;
  let store = Store.create ~policy:Wal.Always ~segment_bytes:512 ~dir:base ~specs g0 in
  let crash_at = 1 + (batches / 2) in
  let crashed = Atomic.make false in
  let hook seq delta =
    if seq >= crash_at && not (Atomic.get crashed) then begin
      Atomic.set crashed true;
      (* the delta reached the log; the repair never ran *)
      ignore (Store.append ~repair:false store delta);
      failwith "chaos: writer killed mid-repair"
    end
  in
  let cfg =
    { Service.default_config with
      readers = 2; batch_max = 1; watchdog_s = 0.; before_apply = Some hook }
  in
  let svc = Service.start cfg (Service.Durable store) in
  let cl = spawn_clients svc ~seed:(17 * n) ~n ~count:2 in
  let expected = Array.make (batches + 1) g0 in
  (try
     for i = 1 to batches do
       let d = random_delta rand expected.(i - 1) in
       expected.(i) <- Delta.apply expected.(i - 1) d;
       (match Service.offer svc d with Ok () -> () | Error _ -> raise Exit);
       wait_until ~what:"delta ingest (or writer death)" (fun () ->
           Service.ingested_seq svc >= i || degraded svc);
       if degraded svc then raise Exit
     done
   with Exit -> ());
  if not (Atomic.get crashed) then failwith "the kill hook never fired";
  wait_until ~what:"degraded state after writer death" (fun () -> degraded svc);
  (match (Service.query ~deadline_s:2.0 svc Service.Stats).Service.answer with
  | Ok _ -> ()
  | Error _ -> failwith "degraded service stopped answering reads");
  (match Service.offer svc [ Delta.Add_edge (0, 1) ] with
  | Error _ -> ()
  | Ok () -> failwith "degraded service accepted a delta it can never apply");
  join_clients cl;
  Service.kill svc;
  let copy = base ^ "-recover" in
  copy_dir base copy;
  let st2, info = Store.recover ~policy:Wal.Always ~verify:true ~dir:copy () in
  if info.Store.last_seq <> crash_at then
    failwith
      (Printf.sprintf "recovered to seq %d, the crash landed at %d"
         info.Store.last_seq crash_at);
  if not (Graph.equal (Store.graph st2) expected.(crash_at)) then
    failwith "recovered topology diverges from the reference";
  (* the recovered store must serve and ingest again *)
  let svc2 =
    Service.start
      { Service.default_config with readers = 1; batch_max = 1; watchdog_s = 0. }
      (Service.Durable st2)
  in
  let d = random_delta rand expected.(crash_at) in
  (match Service.offer svc2 d with
  | Ok () -> ()
  | Error e -> failwith ("restarted service rejected a delta: " ^ e));
  wait_until ~what:"post-recovery ingest" (fun () ->
      Service.ingested_seq svc2 >= crash_at + 1);
  wait_until ~what:"post-recovery publication" (fun () ->
      Service.view_seq svc2 = Service.ingested_seq svc2);
  let g_fin, spanners = Service.peek svc2 in
  verify_state ~what:"kill-writer-mid-repair" g_fin spanners;
  let st = Service.stop svc2 in
  outcome_of cl st

(* SIGKILL without a clean close, then a torn WAL tail: recovery keeps
   the verified prefix; re-offering the lost delta converges back to
   the reference topology. *)
let torn_wal_restart ~rand ~specs ~n ~batches ~dir =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let base = Filename.concat dir "torn-wal-restart" in
  rm_rf base;
  let store = Store.create ~policy:Wal.Always ~segment_bytes:512 ~dir:base ~specs g0 in
  let cfg =
    { Service.default_config with readers = 2; batch_max = 1; watchdog_s = 0. }
  in
  let svc = Service.start cfg (Service.Durable store) in
  let cl = spawn_clients svc ~seed:(29 * n) ~n ~count:2 in
  let expected = Array.make (batches + 1) g0 in
  let deltas = Array.make (batches + 1) [] in
  for i = 1 to batches do
    let d = random_delta rand expected.(i - 1) in
    deltas.(i) <- d;
    expected.(i) <- Delta.apply expected.(i - 1) d;
    (match Service.offer svc d with
    | Ok () -> ()
    | Error e -> failwith ("offer rejected: " ^ e));
    wait_until ~what:"delta ingest" (fun () -> Service.ingested_seq svc >= i)
  done;
  join_clients cl;
  Service.kill svc;
  (* Wal.Always means every record reached the kernel before the kill *)
  let copy = base ^ "-recover" in
  copy_dir base copy;
  let scan = Wal.scan_dir ~dir:copy ~after_seq:0 in
  (match scan.Wal.truncation with
  | Some tr ->
      failwith (Format.asprintf "pristine WAL already damaged: %a" Wal.pp_truncation tr)
  | None -> ());
  let last =
    match List.rev scan.Wal.records with
    | r :: _ -> r
    | [] -> failwith "pristine WAL holds no records"
  in
  if last.Wal.seq <> batches then
    failwith (Printf.sprintf "WAL tail is seq %d, expected %d" last.Wal.seq batches);
  (* tear the tail record mid-header *)
  truncate_file last.Wal.file (last.Wal.offset + 8);
  let st2, info = Store.recover ~policy:Wal.Always ~verify:true ~dir:copy () in
  if info.Store.truncated = None then failwith "recovery did not report the torn tail";
  if info.Store.last_seq <> batches - 1 then
    failwith
      (Printf.sprintf "recovered to seq %d, the verified prefix ends at %d"
         info.Store.last_seq (batches - 1));
  if not (Graph.equal (Store.graph st2) expected.(batches - 1)) then
    failwith "recovered topology diverges from the reference prefix";
  (* restart, re-offer the lost delta, converge to the reference *)
  let svc2 =
    Service.start
      { Service.default_config with readers = 1; batch_max = 1; watchdog_s = 0. }
      (Service.Durable st2)
  in
  (match Service.offer svc2 deltas.(batches) with
  | Ok () -> ()
  | Error e -> failwith ("restarted service rejected the lost delta: " ^ e));
  wait_until ~what:"re-offered delta" (fun () -> Service.ingested_seq svc2 >= batches);
  wait_until ~what:"post-restart publication" (fun () ->
      Service.view_seq svc2 = Service.ingested_seq svc2);
  let g_fin, spanners = Service.peek svc2 in
  if not (Graph.equal g_fin expected.(batches)) then
    failwith "restarted service did not converge back to the reference topology";
  verify_state ~what:"torn-wal-restart" g_fin spanners;
  let st = Service.stop svc2 in
  outcome_of cl st

(* A tiny ingest queue, a slowed writer and a forced-escalation repair
   config under a flood: overload must surface as explicit rejections
   and stale-flagged reads, never unbounded memory, and the drained
   state must verify. *)
let queue_saturation ~rand ~specs ~n ~batches:_ ~dir:_ =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let capacity = 4 in
  let cfg =
    { Service.default_config with
      readers = 2; ingest_capacity = capacity; batch_max = 2;
      repair_budget_s = 1e-6 (* every repair is over budget *);
      breaker_trips = 2; open_backlog = 4; watchdog_s = 0.;
      dirty_radius = Some 0 (* under-estimated locality: the gate trips *);
      before_apply = Some (fun _ _ -> Unix.sleepf 0.004) }
  in
  let svc = Service.start cfg (Service.Ephemeral { specs; g = g0 }) in
  let cl = spawn_clients svc ~seed:(43 * n) ~n ~count:2 in
  let floods = 300 in
  let accepted = ref 0 and rejected = ref 0 in
  for _ = 1 to floods do
    (* ops generated against g0 stay valid whatever the live graph is *)
    match Service.offer svc (random_delta rand g0) with
    | Ok () -> incr accepted
    | Error _ -> incr rejected
  done;
  if !rejected = 0 then failwith "the flood produced no rejections";
  if !accepted = 0 then failwith "the flood was entirely rejected";
  let depth = (Service.status svc).Service.s_queue in
  if depth > capacity then
    failwith (Printf.sprintf "queue depth %d exceeds capacity %d" depth capacity);
  (* the breaker's log-and-defer window is where stale reads live:
     catch one in the act *)
  let saw_stale = ref false in
  (try
     wait_until ~timeout:30.0 ~what:"a stale-flagged read" (fun () ->
         let r = Service.query ~deadline_s:2.0 svc Service.Stats in
         (match r.Service.answer with
         | Ok _ -> if r.Service.stale then saw_stale := true
         | Error _ -> ());
         !saw_stale
         || Service.ingested_seq svc = Service.view_seq svc
            && (Service.status svc).Service.s_queue = 0)
   with Failure _ -> ());
  wait_until ~timeout:60.0 ~what:"drain after the flood" (fun () ->
      (Service.status svc).Service.s_queue = 0
      && Service.ingested_seq svc = Service.view_seq svc);
  join_clients cl;
  let st = Service.stop svc in
  if not (!saw_stale || st.Service.s_stale_reads > 0 || Atomic.get cl.cl_stale > 0)
  then failwith "no stale-flagged read was observed under overload";
  let g_fin, spanners = Service.peek svc in
  verify_state ~what:"queue-saturation" g_fin spanners;
  let o = outcome_of cl st in
  { o with o_rejected = max o.o_rejected !rejected }

(* The writer blocks forever mid-batch: the watchdog must bump the
   epoch, fail over to a rebuilt writer, and the service must resume
   ingesting — ending verified, with exactly one failover. *)
let wedged_writer_failover ~rand ~specs ~n ~batches ~dir:_ =
  let g0 = Gen.random_connected rand n (4.0 /. float_of_int n) in
  let release = Atomic.make false in
  let wedged = Atomic.make false in
  let wedge_at = 1 + (batches / 2) in
  let hook seq _ =
    if seq >= wedge_at && not (Atomic.get wedged) then begin
      Atomic.set wedged true;
      (* wedge until the harness releases us; the epoch fence then
         makes every later action of this writer a no-op *)
      while not (Atomic.get release) do
        Unix.sleepf 0.002
      done
    end
  in
  let cfg =
    { Service.default_config with
      readers = 2; batch_max = 1; watchdog_s = 0.25; before_apply = Some hook }
  in
  let svc = Service.start cfg (Service.Ephemeral { specs; g = g0 }) in
  let cl = spawn_clients svc ~seed:(61 * n) ~n ~count:2 in
  for i = 1 to batches do
    let d = random_delta rand g0 in
    let pre = Service.ingested_seq svc in
    (match Service.offer svc d with
    | Ok () -> ()
    | Error e -> failwith ("offer rejected: " ^ e));
    if i = wedge_at then
      wait_until ~what:"watchdog failover" (fun () ->
          (Service.status svc).Service.s_failovers >= 1)
    else
      wait_until ~what:"delta ingest" (fun () -> Service.ingested_seq svc >= pre + 1)
  done;
  wait_until ~what:"post-failover publication" (fun () ->
      Service.view_seq svc = Service.ingested_seq svc);
  join_clients cl;
  let st = Service.stop svc in
  if st.Service.s_failovers <> 1 then
    failwith (Printf.sprintf "%d failovers recorded, expected exactly 1" st.Service.s_failovers);
  if st.Service.s_epoch <> 2 then
    failwith (Printf.sprintf "epoch %d after one failover, expected 2" st.Service.s_epoch);
  let g_fin, spanners = Service.peek svc in
  verify_state ~what:"wedged-writer-failover" g_fin spanners;
  Atomic.set release true;
  outcome_of cl st

(* {1 The plan} *)

let run ?(specs = [ Repair.Gdy_k { k = 1 }; Repair.Mis { r = 2 } ]) ?only ~seed ~n
    ~batches ~dir () =
  if batches < 4 then invalid_arg "Chaos.run: need at least 4 batches";
  (match only with
  | Some s when not (List.mem s names) ->
      invalid_arg
        (Printf.sprintf "Chaos.run: unknown scenario %s (known: %s)" s
           (String.concat ", " names))
  | _ -> ());
  mkdir_p dir;
  let rand = Rand.create seed in
  let scenarios = ref 0 in
  let queries = ref 0 and stale = ref 0 and rejected = ref 0 and failovers = ref 0 in
  let failures = ref [] in
  let scenario name f =
    if only = None || only = Some name then begin
      incr scenarios;
      match f ~rand ~specs ~n ~batches ~dir with
      | o ->
          queries := !queries + o.o_queries;
          stale := !stale + o.o_stale;
          rejected := !rejected + o.o_rejected;
          failovers := !failovers + o.o_failovers
      | exception Failure reason -> failures := { scenario = name; reason } :: !failures
      | exception e ->
          failures :=
            { scenario = name; reason = Printexc.to_string e } :: !failures
    end
  in
  scenario "kill-writer-mid-repair" kill_writer_mid_repair;
  scenario "torn-wal-restart" torn_wal_restart;
  scenario "queue-saturation" queue_saturation;
  scenario "wedged-writer-failover" wedged_writer_failover;
  { scenarios = !scenarios; queries_ok = !queries; stale_served = !stale;
    rejections = !rejected; failovers = !failovers; failures = List.rev !failures }
