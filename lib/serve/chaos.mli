(** Seeded service-level chaos: the {!Rs_store.Crash} idea applied to
    the {e running} service instead of a cold directory.

    Each scenario stands up a real {!Service} — writer, readers,
    watchdog — keeps concurrent client domains querying it throughout,
    injects one failure, and then gates the aftermath the same way the
    crash harness gates recovery: the surviving (or recovered) state
    must equal a from-scratch {!Rs_dynamic.Repair.build} on its graph
    and pass {!Rs_core.Verify.is_remote_spanner} at the spec's
    [alpha_beta]; reader domains must answer every query they are
    given (stale-flagged at worst, [Bad_request] never) and none may
    crash.

    Scenarios:

    - [kill-writer-mid-repair] (durable): the writer dies after the
      WAL append but before repair and publication. Readers keep
      serving the last view while the service reports [degraded];
      recovery from a copy of the directory must land exactly on the
      crash sequence number, verified.
    - [torn-wal-restart] (durable): the service is killed without a
      clean close, the WAL tail is torn mid-record, and recovery must
      keep the verified prefix; re-offering the lost delta through a
      restarted service must converge to the reference topology.
    - [queue-saturation] (ephemeral): a tiny ingest queue, a slowed
      writer and a forced-escalation repair config are flooded.
      Overload must show up as explicit rejections and stale-flagged
      reads — never unbounded memory — and the drained final state
      must verify.
    - [wedged-writer-failover] (ephemeral): the writer blocks forever
      mid-batch; the watchdog must bump the epoch, fail over to a
      rebuilt writer, and the service must resume ingesting, ending in
      a verified state with exactly one failover on record. *)

open Rs_dynamic

val names : string list
(** The scenario names above, in run order. *)

type failure = { scenario : string; reason : string }

type report = {
  scenarios : int;  (** scenarios run *)
  queries_ok : int;  (** client queries answered [Ok] across all runs *)
  stale_served : int;  (** of those, explicitly stale-flagged *)
  rejections : int;  (** deltas rejected with a reason (saturation) *)
  failovers : int;  (** watchdog failovers observed *)
  failures : failure list;  (** empty on success *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val run :
  ?specs:Repair.spec list ->
  ?only:string ->
  seed:int ->
  n:int ->
  batches:int ->
  dir:string ->
  unit ->
  report
(** [run ~seed ~n ~batches ~dir ()] drives every scenario (or the one
    named by [?only]) under [dir] — durable scenarios put their store
    in [dir/<scenario>], recovery copies in [dir/<scenario>-recover].
    [?specs] defaults to [[Gdy_k {k = 1}; Mis {r = 2}]], one star and
    one tree family. Deterministic in [seed] up to scheduling (the
    assertions are scheduling-independent; the client traffic counts
    are not). Raises [Invalid_argument] on an unknown [?only]. *)
