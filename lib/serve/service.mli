(** The resident spanner service: one writer domain folding topology
    deltas through {!Rs_dynamic.Repair}, N reader domains answering
    queries from immutable published views, and the failure machinery
    that keeps the two honest under load — bounded ingest with
    rejection, per-request deadlines, a repair circuit breaker, a
    writer watchdog, and a crash-safe durable lifecycle.

    {b Publication.} The writer owns all mutable spanner state. After
    each applied batch it builds a {!view} — graph, and per strategy
    the spanner plus derived read structures — and installs it with a
    single [Atomic.set]. {!Rs_dynamic.Repair.apply} replaces graph and
    spanner wholesale (see {!Rs_dynamic.Repair.publish}), so a view is
    frozen at its sequence number forever: readers never take a lock,
    never observe a torn state, and never block on repair. A reader
    answering from a view older than the last {e ingested} delta marks
    the response [stale] — the service degrades to explicitly-flagged
    stale reads under pressure, never to wrong or blocked ones.

    {b Overload.} Both queues are bounded ({!Bqueue}): a full ingest
    queue rejects deltas with a reason, a full request queue rejects
    queries with [Overloaded] — memory is [O(capacity)], and the
    client always learns why. Requests carry absolute deadlines;
    expired ones are answered [Timeout] without computing.

    {b Circuit breaker.} Repeated over-budget repairs or escalations
    to a full rebuild trip the breaker: the writer stops incremental
    repair and only logs deltas ([Store.append ~repair:false] — the
    graph and WAL advance, spanners lag), then folds the backlog with
    one batched rebuild and re-probes incremental mode. Readers serve
    the last good view, stale-flagged, throughout.

    {b Watchdog.} A monitor domain checks the writer's heartbeat. A
    wedged writer on an ephemeral backend is failed over: the epoch is
    bumped (the old writer's publications are dead on arrival — epoch
    is checked under the publication lock) and a replacement writer
    rebuilds from the last published view. On a durable backend
    failover would mean two writers racing one WAL, so the service
    instead degrades: ingest suspends, readers keep serving, health
    reports the reason — restart-and-recover is the repair path.

    All of it is observable: [service/*] counters and latency
    histograms in {!Rs_obs.Obs}, a one-line {!health} string for probe
    files, and a structured {!status} for the [status] query. *)

open Rs_graph
open Rs_dynamic

(** Where the authoritative state lives. [Ephemeral] keeps it in
    memory (watchdog failover allowed); [Durable] is WAL-backed — the
    writer goes through {!Rs_store.Store.append}, startup is
    {!Rs_store.Store.recover}, and {!stop} publishes a final
    snapshot. *)
type backend_spec =
  | Ephemeral of { specs : Repair.spec list; g : Graph.t }
  | Durable of Rs_store.Store.t

type config = {
  readers : int;  (** reader domains (>= 1) *)
  ingest_capacity : int;  (** bounded delta queue *)
  request_capacity : int;  (** bounded query queue *)
  batch_max : int;  (** deltas folded into one repair *)
  deadline_s : float;  (** default per-request deadline *)
  repair_budget_s : float;  (** per-batch repair wall budget *)
  breaker_trips : int;
      (** consecutive over-budget or [Full]-escalated repairs that
          open the breaker *)
  open_backlog : int;  (** deferred batches folded per rebuild when open *)
  watchdog_s : float;
      (** heartbeat staleness declaring the writer wedged; [0.] runs
          no watchdog domain *)
  health_every_s : float;  (** health-file refresh period *)
  health_file : string option;
  dirty_radius : int option;  (** forwarded to {!Repair.apply}; testing *)
  before_apply : (int -> Delta.t -> unit) option;
      (** chaos hook, called in the writer just before batch [seq] is
          applied — raising here simulates a writer crash mid-repair *)
}

val default_config : config
(** 2 readers, 256/256 queues, batches of 32, 1 s deadlines, 0.5 s
    repair budget, 3 trips, backlog 8, 5 s watchdog, no health file,
    no hooks. *)

type t

val start : config -> backend_spec -> t
(** Spawn the writer, the readers and (if configured) the watchdog.
    The first view is published before [start] returns — reads are
    servable immediately. *)

(** {1 Ingest} *)

val offer : t -> Delta.t -> (unit, string) result
(** Validate against the current view's vertex universe and enqueue
    for the writer. [Error reason] on a full queue, suspended ingest
    (wedged durable writer), shutdown, or an invalid delta — the
    caller always learns why, and memory never grows unboundedly. *)

(** {1 Queries} *)

type query =
  | Route of { src : int; dst : int }
      (** greedy forwarding over the strategy's advertised sub-graph
          (the paper's H_u semantics, {!Rs_routing.Link_state}) *)
  | Paths of { src : int; dst : int; k : int }
      (** [k] internally vertex-disjoint paths within the spanner *)
  | Advert of int  (** the node's advertised spanner links *)
  | Stats
  | Status

type answer =
  | Route_a of { path : int list option; shortest : int }
      (** delivered route, and the true [d_G] for stretch ([-1] when
          disconnected) *)
  | Paths_a of int list list option
  | Advert_a of int list
  | Stats_a of { n : int; m : int; spanner : int; advert : int; seq : int }
  | Status_a of status

and error =
  | Timeout  (** deadline passed before or during evaluation *)
  | Overloaded of string  (** rejected at the request queue *)
  | Bad_request of string

and response = {
  answer : (answer, error) result;
  seq : int;  (** sequence number of the view that answered; -1 if none *)
  stale : bool;
      (** the view lagged ingested deltas (breaker open, repair in
          flight, or wedged writer) — correct for [seq], not newest *)
  latency_ms : float;
}

and state = Serving | Rebuilding | Degraded of string

and status = {
  s_state : state;
  s_seq : int;  (** published view *)
  s_ingested : int;  (** last delta accepted into the log *)
  s_queue : int;  (** ingest queue depth *)
  s_breaker : string;  (** ["closed"] / ["open"] / ["half-open"] *)
  s_epoch : int;  (** bumped by every failover *)
  s_accepted : int;
  s_rejected : int;
  s_timeouts : int;
  s_stale_reads : int;
  s_failovers : int;
}

val query : ?strategy:int -> ?deadline_s:float -> t -> query -> response
(** Enqueue and await. [?strategy] indexes the backend's spec list
    (default 0); [?deadline_s] overrides the config default. Called
    from any domain except the service's own readers. *)

val status : t -> status
(** Lock-free snapshot, servable even with every queue full — this is
    what health probes rely on. *)

val health : t -> string
(** One [key=value] line, e.g.
    ["state=serving seq=12 ingested=12 queue=0 breaker=closed ..."].
    Written atomically (temp + rename) to [config.health_file] every
    [health_every_s] by the watchdog. *)

val view_seq : t -> int
val ingested_seq : t -> int

val idle : t -> bool
(** No accepted delta is awaiting the writer: the queue is empty,
    nothing is in flight between pop and publish, no rebuild is
    running, and the published view has caught the log. The correct
    drain predicate — polling [view_seq = ingested_seq] alone misses
    the window where a popped batch is applied but not yet acked. *)

val peek : t -> Graph.t * (Repair.spec * Edge_set.t) list
(** The published view's graph and per-strategy spanners — what a
    verification gate ({!Rs_core.Verify.is_remote_spanner}, comparison
    against {!Repair.build}) needs. Lock-free; the values are frozen
    (see {!Repair.publish}). *)

(** {1 Lifecycle} *)

val stop : t -> status
(** Graceful shutdown (the SIGTERM path): stop accepting, drain the
    ingest queue through the writer (folding any open-breaker backlog
    with a final rebuild), answer or time out queued requests, join
    every domain, and — durable backend — publish a final snapshot and
    close the store. Idempotent. *)

val kill : t -> unit
(** Crash simulation for the chaos harness: stop all domains {e now} —
    no drain, no final snapshot, no store close (the directory is left
    exactly as a SIGKILL would leave it, modulo the kernel's view of
    flushed bytes). Not for production use. *)
