open Rs_graph
open Rs_dynamic
open Rs_obs
module Store = Rs_store.Store
module Link_state = Rs_routing.Link_state

let c_queries = Obs.counter "service/queries"
let c_timeouts = Obs.counter "service/query_timeouts"
let c_stale = Obs.counter "service/stale_reads"
let c_rej_queries = Obs.counter "service/rejected_queries"
let c_accepted = Obs.counter "service/deltas_accepted"
let c_rej_deltas = Obs.counter "service/rejected_deltas"
let c_batches = Obs.counter "service/batches"
let c_trips = Obs.counter "service/breaker_trips"
let c_probes = Obs.counter "service/breaker_probes"
let c_rebuilds = Obs.counter "service/rebuilds"
let c_failovers = Obs.counter "service/failovers"
let c_crashes = Obs.counter "service/writer_crashes"
let c_wedges = Obs.counter "service/wedges"
let h_query_ms = Obs.histogram "service/query_latency_ms"
let h_repair_ms = Obs.histogram "service/repair_ms"
let h_batch = Obs.histogram "service/batch_size"
let g_view_seq = Obs.gauge "service/view_seq"
let g_ingested = Obs.gauge "service/ingested_seq"
let g_queue = Obs.gauge "service/queue_depth"

type backend_spec =
  | Ephemeral of { specs : Repair.spec list; g : Graph.t }
  | Durable of Store.t

type config = {
  readers : int;
  ingest_capacity : int;
  request_capacity : int;
  batch_max : int;
  deadline_s : float;
  repair_budget_s : float;
  breaker_trips : int;
  open_backlog : int;
  watchdog_s : float;
  health_every_s : float;
  health_file : string option;
  dirty_radius : int option;
  before_apply : (int -> Delta.t -> unit) option;
}

let default_config =
  { readers = 2; ingest_capacity = 256; request_capacity = 256; batch_max = 32;
    deadline_s = 1.0; repair_budget_s = 0.5; breaker_trips = 3; open_backlog = 8;
    watchdog_s = 5.0; health_every_s = 0.5; health_file = None; dirty_radius = None;
    before_apply = None }

(* {1 Backends} — the writer's private mutable state. The writer
   captures its backend at spawn; [t.backend] is re-pointed only by
   failover, so a superseded writer keeps mutating its own dead value
   and can never race the replacement. *)

type eph = {
  mutable e_seq : int;
  mutable e_g : Graph.t;
  mutable e_states : (Repair.spec * Repair.t) list;
  mutable e_stale : bool;
}

type backend = B_eph of eph | B_dur of Store.t

let b_seq = function B_eph e -> e.e_seq | B_dur s -> Store.seq s
let b_graph = function B_eph e -> e.e_g | B_dur s -> Store.graph s

let b_states = function
  | B_dur s -> Store.states s
  | B_eph e ->
      if e.e_stale then
        invalid_arg "Service: spanner states are stale (rebuild first)";
      e.e_states

(* Mirrors [Store.append]'s log-then-apply contract for the in-memory
   backend: quiescent deltas are free, [~repair:false] advances the
   graph only and marks the states stale. *)
let b_append ?dirty_radius ~repair b delta =
  match b with
  | B_dur s -> Store.append ~repair s delta
  | B_eph e -> (
      if repair && e.e_stale then
        invalid_arg "Service: spanner states are stale (rebuild first)";
      match Delta.effect e.e_g delta with
      | [], [] -> []
      | _ ->
          e.e_seq <- e.e_seq + 1;
          e.e_g <- Delta.apply e.e_g delta;
          if repair then
            List.map (fun (_, st) -> Repair.apply ?dirty_radius st delta) e.e_states
          else begin
            e.e_stale <- true;
            []
          end)

let b_rebuild = function
  | B_dur s -> Store.rebuild s
  | B_eph e ->
      e.e_states <- List.map (fun (spec, _) -> (spec, Repair.init spec e.e_g)) e.e_states;
      e.e_stale <- false

(* {1 Views} *)

type strategy_view = {
  sv_spec : Repair.spec;
  sv_spanner : Edge_set.t;
  sv_adj : int array array;
  sv_graph : Graph.t;  (* the spanner as a standalone graph *)
  sv_ls : Link_state.t;
}

type view = {
  v_seq : int;
  v_graph : Graph.t;
  v_strategies : strategy_view array;
}

let make_view b =
  let strategies =
    b_states b
    |> List.map (fun (spec, st) ->
           let g, sp = Repair.publish st in
           { sv_spec = spec; sv_spanner = sp; sv_adj = Edge_set.to_adjacency sp;
             sv_graph = Edge_set.to_graph sp; sv_ls = Link_state.make g sp })
    |> Array.of_list
  in
  { v_seq = b_seq b; v_graph = b_graph b; v_strategies = strategies }

(* {1 Queries} *)

type query =
  | Route of { src : int; dst : int }
  | Paths of { src : int; dst : int; k : int }
  | Advert of int
  | Stats
  | Status

type answer =
  | Route_a of { path : int list option; shortest : int }
  | Paths_a of int list list option
  | Advert_a of int list
  | Stats_a of { n : int; m : int; spanner : int; advert : int; seq : int }
  | Status_a of status

and error = Timeout | Overloaded of string | Bad_request of string

and response = {
  answer : (answer, error) result;
  seq : int;
  stale : bool;
  latency_ms : float;
}

and state = Serving | Rebuilding | Degraded of string

and status = {
  s_state : state;
  s_seq : int;
  s_ingested : int;
  s_queue : int;
  s_breaker : string;
  s_epoch : int;
  s_accepted : int;
  s_rejected : int;
  s_timeouts : int;
  s_stale_reads : int;
  s_failovers : int;
}

type pending = {
  p_query : query;
  p_strategy : int;
  p_deadline : float;  (* absolute, on Obs.now's clock *)
  p_start : float;
  p_m : Mutex.t;
  p_c : Condition.t;
  mutable p_resp : response option;
}

type t = {
  cfg : config;
  specs : Repair.spec list;
  mutable backend : backend;  (* status/failover only; writers use their captured copy *)
  view : view Atomic.t;
  ingested : int Atomic.t;
  epoch : int Atomic.t;
  heartbeat : float Atomic.t;
  pub_m : Mutex.t;  (* serializes view/ingested publication against epoch bumps *)
  ingest : Delta.t Bqueue.t;
  inflight : int Atomic.t;  (* deltas accepted but not yet applied+published *)
  requests : pending Bqueue.t;
  shutdown : bool Atomic.t;
  killed : bool Atomic.t;
  stopped : bool Atomic.t;
  suspended : string option Atomic.t;  (* Some reason = ingest refused *)
  rebuilding : bool Atomic.t;
  breaker_str : string Atomic.t;
  a_accepted : int Atomic.t;
  a_rejected : int Atomic.t;
  a_timeouts : int Atomic.t;
  a_stale : int Atomic.t;
  a_failovers : int Atomic.t;
  mutable writer : unit Domain.t option;
  mutable abandoned : unit Domain.t list;  (* superseded writers; never joined *)
  mutable readers : unit Domain.t array;
  mutable watchdog : unit Domain.t option;
}

let view_seq t = (Atomic.get t.view).v_seq
let ingested_seq t = Atomic.get t.ingested

(* [inflight] counts deltas from before their queue push until after
   the batch that carried them is applied and published, so [idle]
   cannot slip through the pop-to-publish window (the queue itself
   reads empty there). The correct drain predicate. *)
let idle t =
  Atomic.get t.inflight = 0
  && (not (Atomic.get t.rebuilding))
  && Atomic.get t.ingested = view_seq t

let peek t =
  let v = Atomic.get t.view in
  ( v.v_graph,
    Array.to_list v.v_strategies |> List.map (fun sv -> (sv.sv_spec, sv.sv_spanner)) )

let status t =
  let s_state =
    match Atomic.get t.suspended with
    | Some reason -> Degraded reason
    | None -> if Atomic.get t.rebuilding then Rebuilding else Serving
  in
  { s_state; s_seq = view_seq t; s_ingested = Atomic.get t.ingested;
    s_queue = Bqueue.length t.ingest; s_breaker = Atomic.get t.breaker_str;
    s_epoch = Atomic.get t.epoch; s_accepted = Atomic.get t.a_accepted;
    s_rejected = Atomic.get t.a_rejected; s_timeouts = Atomic.get t.a_timeouts;
    s_stale_reads = Atomic.get t.a_stale; s_failovers = Atomic.get t.a_failovers }

let state_name = function
  | Serving -> "serving"
  | Rebuilding -> "rebuilding"
  | Degraded _ -> "degraded"

let health t =
  let s = status t in
  let base =
    Printf.sprintf
      "state=%s seq=%d ingested=%d queue=%d breaker=%s epoch=%d accepted=%d \
       rejected=%d timeouts=%d stale_reads=%d failovers=%d"
      (state_name s.s_state) s.s_seq s.s_ingested s.s_queue s.s_breaker s.s_epoch
      s.s_accepted s.s_rejected s.s_timeouts s.s_stale_reads s.s_failovers
  in
  match s.s_state with
  | Degraded reason -> Printf.sprintf "%s reason=%S" base reason
  | Serving | Rebuilding -> base

let write_health t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (health t);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

(* {1 Ingest} *)

let offer t delta =
  let reject reason =
    Obs.incr c_rej_deltas;
    Atomic.incr t.a_rejected;
    Error reason
  in
  if Atomic.get t.shutdown then reject "service is shutting down"
  else
    match Atomic.get t.suspended with
    | Some reason -> reject ("ingest suspended: " ^ reason)
    | None -> (
        (* the vertex universe is fixed, so range/self-loop validity
           against the published view holds for the writer's graph too *)
        match Delta.effect (Atomic.get t.view).v_graph delta with
        | exception Invalid_argument m -> reject ("invalid delta: " ^ m)
        | _ -> (
            (* counted before the push so [idle] can never observe the
               delta as neither outstanding nor applied *)
            Atomic.incr t.inflight;
            match Bqueue.push t.ingest delta with
            | Ok () ->
                Obs.incr c_accepted;
                Atomic.incr t.a_accepted;
                Ok ()
            | Error r ->
                Atomic.decr t.inflight;
                reject (Bqueue.reject_to_string r)))

(* {1 Reader evaluation} *)

let paths_to_lists ps = List.map (fun (p : Path.t) -> (p :> int list)) ps

let eval t v p =
  let n = Graph.n v.v_graph in
  let check_node what u =
    if u < 0 || u >= n then
      failwith (Printf.sprintf "%s %d out of range [0, %d)" what u n)
  in
  let strategy () =
    if p.p_strategy < 0 || p.p_strategy >= Array.length v.v_strategies then
      failwith
        (Printf.sprintf "strategy %d out of range (%d configured)" p.p_strategy
           (Array.length v.v_strategies));
    v.v_strategies.(p.p_strategy)
  in
  match p.p_query with
  | Status -> Status_a (status t)
  | Stats ->
      let sv = strategy () in
      Stats_a
        { n; m = Graph.m v.v_graph; spanner = Edge_set.cardinal sv.sv_spanner;
          advert = Link_state.advertisement_size sv.sv_ls; seq = v.v_seq }
  | Advert u ->
      check_node "node" u;
      let sv = strategy () in
      Advert_a (Array.to_list sv.sv_adj.(u))
  | Route { src; dst } ->
      check_node "src" src;
      check_node "dst" dst;
      let sv = strategy () in
      let path =
        Option.map
          (fun (p : Path.t) -> (p :> int list))
          (Link_state.route sv.sv_ls ~src ~dst)
      in
      Route_a { path; shortest = Bfs.dist_pair v.v_graph src dst }
  | Paths { src; dst; k } ->
      check_node "src" src;
      check_node "dst" dst;
      if k < 1 then failwith "k must be >= 1";
      if src = dst then failwith "paths: src = dst";
      let sv = strategy () in
      Paths_a (Option.map paths_to_lists (Disjoint_paths.min_sum_paths sv.sv_graph ~k src dst))

let respond p resp =
  Mutex.lock p.p_m;
  p.p_resp <- Some resp;
  Condition.signal p.p_c;
  Mutex.unlock p.p_m

let await p =
  Mutex.lock p.p_m;
  let rec wait () =
    match p.p_resp with
    | Some r -> r
    | None ->
        Condition.wait p.p_c p.p_m;
        wait ()
  in
  let r = wait () in
  Mutex.unlock p.p_m;
  r

let serve_one t p =
  Obs.incr c_queries;
  let timeout now =
    Obs.incr c_timeouts;
    Atomic.incr t.a_timeouts;
    { answer = Error Timeout; seq = -1; stale = false;
      latency_ms = (now -. p.p_start) *. 1000. }
  in
  let now = Obs.now () in
  let resp =
    if now > p.p_deadline then timeout now
    else begin
      let v = Atomic.get t.view in
      let answer =
        match eval t v p with
        | a -> Ok a
        | exception (Failure m | Invalid_argument m) -> Error (Bad_request m)
        (* a reader domain must survive anything a query throws at it *)
        | exception e -> Error (Bad_request (Printexc.to_string e))
      in
      let fin = Obs.now () in
      if fin > p.p_deadline then timeout fin
      else begin
        let stale = Atomic.get t.ingested > v.v_seq in
        if stale then begin
          Obs.incr c_stale;
          Atomic.incr t.a_stale
        end;
        { answer; seq = v.v_seq; stale; latency_ms = (fin -. p.p_start) *. 1000. }
      end
    end
  in
  Obs.observe h_query_ms resp.latency_ms;
  respond p resp

let reader_loop t () =
  let rec loop () =
    match Bqueue.pop_batch t.requests ~max:8 ~timeout_s:0.05 with
    | [] -> if not (Bqueue.is_closed t.requests) then loop ()
    | batch ->
        List.iter (serve_one t) batch;
        loop ()
  in
  loop ()

let query ?(strategy = 0) ?deadline_s t q =
  let deadline_s = Option.value deadline_s ~default:t.cfg.deadline_s in
  if deadline_s <= 0. then invalid_arg "Service.query: deadline must be positive";
  let start = Obs.now () in
  let p =
    { p_query = q; p_strategy = strategy; p_deadline = start +. deadline_s;
      p_start = start; p_m = Mutex.create (); p_c = Condition.create ();
      p_resp = None }
  in
  match Bqueue.push t.requests p with
  | Ok () -> await p
  | Error r ->
      Obs.incr c_rej_queries;
      { answer = Error (Overloaded (Bqueue.reject_to_string r)); seq = -1;
        stale = false; latency_ms = (Obs.now () -. start) *. 1000. }

(* {1 Writer} *)

type breaker = Closed_b | Open_b | Half_open_b

let breaker_name = function
  | Closed_b -> "closed"
  | Open_b -> "open"
  | Half_open_b -> "half-open"

(* View and ingested-seq publication is epoch-fenced under [pub_m]: the
   watchdog bumps the epoch under the same lock before spawning a
   replacement writer, so a wedged writer that wakes later finds its
   epoch dead and its publication is a no-op. *)
let publish t my_epoch b =
  Mutex.lock t.pub_m;
  if Atomic.get t.epoch = my_epoch then begin
    let v = make_view b in
    Atomic.set t.view v;
    Obs.set_gauge g_view_seq (float_of_int v.v_seq)
  end;
  Mutex.unlock t.pub_m

let ack t my_epoch b =
  Mutex.lock t.pub_m;
  if Atomic.get t.epoch = my_epoch then begin
    Atomic.set t.ingested (b_seq b);
    Obs.set_gauge g_ingested (float_of_int (b_seq b))
  end;
  Mutex.unlock t.pub_m

let do_rebuild t my_epoch b =
  Atomic.set t.rebuilding true;
  Obs.incr c_rebuilds;
  Obs.with_span "service/rebuild" (fun () -> b_rebuild b);
  publish t my_epoch b;
  Atomic.set t.rebuilding false

let rec writer_loop t my_epoch b breaker bad deferred =
  if Atomic.get t.killed || Atomic.get t.epoch <> my_epoch then ()
  else begin
    Atomic.set t.heartbeat (Obs.now ());
    Atomic.set t.breaker_str (breaker_name breaker);
    Obs.set_gauge g_queue (float_of_int (Bqueue.length t.ingest));
    match Bqueue.pop_batch t.ingest ~max:t.cfg.batch_max ~timeout_s:0.05 with
    | [] ->
        if deferred > 0 then begin
          (* idle (or draining): fold the open-breaker backlog now *)
          do_rebuild t my_epoch b;
          if not (Atomic.get t.shutdown) then
            writer_loop t my_epoch b Half_open_b 0 0
        end
        else if not (Atomic.get t.shutdown) then
          writer_loop t my_epoch b breaker bad deferred
    | batch -> (
        let batch_len = List.length batch in
        let batch_done () =
          ignore (Atomic.fetch_and_add t.inflight (-batch_len))
        in
        Obs.incr c_batches;
        Obs.observe h_batch (float_of_int (List.length batch));
        let delta = List.concat batch in
        (match t.cfg.before_apply with
        | Some hook -> hook (b_seq b + 1) delta
        | None -> ());
        match breaker with
        | Open_b ->
            (* log-and-defer: durability and the graph advance, the
               spanners lag until one batched rebuild *)
            ignore (b_append ~repair:false b delta);
            ack t my_epoch b;
            batch_done ();
            let deferred = deferred + 1 in
            if deferred >= t.cfg.open_backlog then begin
              do_rebuild t my_epoch b;
              writer_loop t my_epoch b Half_open_b 0 0
            end
            else writer_loop t my_epoch b Open_b bad deferred
        | Closed_b | Half_open_b -> (
            let t0 = Obs.now () in
            let outcomes = b_append ?dirty_radius:t.cfg.dirty_radius ~repair:true b delta in
            let dt = Obs.now () -. t0 in
            Obs.observe h_repair_ms (dt *. 1000.);
            ack t my_epoch b;
            publish t my_epoch b;
            batch_done ();
            let escalated_full =
              List.exists (fun (o : Repair.outcome) -> o.Repair.level = Repair.Full) outcomes
            in
            let bad_one = dt > t.cfg.repair_budget_s || escalated_full in
            match (breaker, bad_one) with
            | Half_open_b, false ->
                Obs.incr c_probes;
                writer_loop t my_epoch b Closed_b 0 0
            | Half_open_b, true ->
                Obs.incr c_trips;
                writer_loop t my_epoch b Open_b 0 0
            | Closed_b, true ->
                let bad = bad + 1 in
                if bad >= t.cfg.breaker_trips then begin
                  Obs.incr c_trips;
                  writer_loop t my_epoch b Open_b 0 0
                end
                else writer_loop t my_epoch b Closed_b bad 0
            | Closed_b, false -> writer_loop t my_epoch b Closed_b 0 0
            | Open_b, _ -> assert false))
  end

let writer_domain t my_epoch b () =
  match writer_loop t my_epoch b Closed_b 0 0 with
  | () -> ()
  | exception e ->
      Obs.incr c_crashes;
      (* a superseded writer's death must not re-suspend the epoch
         that replaced it *)
      Mutex.lock t.pub_m;
      if Atomic.get t.epoch = my_epoch then
        Atomic.set t.suspended
          (Some ("writer crashed: " ^ Printexc.to_string e));
      Mutex.unlock t.pub_m

(* {1 Watchdog} *)

let handle_wedge t =
  match t.backend with
  | B_dur _ ->
      (* failing over here would put two writers on one WAL; degrade
         instead — readers keep the last good view, restart recovers *)
      if Atomic.get t.suspended = None then begin
        Obs.incr c_wedges;
        Atomic.set t.suspended
          (Some "writer wedged; ingest suspended (restart and recover)")
      end
  | B_eph _ ->
      Obs.incr c_wedges;
      Mutex.lock t.pub_m;
      Atomic.incr t.epoch;
      let epoch = Atomic.get t.epoch in
      Mutex.unlock t.pub_m;
      Obs.incr c_failovers;
      Atomic.incr t.a_failovers;
      (* authoritative state = the last published view; deltas the
         wedged writer absorbed but never published are lost, exactly
         as a crash would lose them *)
      let v = Atomic.get t.view in
      let e =
        { e_seq = v.v_seq; e_g = v.v_graph; e_stale = false;
          e_states = List.map (fun spec -> (spec, Repair.init spec v.v_graph)) t.specs }
      in
      let b = B_eph e in
      t.backend <- b;
      Atomic.set t.ingested v.v_seq;
      (* the wedged writer's popped batch dies with it (crash
         semantics); deltas still queued will be processed *)
      Atomic.set t.inflight (Bqueue.length t.ingest);
      Atomic.set t.suspended None;
      Atomic.set t.heartbeat (Obs.now ());
      (match t.writer with
      | Some d -> t.abandoned <- d :: t.abandoned
      | None -> ());
      t.writer <- Some (Domain.spawn (writer_domain t epoch b))

let watchdog_domain t () =
  let last_health = ref 0. in
  let rec loop () =
    if not (Atomic.get t.shutdown) then begin
      Unix.sleepf 0.05;
      let now = Obs.now () in
      if
        t.cfg.watchdog_s > 0.
        && now -. Atomic.get t.heartbeat > t.cfg.watchdog_s
        && not (Atomic.get t.shutdown)
      then handle_wedge t;
      (match t.cfg.health_file with
      | Some path when now -. !last_health >= t.cfg.health_every_s ->
          last_health := now;
          (try write_health t path with Sys_error _ -> ())
      | _ -> ());
      loop ()
    end
  in
  loop ()

(* {1 Lifecycle} *)

let start (cfg : config) spec =
  if cfg.readers < 1 then invalid_arg "Service.start: readers must be >= 1";
  if cfg.ingest_capacity < 1 || cfg.request_capacity < 1 then
    invalid_arg "Service.start: queue capacities must be >= 1";
  if cfg.batch_max < 1 then invalid_arg "Service.start: batch_max must be >= 1";
  if cfg.deadline_s <= 0. then invalid_arg "Service.start: deadline must be positive";
  if cfg.repair_budget_s <= 0. then
    invalid_arg "Service.start: repair budget must be positive";
  if cfg.breaker_trips < 1 || cfg.open_backlog < 1 then
    invalid_arg "Service.start: breaker thresholds must be >= 1";
  if cfg.health_every_s <= 0. then
    invalid_arg "Service.start: health period must be positive";
  let backend =
    match spec with
    | Ephemeral { specs; g } ->
        if specs = [] then invalid_arg "Service.start: at least one spanner spec";
        B_eph
          { e_seq = 0; e_g = g; e_stale = false;
            e_states = List.map (fun s -> (s, Repair.init s g)) specs }
    | Durable store ->
        if Store.states_stale store then Store.rebuild store;
        B_dur store
  in
  let specs = List.map fst (b_states backend) in
  let v = make_view backend in
  let t =
    { cfg; specs; backend; view = Atomic.make v; ingested = Atomic.make v.v_seq;
      inflight = Atomic.make 0;
      epoch = Atomic.make 1; heartbeat = Atomic.make (Obs.now ());
      pub_m = Mutex.create (); ingest = Bqueue.create ~capacity:cfg.ingest_capacity;
      requests = Bqueue.create ~capacity:cfg.request_capacity;
      shutdown = Atomic.make false; killed = Atomic.make false;
      stopped = Atomic.make false; suspended = Atomic.make None;
      rebuilding = Atomic.make false; breaker_str = Atomic.make "closed";
      a_accepted = Atomic.make 0; a_rejected = Atomic.make 0;
      a_timeouts = Atomic.make 0; a_stale = Atomic.make 0;
      a_failovers = Atomic.make 0; writer = None; abandoned = []; readers = [||];
      watchdog = None }
  in
  Obs.set_gauge g_view_seq (float_of_int v.v_seq);
  Obs.set_gauge g_ingested (float_of_int v.v_seq);
  (match cfg.health_file with
  | Some path -> ( try write_health t path with Sys_error _ -> ())
  | None -> ());
  t.writer <- Some (Domain.spawn (writer_domain t 1 backend));
  t.readers <- Array.init cfg.readers (fun _ -> Domain.spawn (reader_loop t));
  if cfg.watchdog_s > 0. || cfg.health_file <> None then
    t.watchdog <- Some (Domain.spawn (watchdog_domain t));
  t

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.shutdown true;
    Bqueue.close t.ingest;
    (match t.writer with Some d -> Domain.join d | None -> ());
    Bqueue.close t.requests;
    Array.iter Domain.join t.readers;
    (match t.watchdog with Some d -> Domain.join d | None -> ());
    if not (Atomic.get t.killed) then (
      match t.backend with
      | B_dur store ->
          if Store.states_stale store then Store.rebuild store;
          ignore (Store.write_snapshot store);
          Store.close store
      | B_eph _ -> ());
    match t.cfg.health_file with
    | Some path -> ( try write_health t path with Sys_error _ -> ())
    | None -> ()
  end;
  status t

let kill t =
  Atomic.set t.killed true;
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.shutdown true;
    Bqueue.close t.ingest;
    Bqueue.close t.requests;
    (* readers drain and answer what's queued; the writer is abandoned
       wherever it is — no drain, no final snapshot, no store close *)
    Array.iter Domain.join t.readers;
    match t.watchdog with Some d -> Domain.join d | None -> ()
  end
