type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  m : Mutex.t;
  not_full : Condition.t;
  mutable closed : bool;
}

type reject = Full of int | Closed

let reject_to_string = function
  | Full cap -> Printf.sprintf "queue full (capacity %d)" cap
  | Closed -> "queue closed (shutting down)"

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { capacity; q = Queue.create (); m = Mutex.create ();
    not_full = Condition.create (); closed = false }

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | v ->
      Mutex.unlock t.m;
      v
  | exception e ->
      Mutex.unlock t.m;
      raise e

let push t x =
  with_lock t @@ fun () ->
  if t.closed then Error Closed
  else if Queue.length t.q >= t.capacity then Error (Full t.capacity)
  else begin
    Queue.push x t.q;
    Ok ()
  end

(* Block while full; close must wake every waiter with [Closed] — a
   producer blocked on a queue nobody will drain again cannot be left
   hanging. [Condition.wait] can wake spuriously, hence the loop. *)
let push_wait t x =
  with_lock t @@ fun () ->
  let rec wait () =
    if t.closed then Error Closed
    else if Queue.length t.q < t.capacity then begin
      Queue.push x t.q;
      Ok ()
    end
    else begin
      Condition.wait t.not_full t.m;
      wait ()
    end
  in
  wait ()

let length t = with_lock t @@ fun () -> Queue.length t.q
let is_closed t = with_lock t @@ fun () -> t.closed

let close t =
  with_lock t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.not_full

let take_upto t max =
  with_lock t @@ fun () ->
  let rec go acc k =
    if k = 0 || Queue.is_empty t.q then List.rev acc
    else go (Queue.pop t.q :: acc) (k - 1)
  in
  let batch = go [] max in
  if batch <> [] then Condition.broadcast t.not_full;
  batch

(* Timed waiting is a short poll loop rather than a condition variable:
   the stdlib [Condition] has no timed wait, and every consumer needs a
   bounded sleep anyway — the writer to refresh its watchdog heartbeat,
   readers to notice shutdown. 1 ms granularity is far below any
   request deadline or repair budget served here. *)
let pop_batch t ~max ~timeout_s =
  if max < 1 then invalid_arg "Bqueue.pop_batch: max must be >= 1";
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    match take_upto t max with
    | _ :: _ as batch -> batch
    | [] ->
        if is_closed t || Unix.gettimeofday () >= deadline then []
        else begin
          Unix.sleepf 0.001;
          wait ()
        end
  in
  wait ()
