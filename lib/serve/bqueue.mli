(** Bounded multi-producer multi-consumer queue — the service's
    backpressure primitive.

    Both service queues (delta ingest, read requests) are instances of
    this: a fixed capacity chosen at creation, a {e non-blocking}
    {!push} that rejects with a reason instead of growing without
    bound, and a timed {!pop_batch} consumers poll so they can also
    notice shutdown and update liveness heartbeats. Rejection at the
    boundary is the overload-protection contract: memory held by a
    queue is [capacity * element], full stop. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

type reject =
  | Full of int  (** at capacity (the payload); caller should shed *)
  | Closed  (** draining for shutdown; no new work accepted *)

val reject_to_string : reject -> string
(** One-line reason, e.g. ["queue full (capacity 64)"]. *)

val push : 'a t -> 'a -> (unit, reject) result
(** Never blocks and never grows the queue past capacity. *)

val push_wait : 'a t -> 'a -> (unit, reject) result
(** Block while the queue is full instead of rejecting — the
    backpressure flavor, used where the producer {e should} stall (a
    replication receiver throttling its TCP peer) rather than shed.
    {!close} wakes every blocked producer with [Error Closed]; this
    never returns [Error (Full _)]. *)

val pop_batch : 'a t -> max:int -> timeout_s:float -> 'a list
(** Dequeue up to [max] elements in FIFO order, waiting up to
    [timeout_s] for the first to arrive. Returns [[]] on timeout or
    when the queue is closed and drained — consumers distinguish the
    two via {!is_closed}/{!length}. *)

val length : 'a t -> int
val is_closed : 'a t -> bool

val close : 'a t -> unit
(** Reject all future pushes. Elements already queued remain poppable
    (shutdown drains; it does not discard). *)
