open Rs_graph

type t = { g : Graph.t; h : Edge_set.t; h_adj : int array array }

let make g h =
  if not (Graph.equal (Edge_set.host h) g) then
    invalid_arg "Link_state.make: edge set over a different graph";
  { g; h; h_adj = Edge_set.to_adjacency h }

let graph t = t.g

(* BFS from [dst] in H_c (H plus the star of c's real incident edges).
   Returns the distance array. *)
let dist_from_in_view t ~view:c dst =
  let n = Graph.n t.g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(dst) <- 0;
  queue.(0) <- dst;
  let head = ref 0 and tail = ref 1 in
  let push v d =
    if dist.(v) < 0 then begin
      dist.(v) <- d;
      queue.(!tail) <- v;
      incr tail
    end
  in
  while !head < !tail do
    let x = queue.(!head) in
    incr head;
    let dx = dist.(x) in
    Array.iter (fun y -> push y (dx + 1)) t.h_adj.(x);
    if x = c then Array.iter (fun y -> push y (dx + 1)) (Graph.neighbors t.g c)
    else if Graph.mem_edge t.g c x then push c (dx + 1)
  done;
  dist

let next_hop t ~src ~dst =
  if src = dst then None
  else begin
    let dist = dist_from_in_view t ~view:src dst in
    let best = ref (-1) and best_d = ref max_int in
    Array.iter
      (fun w ->
        if dist.(w) >= 0 && dist.(w) < !best_d then begin
          best := w;
          best_d := dist.(w)
        end)
      (Graph.neighbors t.g src);
    if !best < 0 then None else Some !best
  end

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let limit = Graph.n t.g in
    let rec forward c acc hops =
      if c = dst then Some (List.rev (c :: acc))
      else if hops > limit then None
      else
        match next_hop t ~src:c ~dst with
        | None -> None
        | Some w -> forward w (c :: acc) (hops + 1)
    in
    forward src [] 0
  end

type stretch_report = {
  pairs : int;
  delivered : int;
  worst_mult : float;
  worst_add : int;
  mean_mult : float;
  hops_total : int;
}

let measure_stretch ?pairs t =
  let candidates =
    match pairs with
    | Some p -> p
    | None ->
        let acc = ref [] in
        let n = Graph.n t.g in
        for s = 0 to n - 1 do
          for d = 0 to n - 1 do
            if s <> d then acc := (s, d) :: !acc
          done
        done;
        List.rev !acc
  in
  let pairs_count = ref 0
  and delivered = ref 0
  and worst_mult = ref 0.0
  and worst_add = ref 0
  and mult_sum = ref 0.0
  and hops_total = ref 0 in
  List.iter
    (fun (s, d) ->
      let dg = Bfs.dist_pair t.g s d in
      if dg > 0 then begin
        incr pairs_count;
        match route t ~src:s ~dst:d with
        | None -> ()
        | Some p ->
            incr delivered;
            let len = Path.length p in
            hops_total := !hops_total + len;
            let mult = float_of_int len /. float_of_int dg in
            worst_mult := Float.max !worst_mult mult;
            worst_add := max !worst_add (len - dg);
            mult_sum := !mult_sum +. mult
      end)
    candidates;
  {
    pairs = !pairs_count;
    delivered = !delivered;
    worst_mult = !worst_mult;
    worst_add = !worst_add;
    mean_mult = (if !delivered = 0 then 0.0 else !mult_sum /. float_of_int !delivered);
    hops_total = !hops_total;
  }

let advertisement_size t = 2 * Edge_set.cardinal t.h
