(** A compact OLSR control-plane model (RFC 3626, §1 of the paper).

    OLSR's optimization is double: only multipoint relays {e forward}
    floods, and only MPR-{e selected} nodes {e originate} topology
    control (TC) messages, each advertising just its selector links.
    The union of advertised links is exactly the multipoint-relay
    sub-graph — a (1,0)-remote-spanner by the paper's Proposition 5
    (k = 1) — so every node still computes shortest routes from its
    partial view plus its own neighborhood.

    This module wires those pieces (selection, selector sets, TC
    origination, MPR flooding, routing) together and accounts for the
    control traffic, so experiments can compare OLSR's economics
    against full link-state flooding on the same topology. *)

open Rs_graph

type t

val make : Graph.t -> t
(** Run MPR selection (greedy) for every node and derive selector
    sets. *)

val mpr_of : t -> int -> int list
(** The relays node [u] selected (sorted). *)

val selectors_of : t -> int -> int list
(** The nodes that selected [u] as a relay (sorted). *)

val tc_originators : t -> int list
(** Nodes with a non-empty selector set — the only TC sources. *)

val advertised : t -> Edge_set.t
(** Union of all TC-advertised links (selector links) — the network's
    shared partial topology, equal to
    [Mpr.relay_union g Mpr.select]. *)

type overhead = {
  hello_entries : int;  (** sum of neighbor-list sizes (per period) *)
  tc_messages : int;  (** TC originators *)
  tc_entries : int;  (** total advertised selector links *)
  tc_flood_retx : int;  (** MPR-flooding retransmissions to spread all TCs *)
  full_ls_messages : int;  (** every node originates under plain LS *)
  full_ls_entries : int;  (** 2m entries *)
  full_flood_retx : int;  (** blind-flooding retransmissions for all LSAs *)
}

val control_overhead : t -> overhead
(** One period's control traffic, OLSR vs plain link-state. *)

val routing_exact : t -> bool
(** Do all greedy routes over the advertised sub-graph equal shortest
    paths (they must — the advertised graph is a
    (1,0)-remote-spanner)? O(n^2 · m): small graphs. *)
