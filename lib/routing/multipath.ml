open Rs_graph

type t = { g : Graph.t; h : Edge_set.t }

let make g h =
  if not (Graph.equal (Edge_set.host h) g) then
    invalid_arg "Multipath.make: edge set over a different graph";
  { g; h }

let augmented t src =
  let extra = Array.to_list (Graph.neighbors t.g src) |> List.map (fun v -> (src, v)) in
  Graph.make ~n:(Graph.n t.g) (List.rev_append extra (Edge_set.to_list t.h))

let disjoint_routes t ~k ~src ~dst =
  if src = dst then invalid_arg "Multipath.disjoint_routes: src = dst";
  let hs = augmented t src in
  Disjoint_paths.min_sum_paths hs ~k src dst

type failure_report = {
  trials : int;
  primary_hit : int;
  backup_survived : int;
  total_detour : int;
}

let failure_experiment rand t ~trials =
  let n = Graph.n t.g in
  let report = ref { trials = 0; primary_hit = 0; backup_survived = 0; total_detour = 0 } in
  let attempts = ref (20 * trials) in
  while !report.trials < trials && !attempts > 0 do
    decr attempts;
    let s = Rand.int rand n and d = Rand.int rand n in
    if s <> d && not (Graph.mem_edge t.g s d) then
      match disjoint_routes t ~k:2 ~src:s ~dst:d with
      | None -> ()
      | Some routes ->
          let routes =
            List.sort (fun a b -> compare (Path.length a) (Path.length b)) routes
          in
          (match routes with
          | [ primary; backup ] -> (
              match Path.internal primary with
              | [] -> () (* primary of length 1 impossible here, but stay safe *)
              | internals ->
                  let dead = List.nth internals (Rand.int rand (List.length internals)) in
                  let r = !report in
                  let survived = not (List.mem dead backup) in
                  report :=
                    {
                      trials = r.trials + 1;
                      primary_hit = r.primary_hit + 1;
                      backup_survived = r.backup_survived + (if survived then 1 else 0);
                      total_detour =
                        r.total_detour + (Path.length backup - Path.length primary);
                    })
          | _ -> ())
  done;
  !report
