(** Link-state routing over a partially advertised topology.

    The paper's motivation (Section 1): a link-state protocol floods
    only a sub-graph H of the real topology G; every router [u] still
    knows its own neighbors, so it routes on H_u = H + its incident
    edges, forwarding a packet for [v] to its neighbor closest to [v]
    in H_u. The delivered route has length at most [d_{H_u}(u, v)], so
    H being an (alpha, beta)-remote-spanner bounds the route stretch
    by (alpha, beta). This module simulates that forwarding loop and
    measures route stretch and advertisement overhead. *)

open Rs_graph

type t

val make : Graph.t -> Edge_set.t -> t
(** A routing domain: real topology [g], advertised sub-graph [h]. *)

val graph : t -> Graph.t

val next_hop : t -> src:int -> dst:int -> int option
(** The neighbor of [src] closest to [dst] in H_src (smallest id on
    ties); [None] when [dst] is unreachable in H_src. *)

val route : t -> src:int -> dst:int -> Path.t option
(** Full greedy forwarding: every hop re-decides with its own H_c.
    Returns the traversed path, or [None] if forwarding fails
    (unreachable or a loop longer than n hops — the latter cannot
    happen over a remote-spanner, and is asserted in tests). *)

type stretch_report = {
  pairs : int;  (** routable ordered pairs measured *)
  delivered : int;
  worst_mult : float;  (** max over pairs of |route| / d_G *)
  worst_add : int;  (** max over pairs of |route| - d_G *)
  mean_mult : float;
  hops_total : int;
}

val measure_stretch : ?pairs:(int * int) list -> t -> stretch_report
(** Route every ordered non-adjacent connected pair (or the given
    sample) and compare with the true distance. *)

val advertisement_size : t -> int
(** Total link-state advertisement volume per flooding period: every
    node advertises its incident H-links, so the sum is 2|E(H)|
    (|E(G)| directed entries for full link-state). *)
