open Rs_graph
module Mpr = Rs_core.Mpr

type t = {
  g : Graph.t;
  mprs : int list array;
  selectors : int list array;
  advertised : Edge_set.t;
}

let make g =
  let n = Graph.n g in
  let mprs = Array.init n (fun u -> Mpr.select g u) in
  let selectors = Array.make n [] in
  Array.iteri (fun u relays -> List.iter (fun x -> selectors.(x) <- u :: selectors.(x)) relays) mprs;
  Array.iteri (fun x sel -> selectors.(x) <- List.sort compare sel) selectors;
  let advertised = Edge_set.create g in
  Array.iteri
    (fun x sel -> List.iter (fun u -> Edge_set.add advertised x u) sel)
    selectors;
  { g; mprs; selectors; advertised }

let mpr_of t u = t.mprs.(u)
let selectors_of t x = t.selectors.(x)

let tc_originators t =
  let acc = ref [] in
  Array.iteri (fun x sel -> if sel <> [] then acc := x :: !acc) t.selectors;
  List.rev !acc

let advertised t = t.advertised

type overhead = {
  hello_entries : int;
  tc_messages : int;
  tc_entries : int;
  tc_flood_retx : int;
  full_ls_messages : int;
  full_ls_entries : int;
  full_flood_retx : int;
}

let control_overhead t =
  let n = Graph.n t.g in
  let hello_entries = Graph.fold_vertices (fun acc u -> acc + Graph.degree t.g u) 0 t.g in
  let originators = tc_originators t in
  let tc_entries =
    List.fold_left (fun acc x -> acc + List.length t.selectors.(x)) 0 originators
  in
  let relays u = t.mprs.(u) in
  let tc_flood_retx =
    List.fold_left
      (fun acc x -> acc + (Mpr.flood t.g ~relays ~src:x).Mpr.retransmissions)
      0 originators
  in
  let full_flood_retx =
    let acc = ref 0 in
    for u = 0 to n - 1 do
      acc := !acc + (Mpr.blind_flood t.g ~src:u).Mpr.retransmissions
    done;
    !acc
  in
  {
    hello_entries;
    tc_messages = List.length originators;
    tc_entries;
    tc_flood_retx;
    full_ls_messages = n;
    full_ls_entries = 2 * Graph.m t.g;
    full_flood_retx;
  }

let routing_exact t =
  let ls = Link_state.make t.g t.advertised in
  let report = Link_state.measure_stretch ls in
  report.Link_state.delivered = report.Link_state.pairs
  && report.Link_state.worst_add = 0
  && report.Link_state.worst_mult <= 1.0 +. 1e-9
