(** Multi-path routing over k-connecting remote-spanners.

    The paper motivates k-connecting remote-spanners by reliability
    and multi-path routing (Section 1): a source that knows H plus its
    own links can compute k internally disjoint routes whose total
    length is bounded by the k-connecting stretch, and a single node
    failure can kill at most one of them. This module computes those
    routes and runs the failure experiment. *)

open Rs_graph

type t

val make : Graph.t -> Edge_set.t -> t
(** Same inputs as {!Link_state.make}. *)

val disjoint_routes : t -> k:int -> src:int -> dst:int -> Path.t list option
(** [disjoint_routes t ~k ~src ~dst]: [k] internally vertex-disjoint
    src-dst routes of minimum total length in [H_src] (min-cost flow),
    or [None] when fewer than [k] exist there. All routes are real
    paths of the underlying graph. *)

type failure_report = {
  trials : int;  (** experiments run *)
  primary_hit : int;  (** trials where the failed node lay on the primary route *)
  backup_survived : int;  (** of those, trials where the backup avoided it *)
  total_detour : int;  (** extra hops of backups over primaries, summed *)
}

val failure_experiment :
  Rand.t -> t -> trials:int -> failure_report
(** Repeatedly: draw a non-adjacent 2-connected (in H_src) pair, take
    its two disjoint routes, fail a uniform internal node of the
    primary (shorter) route, and check the backup still avoids it. By
    internal disjointness [backup_survived = primary_hit] always; the
    experiment exists to demonstrate it and to measure the detour
    cost. Trials that fail to find an eligible pair are not counted. *)
