(** Lemma 2's path surgery, executable (the constructive heart of
    Proposition 5 / Theorem 2).

    The paper proves that a sub-graph H inducing k-connecting
    (2,0)-dominating trees is a k-connecting (1,0)-remote-spanner by
    surgery: start from a minimum-length tuple of k' internally
    disjoint s-t paths of G and repeatedly rewrite the path that "lies
    outside H" — replacing its first offending wedge u-v-w by u-x-w
    through a common neighbor x with wx in H, guaranteed to exist and
    to be free of the other paths — until every path lies outside H by
    at most one edge. Every rewrite preserves the total length and
    disjointness, so the final tuple witnesses
    [d^k'_{H_s}(s,t) = d^k'_G(s,t)].

    Running the proof gives the library a second, independent road to
    Theorem 2 (the first being the min-cost-flow checker), and yields
    the actual optimal path system of H_s — useful for multi-path
    routing. *)

open Rs_graph

val outside_count : Edge_set.t -> Path.t -> int
(** [outside_count h p]: the smallest [i] such that all edges of [p]
    after its [i]-th edge belong to [h] ([0] when the whole path is in
    [h]; [Path.length p] when even the last edge is missing). *)

val lemma2_step : Graph.t -> Edge_set.t -> k:int -> Path.t list -> Path.t list option
(** One rewrite of Lemma 2 applied to the first path of the tuple that
    lies outside by >= 2. Returns the rewritten tuple (same length
    sum, same pairwise disjointness, strictly smaller total outside
    count), [None] if no path needs rewriting or if H lacks the
    dominating-tree property the lemma relies on. *)

val theorem2_paths : Graph.t -> Edge_set.t -> k:int -> int -> int -> Path.t list option
(** [theorem2_paths g h ~k s t]: the full construction. Computes a
    minimum-length tuple of [k'] = min(k, connectivity) disjoint s-t
    paths of [g], then iterates {!lemma2_step} to exhaustion. On
    success every returned path lies outside [h] by at most one edge —
    i.e. the tuple lives in [H_s] — and its total length equals
    [d^k'_G(s, t)]. Returns [None] when s, t are adjacent or not
    connected, or when H does not induce the required trees. *)

val lemma1_step :
  Graph.t -> Edge_set.t -> Path.t * Path.t -> (Path.t * Path.t) option
(** One rewrite of Lemma 1 (the 2-connecting (2,-1) case, Proposition
    4). Given a disjoint s-t path pair with some path lying outside H
    by [i >= 2], produces a new disjoint pair whose length sum grows
    by at most one while the total outside count strictly decreases —
    by splicing one or two depth-<=2 dominating-tree branches of the
    offending wedge's endpoint, exchanging path segments with the
    partner path when both branches land on it (the proof's two
    cases). [None] when no path needs rewriting or no branch
    combination yields a valid improvement (H lacks the 2-connecting
    (2,1)-dominating-tree property, or the pair strays too far from
    the minimal pairs the lemma's analysis assumes — callers should
    fall back to the flow checker). *)

val prop4_paths : Graph.t -> Edge_set.t -> int -> int -> (Path.t * Path.t) option
(** [prop4_paths g h s t]: Proposition 4's construction. Starts from a
    minimum-length disjoint s-t path pair of [g] (total [l = d^2_G])
    and iterates {!lemma1_step}. On success both returned paths lie
    outside [h] by at most one edge (so the pair lives in [H_s]) and
    their total length is at most [2 l - 2] — the 2-connecting (2,-1)
    stretch, witnessed constructively. *)
