open Rs_graph
module Obs = Rs_obs.Obs

let full g = Edge_set.full g

let bfs_tree g ~root =
  let h = Edge_set.create g in
  let seen = Array.make (Graph.n g) false in
  let cover src =
    let parent = Bfs.parents g src in
    Array.iteri
      (fun v p ->
        if p >= 0 then begin
          seen.(v) <- true;
          if v <> src then Edge_set.add h v p
        end)
      parent
  in
  cover root;
  (* extra components get their own tree, rooted at their least vertex *)
  Graph.iter_vertices (fun v -> if not seen.(v) then cover v) g;
  h

(* Bounded-depth BFS over the kept edge set only. *)
let kept_dist_exceeds g h u v limit =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  dist.(u) <- 0;
  queue.(0) <- u;
  let head = ref 0 and tail = ref 1 in
  let found = ref false in
  while (not !found) && !head < !tail do
    let x = queue.(!head) in
    incr head;
    if dist.(x) < limit then
      Array.iter
        (fun y ->
          if dist.(y) < 0 && Edge_set.mem h x y then begin
            dist.(y) <- dist.(x) + 1;
            if y = v then found := true;
            queue.(!tail) <- y;
            incr tail
          end)
        (Graph.neighbors g x)
  done;
  not !found

let greedy_spanner g ~k =
  if k < 1 then invalid_arg "Baseline.greedy_spanner: k < 1";
  Obs.with_span "build/greedy_spanner" @@ fun () ->
  let h = Edge_set.create g in
  Graph.iter_edges
    (fun u v -> if kept_dist_exceeds g h u v ((2 * k) - 1) then Edge_set.add h u v)
    g;
  h

let baswana_sen rand g ~k =
  if k < 1 then invalid_arg "Baseline.baswana_sen: k < 1";
  Obs.with_span "build/baswana_sen" @@ fun () ->
  let n = Graph.n g in
  let h = Edge_set.create g in
  if n = 0 then h
  else begin
    let p = Float.pow (float_of_int n) (-1.0 /. float_of_int k) in
    (* cluster.(v) = id of v's cluster, or -1 once v has left clustering *)
    let cluster = Array.init n Fun.id in
    for _phase = 1 to k - 1 do
      (* sample surviving clusters *)
      let cluster_ids = Hashtbl.create 64 in
      Array.iter (fun c -> if c >= 0 then Hashtbl.replace cluster_ids c ()) cluster;
      let sampled = Hashtbl.create 64 in
      Hashtbl.iter
        (fun c () -> if Rand.float rand 1.0 < p then Hashtbl.replace sampled c ())
        cluster_ids;
      let next = Array.make n (-1) in
      for v = 0 to n - 1 do
        if cluster.(v) >= 0 then begin
          if Hashtbl.mem sampled cluster.(v) then next.(v) <- cluster.(v)
          else begin
            (* neighbors grouped by their current cluster *)
            let by_cluster = Hashtbl.create 8 in
            Array.iter
              (fun w ->
                let c = cluster.(w) in
                if c >= 0 && not (Hashtbl.mem by_cluster c) then Hashtbl.replace by_cluster c w)
              (Graph.neighbors g v);
            (* adjacent sampled cluster? join the first one *)
            let joined = ref false in
            Hashtbl.iter
              (fun c w ->
                if (not !joined) && Hashtbl.mem sampled c then begin
                  Edge_set.add h v w;
                  next.(v) <- c;
                  joined := true
                end)
              by_cluster;
            if not !joined then
              (* leave clustering: keep one edge per adjacent cluster *)
              Hashtbl.iter (fun _c w -> Edge_set.add h v w) by_cluster
          end
        end
      done;
      Array.blit next 0 cluster 0 n
    done;
    (* final phase: every vertex keeps one edge to each adjacent
       surviving cluster *)
    for v = 0 to n - 1 do
      let by_cluster = Hashtbl.create 8 in
      Array.iter
        (fun w ->
          let c = cluster.(w) in
          if c >= 0 && c <> cluster.(v) && not (Hashtbl.mem by_cluster c) then
            Hashtbl.replace by_cluster c w)
        (Graph.neighbors g v);
      Hashtbl.iter (fun _c w -> Edge_set.add h v w) by_cluster
    done;
    (* intra-cluster spanning edges: each clustered vertex keeps the
       edge through which it joined; vertices keep cluster-internal
       adjacency via one edge to the cluster center's tree — in the
       unweighted case joining edges were already added above, and the
       initial singleton phase needs none. *)
    h
  end

let additive2 g =
  Obs.with_span "build/additive2" @@ fun () ->
  let n = Graph.n g in
  let h = Edge_set.create g in
  if n = 0 then h
  else begin
    let s = int_of_float (Float.ceil (sqrt (float_of_int n))) in
    let high = ref [] in
    Graph.iter_vertices
      (fun u ->
        if Graph.degree g u < s then
          Array.iter (fun v -> Edge_set.add h u v) (Graph.neighbors g u)
        else high := u :: !high)
      g;
    (* greedily dominate high-degree vertices by vertices (a high
       vertex or one of its neighbors), add BFS tree per dominator *)
    let alive = Hashtbl.create 64 in
    List.iter (fun u -> Hashtbl.replace alive u ()) !high;
    while Hashtbl.length alive > 0 do
      (* candidate dominators: count coverage = undominated high
         vertices in closed neighborhood *)
      let best = ref (-1) and best_cov = ref 0 in
      for x = 0 to n - 1 do
        let c =
          (if Hashtbl.mem alive x then 1 else 0)
          + Array.fold_left
              (fun acc w -> if Hashtbl.mem alive w then acc + 1 else acc)
              0 (Graph.neighbors g x)
        in
        if c > !best_cov then begin
          best := x;
          best_cov := c
        end
      done;
      assert (!best >= 0);
      let x = !best in
      if Hashtbl.mem alive x then Hashtbl.remove alive x;
      Array.iter
        (fun w -> if Hashtbl.mem alive w then Hashtbl.remove alive w)
        (Graph.neighbors g x);
      (* full BFS tree from the dominator *)
      let parent = Bfs.parents g x in
      Array.iteri (fun v pv -> if pv >= 0 && v <> x then Edge_set.add h v pv) parent
    done;
    h
  end

let is_spanner g h ~alpha ~beta =
  let h_adj = Edge_set.to_adjacency h in
  let ok = ref true in
  Graph.iter_vertices
    (fun u ->
      if !ok then begin
        let du_g = Bfs.dist g u in
        let du_h = Bfs.dist_adj h_adj u in
        for v = 0 to Graph.n g - 1 do
          if !ok && v <> u && du_g.(v) > 0 then begin
            let bound = (alpha *. float_of_int du_g.(v)) +. beta in
            if du_h.(v) < 0 || float_of_int du_h.(v) > bound +. 1e-9 then ok := false
          end
        done
      end)
    g;
  !ok
