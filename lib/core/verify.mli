(** Independent verification oracles for remote-spanner properties.

    Every construction in this library is validated against these
    checkers, which implement the definitions directly (BFS for
    distances, min-cost flow for disjoint paths) and share no code
    with the constructions. *)

open Rs_graph

type violation = {
  src : int;
  dst : int;
  d_g : int;  (** distance (or k-connecting distance) in G *)
  d_h : int;  (** same in H_src (max_int when unreachable) *)
}

val pp_violation : Format.formatter -> violation -> unit

val remote_spanner_violations :
  ?max_violations:int -> Graph.t -> Edge_set.t -> alpha:float -> beta:float -> violation list
(** All ordered pairs (u, v) of distinct, non-adjacent vertices with
    [d_G(u,v)] finite but [d_{H_u}(u,v) > alpha * d_G(u,v) + beta]
    (up to [max_violations], default 10). Empty iff H is an
    (alpha, beta)-remote-spanner. O(n (n + m)). *)

val is_remote_spanner : Graph.t -> Edge_set.t -> alpha:float -> beta:float -> bool

type histogram = {
  pairs : int;  (** ordered non-adjacent connected pairs measured *)
  unreachable : int;  (** pairs with d_{H_u}(u,v) infinite *)
  exact : int;  (** pairs with d_{H_u} = d_G *)
  slack_counts : (int * int) list;
      (** (additive slack d_{H_u} - d_G, pair count), ascending slack *)
  mean_ratio : float;  (** mean of d_{H_u} / d_G over reachable pairs *)
}

val stretch_histogram : Graph.t -> Edge_set.t -> histogram
(** Full distribution of the remote stretch over all ordered
    non-adjacent connected pairs — worst cases (E7) tell only half the
    story; the histogram shows how rare the detours are. O(n (n+m)). *)

val worst_additive_slack : Graph.t -> Edge_set.t -> alpha:float -> float
(** [worst_additive_slack g h ~alpha] = max over valid pairs of
    [d_{H_u}(u,v) - alpha * d_G(u,v)]: the smallest [beta] making H an
    (alpha, beta)-remote-spanner ([neg_infinity] when no pair
    qualifies, [infinity] if some pair is disconnected in H_u). *)

val augmented : Graph.t -> Edge_set.t -> int -> Graph.t
(** [augmented g h u] materializes H_u = H plus all G-edges incident
    to [u], as a standalone graph (for flow computations). *)

val k_connecting_violations :
  ?max_violations:int ->
  ?pairs:(int * int) list ->
  Graph.t ->
  Edge_set.t ->
  alpha:float ->
  beta:float ->
  k:int ->
  violation list
(** Check the k-connecting stretch: for ordered pairs (s, t) of
    non-adjacent vertices and every [k' <= k] with [d^k'_G(s,t)]
    finite, require [d^k'_{H_s}(s,t) <= alpha * d^k'_G(s,t) + k' *
    beta]. Exhaustive over all pairs by default (O(n^2) flow
    computations — use [?pairs] to sample on larger graphs). The
    reported [d_g]/[d_h] are for the smallest violated [k']. *)

val is_k_connecting :
  ?pairs:(int * int) list ->
  Graph.t -> Edge_set.t -> alpha:float -> beta:float -> k:int -> bool

val edge_k_connecting_violations :
  ?max_violations:int ->
  ?pairs:(int * int) list ->
  Graph.t ->
  Edge_set.t ->
  alpha:float ->
  beta:float ->
  k:int ->
  violation list
(** Edge-connectivity variant of {!k_connecting_violations}, for the
    extension sketched in the paper's conclusion: [d^k'] measured over
    pairwise {e edge}-disjoint paths ({!Rs_graph.Edge_disjoint}).
    Experiment E13 evaluates which constructions satisfy it. *)

val is_edge_k_connecting :
  ?pairs:(int * int) list ->
  Graph.t -> Edge_set.t -> alpha:float -> beta:float -> k:int -> bool

val induces_dominating_trees : Graph.t -> Edge_set.t -> r:int -> beta:int -> bool
(** Does H contain an (r, beta)-dominating tree for every node?
    Exact: H contains such a tree for [u] iff for every [v] with
    [2 <= d_G(u,v) = r' <= r] some [x] in [N_G(v)] has
    [d_H(u, x) <= r' - 1 + beta] (shortest paths in H from [u] then
    assemble into one tree). This is the characterization side of
    Propositions 1 and 5 used by experiment E7. *)

val induces_k20_trees : Graph.t -> Edge_set.t -> k:int -> bool
(** Does H contain a k-connecting (2,0)-dominating tree for every
    node? Exact for beta = 0: depth-1 trees are stars, so the test is
    pointwise — every [v] at distance 2 of [u] has k common neighbors
    [x] with [ux] in H, or all its common neighbors [w] have [uw] in
    H. (Proposition 5's characterization.) *)
