open Rs_graph

type violation = { src : int; dst : int; d_g : int; d_h : int }

let pp_violation fmt v =
  Format.fprintf fmt "(%d -> %d: d_G=%d, d_Hu=%s)" v.src v.dst v.d_g
    (if v.d_h = max_int then "inf" else string_of_int v.d_h)

let remote_spanner_violations ?(max_violations = 10) g h ~alpha ~beta =
  let h_adj = Edge_set.to_adjacency h in
  let acc = ref [] and count = ref 0 in
  let n = Graph.n g in
  let u = ref 0 in
  while !u < n && !count < max_violations do
    let du_g = Bfs.dist g !u in
    let du_h = Bfs.augmented_dist g h_adj !u in
    for v = 0 to n - 1 do
      if v <> !u && du_g.(v) > 1 && !count < max_violations then begin
        let dh = if du_h.(v) < 0 then max_int else du_h.(v) in
        let bound = (alpha *. float_of_int du_g.(v)) +. beta in
        if dh = max_int || float_of_int dh > bound +. 1e-9 then begin
          acc := { src = !u; dst = v; d_g = du_g.(v); d_h = dh } :: !acc;
          incr count
        end
      end
    done;
    incr u
  done;
  List.rev !acc

let is_remote_spanner g h ~alpha ~beta =
  remote_spanner_violations ~max_violations:1 g h ~alpha ~beta = []

type histogram = {
  pairs : int;
  unreachable : int;
  exact : int;
  slack_counts : (int * int) list;
  mean_ratio : float;
}

let stretch_histogram g h =
  let h_adj = Edge_set.to_adjacency h in
  let pairs = ref 0 and unreachable = ref 0 and exact = ref 0 in
  let ratio_sum = ref 0.0 and reachable = ref 0 in
  let slack_tbl = Hashtbl.create 16 in
  Graph.iter_vertices
    (fun u ->
      let du_g = Bfs.dist g u in
      let du_h = Bfs.augmented_dist g h_adj u in
      for v = 0 to Graph.n g - 1 do
        if v <> u && du_g.(v) > 1 then begin
          incr pairs;
          if du_h.(v) < 0 then incr unreachable
          else begin
            incr reachable;
            let slack = du_h.(v) - du_g.(v) in
            if slack = 0 then incr exact;
            Hashtbl.replace slack_tbl slack
              (1 + Option.value ~default:0 (Hashtbl.find_opt slack_tbl slack));
            ratio_sum := !ratio_sum +. (float_of_int du_h.(v) /. float_of_int du_g.(v))
          end
        end
      done)
    g;
  {
    pairs = !pairs;
    unreachable = !unreachable;
    exact = !exact;
    slack_counts =
      List.sort compare (Hashtbl.fold (fun s c acc -> (s, c) :: acc) slack_tbl []);
    mean_ratio = (if !reachable = 0 then 1.0 else !ratio_sum /. float_of_int !reachable);
  }

let worst_additive_slack g h ~alpha =
  let h_adj = Edge_set.to_adjacency h in
  let worst = ref neg_infinity in
  Graph.iter_vertices
    (fun u ->
      let du_g = Bfs.dist g u in
      let du_h = Bfs.augmented_dist g h_adj u in
      for v = 0 to Graph.n g - 1 do
        if v <> u && du_g.(v) > 1 then
          if du_h.(v) < 0 then worst := infinity
          else
            worst :=
              Float.max !worst
                (float_of_int du_h.(v) -. (alpha *. float_of_int du_g.(v)))
      done)
    g;
  !worst

let augmented g h u =
  let extra = Array.to_list (Graph.neighbors g u) |> List.map (fun v -> (u, v)) in
  Graph.make ~n:(Graph.n g) (List.rev_append extra (Edge_set.to_list h))

let all_nonadjacent_pairs g =
  let acc = ref [] in
  let n = Graph.n g in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t && not (Graph.mem_edge g s t) then acc := (s, t) :: !acc
    done
  done;
  List.rev !acc

let generic_k_violations ~profile ~max_violations ~pairs g h ~alpha ~beta ~k =
  let pairs = match pairs with Some p -> p | None -> all_nonadjacent_pairs g in
  let acc = ref [] and count = ref 0 in
  List.iter
    (fun (s, t) ->
      if !count < max_violations && s <> t && not (Graph.mem_edge g s t) then begin
        let profile_g = profile g ~kmax:k s t in
        if Array.length profile_g > 0 then begin
          let hs = augmented g h s in
          let profile_h = profile hs ~kmax:k s t in
          let k's = Array.length profile_g in
          let rec check k' =
            if k' <= k's && !count < max_violations then begin
              let dg = profile_g.(k' - 1) in
              let dh =
                if Array.length profile_h >= k' then profile_h.(k' - 1) else max_int
              in
              let bound = (alpha *. float_of_int dg) +. (float_of_int k' *. beta) in
              if dh = max_int || float_of_int dh > bound +. 1e-9 then begin
                acc := { src = s; dst = t; d_g = dg; d_h = dh } :: !acc;
                incr count
              end
              else check (k' + 1)
            end
          in
          check 1
        end
      end)
    pairs;
  List.rev !acc

let k_connecting_violations ?(max_violations = 10) ?pairs g h ~alpha ~beta ~k =
  generic_k_violations
    ~profile:(fun g ~kmax s t -> Disjoint_paths.dk_profile g ~kmax s t)
    ~max_violations ~pairs g h ~alpha ~beta ~k

let is_k_connecting ?pairs g h ~alpha ~beta ~k =
  k_connecting_violations ~max_violations:1 ?pairs g h ~alpha ~beta ~k = []

let edge_k_connecting_violations ?(max_violations = 10) ?pairs g h ~alpha ~beta ~k =
  generic_k_violations
    ~profile:(fun g ~kmax s t -> Edge_disjoint.dk_profile g ~kmax s t)
    ~max_violations ~pairs g h ~alpha ~beta ~k

let is_edge_k_connecting ?pairs g h ~alpha ~beta ~k =
  edge_k_connecting_violations ~max_violations:1 ?pairs g h ~alpha ~beta ~k = []

let induces_dominating_trees g h ~r ~beta =
  let h_adj = Edge_set.to_adjacency h in
  let ok = ref true in
  Graph.iter_vertices
    (fun u ->
      if !ok then begin
        let du_g = Bfs.dist ~radius:r g u in
        let du_h = Bfs.dist_adj h_adj u in
        Graph.iter_vertices
          (fun v ->
            let r' = du_g.(v) in
            if !ok && r' >= 2 && r' <= r then begin
              let dominated =
                Array.exists
                  (fun x -> du_h.(x) >= 0 && du_h.(x) <= r' - 1 + beta)
                  (Graph.neighbors g v)
              in
              if not dominated then ok := false
            end)
          g
      end)
    g;
  !ok

let induces_k20_trees g h ~k =
  let ok = ref true in
  Graph.iter_vertices
    (fun u ->
      if !ok then begin
        let du_g = Bfs.dist ~radius:2 g u in
        Graph.iter_vertices
          (fun v ->
            if !ok && du_g.(v) = 2 then begin
              let common =
                Array.to_list (Graph.neighbors g v)
                |> List.filter (fun w -> Graph.mem_edge g u w)
              in
              let in_h = List.filter (fun w -> Edge_set.mem h u w) common in
              let covered =
                List.length in_h >= k || List.length in_h = List.length common
              in
              if not covered then ok := false
            end)
          g
      end)
    g;
  !ok
