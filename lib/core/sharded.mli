(** Batched, sharded construction of remote-spanners at scale.

    Every construction in this library is a union of per-root
    dominating trees. This module replaces the root-at-a-time loop
    with three coordinated mechanisms (see docs/PERFORMANCE.md,
    "Scaling"):

    - roots are traversed [Rs_graph.Msbfs.width] at a time by the
      bit-parallel multi-source BFS, in a locality order that makes
      each batch's balls overlap;
    - batches are fanned over domains by the work-stealing {!drive};
    - each domain emits canonical edge ids into a flat int
      accumulator, merged once into the result set — no O(n) [Tree.t]
      per root, no per-tree [Edge_set.t].

    The resulting edge set is {e identical} to the sequential
    per-root reference for every strategy, domain count, batch size
    and root order (QCheck-asserted): trees depend only on their
    root's ball and every tie-break is by vertex id. In the default
    (global) mode the [core/trees_built], [bfs/runs] and
    [bfs/expansions] totals also match the sequential run exactly. *)

open Rs_graph

(** Which per-root tree to build: [Gdy] = Algorithm 1
    ({!Dom_tree.gdy}), [Mis] = Algorithm 2 ({!Dom_tree.mis}),
    [Gdy_k] = Algorithm 4 ({!Dom_tree_k.gdy_k}). *)
type strategy =
  | Gdy of { r : int; beta : int }
  | Mis of { r : int }
  | Gdy_k of { k : int }

val default_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val record_domain : int -> float -> unit
(** [record_domain items wall_s] feeds the [parallel/domain_items] and
    [parallel/domain_wall_s] histograms (no-op when metrics are off). *)

val drive :
  ?chunk:int -> n:int -> domains:int -> stop:(unit -> bool) ->
  ((unit -> (int * int) option) -> int) -> unit
(** Work-stealing scheduler over the range [0, n): each of [domains]
    domains (the calling one included) runs the worker with a [claim]
    function handing out inclusive chunks until the range is empty or
    [stop ()] is true; the worker returns its item count, recorded via
    {!record_domain}. [~chunk] overrides the auto-sized chunk (use [1]
    when each index is already a coarse unit of work). *)

val locality_order : Graph.t -> int array
(** Multi-restart BFS visit order: a permutation in which consecutive
    vertices are graph-close, so a batch of [Msbfs.width] consecutive
    roots has overlapping balls. The default order of {!build}.
    Not recorded as a bfs/runs traversal. *)

val build :
  ?domains:int ->
  ?order:int array ->
  ?chunk:int ->
  ?local:bool ->
  Graph.t ->
  strategy ->
  Edge_set.t
(** [build g strat] is the union of [strat]'s dominating trees over
    all roots — the same edge set as
    [Remote_spanner.union_trees g (tree_of strat)], built batched and
    sharded. [?domains] defaults to {!default_domains} (forced to 1
    below 64 vertices); [?order] overrides the root order (a
    permutation of the vertex range — e.g.
    [Rs_geometry.Proximity.grid_order] for geometric graphs, any
    hash-bucket order for Gnp; affects only performance, never the
    result); [?chunk] caps the batch width (default and maximum
    [Msbfs.width]).

    [?local:true] additionally materializes, per batch, the induced
    sub-graph on the batch's roots plus a [(radius-1)]-halo and runs
    the batch against that shard. Roots whose traversal stayed clear
    of the shard fringe are emitted locally; clipped roots are re-run
    against the host graph in a final boundary-repair pass. Same edge
    set, but traversal metrics count the local re-runs, so local mode
    trades the sequential metric parity for shard-sized working sets.
    Raises [Invalid_argument] on invalid strategy parameters or an
    [order] that is not a permutation of [0 .. n-1] (wrong length,
    out-of-range entry, or duplicate). *)
