(** k-connecting (2, beta)-dominating trees (paper, Section 3).

    A k-connecting (2, beta)-dominating tree T for [u] is a tree
    rooted at [u] such that every node [v] at distance 2 from [u]
    satisfies one of:
    - [v] has k neighbors in [B_T(u, 1+beta)] whose tree paths to [u]
      are pairwise internally disjoint (share only [u]); or
    - every common neighbor [w] of [u] and [v] has edge [uw] in T.

    For k = 1 this degenerates to a (2, beta)-dominating tree. Unions
    over all roots give k-connecting remote-spanners: (2, 0)-trees
    characterize k-connecting (1,0)-remote-spanners (Proposition 5),
    2-connecting (2, 1)-trees yield 2-connecting
    (2,-1)-remote-spanners (Proposition 4).

    In a rooted tree, root paths to two nodes are internally disjoint
    iff the nodes lie under different children of the root, so the
    "k disjoint paths" test reduces to counting distinct depth-1
    ancestors — see {!disjoint_branch_count}. *)

open Rs_graph

val disjoint_branch_count : Graph.t -> Tree.t -> beta:int -> int -> int
(** [disjoint_branch_count g t ~beta v]: the maximum number of
    pairwise internally disjoint tree paths from the root to distinct
    neighbors of [v] lying in [B_T(root, 1+beta)] — the number of root
    children whose subtree contains such a neighbor. *)

val is_k_dominating : Graph.t -> k:int -> beta:int -> Tree.t -> bool
(** Literal check of the definition above. *)

val gdy_k : ?scratch:Bfs.Scratch.t -> Graph.t -> k:int -> int -> Tree.t
(** Algorithm 4 (DomTreeGdy_{2,0,k}): greedy k-multicover of the
    2-sphere of [u] by neighbor balls ({!Rs_setcover.Setcover}'s lazy
    greedy); the tree is a star around [u]. Edge count within
    [1 + log Delta] of the optimal k-connecting (2,0)-dominating tree
    (Proposition 6). Ties by smallest id. Pass [~scratch] to reuse BFS
    state across roots (per-tree work proportional to the 2-ball, not
    [n]); a scratch must not be shared between domains. *)

val gdy_k_emit :
  Graph.t -> k:int -> sphere:int array -> int -> add:(int -> int -> unit) -> unit
(** Edge-emitting core of {!gdy_k}: everything after the radius-2
    traversal, with [sphere] the id-sorted 2-sphere of the root and
    [add u relay] invoked per star edge. Lets the batched builder
    ([Rs_core.Sharded]) skip the O(n) [Tree.t] per root; edges and
    metrics identical to {!gdy_k}. Assumes [k >= 1]. *)

val mis_k : ?scratch:Bfs.Scratch.t -> Graph.t -> k:int -> int -> Tree.t
(** Algorithm 5 (DomTreeMIS_{2,1,k}): k rounds of greedy maximal
    independent sets over the not-yet-dominated 2-sphere; each picked
    node [x] is attached through a fresh common neighbor and up to
    [k-1] further fresh relays become extra root children. O(k^2)
    edges on unit ball graphs of doubling metrics (Proposition 7). *)

val extract_k21 : Graph.t -> Edge_set.t -> k:int -> int -> Tree.t option
(** [extract_k21 g h ~k u] greedily builds a k-connecting
    (2,1)-dominating tree for [u] using only edges of [h]: relays come
    from [h]'s depth-1/2 structure around [u] instead of the whole
    graph. [Some t] certifies that [h] induces such a tree for [u]
    (checked with {!is_k_dominating} before returning); [None] means
    the greedy extraction failed — a sufficiency check, exact in the
    star-like cases, used to audit Proposition 4's premise on
    construction outputs. *)
