open Rs_graph

let bound ~r l =
  let eps = 1.0 /. float_of_int (r - 1) in
  ((1.0 +. eps) *. float_of_int l) +. 1.0 -. (2.0 *. eps)

(* remove loops from a walk: keep the segment up to the FIRST visit of
   any repeated vertex (cutting each cycle out shortens the walk) *)
let simplify walk =
  let seen = Hashtbl.create 16 in
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest ->
        if Hashtbl.mem seen v then begin
          (* drop acc back to the previous occurrence of v *)
          let rec unwind = function
            | x :: tail when x <> v ->
                Hashtbl.remove seen x;
                unwind tail
            | tail -> tail
          in
          go (unwind acc) rest
        end
        else begin
          Hashtbl.replace seen v ();
          go (v :: acc) rest
        end
  in
  go [] walk

let construct g h ~r u v =
  if r < 2 then invalid_arg "Prop1_route.construct: need r >= 2";
  let h_adj = Edge_set.to_adjacency h in
  (* shortest H-path toward a target, read from a BFS rooted there *)
  let h_parent_to target = Bfs.parents_adj h_adj target in
  let rec route u v =
    let dist_v = Bfs.dist g v in
    let l = dist_v.(u) in
    if l < 0 then None
    else if l = 0 then Some [ u ]
    else if l = 1 then Some [ u; v ]
    else begin
      let to_v = h_parent_to v in
      let d_h_from_v = Bfs.dist_adj h_adj v in
      let h_path_from x =
        (* x .. v along H shortest paths *)
        List.rev (Path.of_parents to_v x)
      in
      if l <= r then begin
        (* base case: a dominator x of u in v's tree, one free hop away *)
        let x = ref (-1) in
        Array.iter
          (fun w ->
            if d_h_from_v.(w) >= 0 && d_h_from_v.(w) <= l
               && (!x < 0 || d_h_from_v.(w) < d_h_from_v.(!x))
            then x := w)
          (Graph.neighbors g u);
        if !x < 0 then None else Some (simplify (u :: h_path_from !x))
      end
      else begin
        (* v' at distance r from v on a shortest v-u path *)
        let dist_u = Bfs.dist g u in
        let v' =
          let cur = ref v in
          for _ = 1 to r do
            let next = ref (-1) in
            Array.iter
              (fun w ->
                if dist_v.(w) = dist_v.(!cur) + 1 && dist_u.(w) = l - dist_v.(w)
                   && !next < 0
                then next := w)
              (Graph.neighbors g !cur);
            cur := !next
          done;
          !cur
        in
        if v' < 0 then None
        else begin
          (* dominator x of v' in v's tree: d_H(v, x) <= r *)
          let x = ref (-1) in
          Array.iter
            (fun w ->
              if d_h_from_v.(w) >= 0 && d_h_from_v.(w) <= r
                 && (!x < 0 || d_h_from_v.(w) < d_h_from_v.(!x))
              then x := w)
            (Graph.neighbors g v');
          if !x < 0 then None
          else
            match route u !x with
            | None -> None
            | Some prefix -> Some (simplify (prefix @ List.tl (h_path_from !x)))
        end
      end
    end
  in
  route u v
