open Rs_graph
module Setcover = Rs_setcover.Setcover
module Obs = Rs_obs.Obs

let c_trees = Obs.counter "domtree/trees_built"
let c_layers = Obs.counter "domtree/layers"
let h_candidates = Obs.histogram "domtree/candidate_set"

let is_dominating g ~r ~beta t =
  let u = Tree.root t in
  Tree.edges_in g t
  && begin
       let dist = Bfs.dist ~radius:r g u in
       let ok = ref true in
       Graph.iter_vertices
         (fun v ->
           let r' = dist.(v) in
           if r' >= 2 && r' <= r then begin
             let dominated =
               Array.exists
                 (fun x -> Tree.mem t x && Tree.depth t x <= r' - 1 + beta)
                 (Graph.neighbors g v)
             in
             if not dominated then ok := false
           end)
         g;
       !ok
     end

(* Sphere/annulus covering instance for one layer: elements are the
   sphere nodes, sets are the balls B(x, 1) for annulus candidates x.
   [B(x,1)] includes x itself, which matters when beta >= 1 and x lies
   on the sphere. *)
let layer_cover g dist r' beta =
  let sphere = ref [] and annulus = ref [] in
  Graph.iter_vertices
    (fun v ->
      if dist.(v) = r' then sphere := v :: !sphere;
      if dist.(v) >= r' - 1 && dist.(v) <= r' - 1 + beta then annulus := v :: !annulus)
    g;
  let sphere = Array.of_list (List.rev !sphere) in
  let annulus = Array.of_list (List.rev !annulus) in
  let elt_of = Hashtbl.create (Array.length sphere) in
  Array.iteri (fun i v -> Hashtbl.replace elt_of v i) sphere;
  let ball_of x =
    let acc = ref [] in
    (match Hashtbl.find_opt elt_of x with Some i -> acc := [ i ] | None -> ());
    Array.iter
      (fun w -> match Hashtbl.find_opt elt_of w with Some i -> acc := i :: !acc | None -> ())
      (Graph.neighbors g x);
    Array.of_list !acc
  in
  let sets = Array.map ball_of annulus in
  (sphere, annulus, { Setcover.universe = Array.length sphere; sets })

let gdy g ~r ~beta u =
  if r < 1 || beta < 0 then invalid_arg "Dom_tree.gdy: need r >= 1, beta >= 0";
  Obs.incr c_trees;
  let dist = Bfs.dist ~radius:(r + beta) g u in
  let bfs_parent = Bfs.parents ~radius:(r + beta) g u in
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  for r' = 2 to r do
    let sphere, annulus, inst = layer_cover g dist r' beta in
    Obs.incr c_layers;
    Obs.observe h_candidates (float_of_int (Array.length annulus));
    (* greedy cover, grafting the shortest path per chosen annulus node *)
    let alive = Array.make (Array.length sphere) true in
    let remaining = ref (Array.length sphere) in
    let used = Array.make (Array.length annulus) false in
    let coverage s =
      Array.fold_left (fun acc e -> if alive.(e) then acc + 1 else acc) 0 inst.Setcover.sets.(s)
    in
    while !remaining > 0 do
      let best = ref (-1) and best_cov = ref 0 in
      Array.iteri
        (fun s _ ->
          if not used.(s) then begin
            let c = coverage s in
            if c > !best_cov then begin
              best := s;
              best_cov := c
            end
          end)
        annulus;
      (* The paper argues a positive-coverage candidate always exists
         while S is non-empty (the neighbor of an undominated sphere
         node on a shortest path qualifies). *)
      assert (!best >= 0);
      used.(!best) <- true;
      Tree.graft_parents t bfs_parent annulus.(!best);
      Array.iter
        (fun e ->
          if alive.(e) then begin
            alive.(e) <- false;
            decr remaining
          end)
        inst.Setcover.sets.(!best)
    done
  done;
  t

let mis g ~r u =
  if r < 1 then invalid_arg "Dom_tree.mis: need r >= 1";
  Obs.incr c_trees;
  let dist = Bfs.dist ~radius:r g u in
  let bfs_parent = Bfs.parents ~radius:r g u in
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  (* B = B(u, r) \ B(u, 1), processed by increasing (distance, id). *)
  let b = ref [] in
  Graph.iter_vertices (fun v -> if dist.(v) >= 2 && dist.(v) <= r then b := v :: !b) g;
  let order = Array.of_list !b in
  Array.sort (fun a b -> compare (dist.(a), a) (dist.(b), b)) order;
  Obs.observe h_candidates (float_of_int (Array.length order));
  let alive = Array.make (Graph.n g) false in
  Array.iter (fun v -> alive.(v) <- true) order;
  Array.iter
    (fun x ->
      if alive.(x) then begin
        Tree.graft_parents t bfs_parent x;
        alive.(x) <- false;
        Array.iter (fun w -> alive.(w) <- false) (Graph.neighbors g x)
      end)
    order;
  t

let optimal_size_star ?limit g u =
  let dist = Bfs.dist ~radius:2 g u in
  let _, _, inst = layer_cover g dist 2 0 in
  if inst.Setcover.universe = 0 then Some 0
  else
    Option.map List.length (Setcover.exact ?limit inst ~k:1)

let optimal_lower_bound ?limit g ~r ~beta u =
  let dist = Bfs.dist ~radius:(r + beta) g u in
  let exception Blowup in
  try
    let per_layer = ref [] in
    for r' = 2 to r do
      let _, _, inst = layer_cover g dist r' beta in
      if inst.Setcover.universe > 0 then
        match Setcover.exact ?limit inst ~k:1 with
        | Some cover -> per_layer := (r', List.length cover) :: !per_layer
        | None -> raise Blowup
    done;
    let depth_bound =
      List.fold_left
        (fun acc (r', c) -> max acc (r' - 1 + ((c - 1 + beta) / (1 + beta))))
        0 !per_layer
    in
    let sum_bound =
      let s = List.fold_left (fun acc (_, c) -> acc + c) 0 !per_layer in
      (s + beta) / (1 + beta)
    in
    Some (max depth_bound sum_bound)
  with Blowup -> None
