open Rs_graph
module Setcover = Rs_setcover.Setcover
module Obs = Rs_obs.Obs

let c_trees = Obs.counter "domtree/trees_built"
let c_layers = Obs.counter "domtree/layers"
let h_candidates = Obs.histogram "domtree/candidate_set"

let is_dominating g ~r ~beta t =
  let u = Tree.root t in
  Tree.edges_in g t
  && begin
       let dist = Bfs.dist ~radius:r g u in
       let ok = ref true in
       Graph.iter_vertices
         (fun v ->
           let r' = dist.(v) in
           if r' >= 2 && r' <= r then begin
             let dominated =
               Array.exists
                 (fun x -> Tree.mem t x && Tree.depth t x <= r' - 1 + beta)
                 (Graph.neighbors g v)
             in
             if not dominated then ok := false
           end)
         g;
       !ok
     end

(* Sphere/annulus covering instance for one layer: elements are the
   sphere nodes, sets are the balls B(x, 1) for annulus candidates x.
   [B(x,1)] includes x itself, which matters when beta >= 1 and x lies
   on the sphere. *)
let layer_cover g dist r' beta =
  let sphere = ref [] and annulus = ref [] in
  Graph.iter_vertices
    (fun v ->
      if dist.(v) = r' then sphere := v :: !sphere;
      if dist.(v) >= r' - 1 && dist.(v) <= r' - 1 + beta then annulus := v :: !annulus)
    g;
  let sphere = Array.of_list (List.rev !sphere) in
  let annulus = Array.of_list (List.rev !annulus) in
  let elt_of = Hashtbl.create (Array.length sphere) in
  Array.iteri (fun i v -> Hashtbl.replace elt_of v i) sphere;
  let ball_of x =
    let acc = ref [] in
    (match Hashtbl.find_opt elt_of x with Some i -> acc := [ i ] | None -> ());
    Array.iter
      (fun w -> match Hashtbl.find_opt elt_of w with Some i -> acc := i :: !acc | None -> ())
      (Graph.neighbors g x);
    Array.of_list !acc
  in
  let sets = Array.map ball_of annulus in
  (sphere, annulus, { Setcover.universe = Array.length sphere; sets })

let scratch_or = function Some s -> s | None -> Bfs.Scratch.create ()

(* The explored ball grouped by BFS level, each level sorted by id so
   downstream scans match the historical iter_vertices order. *)
let levels_of s ~max_dist =
  let levels = Array.make (max_dist + 1) [] in
  for i = Bfs.Scratch.visited_count s - 1 downto 0 do
    let v = Bfs.Scratch.visited s i in
    let d = Bfs.Scratch.dist s v in
    levels.(d) <- v :: levels.(d)
  done;
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort Int.compare a;
      a)
    levels

(* Edge-emitting core of Algorithm 1: everything after the traversal,
   abstracted over how tree membership is stored ([mem]/[add], where
   [add p c] records edge (p, c) and makes [c] a member). The Tree.t
   wrapper below instantiates it with a real [Tree.t]; the batched
   builder ([Sharded]) uses stamped membership arrays and int edge
   accumulators, skipping the O(n) [Tree.create] that dominates at
   n >= 10^5. [levels] is the explored ball grouped by BFS level
   (levels 0..r+beta, each id-sorted); [parent_of] the canonical BFS
   parent within the ball. *)
let gdy_emit g ~r ~beta ~levels ~parent_of ~mem ~add =
  Obs.incr c_trees;
  let rec graft v =
    if not (mem v) then begin
      let p = parent_of v in
      graft p;
      add p v
    end
  in
  for r' = 2 to r do
    let sphere = levels.(r') in
    let annulus =
      let parts = ref [] and total = ref 0 in
      for d = min (r' - 1 + beta) (r + beta) downto r' - 1 do
        parts := levels.(d) :: !parts;
        total := !total + Array.length levels.(d)
      done;
      let a = Array.concat !parts in
      (* merged annulus must be id-sorted: the greedy tie-break is
         "smallest candidate id", realized as smallest index *)
      Array.sort Int.compare a;
      assert (Array.length a = !total);
      a
    in
    Obs.incr c_layers;
    Obs.observe h_candidates (float_of_int (Array.length annulus));
    let elt_of = Hashtbl.create (Array.length sphere) in
    Array.iteri (fun i v -> Hashtbl.replace elt_of v i) sphere;
    let ball_of x =
      let acc = ref [] in
      (match Hashtbl.find_opt elt_of x with Some i -> acc := [ i ] | None -> ());
      Graph.iter_neighbors g x (fun w ->
          match Hashtbl.find_opt elt_of w with Some i -> acc := i :: !acc | None -> ());
      Array.of_list !acc
    in
    let inst = { Setcover.universe = Array.length sphere; sets = Array.map ball_of annulus } in
    (* lazy-greedy cover, grafting the shortest path per chosen annulus
       node (same picks, same order as the historical eager rescan) *)
    let picks = Setcover.greedy inst in
    let covered = Array.make (Array.length sphere) false in
    let ncov = ref 0 in
    List.iter
      (fun sid ->
        graft annulus.(sid);
        Array.iter
          (fun e ->
            if not covered.(e) then begin
              covered.(e) <- true;
              incr ncov
            end)
          inst.Setcover.sets.(sid))
      picks;
    (* The paper argues a positive-coverage candidate always exists
       while S is non-empty (the neighbor of an undominated sphere
       node on a shortest path qualifies) — so greedy covers fully. *)
    assert (!ncov = Array.length sphere)
  done

let gdy ?scratch g ~r ~beta u =
  if r < 1 || beta < 0 then invalid_arg "Dom_tree.gdy: need r >= 1, beta >= 0";
  let s = scratch_or scratch in
  (* one traversal yields both distances and canonical parents *)
  Bfs.Scratch.run ~radius:(r + beta) s g u;
  let levels = levels_of s ~max_dist:(r + beta) in
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  gdy_emit g ~r ~beta ~levels
    ~parent_of:(Bfs.Scratch.parent s)
    ~mem:(Tree.mem t)
    ~add:(fun p c -> Tree.add_edge t ~parent:p ~child:c);
  t

(* Edge-emitting core of Algorithm 2; [mem]/[add] as in {!gdy_emit},
   [dead_mem]/[dead_add] the MIS "removed" set. [levels] as in
   {!gdy_emit} with levels 0..r: concatenating levels 2..r in order
   is exactly the (distance, id)-increasing processing order. *)
let mis_emit g ~r ~levels ~parent_of ~mem ~add ~dead_mem ~dead_add =
  Obs.incr c_trees;
  let rec graft v =
    if not (mem v) then begin
      let p = parent_of v in
      graft p;
      add p v
    end
  in
  let order = Array.concat (List.init (max 0 (r - 1)) (fun i -> levels.(i + 2))) in
  Obs.observe h_candidates (float_of_int (Array.length order));
  Array.iter
    (fun x ->
      if not (dead_mem x) then begin
        graft x;
        dead_add x;
        Graph.iter_neighbors g x dead_add
      end)
    order

let mis ?scratch g ~r u =
  if r < 1 then invalid_arg "Dom_tree.mis: need r >= 1";
  let s = scratch_or scratch in
  Bfs.Scratch.run ~radius:r s g u;
  let levels = levels_of s ~max_dist:r in
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let dead = Bfs.Scratch.marks s in
  Bfs.Marks.clear dead;
  mis_emit g ~r ~levels
    ~parent_of:(Bfs.Scratch.parent s)
    ~mem:(Tree.mem t)
    ~add:(fun p c -> Tree.add_edge t ~parent:p ~child:c)
    ~dead_mem:(Bfs.Marks.mem dead)
    ~dead_add:(Bfs.Marks.set dead);
  t

let optimal_size_star ?limit g u =
  let dist = Bfs.dist ~radius:2 g u in
  let _, _, inst = layer_cover g dist 2 0 in
  if inst.Setcover.universe = 0 then Some 0
  else
    Option.map List.length (Setcover.exact ?limit inst ~k:1)

let optimal_lower_bound ?limit g ~r ~beta u =
  let dist = Bfs.dist ~radius:(r + beta) g u in
  let exception Blowup in
  try
    let per_layer = ref [] in
    for r' = 2 to r do
      let _, _, inst = layer_cover g dist r' beta in
      if inst.Setcover.universe > 0 then
        match Setcover.exact ?limit inst ~k:1 with
        | Some cover -> per_layer := (r', List.length cover) :: !per_layer
        | None -> raise Blowup
    done;
    let depth_bound =
      List.fold_left
        (fun acc (r', c) -> max acc (r' - 1 + ((c - 1 + beta) / (1 + beta))))
        0 !per_layer
    in
    let sum_bound =
      let s = List.fold_left (fun acc (_, c) -> acc + c) 0 !per_layer in
      (s + beta) / (1 + beta)
    in
    Some (max depth_bound sum_bound)
  with Blowup -> None
