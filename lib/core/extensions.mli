(** Extensions beyond the paper's theorems (its "concluding remarks").

    Two directions the paper leaves open, built and evaluated here:

    {b Edge-connectivity.} The conclusion suggests the results "seem
    possible to extend" to edge-disjoint paths. This is not automatic:
    the union of vertex-k-connecting dominating trees is {e not} an
    edge-k-connecting remote-spanner — {!bowtie} is a 5-node
    counterexample (a cut vertex with edge redundancy; the depth-2
    trees never keep the far side's second entry edge). We therefore
    provide {!edge_repair}, a sound construction: start from any base
    sub-graph and add, for every violating pair, the edges of a
    minimum-length edge-disjoint path system of G — one pass yields an
    edge-k-connecting (1,0)-remote-spanner by construction. Experiment
    E13 measures how few extra edges the repair needs.

    {b Sparse k-connecting (1+eps, O(1)).} The paper asks for sparse
    k-connecting remote-spanners with multiplicative stretch 1+eps for
    k > 1. {!hybrid} unions the Theorem-1 MIS trees with the
    Algorithm-5 trees; experiment E14 measures its empirical
    k-connecting stretch (no guarantee is claimed). *)

open Rs_graph

val bowtie : unit -> Graph.t
(** Two triangles sharing a vertex: vertices 0-1-2 and 2-3-4. The
    pair (0, 4) has one internally vertex-disjoint path but two
    edge-disjoint ones (d^2_edge = 6); every vertex-based construction
    in this library drops edge 3-4 (and 0-1), losing the second
    edge-disjoint path. *)

val edge_repair : Graph.t -> k:int -> base:Edge_set.t -> Edge_set.t * int
(** [edge_repair g ~k ~base] returns [(h, added)] where [h] extends
    [base] into an edge-k-connecting (1,0)-remote-spanner and [added]
    counts the extra edges. For every ordered pair (s,t) violating the
    edge-k-connecting (1,0) stretch it inserts the edges of minimum
    total-length systems of [k'] edge-disjoint s-t paths of G (for
    each feasible [k' <= k]), which pins [d^k'_{H_s}(s,t)] to
    [d^k'_G(s,t)] permanently; edges only ever get added, so a single
    pass suffices. Worst case O(n^2) flow computations. *)

val edge_two_connecting : Graph.t -> Edge_set.t
(** [edge_repair ~k:2] seeded with {!Remote_spanner.two_connecting}:
    the edge-connectivity analogue of Theorem 3's construction. *)

val hybrid : Graph.t -> eps:float -> k:int -> Edge_set.t
(** Union of {!Remote_spanner.low_stretch}[ ~eps] and
    {!Remote_spanner.k_connecting_mis}[ ~k] — the candidate explored
    for the open problem. Linear size on doubling UBGs (both parts
    are); its k-connecting stretch is measured, not proved. *)
