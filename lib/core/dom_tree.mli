(** (r, beta)-dominating trees (paper, Section 1.1 and 2.2).

    Given a node [u], an (r, beta)-dominating tree T for [u] is a tree
    sub-graph rooted at [u] such that every node [v] at distance [r']
    from [u], for [2 <= r' <= r], has a neighbor [x] in [V(T)] with
    [d_T(u, x) <= r' - 1 + beta]. Unions of such trees over all roots
    are exactly the low-stretch remote-spanners (Proposition 1).

    Two constructions from the paper:
    - {!gdy}: Algorithm 1 (DomTreeGdy), a layered greedy set cover —
      edges within a factor [(1+beta)(r+beta-1)(1+log Delta)] of the
      optimal dominating tree (Proposition 2);
    - {!mis}: Algorithm 2 (DomTreeMIS), greedy maximal independent set
      by increasing distance — [O(r^(p+1))] edges on unit ball graphs
      of doubling dimension [p] (Proposition 3); only for [beta = 1]. *)

open Rs_graph

val is_dominating : Graph.t -> r:int -> beta:int -> Tree.t -> bool
(** Literal check of the definition above, plus that the tree's edges
    belong to the graph and its root paths are genuine. *)

val gdy : ?scratch:Bfs.Scratch.t -> Graph.t -> r:int -> beta:int -> int -> Tree.t
(** [gdy g ~r ~beta u]: Algorithm 1. For each layer [r' = 2..r] it
    covers the sphere S = {v : d(u,v) = r'} greedily with balls
    [B(x,1)] for x in the annulus [r'-1 <= d(u,x) <= r'-1+beta],
    grafting a shortest path u..x per pick. Ties broken by smallest
    vertex id (deterministic). Requires [r >= 1], [beta >= 0].

    One combined BFS supplies distances and parents; the cover is a
    lazy greedy ({!Rs_setcover.Setcover.greedy}). Pass [~scratch] to
    reuse traversal state across many roots — per-tree work is then
    proportional to the explored ball, not to [n]. The scratch must
    not be shared between domains. *)

val mis : ?scratch:Bfs.Scratch.t -> Graph.t -> r:int -> int -> Tree.t
(** [mis g ~r u]: Algorithm 2 (beta fixed to 1). Greedily selects a
    maximal independent set of [B(u,r) \ B(u,1)] by increasing
    distance from [u] (ties by id) and grafts shortest paths.
    [~scratch] as in {!gdy}. *)

(** {2 Edge-emitting cores}

    Everything after the root's traversal, abstracted over edge and
    membership storage so the batched builder ([Rs_core.Sharded]) can
    run them against stamped arrays and int edge accumulators instead
    of an O(n) [Tree.t] per root. [levels] is the explored ball
    grouped by BFS level (index = distance, each level sorted by id —
    what {!Bfs.Scratch} and [Msbfs] both produce); [parent_of] maps a
    non-root ball vertex to its canonical BFS parent; [add p c]
    records tree edge (p, c) and must make [c] a member of [mem].
    Initially exactly the root is a member. Emitted edges and every
    [Rs_obs] metric are identical to the [Tree.t] wrappers above. *)

val gdy_emit :
  Graph.t ->
  r:int ->
  beta:int ->
  levels:int array array ->
  parent_of:(int -> int) ->
  mem:(int -> bool) ->
  add:(int -> int -> unit) ->
  unit
(** Core of {!gdy}; [levels] must cover distances [0 .. r + beta].
    Assumes [r >= 1 && beta >= 0] (the wrapper validates). *)

val mis_emit :
  Graph.t ->
  r:int ->
  levels:int array array ->
  parent_of:(int -> int) ->
  mem:(int -> bool) ->
  add:(int -> int -> unit) ->
  dead_mem:(int -> bool) ->
  dead_add:(int -> unit) ->
  unit
(** Core of {!mis}; [levels] must cover distances [0 .. r], and
    [dead_mem]/[dead_add] expose an initially-empty vertex set used
    for the independent-set removals. Assumes [r >= 1]. *)

val optimal_size_star : ?limit:int -> Graph.t -> int -> int option
(** Exact minimum edge count of a (2, 0)-dominating tree for [u].
    For r = 2, beta = 0 such a tree is a star of common neighbors, so
    the optimum is exactly a minimum set cover of the 2-sphere by
    neighbor balls — solved exactly by branch and bound ([limit] caps
    search nodes). This is the case where Proposition 2's ratio
    specializes to [1 + log Delta]; experiment E11 measures the real
    ratio against this optimum. *)

val optimal_lower_bound : ?limit:int -> Graph.t -> r:int -> beta:int -> int -> int option
(** Lower bound on the edges of any (r, beta)-dominating tree for [u].
    Any such tree must contain, for each layer [r'], enough annulus
    vertices to dominate the [r']-sphere (a node at depth d of the tree
    costs d path edges shared with at most 1+beta layers). The bound
    combines per-layer exact minimum covers [c_r'] as
    [max(max_r' (r'-1 + ceil((c_r'-1)/(1+beta))),
         ceil(sum_r' c_r' / (1+beta)))].
    Exact covers come from branch and bound ([limit] caps nodes; [None]
    on blow-up). Used to report ratio upper estimates for r > 2. *)
