open Rs_graph
module Obs = Rs_obs.Obs

(* Batched construction: roots are processed [Msbfs.width] at a time
   through the bit-parallel multi-source BFS, batches are fanned over
   domains by the work-stealing driver, and every domain accumulates
   canonical edge ids in a flat int array merged into one Edge_set at
   the end — no O(n) Tree.t per root, no per-tree Edge_set. This is
   what takes construction from n = 2000 to n = 10^5..10^6; entry
   points in [Remote_spanner] (domains = 1) and [Parallel] route here.

   Edge sets are identical to the per-root sequential reference for
   any domain count, batch size or root order: each root's tree
   depends only on its ball, tie-breaks are by vertex id everywhere,
   and the emit cores are the same code the Tree.t wrappers run. *)

type strategy =
  | Gdy of { r : int; beta : int }
  | Mis of { r : int }
  | Gdy_k of { k : int }

let default_domains () = min 8 (Domain.recommended_domain_count ())

(* Same counter the sequential union uses, so the batched path's
   metrics sum to the sequential run's (asserted by a property test).
   Domain-balance histograms are observed from the coordinating thread
   after joins; the measurements themselves happen inside each domain. *)
let c_trees = Obs.counter "core/trees_built"
let h_domain_wall = Obs.histogram "parallel/domain_wall_s"
let h_domain_items = Obs.histogram "parallel/domain_items"

let record_domain items dt =
  if Obs.enabled () then begin
    Obs.observe h_domain_items (float_of_int items);
    Obs.observe h_domain_wall dt
  end

(* Work-stealing over the range [0, n): domains repeatedly claim the
   next chunk off a shared atomic cursor, so a domain that lands on
   cheap items simply claims more chunks instead of idling at a static
   block boundary. The default chunk is big enough to amortize the
   fetch-and-add, small enough that the tail imbalance is bounded by
   one chunk per domain; pass [~chunk] when items are already coarse
   (a batch of [Msbfs.width] roots claims one index at a time). *)
let chunk_size n domains = max 1 (min 64 (n / (domains * 8)))

(* Each domain runs [worker claim]: a full claim-process loop plus any
   per-domain finalization (e.g. merging its accumulator), returning
   how many items it processed. [claim] hands out chunks until the
   range is exhausted or [stop ()] aborts the sweep
   (claimed-but-unprocessed chunks are then fine to drop). The calling
   domain doubles as a worker, so [domains] counts it. *)
let drive ?chunk ~n ~domains ~stop worker =
  let cursor = Atomic.make 0 in
  let chunk = match chunk with Some c -> max 1 c | None -> chunk_size n domains in
  let claim () =
    if stop () then None
    else
      let lo = Atomic.fetch_and_add cursor chunk in
      if lo >= n then None else Some (lo, min (n - 1) (lo + chunk - 1))
  in
  let run_domain () =
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let items = worker claim in
    let dt = if Obs.enabled () then Obs.now () -. t0 else 0.0 in
    (items, dt)
  in
  let handles = List.init (domains - 1) (fun _ -> Domain.spawn run_domain) in
  let own = run_domain () in
  let per_domain = own :: List.map Domain.join handles in
  List.iter (fun (items, dt) -> record_domain items dt) per_domain

(* Multi-restart BFS visit order: consecutive roots are graph-close,
   so the balls of one [Msbfs] batch overlap and each shared vertex is
   scanned once per sweep instead of once per root. Works for any
   graph, no coordinates needed (UDG callers can do better with
   [Rs_geometry.Proximity.grid_order]). The order array doubles as the
   BFS queue. Deliberately not recorded as bfs/runs: it is scheduling,
   not a traversal the sequential reference performs. *)
let locality_order g =
  let n = Graph.n g in
  let order = Array.make n 0 in
  let seen = Array.make n false in
  let off, nbr = Graph.csr g in
  let tail = ref 0 in
  for src = 0 to n - 1 do
    if not seen.(src) then begin
      seen.(src) <- true;
      order.(!tail) <- src;
      incr tail;
      let head = ref (!tail - 1) in
      while !head < !tail do
        let u = order.(!head) in
        incr head;
        for i = off.(u) to off.(u + 1) - 1 do
          let v = nbr.(i) in
          if not seen.(v) then begin
            seen.(v) <- true;
            order.(!tail) <- v;
            incr tail
          end
        done
      done
    end
  done;
  order

let radius_of = function
  | Gdy { r; beta } -> r + beta
  | Mis { r } -> r
  | Gdy_k _ -> 2

let validate = function
  | Gdy { r; beta } ->
      if r < 1 || beta < 0 then invalid_arg "Sharded.build: need r >= 1, beta >= 0"
  | Mis { r } -> if r < 1 then invalid_arg "Sharded.build: need r >= 1"
  | Gdy_k { k } -> if k < 1 then invalid_arg "Sharded.build: need k >= 1"

(* Per-domain state. Distance, membership and local-remap arrays are
   generation-stamped so per-root reset is O(1); [acc] packs emitted
   canonical edge ids flat. *)
type ctx = {
  ms : Msbfs.t;
  dist : int array;
  dstamp : int array;
  mutable dgen : int;
  memb : int array; (* tree membership, stamped per root *)
  mutable mgen : int;
  dead : Bfs.Marks.t; (* MIS removals *)
  q : int array; (* halo-collection queue (local mode) *)
  lmap : int array; (* global id -> local id, stamped per batch *)
  lstamp : int array;
  mutable lgen : int;
  mutable acc : int array;
  mutable nacc : int;
  mutable unsafe : int list; (* roots owed to the boundary-repair pass *)
}

let create_ctx n =
  {
    ms = Msbfs.create ();
    dist = Array.make n 0;
    dstamp = Array.make n 0;
    dgen = 0;
    memb = Array.make n 0;
    mgen = 0;
    dead = Bfs.Marks.create ();
    q = Array.make n 0;
    lmap = Array.make n 0;
    lstamp = Array.make n 0;
    lgen = 0;
    acc = Array.make 1024 0;
    nacc = 0;
    unsafe = [];
  }

let push_acc ctx id =
  if ctx.nacc >= Array.length ctx.acc then begin
    let fresh = Array.make (2 * Array.length ctx.acc) 0 in
    Array.blit ctx.acc 0 fresh 0 ctx.nacc;
    ctx.acc <- fresh
  end;
  ctx.acc.(ctx.nacc) <- id;
  ctx.nacc <- ctx.nacc + 1

(* sort + dedup the domain's flat id accumulator, then set bits in the
   shared result under the caller's lock *)
let merge_acc ctx result =
  let a = Array.sub ctx.acc 0 ctx.nacc in
  Array.sort Int.compare a;
  let prev = ref (-1) in
  Array.iter
    (fun id ->
      if id <> !prev then begin
        Edge_set.add_id result id;
        prev := id
      end)
    a;
  ctx.nacc <- 0

(* distances of one slot's ball into the stamped per-domain array *)
let fill_dist ctx s =
  ctx.dgen <- ctx.dgen + 1;
  let gen = ctx.dgen in
  let dist = ctx.dist and dstamp = ctx.dstamp in
  Msbfs.iter_visited ctx.ms s (fun v d ->
      dstamp.(v) <- gen;
      dist.(v) <- d)

(* Canonical parent of [v] (smallest-id neighbor one level closer):
   the CSR range is id-sorted, so the first stamped neighbor at
   [dist v - 1] is the same parent [Bfs.Scratch.run] computes. *)
let parent_of_csr off nbr ctx v =
  let dv = ctx.dist.(v) - 1 in
  let gen = ctx.dgen in
  let dist = ctx.dist and dstamp = ctx.dstamp in
  let res = ref (-1) in
  let i = ref off.(v) and hi = off.(v + 1) in
  while !res < 0 && !i < hi do
    let w = nbr.(!i) in
    if dstamp.(w) = gen && dist.(w) = dv then res := w;
    incr i
  done;
  !res

(* One root's tree, emitted from its Msbfs slot against graph [gg]
   (the host graph, or a shard's induced sub-graph in local mode —
   [add_edge] translates back to host ids). *)
let process_slot gg ctx strat s ~add_edge =
  let root = Msbfs.source ctx.ms s in
  Obs.incr c_trees;
  ctx.mgen <- ctx.mgen + 1;
  let mgen = ctx.mgen and memb = ctx.memb in
  memb.(root) <- mgen;
  let mem v = memb.(v) = mgen in
  let add p c =
    add_edge p c;
    memb.(c) <- mgen
  in
  match strat with
  | Gdy_k { k } ->
      let sphere = (Msbfs.levels ctx.ms s ~max_dist:2).(2) in
      Dom_tree_k.gdy_k_emit gg ~k ~sphere root ~add
  | Gdy { r; beta } ->
      fill_dist ctx s;
      let off, nbr = Graph.csr gg in
      let levels = Msbfs.levels ctx.ms s ~max_dist:(r + beta) in
      Dom_tree.gdy_emit gg ~r ~beta ~levels ~parent_of:(parent_of_csr off nbr ctx) ~mem ~add
  | Mis { r } ->
      fill_dist ctx s;
      let off, nbr = Graph.csr gg in
      let levels = Msbfs.levels ctx.ms s ~max_dist:r in
      Bfs.Marks.clear ctx.dead;
      Dom_tree.mis_emit gg ~r ~levels ~parent_of:(parent_of_csr off nbr ctx) ~mem ~add
        ~dead_mem:(Bfs.Marks.mem ctx.dead) ~dead_add:(Bfs.Marks.set ctx.dead)

let process_batch g ctx strat roots =
  Msbfs.run ~radius:(radius_of strat) ctx.ms g roots;
  for s = 0 to Array.length roots - 1 do
    process_slot g ctx strat s ~add_edge:(fun p c -> push_acc ctx (Graph.edge_id g p c))
  done

(* Local (shard-isolated) batch: materialize the induced sub-graph on
   the batch's roots plus a (radius-1)-halo and run the whole batch
   against it — the halo fits a cache level when the host graph does
   not. A root is safe iff no vertex its traversal expanded (local
   dist < radius) is on the fringe (had a neighbor clipped away): then
   its local ball, levels and parents are provably identical to the
   global ones and the emitted tree is exact. Clipped roots are queued
   for the boundary-repair pass. The halo is deliberately radius-1,
   not radius: a full-radius halo would make every root safe but costs
   one more level of expansion per shard than the repair pass saves. *)
let process_batch_local g ctx strat roots =
  let radius = radius_of strat in
  let off, nbr = Graph.csr g in
  (* roots + (radius-1)-halo in one bounded multi-source sweep (not a
     logical traversal of the construction: no bfs/runs recorded) *)
  ctx.dgen <- ctx.dgen + 1;
  let gen = ctx.dgen in
  let dist = ctx.dist and dstamp = ctx.dstamp and q = ctx.q in
  let tail = ref 0 in
  Array.iter
    (fun r_ ->
      if dstamp.(r_) <> gen then begin
        dstamp.(r_) <- gen;
        dist.(r_) <- 0;
        q.(!tail) <- r_;
        incr tail
      end)
    roots;
  let head = ref 0 in
  while !head < !tail do
    let u = q.(!head) in
    incr head;
    let du = dist.(u) in
    if du < radius - 1 then
      for i = off.(u) to off.(u + 1) - 1 do
        let v = nbr.(i) in
        if dstamp.(v) <> gen then begin
          dstamp.(v) <- gen;
          dist.(v) <- du + 1;
          q.(!tail) <- v;
          incr tail
        end
      done
  done;
  let verts = Array.sub q 0 !tail in
  (* ascending remap keeps local id order = global id order, so every
     smallest-id tie-break picks the same vertex in both numberings *)
  Array.sort Int.compare verts;
  let k = Array.length verts in
  ctx.lgen <- ctx.lgen + 1;
  let lgen = ctx.lgen in
  let lmap = ctx.lmap and lstamp = ctx.lstamp in
  Array.iteri
    (fun i v ->
      lmap.(v) <- i;
      lstamp.(v) <- lgen)
    verts;
  let fringe = Array.make k false in
  let medges = ref 0 in
  for i = 0 to k - 1 do
    let v = verts.(i) in
    let degl = ref 0 in
    for j = off.(v) to off.(v + 1) - 1 do
      let w = nbr.(j) in
      if lstamp.(w) = lgen then begin
        incr degl;
        if lmap.(w) > i then incr medges
      end
    done;
    fringe.(i) <- !degl < off.(v + 1) - off.(v)
  done;
  let edges = Array.make !medges (0, 0) in
  let e = ref 0 in
  for i = 0 to k - 1 do
    let v = verts.(i) in
    for j = off.(v) to off.(v + 1) - 1 do
      let w = nbr.(j) in
      if lstamp.(w) = lgen && lmap.(w) > i then begin
        edges.(!e) <- (i, lmap.(w));
        incr e
      end
    done
  done;
  (* outer index ascending, CSR neighbors ascending, monotone remap:
     the array is canonical and lex-sorted by construction *)
  let lg = Graph.of_canonical ~validate:false ~n:k edges in
  let lroots = Array.map (fun r_ -> lmap.(r_)) roots in
  Msbfs.run ~radius ctx.ms lg lroots;
  for s = 0 to Array.length lroots - 1 do
    let safe = ref true in
    Msbfs.iter_visited ctx.ms s (fun v d -> if d < radius && fringe.(v) then safe := false);
    if !safe then
      process_slot lg ctx strat s
        ~add_edge:(fun p c -> push_acc ctx (Graph.edge_id g verts.(p) verts.(c)))
    else ctx.unsafe <- verts.(Msbfs.source ctx.ms s) :: ctx.unsafe
  done

let build ?domains ?order ?chunk ?(local = false) g strat =
  validate strat;
  let n = Graph.n g in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let domains = if n < 64 then 1 else domains in
  let chunk =
    match chunk with Some c -> max 1 (min Msbfs.width c) | None -> Msbfs.width
  in
  let order =
    match order with
    | Some o ->
        (* a duplicate entry would silently drop the missing roots'
           trees from the spanner, so check for a true permutation *)
        if Array.length o <> n then
          invalid_arg "Sharded.build: order must be a permutation of the vertex range";
        let seen = Bytes.make n '\000' in
        Array.iter
          (fun v ->
            if v < 0 || v >= n || Bytes.get seen v <> '\000' then
              invalid_arg "Sharded.build: order must be a permutation of the vertex range";
            Bytes.set seen v '\001')
          o;
        o
    | None -> locality_order g
  in
  let result = Edge_set.create g in
  let mutex = Mutex.create () in
  let boundary = ref [] in
  let nbatches = (n + chunk - 1) / chunk in
  drive ~chunk:1 ~n:nbatches ~domains
    ~stop:(fun () -> false)
    (fun claim ->
      let ctx = create_ctx n in
      let items = ref 0 in
      let rec loop () =
        match claim () with
        | None -> ()
        | Some (lo, hi) ->
            for b = lo to hi do
              let blo = b * chunk in
              let len = min chunk (n - blo) in
              let roots = Array.sub order blo len in
              if local then process_batch_local g ctx strat roots
              else process_batch g ctx strat roots;
              items := !items + len
            done;
            loop ()
      in
      loop ();
      Mutex.lock mutex;
      merge_acc ctx result;
      boundary := List.rev_append ctx.unsafe !boundary;
      Mutex.unlock mutex;
      !items);
  (* Boundary repair: roots whose shard ball was clipped re-run in
     global batches on the calling domain. The edge set is already
     deterministic (each root's tree is a function of the graph), so
     the sort only stabilizes batching for metrics. *)
  (match !boundary with
  | [] -> ()
  | l ->
      let roots = Array.of_list l in
      Array.sort Int.compare roots;
      let ctx = create_ctx n in
      let nb = Array.length roots in
      let i = ref 0 in
      while !i < nb do
        let len = min Msbfs.width (nb - !i) in
        process_batch g ctx strat (Array.sub roots !i len);
        i := !i + len
      done;
      merge_acc ctx result);
  result
