open Rs_graph

let bowtie () = Graph.make ~n:5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ]

let edge_repair g ~k ~base =
  if k < 1 then invalid_arg "Extensions.edge_repair: k < 1";
  let h = Edge_set.copy base in
  let added = ref 0 in
  let add_path p =
    let rec loop = function
      | a :: (b :: _ as rest) ->
          if not (Edge_set.mem h a b) then begin
            Edge_set.add h a b;
            incr added
          end;
          loop rest
      | [ _ ] | [] -> ()
    in
    loop p
  in
  let n = Graph.n g in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t && not (Graph.mem_edge g s t) then begin
        let profile_g = Edge_disjoint.dk_profile g ~kmax:k s t in
        let kmax_g = Array.length profile_g in
        if kmax_g > 0 then begin
          let hs = Verify.augmented g h s in
          let profile_h = Edge_disjoint.dk_profile hs ~kmax:kmax_g s t in
          (* repair each violated k' by inlining G's optimal system *)
          for k' = 1 to kmax_g do
            let violated =
              Array.length profile_h < k' || profile_h.(k' - 1) > profile_g.(k' - 1)
            in
            if violated then
              match Edge_disjoint.min_sum_paths g ~k:k' s t with
              | Some paths -> List.iter add_path paths
              | None -> ()
          done
        end
      end
    done
  done;
  (h, !added)

let edge_two_connecting g =
  fst (edge_repair g ~k:2 ~base:(Remote_spanner.two_connecting g))

let hybrid g ~eps ~k =
  let h = Remote_spanner.low_stretch g ~eps in
  Edge_set.union_into h (Remote_spanner.k_connecting_mis g ~k);
  h
