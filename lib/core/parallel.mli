(** Multicore construction of remote-spanners (OCaml 5 domains).

    Every construction in this library is a union of per-node
    dominating trees, and each tree depends only on a constant-radius
    neighborhood — the same locality that makes the distributed
    algorithms constant-time makes the centralized ones embarrassingly
    parallel. This module fans the per-node tree computations out over
    domains and unions the results; outputs are bit-identical to the
    sequential versions (the per-node computations are deterministic
    and independent). *)

open Rs_graph

val default_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val drive :
  ?chunk:int -> n:int -> domains:int -> stop:(unit -> bool) ->
  ((unit -> (int * int) option) -> int) -> unit
(** The work-stealing scheduler behind every parallel sweep in this
    library, re-exported from {!Sharded.drive}: each domain runs the
    worker with a [claim] function handing out inclusive chunks of
    [0, n) until the range is empty or [stop ()] is true, and returns
    its item count for the domain-balance histograms. *)

val union_trees : ?domains:int -> Graph.t -> (int -> Tree.t) -> Edge_set.t
(** Parallel version of {!Remote_spanner.union_trees}: domains claim
    chunks of the vertex range off a shared atomic cursor
    (work-stealing — a domain that lands on cheap vertices claims more
    chunks instead of idling at a static block boundary), build each
    chunk's trees into a private edge set, and merge once when they run
    dry. [tree_of] must be safe to call concurrently on distinct
    vertices (all constructions in this library are: they only read
    the immutable graph). *)

val union_trees_with : ?domains:int -> Graph.t -> (unit -> int -> Tree.t) -> Edge_set.t
(** Like {!union_trees}, but the factory is invoked once per domain so
    each domain can hold private mutable state — typically a
    {!Bfs.Scratch.t} captured by the returned tree builder, which must
    never be shared between domains. The entry points below use this to
    give every domain its own reusable traversal scratch. *)

val rem_span : ?domains:int -> Graph.t -> r:int -> beta:int -> Edge_set.t
val exact_distance : ?domains:int -> Graph.t -> Edge_set.t
val low_stretch : ?domains:int -> Graph.t -> eps:float -> Edge_set.t
val k_connecting : ?domains:int -> Graph.t -> k:int -> Edge_set.t
val two_connecting : ?domains:int -> Graph.t -> Edge_set.t
(** Parallel counterparts of the {!Remote_spanner} entry points. All
    but [two_connecting] route through {!Sharded.build} (batched
    multi-source BFS, flat edge-id merge); [two_connecting]'s mis_k
    trees stay on the per-root {!union_trees_with}. *)

val is_remote_spanner :
  ?domains:int -> Graph.t -> Edge_set.t -> alpha:float -> beta:float -> bool
(** Parallel counterpart of {!Verify.is_remote_spanner}: the per-source
    BFS checks are independent, so sources are fanned over domains.
    Same answer as the sequential oracle (asserted in tests); lets the
    harness verify stretch exhaustively on graphs several times larger. *)
