(** Baseline spanner constructions (Table 1 comparison rows).

    Any (alpha, beta)-spanner is an (alpha, beta)-remote-spanner
    (Section 1.2), so these classical constructions are the "general
    graph" rows that the remote-spanner constructions are compared
    against. They are returned as edge sets over the input graph, i.e.
    already in remote-spanner form.

    As documented in DESIGN.md, the Baswana-Kavitha-Mehlhorn-Pettie
    (k, k-1)-spanner cited by the paper is substituted by three
    classical baselines with the same Table-1 role: the greedy
    (2k-1, 0)-spanner, the Baswana-Sen randomized (2k-1, 0)-spanner
    and the Aingworth et al. additive-2 (1, 2)-spanner. *)

open Rs_graph

val full : Graph.t -> Edge_set.t
(** The whole topology: what plain link-state routing advertises. *)

val bfs_tree : Graph.t -> root:int -> Edge_set.t
(** Shortest-path tree from one root (plus one tree per extra
    component): n-1 edges, unbounded multiplicative stretch — the
    cheap extreme of the trade-off. *)

val greedy_spanner : Graph.t -> k:int -> Edge_set.t
(** Althöfer et al.: scan edges (canonical order), keep an edge iff
    the kept sub-graph has distance > 2k-1 between its endpoints.
    A (2k-1, 0)-spanner with at most n^(1+1/k) + n edges (girth
    argument). O(m * (n + m)) worst case. *)

val baswana_sen : Rand.t -> Graph.t -> k:int -> Edge_set.t
(** Baswana-Sen randomized clustering (2k-1, 0)-spanner,
    O(k n^(1+1/k)) expected edges. Unweighted specialization: k-1
    rounds of cluster sampling with probability n^(-1/k), then full
    inter-cluster stitching. *)

val additive2 : Graph.t -> Edge_set.t
(** Aingworth-Chekuri-Indyk-Motwani (1, 2)-spanner with
    O(n^(3/2) log n)-ish edges: keep all edges of low-degree
    (< sqrt n) vertices; greedily dominate high-degree vertices and
    add a full BFS tree from each dominator. *)

val is_spanner : Graph.t -> Edge_set.t -> alpha:float -> beta:float -> bool
(** Plain (not remote) spanner check: [d_H(u,v) <= alpha d_G(u,v) +
    beta] for all pairs (per-edge check suffices for alpha >= 1,
    beta >= 0, but the full pairwise check is cheap enough here). *)
