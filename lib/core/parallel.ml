open Rs_graph
module Obs = Rs_obs.Obs

let default_domains () = min 8 (Domain.recommended_domain_count ())

(* Same counter the sequential union uses, so the parallel path's
   metrics sum to the sequential run's (asserted by a property test).
   Domain-balance histograms are observed from the coordinating thread
   after joins; the measurements themselves happen inside each domain. *)
let c_trees = Obs.counter "core/trees_built"
let h_domain_wall = Obs.histogram "parallel/domain_wall_s"
let h_domain_items = Obs.histogram "parallel/domain_items"

let record_domain items dt =
  if Obs.enabled () then begin
    Obs.observe h_domain_items (float_of_int items);
    Obs.observe h_domain_wall dt
  end

let union_trees ?domains g tree_of =
  Obs.with_span "parallel/union_trees" @@ fun () ->
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  if domains = 1 || n < 64 then begin
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let acc = Edge_set.create g in
    for u = 0 to n - 1 do
      Obs.incr c_trees;
      Tree.add_to acc (tree_of u)
    done;
    if Obs.enabled () then record_domain n (Obs.now () -. t0);
    acc
  end
  else begin
    let block = (n + domains - 1) / domains in
    let work lo hi () =
      let t0 = if Obs.enabled () then Obs.now () else 0.0 in
      let acc = Edge_set.create g in
      for u = lo to hi do
        Obs.incr c_trees;
        Tree.add_to acc (tree_of u)
      done;
      let dt = if Obs.enabled () then Obs.now () -. t0 else 0.0 in
      (acc, hi - lo + 1, dt)
    in
    let handles =
      List.init domains (fun d ->
          let lo = d * block and hi = min (n - 1) (((d + 1) * block) - 1) in
          if lo > hi then None else Some (Domain.spawn (work lo hi)))
    in
    let result = Edge_set.create g in
    List.iter
      (function
        | None -> ()
        | Some handle ->
            let acc, items, dt = Domain.join handle in
            record_domain items dt;
            Edge_set.union_into result acc)
      handles;
    result
  end

let exact_distance ?domains g = union_trees ?domains g (Dom_tree_k.gdy_k g ~k:1)

let low_stretch ?domains g ~eps =
  union_trees ?domains g (Dom_tree.mis g ~r:(Remote_spanner.r_of_eps eps))

let k_connecting ?domains g ~k = union_trees ?domains g (Dom_tree_k.gdy_k g ~k)

let two_connecting ?domains g = union_trees ?domains g (Dom_tree_k.mis_k g ~k:2)

let is_remote_spanner ?domains g h ~alpha ~beta =
  Obs.with_span "parallel/is_remote_spanner" @@ fun () ->
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  let h_adj = Edge_set.to_adjacency h in
  let check_range lo hi () =
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let ok = ref true in
    let u = ref lo in
    while !ok && !u <= hi do
      let du_g = Bfs.dist g !u in
      let du_h = Bfs.augmented_dist g h_adj !u in
      for v = 0 to n - 1 do
        if v <> !u && du_g.(v) > 1 then begin
          let bound = (alpha *. float_of_int du_g.(v)) +. beta in
          if du_h.(v) < 0 || float_of_int du_h.(v) > bound +. 1e-9 then ok := false
        end
      done;
      incr u
    done;
    let dt = if Obs.enabled () then Obs.now () -. t0 else 0.0 in
    (!ok, hi - lo + 1, dt)
  in
  if domains = 1 || n < 64 then begin
    let ok, items, dt = check_range 0 (n - 1) () in
    record_domain items dt;
    ok
  end
  else begin
    let block = (n + domains - 1) / domains in
    let handles =
      List.init domains (fun d ->
          let lo = d * block and hi = min (n - 1) (((d + 1) * block) - 1) in
          if lo > hi then None else Some (Domain.spawn (check_range lo hi)))
    in
    List.fold_left
      (fun acc handle ->
        match handle with
        | None -> acc
        | Some h ->
            let ok, items, dt = Domain.join h in
            record_domain items dt;
            ok && acc)
      true handles
  end
