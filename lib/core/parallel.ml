open Rs_graph
module Obs = Rs_obs.Obs

(* The scheduler primitives (work-stealing drive, domain metrics) and
   the domain cap live in [Sharded] now, shared with the batched
   builder; this module re-exports them and keeps the tree-at-a-time
   union for constructions the batched engine doesn't cover. *)
let default_domains = Sharded.default_domains
let record_domain = Sharded.record_domain
let drive = Sharded.drive

(* Same counter the sequential union uses, so the parallel path's
   metrics sum to the sequential run's (asserted by a property test). *)
let c_trees = Obs.counter "core/trees_built"

let union_trees_with ?domains g make_tree_of =
  Obs.with_span "parallel/union_trees" @@ fun () ->
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  if domains = 1 || n < 64 then begin
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let acc = Edge_set.create g in
    let tree_of = make_tree_of () in
    for u = 0 to n - 1 do
      Obs.incr c_trees;
      Tree.add_to acc (tree_of u)
    done;
    if Obs.enabled () then record_domain n (Obs.now () -. t0);
    acc
  end
  else begin
    let result = Edge_set.create g in
    let mutex = Mutex.create () in
    drive ~n ~domains
      ~stop:(fun () -> false)
      (fun claim ->
        (* per-domain state: a private tree builder (with its own BFS
           scratch) and a private accumulator, merged under the mutex
           once when the domain runs out of chunks *)
        let tree_of = make_tree_of () in
        let acc = Edge_set.create g in
        let items = ref 0 in
        let rec loop () =
          match claim () with
          | None -> ()
          | Some (lo, hi) ->
              for u = lo to hi do
                Obs.incr c_trees;
                Tree.add_to acc (tree_of u)
              done;
              items := !items + (hi - lo + 1);
              loop ()
        in
        loop ();
        Mutex.lock mutex;
        Edge_set.union_into result acc;
        Mutex.unlock mutex;
        !items);
    result
  end

let union_trees ?domains g tree_of = union_trees_with ?domains g (fun () -> tree_of)

(* Entry points with a batched counterpart route through the sharded
   builder (multi-source BFS batches + flat edge-id accumulators);
   [two_connecting]'s mis_k trees stay on the per-root union. *)
let rem_span ?domains g ~r ~beta = Sharded.build ?domains g (Sharded.Gdy { r; beta })

let exact_distance ?domains g = Sharded.build ?domains g (Sharded.Gdy_k { k = 1 })

let low_stretch ?domains g ~eps =
  Sharded.build ?domains g (Sharded.Mis { r = Remote_spanner.r_of_eps eps })

let k_connecting ?domains g ~k = Sharded.build ?domains g (Sharded.Gdy_k { k })

let two_connecting ?domains g =
  (* mis_k probes Graph.neighbors; build the memoized adjacency here so
     the worker domains don't all pay the O(n + m) copy on first access *)
  Graph.force_adj g;
  union_trees_with ?domains g (fun () ->
      let scratch = Bfs.Scratch.create () in
      Dom_tree_k.mis_k ~scratch g ~k:2)

let is_remote_spanner ?domains g h ~alpha ~beta =
  Obs.with_span "parallel/is_remote_spanner" @@ fun () ->
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  let h_adj = Edge_set.to_adjacency h in
  let ok = Atomic.make true in
  let check_source sg sh u =
    Bfs.Scratch.run sg g u;
    Bfs.Scratch.run_augmented sh g h_adj u;
    let violated = ref false in
    let count = Bfs.Scratch.visited_count sg in
    let i = ref 0 in
    while (not !violated) && !i < count do
      let v = Bfs.Scratch.visited sg !i in
      let d_g = Bfs.Scratch.dist sg v in
      if d_g > 1 then begin
        let d_h = Bfs.Scratch.dist sh v in
        let bound = (alpha *. float_of_int d_g) +. beta in
        if d_h < 0 || float_of_int d_h > bound +. 1e-9 then violated := true
      end;
      incr i
    done;
    if !violated then Atomic.set ok false
  in
  if domains = 1 || n < 64 then begin
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let sg = Bfs.Scratch.create () and sh = Bfs.Scratch.create () in
    let u = ref 0 in
    while Atomic.get ok && !u < n do
      check_source sg sh !u;
      incr u
    done;
    record_domain !u (if Obs.enabled () then Obs.now () -. t0 else 0.0)
  end
  else
    drive ~n ~domains
      ~stop:(fun () -> not (Atomic.get ok))
      (fun claim ->
        let sg = Bfs.Scratch.create () and sh = Bfs.Scratch.create () in
        let items = ref 0 in
        let rec loop () =
          match claim () with
          | None -> ()
          | Some (lo, hi) ->
              let u = ref lo in
              (* early abort: a violation anywhere stops every domain
                 at its next chunk claim (and this one mid-chunk) *)
              while Atomic.get ok && !u <= hi do
                check_source sg sh !u;
                incr u
              done;
              items := !items + (!u - lo);
              loop ()
        in
        loop ();
        !items);
  Atomic.get ok
