open Rs_graph

let default_domains () = min 8 (Domain.recommended_domain_count ())

let union_trees ?domains g tree_of =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  if domains = 1 || n < 64 then begin
    let acc = Edge_set.create g in
    for u = 0 to n - 1 do
      Tree.add_to acc (tree_of u)
    done;
    acc
  end
  else begin
    let block = (n + domains - 1) / domains in
    let work lo hi () =
      let acc = Edge_set.create g in
      for u = lo to hi do
        Tree.add_to acc (tree_of u)
      done;
      acc
    in
    let handles =
      List.init domains (fun d ->
          let lo = d * block and hi = min (n - 1) (((d + 1) * block) - 1) in
          if lo > hi then None else Some (Domain.spawn (work lo hi)))
    in
    let result = Edge_set.create g in
    List.iter
      (function
        | None -> ()
        | Some handle -> Edge_set.union_into result (Domain.join handle))
      handles;
    result
  end

let exact_distance ?domains g = union_trees ?domains g (Dom_tree_k.gdy_k g ~k:1)

let low_stretch ?domains g ~eps =
  union_trees ?domains g (Dom_tree.mis g ~r:(Remote_spanner.r_of_eps eps))

let k_connecting ?domains g ~k = union_trees ?domains g (Dom_tree_k.gdy_k g ~k)

let two_connecting ?domains g = union_trees ?domains g (Dom_tree_k.mis_k g ~k:2)

let is_remote_spanner ?domains g h ~alpha ~beta =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  let h_adj = Edge_set.to_adjacency h in
  let check_range lo hi () =
    let ok = ref true in
    let u = ref lo in
    while !ok && !u <= hi do
      let du_g = Bfs.dist g !u in
      let du_h = Bfs.augmented_dist g h_adj !u in
      for v = 0 to n - 1 do
        if v <> !u && du_g.(v) > 1 then begin
          let bound = (alpha *. float_of_int du_g.(v)) +. beta in
          if du_h.(v) < 0 || float_of_int du_h.(v) > bound +. 1e-9 then ok := false
        end
      done;
      incr u
    done;
    !ok
  in
  if domains = 1 || n < 64 then check_range 0 (n - 1) ()
  else begin
    let block = (n + domains - 1) / domains in
    let handles =
      List.init domains (fun d ->
          let lo = d * block and hi = min (n - 1) (((d + 1) * block) - 1) in
          if lo > hi then None else Some (Domain.spawn (check_range lo hi)))
    in
    List.fold_left
      (fun acc handle ->
        match handle with None -> acc | Some h -> Domain.join h && acc)
      true handles
  end
