open Rs_graph
module Obs = Rs_obs.Obs

let default_domains () = min 8 (Domain.recommended_domain_count ())

(* Same counter the sequential union uses, so the parallel path's
   metrics sum to the sequential run's (asserted by a property test).
   Domain-balance histograms are observed from the coordinating thread
   after joins; the measurements themselves happen inside each domain. *)
let c_trees = Obs.counter "core/trees_built"
let h_domain_wall = Obs.histogram "parallel/domain_wall_s"
let h_domain_items = Obs.histogram "parallel/domain_items"

let record_domain items dt =
  if Obs.enabled () then begin
    Obs.observe h_domain_items (float_of_int items);
    Obs.observe h_domain_wall dt
  end

(* Work-stealing over the vertex range [0, n): domains repeatedly claim
   the next chunk off a shared atomic cursor, so a domain that lands on
   cheap vertices simply claims more chunks instead of idling at a
   static block boundary. Chunks are big enough to amortize the
   fetch-and-add, small enough that the tail imbalance is bounded by
   one chunk per domain. *)
let chunk_size n domains = max 1 (min 64 (n / (domains * 8)))

(* Each domain runs [worker claim]: a full claim-process loop plus any
   per-domain finalization (e.g. merging its accumulator), returning
   how many items it processed. [claim] hands out chunks until the
   range is exhausted or [stop ()] aborts the sweep
   (claimed-but-unprocessed chunks are then fine to drop). The calling
   domain doubles as a worker, so [domains] counts it. *)
let drive ~n ~domains ~stop worker =
  let cursor = Atomic.make 0 in
  let chunk = chunk_size n domains in
  let claim () =
    if stop () then None
    else
      let lo = Atomic.fetch_and_add cursor chunk in
      if lo >= n then None else Some (lo, min (n - 1) (lo + chunk - 1))
  in
  let run_domain () =
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let items = worker claim in
    let dt = if Obs.enabled () then Obs.now () -. t0 else 0.0 in
    (items, dt)
  in
  let handles = List.init (domains - 1) (fun _ -> Domain.spawn run_domain) in
  let own = run_domain () in
  let per_domain = own :: List.map Domain.join handles in
  List.iter (fun (items, dt) -> record_domain items dt) per_domain

let union_trees_with ?domains g make_tree_of =
  Obs.with_span "parallel/union_trees" @@ fun () ->
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  if domains = 1 || n < 64 then begin
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let acc = Edge_set.create g in
    let tree_of = make_tree_of () in
    for u = 0 to n - 1 do
      Obs.incr c_trees;
      Tree.add_to acc (tree_of u)
    done;
    if Obs.enabled () then record_domain n (Obs.now () -. t0);
    acc
  end
  else begin
    let result = Edge_set.create g in
    let mutex = Mutex.create () in
    drive ~n ~domains
      ~stop:(fun () -> false)
      (fun claim ->
        (* per-domain state: a private tree builder (with its own BFS
           scratch) and a private accumulator, merged under the mutex
           once when the domain runs out of chunks *)
        let tree_of = make_tree_of () in
        let acc = Edge_set.create g in
        let items = ref 0 in
        let rec loop () =
          match claim () with
          | None -> ()
          | Some (lo, hi) ->
              for u = lo to hi do
                Obs.incr c_trees;
                Tree.add_to acc (tree_of u)
              done;
              items := !items + (hi - lo + 1);
              loop ()
        in
        loop ();
        Mutex.lock mutex;
        Edge_set.union_into result acc;
        Mutex.unlock mutex;
        !items);
    result
  end

let union_trees ?domains g tree_of = union_trees_with ?domains g (fun () -> tree_of)

let exact_distance ?domains g =
  union_trees_with ?domains g (fun () ->
      let scratch = Bfs.Scratch.create () in
      Dom_tree_k.gdy_k ~scratch g ~k:1)

let low_stretch ?domains g ~eps =
  let r = Remote_spanner.r_of_eps eps in
  union_trees_with ?domains g (fun () ->
      let scratch = Bfs.Scratch.create () in
      Dom_tree.mis ~scratch g ~r)

let k_connecting ?domains g ~k =
  union_trees_with ?domains g (fun () ->
      let scratch = Bfs.Scratch.create () in
      Dom_tree_k.gdy_k ~scratch g ~k)

let two_connecting ?domains g =
  union_trees_with ?domains g (fun () ->
      let scratch = Bfs.Scratch.create () in
      Dom_tree_k.mis_k ~scratch g ~k:2)

let is_remote_spanner ?domains g h ~alpha ~beta =
  Obs.with_span "parallel/is_remote_spanner" @@ fun () ->
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let n = Graph.n g in
  let h_adj = Edge_set.to_adjacency h in
  let ok = Atomic.make true in
  let check_source sg sh u =
    Bfs.Scratch.run sg g u;
    Bfs.Scratch.run_augmented sh g h_adj u;
    let violated = ref false in
    let count = Bfs.Scratch.visited_count sg in
    let i = ref 0 in
    while (not !violated) && !i < count do
      let v = Bfs.Scratch.visited sg !i in
      let d_g = Bfs.Scratch.dist sg v in
      if d_g > 1 then begin
        let d_h = Bfs.Scratch.dist sh v in
        let bound = (alpha *. float_of_int d_g) +. beta in
        if d_h < 0 || float_of_int d_h > bound +. 1e-9 then violated := true
      end;
      incr i
    done;
    if !violated then Atomic.set ok false
  in
  if domains = 1 || n < 64 then begin
    let t0 = if Obs.enabled () then Obs.now () else 0.0 in
    let sg = Bfs.Scratch.create () and sh = Bfs.Scratch.create () in
    let u = ref 0 in
    while Atomic.get ok && !u < n do
      check_source sg sh !u;
      incr u
    done;
    record_domain !u (if Obs.enabled () then Obs.now () -. t0 else 0.0)
  end
  else
    drive ~n ~domains
      ~stop:(fun () -> not (Atomic.get ok))
      (fun claim ->
        let sg = Bfs.Scratch.create () and sh = Bfs.Scratch.create () in
        let items = ref 0 in
        let rec loop () =
          match claim () with
          | None -> ()
          | Some (lo, hi) ->
              let u = ref lo in
              (* early abort: a violation anywhere stops every domain
                 at its next chunk claim (and this one mid-chunk) *)
              while Atomic.get ok && !u <= hi do
                check_source sg sh !u;
                incr u
              done;
              items := !items + (!u - lo);
              loop ()
        in
        loop ();
        !items);
  Atomic.get ok
