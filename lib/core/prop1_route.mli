(** Proposition 1's sufficiency proof, as an executable algorithm.

    The proof that a sub-graph inducing (r,1)-dominating trees is a
    (1+eps, 1-2eps)-remote-spanner (eps = 1/(r-1)) is constructive: it
    splices together hops of length <= r through dominating trees.
    This module runs that construction literally, so the tests can
    validate the {e proof} — the route it builds must be a real walk
    of [H_u] within the claimed bound — independently of the BFS-based
    distance checker.

    It is also the routing story: the constructed route's prefix after
    the first hop lies entirely in H, which is why greedy link-state
    forwarding over H realizes the same bound (Section 1). *)

open Rs_graph

val construct : Graph.t -> Edge_set.t -> r:int -> int -> int -> Path.t option
(** [construct g h ~r u v] builds a simple u-v path of [H_u] following
    the induction of Proposition 1: for [d_G(u,v) <= r] one free
    incident hop to a dominator x of [u] with [d_H(x,v) <= d_G(u,v)],
    otherwise a recursive step through the dominator of the node at
    distance r from [v] on a shortest path. Loops arising from
    concatenation are excised (only ever shortening the walk).

    Returns [None] when [v] is unreachable from [u], or when [h] does
    not induce the needed dominating trees (then H simply is not a
    remote-spanner of that quality). For [r >= 2] and any H produced
    by {!Remote_spanner.rem_span}[ ~r ~beta:1] or
    {!Remote_spanner.low_stretch}, the result is always [Some] with
    [Path.length <= (1 + 1/(r-1)) d_G(u,v) + 1 - 2/(r-1)]. *)

val bound : r:int -> int -> float
(** [bound ~r l] = [(1 + 1/(r-1)) * l + 1 - 2/(r-1)], the Proposition 1
    guarantee for distance [l]. *)
