open Rs_graph
module Obs = Rs_obs.Obs

let c_relays = Obs.counter "mpr/relays_selected"

let two_hop g u =
  let d = Bfs.dist ~radius:2 g u in
  let acc = ref [] in
  Graph.iter_vertices (fun v -> if d.(v) = 2 then acc := v :: !acc) g;
  List.rev !acc

let select g u =
  let t = Dom_tree_k.gdy_k g ~k:1 u in
  List.filter (fun v -> v <> u) (Tree.vertices t)

let select_olsr g u =
  let sphere = two_hop g u in
  let alive = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace alive v ()) sphere;
  let chosen = Hashtbl.create 8 in
  let covers x =
    Array.to_list (Graph.neighbors g x) |> List.filter (Hashtbl.mem alive)
  in
  let take x =
    Hashtbl.replace chosen x ();
    List.iter (fun v -> Hashtbl.remove alive v) (covers x)
  in
  (* Step 1: neighbors that are the unique cover of some 2-hop node. *)
  List.iter
    (fun v ->
      if Hashtbl.mem alive v then begin
        let providers =
          Array.to_list (Graph.neighbors g v) |> List.filter (fun w -> Graph.mem_edge g u w)
        in
        match providers with [ x ] -> take x | _ -> ()
      end)
    sphere;
  (* Step 2: greedy on residual coverage; ties by degree desc, id asc. *)
  while Hashtbl.length alive > 0 do
    let best = ref (-1) and best_key = ref (min_int, 0) in
    Array.iter
      (fun x ->
        if not (Hashtbl.mem chosen x) then begin
          let c = List.length (covers x) in
          let key = (c, Graph.degree g x) in
          if c > 0 && (!best < 0 || key > !best_key) then begin
            best := x;
            best_key := key
          end
        end)
      (Graph.neighbors g u);
    assert (!best >= 0);
    take !best
  done;
  List.sort compare (Hashtbl.fold (fun x () acc -> x :: acc) chosen [])

let select_k_coverage g ~k u =
  let t = Dom_tree_k.gdy_k g ~k u in
  List.filter (fun v -> v <> u) (Tree.vertices t)

let is_valid_mpr g u relays =
  let relay = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace relay x ()) relays;
  List.for_all
    (fun v -> Array.exists (Hashtbl.mem relay) (Graph.neighbors g v))
    (two_hop g u)

let relay_union g selector =
  Obs.with_span "build/mpr_relay_union" @@ fun () ->
  let h = Edge_set.create g in
  Graph.iter_vertices
    (fun u ->
      List.iter
        (fun x ->
          Obs.incr c_relays;
          Edge_set.add h u x)
        (selector g u))
    g;
  h

type flood_result = { reached : bool array; retransmissions : int }

let flood g ~relays ~src =
  let n = Graph.n g in
  let reached = Array.make n false in
  let first_sender = Array.make n (-1) in
  let is_relay = Array.make n (fun _ -> false) in
  Graph.iter_vertices
    (fun u ->
      let set = Hashtbl.create 8 in
      List.iter (fun x -> Hashtbl.replace set x ()) (relays u);
      is_relay.(u) <- Hashtbl.mem set)
    g;
  reached.(src) <- true;
  let retransmissions = ref 0 in
  (* Synchronous rounds: every node that decided to transmit this round
     delivers to its neighbors; first sender (smallest id) wins. *)
  let transmitters = ref [ src ] in
  while !transmitters <> [] do
    retransmissions := !retransmissions + List.length !transmitters;
    let delivered = Hashtbl.create 16 in
    List.iter
      (fun x ->
        Array.iter
          (fun v ->
            if not reached.(v) then
              match Hashtbl.find_opt delivered v with
              | Some sender when sender <= x -> ()
              | _ -> Hashtbl.replace delivered v x)
          (Graph.neighbors g x))
      (List.sort compare !transmitters);
    let next = ref [] in
    Hashtbl.iter
      (fun v sender ->
        reached.(v) <- true;
        first_sender.(v) <- sender)
      delivered;
    Hashtbl.iter
      (fun v sender -> if is_relay.(sender) v then next := v :: !next)
      delivered;
    transmitters := List.sort compare !next
  done;
  (* src's own transmission counts once; retransmissions = forwards *)
  { reached; retransmissions = !retransmissions - 1 }

let flood_lossy rand g ~relays ~src ~loss =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Mpr.flood_lossy: loss in [0,1)";
  let n = Graph.n g in
  let reached = Array.make n false in
  let is_relay = Array.make n (fun _ -> false) in
  Graph.iter_vertices
    (fun u ->
      let set = Hashtbl.create 8 in
      List.iter (fun x -> Hashtbl.replace set x ()) (relays u);
      is_relay.(u) <- Hashtbl.mem set)
    g;
  reached.(src) <- true;
  let retransmissions = ref 0 in
  (* will_forward: reached and entitled by some heard sender, but has
     not transmitted yet *)
  let transmitted = Array.make n false in
  let pending = ref [ src ] in
  while !pending <> [] do
    let senders = List.sort compare !pending in
    pending := [];
    retransmissions := !retransmissions + List.length senders;
    List.iter
      (fun x ->
        transmitted.(x) <- true;
        Array.iter
          (fun v ->
            if Rand.float rand 1.0 >= loss then begin
              (* v hears x's copy *)
              if not reached.(v) then reached.(v) <- true;
              if is_relay.(x) v && not transmitted.(v) && not (List.mem v !pending) then
                pending := v :: !pending
            end)
          (Graph.neighbors g x))
      senders
  done;
  { reached; retransmissions = !retransmissions - 1 }

let blind_flood g ~src =
  let n = Graph.n g in
  let reached = Array.make n false in
  let d = Bfs.dist g src in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if d.(v) >= 0 then begin
      reached.(v) <- true;
      if v <> src then incr count
    end
  done;
  (* every reached node except leaves... classic flooding: every node
     retransmits once upon first reception, the source transmits too;
     forwards = reached nodes minus the source. *)
  { reached; retransmissions = !count }
