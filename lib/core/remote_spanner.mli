(** Remote-spanner constructions (Algorithm RemSpan and Theorems 1-3).

    Every construction is the union, over all roots [u], of one
    dominating tree for [u]; the resulting sub-graph [H] is returned as
    an {!Rs_graph.Edge_set.t} over the input graph. The centralized
    entry points below compute each node's tree from global data —
    provably the same trees the distributed Algorithm 3 computes from
    r-hop neighborhood views ({!Distributed} runs that version through
    the LOCAL-model simulator and returns round/message counts). *)

open Rs_graph

val union_trees : Graph.t -> (int -> Tree.t) -> Edge_set.t
(** [union_trees g tree_of] unions [tree_of u] over every vertex. *)

val r_of_eps : float -> int
(** [r_of_eps eps = ceil(1/eps) + 1], the dominating-tree radius of
    Proposition 1. Requires [0 < eps <= 1]. *)

val rem_span : Graph.t -> r:int -> beta:int -> Edge_set.t
(** Union of Algorithm-1 greedy (r, beta)-dominating trees. By
    Proposition 1, with [beta = 1] and [r = r_of_eps eps] this is a
    (1+eps, 1-2eps)-remote-spanner. *)

val low_stretch : Graph.t -> eps:float -> Edge_set.t
(** Theorem 1: union of Algorithm-2 MIS (r_of_eps eps, 1)-dominating
    trees — a (1+eps, 1-2eps)-remote-spanner with O(eps^-(p+1) n)
    edges on unit ball graphs of doubling dimension p. *)

val exact_distance : Graph.t -> Edge_set.t
(** (1, 0)-remote-spanner (exact distances preserved): union of greedy
    (2,0)-dominating trees — the k = 1 case of Theorem 2, also the
    classical multipoint-relay sub-graph. *)

val k_connecting : Graph.t -> k:int -> Edge_set.t
(** Theorem 2: union of Algorithm-4 trees — a k-connecting
    (1,0)-remote-spanner with edges within [2(1+log Delta)] of
    optimal, O(k^(2/3) n^(4/3) log n) expected edges on random unit
    disk graphs. *)

val two_connecting : Graph.t -> Edge_set.t
(** Theorem 3: union of Algorithm-5 trees with k = 2 — a 2-connecting
    (2,-1)-remote-spanner with O(n) edges on unit ball graphs of
    doubling metrics. *)

val k_connecting_mis : Graph.t -> k:int -> Edge_set.t
(** Union of Algorithm-5 trees for arbitrary k (the paper proves the
    remote-spanner property for k = 2; larger k still yields
    k-connecting dominating trees and is exercised as an extension). *)

(** Distributed execution of Algorithm 3 (RemSpan).

    Phase 1: every node floods its adjacency [radius] hops (learning
    the ball it needs); phase 2: every node computes its dominating
    tree locally from that view; phase 3: trees are flooded back
    [radius] hops so that every node knows the spanner edges relevant
    to it. Total rounds = 2*radius + 1 = 2r - 1 + 2*beta, independent
    of n — the paper's "constant time" claim, measured by E9. *)
module Distributed : sig
  type report = {
    spanner : Edge_set.t;
    collect_stats : Rs_distributed.Sim.stats;  (** phase-1 traffic *)
    flood_stats : Rs_distributed.Sim.stats;  (** phase-3 traffic *)
    rounds_total : int;
  }

  val rem_span : Graph.t -> r:int -> beta:int -> report
  (** Distributed Algorithm 1 + RemSpan. Each node's tree is computed
      from its collected view only; a mismatch with the centralized
      tree would be a locality bug (asserted in tests). *)

  val k_connecting : Graph.t -> k:int -> report
  (** Distributed Theorem 2 (radius 1: Algorithm 4 needs the 2-hop
      view, obtained after one exchange of neighbor lists... radius
      [1 + 0]); see {!rem_span} for the phase structure. *)

  val two_connecting : Graph.t -> report
  (** Distributed Theorem 3 (Algorithm 5, k = 2, radius 2). *)
end
