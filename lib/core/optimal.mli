(** Globally optimal k-connecting (1,0)-remote-spanners (small graphs).

    Proposition 5 characterizes k-connecting (1,0)-remote-spanners
    pointwise: H qualifies iff for every ordered pair (u, v) at
    distance 2, at least [min k c] of the [c] common neighbors [x] of
    u and v have [ux] in H. Selecting the minimum number of edges
    subject to these constraints is therefore an exact multicover
    problem whose "sets" are the graph's edges — each edge [ux] covers
    every ordered pair (u, v) with [v] in [N(x)] at distance 2 from
    [u], and symmetrically (x, w) pairs through [u].

    This module solves that problem exactly (branch and bound), giving
    the true optimum that Theorem 2's [2(1 + log Delta)] approximation
    factor is measured against in experiment E17. Exponential in m:
    intended for graphs with at most ~25 edges' worth of branching. *)

open Rs_graph

val exact_k_rs : ?limit:int -> Graph.t -> k:int -> Edge_set.t option
(** [exact_k_rs g ~k]: a minimum-size k-connecting
    (1,0)-remote-spanner of [g], or [None] if the search exceeded
    [limit] branch-and-bound nodes (default 10 million). The result is
    validated against {!Verify.induces_k20_trees} before being
    returned (assertion). *)

val lower_bound_trivial : Graph.t -> k:int -> int
(** Half the sum over nodes of their exact minimum multicover sizes
    (the E2 bound) — always <= the true optimum; exposed so tests can
    assert the ordering [trivial <= exact <= constructed]. *)
