open Rs_graph
module Setcover = Rs_setcover.Setcover

(* ordered distance-2 pairs, indexed *)
let distance2_pairs g =
  let acc = ref [] in
  Graph.iter_vertices
    (fun u ->
      let d = Bfs.dist ~radius:2 g u in
      Graph.iter_vertices (fun v -> if d.(v) = 2 then acc := (u, v) :: !acc) g)
    g;
  List.rev !acc

let exact_k_rs ?limit g ~k =
  if k < 1 then invalid_arg "Optimal.exact_k_rs: k < 1";
  let pairs = distance2_pairs g in
  let index = Hashtbl.create 64 in
  List.iteri (fun i pr -> Hashtbl.replace index pr i) pairs;
  (* set e (an undirected edge {a,b}) covers pair (u,v) iff one of its
     endpoints is u and the other is a common neighbor of u and v *)
  let covers a b =
    (* pairs (a, v) with v in N(b) at distance 2 from a, and (b, v)
       with v in N(a) at distance 2 from b *)
    let acc = ref [] in
    let dir u x =
      Array.iter
        (fun v ->
          match Hashtbl.find_opt index (u, v) with
          | Some i -> acc := i :: !acc
          | None -> ())
        (Graph.neighbors g x)
    in
    dir a b;
    dir b a;
    !acc
  in
  let sets =
    Array.init (Graph.m g) (fun id ->
        let a, b = Graph.edge g id in
        Array.of_list (covers a b))
  in
  let inst = { Setcover.universe = List.length pairs; sets } in
  match Setcover.exact ?limit inst ~k with
  | None -> None
  | Some picks ->
      let h = Edge_set.create g in
      List.iter (fun id -> Edge_set.add_id h id) picks;
      assert (Verify.induces_k20_trees g h ~k);
      Some h

let lower_bound_trivial g ~k =
  let sum = ref 0 in
  Graph.iter_vertices
    (fun u ->
      let d = Bfs.dist ~radius:2 g u in
      let sphere = ref [] in
      Graph.iter_vertices (fun v -> if d.(v) = 2 then sphere := v :: !sphere) g;
      if !sphere <> [] then begin
        let sphere = Array.of_list (List.rev !sphere) in
        let idx = Hashtbl.create 8 in
        Array.iteri (fun i v -> Hashtbl.replace idx v i) sphere;
        let sets =
          Array.map
            (fun x ->
              Array.to_list (Graph.neighbors g x)
              |> List.filter_map (Hashtbl.find_opt idx)
              |> Array.of_list)
            (Graph.neighbors g u)
        in
        match Setcover.exact { Setcover.universe = Array.length sphere; sets } ~k with
        | Some opt -> sum := !sum + List.length opt
        | None -> ()
      end)
    g;
  (!sum + 1) / 2
