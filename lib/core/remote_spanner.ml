open Rs_graph
module Sim = Rs_distributed.Sim
module Obs = Rs_obs.Obs

let c_union_trees = Obs.counter "core/trees_built"
let g_spanner_edges = Obs.gauge "core/spanner_edges"

let union_trees g tree_of =
  let h = Edge_set.create g in
  Graph.iter_vertices
    (fun u ->
      Obs.incr c_union_trees;
      Tree.add_to h (tree_of u))
    g;
  h

(* Entry points record a span and the result's edge count, so
   [rspan profile] can attribute time and size per construction. *)
let built h =
  Obs.set_gauge g_spanner_edges (float_of_int (Edge_set.cardinal h));
  h

let r_of_eps eps =
  if eps <= 0.0 || eps > 1.0 then invalid_arg "Remote_spanner.r_of_eps: need 0 < eps <= 1";
  int_of_float (Float.ceil (1.0 /. eps)) + 1

(* Single-domain instances of the batched builder: roots advance
   [Msbfs.width] at a time through the multi-source BFS and emit into
   flat edge-id accumulators — same edge sets and same counter totals
   as the historical one-scratch-per-run tree loop, at a fraction of
   the per-root cost (see docs/PERFORMANCE.md, "Scaling"). *)
let rem_span g ~r ~beta =
  Obs.with_span "build/rem_span" (fun () ->
      built (Sharded.build ~domains:1 g (Sharded.Gdy { r; beta })))

let low_stretch g ~eps =
  Obs.with_span "build/low_stretch" (fun () ->
      built (Sharded.build ~domains:1 g (Sharded.Mis { r = r_of_eps eps })))

let exact_distance g =
  Obs.with_span "build/exact_distance" (fun () ->
      built (Sharded.build ~domains:1 g (Sharded.Gdy_k { k = 1 })))

let k_connecting g ~k =
  Obs.with_span "build/k_connecting" (fun () ->
      built (Sharded.build ~domains:1 g (Sharded.Gdy_k { k })))

let k_connecting_mis g ~k =
  Obs.with_span "build/k_connecting_mis" (fun () ->
      let scratch = Bfs.Scratch.create () in
      built (union_trees g (Dom_tree_k.mis_k ~scratch g ~k)))

let two_connecting g = k_connecting_mis g ~k:2

module Distributed = struct
  type report = {
    spanner : Edge_set.t;
    collect_stats : Sim.stats;
    flood_stats : Sim.stats;
    rounds_total : int;
  }

  (* Rebuild each node's view as a standalone graph. Views keep
     original vertex order, so deterministic tie-breaking matches the
     centralized computation vertex for vertex. *)
  let local_view view_edges =
    let verts = Hashtbl.create 64 in
    Array.iter
      (fun (a, b, _) ->
        Hashtbl.replace verts a ();
        Hashtbl.replace verts b ())
      view_edges;
    let vs = Hashtbl.fold (fun v () acc -> v :: acc) verts [] in
    let vs = Array.of_list (List.sort compare vs) in
    let fwd = Hashtbl.create (Array.length vs) in
    Array.iteri (fun i v -> Hashtbl.replace fwd v i) vs;
    let edges =
      Array.to_list view_edges
      |> List.map (fun (a, b, _) -> (Hashtbl.find fwd a, Hashtbl.find fwd b))
    in
    (Graph.make ~n:(Array.length vs) edges, vs, fwd)

  (* Phase 3 of Algorithm RemSpan: flood each node's tree (as an edge
     list) [radius] hops, so every node learns the spanner edges in its
     vicinity; we only keep its traffic statistics. *)
  let flood_trees g trees ~radius =
    if radius = 0 then Sim.zero_stats
    else begin
      let payload_of u = List.length (Tree.edges trees.(u)) in
      let proto =
        {
          Sim.init =
            (fun u ->
              let sends =
                Array.to_list
                  (Array.map (fun v -> (v, (u, payload_of u, radius))) (Graph.neighbors g u))
              in
              ((Hashtbl.create 16 : (int, unit) Hashtbl.t), sends));
          step =
            (fun u seen ~inbox ->
              let sends = ref [] in
              List.iter
                (fun (_, (origin, size, ttl)) ->
                  if (not (Hashtbl.mem seen origin)) && origin <> u then begin
                    Hashtbl.replace seen origin ();
                    if ttl > 1 then
                      Array.iter
                        (fun v -> sends := (v, (origin, size, ttl - 1)) :: !sends)
                        (Graph.neighbors g u)
                  end)
                inbox;
              (seen, !sends));
          halted = (fun _ -> true);
          msg_size = (fun (_, size, _) -> size);
        }
      in
      let _, stats = Sim.run g proto ~max_rounds:(radius + 1) in
      stats
    end

  let run_with g ~radius tree_of_view =
    Obs.with_span "distributed/run_with" @@ fun () ->
    let views, collect_stats =
      Obs.with_span "collect" (fun () -> Sim.collect_neighborhoods g ~radius)
    in
    let n = Graph.n g in
    let trees = Array.make n (Tree.create ~n ~root:0) in
    Obs.with_span "local_trees" (fun () ->
        for u = 0 to n - 1 do
          if Graph.degree g u = 0 then trees.(u) <- Tree.create ~n ~root:u
          else begin
            let local, back, fwd = local_view views.(u) in
            let t_local = tree_of_view local (Hashtbl.find fwd u) in
            let t = Tree.create ~n ~root:u in
            (* re-add edges shallow-first so parents always precede children *)
            let by_depth =
              List.sort
                (fun (p1, _) (p2, _) ->
                  compare (Tree.depth t_local p1, p1) (Tree.depth t_local p2, p2))
                (Tree.edges t_local)
            in
            List.iter
              (fun (p, c) -> Tree.add_edge t ~parent:back.(p) ~child:back.(c))
              by_depth;
            trees.(u) <- t
          end
        done);
    let spanner = Edge_set.create g in
    Array.iter (fun t -> Tree.add_to spanner t) trees;
    let flood_stats = Obs.with_span "flood" (fun () -> flood_trees g trees ~radius) in
    {
      spanner;
      collect_stats;
      flood_stats;
      (* one round of hello (neighbor discovery) + 2*radius flooding:
         the paper's 2r - 1 + 2*beta with radius = r - 1 + beta. *)
      rounds_total = 1 + collect_stats.Sim.rounds + flood_stats.Sim.rounds;
    }

  (* one scratch per run: local views vary in size, the scratch grows
     to the largest and is reused for every node's view *)
  let rem_span g ~r ~beta =
    let scratch = Bfs.Scratch.create () in
    run_with g ~radius:(r - 1 + beta) (fun local u -> Dom_tree.gdy ~scratch local ~r ~beta u)

  let k_connecting g ~k =
    let scratch = Bfs.Scratch.create () in
    run_with g ~radius:1 (fun local u -> Dom_tree_k.gdy_k ~scratch local ~k u)

  let two_connecting g =
    let scratch = Bfs.Scratch.create () in
    run_with g ~radius:2 (fun local u -> Dom_tree_k.mis_k ~scratch local ~k:2 u)
end
