open Rs_graph

let outside_count h p =
  (* 1-based index of the last edge not in H (0 when all edges are) *)
  let edges =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      | [ _ ] | [] -> []
    in
    pairs p
  in
  let rec scan idx acc = function
    | [] -> acc
    | (a, b) :: rest -> scan (idx + 1) (if Edge_set.mem h a b then acc else idx + 1) rest
  in
  scan 0 0 edges

let nth_vertex p i = List.nth p i

let rewrite_wedge p i x =
  (* replace vertex at position i-1 by x (the wedge u-v-w becomes u-x-w) *)
  List.mapi (fun idx v -> if idx = i - 1 then x else v) p

let lemma2_step g h ~k paths =
  (* pick the first path lying outside by >= 2 *)
  let rec split_at acc = function
    | [] -> None
    | p :: rest ->
        if outside_count h p >= 2 then Some (List.rev acc, p, rest) else split_at (p :: acc) rest
  in
  match split_at [] paths with
  | None -> None
  | Some (before, p1, after) ->
      let i = outside_count h p1 in
      let u = nth_vertex p1 (i - 2) and v = nth_vertex p1 (i - 1) and w = nth_vertex p1 i in
      if Graph.mem_edge g u w then None (* tuple was not minimal: lemma inapplicable *)
      else if Edge_set.mem h w v then
        (* the wedge is already fine: the outside count was limited by
           an earlier edge... cannot happen: position i-1..i is the
           first offending edge by definition *)
        None
      else begin
        (* X = common neighbors x of u and w with wx in H *)
        let xs =
          Array.to_list (Graph.neighbors g w)
          |> List.filter (fun x -> Graph.mem_edge g u x && Edge_set.mem h w x)
        in
        let commons =
          Array.to_list (Graph.neighbors g w) |> List.filter (fun x -> Graph.mem_edge g u x)
        in
        (* dominating-tree guarantee: |xs| >= min k (all commons);
           v is a common neighbor with wv not in H, so the escape
           clause cannot be the active branch *)
        if List.length xs < k && List.length xs < List.length commons then None
        else begin
          let occupied = Hashtbl.create 32 in
          List.iter
            (fun p -> List.iter (fun vtx -> Hashtbl.replace occupied vtx ()) p)
            (before @ (p1 :: after));
          match List.find_opt (fun x -> not (Hashtbl.mem occupied x)) xs with
          | None -> None (* pigeonhole failed: H lacks the property *)
          | Some x -> Some (before @ (rewrite_wedge p1 i x :: after))
        end
      end

(* ------------------------------------------------------------------ *)
(* Lemma 1: the 2-connecting (2,1) case.                                *)

(* candidate u-w branch paths through w's dominating tree: [u; x; w]
   with wx in H, or [u; x; y; w] with xy, yw in H — first edge free,
   rest in H, interiors avoiding [forbidden] *)
let branch_candidates g h ~u ~w ~forbidden =
  let bad z = Hashtbl.mem forbidden z in
  let acc = ref [] in
  Array.iter
    (fun x ->
      if x <> w && x <> u && not (bad x) then begin
        if Edge_set.mem h w x then acc := [ u; x; w ] :: !acc;
        Array.iter
          (fun y ->
            if y <> u && y <> w && y <> x && (not (bad y)) && Edge_set.mem h x y
               && Edge_set.mem h y w
            then acc := [ u; x; y; w ] :: !acc)
          (Graph.neighbors g x)
      end)
    (Graph.neighbors g u);
  !acc

let path_sum (p, q) = Path.length p + Path.length q

let valid_pair g (p, q) s t =
  Path.is_valid g p && Path.is_valid g q
  && Path.source p = s && Path.source q = s
  && Path.target p = t && Path.target q = t
  && Path.pairwise_disjoint [ p; q ]

(* split [p] at the first occurrence of [x]: (prefix incl. x, suffix from x) *)
let split_at_vertex p x =
  let rec go acc = function
    | [] -> invalid_arg "Surgery.split_at_vertex: vertex absent"
    | v :: rest when v = x -> (List.rev (x :: acc), x :: rest)
    | v :: rest -> go (v :: acc) rest
  in
  go [] p

let lemma1_oriented g h (p, q) ~swapped =
  let s = Path.source p and t = Path.target p in
  let i = outside_count h p and j = outside_count h q in
  if i < 2 then None
  else begin
    let pack (p', q') = if swapped then (q', p') else (p', q') in
    let u = nth_vertex p (i - 2) and w = nth_vertex p i in
    let p_prefix, _ = split_at_vertex p u in
    let _, p_suffix = split_at_vertex p w in
    if Graph.mem_edge g u w then
      (* non-minimal wedge: shortcut it (sum and outside both drop) *)
      Some (pack (p_prefix @ List.tl p_suffix, q))
    else begin
      (* interiors must avoid the retained parts of p (u, w excepted) *)
      let forbidden = Hashtbl.create 16 in
      List.iter (fun z -> if z <> u then Hashtbl.replace forbidden z ()) p_prefix;
      List.iter (fun z -> if z <> w then Hashtbl.replace forbidden z ()) p_suffix;
      let candidates = branch_candidates g h ~u ~w ~forbidden in
      let q_set = Hashtbl.create 16 in
      List.iteri (fun idx z -> Hashtbl.replace q_set z idx) q;
      let q_hits r = List.filter (Hashtbl.mem q_set) (Path.internal r) in
      let improvement old_sum old_ij pair =
        valid_pair g pair s t
        && path_sum pair <= old_sum + 1
        &&
        let i' = outside_count h (fst pair) and j' = outside_count h (snd pair) in
        i' + j' < old_ij
      in
      let old_sum = path_sum (p, q) and old_ij = i + j in
      (* case (b): a branch avoiding q entirely *)
      let case_b =
        List.find_map
          (fun r ->
            if q_hits r = [] then begin
              let pair = (p_prefix @ List.tl r @ List.tl p_suffix, q) in
              if improvement old_sum old_ij pair then Some (pack pair) else None
            end
            else None)
          candidates
      in
      match case_b with
      | Some res -> Some res
      | None ->
          (* case (c): two branches r, s_ crossing q; exchange segments
             through q. The proof has each branch meet q exactly once
             (by minimality); iterated pairs can stray from minimality,
             so we try every (branch, crossing) combination and let the
             validity check arbitrate. *)
          let singles =
            List.concat_map (fun r -> List.map (fun x -> (r, x)) (q_hits r)) candidates
          in
          let rec pairs = function
            | [] -> None
            | (r, x) :: rest ->
                let found =
                  List.find_map
                    (fun (s_, y) ->
                      if x = y then None
                      else begin
                        (* orient: x before y along q *)
                        let (r, x), (s_, y) =
                          if Hashtbl.find q_set x <= Hashtbl.find q_set y then
                            ((r, x), (s_, y))
                          else ((s_, y), (r, x))
                        in
                        let q_to_x, _ = split_at_vertex q x in
                        let _, q_from_y = split_at_vertex q y in
                        let _, r_from_x = split_at_vertex r x in
                        let s_to_y, _ = split_at_vertex s_ y in
                        let p' = q_to_x @ List.tl r_from_x @ List.tl p_suffix in
                        let q' = p_prefix @ List.tl s_to_y @ List.tl q_from_y in
                        let pair = (p', q') in
                        if improvement old_sum old_ij pair then Some (pack pair) else None
                      end)
                    rest
                in
                (match found with Some _ as r -> r | None -> pairs rest)
          in
          pairs singles
    end
  end

let lemma1_step g h (p0, q0) =
  (* try the path with the larger outside count first, then the other *)
  let op = outside_count h p0 and oq = outside_count h q0 in
  let first_p = op >= oq in
  let try_orient as_p =
    if as_p then lemma1_oriented g h (p0, q0) ~swapped:false
    else lemma1_oriented g h (q0, p0) ~swapped:true
  in
  match try_orient first_p with
  | Some _ as r -> r
  | None -> try_orient (not first_p)

let prop4_paths g h s t =
  if s = t || Graph.mem_edge g s t then None
  else
    match Disjoint_paths.min_sum_paths g ~k:2 s t with
    | None | Some [] | Some [ _ ] -> None
    | Some (p :: q :: _) ->
        let l = Path.length p + Path.length q in
        let rec iterate pair fuel =
          if outside_count h (fst pair) <= 1 && outside_count h (snd pair) <= 1 then
            if path_sum pair <= (2 * l) - 2 then Some pair else None
          else if fuel = 0 then None
          else
            match lemma1_step g h pair with
            | None -> None
            | Some pair' -> iterate pair' (fuel - 1)
        in
        iterate (p, q) (2 * l)

let theorem2_paths g h ~k s t =
  if s = t || Graph.mem_edge g s t then None
  else begin
    let kconn = Disjoint_paths.max_disjoint g s t in
    let k' = min k kconn in
    if k' = 0 then None
    else
      match Disjoint_paths.min_sum_paths g ~k:k' s t with
      | None -> None
      | Some paths ->
          let budget =
            List.fold_left (fun acc p -> acc + Path.length p) 0 paths
          in
          let rec iterate paths fuel =
            if fuel < 0 then None
            else
              match lemma2_step g h ~k paths with
              | None ->
                  if List.for_all (fun p -> outside_count h p <= 1) paths then Some paths
                  else None
              | Some paths' -> iterate paths' (fuel - 1)
          in
          iterate paths budget
  end
