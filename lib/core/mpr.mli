(** Multipoint relays (OLSR) and their dominating-tree reading.

    The paper observes (Section 1.2) that OLSR's multipoint relays
    are exactly (2, 0)-dominating trees, that their union forms a
    (1, 0)-remote-spanner, and that the k-coverage extension equals
    k-connecting (2, 0)-dominating trees — whose k-connectivity
    guarantee had "never been proved" before Proposition 5.
    Experiment E10 verifies it with the flow checker.

    This module also simulates MPR flooding, the other use of relays
    in OLSR: a node retransmits a broadcast iff it was selected as
    relay by the neighbor it first heard the message from. *)

open Rs_graph

val select : Graph.t -> int -> int list
(** Greedy MPR set of [u]: minimal-ish set of neighbors covering the
    2-sphere (the leaf set of a greedy (2,0)-dominating tree;
    identical to [Dom_tree_k.gdy_k ~k:1]'s leaves). Sorted. *)

val select_olsr : Graph.t -> int -> int list
(** The RFC 3626 heuristic: first take neighbors that are the sole
    cover of some 2-hop node, then greedy by residual coverage (ties
    by higher degree then smaller id). Also a valid (2,0)-dominating
    tree; usually slightly larger than {!select} is not guaranteed
    either way. Sorted. *)

val select_k_coverage : Graph.t -> k:int -> int -> int list
(** k-coverage MPRs: leaves of [Dom_tree_k.gdy_k ~k]. Sorted. *)

val is_valid_mpr : Graph.t -> int -> int list -> bool
(** Every strict 2-hop node of [u] has a neighbor among the relays. *)

val relay_union : Graph.t -> (Graph.t -> int -> int list) -> Edge_set.t
(** Union over all u of the star {u->relay}: the sub-graph a
    relay-based link-state protocol advertises. *)

type flood_result = {
  reached : bool array;
  retransmissions : int;  (** nodes that forwarded the packet *)
}

val flood : Graph.t -> relays:(int -> int list) -> src:int -> flood_result
(** MPR flooding from [src]: the source transmits; a node retransmits
    iff it is a relay of the node from which it first received the
    packet (BFS order, smallest-id first among same-round senders). *)

val blind_flood : Graph.t -> src:int -> flood_result
(** Classic flooding: every reached node retransmits once. *)

val flood_lossy :
  Rand.t -> Graph.t -> relays:(int -> int list) -> src:int -> loss:float -> flood_result
(** MPR flooding over lossy radio: each per-neighbor delivery fails
    independently with probability [loss]. A node retransmits iff it
    is a relay of {e some} node it received the packet from (any copy,
    not just the first — the RFC's duplicate-set behaviour). This is
    the experiment k-coverage MPRs were invented for ([4, 5]): with
    [relays = select_k_coverage ~k], a node at distance 2 has k relay
    paths, so a single loss no longer cuts it off. Use
    [relays = fun u -> Array.to_list (Graph.neighbors g u)] for blind
    flooding under the same loss model. *)
