open Rs_graph
module Setcover = Rs_setcover.Setcover
module Obs = Rs_obs.Obs

let c_trees = Obs.counter "domtree/trees_built"
let c_relays = Obs.counter "domtree_k/relays"
let h_sphere = Obs.histogram "domtree_k/sphere_size"

let disjoint_branch_count g t ~beta v =
  let u = Tree.root t in
  let hops = Hashtbl.create 8 in
  Array.iter
    (fun x ->
      if x <> u && Tree.mem t x && Tree.depth t x <= 1 + beta then
        Hashtbl.replace hops (Tree.first_hop t x) ())
    (Graph.neighbors g v);
  Hashtbl.length hops

let common_neighbors g u v =
  Array.to_list (Graph.neighbors g v) |> List.filter (fun w -> Graph.mem_edge g u w)

let is_k_dominating g ~k ~beta t =
  let u = Tree.root t in
  Tree.edges_in g t
  && begin
       let dist = Bfs.dist ~radius:2 g u in
       let ok = ref true in
       Graph.iter_vertices
         (fun v ->
           if dist.(v) = 2 then begin
             let covered =
               disjoint_branch_count g t ~beta v >= k
               || List.for_all
                    (fun w -> Tree.mem t w && Tree.parent t w = u)
                    (common_neighbors g u v)
             in
             if not covered then ok := false
           end)
         g;
       !ok
     end

(* Removal rule shared by both algorithms, instantiated with the
   "already fully used" predicate and the disjointness requirement. *)

let scratch_or = function Some s -> s | None -> Bfs.Scratch.create ()

(* The 2-sphere of the last scratch run, ascending id (the order the
   historical iter_vertices scan produced). *)
let sphere2_of s =
  let acc = ref [] in
  for i = Bfs.Scratch.visited_count s - 1 downto 0 do
    let v = Bfs.Scratch.visited s i in
    if Bfs.Scratch.dist s v = 2 then acc := v :: !acc
  done;
  let a = Array.of_list !acc in
  Array.sort Int.compare a;
  a

(* Edge-emitting core: everything after the radius-2 traversal,
   abstracted over edge storage ([add u relay] — every emitted edge is
   a star edge at the root). The Tree.t wrapper instantiates it with a
   real [Tree.t]; the batched builder ([Sharded]) feeds int edge
   accumulators. [sphere] is the 2-sphere of [u], ascending id. *)
let gdy_k_emit g ~k ~sphere u ~add =
  Obs.incr c_trees;
  if Obs.enabled () then Obs.observe h_sphere (float_of_int (Array.length sphere));
  (* "Cover every sphere node v by min(k, |N(u) ∩ N(v)|) relays,
     repeatedly picking the relay covering most unsatisfied nodes
     (smallest id on ties)" is exactly greedy k-multicover with the
     relays N(u) as sets — N(u) is id-sorted, so smallest set index =
     smallest relay id and the lazy greedy reproduces the historical
     pick sequence. *)
  let elt_of = Hashtbl.create (Array.length sphere) in
  Array.iteri (fun i v -> Hashtbl.replace elt_of v i) sphere;
  (* u's sorted neighbor list, materialized over the CSR: the batched
     path must not force the graph's lazy per-vertex adjacency *)
  let relays = Array.make (Graph.degree g u) 0 in
  let i = ref 0 in
  Graph.iter_neighbors g u (fun w ->
      relays.(!i) <- w;
      incr i);
  let ball_of x =
    let acc = ref [] in
    Graph.iter_neighbors g x (fun w ->
        match Hashtbl.find_opt elt_of w with Some i -> acc := i :: !acc | None -> ());
    Array.of_list !acc
  in
  let inst = { Setcover.universe = Array.length sphere; sets = Array.map ball_of relays } in
  let picks = Setcover.greedy_multicover inst ~k in
  List.iter
    (fun sid ->
      Obs.incr c_relays;
      add u relays.(sid))
    picks;
  (* every 2-sphere node has a common neighbor with u, so the greedy
     multicover always saturates the (capped) demands *)
  assert (Setcover.is_cover inst ~k picks)

let gdy_k ?scratch g ~k u =
  if k < 1 then invalid_arg "Dom_tree_k.gdy_k: k < 1";
  let s = scratch_or scratch in
  Bfs.Scratch.run ~radius:2 s g u;
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let sphere = sphere2_of s in
  gdy_k_emit g ~k ~sphere u ~add:(fun p c -> Tree.add_edge t ~parent:p ~child:c);
  t

let mis_k ?scratch g ~k u =
  if k < 1 then invalid_arg "Dom_tree_k.mis_k: k < 1";
  Obs.incr c_trees;
  let sc = scratch_or scratch in
  Bfs.Scratch.run ~radius:2 sc g u;
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let sphere = sphere2_of sc in
  if Obs.enabled () then Obs.observe h_sphere (float_of_int (Array.length sphere));
  let s = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace s v ()) sphere;
  let dominated v =
    common_neighbors g u v |> List.for_all (fun w -> Tree.mem t w)
    || disjoint_branch_count g t ~beta:1 v >= k
  in
  let prune () =
    Hashtbl.iter (fun v () -> if dominated v then Hashtbl.remove s v) (Hashtbl.copy s)
  in
  for _round = 1 to k do
    let x_set = Hashtbl.copy s in
    let continue = ref true in
    while !continue && Hashtbl.length x_set > 0 && Hashtbl.length s > 0 do
      (* pick the smallest-id x in S ∩ X *)
      let x =
        Hashtbl.fold
          (fun v () acc -> if Hashtbl.mem s v && (acc < 0 || v < acc) then v else acc)
          x_set (-1)
      in
      if x < 0 then continue := false
      else begin
        let fresh =
          common_neighbors g u x |> List.filter (fun y -> not (Tree.mem t y))
        in
        (* The paper's invariant: a picked x always has a fresh common
           neighbor, else the first removal rule would have pruned it. *)
        assert (fresh <> []);
        let chosen = List.filteri (fun i _ -> i < k) fresh in
        (match chosen with
        | y1 :: rest ->
            Tree.add_edge t ~parent:u ~child:y1;
            if not (Tree.mem t x) then Tree.add_edge t ~parent:y1 ~child:x;
            List.iter (fun y -> Tree.add_edge t ~parent:u ~child:y) rest
        | [] -> assert false);
        prune ();
        (* X := X \ B_G(x, 1) *)
        Hashtbl.remove x_set x;
        Array.iter (fun w -> Hashtbl.remove x_set w) (Graph.neighbors g x)
      end
    done
  done;
  (* By Proposition 7 the loop empties S; keep a defensive check so a
     violated invariant fails loudly in tests rather than silently. *)
  assert (Hashtbl.length s = 0);
  t

let extract_k21 g h ~k u =
  if k < 1 then invalid_arg "Dom_tree_k.extract_k21: k < 1";
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let dist = Bfs.dist ~radius:2 g u in
  let s = Hashtbl.create 64 in
  Graph.iter_vertices (fun v -> if dist.(v) = 2 then Hashtbl.replace s v ()) g;
  let h_relays_of x =
    (* common neighbors of u and x reachable as H-relays: u-y in H *)
    common_neighbors g u x |> List.filter (fun y -> Edge_set.mem h u y)
  in
  let dominated v =
    common_neighbors g u v
    |> List.for_all (fun w -> Tree.mem t w && Tree.parent t w = u)
    || disjoint_branch_count g t ~beta:1 v >= k
  in
  let prune () =
    Hashtbl.iter (fun v () -> if dominated v then Hashtbl.remove s v) (Hashtbl.copy s)
  in
  prune ();
  for _round = 1 to k do
    let x_set = Hashtbl.copy s in
    let continue = ref true in
    while !continue && Hashtbl.length x_set > 0 && Hashtbl.length s > 0 do
      let x =
        Hashtbl.fold
          (fun v () acc -> if Hashtbl.mem s v && (acc < 0 || v < acc) then v else acc)
          x_set (-1)
      in
      if x < 0 then continue := false
      else begin
        let fresh = h_relays_of x |> List.filter (fun y -> not (Tree.mem t y)) in
        let connectors = List.filter (fun y -> Edge_set.mem h x y) fresh in
        (match connectors with
        | y1 :: _ when not (Tree.mem t x) ->
            Tree.add_edge t ~parent:u ~child:y1;
            Tree.add_edge t ~parent:y1 ~child:x;
            List.filteri (fun i _ -> i < k - 1) (List.filter (( <> ) y1) fresh)
            |> List.iter (fun y -> Tree.add_edge t ~parent:u ~child:y)
        | _ ->
            List.filteri (fun i _ -> i < k) fresh
            |> List.iter (fun y -> Tree.add_edge t ~parent:u ~child:y));
        prune ();
        Hashtbl.remove x_set x;
        Array.iter (fun w -> Hashtbl.remove x_set w) (Graph.neighbors g x)
      end
    done
  done;
  if Hashtbl.length s = 0 && is_k_dominating g ~k ~beta:1 t then Some t else None
