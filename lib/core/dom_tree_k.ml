open Rs_graph
module Obs = Rs_obs.Obs

let c_trees = Obs.counter "domtree/trees_built"
let c_relays = Obs.counter "domtree_k/relays"
let h_sphere = Obs.histogram "domtree_k/sphere_size"

let disjoint_branch_count g t ~beta v =
  let u = Tree.root t in
  let hops = Hashtbl.create 8 in
  Array.iter
    (fun x ->
      if x <> u && Tree.mem t x && Tree.depth t x <= 1 + beta then
        Hashtbl.replace hops (Tree.first_hop t x) ())
    (Graph.neighbors g v);
  Hashtbl.length hops

let common_neighbors g u v =
  Array.to_list (Graph.neighbors g v) |> List.filter (fun w -> Graph.mem_edge g u w)

let is_k_dominating g ~k ~beta t =
  let u = Tree.root t in
  Tree.edges_in g t
  && begin
       let dist = Bfs.dist ~radius:2 g u in
       let ok = ref true in
       Graph.iter_vertices
         (fun v ->
           if dist.(v) = 2 then begin
             let covered =
               disjoint_branch_count g t ~beta v >= k
               || List.for_all
                    (fun w -> Tree.mem t w && Tree.parent t w = u)
                    (common_neighbors g u v)
             in
             if not covered then ok := false
           end)
         g;
       !ok
     end

(* Removal rule shared by both algorithms, instantiated with the
   "already fully used" predicate and the disjointness requirement. *)

let gdy_k g ~k u =
  if k < 1 then invalid_arg "Dom_tree_k.gdy_k: k < 1";
  Obs.incr c_trees;
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let dist = Bfs.dist ~radius:2 g u in
  let sphere = ref [] in
  Graph.iter_vertices (fun v -> if dist.(v) = 2 then sphere := v :: !sphere) g;
  if Obs.enabled () then Obs.observe h_sphere (float_of_int (List.length !sphere));
  let in_m = Array.make (Graph.n g) false in
  let alive = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace alive v ()) !sphere;
  let covered_enough v =
    let common = common_neighbors g u v in
    List.for_all (fun w -> in_m.(w)) common
    || List.length (List.filter (fun w -> in_m.(w)) common) >= k
  in
  while Hashtbl.length alive > 0 do
    (* pick x in N(u) \ M maximizing |N(x) ∩ S|, smallest id on ties *)
    let best = ref (-1) and best_cov = ref 0 in
    Array.iter
      (fun x ->
        if not in_m.(x) then begin
          let c =
            Array.fold_left
              (fun acc w -> if Hashtbl.mem alive w then acc + 1 else acc)
              0 (Graph.neighbors g x)
          in
          if c > !best_cov then begin
            best := x;
            best_cov := c
          end
        end)
      (Graph.neighbors g u);
    assert (!best >= 0);
    in_m.(!best) <- true;
    Obs.incr c_relays;
    Tree.add_edge t ~parent:u ~child:!best;
    Hashtbl.iter
      (fun v () -> if covered_enough v then Hashtbl.remove alive v)
      (Hashtbl.copy alive)
  done;
  t

let mis_k g ~k u =
  if k < 1 then invalid_arg "Dom_tree_k.mis_k: k < 1";
  Obs.incr c_trees;
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let dist = Bfs.dist ~radius:2 g u in
  let sphere = ref [] in
  Graph.iter_vertices (fun v -> if dist.(v) = 2 then sphere := v :: !sphere) g;
  if Obs.enabled () then Obs.observe h_sphere (float_of_int (List.length !sphere));
  let s = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace s v ()) (List.rev !sphere);
  let dominated v =
    common_neighbors g u v |> List.for_all (fun w -> Tree.mem t w)
    || disjoint_branch_count g t ~beta:1 v >= k
  in
  let prune () =
    Hashtbl.iter (fun v () -> if dominated v then Hashtbl.remove s v) (Hashtbl.copy s)
  in
  for _round = 1 to k do
    let x_set = Hashtbl.copy s in
    let continue = ref true in
    while !continue && Hashtbl.length x_set > 0 && Hashtbl.length s > 0 do
      (* pick the smallest-id x in S ∩ X *)
      let x =
        Hashtbl.fold
          (fun v () acc -> if Hashtbl.mem s v && (acc < 0 || v < acc) then v else acc)
          x_set (-1)
      in
      if x < 0 then continue := false
      else begin
        let fresh =
          common_neighbors g u x |> List.filter (fun y -> not (Tree.mem t y))
        in
        (* The paper's invariant: a picked x always has a fresh common
           neighbor, else the first removal rule would have pruned it. *)
        assert (fresh <> []);
        let chosen = List.filteri (fun i _ -> i < k) fresh in
        (match chosen with
        | y1 :: rest ->
            Tree.add_edge t ~parent:u ~child:y1;
            if not (Tree.mem t x) then Tree.add_edge t ~parent:y1 ~child:x;
            List.iter (fun y -> Tree.add_edge t ~parent:u ~child:y) rest
        | [] -> assert false);
        prune ();
        (* X := X \ B_G(x, 1) *)
        Hashtbl.remove x_set x;
        Array.iter (fun w -> Hashtbl.remove x_set w) (Graph.neighbors g x)
      end
    done
  done;
  (* By Proposition 7 the loop empties S; keep a defensive check so a
     violated invariant fails loudly in tests rather than silently. *)
  assert (Hashtbl.length s = 0);
  t

let extract_k21 g h ~k u =
  if k < 1 then invalid_arg "Dom_tree_k.extract_k21: k < 1";
  let t = Tree.create ~n:(Graph.n g) ~root:u in
  let dist = Bfs.dist ~radius:2 g u in
  let s = Hashtbl.create 64 in
  Graph.iter_vertices (fun v -> if dist.(v) = 2 then Hashtbl.replace s v ()) g;
  let h_relays_of x =
    (* common neighbors of u and x reachable as H-relays: u-y in H *)
    common_neighbors g u x |> List.filter (fun y -> Edge_set.mem h u y)
  in
  let dominated v =
    common_neighbors g u v
    |> List.for_all (fun w -> Tree.mem t w && Tree.parent t w = u)
    || disjoint_branch_count g t ~beta:1 v >= k
  in
  let prune () =
    Hashtbl.iter (fun v () -> if dominated v then Hashtbl.remove s v) (Hashtbl.copy s)
  in
  prune ();
  for _round = 1 to k do
    let x_set = Hashtbl.copy s in
    let continue = ref true in
    while !continue && Hashtbl.length x_set > 0 && Hashtbl.length s > 0 do
      let x =
        Hashtbl.fold
          (fun v () acc -> if Hashtbl.mem s v && (acc < 0 || v < acc) then v else acc)
          x_set (-1)
      in
      if x < 0 then continue := false
      else begin
        let fresh = h_relays_of x |> List.filter (fun y -> not (Tree.mem t y)) in
        let connectors = List.filter (fun y -> Edge_set.mem h x y) fresh in
        (match connectors with
        | y1 :: _ when not (Tree.mem t x) ->
            Tree.add_edge t ~parent:u ~child:y1;
            Tree.add_edge t ~parent:y1 ~child:x;
            List.filteri (fun i _ -> i < k - 1) (List.filter (( <> ) y1) fresh)
            |> List.iter (fun y -> Tree.add_edge t ~parent:u ~child:y)
        | _ ->
            List.filteri (fun i _ -> i < k) fresh
            |> List.iter (fun y -> Tree.add_edge t ~parent:u ~child:y));
        prune ();
        Hashtbl.remove x_set x;
        Array.iter (fun w -> Hashtbl.remove x_set w) (Graph.neighbors g x)
      end
    done
  done;
  if Hashtbl.length s = 0 && is_k_dominating g ~k ~beta:1 t then Some t else None
