let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now = Unix.gettimeofday

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ------------------------------------------------------------------ *)
(* counters *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let incr c = if enabled () then ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = if enabled () then ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value

(* ------------------------------------------------------------------ *)
(* gauges *)

type gauge = { g_name : string; g_value : float Atomic.t }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_value = Atomic.make 0.0 } in
          Hashtbl.replace gauges name g;
          g)

let set_gauge g v = if enabled () then Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

(* ------------------------------------------------------------------ *)
(* histograms: exact moments + power-of-two buckets *)

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : (int, int) Hashtbl.t; (* exponent e -> count of values <= 2^e *)
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_lock = Mutex.create ();
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
              h_buckets = Hashtbl.create 8;
            }
          in
          Hashtbl.replace histograms name h;
          h)

(* smallest e with v <= 2^e (clamped so the bucket set stays small) *)
let bucket_exponent v =
  if v <= 0.0 then min_int
  else max (-30) (min 62 (int_of_float (Float.ceil (Float.log2 v))))

let observe h v =
  if enabled () then begin
    Mutex.lock h.h_lock;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let e = bucket_exponent v in
    Hashtbl.replace h.h_buckets e
      (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets e));
    Mutex.unlock h.h_lock
  end

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* ------------------------------------------------------------------ *)
(* spans: domain-local nesting stack, global aggregates *)

type span_agg = { mutable s_count : int; mutable s_total : float; mutable s_max : float }

let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 16

let span_stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let record_span path dt =
  locked (fun () ->
      let agg =
        match Hashtbl.find_opt spans path with
        | Some a -> a
        | None ->
            let a = { s_count = 0; s_total = 0.0; s_max = 0.0 } in
            Hashtbl.replace spans path a;
            a
      in
      agg.s_count <- agg.s_count + 1;
      agg.s_total <- agg.s_total +. dt;
      if dt > agg.s_max then agg.s_max <- dt)

let with_span name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get span_stack_key in
    stack := name :: !stack;
    let path = String.concat "/" (List.rev !stack) in
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now () -. t0 in
        (match !stack with [] -> () | _ :: tl -> stack := tl);
        record_span path dt)
      f
  end

let span_stats path =
  locked (fun () ->
      Option.map (fun a -> (a.s_count, a.s_total)) (Hashtbl.find_opt spans path))

(* ------------------------------------------------------------------ *)
(* registry *)

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0.0) gauges;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.h_lock;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Hashtbl.reset h.h_buckets;
          Mutex.unlock h.h_lock)
        histograms;
      Hashtbl.reset spans)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_json h =
  Mutex.lock h.h_lock;
  let buckets =
    Hashtbl.fold (fun e c acc -> (e, c) :: acc) h.h_buckets []
    |> List.sort compare
    |> List.map (fun (e, c) ->
           let le =
             if e = min_int then 0.0 else Float.pow 2.0 (float_of_int e)
           in
           Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
  in
  let j =
    Json.Obj
      [
        ("count", Json.Int h.h_count);
        ("sum", Json.Float h.h_sum);
        ("min", Json.Float (if h.h_count = 0 then 0.0 else h.h_min));
        ("max", Json.Float (if h.h_count = 0 then 0.0 else h.h_max));
        ("buckets", Json.List buckets);
      ]
  in
  Mutex.unlock h.h_lock;
  j

let to_json () =
  locked (fun () ->
      let counters_j =
        sorted_bindings counters
        |> List.map (fun (name, c) -> (name, Json.Int (Atomic.get c.c_value)))
      in
      let gauges_j =
        sorted_bindings gauges
        |> List.map (fun (name, g) -> (name, Json.Float (Atomic.get g.g_value)))
      in
      let histograms_j =
        sorted_bindings histograms
        |> List.map (fun (name, h) -> (name, histogram_json h))
      in
      let spans_j =
        sorted_bindings spans
        |> List.map (fun (path, a) ->
               ( path,
                 Json.Obj
                   [
                     ("count", Json.Int a.s_count);
                     ("total_s", Json.Float a.s_total);
                     ("max_s", Json.Float a.s_max);
                   ] ))
      in
      Json.Obj
        [
          ("version", Json.Int 1);
          ("counters", Json.Obj counters_j);
          ("gauges", Json.Obj gauges_j);
          ("histograms", Json.Obj histograms_j);
          ("spans", Json.Obj spans_j);
        ])

let to_table () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  locked (fun () ->
      line "%-44s %14s" "counter" "value";
      List.iter
        (fun (name, c) -> line "%-44s %14d" name (Atomic.get c.c_value))
        (sorted_bindings counters);
      if Hashtbl.length gauges > 0 then begin
        line "";
        line "%-44s %14s" "gauge" "value";
        List.iter
          (fun (name, g) -> line "%-44s %14.2f" name (Atomic.get g.g_value))
          (sorted_bindings gauges)
      end;
      if Hashtbl.length histograms > 0 then begin
        line "";
        line "%-44s %8s %12s %10s %10s" "histogram" "count" "mean" "min" "max";
        List.iter
          (fun (name, h) ->
            let mean = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count in
            line "%-44s %8d %12.3f %10.3f %10.3f" name h.h_count mean
              (if h.h_count = 0 then 0.0 else h.h_min)
              (if h.h_count = 0 then 0.0 else h.h_max))
          (sorted_bindings histograms)
      end;
      if Hashtbl.length spans > 0 then begin
        line "";
        line "%-44s %8s %12s %12s" "span" "count" "total" "max";
        List.iter
          (fun (path, a) ->
            line "%-44s %8d %10.3fms %10.3fms" path a.s_count (1e3 *. a.s_total)
              (1e3 *. a.s_max))
          (sorted_bindings spans)
      end);
  Buffer.contents buf
